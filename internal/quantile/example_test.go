package quantile_test

import (
	"fmt"

	"trapp/internal/quantile"
	"trapp/internal/workload"
)

// The bounded median of the Figure 2 latencies: sorted lower endpoints
// {2,4,5,8,9,12} and upper endpoints {4,6,7,11,11,16} give the 3rd
// smallest of each.
func ExampleMedian() {
	table := workload.Figure2Table()
	lat := table.Schema().MustLookup(workload.ColLatency)
	fmt.Println(quantile.Median(table, lat))
	// Output: [5, 7]
}

// Iteratively refreshing until the median is known within 1 ms.
func ExampleExecuteMedian() {
	table := workload.Figure2Table()
	lat := table.Schema().MustLookup(workload.ColLatency)
	res, _ := quantile.ExecuteMedian(table, lat, 1, workload.MapOracle(workload.Figure2Master()))
	fmt.Println("answer:", res.Answer, "width ≤ 1:", res.Answer.Width() <= 1)
	// Output: answer: [7] width ≤ 1: true
}
