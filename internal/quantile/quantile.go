// Package quantile extends TRAPP/AG with bounded order-statistic queries —
// MEDIAN, general k-th smallest, and TOP-n — the first item on the paper's
// future-work list (section 8.1, citing the companion paper [FMP+00],
// "Computing the median with uncertainty").
//
// The bounded answer for the k-th smallest value over bounds
// [L_1,H_1]..[L_n,H_n] is
//
//	[ k-th smallest of {L_i},  k-th smallest of {H_i} ]
//
// which follows from the monotonicity of order statistics: pushing every
// value to its lower endpoint minimizes the k-th smallest, pushing every
// value to its upper endpoint maximizes it, and the statistic moves
// continuously in between.
//
// Refresh selection for order statistics does not reduce to a knapsack the
// way SUM does — refreshing a tuple helps only if its bound overlaps the
// answer region — so this package provides the iterative strategy the
// paper sketches in section 8.2: repeatedly refresh the cheapest tuple
// whose bound overlaps the current answer interval, recomputing after each
// refresh, until the precision constraint is met. Each step strictly
// shrinks some bound to a point, so the loop terminates with an exact
// answer in the worst case.
package quantile

import (
	"fmt"
	"math"
	"sort"

	"trapp/internal/interval"
	"trapp/internal/query"
	"trapp/internal/relation"
)

// KthSmallest computes the bounded k-th smallest value (1-based) of the
// given column over all tuples of the table. It returns Empty when
// k is out of range.
func KthSmallest(t *relation.Table, col int, k int) interval.Interval {
	n := t.Len()
	if k < 1 || k > n {
		return interval.Empty
	}
	los := make([]float64, n)
	his := make([]float64, n)
	for i := 0; i < n; i++ {
		b := t.At(i).Bounds[col]
		los[i] = b.Lo
		his[i] = b.Hi
	}
	sort.Float64s(los)
	sort.Float64s(his)
	return interval.Interval{Lo: los[k-1], Hi: his[k-1]}
}

// Median computes the bounded median: the ⌈n/2⌉-th smallest value, the
// convention of [FMP+00] for odd and even n alike.
func Median(t *relation.Table, col int) interval.Interval {
	return KthSmallest(t, col, (t.Len()+1)/2)
}

// TopN computes the bounded n-th largest value, i.e. the (N−n+1)-th
// smallest over a table of N tuples.
func TopN(t *relation.Table, col int, n int) interval.Interval {
	return KthSmallest(t, col, t.Len()-n+1)
}

// ExactKth computes the precise k-th smallest from master values (bounded
// columns in schema order), the ground truth for tests.
func ExactKth(t *relation.Table, col int, k int, master map[int64][]float64) (float64, bool) {
	n := t.Len()
	if k < 1 || k > n {
		return 0, false
	}
	schema := t.Schema()
	bcols := schema.BoundedColumns()
	pos := -1
	for j, c := range bcols {
		if c == col {
			pos = j
		}
	}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		tu := t.At(i)
		if pos >= 0 {
			vals = append(vals, master[tu.Key][pos])
		} else {
			vals = append(vals, tu.Bounds[col].Lo)
		}
	}
	sort.Float64s(vals)
	return vals[k-1], true
}

// Result reports an order-statistic query execution.
type Result struct {
	// Answer is the final bounded k-th smallest.
	Answer interval.Interval
	// Initial is the pre-refresh bound.
	Initial interval.Interval
	// Refreshed counts refreshed tuples.
	Refreshed int
	// RefreshCost is the total cost paid.
	RefreshCost float64
	// Met reports whether the final width is within the constraint.
	Met bool
}

// ExecuteKth runs the iterative bounded k-th smallest query: refresh the
// cheapest tuple overlapping the current answer interval until the width
// is at most r.
func ExecuteKth(t *relation.Table, col int, k int, r float64, oracle query.Oracle) (Result, error) {
	if r < 0 || math.IsNaN(r) {
		return Result{}, fmt.Errorf("quantile: invalid precision constraint %g", r)
	}
	if k < 1 || k > t.Len() {
		return Result{}, fmt.Errorf("quantile: k=%d out of range for %d tuples", k, t.Len())
	}
	var res Result
	res.Initial = KthSmallest(t, col, k)
	res.Answer = res.Initial
	refreshed := make(map[int64]bool)
	for res.Answer.Width() > r+1e-12 {
		// Candidates: unrefreshed tuples with nonzero width overlapping
		// the answer interval. Refreshing anything else cannot move
		// either endpoint of the k-th order statistic.
		best := -1
		bestCost := math.Inf(1)
		for i := 0; i < t.Len(); i++ {
			tu := t.At(i)
			if refreshed[tu.Key] || tu.Bounds[col].Width() == 0 {
				continue
			}
			if !tu.Bounds[col].Intersects(res.Answer) {
				continue
			}
			if tu.Cost < bestCost {
				best, bestCost = i, tu.Cost
			}
		}
		if best < 0 {
			// No overlapping uncertain tuple remains, yet the width
			// exceeds r: impossible, because with every overlapping bound
			// a point the k-th smallest of Lo's equals that of Hi's.
			return res, fmt.Errorf("quantile: stalled at width %g > %g", res.Answer.Width(), r)
		}
		tu := t.At(best)
		if oracle == nil {
			return res, fmt.Errorf("quantile: no oracle to refresh tuple %d", tu.Key)
		}
		vals, ok := oracle.Master(tu.Key)
		if !ok {
			return res, fmt.Errorf("quantile: oracle missing key %d", tu.Key)
		}
		if err := t.Refresh(best, vals); err != nil {
			return res, err
		}
		refreshed[tu.Key] = true
		res.Refreshed++
		res.RefreshCost += bestCost
		res.Answer = KthSmallest(t, col, k)
	}
	res.Met = true
	return res, nil
}

// ExecuteMedian runs the iterative bounded median query.
func ExecuteMedian(t *relation.Table, col int, r float64, oracle query.Oracle) (Result, error) {
	return ExecuteKth(t, col, (t.Len()+1)/2, r, oracle)
}
