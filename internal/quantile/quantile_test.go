package quantile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trapp/internal/interval"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

func fig2Latency(t *testing.T) (*relation.Table, int, workload.MapOracle) {
	t.Helper()
	tab := workload.Figure2Table()
	col := tab.Schema().MustLookup(workload.ColLatency)
	return tab, col, workload.MapOracle(workload.Figure2Master())
}

func TestKthSmallestBounds(t *testing.T) {
	tab, col, _ := fig2Latency(t)
	// Latency bounds: [2,4],[5,7],[12,16],[9,11],[8,11],[4,6].
	// Sorted Lo: 2,4,5,8,9,12; sorted Hi: 4,6,7,11,11,16.
	cases := []struct {
		k    int
		want interval.Interval
	}{
		{1, interval.New(2, 4)},
		{2, interval.New(4, 6)},
		{3, interval.New(5, 7)},
		{4, interval.New(8, 11)},
		{6, interval.New(12, 16)},
	}
	for _, c := range cases {
		if got := KthSmallest(tab, col, c.k); !got.Equal(c.want) {
			t.Errorf("k=%d: %v, want %v", c.k, got, c.want)
		}
	}
	if !KthSmallest(tab, col, 0).IsEmpty() || !KthSmallest(tab, col, 7).IsEmpty() {
		t.Error("out-of-range k not empty")
	}
}

func TestMedianAndTopN(t *testing.T) {
	tab, col, _ := fig2Latency(t)
	// n=6 → median is the 3rd smallest: [5, 7] wait — ceil((6+1)/2)=3.
	if got := Median(tab, col); !got.Equal(interval.New(5, 7)) {
		t.Errorf("median = %v, want [5, 7]", got)
	}
	// 1st largest = 6th smallest.
	if got := TopN(tab, col, 1); !got.Equal(interval.New(12, 16)) {
		t.Errorf("top-1 = %v, want [12, 16]", got)
	}
	// 3rd largest = 4th smallest.
	if got := TopN(tab, col, 3); !got.Equal(interval.New(8, 11)) {
		t.Errorf("top-3 = %v, want [8, 11]", got)
	}
}

func TestExactKth(t *testing.T) {
	tab, col, master := fig2Latency(t)
	// True latencies: 3, 7, 13, 9, 11, 5 → sorted 3,5,7,9,11,13.
	if v, ok := ExactKth(tab, col, 3, master); !ok || v != 7 {
		t.Errorf("exact 3rd = %g, %v", v, ok)
	}
	if v, ok := ExactKth(tab, col, 6, master); !ok || v != 13 {
		t.Errorf("exact 6th = %g, %v", v, ok)
	}
	if _, ok := ExactKth(tab, col, 0, master); ok {
		t.Error("k=0 accepted")
	}
}

func TestBoundedKthContainsExact(t *testing.T) {
	tab, col, master := fig2Latency(t)
	for k := 1; k <= 6; k++ {
		bounded := KthSmallest(tab, col, k)
		exact, _ := ExactKth(tab, col, k, master)
		if !bounded.Contains(exact) {
			t.Errorf("k=%d: bound %v misses exact %g", k, bounded, exact)
		}
	}
}

func TestExecuteMedianMeetsConstraint(t *testing.T) {
	tab, col, master := fig2Latency(t)
	res, err := ExecuteMedian(tab, col, 1, master)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.Answer.Width() > 1+1e-9 {
		t.Fatalf("median not met: %v", res.Answer)
	}
	exact, _ := ExactKth(workload.Figure2Table(), col, 3, master)
	if !res.Answer.Expand(1e-9).Contains(exact) {
		t.Errorf("median answer %v excludes exact %g", res.Answer, exact)
	}
	if res.Refreshed == 0 {
		t.Error("no refreshes despite tight constraint")
	}
}

func TestExecuteKthNoRefreshWhenMet(t *testing.T) {
	tab, col, master := fig2Latency(t)
	res, err := ExecuteKth(tab, col, 3, 100, master)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refreshed != 0 {
		t.Errorf("refreshed %d with loose constraint", res.Refreshed)
	}
}

func TestExecuteKthErrors(t *testing.T) {
	tab, col, master := fig2Latency(t)
	if _, err := ExecuteKth(tab, col, 0, 1, master); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ExecuteKth(tab, col, 3, -1, master); err == nil {
		t.Error("negative R accepted")
	}
	if _, err := ExecuteKth(tab, col, 3, 0, nil); err == nil {
		t.Error("nil oracle accepted for refreshing query")
	}
}

// TestQuickKthSoundAndRefreshable: on random tables the bounded k-th
// contains the exact k-th, and the iterative executor meets any R.
func TestQuickKthSoundAndRefreshable(t *testing.T) {
	schema := relation.NewSchema(
		relation.Column{Name: "v", Kind: relation.Bounded},
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		tab := relation.NewTable(schema)
		master := workload.MapOracle{}
		for i := 0; i < n; i++ {
			lo := r.Float64()*100 - 50
			w := r.Float64() * 20
			tab.MustInsert(relation.Tuple{
				Key:    int64(i + 1),
				Bounds: []interval.Interval{interval.New(lo, lo+w)},
				Cost:   1 + r.Float64()*9,
			})
			master[int64(i+1)] = []float64{lo + r.Float64()*w}
		}
		k := 1 + r.Intn(n)
		bounded := KthSmallest(tab, 0, k)
		exact, _ := ExactKth(tab, 0, k, master)
		if !bounded.Expand(1e-9).Contains(exact) {
			return false
		}
		R := r.Float64() * 10
		res, err := ExecuteKth(tab.Clone(), 0, k, R, master)
		if err != nil || !res.Met {
			return false
		}
		if !res.Answer.Expand(1e-9).Contains(exact) {
			return false
		}
		return res.Answer.Width() <= R+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
