package experiment

import (
	"strings"
	"testing"
	"time"
)

func TestFigure5Shape(t *testing.T) {
	eps := []float64{0.1, 0.05, 0.02}
	rows := Figure5(eps, 100, 90, DefaultSeed, 1)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Refresh cost is non-increasing as ε shrinks (better approximation
	// keeps more profit in the knapsack).
	for i := 1; i < len(rows); i++ {
		if rows[i].RefreshCost > rows[i-1].RefreshCost+1e-9 {
			t.Errorf("ε=%g cost %g > ε=%g cost %g",
				rows[i].Epsilon, rows[i].RefreshCost,
				rows[i-1].Epsilon, rows[i-1].RefreshCost)
		}
	}
	for _, r := range rows {
		if r.ChooseTime <= 0 {
			t.Errorf("ε=%g has non-positive time", r.Epsilon)
		}
		if r.RefreshCost < 0 {
			t.Errorf("ε=%g negative cost", r.Epsilon)
		}
	}
}

func TestFigure6MonotoneTradeoff(t *testing.T) {
	rs := []float64{0, 20, 40, 60, 80, 100, 120, 140}
	rows := Figure6(rs, 0.1, 90, DefaultSeed)
	if len(rows) != len(rs) {
		t.Fatalf("rows = %d", len(rows))
	}
	// The tradeoff is monotonically decreasing within approximation noise:
	// allow tiny upticks (< 5% of the full-cost scale) but require overall
	// decrease from R=0 to R=max.
	if rows[0].RefreshCost <= rows[len(rows)-1].RefreshCost {
		t.Errorf("cost did not decrease: R=0 → %g, R=140 → %g",
			rows[0].RefreshCost, rows[len(rows)-1].RefreshCost)
	}
	scale := rows[0].RefreshCost
	for i := 1; i < len(rows); i++ {
		if rows[i].RefreshCost > rows[i-1].RefreshCost+0.05*scale {
			t.Errorf("non-monotone jump at R=%g: %g → %g",
				rows[i].R, rows[i-1].RefreshCost, rows[i].RefreshCost)
		}
	}
	// At R=0 everything with nonzero width must be refreshed.
	if rows[0].Refreshed == 0 {
		t.Error("R=0 refreshed nothing")
	}
}

func TestSolversOrdering(t *testing.T) {
	rows := Solvers(100, 90, DefaultSeed)
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var exact float64 = -1
	for _, r := range rows {
		if r.Optimal {
			exact = r.RefreshCost
		}
	}
	if exact < 0 {
		t.Fatal("no exact solver row")
	}
	for _, r := range rows {
		if r.RefreshCost < exact-1e-9 {
			t.Errorf("solver %s beat the exact optimum: %g < %g", r.Name, r.RefreshCost, exact)
		}
	}
}

func TestModes(t *testing.T) {
	rows := Modes(90, DefaultSeed)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// TRAPP's middle ground costs at most precise mode.
		if r.TrappCost > r.PreciseCost+1e-9 {
			t.Errorf("%v: TRAPP cost %g > precise cost %g", r.Agg, r.TrappCost, r.PreciseCost)
		}
		if r.ImpreciseW <= 0 {
			t.Errorf("%v: imprecise width %g", r.Agg, r.ImpreciseW)
		}
	}
}

func TestAvgBounds(t *testing.T) {
	rows := AvgBounds(90, DefaultSeed)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.TightWidth > r.LooseWidth+1e-9 {
			t.Errorf("tight %g wider than loose %g at selectivity %.2f",
				r.TightWidth, r.LooseWidth, r.Selectivity)
		}
	}
}

func TestAdaptiveBeatsAtLeastOneStatic(t *testing.T) {
	rows := Adaptive(20, 60, DefaultSeed)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AdaptiveRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	adaptive := byName["adaptive(1)"]
	narrow := byName["static-narrow(0.5)"]
	wide := byName["static-wide(8)"]
	// The adaptive policy should not be worse than BOTH static extremes.
	if adaptive.TotalMessages > narrow.TotalMessages && adaptive.TotalMessages > wide.TotalMessages {
		t.Errorf("adaptive (%d) worse than both static policies (%d, %d)",
			adaptive.TotalMessages, narrow.TotalMessages, wide.TotalMessages)
	}
	// Narrow bounds must suffer more value-initiated refreshes than wide.
	if narrow.ValueRefreshes < wide.ValueRefreshes {
		t.Errorf("narrow (%d) fewer value refreshes than wide (%d)",
			narrow.ValueRefreshes, wide.ValueRefreshes)
	}
}

func TestJoins(t *testing.T) {
	rows := Joins(8, 5, DefaultSeed)
	if len(rows) != 2 {
		t.Fatalf("rows = %d: %+v", len(rows), rows)
	}
	for _, r := range rows {
		if r.FinalWidth > 5+1e-6 {
			t.Errorf("%s final width %g > 5", r.Planner, r.FinalWidth)
		}
	}
}

func TestWriteTable(t *testing.T) {
	var sb strings.Builder
	WriteTable(&sb, []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "333") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines", len(lines))
	}
}

func TestConcurrentBenchmarkRuns(t *testing.T) {
	res, err := Concurrent(2, 0, 40, 4, DefaultSeed, 100*time.Millisecond, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clients != 2 || res.Queries <= 0 || res.QPS <= 0 {
		t.Errorf("result = %+v", res)
	}
	if res.P50 < 0 || res.P99 < res.P50 {
		t.Errorf("latency percentiles = %v, %v", res.P50, res.P99)
	}
}

func TestConcurrentMixedModeRuns(t *testing.T) {
	res, err := Concurrent(2, 2, 40, 4, DefaultSeed, 100*time.Millisecond, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Updaters != 2 || res.Pushes <= 0 || res.PushRate <= 0 {
		t.Errorf("mixed-mode result = %+v", res)
	}
	if res.Queries <= 0 || res.QPS <= 0 {
		t.Errorf("mixed-mode result = %+v", res)
	}
}
