// Package experiment implements the paper's evaluation (section 5.2.1) and
// the ablations listed in DESIGN.md. Each experiment returns typed rows so
// the same code backs cmd/trappbench's tables and the testing.B benchmarks
// at the repository root; EXPERIMENTS.md records paper-vs-measured shapes.
package experiment

import (
	"fmt"
	"io"
	"math"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/cache"
	"trapp/internal/interval"
	"trapp/internal/join"
	"trapp/internal/knapsack"
	"trapp/internal/netsim"
	"trapp/internal/predicate"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/source"
	"trapp/internal/workload"
)

// DefaultSeed makes every experiment reproducible; the value is arbitrary.
const DefaultSeed = 20000615 // VLDB 2000 camera-ready season

// stockItems converts the stock-day workload into the SUM knapsack items
// used throughout the Figure 5/6 experiments.
func stockItems(quotes []workload.StockQuote) []knapsack.Item {
	items := make([]knapsack.Item, len(quotes))
	for i, q := range quotes {
		items[i] = knapsack.Item{Profit: q.Cost, Weight: q.High - q.Low}
	}
	return items
}

// refreshCostOfComplement sums the refresh costs outside the knapsack.
func refreshCostOfComplement(quotes []workload.StockQuote, sol knapsack.Solution) float64 {
	var total float64
	for _, q := range quotes {
		total += q.Cost
	}
	return total - sol.Profit
}

// Fig5Row is one point of Figure 5: CHOOSE_REFRESH running time and the
// total refresh cost of the selected tuples, as the knapsack approximation
// parameter ε varies with R fixed at 100.
type Fig5Row struct {
	Epsilon     float64
	ChooseTime  time.Duration
	RefreshCost float64
}

// Figure5 reproduces the paper's Figure 5: SUM over the stock workload,
// R = 100, ε swept from coarse to fine. Each timing point repeats the
// selection `reps` times and reports the average.
func Figure5(epsilons []float64, r float64, n int, seed int64, reps int) []Fig5Row {
	quotes := workload.StockDay(n, seed)
	items := stockItems(quotes)
	if reps < 1 {
		reps = 1
	}
	rows := make([]Fig5Row, 0, len(epsilons))
	for _, eps := range epsilons {
		var sol knapsack.Solution
		start := time.Now()
		for k := 0; k < reps; k++ {
			sol = knapsack.Approx(items, r, eps)
		}
		elapsed := time.Since(start) / time.Duration(reps)
		rows = append(rows, Fig5Row{
			Epsilon:     eps,
			ChooseTime:  elapsed,
			RefreshCost: refreshCostOfComplement(quotes, sol),
		})
	}
	return rows
}

// Fig6Row is one point of Figure 6: the precision-performance tradeoff of
// refresh cost versus precision constraint R at ε = 0.1.
type Fig6Row struct {
	R           float64
	RefreshCost float64
	Refreshed   int
}

// Figure6 reproduces the paper's Figure 6: SUM over the stock workload
// with ε = 0.1 and R swept across [0, Rmax]; refresh cost decreases
// continuously and monotonically (modulo approximation noise) as the
// constraint relaxes — the concrete instantiation of Figure 1(b).
func Figure6(rs []float64, eps float64, n int, seed int64) []Fig6Row {
	quotes := workload.StockDay(n, seed)
	items := stockItems(quotes)
	rows := make([]Fig6Row, 0, len(rs))
	for _, r := range rs {
		sol := knapsack.Approx(items, r, eps)
		rows = append(rows, Fig6Row{
			R:           r,
			RefreshCost: refreshCostOfComplement(quotes, sol),
			Refreshed:   len(items) - len(sol.Selected),
		})
	}
	return rows
}

// SolverRow compares knapsack solvers on the stock instance (ablation E5).
type SolverRow struct {
	Name        string
	Time        time.Duration
	RefreshCost float64
	Optimal     bool // solved exactly
}

// Solvers compares the exact DP, the FPTAS at several ε, and the greedy
// heuristics on the Figure 5 instance.
func Solvers(r float64, n int, seed int64) []SolverRow {
	quotes := workload.StockDay(n, seed)
	items := stockItems(quotes)
	var rows []SolverRow

	start := time.Now()
	dp, err := knapsack.ExactDP(items, r)
	if err == nil {
		rows = append(rows, SolverRow{"exact-dp", time.Since(start), refreshCostOfComplement(quotes, dp), true})
	}
	for _, eps := range []float64{0.3, 0.1, 0.02} {
		start = time.Now()
		sol := knapsack.Approx(items, r, eps)
		rows = append(rows, SolverRow{
			fmt.Sprintf("approx(ε=%.2g)", eps), time.Since(start),
			refreshCostOfComplement(quotes, sol), false,
		})
	}
	start = time.Now()
	gd := knapsack.GreedyDensity(items, r)
	rows = append(rows, SolverRow{"greedy-density", time.Since(start), refreshCostOfComplement(quotes, gd), false})
	start = time.Now()
	gu := knapsack.GreedyUniform(items, r)
	rows = append(rows, SolverRow{"greedy-uniform", time.Since(start), refreshCostOfComplement(quotes, gu), false})
	return rows
}

// ModeRow compares per-aggregate refresh cost across query modes
// (ablation E8): imprecise (R = ∞), TRAPP at a mid R, and precise (R = 0).
type ModeRow struct {
	Agg         aggregate.Func
	ImpreciseW  float64 // answer width with no refreshes
	TrappCost   float64 // refresh cost at the mid constraint
	TrappR      float64
	PreciseCost float64 // refresh cost at R = 0
}

// Modes runs MIN/MAX/SUM/AVG over the stock workload at three precision
// levels, quantifying the Figure 1 spectrum endpoints against TRAPP's
// middle ground.
func Modes(n int, seed int64) []ModeRow {
	fns := []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum, aggregate.Avg}
	var rows []ModeRow
	for _, fn := range fns {
		quotes := workload.StockDay(n, seed)
		tab := workload.StockTable(quotes)
		price := tab.Schema().MustLookup("price")
		initial := aggregate.Eval(tab, price, fn, nil)
		midR := initial.Width() / 4
		plan, err := refresh.Choose(tab, price, fn, nil, midR, refresh.Options{})
		if err != nil {
			continue
		}
		full, err := refresh.Choose(tab, price, fn, nil, 0, refresh.Options{})
		if err != nil {
			continue
		}
		rows = append(rows, ModeRow{
			Agg:         fn,
			ImpreciseW:  initial.Width(),
			TrappCost:   plan.Cost,
			TrappR:      midR,
			PreciseCost: full.Cost,
		})
	}
	return rows
}

// AvgBoundRow compares the tight (Appendix E) and loose (section 6.4.1)
// AVG bounds (ablation E7).
type AvgBoundRow struct {
	Selectivity float64 // fraction of tuples certainly satisfying the predicate
	TightWidth  float64
	LooseWidth  float64
}

// AvgBounds sweeps predicate selectivity over the stock workload and
// reports both AVG bound widths; the tight bound is never wider.
func AvgBounds(n int, seed int64) []AvgBoundRow {
	quotes := workload.StockDay(n, seed)
	tab := workload.StockTable(quotes)
	price := tab.Schema().MustLookup("price")
	var rows []AvgBoundRow
	for _, thresh := range []float64{40, 80, 120, 160} {
		p := predicate.NewCmp(predicate.Column(price, "price"), predicate.Gt, predicate.Const(thresh))
		cls := predicate.Classify(tab, p)
		tight := aggregate.Eval(tab, price, aggregate.Avg, p)
		loose := aggregate.EvalLooseAvg(tab, price, p)
		if tight.IsEmpty() {
			continue
		}
		rows = append(rows, AvgBoundRow{
			Selectivity: float64(len(cls.Plus)) / float64(tab.Len()),
			TightWidth:  tight.Width(),
			LooseWidth:  loose.Width(),
		})
	}
	return rows
}

// AdaptiveRow reports refresh counts for one width policy under a mixed
// update/query load (ablation E6, Appendix A).
type AdaptiveRow struct {
	Policy         string
	ValueRefreshes int64
	QueryRefreshes int64
	TotalMessages  int64
}

// Adaptive runs the full source/cache architecture under a mixed load of
// random-walk updates and constrained queries, comparing static width
// policies against the Appendix A adaptive controller. Fewer total
// refresh messages is better.
func Adaptive(objects, rounds int, seed int64) []AdaptiveRow {
	type policyCase struct {
		name string
		mk   func() boundfn.WidthPolicy
	}
	cases := []policyCase{
		{"static-narrow(0.5)", func() boundfn.WidthPolicy { return boundfn.StaticWidth(0.5) }},
		{"static-wide(8)", func() boundfn.WidthPolicy { return boundfn.StaticWidth(8) }},
		{"adaptive(1)", func() boundfn.WidthPolicy { return boundfn.NewAdaptiveWidth(1) }},
	}
	var rows []AdaptiveRow
	for _, pc := range cases {
		clock := netsim.NewClock()
		net := netsim.NewNetwork()
		src := source.New("s", clock, net, nil)
		schema := relation.NewSchema(
			relation.Column{Name: "id", Kind: relation.Exact},
			relation.Column{Name: "v", Kind: relation.Bounded},
		)
		c := cache.New("monitor", clock, schema)
		walks := make([]*walkState, objects)
		for i := 0; i < objects; i++ {
			w := newWalkState(float64(50+i), seed+int64(i))
			walks[i] = w
			if err := src.AddObject(int64(i+1), []float64{w.value}, 1+float64(i%10), pc.mk()); err != nil {
				panic(err)
			}
			if err := c.Subscribe(src, int64(i+1), []float64{float64(i + 1)}); err != nil {
				panic(err)
			}
		}
		for round := 0; round < rounds; round++ {
			clock.Advance(1)
			for i, w := range walks {
				w.step()
				if err := src.SetValue(int64(i+1), []float64{w.value}); err != nil {
					panic(err)
				}
			}
			// Every few rounds a monitoring query arrives with a moderate
			// precision constraint, triggering query-initiated refreshes.
			if round%5 == 4 {
				c.Sync()
				v := c.Schema().MustLookup("v")
				plan, err := refresh.ChooseStore(c.Store(), v, aggregate.Sum, nil, float64(objects)/2, refresh.Options{})
				if err != nil {
					panic(err)
				}
				for _, key := range plan.Keys {
					if _, ok := c.Master(key); !ok {
						panic("master fetch failed")
					}
				}
			}
		}
		st := net.Stats()
		rows = append(rows, AdaptiveRow{
			Policy:         pc.name,
			ValueRefreshes: st.Messages[netsim.ValueRefresh],
			QueryRefreshes: st.Messages[netsim.QueryRefresh],
			TotalMessages:  st.Messages[netsim.ValueRefresh] + st.Messages[netsim.QueryRefresh],
		})
	}
	return rows
}

// JoinRow compares the two join refresh planners (extension E9).
type JoinRow struct {
	Planner     string
	RefreshCost float64
	Refreshed   int
	FinalWidth  float64
}

// Joins runs an equi-join aggregation with a bounded selection under both
// planners on a random instance.
func Joins(n int, r float64, seed int64) []JoinRow {
	build := func() (*relation.Table, *relation.Table, workload.MapOracle, workload.MapOracle, join.Spec) {
		left, right, lm, rm := joinTables(n, seed)
		spec := join.Spec{
			Agg:     aggregate.Sum,
			AggSide: join.Right, AggColumn: 1,
			Pred: predicate.NewAnd(
				predicate.NewCmp(predicate.Column(0, "node"), predicate.Eq,
					predicate.Column(join.ShiftColumn(left.Schema(), 0), "from")),
				predicate.NewCmp(predicate.Column(1, "load"), predicate.Gt, predicate.Const(50)),
			),
			Within: r,
		}
		return left, right, lm, rm, spec
	}
	var rows []JoinRow
	{
		left, right, lm, rm, spec := build()
		res, err := join.Execute(left, right, spec, lm, rm)
		if err == nil {
			rows = append(rows, JoinRow{"batch-greedy", res.RefreshCost, res.Refreshed, res.Answer.Width()})
		}
	}
	{
		left, right, lm, rm, spec := build()
		res, err := join.ExecuteIterative(left, right, spec, lm, rm)
		if err == nil {
			rows = append(rows, JoinRow{"iterative", res.RefreshCost, res.Refreshed, res.Answer.Width()})
		}
	}
	return rows
}

// joinTables builds the random two-table join instance for E9.
func joinTables(n int, seed int64) (*relation.Table, *relation.Table, workload.MapOracle, workload.MapOracle) {
	ls := relation.NewSchema(
		relation.Column{Name: "node", Kind: relation.Exact},
		relation.Column{Name: "load", Kind: relation.Bounded},
	)
	rs := relation.NewSchema(
		relation.Column{Name: "from", Kind: relation.Exact},
		relation.Column{Name: "latency", Kind: relation.Bounded},
	)
	left, right := relation.NewTable(ls), relation.NewTable(rs)
	lm, rm := workload.MapOracle{}, workload.MapOracle{}
	w := newWalkState(0, seed)
	for i := 0; i < n; i++ {
		w.step()
		lo := 30 + 40*abs(math.Sin(float64(i)+w.value/10))
		width := 5 + 20*abs(math.Cos(float64(i)*2.1))
		left.MustInsert(relation.Tuple{
			Key:    int64(i + 1),
			Bounds: []interval.Interval{interval.Point(float64(i % (n/2 + 1))), interval.New(lo, lo+width)},
			Cost:   1 + float64(i%9),
		})
		lm[int64(i+1)] = []float64{lo + width*0.3}
		llo := 1 + 3*abs(math.Sin(float64(i)*1.7))
		lw := 1 + 4*abs(math.Cos(float64(i)*0.9))
		right.MustInsert(relation.Tuple{
			Key:    int64(1000 + i),
			Bounds: []interval.Interval{interval.Point(float64(i % (n/2 + 1))), interval.New(llo, llo+lw)},
			Cost:   1 + float64((i*3)%9),
		})
		rm[int64(1000+i)] = []float64{llo + lw*0.6}
	}
	return left, right, lm, rm
}

func abs(v float64) float64 { return math.Abs(v) }

// walkState is a tiny deterministic pseudo-random walk without math/rand,
// keeping experiment rows stable across Go versions.
type walkState struct {
	value float64
	state uint64
}

func newWalkState(start float64, seed int64) *walkState {
	return &walkState{value: start, state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (w *walkState) step() {
	w.state = w.state*6364136223846793005 + 1442695040888963407
	if w.state>>63 == 0 {
		w.value += 0.8
	} else {
		w.value -= 0.8
	}
}

// WriteTable renders rows as an aligned text table for cmd/trappbench.
func WriteTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	printRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	printRow(sep)
	for _, r := range rows {
		printRow(r)
	}
}
