package experiment

// E14 — push-based subscriptions vs a naive per-subscription poll loop.
//
// N standing queries (a handful of distinct dashboard shapes, precision
// constraints varying per subscriber) watch one links table while every
// link random-walks and the clock ticks once per round. Two executions
// of the identical workload are compared:
//
//   - poll: each subscriber re-runs its query every round, exactly the
//     pre-subscription Monitor.Poll strategy — an imprecise probe first,
//     then the full three-step execution (paying for its own refresh
//     plan) whenever the cached bounds have outgrown its constraint.
//   - push: each subscriber registers once with the continuous engine;
//     the engine maintains answers incrementally and repairs violated
//     constraints with shared, margin-scaled refresh batches deduped
//     across all subscriptions.
//
// Both executions deliver the same precision (every subscriber's
// constraint is re-established every round; Unmet counts failures). The
// headline metric is the total refresh network cost paid for that
// precision.

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/continuous"
	"trapp/internal/netsim"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/source"
	"trapp/internal/trapp"
	"trapp/internal/workload"
)

// SubscriptionModeResult reports one mode of the E14 benchmark.
type SubscriptionModeResult struct {
	Mode        string `json:"mode"`
	Subscribers int    `json:"subscribers"`
	Rounds      int    `json:"rounds"`
	// Deliveries counts answers delivered to subscribers: one per poll
	// in poll mode, one per pushed notification in push mode (quiescent
	// standing queries are silent, so push delivers far fewer for the
	// same precision).
	Deliveries       int64   `json:"deliveries"`
	DeliveriesPerSec float64 `json:"deliveries_per_sec"`
	// Unmet counts subscriber-rounds whose constraint was not
	// re-established (0 in a correct run).
	Unmet int64 `json:"unmet"`
	// Refresh traffic paid during the run.
	QueryRefreshes   int64   `json:"query_refreshes"`
	QueryRefreshCost float64 `json:"query_refresh_cost"`
	ValueRefreshes   int64   `json:"value_refreshes"`
	ValueRefreshCost float64 `json:"value_refresh_cost"`
	TotalRefreshCost float64 `json:"total_refresh_cost"`
	// SharedRefreshes and Views are engine metrics (push mode only).
	SharedRefreshes int64 `json:"shared_refreshes,omitempty"`
	Views           int   `json:"views,omitempty"`
	// RepairP50/RepairP99 are per-round constraint re-establishment
	// latencies: the full subscriber sweep in poll mode, the engine
	// settle in push mode.
	RepairP50 time.Duration `json:"repair_p50_ns"`
	RepairP99 time.Duration `json:"repair_p99_ns"`
	Elapsed   time.Duration `json:"elapsed_ns"`
}

// SubscriptionsComparison pairs the two modes over the identical
// workload.
type SubscriptionsComparison struct {
	Links       int                    `json:"links"`
	Sources     int                    `json:"sources"`
	Subscribers int                    `json:"subscribers"`
	Rounds      int                    `json:"rounds"`
	Seed        int64                  `json:"seed"`
	Poll        SubscriptionModeResult `json:"poll"`
	Push        SubscriptionModeResult `json:"push"`
	// RefreshCostRatio is poll/push total refresh network cost — the
	// headline shared-maintenance saving.
	RefreshCostRatio float64 `json:"refresh_cost_ratio"`
}

// subscriptionQuery builds subscriber i's standing query: one of a few
// distinct dashboard shapes (so subscribers share engine views), with
// the precision constraint loosened per subscriber so views span
// heterogeneous demands.
func subscriptionQuery(i int, schema *relation.Schema) query.Query {
	slack := []float64{1, 1.5, 2.5}[(i/8)%3]
	var q query.Query
	switch i % 8 {
	case 0, 1:
		q = query.NewQuery("links", aggregate.Sum, workload.ColLatency)
		q.Within = 25 * slack
	case 2:
		q = query.NewQuery("links", aggregate.Avg, workload.ColTraffic)
		q.Within = 8 * slack
	case 3:
		q = query.NewQuery("links", aggregate.Min, workload.ColBandwidth)
		q.Within = 10 * slack
	case 4:
		q = query.NewQuery("links", aggregate.Max, workload.ColLatency)
		q.Within = 6 * slack
	case 5:
		q = query.NewQuery("links", aggregate.Sum, workload.ColTraffic)
		q.Within = 60 * slack
	case 6:
		q = query.NewQuery("links", aggregate.Sum, workload.ColLatency)
		q.Within = 20 * slack
		q.Where = predicate.NewCmp(
			predicate.Column(schema.MustLookup(workload.ColTraffic), workload.ColTraffic),
			predicate.Gt, predicate.Const(120))
	default:
		q = query.NewQuery("links", aggregate.Avg, workload.ColLatency)
		q.Within = 4 * slack
	}
	return q
}

// UpdateFraction is the fraction of links receiving a random-walk step
// each benchmark round. Dashboards demand precision every tick while the
// underlying data drifts more slowly, so a round touches a sample of the
// links, not all of them.
var UpdateFraction = 0.02

// subscriptionSystem builds the E14 links system: like concurrentSystem
// but constructed here so the benchmark owns its width-policy choices.
func subscriptionSystem(links, srcCount int, seed int64) (*trapp.System, *workload.Network, error) {
	net, err := workload.NewNetwork(max(2, links/8), links, seed)
	if err != nil {
		return nil, nil, err
	}
	sys := trapp.NewSystem(refresh.Options{})
	c, err := sys.AddCache("monitor", workload.LinkSchema())
	if err != nil {
		return nil, nil, err
	}
	for si := 0; si < srcCount; si++ {
		if _, err := sys.AddSource(fmt.Sprintf("s%d", si), nil); err != nil {
			return nil, nil, err
		}
	}
	for i, l := range net.Links {
		src := sys.Source(fmt.Sprintf("s%d", i%srcCount))
		if err := src.AddObject(l.Key, l.Values(), l.Cost, boundfn.NewAdaptiveWidth(2)); err != nil {
			return nil, nil, err
		}
		if err := c.Subscribe(src, l.Key, []float64{float64(l.From), float64(l.To)}); err != nil {
			return nil, nil, err
		}
	}
	if err := sys.Mount("links", c); err != nil {
		return nil, nil, err
	}
	return sys, net, nil
}

// Subscriptions runs one mode ("poll" or "push") of the E14 benchmark.
func Subscriptions(mode string, subscribers, links, srcCount, rounds int, seed int64) (SubscriptionModeResult, error) {
	sys, net, err := subscriptionSystem(links, srcCount, seed)
	if err != nil {
		return SubscriptionModeResult{}, err
	}
	defer sys.Close()
	schema := sys.MountedCache("links").Schema()
	queries := make([]query.Query, subscribers)
	for i := range queries {
		queries[i] = subscriptionQuery(i, schema)
	}
	srcs := make([]*source.Source, len(net.Links))
	for i := range net.Links {
		srcs[i] = sys.Source(fmt.Sprintf("s%d", i%srcCount))
	}
	// step applies one round of drift to a deterministic sample of the
	// links; both modes replay the identical sequence.
	updRng := rand.New(rand.NewSource(seed + 99))
	pollOrder := rand.New(rand.NewSource(seed + 7))
	perRound := int(UpdateFraction*float64(len(net.Links))) + 1
	step := func() error {
		for u := 0; u < perRound; u++ {
			i := updRng.Intn(len(net.Links))
			if err := srcs[i].SetValue(net.Links[i].Key, net.Links[i].Step()); err != nil {
				return err
			}
		}
		return nil
	}
	res := SubscriptionModeResult{Mode: mode, Subscribers: subscribers, Rounds: rounds}
	before := sys.Stats()
	mBefore := sys.SubscriptionMetrics()
	repairs := make([]time.Duration, 0, rounds)
	start := time.Now()

	switch mode {
	case "push":
		subs := make([]*continuous.Subscription, subscribers)
		for i, q := range queries {
			s, err := sys.Subscribe(q)
			if err != nil {
				return res, err
			}
			subs[i] = s
		}
		for r := 0; r < rounds; r++ {
			sys.Clock.Advance(1)
			if err := step(); err != nil {
				return res, err
			}
			t0 := time.Now()
			sys.Settle()
			repairs = append(repairs, time.Since(t0))
			for _, s := range subs {
				if cur, ok := s.Current(); !ok || !cur.Met {
					res.Unmet++
				}
			}
		}
		m := sys.SubscriptionMetrics()
		res.Deliveries = m.Notifications - mBefore.Notifications
		res.SharedRefreshes = m.SharedRefreshes - mBefore.SharedRefreshes
		res.Views = m.Views
		for _, s := range subs {
			s.Close()
		}
	case "poll":
		for r := 0; r < rounds; r++ {
			sys.Clock.Advance(1)
			if err := step(); err != nil {
				return res, err
			}
			t0 := time.Now()
			for _, qi := range pollOrder.Perm(len(queries)) {
				q := queries[qi]
				// The pre-subscription Monitor.Poll strategy: free if
				// cached bounds still satisfy the constraint, otherwise
				// pay for this query's own refresh plan. Pollers are
				// uncoordinated, so each round they arrive in arbitrary
				// order — a loose constraint repaired first is repaired
				// again (harder) when a stricter sibling polls later,
				// the ratchet the shared scheduler's cross-subscription
				// planning removes.
				free, err := sys.ExecuteCtx(context.Background(), q, query.WithMode(query.ModeImprecise))
				if err != nil {
					return res, err
				}
				res.Deliveries++
				if !free.Answer.IsEmpty() && free.Answer.Width() <= q.Within+1e-9 {
					continue
				}
				full, err := sys.ExecuteCtx(context.Background(), q)
				if err != nil {
					return res, err
				}
				if !full.Met {
					res.Unmet++
				}
			}
			repairs = append(repairs, time.Since(t0))
		}
	default:
		return res, fmt.Errorf("experiment: unknown subscription mode %q", mode)
	}

	res.Elapsed = time.Since(start)
	after := sys.Stats()
	res.QueryRefreshes = after.Messages[netsim.QueryRefresh] - before.Messages[netsim.QueryRefresh]
	res.QueryRefreshCost = after.QueryRefreshCost - before.QueryRefreshCost
	res.ValueRefreshes = after.Messages[netsim.ValueRefresh] - before.Messages[netsim.ValueRefresh]
	res.ValueRefreshCost = after.ValueRefreshCost - before.ValueRefreshCost
	res.TotalRefreshCost = res.QueryRefreshCost + res.ValueRefreshCost
	res.DeliveriesPerSec = float64(res.Deliveries) / res.Elapsed.Seconds()
	sort.Slice(repairs, func(a, b int) bool { return repairs[a] < repairs[b] })
	if len(repairs) > 0 {
		res.RepairP50 = repairs[len(repairs)/2]
		i99 := len(repairs) * 99 / 100
		if i99 >= len(repairs) {
			i99 = len(repairs) - 1
		}
		res.RepairP99 = repairs[i99]
	}
	return res, nil
}

// SubscriptionsCompare runs both modes over the identical workload and
// reports the refresh-cost ratio.
func SubscriptionsCompare(subscribers, links, srcCount, rounds int, seed int64) (SubscriptionsComparison, error) {
	cmp := SubscriptionsComparison{
		Links: links, Sources: srcCount, Subscribers: subscribers, Rounds: rounds, Seed: seed,
	}
	var err error
	if cmp.Poll, err = Subscriptions("poll", subscribers, links, srcCount, rounds, seed); err != nil {
		return cmp, err
	}
	if cmp.Push, err = Subscriptions("push", subscribers, links, srcCount, rounds, seed); err != nil {
		return cmp, err
	}
	if cmp.Push.TotalRefreshCost > 0 {
		cmp.RefreshCostRatio = cmp.Poll.TotalRefreshCost / cmp.Push.TotalRefreshCost
	}
	return cmp, nil
}
