package experiment

// The adversarial scale benchmark (-scale): 10⁵–10⁶ objects spread over
// Zipf-sized tenant tables, queried and updated with Zipfian key skew
// that switches regime on the logical clock (warm → steady → hot burst
// → drift, workload.DefaultSchedule). Unlike the benign closed-loop
// benchmarks, this one is built to hit the engine where skew hurts:
// all query mass on a megatenant (hot shards in its store), a burst
// regime multiplying push rate 8× (scheduler repair convoys), and
// per-tenant client identities churning the server's admission ledgers.
// Reported per phase: QPS/p50/p99, push throughput, the hottest shard's
// share of pushes, and repair (Settle) latency percentiles.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/server"
	"trapp/internal/source"
	"trapp/internal/trapp"
	"trapp/internal/workload"
)

// scaleSources is the fixed data-source count of the scale system;
// objects are spread round-robin by key.
const scaleSources = 16

// ScaleSourceFor returns the id of the source owning a scale object key,
// so external drivers (trappserver's -drive loop) can push updates into
// the same system BuildScaleSystem wires.
func ScaleSourceFor(key int64) string {
	return fmt.Sprintf("s%d", int(key)%scaleSources)
}

// ScaleOptions parameterizes the -scale benchmark.
type ScaleOptions struct {
	// Objects and Tenants size the population (workload.ScaleConfig).
	Objects, Tenants int
	// Clients, Updaters, Subscribers set the concurrent load shape.
	Clients, Updaters, Subscribers int
	// QueryS and UpdateS are the steady-phase Zipf exponents; the
	// burst phase sharpens both by +0.3.
	QueryS, UpdateS float64
	// TicksPerPhase is each regime's length on the logical clock.
	TicksPerPhase int64
	// TickEvery is the wall-clock period of one tick (default 10ms,
	// the 100 ticks/second cap the other benchmarks use).
	TickEvery time.Duration
	// PushRate is the baseline aggregate push rate in pushes/second,
	// scaled per phase by the regime's UpdateRate.
	PushRate float64
	// Seed makes the generated population and all samplers deterministic.
	Seed int64
}

func (o ScaleOptions) withDefaults() ScaleOptions {
	if o.Objects == 0 {
		o.Objects = 100000
	}
	if o.Tenants == 0 {
		o.Tenants = 32
	}
	if o.Clients == 0 {
		o.Clients = 8
	}
	if o.Updaters == 0 {
		o.Updaters = 4
	}
	if o.Subscribers == 0 {
		o.Subscribers = 200
	}
	if o.QueryS == 0 {
		o.QueryS = 1.1
	}
	if o.UpdateS == 0 {
		o.UpdateS = 1.2
	}
	if o.TicksPerPhase == 0 {
		o.TicksPerPhase = 300
	}
	if o.TickEvery == 0 {
		o.TickEvery = 10 * time.Millisecond
	}
	if o.PushRate == 0 {
		o.PushRate = 20000
	}
	if o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	return o
}

// ScalePhase reports one regime's measurement window.
type ScalePhase struct {
	Name       string  `json:"name"`
	QueryS     float64 `json:"query_s"`
	UpdateS    float64 `json:"update_s"`
	UpdateRate float64 `json:"update_rate"`
	HotOffset  int     `json:"hot_offset,omitempty"`

	Elapsed time.Duration `json:"elapsed_ns"`
	Queries int64         `json:"queries"`
	QPS     float64       `json:"qps"`
	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
	// Unmet counts queries whose precision constraint could not be met.
	Unmet int64 `json:"unmet,omitempty"`

	Pushes   int64   `json:"pushes"`
	PushRate float64 `json:"pushes_per_sec"`
	// HotShardPushShare is the hottest shard's fraction of the phase's
	// pushes (shard indices aggregated across tenant stores; 1/nshards
	// is perfectly balanced).
	HotShardPushShare float64 `json:"hot_shard_push_share"`

	// Repairs are timed Settle() passes — the scheduler's repair
	// latency under this regime's violation load.
	Repairs   int           `json:"repairs"`
	RepairP50 time.Duration `json:"repair_p50_ns"`
	RepairP99 time.Duration `json:"repair_p99_ns"`
}

// ScaleResult reports one -scale run.
type ScaleResult struct {
	Objects       int     `json:"objects"`
	Tenants       int     `json:"tenants"`
	Sources       int     `json:"sources"`
	Clients       int     `json:"clients"`
	Updaters      int     `json:"updaters"`
	Subscribers   int     `json:"subscribers"`
	QueryS        float64 `json:"query_s"`
	UpdateS       float64 `json:"update_s"`
	TicksPerPhase int64   `json:"ticks_per_phase"`
	Seed          int64   `json:"seed"`

	// Build is the time to generate and load the population.
	Build time.Duration `json:"build_ns"`
	// MaxShardLenShare is the fullest shard's share of all tuples
	// (shard indices aggregated across tenant stores; 1/nshards is
	// perfectly balanced).
	MaxShardLenShare float64 `json:"max_shard_len_share"`
	// Notifications and SchedRefreshCost are continuous-engine deltas
	// over the whole run; RefreshCost is the query-initiated total.
	Notifications    int64   `json:"notifications"`
	SchedRefreshCost float64 `json:"sched_refresh_cost"`
	RefreshCost      float64 `json:"refresh_cost"`

	Phases []ScalePhase `json:"phases"`
}

// BuildScaleSystem builds the multi-tenant scale system: one sharded
// cache/table per tenant (tenant_0 .. tenant_{n-1}, Zipf-sized), every
// object promised converged static-width bounds like BuildLinkSystem,
// spread round-robin over scaleSources sources. Exported so
// cmd/trappserver can serve the identical system for -scale -remote.
func BuildScaleSystem(objects, tenants int, seed int64) (*trapp.System, *workload.Scale, error) {
	sc, err := workload.NewScale(workload.ScaleConfig{Objects: objects, Tenants: tenants, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	sys := trapp.NewSystem(refresh.Options{Solver: refresh.SolverGreedyDensity})
	srcs := make([]*source.Source, scaleSources)
	for si := 0; si < scaleSources; si++ {
		s, err := sys.AddSource(fmt.Sprintf("s%d", si), nil)
		if err != nil {
			return nil, nil, err
		}
		srcs[si] = s
	}
	for t := 0; t < tenants; t++ {
		name := workload.TenantName(t)
		c, err := sys.AddCache(name, workload.ScaleSchema())
		if err != nil {
			return nil, nil, err
		}
		objs := sc.TenantObjects(t)
		for i := range objs {
			o := &objs[i]
			src := srcs[int(o.Key)%scaleSources]
			if err := src.AddObject(o.Key, o.Values(), o.Cost, boundfn.StaticWidth(0.5)); err != nil {
				return nil, nil, err
			}
			if err := c.Subscribe(src, o.Key, []float64{float64(o.Region)}); err != nil {
				return nil, nil, err
			}
		}
		if err := sys.Mount(name, c); err != nil {
			return nil, nil, err
		}
	}
	return sys, sc, nil
}

// scaleQuery builds one query of the scale mix against the given
// tenant — the in-process mirror of workload.Scale.QuerySQL's shapes.
// SUM constraints scale with the tenant's cardinality (mostly answered
// from cache); tight MIN/MAX constraints below the converged 0.5 bound
// width force occasional paid refreshes, the query-initiated traffic
// that dirties hot shards.
func scaleQuery(rng *rand.Rand, sc *workload.Scale, tenant int, schema *relation.Schema) query.Query {
	name := workload.TenantName(tenant)
	sz := float64(sc.TenantSize(tenant))
	var q query.Query
	switch rng.Intn(5) {
	case 0:
		q = query.NewQuery(name, aggregate.Sum, "value")
		q.Within = (1 + rng.Float64()*4) * sz
	case 1:
		q = query.NewQuery(name, aggregate.Avg, "load")
		q.RelativeWithin = 0.02 + rng.Float64()*0.18
	case 2:
		// Tight: below the 0.5 converged width about half the time, so
		// the engine pays a small refresh batch over the extreme's
		// candidate set.
		q = query.NewQuery(name, aggregate.Min, "value")
		q.Within = 0.2 + rng.Float64()*0.6
	case 3:
		q = query.NewQuery(name, aggregate.Count, "value")
		q.Within = float64(rng.Intn(4))
		q.Where = predicate.NewCmp(
			predicate.Column(schema.MustLookup("load"), "load"),
			predicate.Gt, predicate.Const(20+rng.Float64()*60))
	default:
		q = query.NewQuery(name, aggregate.Max, "load")
		q.Within = 0.2 + rng.Float64()*0.6
		q.Where = predicate.NewCmp(
			predicate.Column(schema.MustLookup("region"), "region"),
			predicate.Eq, predicate.Const(float64(rng.Intn(sc.Config.Regions))))
	}
	return q
}

// scaleSubscription builds one standing query: grouped SUM/AVG over
// region (loose constraints — exercised by notification traffic) and a
// minority of tight MAX constraints that stay violated under load,
// giving the repair scheduler steady work.
func scaleSubscription(rng *rand.Rand, sc *workload.Scale, tenant int) query.Query {
	name := workload.TenantName(tenant)
	sz := float64(sc.TenantSize(tenant))
	regions := float64(sc.Config.Regions)
	var q query.Query
	switch rng.Intn(4) {
	case 0:
		q = query.NewQuery(name, aggregate.Sum, "value")
		q.Within = (1.2 + rng.Float64()) * 0.5 * sz / regions
		q.GroupBy = []string{"region"}
	case 1:
		q = query.NewQuery(name, aggregate.Avg, "load")
		q.RelativeWithin = 0.05 + rng.Float64()*0.15
		q.GroupBy = []string{"region"}
	case 2:
		q = query.NewQuery(name, aggregate.Count, "value")
		q.Within = 1 + rng.Float64()*4
	default:
		q = query.NewQuery(name, aggregate.Max, "load")
		q.Within = 0.3 + rng.Float64()*0.4
	}
	return q
}

// Scale runs the embedded adversarial benchmark: build the population,
// register Subscribers standing queries, then run Clients closed-loop
// query goroutines and Updaters open-loop push goroutines through the
// full regime schedule, advancing the logical clock at TickEvery. Each
// phase is measured separately; the run ends when the schedule does.
func Scale(opts ScaleOptions) (ScaleResult, error) {
	opts = opts.withDefaults()
	t0 := time.Now()
	sys, sc, err := BuildScaleSystem(opts.Objects, opts.Tenants, opts.Seed)
	if err != nil {
		return ScaleResult{}, err
	}
	defer sys.Close()
	build := time.Since(t0)

	sched := workload.DefaultSchedule(opts.TicksPerPhase, opts.QueryS, opts.UpdateS, opts.Objects)
	regimes := sched.Regimes()
	nph := len(regimes)

	// Per-regime samplers, built once: tenant-ranked for queries
	// (tenant 0 is the largest), object-ranked for updates.
	qZipf := make([]*workload.Zipf, nph)
	uZipf := make([]*workload.Zipf, nph)
	for i, r := range regimes {
		if qZipf[i], err = workload.NewZipf(opts.Tenants, r.QueryS); err != nil {
			return ScaleResult{}, err
		}
		if uZipf[i], err = workload.NewZipf(opts.Objects, r.UpdateS); err != nil {
			return ScaleResult{}, err
		}
	}

	// Standing queries, spread Zipf over tenants like the query load.
	subRng := rand.New(rand.NewSource(opts.Seed + 101))
	subTenant := workload.MustZipf(opts.Tenants, 1.0)
	subCtx, cancelSubs := context.WithCancel(context.Background())
	defer cancelSubs()
	for i := 0; i < opts.Subscribers; i++ {
		q := scaleSubscription(subRng, sc, subTenant.Rank(subRng))
		if _, err := sys.SubscribeCtx(subCtx, q); err != nil {
			return ScaleResult{}, fmt.Errorf("subscribe %d: %w", i, err)
		}
	}

	stores := make([]*relation.Store, opts.Tenants)
	for t := 0; t < opts.Tenants; t++ {
		stores[t] = sys.MountedCache(workload.TenantName(t)).Store()
	}
	schema := stores[0].Schema()
	srcs := make([]*source.Source, scaleSources)
	for si := 0; si < scaleSources; si++ {
		srcs[si] = sys.Source(fmt.Sprintf("s%d", si))
	}

	var (
		stop     atomic.Bool
		phaseIdx atomic.Int64
		wg       sync.WaitGroup

		queries = make([]atomic.Int64, nph)
		unmet   = make([]atomic.Int64, nph)
		pushes  = make([]atomic.Int64, nph)

		latMu sync.Mutex
		lats  = make([][]time.Duration, nph)

		repairMu sync.Mutex
		repairs  = make([][]time.Duration, nph)
	)
	nshards := stores[0].NumShards()
	pushShard := make([][]atomic.Int64, nph)
	for i := range pushShard {
		pushShard[i] = make([]atomic.Int64, nshards)
	}

	// Phase wall-clock boundaries, written by the clock goroutine.
	phaseStart := make([]time.Time, nph)
	phaseEnd := make([]time.Time, nph)
	phaseStart[0] = time.Now()

	// Clock: advance one tick per TickEvery, flip the phase on regime
	// boundaries, stop everything when the schedule ends.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(opts.TickEvery)
		defer ticker.Stop()
		cur, tick := 0, int64(0)
		for range ticker.C {
			if stop.Load() {
				return
			}
			sys.Clock.Advance(1)
			tick++
			if tick >= sched.TotalTicks() {
				phaseEnd[cur] = time.Now()
				stop.Store(true)
				return
			}
			if idx := sched.Index(tick); idx != cur {
				now := time.Now()
				phaseEnd[cur] = now
				phaseStart[idx] = now
				cur = idx
				phaseIdx.Store(int64(idx))
			}
		}
	}()

	// Closed-loop clients: Zipf-pick a tenant (rotated by the regime's
	// hot offset), run one query of the mix, record into the phase the
	// query started in.
	for cl := 0; cl < opts.Clients; cl++ {
		wg.Add(1)
		go func(clientSeed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(clientSeed))
			local := make([][]time.Duration, nph)
			ctx := context.Background()
			for !stop.Load() {
				ph := int(phaseIdx.Load())
				reg := regimes[ph]
				ten := qZipf[ph].Rank(rng)
				if reg.HotOffset > 0 {
					ten = (ten + reg.HotOffset) % opts.Tenants
				}
				q := scaleQuery(rng, sc, ten, schema)
				qt0 := time.Now()
				_, err := sys.ExecuteCtx(ctx, q)
				switch {
				case err == nil:
				case errors.Is(err, query.ErrPrecisionUnmet{}):
					unmet[ph].Add(1)
				default:
					panic(err)
				}
				local[ph] = append(local[ph], time.Since(qt0))
				queries[ph].Add(1)
			}
			latMu.Lock()
			for ph := range local {
				lats[ph] = append(lats[ph], local[ph]...)
			}
			latMu.Unlock()
		}(opts.Seed + 500 + int64(cl))
	}

	// Open-loop updaters: Zipf-pick an object (rotated by hot offset),
	// remap into this updater's ownership stride (walk state is
	// single-owner), push, pace to the regime's rate.
	for u := 0; u < opts.Updaters; u++ {
		wg.Add(1)
		go func(u int, updSeed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(updSeed))
			next := time.Now()
			const batch = 32
			for !stop.Load() {
				ph := int(phaseIdx.Load())
				reg := regimes[ph]
				for i := 0; i < batch; i++ {
					idx := uZipf[ph].Rank(rng)
					if reg.HotOffset > 0 {
						idx = (idx + reg.HotOffset) % opts.Objects
					}
					idx = idx - idx%opts.Updaters + u
					if idx >= opts.Objects {
						idx -= opts.Updaters
					}
					o := &sc.Objects[idx]
					if err := srcs[int(o.Key)%scaleSources].SetValue(o.Key, o.Step(rng, 1)); err != nil {
						panic(err)
					}
					pushes[ph].Add(1)
					pushShard[ph][stores[o.Tenant].ShardOf(o.Key)].Add(1)
				}
				rate := opts.PushRate * reg.UpdateRate / float64(opts.Updaters)
				if rate > 0 {
					next = next.Add(time.Duration(float64(batch) / rate * float64(time.Second)))
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					} else if d < -100*time.Millisecond {
						next = time.Now().Add(-100 * time.Millisecond)
					}
				}
			}
		}(u, opts.Seed+900+int64(u))
	}

	// Settler: timed synchronous repair passes — the scheduler's
	// convoy-sensitive path, measured per phase.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			ph := int(phaseIdx.Load())
			st0 := time.Now()
			sys.Settle()
			d := time.Since(st0)
			repairMu.Lock()
			repairs[ph] = append(repairs[ph], d)
			repairMu.Unlock()
			time.Sleep(20 * time.Millisecond)
		}
	}()

	smBefore := sys.SubscriptionMetrics()
	statsBefore := sys.Stats()
	wg.Wait()
	smAfter := sys.SubscriptionMetrics()
	statsAfter := sys.Stats()
	cancelSubs()

	out := ScaleResult{
		Objects:          opts.Objects,
		Tenants:          opts.Tenants,
		Sources:          scaleSources,
		Clients:          opts.Clients,
		Updaters:         opts.Updaters,
		Subscribers:      opts.Subscribers,
		QueryS:           opts.QueryS,
		UpdateS:          opts.UpdateS,
		TicksPerPhase:    opts.TicksPerPhase,
		Seed:             opts.Seed,
		Build:            build,
		Notifications:    smAfter.Notifications - smBefore.Notifications,
		SchedRefreshCost: smAfter.RefreshCost - smBefore.RefreshCost,
		RefreshCost:      statsAfter.QueryRefreshCost - statsBefore.QueryRefreshCost,
	}

	// Occupancy: aggregate shard lengths across tenant stores by index.
	total := 0
	shardLens := make([]int, nshards)
	for _, st := range stores {
		for i, l := range st.ShardLens() {
			shardLens[i] += l
			total += l
		}
	}
	maxLen := 0
	for _, l := range shardLens {
		if l > maxLen {
			maxLen = l
		}
	}
	if total > 0 {
		out.MaxShardLenShare = float64(maxLen) / float64(total)
	}

	for ph, reg := range regimes {
		elapsed := phaseEnd[ph].Sub(phaseStart[ph])
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		p := ScalePhase{
			Name:       reg.Name,
			QueryS:     reg.QueryS,
			UpdateS:    reg.UpdateS,
			UpdateRate: reg.UpdateRate,
			HotOffset:  reg.HotOffset,
			Elapsed:    elapsed,
			Queries:    queries[ph].Load(),
			Unmet:      unmet[ph].Load(),
			Pushes:     pushes[ph].Load(),
		}
		p.QPS = float64(p.Queries) / elapsed.Seconds()
		p.PushRate = float64(p.Pushes) / elapsed.Seconds()
		var hot int64
		for i := range pushShard[ph] {
			if n := pushShard[ph][i].Load(); n > hot {
				hot = n
			}
		}
		if p.Pushes > 0 {
			p.HotShardPushShare = float64(hot) / float64(p.Pushes)
		}
		p.P50, p.P99 = durationPercentiles(lats[ph])
		rp50, rp99 := durationPercentiles(repairs[ph])
		p.Repairs = len(repairs[ph])
		p.RepairP50, p.RepairP99 = rp50, rp99
		out.Phases = append(out.Phases, p)
	}
	return out, nil
}

// durationPercentiles returns the p50 and p99 of a sample (sorting it
// in place).
func durationPercentiles(d []time.Duration) (p50, p99 time.Duration) {
	if len(d) == 0 {
		return 0, 0
	}
	sort.Slice(d, func(a, b int) bool { return d[a] < d[b] })
	at := func(p float64) time.Duration {
		i := int(p*float64(len(d))) - 1
		if i < 0 {
			i = 0
		}
		return d[i]
	}
	return at(0.50), at(0.99)
}

// ScaleRemote drives a live trappserver serving the scale workload
// (trappserver -objects N -tenants T -drive ...) through the same
// regime schedule over HTTP. The server owns the population and
// animates it (-drive), so only the query side of each regime applies:
// clients sweep the schedule's QueryS/HotOffset phases on wall-clock
// (one phase per TicksPerPhase × TickEvery), sending the generated SQL
// shapes with per-tenant X-Trapp-Client identities — the many-tenant
// churn the admission ledgers see. Statement strings come from
// workload.Scale.QuerySQL, so the wire path parses exactly what the
// fuzz corpus seeds.
func ScaleRemote(addr string, opts ScaleOptions) (ScaleResult, error) {
	opts = opts.withDefaults()
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	addr = strings.TrimRight(addr, "/")
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: opts.Clients + 4}}

	// Discover the server's population so samplers and SQL shapes match.
	hres, err := hc.Get(addr + "/healthz")
	if err != nil {
		return ScaleResult{}, fmt.Errorf("reach server: %w", err)
	}
	var h health
	err = json.NewDecoder(hres.Body).Decode(&h)
	hres.Body.Close()
	if err != nil {
		return ScaleResult{}, fmt.Errorf("decode /healthz: %w", err)
	}
	num := func(k string) (int64, bool) {
		v, ok := h.Workload[k].(float64)
		return int64(v), ok
	}
	objects, ok := num("objects")
	if !ok {
		return ScaleResult{}, fmt.Errorf("server /healthz lacks workload \"objects\" (start trappserver with -objects)")
	}
	tenants, _ := num("tenants")
	seed, _ := num("seed")
	opts.Objects, opts.Tenants, opts.Seed = int(objects), int(tenants), seed

	sc, err := workload.NewScale(workload.ScaleConfig{Objects: opts.Objects, Tenants: opts.Tenants, Seed: opts.Seed})
	if err != nil {
		return ScaleResult{}, fmt.Errorf("mirror population: %w", err)
	}
	sched := workload.DefaultSchedule(opts.TicksPerPhase, opts.QueryS, opts.UpdateS, opts.Objects)
	regimes := sched.Regimes()
	nph := len(regimes)
	qZipf := make([]*workload.Zipf, nph)
	for i, r := range regimes {
		if qZipf[i], err = workload.NewZipf(opts.Tenants, r.QueryS); err != nil {
			return ScaleResult{}, err
		}
	}
	phaseLen := time.Duration(opts.TicksPerPhase) * opts.TickEvery

	var (
		stop     atomic.Bool
		phaseIdx atomic.Int64
		wg       sync.WaitGroup
		queries  = make([]atomic.Int64, nph)
		unmet    = make([]atomic.Int64, nph)
		rejected = make([]atomic.Int64, nph)
		latMu    sync.Mutex
		lats     = make([][]time.Duration, nph)
	)
	errCh := make(chan error, opts.Clients)
	before, err := fetchMetrics(hc, addr)
	if err != nil {
		return ScaleResult{}, err
	}

	phaseStart := make([]time.Time, nph)
	phaseEnd := make([]time.Time, nph)

	for cl := 0; cl < opts.Clients; cl++ {
		wg.Add(1)
		go func(clientSeed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(clientSeed))
			for !stop.Load() {
				ph := int(phaseIdx.Load())
				reg := regimes[ph]
				ten := qZipf[ph].Rank(rng)
				if reg.HotOffset > 0 {
					ten = (ten + reg.HotOffset) % opts.Tenants
				}
				sqlText := sc.QuerySQL(rng, ten)
				body, _ := json.Marshal(server.QueryRequest{SQL: sqlText})
				req, err := http.NewRequest("POST", addr+"/query", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Trapp-Client", workload.TenantName(ten))
				qt0 := time.Now()
				resp, err := hc.Do(req)
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == 200:
				case resp.StatusCode == 206:
					unmet[ph].Add(1)
				case resp.StatusCode == 429:
					rejected[ph].Add(1)
				default:
					errCh <- fmt.Errorf("unexpected status %d for %q", resp.StatusCode, sqlText)
					return
				}
				latMu.Lock()
				lats[ph] = append(lats[ph], time.Since(qt0))
				latMu.Unlock()
				queries[ph].Add(1)
			}
		}(opts.Seed + 700 + int64(cl))
	}

	for ph := range regimes {
		phaseStart[ph] = time.Now()
		phaseIdx.Store(int64(ph))
		time.Sleep(phaseLen)
		phaseEnd[ph] = time.Now()
	}
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		return ScaleResult{}, fmt.Errorf("scale remote client: %w", err)
	default:
	}
	after, err := fetchMetrics(hc, addr)
	if err != nil {
		return ScaleResult{}, err
	}

	out := ScaleResult{
		Objects:       opts.Objects,
		Tenants:       opts.Tenants,
		Sources:       scaleSources,
		Clients:       opts.Clients,
		QueryS:        opts.QueryS,
		UpdateS:       opts.UpdateS,
		TicksPerPhase: opts.TicksPerPhase,
		Seed:          opts.Seed,
		RefreshCost:   after.Network.QueryRefreshCost - before.Network.QueryRefreshCost,
	}
	for ph, reg := range regimes {
		elapsed := phaseEnd[ph].Sub(phaseStart[ph])
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		p := ScalePhase{
			Name:      reg.Name,
			QueryS:    reg.QueryS,
			HotOffset: reg.HotOffset,
			Elapsed:   elapsed,
			Queries:   queries[ph].Load(),
			Unmet:     unmet[ph].Load() + rejected[ph].Load(),
		}
		p.QPS = float64(p.Queries) / elapsed.Seconds()
		p.P50, p.P99 = durationPercentiles(lats[ph])
		out.Phases = append(out.Phases, p)
	}
	return out, nil
}
