package experiment

import (
	"fmt"

	"trapp/internal/boundfn"
	"trapp/internal/cache"
	"trapp/internal/partition"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/trapp"
	"trapp/internal/workload"
)

// BuildLinkSystemDurable is BuildLinkSystem over a durable cache: the
// "links" table is backed by a WAL + snapshot data directory, so a
// process restarted against the same directory recovers the cached
// values bit-identically. The builder mirrors the in-memory construction
// exactly — same network generator, same sources, same width policy —
// but cached keys found in the directory are re-handshaked with their
// source (fresh bound promises over the recovered values) instead of
// re-subscribed, which would have rebuilt the state trivially and hidden
// recovery bugs. Keys the regenerated workload no longer contains are
// dropped, so the mounted table always matches the workload either way.
func BuildLinkSystemDurable(links, srcCount int, seed int64, dir string, opts relation.WALOptions) (*trapp.System, *workload.Network, cache.Recovery, error) {
	net, err := workload.NewNetwork(max(2, links/8), links, seed)
	if err != nil {
		return nil, nil, cache.Recovery{}, err
	}
	sys := trapp.NewSystem(refresh.Options{Solver: refresh.SolverGreedyDensity})
	c, rec, err := sys.AddDurableCache("monitor", workload.LinkSchema(), dir, opts)
	if err != nil {
		return nil, nil, cache.Recovery{}, err
	}
	for si := 0; si < srcCount; si++ {
		if _, err := sys.AddSource(fmt.Sprintf("s%d", si), nil); err != nil {
			return nil, nil, rec, err
		}
	}
	live := make(map[int64]bool, len(net.Links))
	for i, l := range net.Links {
		live[l.Key] = true
		src := sys.Source(fmt.Sprintf("s%d", i%srcCount))
		if err := src.AddObject(l.Key, l.Values(), l.Cost, boundfn.StaticWidth(0.5)); err != nil {
			return nil, nil, rec, err
		}
		if _, ok := c.Store().Get(l.Key); ok {
			continue // recovered from disk; re-attached below
		}
		if err := c.Subscribe(src, l.Key, []float64{float64(l.From), float64(l.To)}); err != nil {
			return nil, nil, rec, err
		}
	}
	// Recovered keys the regenerated workload no longer has are dropped;
	// the rest re-earn their precision through a fresh handshake.
	for _, key := range c.Unattached() {
		if !live[key] {
			c.Drop(key)
		}
	}
	if _, err := sys.Rehandshake(c); err != nil {
		return nil, nil, rec, err
	}
	if err := sys.Mount("links", c); err != nil {
		return nil, nil, rec, err
	}
	return sys, net, rec, nil
}

// BuildLinkPartitionDurable builds partition pi of the N-way link
// cluster (the same placement as BuildLinkPartitions) over a durable
// cache. Each partition server owns its own data directory, so a
// restarted node recovers exactly its shard of the tuples — values
// bit-identical, bounds re-earned through the handshake — and the
// coordinator's scatter-gather answers stay correct across the restart.
func BuildLinkPartitionDurable(links, srcCount int, seed int64, ids []string, pi int, dir string, opts relation.WALOptions) (*trapp.System, *workload.Network, *partition.Ring, cache.Recovery, error) {
	ring, err := partition.NewRing(ids)
	if err != nil {
		return nil, nil, nil, cache.Recovery{}, err
	}
	netw, err := workload.NewNetwork(max(2, links/8), links, seed)
	if err != nil {
		return nil, nil, nil, cache.Recovery{}, err
	}
	sys := trapp.NewSystem(refresh.Options{Solver: refresh.SolverGreedyDensity})
	c, rec, err := sys.AddDurableCache("monitor", workload.LinkSchema(), dir, opts)
	if err != nil {
		return nil, nil, nil, cache.Recovery{}, err
	}
	for si := 0; si < srcCount; si++ {
		if _, err := sys.AddSource(fmt.Sprintf("s%d", si), nil); err != nil {
			return nil, nil, nil, rec, err
		}
	}
	live := make(map[int64]bool, len(netw.Links))
	for i, l := range netw.Links {
		if ring.OwnerOfKey(l.Key) != pi {
			continue
		}
		live[l.Key] = true
		src := sys.Source(fmt.Sprintf("s%d", i%srcCount))
		if err := src.AddObject(l.Key, l.Values(), l.Cost, boundfn.StaticWidth(0.5)); err != nil {
			return nil, nil, nil, rec, err
		}
		if _, ok := c.Store().Get(l.Key); ok {
			continue // recovered from disk; re-attached below
		}
		if err := c.Subscribe(src, l.Key, []float64{float64(l.From), float64(l.To)}); err != nil {
			return nil, nil, nil, rec, err
		}
	}
	// Keys recovered from a previous life that this partition no longer
	// owns (or the regenerated workload no longer has) are dropped.
	for _, key := range c.Unattached() {
		if !live[key] {
			c.Drop(key)
		}
	}
	if _, err := sys.Rehandshake(c); err != nil {
		return nil, nil, nil, rec, err
	}
	if err := sys.Mount("links", c); err != nil {
		return nil, nil, nil, rec, err
	}
	return sys, netw, ring, rec, nil
}
