package experiment

// Remote drives a live trappserver over HTTP with the E13 closed-loop
// client workload — the first wire-protocol QPS/latency datapoint — and,
// before opening the measurement window, verifies the wire protocol:
// a single client replays a deterministic query stream against both the
// remote server and a local mirror system rebuilt from the server's
// published workload descriptor (same links/sources/seed ⇒ bit-identical
// initial state), asserting every answer and typed error received over
// HTTP equals in-process execution bit for bit. Verification requires a
// static server (trappserver without -drive): any background drift would
// fork the two systems.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/query"
	"trapp/internal/relation"
	"trapp/internal/server"
	"trapp/internal/sql"
	itrapp "trapp/internal/trapp"
)

// RemoteResult reports one -remote run.
type RemoteResult struct {
	// Addr is the server base URL.
	Addr string `json:"addr"`
	// Wire is the transport the measurement window used: "http" (JSON
	// over POST /query) or "framed" (the persistent binary protocol).
	Wire string `json:"wire"`
	// Pipeline is the per-connection pipeline depth (framed wire only).
	Pipeline int `json:"pipeline,omitempty"`
	// Links, Sources, Seed echo the server's workload descriptor.
	Links   int   `json:"links"`
	Sources int   `json:"sources"`
	Seed    int64 `json:"seed"`
	// Verified counts lockstep-verified queries (0 when verification was
	// skipped); a mismatch fails the run instead of being counted.
	Verified int `json:"verified"`
	// Clients, Queries, Elapsed, QPS, P50, P99 mirror ConcurrentResult
	// for the HTTP window.
	Clients int           `json:"clients"`
	Queries int64         `json:"queries"`
	Elapsed time.Duration `json:"elapsed_ns"`
	QPS     float64       `json:"qps"`
	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
	// RefreshCost is the server-side query-refresh cost paid during the
	// window (from /metrics deltas); PartialOutcomes counts 206 replies
	// (precision_unmet / budget_exhausted), Rejected 429s.
	RefreshCost     float64 `json:"refresh_cost"`
	PartialOutcomes int64   `json:"partial_outcomes"`
	Rejected        int64   `json:"rejected"`
	// ClientAllocsPerOp and ServerAllocsPerOp are heap allocations per
	// measured query on each side of the wire (runtime.MemStats deltas
	// over the window; the server side comes from /metrics runtime
	// counters over its statements counter).
	ClientAllocsPerOp float64 `json:"client_allocs_per_op"`
	ServerAllocsPerOp float64 `json:"server_allocs_per_op"`
	// PlanCacheHitRate is the server's plan-cache hit rate over the
	// window: hits/(hits+misses+invalidations) from /metrics deltas.
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate"`
}

// wireClient abstracts the two transports for the lockstep verifier:
// one request in, status + decoded response out.
type wireClient interface {
	do(req server.QueryRequest) (int, server.QueryResponse, error)
}

// remoteClient is a minimal JSON client for the trappserver wire
// protocol.
type remoteClient struct {
	base string
	hc   *http.Client
}

// do posts one QueryRequest and decodes the reply.
func (c *remoteClient) do(req server.QueryRequest) (int, server.QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, server.QueryResponse{}, err
	}
	resp, err := c.hc.Post(c.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, server.QueryResponse{}, err
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return resp.StatusCode, server.QueryResponse{}, fmt.Errorf("decode /query reply: %w", err)
	}
	return resp.StatusCode, qr, nil
}

// framedClient is a client for the persistent framed protocol. It is
// not safe for concurrent use; the benchmark opens one per goroutine.
// send/flush/recv expose the pipelined path, do the sequential one.
type framedClient struct {
	conn     net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	id       uint32
	readBuf  []byte
	writeBuf []byte
}

func dialFramed(addr string) (*framedClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dial framed %s: %w", addr, err)
	}
	return &framedClient{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<16),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

func (c *framedClient) close() { _ = c.conn.Close() }

// send encodes one request into the connection's write buffer (reused
// across requests — the encoder allocates nothing once warmed up) and
// queues it; the caller flushes when the burst is assembled.
func (c *framedClient) send(req server.QueryRequest) (uint32, error) {
	c.id++
	out, err := server.AppendRequest(c.writeBuf[:0], c.id, req)
	if err != nil {
		return 0, err
	}
	c.writeBuf = out
	if _, err := c.bw.Write(out); err != nil {
		return 0, err
	}
	return c.id, nil
}

func (c *framedClient) flush() error { return c.bw.Flush() }

// recv reads and decodes one response frame.
func (c *framedClient) recv() (uint32, server.QueryResponse, error) {
	payload, err := server.ReadFrame(c.br, &c.readBuf)
	if err != nil {
		return 0, server.QueryResponse{}, err
	}
	id, resp, ferr := server.DecodeResponse(payload)
	if ferr != nil {
		return id, resp, ferr
	}
	return id, resp, nil
}

// do is the sequential request–response path (the verifier uses it).
func (c *framedClient) do(req server.QueryRequest) (int, server.QueryResponse, error) {
	id, err := c.send(req)
	if err != nil {
		return 0, server.QueryResponse{}, err
	}
	if err := c.flush(); err != nil {
		return 0, server.QueryResponse{}, err
	}
	rid, resp, err := c.recv()
	if err != nil {
		return 0, server.QueryResponse{}, err
	}
	if rid != id {
		return 0, resp, fmt.Errorf("framed: response id %d for request %d", rid, id)
	}
	return statusOf(resp), resp, nil
}

// statusOf maps a decoded response to the HTTP status the JSON path
// would have carried, so both wires classify outcomes identically.
func statusOf(resp server.QueryResponse) int {
	if resp.Error != nil {
		return server.HTTPStatus(resp.Error.Code)
	}
	status := 200
	for i := range resp.Results {
		if e := resp.Results[i].Error; e != nil {
			if st := server.HTTPStatus(e.Code); st > status {
				status = st
			}
		}
	}
	return status
}

// health is the /healthz payload.
type health struct {
	Status   string         `json:"status"`
	Workload map[string]any `json:"workload"`
}

// Remote runs the E13 window against a live trappserver at addr,
// verifying verifyN queries in lockstep against a local mirror first.
// wire selects the transport for both verification and measurement:
// "http" (JSON over POST /query) or "framed" (the persistent binary
// protocol; the framed port is discovered via /healthz). pipeline is
// the per-connection pipeline depth on the framed wire (values < 1
// mean no pipelining).
func Remote(addr string, clients, verifyN int, duration, warmup time.Duration, wire string, pipeline int) (RemoteResult, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	addr = strings.TrimRight(addr, "/")
	if wire == "" {
		wire = "http"
	}
	if wire != "http" && wire != "framed" {
		return RemoteResult{}, fmt.Errorf("unknown wire %q (want http or framed)", wire)
	}
	if pipeline < 1 {
		pipeline = 1
	}
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients + 4}}

	// Discover the server's workload so the mirror matches it exactly.
	hres, err := hc.Get(addr + "/healthz")
	if err != nil {
		return RemoteResult{}, fmt.Errorf("reach server: %w", err)
	}
	var h health
	err = json.NewDecoder(hres.Body).Decode(&h)
	hres.Body.Close()
	if err != nil {
		return RemoteResult{}, fmt.Errorf("decode /healthz: %w", err)
	}
	num := func(k string) (int64, error) {
		v, ok := h.Workload[k].(float64)
		if !ok {
			return 0, fmt.Errorf("server /healthz lacks workload %q (is it a trappserver?)", k)
		}
		return int64(v), nil
	}
	links, err := num("links")
	if err != nil {
		return RemoteResult{}, err
	}
	sources, err := num("sources")
	if err != nil {
		return RemoteResult{}, err
	}
	seed, err := num("seed")
	if err != nil {
		return RemoteResult{}, err
	}
	driven, _ := h.Workload["driven"].(bool)

	out := RemoteResult{Addr: addr, Wire: wire, Links: int(links), Sources: int(sources), Seed: seed, Clients: clients}

	// The framed endpoint lives on its own port, published via /healthz.
	var framedAddr string
	if wire == "framed" {
		out.Pipeline = pipeline
		fp, ok := h.Workload["framed_port"].(float64)
		if !ok || fp <= 0 {
			return RemoteResult{}, fmt.Errorf("server publishes no framed_port (run trappserver with -framed)")
		}
		u, err := url.Parse(addr)
		if err != nil {
			return RemoteResult{}, fmt.Errorf("parse addr: %w", err)
		}
		framedAddr = net.JoinHostPort(u.Hostname(), fmt.Sprintf("%d", int(fp)))
	}

	// The mirror: the identical system, in process.
	mirror, _, err := BuildLinkSystem(int(links), int(sources), seed)
	if err != nil {
		return RemoteResult{}, fmt.Errorf("build mirror: %w", err)
	}
	defer mirror.Close()
	schema := mirror.MountedCache("links").Schema()

	if verifyN > 0 {
		if driven {
			return RemoteResult{}, fmt.Errorf("server is driven (-drive): bit-identical verification needs a static workload; rerun trappserver without -drive or pass -verify 0")
		}
		// Verification runs over the same wire the window measures, so a
		// framed run certifies the framed codec end to end.
		var vc wireClient = &remoteClient{base: addr, hc: hc}
		if wire == "framed" {
			fc, err := dialFramed(framedAddr)
			if err != nil {
				return RemoteResult{}, err
			}
			defer fc.close()
			vc = fc
		}
		if err := verifyLockstep(vc, mirror, schema, int(links), seed, verifyN); err != nil {
			return RemoteResult{}, err
		}
		out.Verified = verifyN
	}

	// Measurement window: closed-loop clients over HTTP.
	before, err := fetchMetrics(hc, addr)
	if err != nil {
		return RemoteResult{}, err
	}
	var (
		stop      atomic.Bool
		measuring atomic.Bool
		wg        sync.WaitGroup
		latMu     sync.Mutex
		lats      []time.Duration
		queries   atomic.Int64
		partials  atomic.Int64
		rejected  atomic.Int64
	)
	errCh := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(clientSeed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(clientSeed))
			local := make([]time.Duration, 0, 4096)
			defer func() {
				latMu.Lock()
				lats = append(lats, local...)
				latMu.Unlock()
			}()
			record := func(status int, t0 time.Time) error {
				switch {
				case status == 200:
				case status == 206:
					partials.Add(1)
				case status == 429:
					rejected.Add(1)
				default:
					return fmt.Errorf("unexpected status %d", status)
				}
				if measuring.Load() {
					local = append(local, time.Since(t0))
					queries.Add(1)
				}
				return nil
			}
			if wire == "framed" {
				if err := framedLoop(framedAddr, rng, schema, int(links), pipeline, &stop, record); err != nil {
					errCh <- err
				}
				return
			}
			c := &remoteClient{base: addr, hc: hc}
			for !stop.Load() {
				q := concurrentQuery(rng, schema, int(links))
				t0 := time.Now()
				status, _, err := c.do(server.QueryRequest{SQL: q.String()})
				if err != nil {
					errCh <- err
					return
				}
				if err := record(status, t0); err != nil {
					errCh <- err
					return
				}
			}
		}(seed + 7000 + int64(cl))
	}
	if warmup > 0 {
		time.Sleep(warmup)
	}
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	measuring.Store(true)
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	select {
	case err := <-errCh:
		return RemoteResult{}, fmt.Errorf("remote client: %w", err)
	default:
	}
	elapsed := time.Since(start)
	after, err := fetchMetrics(hc, addr)
	if err != nil {
		return RemoteResult{}, err
	}

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p*float64(len(lats))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	out.Queries = queries.Load()
	out.Elapsed = elapsed
	out.QPS = float64(out.Queries) / elapsed.Seconds()
	out.P50, out.P99 = pct(0.50), pct(0.99)
	out.RefreshCost = after.Network.QueryRefreshCost - before.Network.QueryRefreshCost
	out.PartialOutcomes = partials.Load()
	out.Rejected = rejected.Load()
	if out.Queries > 0 {
		out.ClientAllocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(out.Queries)
	}
	if dst := after.Statements - before.Statements; dst > 0 {
		out.ServerAllocsPerOp = float64(after.Runtime.Mallocs-before.Runtime.Mallocs) / float64(dst)
	}
	dh := after.PlanCache.Hits - before.PlanCache.Hits
	dm := after.PlanCache.Misses - before.PlanCache.Misses
	di := after.PlanCache.Invalidations - before.PlanCache.Invalidations
	if tot := dh + dm + di; tot > 0 {
		out.PlanCacheHitRate = float64(dh) / float64(tot)
	}
	return out, nil
}

// framedLoop is one benchmark client on the framed wire: a private
// connection driven with up to `pipeline` requests in flight. Each
// round tops the window up in one burst (a single flush → one write
// syscall per burst), then drains half of it, so both directions batch.
// Send time is recorded per request, so the measured latency includes
// pipeline queue wait — what a pipelined caller actually experiences.
func framedLoop(addr string, rng *rand.Rand, schema *relation.Schema, links, pipeline int,
	stop *atomic.Bool, record func(status int, t0 time.Time) error) error {
	fc, err := dialFramed(addr)
	if err != nil {
		return err
	}
	defer fc.close()
	t0s := make([]time.Time, 0, pipeline)
	head := 0
	recvOne := func() error {
		_, resp, err := fc.recv()
		if err != nil {
			return err
		}
		err = record(statusOf(resp), t0s[head])
		head++
		return err
	}
	for !stop.Load() {
		if head > 0 {
			n := copy(t0s, t0s[head:])
			t0s, head = t0s[:n], 0
		}
		for len(t0s) < pipeline {
			q := concurrentQuery(rng, schema, links)
			if _, err := fc.send(server.QueryRequest{SQL: q.String()}); err != nil {
				return err
			}
			t0s = append(t0s, time.Now())
		}
		if err := fc.flush(); err != nil {
			return err
		}
		for len(t0s)-head > pipeline/2 {
			if err := recvOne(); err != nil {
				return err
			}
		}
	}
	for head < len(t0s) {
		if err := recvOne(); err != nil {
			return err
		}
	}
	return nil
}

// fetchMetrics reads /metrics.
func fetchMetrics(hc *http.Client, addr string) (server.Metrics, error) {
	resp, err := hc.Get(addr + "/metrics")
	if err != nil {
		return server.Metrics{}, fmt.Errorf("fetch /metrics: %w", err)
	}
	defer resp.Body.Close()
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return server.Metrics{}, fmt.Errorf("decode /metrics: %w", err)
	}
	return m, nil
}

// verifyLockstep replays a deterministic query stream against the
// remote server and the in-process mirror, applying the same mutations
// in the same order to both (each refresh a query pays installs the
// same exact values on both sides), and asserts wire results equal
// in-process results bit for bit — answers, initial intervals, refresh
// accounting, and typed error fields. ChooseTime is wall-clock noise
// and is excluded.
func verifyLockstep(c wireClient, mirror *itrapp.System, schema *relation.Schema, links int, seed int64, n int) error {
	rng := rand.New(rand.NewSource(seed + 4242))
	ctx := context.Background()
	for i := 0; i < n; i++ {
		q := concurrentQuery(rng, schema, links)
		req := server.QueryRequest{SQL: q.String()}
		var opts []query.ExecOption
		switch i % 4 {
		case 1: // the cost-bounded dual
			b := server.Float(2 + rng.Float64()*8)
			req.Budget = &b
			opts = append(opts, query.WithCostBudget(float64(b)))
		case 2: // the fresh-data extreme
			req.Mode = "precise"
			opts = append(opts, query.WithMode(query.ModePrecise))
		case 3: // an already-expired deadline: deterministic best-effort
			req.DeadlineMillis = -1
			opts = append(opts, query.WithDeadline(time.Now().Add(-time.Millisecond)))
		}

		status, qr, err := c.do(req)
		if err != nil {
			return fmt.Errorf("verify %d: %w", i, err)
		}

		// The mirror executes the identically parsed statement.
		qs, err := sql.ParseAll(q.String(), mirror.Catalog())
		if err != nil {
			return fmt.Errorf("verify %d: mirror parse: %w", i, err)
		}
		res, execErr := mirror.ExecuteCtx(ctx, qs[0], opts...)
		want := server.ToWireResult(res, execErr)

		if execErr != nil && want.Error == nil {
			return fmt.Errorf("verify %d: mirror failed outright: %v", i, execErr)
		}
		if wantTop := topLevelError(execErr); wantTop != "" {
			if qr.Error == nil || qr.Error.Code != wantTop {
				return fmt.Errorf("verify %d (%s): remote error %+v, mirror %v", i, q, qr.Error, execErr)
			}
			continue
		}
		if qr.Error != nil {
			return fmt.Errorf("verify %d (%s): remote failed %+v, mirror ok", i, q, qr.Error)
		}
		if len(qr.Results) != 1 {
			return fmt.Errorf("verify %d (%s): %d results", i, q, len(qr.Results))
		}
		got := qr.Results[0]
		got.ChooseTimeNS, want.ChooseTimeNS = 0, 0
		normalizeMessages(got.Error, want.Error)
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("verify %d (%s): wire result %+v != in-process %+v", i, q, got, want)
		}
		wantStatus := 200
		if got.Error != nil {
			wantStatus = server.HTTPStatus(got.Error.Code)
		}
		if status != wantStatus {
			return fmt.Errorf("verify %d (%s): status %d, want %d", i, q, status, wantStatus)
		}
	}
	return nil
}

// topLevelError returns the wire code an error surfaces as a
// request-level failure, or "" for per-result outcomes.
func topLevelError(err error) string {
	if err == nil {
		return ""
	}
	we := server.EncodeError(err)
	switch we.Code {
	case server.CodePrecisionUnmet, server.CodeBudgetExhausted:
		return "" // carried per-result
	}
	return we.Code
}

// normalizeMessages blanks error messages when both sides carry the
// same code: the typed fields (achieved/spent/budget/cause) are the
// parity contract; message text may legitimately differ in prefixing
// between the wire path and local wrapping.
func normalizeMessages(a, b *server.WireError) {
	if a != nil && b != nil && a.Code == b.Code {
		a.Message, b.Message = "", ""
	}
}
