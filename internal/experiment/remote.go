package experiment

// Remote drives a live trappserver over HTTP with the E13 closed-loop
// client workload — the first wire-protocol QPS/latency datapoint — and,
// before opening the measurement window, verifies the wire protocol:
// a single client replays a deterministic query stream against both the
// remote server and a local mirror system rebuilt from the server's
// published workload descriptor (same links/sources/seed ⇒ bit-identical
// initial state), asserting every answer and typed error received over
// HTTP equals in-process execution bit for bit. Verification requires a
// static server (trappserver without -drive): any background drift would
// fork the two systems.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/query"
	"trapp/internal/relation"
	"trapp/internal/server"
	"trapp/internal/sql"
	itrapp "trapp/internal/trapp"
)

// RemoteResult reports one -remote run.
type RemoteResult struct {
	// Addr is the server base URL.
	Addr string `json:"addr"`
	// Links, Sources, Seed echo the server's workload descriptor.
	Links   int   `json:"links"`
	Sources int   `json:"sources"`
	Seed    int64 `json:"seed"`
	// Verified counts lockstep-verified queries (0 when verification was
	// skipped); a mismatch fails the run instead of being counted.
	Verified int `json:"verified"`
	// Clients, Queries, Elapsed, QPS, P50, P99 mirror ConcurrentResult
	// for the HTTP window.
	Clients int           `json:"clients"`
	Queries int64         `json:"queries"`
	Elapsed time.Duration `json:"elapsed_ns"`
	QPS     float64       `json:"qps"`
	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
	// RefreshCost is the server-side query-refresh cost paid during the
	// window (from /metrics deltas); PartialOutcomes counts 206 replies
	// (precision_unmet / budget_exhausted), Rejected 429s.
	RefreshCost     float64 `json:"refresh_cost"`
	PartialOutcomes int64   `json:"partial_outcomes"`
	Rejected        int64   `json:"rejected"`
}

// remoteClient is a minimal JSON client for the trappserver wire
// protocol.
type remoteClient struct {
	base string
	hc   *http.Client
}

// do posts one QueryRequest and decodes the reply.
func (c *remoteClient) do(req server.QueryRequest) (int, server.QueryResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, server.QueryResponse{}, err
	}
	resp, err := c.hc.Post(c.base+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, server.QueryResponse{}, err
	}
	defer resp.Body.Close()
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return resp.StatusCode, server.QueryResponse{}, fmt.Errorf("decode /query reply: %w", err)
	}
	return resp.StatusCode, qr, nil
}

// health is the /healthz payload.
type health struct {
	Status   string         `json:"status"`
	Workload map[string]any `json:"workload"`
}

// Remote runs the E13 window against a live trappserver at addr,
// verifying verifyN queries in lockstep against a local mirror first.
func Remote(addr string, clients, verifyN int, duration, warmup time.Duration) (RemoteResult, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	addr = strings.TrimRight(addr, "/")
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients + 4}}

	// Discover the server's workload so the mirror matches it exactly.
	hres, err := hc.Get(addr + "/healthz")
	if err != nil {
		return RemoteResult{}, fmt.Errorf("reach server: %w", err)
	}
	var h health
	err = json.NewDecoder(hres.Body).Decode(&h)
	hres.Body.Close()
	if err != nil {
		return RemoteResult{}, fmt.Errorf("decode /healthz: %w", err)
	}
	num := func(k string) (int64, error) {
		v, ok := h.Workload[k].(float64)
		if !ok {
			return 0, fmt.Errorf("server /healthz lacks workload %q (is it a trappserver?)", k)
		}
		return int64(v), nil
	}
	links, err := num("links")
	if err != nil {
		return RemoteResult{}, err
	}
	sources, err := num("sources")
	if err != nil {
		return RemoteResult{}, err
	}
	seed, err := num("seed")
	if err != nil {
		return RemoteResult{}, err
	}
	driven, _ := h.Workload["driven"].(bool)

	out := RemoteResult{Addr: addr, Links: int(links), Sources: int(sources), Seed: seed, Clients: clients}

	// The mirror: the identical system, in process.
	mirror, _, err := BuildLinkSystem(int(links), int(sources), seed)
	if err != nil {
		return RemoteResult{}, fmt.Errorf("build mirror: %w", err)
	}
	defer mirror.Close()
	schema := mirror.MountedCache("links").Schema()

	if verifyN > 0 {
		if driven {
			return RemoteResult{}, fmt.Errorf("server is driven (-drive): bit-identical verification needs a static workload; rerun trappserver without -drive or pass -verify 0")
		}
		if err := verifyLockstep(&remoteClient{base: addr, hc: hc}, mirror, schema, int(links), seed, verifyN); err != nil {
			return RemoteResult{}, err
		}
		out.Verified = verifyN
	}

	// Measurement window: closed-loop clients over HTTP.
	before, err := fetchMetrics(hc, addr)
	if err != nil {
		return RemoteResult{}, err
	}
	var (
		stop      atomic.Bool
		measuring atomic.Bool
		wg        sync.WaitGroup
		latMu     sync.Mutex
		lats      []time.Duration
		queries   atomic.Int64
		partials  atomic.Int64
		rejected  atomic.Int64
	)
	errCh := make(chan error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(clientSeed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(clientSeed))
			c := &remoteClient{base: addr, hc: hc}
			local := make([]time.Duration, 0, 4096)
			for !stop.Load() {
				q := concurrentQuery(rng, schema, int(links))
				t0 := time.Now()
				status, _, err := c.do(server.QueryRequest{SQL: q.String()})
				if err != nil {
					errCh <- err
					return
				}
				switch {
				case status == 200:
				case status == 206:
					partials.Add(1)
				case status == 429:
					rejected.Add(1)
				default:
					errCh <- fmt.Errorf("unexpected status %d", status)
					return
				}
				if !measuring.Load() {
					continue
				}
				local = append(local, time.Since(t0))
				queries.Add(1)
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(seed + 7000 + int64(cl))
	}
	if warmup > 0 {
		time.Sleep(warmup)
	}
	start := time.Now()
	measuring.Store(true)
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	select {
	case err := <-errCh:
		return RemoteResult{}, fmt.Errorf("remote client: %w", err)
	default:
	}
	elapsed := time.Since(start)
	after, err := fetchMetrics(hc, addr)
	if err != nil {
		return RemoteResult{}, err
	}

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p*float64(len(lats))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	out.Queries = queries.Load()
	out.Elapsed = elapsed
	out.QPS = float64(out.Queries) / elapsed.Seconds()
	out.P50, out.P99 = pct(0.50), pct(0.99)
	out.RefreshCost = after.Network.QueryRefreshCost - before.Network.QueryRefreshCost
	out.PartialOutcomes = partials.Load()
	out.Rejected = rejected.Load()
	return out, nil
}

// fetchMetrics reads /metrics.
func fetchMetrics(hc *http.Client, addr string) (server.Metrics, error) {
	resp, err := hc.Get(addr + "/metrics")
	if err != nil {
		return server.Metrics{}, fmt.Errorf("fetch /metrics: %w", err)
	}
	defer resp.Body.Close()
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return server.Metrics{}, fmt.Errorf("decode /metrics: %w", err)
	}
	return m, nil
}

// verifyLockstep replays a deterministic query stream against the
// remote server and the in-process mirror, applying the same mutations
// in the same order to both (each refresh a query pays installs the
// same exact values on both sides), and asserts wire results equal
// in-process results bit for bit — answers, initial intervals, refresh
// accounting, and typed error fields. ChooseTime is wall-clock noise
// and is excluded.
func verifyLockstep(c *remoteClient, mirror *itrapp.System, schema *relation.Schema, links int, seed int64, n int) error {
	rng := rand.New(rand.NewSource(seed + 4242))
	ctx := context.Background()
	for i := 0; i < n; i++ {
		q := concurrentQuery(rng, schema, links)
		req := server.QueryRequest{SQL: q.String()}
		var opts []query.ExecOption
		switch i % 4 {
		case 1: // the cost-bounded dual
			b := server.Float(2 + rng.Float64()*8)
			req.Budget = &b
			opts = append(opts, query.WithCostBudget(float64(b)))
		case 2: // the fresh-data extreme
			req.Mode = "precise"
			opts = append(opts, query.WithMode(query.ModePrecise))
		case 3: // an already-expired deadline: deterministic best-effort
			req.DeadlineMillis = -1
			opts = append(opts, query.WithDeadline(time.Now().Add(-time.Millisecond)))
		}

		status, qr, err := c.do(req)
		if err != nil {
			return fmt.Errorf("verify %d: %w", i, err)
		}

		// The mirror executes the identically parsed statement.
		qs, err := sql.ParseAll(q.String(), mirror.Catalog())
		if err != nil {
			return fmt.Errorf("verify %d: mirror parse: %w", i, err)
		}
		res, execErr := mirror.ExecuteCtx(ctx, qs[0], opts...)
		want := server.ToWireResult(res, execErr)

		if execErr != nil && want.Error == nil {
			return fmt.Errorf("verify %d: mirror failed outright: %v", i, execErr)
		}
		if wantTop := topLevelError(execErr); wantTop != "" {
			if qr.Error == nil || qr.Error.Code != wantTop {
				return fmt.Errorf("verify %d (%s): remote error %+v, mirror %v", i, q, qr.Error, execErr)
			}
			continue
		}
		if qr.Error != nil {
			return fmt.Errorf("verify %d (%s): remote failed %+v, mirror ok", i, q, qr.Error)
		}
		if len(qr.Results) != 1 {
			return fmt.Errorf("verify %d (%s): %d results", i, q, len(qr.Results))
		}
		got := qr.Results[0]
		got.ChooseTimeNS, want.ChooseTimeNS = 0, 0
		normalizeMessages(got.Error, want.Error)
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("verify %d (%s): wire result %+v != in-process %+v", i, q, got, want)
		}
		wantStatus := 200
		if got.Error != nil {
			wantStatus = server.HTTPStatus(got.Error.Code)
		}
		if status != wantStatus {
			return fmt.Errorf("verify %d (%s): status %d, want %d", i, q, status, wantStatus)
		}
	}
	return nil
}

// topLevelError returns the wire code an error surfaces as a
// request-level failure, or "" for per-result outcomes.
func topLevelError(err error) string {
	if err == nil {
		return ""
	}
	we := server.EncodeError(err)
	switch we.Code {
	case server.CodePrecisionUnmet, server.CodeBudgetExhausted:
		return "" // carried per-result
	}
	return we.Code
}

// normalizeMessages blanks error messages when both sides carry the
// same code: the typed fields (achieved/spent/budget/cause) are the
// parity contract; message text may legitimately differ in prefixing
// between the wire path and local wrapping.
func normalizeMessages(a, b *server.WireError) {
	if a != nil && b != nil && a.Code == b.Code {
		a.Message, b.Message = "", ""
	}
}
