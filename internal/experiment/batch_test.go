package experiment

import "testing"

// TestBatchCompare enforces the E16 acceptance criteria: one
// ExecuteBatch of the mixed workload pays measurably less query-refresh
// cost than the same queries executed sequentially under drift, and
// every per-query answer is bit-identical to standalone execution on an
// identical system.
func TestBatchCompare(t *testing.T) {
	cmp, err := BatchCompare(24, 60, 4, DefaultSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Verified {
		t.Fatal("answer identity not verified")
	}
	if cmp.Batch.QueryRefreshCost <= 0 {
		t.Fatalf("batch paid nothing — workload not exercising refreshes: %+v", cmp)
	}
	if cmp.CostRatio < 1.5 {
		t.Errorf("batch saving too small: sequential %.0f vs batch %.0f (ratio %.2f)",
			cmp.Sequential.QueryRefreshCost, cmp.Batch.QueryRefreshCost, cmp.CostRatio)
	}
}
