package experiment

import "testing"

// TestSubscriptionsCompareQuick runs a scaled-down E14 and asserts the
// two hard properties the benchmark's headline depends on: both modes
// deliver the promised precision (no unmet subscriber-rounds), and the
// push engine's shared incremental maintenance pays no more refresh
// traffic than the naive per-subscription poll loop.
func TestSubscriptionsCompareQuick(t *testing.T) {
	cmp, err := SubscriptionsCompare(120, 60, 6, 15, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Poll.Unmet != 0 || cmp.Push.Unmet != 0 {
		t.Fatalf("constraints not re-established: poll unmet=%d push unmet=%d",
			cmp.Poll.Unmet, cmp.Push.Unmet)
	}
	if cmp.Poll.Deliveries != int64(120*15) {
		t.Fatalf("poll deliveries = %d, want %d", cmp.Poll.Deliveries, 120*15)
	}
	if cmp.Push.TotalRefreshCost > cmp.Poll.TotalRefreshCost {
		t.Fatalf("push cost %.0f exceeds poll cost %.0f",
			cmp.Push.TotalRefreshCost, cmp.Poll.TotalRefreshCost)
	}
	if cmp.Push.SharedRefreshes == 0 {
		t.Fatal("no refreshes were shared across subscriptions")
	}
}
