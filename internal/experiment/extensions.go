package experiment

import (
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/quantile"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

// IterBatchRow compares the batch (section 4) and iterative (section 8.2)
// execution modes for one aggregate (ablation E10).
type IterBatchRow struct {
	Agg        aggregate.Func
	R          float64
	BatchCost  float64
	IterCost   float64
	IterRounds int
}

// IterativeVsBatch runs both execution modes on identical caches at a
// mid-range precision constraint per aggregate. Iterative never costs
// more (each round exploits actual refreshed values) but performs its
// refreshes sequentially.
func IterativeVsBatch(n int, seed int64) []IterBatchRow {
	fns := []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum, aggregate.Avg}
	var rows []IterBatchRow
	quotes := workload.StockDay(n, seed)
	master := workload.StockMaster(quotes)
	for _, fn := range fns {
		probe := workload.StockTable(quotes)
		price := probe.Schema().MustLookup("price")
		r := aggregate.Eval(probe, price, fn, nil).Width() / 4

		bp := query.NewProcessor(refresh.Options{})
		bp.Register("stocks", workload.StockTable(quotes), master)
		q := query.NewQuery("stocks", fn, "price")
		q.Within = r
		batch, err := bp.Execute(q)
		if err != nil || !batch.Met {
			continue
		}
		ip := query.NewProcessor(refresh.Options{})
		ip.Register("stocks", workload.StockTable(quotes), master)
		iter, err := ip.ExecuteIterative(q)
		if err != nil || !iter.Met {
			continue
		}
		rows = append(rows, IterBatchRow{
			Agg: fn, R: r,
			BatchCost:  batch.RefreshCost,
			IterCost:   iter.RefreshCost,
			IterRounds: iter.Refreshed,
		})
	}
	return rows
}

// IndexRow compares scan-based and index-based CHOOSE_REFRESH for MIN at
// one table size (ablation E11, sections 5.1/8.3).
type IndexRow struct {
	N         int
	ScanTime  time.Duration
	IndexTime time.Duration
}

// IndexSpeedup measures CHOOSE_REFRESH(MIN) with and without B-tree
// endpoint indexes across table sizes. The index cost is a point probe
// plus a range scan over the (small) result, so its time stays near-flat
// as n grows while the scan's grows linearly.
func IndexSpeedup(sizes []int, seed int64, reps int) []IndexRow {
	if reps < 1 {
		reps = 1
	}
	var rows []IndexRow
	for _, n := range sizes {
		quotes := workload.StockDay(n, seed)
		tab := workload.StockTable(quotes)
		price := tab.Schema().MustLookup("price")
		lower := relation.NewIndex(tab, price, relation.LowerEndpoint)
		upper := relation.NewIndex(tab, price, relation.UpperEndpoint)
		r := 5.0

		start := time.Now()
		for k := 0; k < reps; k++ {
			if _, err := refresh.Choose(tab, price, aggregate.Min, nil, r, refresh.Options{}); err != nil {
				panic(err)
			}
		}
		scan := time.Since(start) / time.Duration(reps)

		start = time.Now()
		for k := 0; k < reps; k++ {
			if _, err := refresh.ChooseMinIndexed(tab, lower, upper, r); err != nil {
				panic(err)
			}
		}
		idx := time.Since(start) / time.Duration(reps)
		rows = append(rows, IndexRow{N: n, ScanTime: scan, IndexTime: idx})
	}
	return rows
}

// MedianRow reports the bounded-median extension (E12, section 8.1) at
// one precision constraint.
type MedianRow struct {
	R           float64
	InitialW    float64
	Refreshed   int
	RefreshCost float64
}

// Medians sweeps the precision constraint for the iterative bounded
// median over the stock workload — the same tradeoff curve as Figure 6,
// for an aggregate outside the paper's core five.
func Medians(rs []float64, n int, seed int64) []MedianRow {
	var rows []MedianRow
	quotes := workload.StockDay(n, seed)
	master := workload.StockMaster(quotes)
	for _, r := range rs {
		tab := workload.StockTable(quotes)
		price := tab.Schema().MustLookup("price")
		res, err := quantile.ExecuteMedian(tab, price, r, master)
		if err != nil || !res.Met {
			continue
		}
		rows = append(rows, MedianRow{
			R:           r,
			InitialW:    res.Initial.Width(),
			Refreshed:   res.Refreshed,
			RefreshCost: res.RefreshCost,
		})
	}
	return rows
}
