package experiment

// E16: cross-query batch execution. N queries of the E13 mix are
// executed (a) sequentially — one ExecuteCtx per query with the E13
// drift (clock tick + random-walk pushes) between queries, the load a
// live serving system sees — and (b) as one ExecuteBatch at the start of
// the window, with the identical drift applied afterwards so both
// systems process the same external load. Sequential execution re-pays
// for tuples whose bounds regrow or move between queries; the batch
// plans every query against one snapshot and pays each tuple of the
// merged plan once. Optionally every batch answer is verified
// bit-identical to executing the same query alone on a fresh identical
// system — the batch's answer-semantics guarantee.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/netsim"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/source"
	itrapp "trapp/internal/trapp"
	"trapp/internal/workload"
)

// BatchModeResult reports one side of the comparison.
type BatchModeResult struct {
	Mode string `json:"mode"`
	// QueryRefreshes / QueryRefreshCost total the query-initiated
	// refresh traffic the N queries paid.
	QueryRefreshes   int64   `json:"query_refreshes"`
	QueryRefreshCost float64 `json:"query_refresh_cost"`
	// ValueRefreshCost totals the value-initiated traffic the drift
	// triggered during the window.
	ValueRefreshCost float64 `json:"value_refresh_cost"`
	// Elapsed is the wall-clock time spent executing the queries
	// (excluding the drift).
	Elapsed time.Duration `json:"elapsed_ns"`
	// Unmet counts queries whose final answer missed their constraint.
	Unmet int `json:"unmet"`
}

// BatchComparison is the E16 result.
type BatchComparison struct {
	Queries    int             `json:"queries"`
	Links      int             `json:"links"`
	Sequential BatchModeResult `json:"sequential"`
	Batch      BatchModeResult `json:"batch"`
	// CostRatio is sequential/batch query-refresh cost (> 1: the batch
	// pays less for the same answers).
	CostRatio float64 `json:"cost_ratio"`
	// MessageRatio is the same ratio over refresh message counts.
	MessageRatio float64 `json:"message_ratio"`
	// Verified reports whether every batch answer was checked
	// bit-identical to a standalone execution on a fresh identical
	// system (skipped when false was requested).
	Verified bool `json:"verified"`
}

// batchDrift advances one E13 drift round: a clock tick plus a
// random-walk step of every ~10th link pushed to its source.
func batchDrift(sys *itrapp.System, net *workload.Network, srcs []*source.Source, rng *rand.Rand) error {
	sys.Clock.Advance(1)
	for i, l := range net.Links {
		if rng.Intn(10) != 0 {
			continue
		}
		if err := srcs[i].SetValue(l.Key, l.Step()); err != nil {
			return err
		}
	}
	return nil
}

// batchSystem builds one E13 system plus its per-link source slice.
func batchSystem(links, srcCount int, seed int64) (*itrapp.System, *workload.Network, []*source.Source, error) {
	sys, net, err := BuildLinkSystem(links, srcCount, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	srcs := make([]*source.Source, len(net.Links))
	for i := range net.Links {
		srcs[i] = sys.Source(fmt.Sprintf("s%d", i%srcCount))
	}
	return sys, net, srcs, nil
}

// batchQueries generates the N-query mix deterministically: the E13
// aggregates with constraints tight enough that most queries must pay
// refreshes once bounds have grown — the regime where refresh sharing
// matters. Shapes repeat across the batch (several queries per
// aggregate/column pair), so the merged plan dedupes heavily.
func batchQueries(n, links int, seed int64, schemaSys *itrapp.System) []query.Query {
	rng := rand.New(rand.NewSource(seed + 7))
	schema := schemaSys.MountedCache("links").Schema()
	qs := make([]query.Query, n)
	for i := range qs {
		var q query.Query
		switch rng.Intn(5) {
		case 0:
			q = query.NewQuery("links", aggregate.Sum, workload.ColLatency)
			q.Within = (0.2 + rng.Float64()*0.3) * float64(links)
		case 1:
			q = query.NewQuery("links", aggregate.Avg, workload.ColTraffic)
			q.Within = 0.3 + rng.Float64()*0.5
		case 2:
			q = query.NewQuery("links", aggregate.Min, workload.ColBandwidth)
			q.Within = 1 + rng.Float64()*2
		case 3:
			q = query.NewQuery("links", aggregate.Max, workload.ColLatency)
			q.Within = 1 + rng.Float64()*2
		default:
			q = query.NewQuery("links", aggregate.Min, workload.ColTraffic)
			q.Within = 1 + rng.Float64()*2
			q.Where = predicate.NewCmp(
				predicate.Column(schema.MustLookup(workload.ColBandwidth), workload.ColBandwidth),
				predicate.Gt, predicate.Const(80))
		}
		qs[i] = q
	}
	return qs
}

// batchWarmupRounds pre-drifts both systems identically so the batch
// and the first sequential query start from grown bounds, and
// batchDriftPerQuery spaces sequential queries apart in drift rounds —
// the live-traffic regime where bounds regrow between requests.
const (
	batchWarmupRounds  = 24
	batchDriftPerQuery = 4
)

// BatchCompare runs E16: nq queries sequentially-with-drift versus one
// ExecuteBatch, on identically-built and identically-loaded systems.
// With verify set, each batch answer is additionally compared
// bit-for-bit against a standalone execution of the same query on a
// fresh identical system.
func BatchCompare(nq, links, srcCount int, seed int64, verify bool) (BatchComparison, error) {
	cmp := BatchComparison{Queries: nq, Links: links}
	ctx := context.Background()

	// Sequential side: warmup drift, then query / drift / query / ...
	seqSys, seqNet, seqSrcs, err := batchSystem(links, srcCount, seed)
	if err != nil {
		return cmp, err
	}
	qs := batchQueries(nq, links, seed, seqSys)
	driftRng := rand.New(rand.NewSource(seed + 13))
	for r := 0; r < batchWarmupRounds; r++ {
		if err := batchDrift(seqSys, seqNet, seqSrcs, driftRng); err != nil {
			return cmp, err
		}
	}
	before := seqSys.Stats()
	var seqElapsed time.Duration
	seqUnmet := 0
	for _, q := range qs {
		t0 := time.Now()
		res, err := seqSys.ExecuteCtx(ctx, q)
		seqElapsed += time.Since(t0)
		if err != nil {
			return cmp, err
		}
		if !res.Met {
			seqUnmet++
		}
		for r := 0; r < batchDriftPerQuery; r++ {
			if err := batchDrift(seqSys, seqNet, seqSrcs, driftRng); err != nil {
				return cmp, err
			}
		}
	}
	after := seqSys.Stats()
	cmp.Sequential = BatchModeResult{
		Mode:             "sequential",
		QueryRefreshes:   after.Messages[netsim.QueryRefresh] - before.Messages[netsim.QueryRefresh],
		QueryRefreshCost: after.QueryRefreshCost - before.QueryRefreshCost,
		ValueRefreshCost: after.ValueRefreshCost - before.ValueRefreshCost,
		Elapsed:          seqElapsed,
		Unmet:            seqUnmet,
	}

	// Batch side: identical warmup drift, the whole batch at once, then
	// the identical remaining drift.
	batSys, batNet, batSrcs, err := batchSystem(links, srcCount, seed)
	if err != nil {
		return cmp, err
	}
	driftRng = rand.New(rand.NewSource(seed + 13))
	for r := 0; r < batchWarmupRounds; r++ {
		if err := batchDrift(batSys, batNet, batSrcs, driftRng); err != nil {
			return cmp, err
		}
	}
	before = batSys.Stats()
	t0 := time.Now()
	results, err := batSys.ExecuteBatch(ctx, qs)
	batElapsed := time.Since(t0)
	if err != nil && !errors.Is(err, query.ErrBudgetExhausted{}) {
		return cmp, err
	}
	after = batSys.Stats()
	for r := 0; r < len(qs)*batchDriftPerQuery; r++ {
		if err := batchDrift(batSys, batNet, batSrcs, driftRng); err != nil {
			return cmp, err
		}
	}
	unmet := 0
	for _, r := range results {
		if !r.Met {
			unmet++
		}
	}
	cmp.Batch = BatchModeResult{
		Mode:             "batch",
		QueryRefreshes:   after.Messages[netsim.QueryRefresh] - before.Messages[netsim.QueryRefresh],
		QueryRefreshCost: after.QueryRefreshCost - before.QueryRefreshCost,
		ValueRefreshCost: after.ValueRefreshCost - before.ValueRefreshCost,
		Elapsed:          batElapsed,
		Unmet:            unmet,
	}
	if cmp.Batch.QueryRefreshCost > 0 {
		cmp.CostRatio = cmp.Sequential.QueryRefreshCost / cmp.Batch.QueryRefreshCost
	}
	if cmp.Batch.QueryRefreshes > 0 {
		cmp.MessageRatio = float64(cmp.Sequential.QueryRefreshes) / float64(cmp.Batch.QueryRefreshes)
	}

	// Answer identity: each batch answer must be bit-identical to the
	// same query executed alone on a fresh identical system (warmed
	// through the identical drift prefix, so its state matches the
	// instant the batch ran).
	if verify {
		for i, q := range qs {
			fresh, freshNet, freshSrcs, err := batchSystem(links, srcCount, seed)
			if err != nil {
				return cmp, err
			}
			freshRng := rand.New(rand.NewSource(seed + 13))
			for r := 0; r < batchWarmupRounds; r++ {
				if err := batchDrift(fresh, freshNet, freshSrcs, freshRng); err != nil {
					return cmp, err
				}
			}
			solo, err := fresh.ExecuteCtx(ctx, q)
			if err != nil {
				return cmp, err
			}
			if !SameResult(solo, results[i]) {
				return cmp, fmt.Errorf("batch answer %d (%v) diverges from standalone execution:\nbatch %+v\nsolo  %+v",
					i, q, results[i], solo)
			}
		}
		cmp.Verified = true
	}
	return cmp, nil
}

// SameResult compares the observable parts of two results bit-for-bit
// (answers, accounting, constraint outcome; ChooseTime is wall-clock
// and excluded).
func SameResult(a, b query.Result) bool {
	eq := func(x, y float64) bool { return x == y || (x != x && y != y) }
	if a.Answer.IsEmpty() != b.Answer.IsEmpty() {
		return false
	}
	if !a.Answer.IsEmpty() && (!eq(a.Answer.Lo, b.Answer.Lo) || !eq(a.Answer.Hi, b.Answer.Hi)) {
		return false
	}
	if a.Initial.IsEmpty() != b.Initial.IsEmpty() {
		return false
	}
	if !a.Initial.IsEmpty() && (!eq(a.Initial.Lo, b.Initial.Lo) || !eq(a.Initial.Hi, b.Initial.Hi)) {
		return false
	}
	return a.Refreshed == b.Refreshed && a.RefreshCost == b.RefreshCost && a.Met == b.Met
}
