package experiment

// Concurrency benchmarks for the thread-safe query engine. E13: N
// closed-loop client goroutines issue a mixed stream of bounded
// aggregation queries against one shared System built from the
// Figure-2 style network-monitoring workload while a background sweeper
// applies random-walk updates. E15 (mixed read/write mode, -updaters N):
// the links are partitioned across N updater goroutines generating
// open-loop push load at a configured aggregate rate, so the engine's
// storage layer is measured under concurrent source pushes — the
// workload used for the flat-vs-sharded comparison in
// BENCH_sharding.json. Each client runs a closed loop (next query issued
// as soon as the previous answer returns), so aggregate throughput
// scales with concurrency to the extent the engine allows scans to
// proceed while pushes write other shards.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/netsim"
	"trapp/internal/obs"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/source"
	"trapp/internal/trapp"
	"trapp/internal/workload"
)

// ConcurrentResult reports one closed-loop benchmark run.
type ConcurrentResult struct {
	// Clients is the number of closed-loop client goroutines.
	Clients int `json:"clients"`
	// Updaters is the number of updater goroutines pushing source values
	// concurrently with the clients (the mixed read/write mode); 0 means
	// the legacy single background sweeper.
	Updaters int `json:"updaters"`
	// TargetPushRate is the aggregate open-loop push rate the mixed
	// mode's updaters pace themselves to, in pushes/second; 0 means
	// closed-loop (push as fast as the engine admits).
	TargetPushRate float64 `json:"target_pushes_per_sec,omitempty"`
	// Queries is the total number of queries completed.
	Queries int64 `json:"queries"`
	// Pushes is the total number of source value updates applied during
	// the window.
	Pushes int64 `json:"pushes"`
	// Elapsed is the wall-clock measurement window.
	Elapsed time.Duration `json:"elapsed_ns"`
	// QPS is Queries / Elapsed.
	QPS float64 `json:"qps"`
	// PushRate is Pushes / Elapsed.
	PushRate float64 `json:"pushes_per_sec"`
	// P50 and P99 are query latency percentiles across all clients.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Refreshes and RefreshCost total the query-initiated refresh
	// traffic paid during the window.
	Refreshes   int64   `json:"refreshes"`
	RefreshCost float64 `json:"refresh_cost"`
	// Budget, when positive, is the per-request cost budget the clients
	// attached (WithCostBudget); BudgetExhausted counts queries whose
	// budget ran out before their precision constraint.
	Budget          float64 `json:"budget,omitempty"`
	BudgetExhausted int64   `json:"budget_exhausted,omitempty"`
	// EnginePhases breaks the engine's always-on latency histograms down
	// by phase over the measurement window (scan, choose, refresh, fold,
	// plus the whole request). Counts reflect the engine's 1-in-N
	// fast-path sampling (obs.SampleRate), so they undercount raw query
	// totals; distributions are unbiased. Quantile fields are named
	// q50/q99 — they are log-bucket estimates (≤12.5% relative error),
	// deliberately distinct from the sampled p50_ns/p99_ns the bench
	// gate compares.
	EnginePhases map[string]PhaseStats `json:"engine_phases,omitempty"`
}

// PhaseStats summarizes one engine phase's latency histogram over the
// measurement window.
type PhaseStats struct {
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	Q50NS  uint64  `json:"q50_ns"`
	Q99NS  uint64  `json:"q99_ns"`
	// Histogram carries the non-empty log buckets for replotting.
	Histogram obs.HistogramSnapshot `json:"histogram"`
}

// phaseStats diffs two engine metric snapshots into per-phase stats.
func phaseStats(before, after obs.MetricsSnapshot) map[string]PhaseStats {
	out := make(map[string]PhaseStats)
	for _, key := range []string{"request_ns", "scan_ns", "choose_ns", "refresh_ns", "fold_ns"} {
		win := after[key].Sub(before[key])
		if win.Count == 0 {
			continue
		}
		out[strings.TrimSuffix(key, "_ns")] = PhaseStats{
			Count:     win.Count,
			MeanNS:    win.Mean(),
			Q50NS:     win.Quantile(0.50),
			Q99NS:     win.Quantile(0.99),
			Histogram: win,
		}
	}
	return out
}

// BuildLinkSystem builds a System over a generated monitoring network:
// links spread round-robin across srcCount sources, one cache mounted as
// "links". It returns the system and the generated network (whose Links
// drive updates). It is the workload the closed-loop benchmarks run
// against, exported so cmd/trappserver can serve the identical system —
// trappbench -remote rebuilds it from the same parameters to verify
// wire answers bit-identical to in-process execution.
func BuildLinkSystem(links, srcCount int, seed int64) (*trapp.System, *workload.Network, error) {
	net, err := workload.NewNetwork(max(2, links/8), links, seed)
	if err != nil {
		return nil, nil, err
	}
	// The density greedy keeps CHOOSE_REFRESH O(n log n): the throughput
	// benchmark measures the storage and refresh paths, not the exact
	// knapsack's pseudo-polynomial DP, which would dominate wall-clock on
	// large unmet SUM/AVG instances.
	sys := trapp.NewSystem(refresh.Options{Solver: refresh.SolverGreedyDensity})
	c, err := sys.AddCache("monitor", workload.LinkSchema())
	if err != nil {
		return nil, nil, err
	}
	for si := 0; si < srcCount; si++ {
		if _, err := sys.AddSource(fmt.Sprintf("s%d", si), nil); err != nil {
			return nil, nil, err
		}
	}
	for i, l := range net.Links {
		src := sys.Source(fmt.Sprintf("s%d", i%srcCount))
		// Links promise converged near-zero-width bounds — the demand-
		// converged push regime (§8.1, DESIGN.md §8) in which a source
		// pushes once per real change. The benchmark thus exercises the
		// cache write path against concurrent scans instead of the
		// adaptive width controller's transient.
		if err := src.AddObject(l.Key, l.Values(), l.Cost, boundfn.StaticWidth(0.5)); err != nil {
			return nil, nil, err
		}
		if err := c.Subscribe(src, l.Key, []float64{float64(l.From), float64(l.To)}); err != nil {
			return nil, nil, err
		}
	}
	if err := sys.Mount("links", c); err != nil {
		return nil, nil, err
	}
	return sys, net, nil
}

// concurrentQuery builds one query of the benchmark mix: SUM, AVG,
// MIN, and MAX with moderate precision constraints (most answered from
// cache, some paying refreshes), an occasional predicate, and an
// occasional unconstrained (imprecise) probe.
func concurrentQuery(rng *rand.Rand, schema *relation.Schema, links int) query.Query {
	// SUM answer widths grow linearly with the table size, so its
	// absolute constraint carries a per-key budget scaled by the link
	// count (the other aggregates' widths are size-independent). The
	// budget sits above the adaptive-width equilibrium so the mix is
	// answered mostly from cache with occasional paid refreshes — the
	// regime the storage layer is benchmarked in.
	var q query.Query
	switch rng.Intn(5) {
	case 0:
		q = query.NewQuery("links", aggregate.Sum, workload.ColLatency)
		q.Within = (10 + rng.Float64()*20) * float64(links)
	case 1:
		q = query.NewQuery("links", aggregate.Avg, workload.ColTraffic)
		q.Within = 10 + rng.Float64()*30
	case 2:
		q = query.NewQuery("links", aggregate.Min, workload.ColBandwidth)
		q.Within = 15 + rng.Float64()*30
	case 3:
		q = query.NewQuery("links", aggregate.Max, workload.ColLatency)
		q.Within = 10 + rng.Float64()*20
		q.Where = predicate.NewCmp(
			predicate.Column(schema.MustLookup(workload.ColTraffic), workload.ColTraffic),
			predicate.Gt, predicate.Const(120))
	default:
		q = query.NewQuery("links", aggregate.Sum, workload.ColTraffic) // imprecise
	}
	return q
}

// Concurrent runs the closed-loop benchmark: clients goroutines querying
// a links-table System of the given size for the given wall-clock
// duration, while updater goroutines drive the workload. With
// updaters == 0 a single background sweeper random-walks every link once
// per round (the read-mostly E13 mode); with updaters >= 1 the links are
// partitioned across that many updater goroutines — the mixed read/write
// mode used to measure write-heavy scaling. Mixed-mode updaters generate
// open-loop load: they pace their sweeps so the aggregate push rate
// tracks pushRate pushes/second (0 means closed-loop, as fast as the
// engine admits), so two engines can be compared under the identical
// write load instead of under whatever load each one's locking happens
// to admit. It returns aggregate throughput and latency percentiles.
func Concurrent(clients, updaters, links, srcCount int, seed int64, duration time.Duration, pushRate float64) (ConcurrentResult, error) {
	return ConcurrentWarm(clients, updaters, links, srcCount, seed, duration, 0, pushRate, 0)
}

// ConcurrentWarm is Concurrent with an explicit warmup phase: the full
// workload runs for warmup first — letting the adaptive width policies
// converge and the caches reach steady state — and only then does the
// measurement window open (stats and latencies exclude the warmup).
// With budget > 0 every client attaches WithCostBudget(budget) — the
// cost-budgeted dual mode — and queries whose budget runs out before
// their constraint count as BudgetExhausted instead of failing.
func ConcurrentWarm(clients, updaters, links, srcCount int, seed int64, duration, warmup time.Duration, pushRate, budget float64) (ConcurrentResult, error) {
	sys, net, err := BuildLinkSystem(links, srcCount, seed)
	if err != nil {
		return ConcurrentResult{}, err
	}
	schema := sys.MountedCache("links").Schema()

	var (
		stop      atomic.Bool
		measuring atomic.Bool
		wg        sync.WaitGroup
		latMu     sync.Mutex
		lats      []time.Duration
		queries   atomic.Int64
		pushes    atomic.Int64
		exhausted atomic.Int64
	)
	// Updaters random-walk links and push to their sources, advancing the
	// clock once per sweep so bounds keep growing. Sources are resolved
	// once up front so the tight loops do no registry lookups. Each link
	// is owned by exactly one updater (Link.Step mutates walk state).
	srcs := make([]*source.Source, len(net.Links))
	for i := range net.Links {
		srcs[i] = sys.Source(fmt.Sprintf("s%d", i%srcCount))
	}
	sweepers := updaters
	if sweepers == 0 {
		sweepers = 1
	}
	for u := 0; u < sweepers; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			owned := 0
			for i := u; i < len(net.Links); i += sweepers {
				owned++
			}
			// Open-loop pacing: one sweep of this updater's partition every
			// period keeps the aggregate rate at pushRate.
			var period time.Duration
			if updaters > 0 && pushRate > 0 && owned > 0 {
				period = time.Duration(float64(time.Second) * float64(owned) / (pushRate / float64(sweepers)))
			}
			next := time.Now()
			lastTick := next
			for !stop.Load() {
				if u == 0 {
					if updaters == 0 {
						// Legacy read-mostly mode: one tick per sweep (E13).
						sys.Clock.Advance(1)
					} else if time.Since(lastTick) >= 10*time.Millisecond {
						// Mixed mode: updaters sweep far faster than any
						// realistic bound-growth tick, so cap the logical
						// clock at 100 ticks/second — only the time-driven
						// bound widening is rate-limited; pushes are paced
						// separately by pushRate.
						sys.Clock.Advance(1)
						lastTick = time.Now()
					}
				}
				for i := u; i < len(net.Links); i += sweepers {
					l := net.Links[i]
					if err := srcs[i].SetValue(l.Key, l.Step()); err != nil {
						panic(err)
					}
					pushes.Add(1)
				}
				if period > 0 {
					next = next.Add(period)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					} else if d < -100*time.Millisecond {
						// Cap the backlog so a long stall bursts at most
						// 100 ms of catch-up sweeps instead of unbounded.
						next = time.Now().Add(-100 * time.Millisecond)
					}
				}
			}
		}(u)
	}

	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := make([]time.Duration, 0, 4096)
			ctx := context.Background()
			var opts []query.ExecOption
			if budget > 0 {
				opts = append(opts, query.WithCostBudget(budget))
			}
			for !stop.Load() {
				q := concurrentQuery(rng, schema, links)
				t0 := time.Now()
				res, err := sys.ExecuteCtx(ctx, q, opts...)
				switch {
				case err == nil:
				case errors.Is(err, query.ErrBudgetExhausted{}):
					exhausted.Add(1)
				default:
					panic(err)
				}
				if budget > 0 && res.RefreshCost > budget+1e-9 {
					panic(fmt.Sprintf("budget %g exceeded: paid %g", budget, res.RefreshCost))
				}
				if !measuring.Load() {
					continue // warmup: converge, record nothing
				}
				local = append(local, time.Since(t0))
				queries.Add(1)
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(seed + int64(cl) + 1)
	}
	if warmup > 0 {
		time.Sleep(warmup)
	}
	before := sys.Stats()
	mBefore := sys.Metrics().Snapshot()
	pushStart := pushes.Load()
	start := time.Now()
	measuring.Store(true)
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	pushed := pushes.Load() - pushStart
	mAfter := sys.Metrics().Snapshot()

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(math.Ceil(p*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	after := sys.Stats()
	n := queries.Load()
	target := 0.0
	if updaters > 0 {
		target = pushRate
	}
	return ConcurrentResult{
		Clients:         clients,
		Budget:          budget,
		BudgetExhausted: exhausted.Load(),
		Updaters:        updaters,
		TargetPushRate:  target,
		Queries:         n,
		Pushes:          pushed,
		Elapsed:         elapsed,
		QPS:             float64(n) / elapsed.Seconds(),
		PushRate:        float64(pushed) / elapsed.Seconds(),
		P50:             pct(0.50),
		P99:             pct(0.99),
		Refreshes:       after.Messages[netsim.QueryRefresh] - before.Messages[netsim.QueryRefresh],
		RefreshCost:     after.QueryRefreshCost - before.QueryRefreshCost,
		EnginePhases:    phaseStats(mBefore, mAfter),
	}, nil
}
