package experiment

// Closed-loop concurrency benchmark for the thread-safe query engine
// (E13). N client goroutines issue a mixed stream of bounded aggregation
// queries against one shared System built from the Figure-2 style
// network-monitoring workload, while an updater goroutine applies
// random-walk updates and advances the clock. Each client runs a closed
// loop (next query issued as soon as the previous answer returns), so
// aggregate throughput scales with concurrency to the extent the engine
// allows scans to share the table read lock and refreshes to fan out
// across sources in parallel.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/netsim"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/source"
	"trapp/internal/trapp"
	"trapp/internal/workload"
)

// ConcurrentResult reports one closed-loop benchmark run.
type ConcurrentResult struct {
	// Clients is the number of closed-loop client goroutines.
	Clients int `json:"clients"`
	// Queries is the total number of queries completed.
	Queries int64 `json:"queries"`
	// Elapsed is the wall-clock measurement window.
	Elapsed time.Duration `json:"elapsed_ns"`
	// QPS is Queries / Elapsed.
	QPS float64 `json:"qps"`
	// P50 and P99 are query latency percentiles across all clients.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Refreshes and RefreshCost total the query-initiated refresh
	// traffic paid during the window.
	Refreshes   int64   `json:"refreshes"`
	RefreshCost float64 `json:"refresh_cost"`
}

// concurrentSystem builds a System over a generated monitoring network:
// links spread round-robin across srcCount sources, one cache mounted as
// "links". It returns the system, the network (for the updater), and the
// per-source link assignment.
func concurrentSystem(links, srcCount int, seed int64) (*trapp.System, *workload.Network, error) {
	net, err := workload.NewNetwork(max(2, links/8), links, seed)
	if err != nil {
		return nil, nil, err
	}
	sys := trapp.NewSystem(refresh.Options{})
	c, err := sys.AddCache("monitor", workload.LinkSchema())
	if err != nil {
		return nil, nil, err
	}
	for si := 0; si < srcCount; si++ {
		if _, err := sys.AddSource(fmt.Sprintf("s%d", si), nil); err != nil {
			return nil, nil, err
		}
	}
	for i, l := range net.Links {
		src := sys.Source(fmt.Sprintf("s%d", i%srcCount))
		if err := src.AddObject(l.Key, l.Values(), l.Cost, boundfn.NewAdaptiveWidth(2)); err != nil {
			return nil, nil, err
		}
		if err := c.Subscribe(src, l.Key, []float64{float64(l.From), float64(l.To)}); err != nil {
			return nil, nil, err
		}
	}
	if err := sys.Mount("links", c); err != nil {
		return nil, nil, err
	}
	return sys, net, nil
}

// concurrentQuery builds one query of the benchmark mix: SUM, AVG,
// MIN, and MAX with moderate precision constraints (most answered from
// cache, some paying refreshes), an occasional predicate, and an
// occasional unconstrained (imprecise) probe.
func concurrentQuery(rng *rand.Rand, schema *relation.Schema) query.Query {
	var q query.Query
	switch rng.Intn(5) {
	case 0:
		q = query.NewQuery("links", aggregate.Sum, workload.ColLatency)
		q.Within = 40 + rng.Float64()*80
	case 1:
		q = query.NewQuery("links", aggregate.Avg, workload.ColTraffic)
		q.Within = 10 + rng.Float64()*30
	case 2:
		q = query.NewQuery("links", aggregate.Min, workload.ColBandwidth)
		q.Within = 15 + rng.Float64()*30
	case 3:
		q = query.NewQuery("links", aggregate.Max, workload.ColLatency)
		q.Within = 10 + rng.Float64()*20
		q.Where = predicate.NewCmp(
			predicate.Column(schema.MustLookup(workload.ColTraffic), workload.ColTraffic),
			predicate.Gt, predicate.Const(120))
	default:
		q = query.NewQuery("links", aggregate.Sum, workload.ColTraffic) // imprecise
	}
	return q
}

// Concurrent runs the closed-loop benchmark: clients goroutines querying
// a links-table System of the given size for the given wall-clock
// duration, with one updater goroutine driving the workload. It returns
// aggregate throughput and latency percentiles.
func Concurrent(clients, links, srcCount int, seed int64, duration time.Duration) (ConcurrentResult, error) {
	sys, net, err := concurrentSystem(links, srcCount, seed)
	if err != nil {
		return ConcurrentResult{}, err
	}
	schema := sys.MountedCache("links").Table().Schema()
	before := sys.Stats()

	var (
		stop    atomic.Bool
		wg      sync.WaitGroup
		latMu   sync.Mutex
		lats    []time.Duration
		queries atomic.Int64
	)
	// Updater: random-walk every link and push to its source, advancing
	// the clock each round so bounds keep growing. Sources are resolved
	// once up front so the tight loop does no registry lookups.
	srcs := make([]*source.Source, len(net.Links))
	for i := range net.Links {
		srcs[i] = sys.Source(fmt.Sprintf("s%d", i%srcCount))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			sys.Clock.Advance(1)
			for i, l := range net.Links {
				if err := srcs[i].SetValue(l.Key, l.Step()); err != nil {
					panic(err)
				}
			}
		}
	}()

	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := make([]time.Duration, 0, 4096)
			for !stop.Load() {
				q := concurrentQuery(rng, schema)
				t0 := time.Now()
				if _, err := sys.Execute(q); err != nil {
					panic(err)
				}
				local = append(local, time.Since(t0))
				queries.Add(1)
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(seed + int64(cl) + 1)
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(math.Ceil(p*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	after := sys.Stats()
	n := queries.Load()
	return ConcurrentResult{
		Clients:     clients,
		Queries:     n,
		Elapsed:     elapsed,
		QPS:         float64(n) / elapsed.Seconds(),
		P50:         pct(0.50),
		P99:         pct(0.99),
		Refreshes:   after.Messages[netsim.QueryRefresh] - before.Messages[netsim.QueryRefresh],
		RefreshCost: after.QueryRefreshCost - before.QueryRefreshCost,
	}, nil
}
