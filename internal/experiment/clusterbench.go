package experiment

// Cluster benchmark (E19): closed-loop clients through the
// scatter-gather coordinator over N in-process partitions, against the
// same link workload and query mix as the single-node concurrent
// benchmark (E13) — so BENCH_cluster.json exposes the coordination
// overhead directly: nodes=1 is the coordinator fronting one partition
// holding everything, nodes=N splits the same tuples N ways.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/partition"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/source"
)

// ClusterResult is one cluster benchmark run, with the coordinator's
// per-partition health breakdown attached.
type ClusterResult struct {
	// Nodes is the partition count.
	Nodes int `json:"nodes"`
	// Clients is the number of closed-loop client goroutines.
	Clients int `json:"clients"`
	// Queries completed in the measurement window.
	Queries int64 `json:"queries"`
	// Elapsed is the wall-clock measurement window.
	Elapsed time.Duration `json:"elapsed_ns"`
	// QPS is Queries / Elapsed.
	QPS float64 `json:"qps"`
	// P50 and P99 are query latency percentiles across all clients.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// RefreshCost totals the refresh cost paid by measured queries.
	RefreshCost float64 `json:"refresh_cost"`
	// Unmet counts measured queries ending in precision-unmet.
	Unmet int64 `json:"unmet"`
	// DegradedQueries counts queries answered from degraded fallback
	// state (should be 0 on a healthy loopback cluster).
	DegradedQueries int64 `json:"degraded_queries"`
	// Partitions is the coordinator's per-partition health snapshot.
	Partitions []partition.NodeMetrics `json:"partitions"`
}

// ClusterBench builds an N-partition link cluster in-process and drives
// it with closed-loop clients for the given window. A background
// sweeper random-walks every link through its owning partition's source
// and advances every partition clock once per sweep, mirroring the E13
// read-mostly regime.
func ClusterBench(nodes, clients, links, srcCount int, seed int64, duration, warmup time.Duration) (ClusterResult, error) {
	systems, netw, ring, err := BuildLinkPartitions(links, srcCount, seed, PartitionIDs(nodes))
	if err != nil {
		return ClusterResult{}, err
	}
	defer func() {
		for _, s := range systems {
			s.Close()
		}
	}()
	ns := make([]partition.Node, len(systems))
	for i, sys := range systems {
		ns[i] = partition.NewLocalNode(fmt.Sprintf("p%d", i), sys)
	}
	cl, err := partition.New(context.Background(), ns,
		partition.Config{Options: refresh.Options{Solver: refresh.SolverGreedyDensity}})
	if err != nil {
		return ClusterResult{}, err
	}
	defer cl.Close()
	schema := systems[0].MountedCache("links").Schema()

	var (
		stop      atomic.Bool
		measuring atomic.Bool
		wg        sync.WaitGroup
		latMu     sync.Mutex
		lats      []time.Duration
		queries   atomic.Int64
		unmet     atomic.Int64
		costBits  atomic.Uint64 // refresh cost as float bits, CAS-accumulated
	)
	addCost := func(c float64) {
		for {
			old := costBits.Load()
			if costBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+c)) {
				return
			}
		}
	}
	// One sweeper owns every link (Link.Step mutates walk state); each
	// push goes to the source on the link's owning partition.
	srcs := make([]*source.Source, len(netw.Links))
	for i, l := range netw.Links {
		srcs[i] = systems[ring.OwnerOfKey(l.Key)].Source(fmt.Sprintf("s%d", i%srcCount))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			for _, sys := range systems {
				sys.Clock.Advance(1)
			}
			for i, l := range netw.Links {
				if err := srcs[i].SetValue(l.Key, l.Step()); err != nil {
					panic(err)
				}
			}
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := make([]time.Duration, 0, 4096)
			ctx := context.Background()
			for !stop.Load() {
				q := MixQuery(rng, schema, links)
				t0 := time.Now()
				res, err := cl.ExecuteCtx(ctx, q)
				switch {
				case err == nil:
				case errors.As(err, &query.ErrPrecisionUnmet{}):
					unmet.Add(1)
				default:
					panic(err)
				}
				if !measuring.Load() {
					continue
				}
				local = append(local, time.Since(t0))
				queries.Add(1)
				addCost(res.RefreshCost)
			}
			latMu.Lock()
			lats = append(lats, local...)
			latMu.Unlock()
		}(seed + int64(c) + 1)
	}

	if warmup > 0 {
		time.Sleep(warmup)
	}
	start := time.Now()
	measuring.Store(true)
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(math.Ceil(p*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		return lats[i]
	}
	cm := cl.ClusterMetrics().(partition.Metrics)
	n := queries.Load()
	return ClusterResult{
		Nodes:           nodes,
		Clients:         clients,
		Queries:         n,
		Elapsed:         elapsed,
		QPS:             float64(n) / elapsed.Seconds(),
		P50:             pct(0.50),
		P99:             pct(0.99),
		RefreshCost:     math.Float64frombits(costBits.Load()),
		Unmet:           unmet.Load(),
		DegradedQueries: cm.Degraded,
		Partitions:      cm.Partitions,
	}, nil
}
