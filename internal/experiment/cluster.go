package experiment

// Partitioned builds of the links workload (E19, the partitioned
// serving tier). BuildLinkPartitions splits the exact network
// BuildLinkSystem generates across N embedded systems by consistent
// hash of the tuple key — each partition holds only the links whose
// canonical buckets the ring assigns to it, while every partition runs
// the full source set so the link→source mapping is position-stable.
// A coordinator over the partitions answers bit-identically to the
// single system BuildLinkSystem builds from the same parameters, which
// is what the cluster differential test asserts and what makes the
// cluster benchmark comparable to the single-node one.

import (
	"fmt"
	"math/rand"

	"trapp/internal/boundfn"
	"trapp/internal/partition"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/trapp"
	"trapp/internal/workload"
)

// BuildLinkPartitions builds one embedded System per id, together
// holding exactly the tuples of BuildLinkSystem(links, srcCount, seed):
// tuple placement follows the rendezvous ring over ids. The returned
// network is the generator whose Links drive updates — push a link's
// value to the partition the ring assigns its key.
func BuildLinkPartitions(links, srcCount int, seed int64, ids []string) ([]*trapp.System, *workload.Network, *partition.Ring, error) {
	ring, err := partition.NewRing(ids)
	if err != nil {
		return nil, nil, nil, err
	}
	netw, err := workload.NewNetwork(max(2, links/8), links, seed)
	if err != nil {
		return nil, nil, nil, err
	}
	systems := make([]*trapp.System, len(ids))
	fail := func(err error) ([]*trapp.System, *workload.Network, *partition.Ring, error) {
		for _, s := range systems {
			if s != nil {
				s.Close()
			}
		}
		return nil, nil, nil, err
	}
	for pi := range ids {
		sys := trapp.NewSystem(refresh.Options{Solver: refresh.SolverGreedyDensity})
		systems[pi] = sys
		c, err := sys.AddCache("monitor", workload.LinkSchema())
		if err != nil {
			return fail(err)
		}
		// Every partition runs all srcCount sources so link i maps to
		// source s{i%srcCount} exactly as in the single system; each
		// source just holds fewer objects here.
		for si := 0; si < srcCount; si++ {
			if _, err := sys.AddSource(fmt.Sprintf("s%d", si), nil); err != nil {
				return fail(err)
			}
		}
		for i, l := range netw.Links {
			if ring.OwnerOfKey(l.Key) != pi {
				continue
			}
			src := sys.Source(fmt.Sprintf("s%d", i%srcCount))
			if err := src.AddObject(l.Key, l.Values(), l.Cost, boundfn.StaticWidth(0.5)); err != nil {
				return fail(err)
			}
			if err := c.Subscribe(src, l.Key, []float64{float64(l.From), float64(l.To)}); err != nil {
				return fail(err)
			}
		}
		if err := sys.Mount("links", c); err != nil {
			return fail(err)
		}
	}
	return systems, netw, ring, nil
}

// MixQuery exposes the benchmark query mix for the cluster differential
// test and bench runner.
func MixQuery(rng *rand.Rand, schema *relation.Schema, links int) query.Query {
	return concurrentQuery(rng, schema, links)
}

// PartitionIDs names n partitions p0..p{n-1}.
func PartitionIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("p%d", i)
	}
	return ids
}
