package experiment

import "testing"

func TestIterativeVsBatch(t *testing.T) {
	rows := IterativeVsBatch(90, DefaultSeed)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.IterCost > r.BatchCost+1e-9 {
			t.Errorf("%v: iterative %g > batch %g", r.Agg, r.IterCost, r.BatchCost)
		}
		if r.IterRounds < 0 {
			t.Errorf("%v: rounds %d", r.Agg, r.IterRounds)
		}
	}
}

func TestIndexSpeedup(t *testing.T) {
	rows := IndexSpeedup([]int{100, 1000}, DefaultSeed, 20)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ScanTime <= 0 || r.IndexTime <= 0 {
			t.Errorf("n=%d: non-positive times %v %v", r.N, r.ScanTime, r.IndexTime)
		}
	}
	// At the larger size the index should win (the scan is O(n); the
	// index probes are near-constant for a small plan).
	big := rows[len(rows)-1]
	if big.IndexTime > big.ScanTime {
		t.Logf("index (%v) did not beat scan (%v) at n=%d — acceptable on noisy machines",
			big.IndexTime, big.ScanTime, big.N)
	}
}

func TestMedians(t *testing.T) {
	rows := Medians([]float64{20, 10, 5, 1, 0}, 90, DefaultSeed)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tightening R must not reduce refresh cost.
	for i := 1; i < len(rows); i++ {
		if rows[i].RefreshCost < rows[i-1].RefreshCost-1e-9 {
			t.Errorf("R=%g cost %g < R=%g cost %g",
				rows[i].R, rows[i].RefreshCost, rows[i-1].R, rows[i-1].RefreshCost)
		}
	}
}
