package obs

import (
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestBucketIndexBounds(t *testing.T) {
	// Every representable value lands in a bucket whose bounds contain it,
	// and indexes are monotone in the value.
	vals := []uint64{0, 1, 7, 8, 9, 15, 16, 17, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxUint64}
	for _, v := range vals {
		i := bucketIndex(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", v, i)
		}
		lo, hi := bucketBounds(i)
		if v < lo || (v >= hi && hi > lo) { // hi==lo only possible on overflow of the top bucket
			t.Fatalf("value %d not in bucket %d bounds [%d,%d)", v, i, lo, hi)
		}
	}
	prev := -1
	for v := uint64(0); v < 4096; v++ {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
	}
}

func TestBucketRelativeError(t *testing.T) {
	// Bucket width / lower bound must stay ≤ 1/sub = 12.5% above the
	// linear region.
	for i := sub; i < numBuckets-1; i++ {
		lo, hi := bucketBounds(i)
		if hi <= lo {
			continue // top-of-range overflow bucket
		}
		if rel := float64(hi-lo) / float64(lo); rel > 1.0/sub+1e-9 {
			t.Fatalf("bucket %d [%d,%d) relative width %.3f > 12.5%%", i, lo, hi, rel)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	// Against a known distribution the quantile estimate must be within
	// one bucket width (≤12.5% relative) of the true order statistic.
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	vals := make([]uint64, 10000)
	for i := range vals {
		v := uint64(rng.ExpFloat64() * 50000)
		vals[i] = v
		h.Observe(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("count %d != %d", s.Count, len(vals))
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(math.Ceil(q*float64(len(vals))))-1]
		est := s.Quantile(q)
		if exact == 0 {
			continue
		}
		rel := math.Abs(float64(est)-float64(exact)) / float64(exact)
		if rel > 0.125+1e-9 {
			t.Fatalf("q%.2f estimate %d vs exact %d: relative error %.3f", q, est, exact, rel)
		}
	}
}

func TestHistogramSub(t *testing.T) {
	var h Histogram
	h.Observe(5)
	h.Observe(100)
	before := h.Snapshot()
	h.Observe(5)
	h.Observe(9999)
	diff := h.Snapshot().Sub(before)
	if diff.Count != 2 || diff.Sum != 5+9999 {
		t.Fatalf("diff count=%d sum=%d", diff.Count, diff.Sum)
	}
	var n uint64
	for _, b := range diff.Buckets {
		n += b.Count
	}
	if n != 2 {
		t.Fatalf("diff bucket counts sum to %d, want 2", n)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshots must stay monotone in count.
	go func() {
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < last {
				panic("count went backwards")
			}
			last = s.Count
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(uint64(rng.Intn(1 << 30)))
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count %d != %d", s.Count, workers*per)
	}
	var n uint64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != s.Count {
		t.Fatalf("bucket sum %d != count %d after quiesce", n, s.Count)
	}
}

func TestTraceCostReplay(t *testing.T) {
	// TotalCost must replay the plan-order float fold bit-exactly.
	keys := []int64{3, 1, 7, 2}
	costs := []float64{0.1, 0.2, 0.30000000000000004, 1e-17}
	tr := NewTrace("q")
	tr.SetPlanCosts(keys, costs)
	sp := tr.Root.StartSpan("refresh")
	s1 := sp.StartSpan("source:s0")
	s1.RecordKeys([]int64{3, 7})
	s2 := sp.StartSpan("source:s1")
	s2.RecordKeys([]int64{1}) // key 2 never installed
	sp.End()
	tr.Finish()

	var want float64
	installed := map[int64]bool{3: true, 7: true, 1: true}
	for i, k := range keys {
		if installed[k] {
			want += costs[i]
		}
	}
	if got := tr.TotalCost(); got != want {
		t.Fatalf("TotalCost %v != engine fold %v", got, want)
	}
	snap := tr.Snapshot()
	if snap.TotalCost != want {
		t.Fatalf("snapshot TotalCost %v != %v", snap.TotalCost, want)
	}
	// Snapshot must round-trip through JSON.
	buf, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back TraceSnapshot
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.TotalCost != snap.TotalCost || len(back.Root.Children) != len(snap.Root.Children) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", back, snap)
	}
	if !strings.Contains(snap.String(), "total refresh cost") {
		t.Fatalf("render missing total: %s", snap)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	var sp *Span
	tr.Finish()
	tr.SetPlanCosts([]int64{1}, []float64{1})
	if tr.TotalCost() != 0 {
		t.Fatal("nil trace cost")
	}
	if c := sp.StartSpan("x"); c != nil {
		t.Fatal("nil span child")
	}
	sp.End()
	sp.SetDetail("d")
	sp.RecordKeys([]int64{1})
	ctx := ContextWithSpan(context.Background(), nil)
	if SpanFromContext(ctx) != nil {
		t.Fatal("nil span in context")
	}
}

func TestPromWriterValidates(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(uint64(i * 3000))
	}
	w := NewPromWriter()
	w.Counter("trapp_requests_total", "total requests", nil, 42)
	w.Gauge("trapp_in_flight", "in flight", nil, 3)
	w.Counter("trapp_errors_total", "errors", map[string]string{"code": `bad"quote`}, 1)
	w.Histo("trapp_request_seconds", "latency", nil, h.Snapshot(), 1e9)
	w.Histo("trapp_phase_seconds", "phase latency", map[string]string{"phase": "scan"}, h.Snapshot(), 1e9)
	w.Histo("trapp_phase_seconds", "phase latency", map[string]string{"phase": "fold"}, h.Snapshot(), 1e9)
	out := w.String()
	if err := ValidateProm(strings.NewReader(out)); err != nil {
		t.Fatalf("ValidateProm: %v\npayload:\n%s", err, out)
	}
}

func TestValidatePromRejects(t *testing.T) {
	cases := map[string]string{
		"no type":        "foo_total 1\n",
		"malformed":      "# TYPE x counter\nx{ 1\n",
		"not cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"inf mismatch":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
		"no le":          "# TYPE h histogram\nh_bucket 4\nh_sum 1\nh_count 4\n",
	}
	for name, payload := range cases {
		if err := ValidateProm(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: expected error for:\n%s", name, payload)
		}
	}
}
