package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// PromWriter assembles a Prometheus text-exposition (version 0.0.4)
// payload by hand — the service layer stays dependency-free. Families
// must be written one at a time: Counter/Gauge/Histo emit the # HELP
// and # TYPE header on a family's first sample.
type PromWriter struct {
	b        strings.Builder
	declared map[string]bool
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{declared: make(map[string]bool)}
}

func (w *PromWriter) header(name, help, typ string) {
	if w.declared[name] {
		return
	}
	w.declared[name] = true
	fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promFloat formats a sample value; Prometheus accepts Go's 'g' format
// plus +Inf/-Inf/NaN spellings.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders a label set as {k="v",...} with keys sorted, or
// "" when empty. Values are escaped per the exposition format.
func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(labels[k])
		fmt.Fprintf(&b, "%s=%q", k, v)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter writes one counter sample.
func (w *PromWriter) Counter(name, help string, labels map[string]string, v float64) {
	w.header(name, help, "counter")
	fmt.Fprintf(&w.b, "%s%s %s\n", name, labelString(labels), promFloat(v))
}

// Gauge writes one gauge sample.
func (w *PromWriter) Gauge(name, help string, labels map[string]string, v float64) {
	w.header(name, help, "gauge")
	fmt.Fprintf(&w.b, "%s%s %s\n", name, labelString(labels), promFloat(v))
}

// Histo writes a HistogramSnapshot as a Prometheus histogram: one
// cumulative _bucket series per non-empty bucket (le = the bucket's
// exclusive upper bound, scaled by 1/scale) plus le="+Inf", _sum, and
// _count. Latency histograms pass scale=1e9 to export seconds.
func (w *PromWriter) Histo(name, help string, labels map[string]string, s HistogramSnapshot, scale float64) {
	w.header(name, help, "histogram")
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		ls := make(map[string]string, len(labels)+1)
		for k, v := range labels {
			ls[k] = v
		}
		ls["le"] = promFloat(float64(b.Hi) / scale)
		fmt.Fprintf(&w.b, "%s_bucket%s %d\n", name, labelString(ls), cum)
	}
	ls := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		ls[k] = v
	}
	ls["le"] = "+Inf"
	// Concurrent snapshots may have Count ahead of the bucket sum;
	// +Inf must be the largest cumulative value to stay well-formed.
	if s.Count > cum {
		cum = s.Count
	}
	fmt.Fprintf(&w.b, "%s_bucket%s %d\n", name, labelString(ls), cum)
	fmt.Fprintf(&w.b, "%s_sum%s %s\n", name, labelString(labels), promFloat(float64(s.Sum)/scale))
	fmt.Fprintf(&w.b, "%s_count%s %d\n", name, labelString(labels), cum)
}

// String returns the assembled payload.
func (w *PromWriter) String() string { return w.b.String() }

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+\S+)?$`)
	promLabelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// ValidateProm parses a Prometheus text-format payload and returns an
// error describing the first violation: malformed lines, samples for
// undeclared families, unparsable values, histogram buckets without an
// le label, non-cumulative buckets, or histograms whose +Inf bucket
// disagrees with _count. CI uses this (via cmd/promcheck) to keep
// /metrics.prom scrapeable.
func ValidateProm(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	types := make(map[string]string)
	type histState struct {
		lastCum  map[string]float64 // label-set (minus le) → last cumulative count
		infCount map[string]float64
		count    map[string]float64
	}
	hists := make(map[string]*histState)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 || !promNameRe.MatchString(fields[2]) {
					return fmt.Errorf("line %d: malformed %s comment: %q", lineNo, fields[1], line)
				}
				if fields[1] == "TYPE" {
					if len(fields) < 4 {
						return fmt.Errorf("line %d: TYPE comment missing type: %q", lineNo, line)
					}
					types[fields[2]] = fields[3]
				}
			}
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample: %q", lineNo, line)
		}
		name, labelBody, valStr := m[1], m[3], m[4]
		val, err := parsePromValue(valStr)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		labels, err := parsePromLabels(labelBody)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, sfx)
			if base != name && types[base] == "histogram" {
				family, suffix = base, sfx
				break
			}
		}
		typ, ok := types[family]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}
		if typ != "histogram" {
			continue
		}
		if suffix == "" {
			return fmt.Errorf("line %d: histogram family %q sample must end in _bucket/_sum/_count", lineNo, family)
		}
		h := hists[family]
		if h == nil {
			h = &histState{lastCum: map[string]float64{}, infCount: map[string]float64{}, count: map[string]float64{}}
			hists[family] = h
		}
		le, hasLe := labels["le"]
		delete(labels, "le")
		series := labelString(labels)
		switch suffix {
		case "_bucket":
			if !hasLe {
				return fmt.Errorf("line %d: %s_bucket without le label", lineNo, family)
			}
			if val < h.lastCum[series] {
				return fmt.Errorf("line %d: %s bucket counts not cumulative (le=%s: %g < %g)",
					lineNo, family, le, val, h.lastCum[series])
			}
			h.lastCum[series] = val
			if le == "+Inf" {
				h.infCount[series] = val
			}
		case "_count":
			h.count[series] = val
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for family, h := range hists {
		for series, n := range h.count {
			inf, ok := h.infCount[series]
			if !ok {
				return fmt.Errorf("histogram %s%s: missing le=\"+Inf\" bucket", family, series)
			}
			if inf != n {
				return fmt.Errorf("histogram %s%s: +Inf bucket %g != count %g", family, series, inf, n)
			}
		}
	}
	return nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func parsePromLabels(body string) (map[string]string, error) {
	labels := make(map[string]string)
	body = strings.TrimSuffix(strings.TrimSpace(body), ",")
	if body == "" {
		return labels, nil
	}
	// Split on commas outside quotes.
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, body[start:])
	for _, p := range parts {
		p = strings.TrimSpace(p)
		m := promLabelRe.FindStringSubmatch(p)
		if m == nil {
			return nil, fmt.Errorf("malformed label %q", p)
		}
		labels[m[1]] = m[2]
	}
	return labels, nil
}
