package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is the per-request span tree recorded when a query runs with
// tracing enabled. A Trace owns a Root span covering the whole request;
// engine phases and per-source refresh batches hang off it as children.
//
// Cost attribution is exact by construction: the query processor hands
// the trace the chosen refresh plan's (key, cost) pairs in plan order
// via SetPlanCosts, and each per-source span records which of those
// keys were actually installed. TotalCost replays the engine's own
// accounting loop — same keys, same order, same float additions — so
// Trace.TotalCost() equals Result.RefreshCost bit-for-bit.
type Trace struct {
	Root *Span

	start time.Time

	mu        sync.Mutex
	planKeys  []int64
	planCosts []float64
}

// NewTrace starts a trace whose Root span begins now.
func NewTrace(name string) *Trace {
	t := &Trace{start: time.Now()}
	t.Root = &Span{trace: t, Name: name, start: t.start}
	return t
}

// Finish ends the root span. Nil-safe.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.Root.End()
}

// SetPlanCosts records the refresh plan's keys and per-key costs in
// plan order; installed keys reported by spans are charged from this
// table. Nil-safe.
func (t *Trace) SetPlanCosts(keys []int64, costs []float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.planKeys = append(t.planKeys[:0], keys...)
	t.planCosts = append(t.planCosts[:0], costs...)
	t.mu.Unlock()
}

// installedSet collects every key recorded as installed by any span.
func (t *Trace) installedSet() map[int64]bool {
	set := make(map[int64]bool)
	var walk func(s *Span)
	walk = func(s *Span) {
		s.mu.Lock()
		for _, k := range s.keys {
			set[k] = true
		}
		children := append([]*Span(nil), s.children...)
		s.mu.Unlock()
		for _, c := range children {
			walk(c)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return set
}

// TotalCost folds the plan's per-key costs over the keys the spans
// recorded as installed, in plan order — the identical float addition
// sequence the engine used for Result.RefreshCost. Nil-safe.
func (t *Trace) TotalCost() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	keys := append([]int64(nil), t.planKeys...)
	costs := append([]float64(nil), t.planCosts...)
	t.mu.Unlock()
	installed := t.installedSet()
	var total float64
	for i, k := range keys {
		if installed[k] {
			total += costs[i]
		}
	}
	return total
}

// costTable returns the plan's key→cost map.
func (t *Trace) costTable() map[int64]float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := make(map[int64]float64, len(t.planKeys))
	for i, k := range t.planKeys {
		m[k] = t.planCosts[i]
	}
	return m
}

// Span is one timed region of a traced request. All methods are safe on
// a nil receiver, so instrumentation points can call unconditionally:
// with tracing off every hook is a nil check.
type Span struct {
	Name   string
	Detail string

	trace *Trace
	start time.Time

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	keys     []int64
	children []*Span
}

// StartSpan opens a child span named name under s. Returns nil when s
// is nil.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{trace: s.trace, Name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its duration. Idempotent; nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.mu.Lock()
	if !s.ended {
		s.dur = d
		s.ended = true
	}
	s.mu.Unlock()
}

// SetDetail attaches a human-readable annotation (plan description,
// source id, key count). Nil-safe.
func (s *Span) SetDetail(format string, args ...any) {
	if s == nil {
		return
	}
	d := fmt.Sprintf(format, args...)
	s.mu.Lock()
	s.Detail = d
	s.mu.Unlock()
}

// RecordKeys marks keys as installed by this span; their plan costs are
// charged to it. Nil-safe.
func (s *Span) RecordKeys(keys []int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.keys = append(s.keys, keys...)
	s.mu.Unlock()
}

// spanKey is the context key for the active refresh span.
type spanKey struct{}

// ContextWithSpan returns ctx carrying s as the active span for
// downstream instrumentation points.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the active span, or nil when the request is
// not being traced.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SpanSnapshot is the immutable, wire-ready form of a span. StartNS is
// the offset from the trace root's start.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	Detail     string         `json:"detail,omitempty"`
	StartNS    int64          `json:"start_ns"`
	DurationNS int64          `json:"duration_ns"`
	Keys       []int64        `json:"keys,omitempty"`
	Cost       float64        `json:"cost,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// TraceSnapshot is the immutable, wire-ready form of a trace. TotalCost
// is Trace.TotalCost() at snapshot time and, for a completed request,
// equals the result's RefreshCost bit-exactly.
type TraceSnapshot struct {
	Root      SpanSnapshot `json:"root"`
	TotalCost float64      `json:"total_cost"`
}

// Snapshot freezes the trace into a serializable value. Sibling spans
// are ordered by start offset, breaking ties by name, so sequential
// phases render in execution order. Returns the zero value on nil.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil || t.Root == nil {
		return TraceSnapshot{}
	}
	return TraceSnapshot{Root: t.snapshotSpan(t.Root, t.costTable()), TotalCost: t.TotalCost()}
}

func (t *Trace) snapshotSpan(s *Span, costs map[int64]float64) SpanSnapshot {
	s.mu.Lock()
	out := SpanSnapshot{
		Name:       s.Name,
		Detail:     s.Detail,
		StartNS:    s.start.Sub(t.start).Nanoseconds(),
		DurationNS: s.dur.Nanoseconds(),
	}
	if len(s.keys) > 0 {
		out.Keys = append([]int64(nil), s.keys...)
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	sort.Slice(out.Keys, func(i, j int) bool { return out.Keys[i] < out.Keys[j] })
	for _, k := range out.Keys {
		out.Cost += costs[k]
	}
	for _, c := range children {
		out.Children = append(out.Children, t.snapshotSpan(c, costs))
	}
	sort.Slice(out.Children, func(i, j int) bool {
		a, b := out.Children[i], out.Children[j]
		if a.StartNS != b.StartNS {
			return a.StartNS < b.StartNS
		}
		return a.Name < b.Name
	})
	return out
}

// String renders the trace as an indented tree — the EXPLAIN ANALYZE
// output format.
func (t TraceSnapshot) String() string {
	var b strings.Builder
	var walk func(s SpanSnapshot, depth int)
	walk = func(s SpanSnapshot, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s  %.3fms", s.Name, float64(s.DurationNS)/1e6)
		if s.Cost > 0 {
			fmt.Fprintf(&b, "  cost=%g", s.Cost)
		}
		if len(s.Keys) > 0 {
			fmt.Fprintf(&b, "  keys=%d", len(s.Keys))
		}
		if s.Detail != "" {
			fmt.Fprintf(&b, "  (%s)", s.Detail)
		}
		b.WriteByte('\n')
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	walk(t.Root, 0)
	fmt.Fprintf(&b, "total refresh cost: %g\n", t.TotalCost)
	return b.String()
}
