// Package obs is the observability layer of the TRAPP engine: always-on
// lock-free histograms for phase latency and paper-specific telemetry
// (achieved width vs requested bound, cost per unit precision), opt-in
// per-request span traces with exact refresh-cost attribution, and a
// minimal Prometheus text-format writer/validator for the service layer.
//
// Everything on the hot path is allocation-free: a histogram observation
// is one bucket computation plus three atomic adds, and the trace hooks
// compile to a nil check when tracing is off. DESIGN.md §12 documents
// the bucket scheme, the span model, and the overhead budget.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram buckets are log-linear (HDR-style): values below 2^subBits
// get exact unit buckets; above, each power-of-two octave is split into
// 2^subBits equal sub-buckets, so the relative bucket width — and thus
// the worst-case quantile error — is at most 1/2^subBits = 12.5%. The
// scheme covers the full uint64 range in numBuckets fixed slots, so a
// Histogram is a flat array of atomic counters: no allocation, no locks,
// no resizing, ever.
const (
	subBits    = 3
	sub        = 1 << subBits
	numBuckets = sub + (64-subBits)*sub
)

// bucketIndex maps a value to its bucket. Values below sub index
// directly; otherwise the top subBits+1 significant bits select the
// octave and sub-bucket.
func bucketIndex(v uint64) int {
	if v < sub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - subBits
	return int(uint64(sub) + uint64(exp)<<subBits + (v>>uint(exp))&(sub-1))
}

// bucketBounds returns bucket i's value range [lo, hi).
func bucketBounds(i int) (lo, hi uint64) {
	if i < sub {
		return uint64(i), uint64(i) + 1
	}
	exp := uint(i-sub) >> subBits
	mant := uint64(i-sub) & (sub - 1)
	lo = (sub + mant) << exp
	return lo, lo + 1<<exp
}

// Histogram is a lock-free log-linear histogram of nonnegative integer
// observations (latencies in nanoseconds, batch sizes, scaled ratios).
// The zero value is ready to use; all methods are safe for concurrent
// use. Recording is wait-free: three atomic adds, no allocation.
//
// Snapshots taken while writers are recording are per-cell monotone but
// not a single consistent cut: the total count, sum, and bucket counts
// may each include a different prefix of concurrent observations. After
// writers quiesce, Count equals the sum of the bucket counts exactly.
type Histogram struct {
	count  atomic.Uint64
	sum    atomic.Uint64
	counts [numBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.counts[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds; negative durations
// (a clock step) clamp to zero.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// Bucket is one non-empty histogram bucket: Count observations fell in
// [Lo, Hi).
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, carrying
// only its non-empty buckets.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
	}
	// Count and sum are read after the buckets so that a quiescent
	// snapshot satisfies Count == Σ bucket counts exactly; under
	// concurrent writers each cell is individually monotone.
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// Mean returns the mean observed value, or 0 for an empty snapshot.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (q in [0, 1]) by linear
// interpolation inside the owning bucket; the estimate is within the
// bucket's relative width (≤ 12.5%) of the true order statistic.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		if cum+b.Count >= rank {
			frac := float64(rank-cum) / float64(b.Count)
			return b.Lo + uint64(frac*float64(b.Hi-b.Lo))
		}
		cum += b.Count
	}
	last := s.Buckets[len(s.Buckets)-1]
	return last.Hi - 1
}

// Sub returns the difference snapshot s − prev (per-bucket, count, and
// sum), for windowed measurements over an accumulating histogram. Both
// snapshots must come from the same histogram with s taken later;
// counters that appear to have gone backwards clamp to zero.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	prevAt := make(map[uint64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevAt[b.Lo] = b.Count
	}
	out := HistogramSnapshot{}
	if s.Count > prev.Count {
		out.Count = s.Count - prev.Count
	}
	if s.Sum > prev.Sum {
		out.Sum = s.Sum - prev.Sum
	}
	for _, b := range s.Buckets {
		if n := prevAt[b.Lo]; b.Count > n {
			out.Buckets = append(out.Buckets, Bucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count - n})
		}
	}
	return out
}
