package obs

import "sync/atomic"

// SampleRate is the latency-sampling period for the request fast path:
// the engine takes clock reads (and records the request/scan latency
// and width-ratio telemetry) for one in every SampleRate cache-answered
// requests. Cache-answered requests run in about a microsecond, so
// timing each one costs two clock reads against almost no work — more
// than the whole observability budget. Uniform 1-in-N sampling leaves
// every recorded distribution unbiased while shrinking the per-request
// cost to a single atomic add. Requests that pay refreshes, and traced
// requests, are always timed in full: they run for microseconds to
// milliseconds, where clock reads are noise, and they are the ones
// worth explaining. Must be a power of two.
const SampleRate = 8

// EngineMetrics is the always-on histogram set shared by the query
// processor, the caches, and the continuous engine. One instance is
// allocated per processor and injected everywhere at wiring time; all
// fields are lock-free histograms, so recording from any number of
// goroutines is wait-free.
//
// Units are chosen so every histogram stores nonnegative integers:
// latencies in nanoseconds, the width ratio in permille
// (1000 × achieved width / requested bound; 1000 means the answer
// exactly met the bound, smaller is tighter), and cost-per-width in
// milli-cost-units per unit of interval-width reduction
// (1000 × refresh cost / (initial width − final width)).
type EngineMetrics struct {
	// Request path, end to end and per phase.
	Request Histogram // whole ExecuteConfig call, ns
	Scan    Histogram // step 1: scan + classify against cached bounds, ns
	Choose  Histogram // CHOOSE_REFRESH planning, ns
	Refresh Histogram // per-source refresh fan-out, ns
	Fold    Histogram // step 3: recompute over refreshed bounds, ns

	// Refresh shape.
	RefreshBatch Histogram // keys per single-source refresh batch

	// Paper telemetry: what precision did we deliver, at what cost.
	WidthRatio   Histogram // permille achieved width / requested bound
	CostPerWidth Histogram // milli cost units per unit width reduction

	// Continuous engine.
	Repair   Histogram // scheduler repair pass latency, ns
	Maintain Histogram // per-view incremental maintenance, ns

	// Plan-cache outcome counters (see query.Processor's shape-keyed
	// plan cache): a lookup is a hit when a memoized scan-and-classify
	// result is still valid, a miss when the shape was never seen, and
	// an invalidation when a memoized entry was found but the relation
	// mutated since it was stamped. hits/(hits+misses+invalidations) is
	// the hit rate exported by the server.
	PlanHits          atomic.Int64
	PlanMisses        atomic.Int64
	PlanInvalidations atomic.Int64

	sampleCtr atomic.Uint64 // fast-path sampling clock, see Sample
}

// Sample reports whether the current fast-path request should be timed,
// true for one in every SampleRate calls. Nil-safe (false on nil).
func (m *EngineMetrics) Sample() bool {
	if m == nil {
		return false
	}
	return m.sampleCtr.Add(1)&(SampleRate-1) == 0
}

// MetricsSnapshot maps metric name → histogram snapshot; the key set is
// fixed (see EngineMetrics field docs) so exporters can iterate it.
type MetricsSnapshot map[string]HistogramSnapshot

// Snapshot copies every histogram.
func (m *EngineMetrics) Snapshot() MetricsSnapshot {
	if m == nil {
		return nil
	}
	return MetricsSnapshot{
		"request_ns":           m.Request.Snapshot(),
		"scan_ns":              m.Scan.Snapshot(),
		"choose_ns":            m.Choose.Snapshot(),
		"refresh_ns":           m.Refresh.Snapshot(),
		"fold_ns":              m.Fold.Snapshot(),
		"refresh_batch_keys":   m.RefreshBatch.Snapshot(),
		"width_ratio_permille": m.WidthRatio.Snapshot(),
		"cost_per_width_milli": m.CostPerWidth.Snapshot(),
		"repair_ns":            m.Repair.Snapshot(),
		"maintain_ns":          m.Maintain.Snapshot(),
	}
}

// CounterSnapshot maps counter name → value; like MetricsSnapshot the
// key set is fixed so exporters can iterate it.
type CounterSnapshot map[string]int64

// Counters copies every monotonic counter.
func (m *EngineMetrics) Counters() CounterSnapshot {
	if m == nil {
		return nil
	}
	return CounterSnapshot{
		"plan_cache_hits":          m.PlanHits.Load(),
		"plan_cache_misses":        m.PlanMisses.Load(),
		"plan_cache_invalidations": m.PlanInvalidations.Load(),
	}
}
