package server

// Race-clean stress test for the service layer: concurrent HTTP
// clients, SSE subscribers and source updaters against one server.
// Soundness follows the engine stress tests' envelope argument —
// updaters confine every master value of key k to [base_k−D, base_k+D],
// so every answer must intersect the aggregate's achievable envelope —
// while the service layer adds its own invariants: the in-flight
// admission cap is never exceeded (strict CAS gauge), rejected requests
// are reported as 429 over_capacity, and after Shutdown + engine Close
// no goroutine survives (HTTP handlers, SSE streams, subscription
// watchers, the continuous maintainer).

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	itrapp "trapp/internal/trapp"

	"context"
)

const (
	stressSources = 2
	stressPerSrc  = 10
	stressD       = 4 // updates stay within base ± D
)

// stressBase mirrors buildSystem's master values.
func stressBase(key int64) float64 { return 100 + float64(key) }

// stressKeys lists the object keys buildSystem creates.
func stressKeys() []int64 {
	var keys []int64
	for si := 0; si < stressSources; si++ {
		for oi := 0; oi < stressPerSrc; oi++ {
			keys = append(keys, int64(si*100+oi))
		}
	}
	return keys
}

// stressEnvelope is the achievable range of the aggregate while every
// key k holds some value in [base_k−D, base_k+D].
func stressEnvelope(agg aggregate.Func, keys []int64) interval.Interval {
	minB, maxB, sumB := math.Inf(1), math.Inf(-1), 0.0
	for _, k := range keys {
		b := stressBase(k)
		minB, maxB, sumB = math.Min(minB, b), math.Max(maxB, b), sumB+b
	}
	n := float64(len(keys))
	switch agg {
	case aggregate.Min:
		return interval.New(minB-stressD, minB+stressD)
	case aggregate.Max:
		return interval.New(maxB-stressD, maxB+stressD)
	case aggregate.Sum:
		return interval.New(sumB-n*stressD, sumB+n*stressD)
	case aggregate.Avg:
		return interval.New(sumB/n-stressD, sumB/n+stressD)
	default:
		return interval.Point(n)
	}
}

// trueSum reads the current exact SUM from the sources (quiescent only).
func trueSum(t *testing.T, sys *itrapp.System, keys []int64) float64 {
	t.Helper()
	var sum float64
	for _, k := range keys {
		src := sys.Source(fmt.Sprintf("s%d", k/100))
		v, ok := src.Values(k)
		if !ok {
			t.Fatalf("source lost object %d", k)
		}
		sum += v[0]
	}
	return sum
}

func TestServerStressRaceAndDrain(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	sys := buildSystem(t, stressSources, stressPerSrc)
	keys := stressKeys()
	const maxInFlight = 4
	srv := New(sys, Config{MaxInFlight: maxInFlight, MaxSubscribers: 8})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	aggNames := map[aggregate.Func]string{
		aggregate.Sum: "SUM", aggregate.Avg: "AVG", aggregate.Min: "MIN",
		aggregate.Max: "MAX", aggregate.Count: "COUNT",
	}
	aggs := []aggregate.Func{aggregate.Sum, aggregate.Avg, aggregate.Min, aggregate.Max, aggregate.Count}

	// Updaters: confined random walks with occasional clock ticks.
	var updaters sync.WaitGroup
	for u := 0; u < 2; u++ {
		updaters.Add(1)
		go func(seed int64) {
			defer updaters.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 800; i++ {
				key := keys[rng.Intn(len(keys))]
				src := sys.Source(fmt.Sprintf("s%d", key/100))
				v := stressBase(key) + (rng.Float64()*2-1)*stressD
				if err := src.SetValue(key, []float64{v}); err != nil {
					t.Errorf("SetValue(%d): %v", key, err)
					return
				}
				if i%50 == 49 {
					sys.Clock.Advance(1)
				}
			}
		}(int64(u) + 1)
	}

	// SSE subscribers: unconstrained change feeds, every delivered
	// answer envelope-checked, stream drained until the server says bye.
	var subscribers sync.WaitGroup
	for si := 0; si < 4; si++ {
		subscribers.Add(1)
		go func(agg aggregate.Func) {
			defer subscribers.Done()
			stmt := fmt.Sprintf("SELECT %s(value) FROM vals", aggNames[agg])
			resp, err := client.Get(ts.URL + "/subscribe?sql=" + url.QueryEscape(stmt))
			if err != nil {
				t.Errorf("subscribe: %v", err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("subscribe status %d", resp.StatusCode)
				return
			}
			r := NewSSEReader(resp.Body)
			env := stressEnvelope(agg, keys)
			for {
				ev, err := r.Next()
				if err != nil {
					return // stream ended (drain)
				}
				if ev.Name != "update" {
					continue
				}
				var u WireUpdate
				if err := json.Unmarshal(ev.Data, &u); err != nil {
					t.Errorf("bad update payload: %v", err)
					return
				}
				if u.Answer.Interval().Intersect(env).IsEmpty() {
					t.Errorf("%s subscription answer %v misses envelope %v", aggNames[agg], u.Answer, env)
					return
				}
			}
		}(aggs[si%len(aggs)])
	}

	// HTTP clients: closed loops of mixed wire queries; 429s are
	// retried (and counted), every answer envelope-checked.
	var rejected atomic.Int64
	var clients sync.WaitGroup
	for cl := 0; cl < 8; cl++ {
		clients.Add(1)
		go func(seed int64) {
			defer clients.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				agg := aggs[rng.Intn(len(aggs))]
				req := QueryRequest{SQL: fmt.Sprintf("SELECT %s(value) FROM vals", aggNames[agg])}
				within := math.Inf(1)
				switch rng.Intn(4) {
				case 0:
					req.Mode = "imprecise"
				case 1:
					req.Mode = "precise"
				case 2:
					within = []float64{5, 20, 80}[rng.Intn(3)]
					req.SQL = fmt.Sprintf("SELECT %s(value) WITHIN %g FROM vals", aggNames[agg], within)
				default:
					within = 20
					b := Float(5 + rng.Float64()*40)
					req.SQL = fmt.Sprintf("SELECT %s(value) WITHIN %g FROM vals", aggNames[agg], within)
					req.Budget = &b
				}
				status, qr := postQuery(t, ts.URL, req)
				if status == http.StatusTooManyRequests {
					rejected.Add(1)
					i--
					time.Sleep(time.Millisecond)
					continue
				}
				if status != 200 && status != 206 {
					t.Errorf("status %d: %+v", status, qr.Error)
					return
				}
				if len(qr.Results) != 1 {
					t.Errorf("%d results", len(qr.Results))
					return
				}
				res := qr.Results[0]
				if e := res.Error; e != nil && e.Code != CodeBudgetExhausted {
					t.Errorf("unexpected outcome %+v", e)
					return
				}
				ans := res.Answer.Interval()
				if ans.IsEmpty() {
					t.Errorf("empty answer for %s", req.SQL)
					return
				}
				env := stressEnvelope(agg, keys)
				if ans.Intersect(env).IsEmpty() {
					t.Errorf("answer %v misses achievable envelope %v (%s)", ans, env, req.SQL)
					return
				}
				if res.Met && !math.IsInf(within, 1) && ans.Width() > within+1e-6 {
					t.Errorf("Met but width %g > R=%g", ans.Width(), within)
					return
				}
			}
		}(int64(cl) + 100)
	}

	clients.Wait()
	updaters.Wait()

	// The strict admission gauge must never have exceeded the cap, and
	// any 429 a client saw must be accounted.
	m := srv.SnapshotMetrics()
	if m.InFlightPeak > maxInFlight {
		t.Errorf("in-flight peak %d exceeded cap %d", m.InFlightPeak, maxInFlight)
	}
	if r := rejected.Load(); r > 0 && m.Rejected < r {
		t.Errorf("clients saw %d rejections, server recorded %d", r, m.Rejected)
	}

	// Quiescent soundness: with updaters stopped, a precise query over
	// the wire returns the exact SUM of the sources' master values.
	status, qr := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) FROM vals", Mode: "precise"})
	if status != 200 || len(qr.Results) != 1 {
		t.Fatalf("precise status %d (%+v)", status, qr.Error)
	}
	got := qr.Results[0].Answer.Interval()
	want := trueSum(t, sys, keys)
	if got.Width() > 1e-9 || math.Abs(got.Lo-want) > 1e-6 {
		t.Errorf("quiescent precise SUM %v, want exactly %g", got, want)
	}

	// Drain: streams close, handlers finish, the engine shuts down, and
	// no goroutine survives.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	subscribers.Wait()
	ts.Close()
	client.CloseIdleConnections()
	sys.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after drain: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
