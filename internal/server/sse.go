package server

import (
	"bufio"
	"io"
	"strings"
)

// SSEEvent is one parsed server-sent event.
type SSEEvent struct {
	// Name is the event: field ("subscribed", "update", "bye").
	Name string
	// Data is the event's data payload (JSON for this server).
	Data []byte
}

// SSEReader incrementally parses a server-sent-events stream — the
// client half of GET /subscribe, used by the parity tests and example
// clients.
type SSEReader struct {
	br *bufio.Reader
}

// NewSSEReader wraps a response body.
func NewSSEReader(r io.Reader) *SSEReader {
	return &SSEReader{br: bufio.NewReader(r)}
}

// Next blocks for the next event. It returns io.EOF when the stream
// ends cleanly.
func (r *SSEReader) Next() (SSEEvent, error) {
	var ev SSEEvent
	var data strings.Builder
	for {
		line, err := r.br.ReadString('\n')
		if err != nil {
			return SSEEvent{}, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if ev.Name != "" || data.Len() > 0 {
				ev.Data = []byte(data.String())
				return ev, nil
			}
		case strings.HasPrefix(line, "event:"):
			ev.Name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		}
		// Comments and unknown fields are ignored per the SSE spec.
	}
}
