package server

// White-box unit tests for the service layer: wire round trips, error
// mapping, multi-statement batches, admission control, SSE streaming,
// metrics, and graceful drain. The heavier lockstep parity and stress
// suites live in parity_test.go and stress_test.go.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trapp/internal/boundfn"
	"trapp/internal/interval"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	itrapp "trapp/internal/trapp"
)

// buildSystem wires nsrc sources × perSrc objects into one cache
// mounted as "vals" (bounded column "value", exact column "grp").
// Object key k has master value 100+k and bound width 10.
func buildSystem(t testing.TB, nsrc, perSrc int) *itrapp.System {
	t.Helper()
	sys := itrapp.NewSystem(refresh.Options{})
	schema := relation.NewSchema(
		relation.Column{Name: "grp", Kind: relation.Exact},
		relation.Column{Name: "value", Kind: relation.Bounded},
	)
	c, err := sys.AddCache("monitor", schema)
	if err != nil {
		t.Fatal(err)
	}
	for si := 0; si < nsrc; si++ {
		src, err := sys.AddSource(fmt.Sprintf("s%d", si), nil)
		if err != nil {
			t.Fatal(err)
		}
		for oi := 0; oi < perSrc; oi++ {
			key := int64(si*100 + oi)
			if err := src.AddObject(key, []float64{100 + float64(key)}, float64(1+oi%4), boundfn.StaticWidth(10)); err != nil {
				t.Fatal(err)
			}
			if err := c.Subscribe(src, key, []float64{float64(si)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sys.Mount("vals", c); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

// floatPtr builds a wire-float literal pointer.
func floatPtr(v float64) *Float { f := Float(v); return &f }

// postQuery issues one /query request and decodes the response.
func postQuery(t testing.TB, url string, req QueryRequest) (int, QueryResponse) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, qr
}

func TestQueryRoundTrip(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, qr := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) FROM vals"})
	if status != 200 || qr.Error != nil {
		t.Fatalf("status %d, err %+v", status, qr.Error)
	}
	if len(qr.Results) != 1 {
		t.Fatalf("got %d results", len(qr.Results))
	}
	res := qr.Results[0].Result()
	// Just after subscription the bounds are fresh: 8 objects of master
	// 100+key, bound width 10 each.
	var exact float64
	for _, k := range []int64{0, 1, 2, 3, 100, 101, 102, 103} {
		exact += 100 + float64(k)
	}
	if !res.Answer.Contains(exact) {
		t.Errorf("answer %v does not contain exact %g", res.Answer, exact)
	}
	if !res.Met {
		t.Error("unconstrained query not met")
	}
}

func TestMultiStatementBatch(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, qr := postQuery(t, ts.URL, QueryRequest{
		SQL: "SELECT MIN(value) FROM vals; SELECT MAX(value), AVG(value) WITHIN 50 FROM vals",
	})
	if status != 200 || qr.Error != nil {
		t.Fatalf("status %d, err %+v", status, qr.Error)
	}
	if len(qr.Results) != 3 {
		t.Fatalf("got %d results, want 3 (1 + 2 select items)", len(qr.Results))
	}
	for i, r := range qr.Results {
		if r.Error != nil {
			t.Errorf("result %d: unexpected error %+v", i, r.Error)
		}
	}
}

func TestErrorMapping(t *testing.T) {
	sys := buildSystem(t, 1, 2)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name   string
		req    QueryRequest
		status int
		code   string
	}{
		{"parse error", QueryRequest{SQL: "SELECT FROG(value) FROM vals"}, 400, CodeParse},
		{"unknown table", QueryRequest{SQL: "SELECT SUM(value) FROM nope"}, 400, CodeParse},
		{"empty", QueryRequest{SQL: "  ;  "}, 400, CodeInvalid},
		{"bad mode", QueryRequest{SQL: "SELECT SUM(value) FROM vals", Mode: "psychic"}, 400, CodeInvalid},
		{"negative budget", QueryRequest{SQL: "SELECT SUM(value) FROM vals", Budget: floatPtr(-1000)}, 400, CodeInvalid},
		{"bad solver", QueryRequest{SQL: "SELECT SUM(value) FROM vals", Solver: "oracle"}, 400, CodeInvalid},
		{"group by", QueryRequest{SQL: "SELECT SUM(value) FROM vals GROUP BY grp"}, 400, CodeUnsupported},
	}
	for _, tc := range cases {
		status, qr := postQuery(t, ts.URL, tc.req)
		if status != tc.status || qr.Error == nil || qr.Error.Code != tc.code {
			t.Errorf("%s: status %d error %+v, want %d %s", tc.name, status, qr.Error, tc.status, tc.code)
		}
	}

	// Parse errors in later statements carry positions offset into the
	// full request text.
	status, qr := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) FROM vals; SELECT ?"})
	if status != 400 || qr.Error == nil || qr.Error.Pos == nil {
		t.Fatalf("status %d error %+v", status, qr.Error)
	}
	if want := strings.Index("SELECT SUM(value) FROM vals; SELECT ?", "?"); *qr.Error.Pos != want {
		t.Errorf("pos %d, want %d", *qr.Error.Pos, want)
	}
}

func TestBudgetExhaustedOverTheWire(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	// Let bounds grow so a tight constraint needs refreshes.
	sys.Clock.Advance(10)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	budget := Float(1)
	status, qr := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) WITHIN 0.001 FROM vals", Budget: &budget})
	if status != 206 {
		t.Fatalf("status %d, want 206", status)
	}
	if len(qr.Results) != 1 || qr.Results[0].Error == nil || qr.Results[0].Error.Code != CodeBudgetExhausted {
		t.Fatalf("results %+v", qr.Results)
	}
	we := qr.Results[0].Error
	if we.Budget == nil || float64(*we.Budget) != 1 || we.Spent == nil || float64(*we.Spent) > 1 {
		t.Errorf("budget fields %+v", we)
	}
	if we.Achieved == nil || we.Achieved.Interval().IsEmpty() {
		t.Errorf("no achieved interval: %+v", we)
	}
}

func TestExpiredDeadlineOverTheWire(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	sys.Clock.Advance(10)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A negative relative deadline arrives already expired: the engine
	// returns its best-effort interval plus a typed precision_unmet.
	status, qr := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) WITHIN 0.001 FROM vals", DeadlineMillis: -1})
	if status != 206 && status != 504 {
		t.Fatalf("status %d", status)
	}
	if status == 206 {
		we := qr.Results[0].Error
		if we == nil || we.Code != CodePrecisionUnmet || we.Cause != CodeDeadline {
			t.Fatalf("per-query error %+v", we)
		}
	}
}

func TestFloatWireEncoding(t *testing.T) {
	for _, v := range []float64{0, 1.5, -3.25, 1e300, math.Inf(1), math.Inf(-1), 0.1} {
		buf, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatal(err)
		}
		var back Float
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatal(err)
		}
		if float64(back) != v {
			t.Errorf("%g round-tripped to %g via %s", v, float64(back), buf)
		}
	}
	// NaN round-trips to NaN.
	buf, _ := json.Marshal(Float(math.NaN()))
	var back Float
	if err := json.Unmarshal(buf, &back); err != nil || !math.IsNaN(float64(back)) {
		t.Errorf("NaN via %s: %v %g", buf, err, float64(back))
	}
	// Intervals round-trip bit-exactly including unbounded ones.
	iv := interval.New(math.Inf(-1), 0.30000000000000004)
	buf, _ = json.Marshal(ToWire(iv))
	var wi WireInterval
	if err := json.Unmarshal(buf, &wi); err != nil || !wi.Interval().Equal(iv) {
		t.Errorf("interval %v via %s → %v (%v)", iv, buf, wi.Interval(), err)
	}
}

func TestAdmissionControlInFlight(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	sys.Net.SetLatency(30 * time.Millisecond) // make refreshing queries slow
	sys.Clock.Advance(10)
	srv := New(sys, Config{MaxInFlight: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _ := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) WITHIN 0.001 FROM vals", Mode: "precise"})
			mu.Lock()
			codes[status]++
			mu.Unlock()
		}()
	}
	wg.Wait()
	if codes[429] == 0 {
		t.Errorf("no over_capacity rejections: %v", codes)
	}
	m := srv.SnapshotMetrics()
	if m.InFlightPeak > 1 {
		t.Errorf("in-flight peak %d exceeded cap 1", m.InFlightPeak)
	}
	if m.Rejected == 0 {
		t.Error("rejected counter is zero")
	}
}

func TestPerClientBudgetLedger(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	sys.Clock.Advance(50)
	srv := New(sys, Config{ClientBudget: 4})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(client string) (int, QueryResponse) {
		body, _ := json.Marshal(QueryRequest{SQL: "SELECT SUM(value) WITHIN 0.001 FROM vals", Mode: "precise"})
		req, _ := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
		req.Header.Set("X-Trapp-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, qr
	}

	// Drain client A's budget with precise queries; total spend across
	// requests must never exceed the ceiling.
	var total float64
	for i := 0; i < 5; i++ {
		status, qr := post("A")
		if status != 200 && status != 206 {
			t.Fatalf("status %d: %+v", status, qr.Error)
		}
		for _, r := range qr.Results {
			total += float64(r.RefreshCost)
		}
	}
	if total > 4+1e-9 {
		t.Errorf("client A spent %g > ceiling 4", total)
	}
	// A fresh client still has budget.
	_, qr := post("B")
	if qr.BudgetRemaining == nil {
		t.Fatal("no budget_remaining reported")
	}
}

func TestClientLedgerMapIsBounded(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	sys.Clock.Advance(50)
	srv := New(sys, Config{ClientBudget: 100, MaxClients: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	remaining := func(client string) float64 {
		body, _ := json.Marshal(QueryRequest{SQL: "SELECT SUM(value) WITHIN 0.001 FROM vals", Mode: "precise"})
		req, _ := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
		req.Header.Set("X-Trapp-Client", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		if qr.BudgetRemaining == nil {
			t.Fatal("no budget_remaining")
		}
		return float64(*qr.BudgetRemaining)
	}

	// Client A takes the one ledger slot and spends from it; B and C
	// arrive past the cap and land in the hashed overflow array without
	// growing the map. Pick B and C so they collide on one overflow
	// slot — the collision must be detected and each must still meter
	// against its own budget, never observing the other's spend. The
	// clock advances between requests so each precise query finds
	// regrown bounds to pay for.
	keyB := "ovf-0"
	keyC := ""
	for i := 1; keyC == ""; i++ {
		k := fmt.Sprintf("ovf-%d", i)
		if fnv32a(k)%overflowShards == fnv32a(keyB)%overflowShards {
			keyC = k
		}
	}
	remaining("A")
	sys.Clock.Advance(50)
	afterB := remaining(keyB)
	sys.Clock.Advance(50)
	afterC := remaining(keyC)
	if afterB >= 100 {
		t.Errorf("client %s spent nothing (remaining %g) — precise query should cost", keyB, afterB)
	}
	// B and C run the same query against the same regrown bounds, so
	// with isolated budgets they end with equal remainders; a pooled
	// ledger would charge C on top of B's spend, leaving C strictly less.
	if afterC < afterB-1e-9 {
		t.Errorf("colliding overflow client %s saw %s's spend (remaining %g after B left %g): budgets pooled",
			keyC, keyB, afterC, afterB)
	}
	if n := srv.clientCount.Load(); n != 1 {
		t.Errorf("ledger map grew past MaxClients: %d entries", n)
	}
}

// TestOverflowLedgerCollisionIsolation pins the collision semantics at
// the ledger layer: past MaxClients, two keys hashing to the same
// overflow slot must get distinct ledgers (the second spills into the
// bounded LRU), one client's exhaustion must not touch the other's
// remaining budget, and re-requesting a key must find the same ledger.
func TestOverflowLedgerCollisionIsolation(t *testing.T) {
	s := &Server{cfg: Config{ClientBudget: 10, MaxClients: 1}}
	s.ledgerFor("pinned") // take the one real slot

	keyB := "ovf-0"
	keyC := ""
	for i := 1; keyC == ""; i++ {
		k := fmt.Sprintf("ovf-%d", i)
		if fnv32a(k)%overflowShards == fnv32a(keyB)%overflowShards {
			keyC = k
		}
	}
	lb, lc := s.ledgerFor(keyB), s.ledgerFor(keyC)
	if lb == lc {
		t.Fatalf("colliding overflow keys %q and %q share a ledger", keyB, keyC)
	}
	// Drain B entirely; C's ceiling must be untouched.
	if eff, _ := lb.reserve(10, nil); eff != 10 {
		t.Fatalf("B reserved %g, want the full ceiling 10", eff)
	}
	if rem := lc.remaining(10); rem != 10 {
		t.Fatalf("C's budget drained to %g by B's spend", rem)
	}
	// Ledger identity is stable across lookups.
	if s.ledgerFor(keyB) != lb || s.ledgerFor(keyC) != lc {
		t.Fatal("repeat lookups returned different ledgers")
	}
}

// TestOverflowSpillIsBounded proves an adversary minting colliding keys
// cannot grow the spill past its cap, and that eviction forgets spend
// without breaking in-flight metering.
func TestOverflowSpillIsBounded(t *testing.T) {
	var lru ledgerLRU
	first := lru.get("k-0")
	first.reserve(10, nil)
	for i := 1; i < overflowSpillCap+64; i++ {
		lru.get(fmt.Sprintf("k-%d", i))
	}
	if n := lru.len(); n != overflowSpillCap {
		t.Fatalf("spill holds %d ledgers, want cap %d", n, overflowSpillCap)
	}
	// k-0 was the LRU victim: a fresh ledger with forgotten spend, while
	// the evicted pointer stays safe to meter against.
	first.refund(10, 0)
	if again := lru.get("k-0"); again == first {
		t.Fatal("evicted key returned its old ledger")
	} else if rem := again.remaining(10); rem != 10 {
		t.Fatalf("re-admitted key inherited spend: remaining %g", rem)
	}
}

// BenchmarkOverflowLedger hammers ledgerFor+reserve/refund with distinct
// client keys past the MaxClients cap — the admission path every request
// from an unseen client takes on a saturated server. Before the overflow
// array, all of them serialized on a single ledger mutex.
func BenchmarkOverflowLedger(b *testing.B) {
	s := &Server{cfg: Config{ClientBudget: 1e18, MaxClients: 1}}
	s.ledgerFor("pinned") // take the one real slot
	b.SetParallelism(32)
	var ctr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		key := fmt.Sprintf("client-%d", ctr.Add(1))
		for pb.Next() {
			led := s.ledgerFor(key)
			_, reserved := led.reserve(1e18, nil)
			led.refund(reserved, 1)
		}
	})
}

func TestSubscribeSSE(t *testing.T) {
	sys := buildSystem(t, 1, 3)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/subscribe?sql=" + strings.ReplaceAll("SELECT SUM(value) WITHIN 100 FROM vals", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	r := NewSSEReader(resp.Body)
	ev, err := r.Next()
	if err != nil || ev.Name != "subscribed" {
		t.Fatalf("first event %q (%v)", ev.Name, err)
	}
	// The engine primes a first update; then a pushed value moves the
	// answer and a second update follows.
	ev, err = r.Next()
	if err != nil || ev.Name != "update" {
		t.Fatalf("second event %q (%v)", ev.Name, err)
	}
	var u0 WireUpdate
	if err := json.Unmarshal(ev.Data, &u0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Source("s0").SetValue(1, []float64{500}); err != nil {
		t.Fatal(err)
	}
	sys.Settle()
	ev, err = r.Next()
	if err != nil || ev.Name != "update" {
		t.Fatalf("post-push event %q (%v)", ev.Name, err)
	}
	var u1 WireUpdate
	if err := json.Unmarshal(ev.Data, &u1); err != nil {
		t.Fatal(err)
	}
	if u1.Seq <= u0.Seq {
		t.Errorf("seq did not advance: %d then %d", u0.Seq, u1.Seq)
	}
	if u1.Answer.Interval().Equal(u0.Answer.Interval()) {
		t.Errorf("answer did not move: %v", u1.Answer)
	}
}

func TestSubscribeGroupBy(t *testing.T) {
	sys := buildSystem(t, 2, 3)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/subscribe?sql=" + strings.ReplaceAll("SELECT AVG(value) FROM vals GROUP BY grp", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	r := NewSSEReader(resp.Body)
	if ev, err := r.Next(); err != nil || ev.Name != "subscribed" {
		t.Fatalf("first event %q (%v)", ev.Name, err)
	}
	ev, err := r.Next()
	if err != nil || ev.Name != "update" {
		t.Fatalf("second event %q (%v)", ev.Name, err)
	}
	var u WireUpdate
	if err := json.Unmarshal(ev.Data, &u); err != nil {
		t.Fatal(err)
	}
	if len(u.Groups) != 2 {
		t.Fatalf("got %d groups, want 2 (one per source id)", len(u.Groups))
	}
}

func TestGracefulDrain(t *testing.T) {
	sys := buildSystem(t, 1, 3)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Open a subscription, then drain: the stream must end promptly with
	// a bye event instead of hanging.
	resp, err := http.Get(ts.URL + "/subscribe?sql=SELECT%20SUM(value)%20FROM%20vals")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := NewSSEReader(resp.Body)
	if ev, err := r.Next(); err != nil || ev.Name != "subscribed" {
		t.Fatalf("first event %q (%v)", ev.Name, err)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- srv.Shutdown(ctx)
	}()

	sawBye := false
	for {
		ev, err := r.Next()
		if err != nil {
			if err != io.EOF {
				t.Logf("stream ended: %v", err)
			}
			break
		}
		if ev.Name == "bye" {
			sawBye = true
		}
	}
	if !sawBye {
		t.Error("no bye event before stream end")
	}
	if err := <-drained; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Post-drain requests are rejected with 503 draining.
	status, qr := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) FROM vals"})
	if status != 503 || qr.Error == nil || qr.Error.Code != CodeDraining {
		t.Errorf("post-drain status %d error %+v", status, qr.Error)
	}
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != 503 {
		t.Errorf("healthz status %d while draining", hr.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	sys.Clock.Advance(5)
	srv := New(sys, Config{Info: map[string]any{"links": 8}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) WITHIN 0.001 FROM vals", Mode: "precise"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Statements == 0 {
		t.Error("no statements counted")
	}
	if m.Network.QueryRefreshCost == 0 {
		t.Error("no refresh cost after a precise query")
	}
	if len(m.Network.PerSource) == 0 {
		t.Error("no per-source traffic breakdown")
	}
	for id, ss := range m.Network.PerSource {
		if ss.Messages["query-refresh"]+ss.Messages["registration"] == 0 {
			t.Errorf("source %s has no labeled traffic: %+v", id, ss)
		}
	}
	if m.Workload["links"] == nil {
		t.Error("workload info not echoed")
	}
}
