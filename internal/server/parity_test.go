package server

// Round-trip parity: every answer and typed error received over HTTP
// must be bit-identical to calling ExecuteCtx in process. Two systems
// are built identically; one serves HTTP (httptest), the other executes
// locally. The same statements run against both in lockstep — refreshes
// mutate both caches identically, so the systems stay bit-equal through
// the whole table — across MIN/MAX/SUM/AVG/COUNT × bounded / precise /
// imprecise × {plain, expired deadline, cost budget}, with drift applied
// between cases. A second test asserts SSE subscription updates match a
// local Subscribe update for update.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
	"time"

	"trapp/internal/query"
	"trapp/internal/sql"
	itrapp "trapp/internal/trapp"
)

// lockstep executes one wire request against the server and the
// equivalent ExecuteCtx against the mirror, and compares outcomes bit
// for bit.
func lockstep(t *testing.T, tsURL string, mirror *itrapp.System, name string, req QueryRequest, opts []query.ExecOption) {
	t.Helper()
	status, qr := postQuery(t, tsURL, req)

	qs, err := sql.ParseAll(req.SQL, mirror.Catalog())
	if err != nil {
		t.Fatalf("%s: mirror parse: %v", name, err)
	}
	res, execErr := mirror.ExecuteCtx(context.Background(), qs[0], opts...)
	want := ToWireResult(res, execErr)

	// Bare failures (an expired context before any scan) surface as
	// request-level errors over the wire.
	if execErr != nil && want.Error != nil &&
		want.Error.Code != CodePrecisionUnmet && want.Error.Code != CodeBudgetExhausted {
		if qr.Error == nil || qr.Error.Code != want.Error.Code {
			t.Fatalf("%s: remote error %+v, want code %s", name, qr.Error, want.Error.Code)
		}
		if status != HTTPStatus(want.Error.Code) {
			t.Fatalf("%s: status %d, want %d", name, status, HTTPStatus(want.Error.Code))
		}
		return
	}
	if qr.Error != nil {
		t.Fatalf("%s: remote failed %+v, mirror ok (%+v)", name, qr.Error, res)
	}
	if len(qr.Results) != 1 {
		t.Fatalf("%s: %d results", name, len(qr.Results))
	}
	got := qr.Results[0]
	got.ChooseTimeNS, want.ChooseTimeNS = 0, 0
	if got.Error != nil && want.Error != nil && got.Error.Code == want.Error.Code {
		got.Error.Message, want.Error.Message = "", ""
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: wire result\n  %+v\n!= in-process\n  %+v", name, got, want)
	}
	wantStatus := 200
	if want.Error != nil {
		wantStatus = HTTPStatus(want.Error.Code)
	}
	if status != wantStatus {
		t.Fatalf("%s: status %d, want %d", name, status, wantStatus)
	}
}

func TestRoundTripParity(t *testing.T) {
	served := buildSystem(t, 2, 6)
	mirror := buildSystem(t, 2, 6)
	srv := New(served, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// drift advances both systems identically so later cases run over
	// grown bounds and partially refreshed caches.
	step := 0
	drift := func() {
		step++
		for _, sys := range []*itrapp.System{served, mirror} {
			if err := sys.Source("s0").SetValue(int64(step%6), []float64{100 + float64(step*3%40)}); err != nil {
				t.Fatal(err)
			}
			sys.Clock.Advance(2)
		}
	}

	aggs := []string{"MIN", "MAX", "SUM", "AVG", "COUNT"}
	modes := []struct {
		name string
		mode string
		sql  string // WITHIN clause for bounded mode
	}{
		{"bounded", "", " WITHIN 4"},
		{"precise", "precise", ""},
		{"imprecise", "imprecise", ""},
	}
	options := []struct {
		name  string
		wire  func(*QueryRequest)
		local func() []query.ExecOption
	}{
		{"plain", func(*QueryRequest) {}, func() []query.ExecOption { return nil }},
		{"deadline-expired", func(r *QueryRequest) { r.DeadlineMillis = -1 },
			func() []query.ExecOption {
				return []query.ExecOption{query.WithDeadline(time.Now().Add(-time.Millisecond))}
			}},
		{"budget-2", func(r *QueryRequest) { b := Float(2); r.Budget = &b },
			func() []query.ExecOption { return []query.ExecOption{query.WithCostBudget(2)} }},
	}

	for _, agg := range aggs {
		for _, m := range modes {
			for _, opt := range options {
				name := fmt.Sprintf("%s/%s/%s", agg, m.name, opt.name)
				req := QueryRequest{
					SQL:  fmt.Sprintf("SELECT %s(value)%s FROM vals", agg, m.sql),
					Mode: m.mode,
				}
				opt.wire(&req)
				opts := opt.local()
				if m.mode != "" {
					mode, err := ParseMode(m.mode)
					if err != nil {
						t.Fatal(err)
					}
					opts = append(opts, query.WithMode(mode))
				}
				lockstep(t, ts.URL, mirror, name, req, opts)
				drift()
			}
		}
	}

	// Batch statements stay aligned too: a multi-statement request's
	// results match an in-process ExecuteBatch index for index.
	sqlText := "SELECT MIN(value) WITHIN 3 FROM vals; SELECT MAX(value), SUM(value) WITHIN 30 FROM vals"
	status, qr := postQuery(t, ts.URL, QueryRequest{SQL: sqlText})
	if status != 200 {
		t.Fatalf("batch status %d (%+v)", status, qr.Error)
	}
	var qs []query.Query
	for _, stmt := range []string{"SELECT MIN(value) WITHIN 3 FROM vals", "SELECT MAX(value), SUM(value) WITHIN 30 FROM vals"} {
		part, err := sql.ParseAll(stmt, mirror.Catalog())
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, part...)
	}
	results, perQuery, err := mirror.ExecuteBatchDetailed(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Results) != len(results) {
		t.Fatalf("batch: %d wire results, %d local", len(qr.Results), len(results))
	}
	for i := range results {
		got, want := qr.Results[i], ToWireResult(results[i], perQuery[i])
		got.ChooseTimeNS, want.ChooseTimeNS = 0, 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch %d: wire %+v != local %+v", i, got, want)
		}
	}
}

func TestSubscriptionParity(t *testing.T) {
	sys := buildSystem(t, 1, 4)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const stmt = "SELECT SUM(value) WITHIN 200 FROM vals"
	qs, err := sql.ParseAll(stmt, sys.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	local, err := sys.Subscribe(qs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	resp, err := ts.Client().Get(ts.URL + "/subscribe?sql=" + url.QueryEscape(stmt))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	r := NewSSEReader(resp.Body)
	if ev, err := r.Next(); err != nil || ev.Name != "subscribed" {
		t.Fatalf("first event %q (%v)", ev.Name, err)
	}

	// Both subscriptions share the maintained view, so step by step —
	// one answer-moving push, one Settle, one read on each side — their
	// update streams must match answer for answer.
	readRemote := func() WireUpdate {
		t.Helper()
		ev, err := r.Next()
		if err != nil || ev.Name != "update" {
			t.Fatalf("remote event %q (%v)", ev.Name, err)
		}
		var u WireUpdate
		if err := json.Unmarshal(ev.Data, &u); err != nil {
			t.Fatal(err)
		}
		return u
	}
	readLocal := func() (int64, WireUpdate) {
		t.Helper()
		select {
		case u, ok := <-local.Updates():
			if !ok {
				t.Fatal("local subscription closed")
			}
			wu := WireUpdate{Seq: u.Seq, At: u.At, Answer: ToWire(u.Answer), Met: u.Met}
			return u.Seq, wu
		case <-time.After(5 * time.Second):
			t.Fatal("no local update")
			return 0, WireUpdate{}
		}
	}

	// Drain the initial primed update on both sides.
	readRemote()
	readLocal()

	for round := 1; round <= 10; round++ {
		if err := sys.Source("s0").SetValue(int64(round%4), []float64{200 + float64(round*7)}); err != nil {
			t.Fatal(err)
		}
		sys.Settle()
		ru := readRemote()
		_, lu := readLocal()
		// Seq is per-subscription bookkeeping; the maintained state —
		// answer, met flag, computation tick — is the parity contract.
		if !ru.Answer.Interval().Equal(lu.Answer.Interval()) || ru.Met != lu.Met || ru.At != lu.At {
			t.Fatalf("round %d: remote update %+v != local %+v", round, ru, lu)
		}
	}
}
