package server

// Persistent framed-protocol server: the wire-gap half of DESIGN.md §13.
//
// The HTTP path pays, per query, header parsing, two JSON codec passes,
// and a string round-trip for every float. The framed path amortizes
// the connection (clients hold it open), replaces JSON with the
// fixed-layout binary codec in frame.go, and lets clients pipeline:
// a connection may have many requests in flight. Within one connection,
// requests are served sequentially in arrival order — pipelining's win
// is removing the per-request round-trip wait, not reordering — and the
// response stream is flushed only when the read buffer drains, so a
// deep pipeline costs one write syscall per batch of responses, not per
// response. Concurrency comes from connections, matching how the
// benchmark (and any real client pool) drives the server. Buffers are
// pooled per connection; a warmed-up connection serves queries without
// allocating on the framing layer at all.
//
// Admission control is shared with HTTP: the same requests/statements
// counters, the same MaxInFlight gauge, the same draining gate and
// handler tracking, and the same per-client budget ledgers (framed
// clients are keyed by remote host — there is no header to carry
// X-Trapp-Client). EXPLAIN ANALYZE and traces are HTTP-only; a framed
// request carrying one is answered with an unsupported error, not a
// dropped connection.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// FrameExtBase is the first payload type byte reserved for extension
// frames: a framed connection whose first payload byte is at or above it
// is dispatched to Config.FramedExt instead of the core request decoder.
// The partition wire protocol (internal/partition) lives here.
const FrameExtBase byte = 0x10

// FramedExtHandler extends the framed transport with additional frame
// types. ServeExtFrame receives the whole payload (payload[0] is the
// type byte) and either returns a complete response frame to queue on
// the connection's writer, or takes the connection over (takeOver=true:
// the handler owns conn until it returns — how streaming extensions like
// partition subscriptions run). A non-nil error closes the connection.
// The context is the server's base context, canceled on Shutdown.
type FramedExtHandler interface {
	ServeExtFrame(ctx context.Context, payload []byte, conn net.Conn, bw *bufio.Writer) (resp []byte, takeOver bool, err error)
}

// ListenAndServeFramed serves the framed protocol on addr until
// Shutdown. The accept loop runs on its own goroutine; the returned
// listener reports the bound address (for addr ":0").
func (s *Server) ListenAndServeFramed(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.framedListeners.Store(ln, struct{}{})
	go func() {
		defer s.framedListeners.Delete(ln)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed by Shutdown
			}
			go s.ServeFramed(conn)
		}
	}()
	return ln, nil
}

// ServeFramed serves one framed-protocol connection until the peer
// closes it, a framing violation makes the stream undelimitable, or the
// server shuts down. Exported so tests can drive it over a raw pipe.
func (s *Server) ServeFramed(conn net.Conn) {
	defer conn.Close()
	s.framedConns.Add(1)
	defer s.framedConns.Add(-1)

	// Tie the connection to Shutdown: baseCtx cancellation closes the
	// conn, which unblocks the read loop.
	stop := context.AfterFunc(s.baseCtx, func() { _ = conn.Close() })
	defer stop()

	client := framedClientKey(conn)
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	var readBuf, writeBuf []byte

	// writeResp encodes one response into the reused buffer and queues
	// it on the buffered writer, flushing only when asked (i.e. when no
	// more pipelined requests are already buffered).
	writeResp := func(id uint32, resp QueryResponse, flush bool) bool {
		out, err := AppendResponse(writeBuf[:0], id, resp)
		if err != nil {
			// Unencodable response — cannot happen for framed-path
			// responses (traces are rejected at request time), kept as
			// defense in depth.
			out, _ = AppendResponse(writeBuf[:0], id, QueryResponse{
				Error: &WireError{Code: CodeInternal, Message: err.Error()},
			})
		}
		writeBuf = out
		if _, werr := bw.Write(out); werr != nil {
			return false
		}
		if flush {
			return bw.Flush() == nil
		}
		return true
	}

	for {
		payload, err := ReadFrame(br, &readBuf)
		if err != nil {
			var fe *FrameError
			if errors.As(err, &fe) {
				// The stream can no longer be delimited; answer with a
				// final error frame (id 0 — the offending frame's id is
				// unknowable) and close.
				writeResp(0, QueryResponse{Error: &WireError{
					Code: CodeInvalid, Message: fe.Error(),
				}}, true)
			}
			return
		}
		// One histogram observation per frame, covering the whole
		// server-side lifecycle: request decode, execution, response
		// encode, and the flush when this frame drains the pipeline.
		// Timing only the execution (as runFramed once did) hid the codec
		// and write cost, so the client's percentiles — which fold in
		// queue wait at pipeline depth — had no server-side complement to
		// subtract against.
		t0 := time.Now()
		s.requests.Add(1)
		flush := br.Buffered() == 0
		if len(payload) > 0 && payload[0] >= FrameExtBase && s.cfg.FramedExt != nil {
			out, takeOver, eerr := s.cfg.FramedExt.ServeExtFrame(s.baseCtx, payload, conn, bw)
			if eerr != nil || takeOver {
				return
			}
			if len(out) > 0 {
				if _, werr := bw.Write(out); werr != nil {
					return
				}
				if flush && bw.Flush() != nil {
					return
				}
			}
			s.framedLatency.ObserveDuration(time.Since(t0))
			continue
		}
		id, req, ferr := DecodeRequest(payload)
		if ferr != nil {
			ok := writeResp(id, QueryResponse{Error: &WireError{
				Code: CodeInvalid, Message: ferr.Error(),
			}}, true)
			s.framedLatency.ObserveDuration(time.Since(t0))
			if !ok {
				return
			}
			if payload[0] != FrameRequest {
				// Not a request frame: the peer has lost protocol state;
				// close rather than guess.
				return
			}
			continue
		}
		resp, _ := s.runFramed(client, req)
		ok := writeResp(id, resp, flush)
		s.framedLatency.ObserveDuration(time.Since(t0))
		if !ok {
			return
		}
	}
}

// runFramed executes one framed request through the shared
// transport-agnostic pipeline: same admission gates, same parse cache,
// same budget ledgers, same error accounting as POST /query.
func (s *Server) runFramed(client string, req QueryRequest) (QueryResponse, float64) {
	if s.draining.Load() {
		s.counter(CodeDraining).Add(1)
		return QueryResponse{Error: &WireError{Code: CodeDraining, Message: "server draining"}}, 0
	}
	if req.Trace {
		s.counter(CodeUnsupported).Add(1)
		return QueryResponse{Error: &WireError{Code: CodeUnsupported,
			Message: "traces are not supported over the framed protocol"}}, 0
	}
	if !s.admit(&s.inflight, s.cfg.MaxInFlight) {
		s.rejected.Add(1)
		s.counter(CodeOverCapacity).Add(1)
		return QueryResponse{Error: &WireError{Code: CodeOverCapacity,
			Message: fmt.Sprintf("over capacity: %d requests in flight (max %d)",
				s.inflight.Load(), s.cfg.MaxInFlight)}}, 0
	}
	defer s.inflight.Add(-1)
	if !s.track() {
		s.counter(CodeDraining).Add(1)
		return QueryResponse{Error: &WireError{Code: CodeDraining, Message: "server draining"}}, 0
	}
	defer s.handlers.Done()

	qs, explain, we := s.parseRequest(req.SQL, false, false)
	if we != nil {
		s.counter(we.Code).Add(1)
		return QueryResponse{Error: we}, 0
	}
	opts, we := buildOptions(req)
	if we != nil {
		s.counter(we.Code).Add(1)
		return QueryResponse{Error: we}, 0
	}
	resp, _, spent := s.run(s.baseCtx, client, req, qs, explain, opts)
	return resp, spent
}

// framedClientKey keys budget ledgers for a framed connection by remote
// host (the framed protocol has no client header).
func framedClientKey(conn net.Conn) string {
	addr := conn.RemoteAddr()
	if addr == nil {
		return "framed"
	}
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	return host
}
