package server

// Observability tests: EXPLAIN ANALYZE wire/in-process parity with
// bit-exact cost attribution, the trace request flag, /metrics.prom
// text-format validity, /healthz build info, request IDs and the
// slow-query log, gated pprof, and a race/leak hammer over concurrent
// traced clients and metrics scrapers.

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"trapp/internal/obs"
	"trapp/internal/query"
	"trapp/internal/sql"
)

// normalizeSpan strips wall-clock noise from a span tree so two traces
// of the same execution on identical systems compare equal: times zero
// out and siblings re-sort by name (the refresh fan-out's source spans
// start in nondeterministic order).
func normalizeSpan(s *obs.SpanSnapshot) {
	s.StartNS, s.DurationNS = 0, 0
	for i := range s.Children {
		normalizeSpan(&s.Children[i])
	}
	sort.Slice(s.Children, func(a, b int) bool { return s.Children[a].Name < s.Children[b].Name })
}

func TestExplainAnalyzeWireParity(t *testing.T) {
	// Two identical static systems: one served over HTTP, one embedded.
	// Bounds widen over ticks, so the WITHIN 20 constraint pays refreshes.
	sys := buildSystem(t, 2, 4)
	mirror := buildSystem(t, 2, 4)
	sys.Clock.Advance(10)
	mirror.Clock.Advance(10)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const stmt = "SELECT SUM(value) WITHIN 20 FROM vals"
	status, qr := postQuery(t, ts.URL, QueryRequest{SQL: "EXPLAIN ANALYZE " + stmt})
	if status != 200 || qr.Error != nil {
		t.Fatalf("status %d, err %+v", status, qr.Error)
	}
	if len(qr.Results) != 1 {
		t.Fatalf("%d results", len(qr.Results))
	}
	wire := qr.Results[0]
	if wire.Trace == nil {
		t.Fatal("EXPLAIN ANALYZE result carries no trace")
	}
	if wire.Refreshed == 0 {
		t.Fatal("workload did not pay refreshes; parity would be vacuous")
	}

	// Cost attribution is exact over the wire: the trace's replayed total
	// equals the reported refresh cost bit-for-bit, surviving the JSON
	// round trip.
	if wire.Trace.TotalCost != float64(wire.RefreshCost) {
		t.Errorf("wire trace TotalCost %v != RefreshCost %v",
			wire.Trace.TotalCost, float64(wire.RefreshCost))
	}

	// The same statement traced in process on the mirror.
	qs, err := sql.ParseAll(stmt, mirror.Catalog())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mirror.ExecuteCtx(context.Background(), qs[0], query.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("WithTrace produced no trace")
	}
	if got := res.Trace.TotalCost(); got != res.RefreshCost {
		t.Errorf("in-process TotalCost %v != RefreshCost %v", got, res.RefreshCost)
	}
	if res.RefreshCost != float64(wire.RefreshCost) {
		t.Fatalf("wire paid %v, in-process paid %v", float64(wire.RefreshCost), res.RefreshCost)
	}

	// Normalized span trees match: same phases, same per-source fan-out,
	// same installed keys, same per-span costs and details.
	local := res.Trace.Snapshot()
	w, l := *wire.Trace, local
	normalizeSpan(&w.Root)
	normalizeSpan(&l.Root)
	if !reflect.DeepEqual(w, l) {
		wj, _ := json.MarshalIndent(w, "", " ")
		lj, _ := json.MarshalIndent(l, "", " ")
		t.Errorf("normalized traces differ:\nwire: %s\nlocal: %s", wj, lj)
	}
}

func TestTraceFlagTracesEveryStatement(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	sys.Clock.Advance(10)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status, qr := postQuery(t, ts.URL, QueryRequest{
		SQL:   "SELECT SUM(value) WITHIN 20 FROM vals; SELECT MIN(value) FROM vals",
		Trace: true,
	})
	if status != 200 || qr.Error != nil {
		t.Fatalf("status %d, err %+v", status, qr.Error)
	}
	if len(qr.Results) != 2 {
		t.Fatalf("%d results", len(qr.Results))
	}
	for i, r := range qr.Results {
		if r.Trace == nil {
			t.Errorf("result %d: no trace", i)
			continue
		}
		if r.Trace.TotalCost != float64(r.RefreshCost) {
			t.Errorf("result %d: TotalCost %v != RefreshCost %v",
				i, r.Trace.TotalCost, float64(r.RefreshCost))
		}
		if r.Trace.Root.DurationNS <= 0 {
			t.Errorf("result %d: root span has no duration", i)
		}
	}
	// Untraced requests stay clean.
	_, qr = postQuery(t, ts.URL, QueryRequest{SQL: "SELECT MIN(value) FROM vals"})
	if len(qr.Results) != 1 || qr.Results[0].Trace != nil {
		t.Errorf("untraced request got a trace: %+v", qr.Results)
	}
}

func TestExplainAnalyzeRejectedOnSubscribe(t *testing.T) {
	sys := buildSystem(t, 1, 2)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/subscribe?sql=EXPLAIN%20ANALYZE%20SELECT%20SUM(value)%20FROM%20vals")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("status %d, want 400", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Error == nil || qr.Error.Code != CodeUnsupported {
		t.Errorf("error %+v, want %s", qr.Error, CodeUnsupported)
	}
}

func TestMetricsPromWellFormed(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	sys.Clock.Advance(10)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Generate traffic across phases, including one bad statement for the
	// errors family.
	for i := 0; i < 5; i++ {
		postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) WITHIN 20 FROM vals"})
	}
	postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) FROM nosuch"})

	resp, err := http.Get(ts.URL + "/metrics.prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateProm(strings.NewReader(string(body))); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		"trapp_requests_total", "trapp_query_latency_seconds_bucket",
		`trapp_phase_duration_seconds_bucket{le=`, `phase="scan"`,
		"trapp_width_ratio", "trapp_cost_per_width",
		`trapp_errors_total{code="parse_error"}`,
		`trapp_source_query_refreshes_total{source="s0"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestHealthzBuildInfoAndUptime(t *testing.T) {
	sys := buildSystem(t, 1, 2)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string         `json:"status"`
		UptimeS float64        `json:"uptime_s"`
		Build   map[string]any `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.UptimeS < 0 {
		t.Errorf("status %q uptime %g", h.Status, h.UptimeS)
	}
	if h.Build == nil {
		t.Fatal("no build info")
	}
	gv, _ := h.Build["go_version"].(string)
	if !strings.HasPrefix(gv, "go") {
		t.Errorf("go_version = %q", gv)
	}
	if mod, _ := h.Build["module"].(string); mod != "trapp" {
		t.Errorf("module = %q", mod)
	}
}

// syncWriter serializes the slow-query log for concurrent inspection.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

func TestRequestIDAndSlowQueryLog(t *testing.T) {
	sys := buildSystem(t, 1, 4)
	var logBuf syncWriter
	srv := New(sys, Config{
		SlowQuery: time.Nanosecond, // everything is slow
		Logger:    slog.New(slog.NewTextHandler(&logBuf, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(QueryRequest{SQL: "SELECT SUM(value) WITHIN 20 FROM vals"})
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	rid := resp.Header.Get("X-Trapp-Request-Id")
	if rid == "" {
		t.Fatal("no X-Trapp-Request-Id header")
	}

	// The slow-query log line lands after the response is written; poll.
	deadline := time.Now().Add(2 * time.Second)
	for {
		out := logBuf.String()
		if strings.Contains(out, "slow query") && strings.Contains(out, rid) {
			if !strings.Contains(out, "SELECT SUM(value)") {
				t.Errorf("slow-query log lacks the SQL: %q", out)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow-query log for %s never appeared: %q", rid, out)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Distinct requests get distinct IDs.
	resp2, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if rid2 := resp2.Header.Get("X-Trapp-Request-Id"); rid2 == "" || rid2 == rid {
		t.Errorf("second request id %q, first %q", rid2, rid)
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	sys := buildSystem(t, 1, 2)

	off := httptest.NewServer(New(sys, Config{}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("pprof served without EnablePprof")
	}

	on := httptest.NewServer(New(sys, Config{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index status %d with EnablePprof", resp.StatusCode)
	}
}

// TestObservabilityRaceAndLeak hammers the observability surface from
// concurrent clients — traced queries, metric scrapes, prom scrapes —
// and asserts counters stay monotone, histograms stay well-formed, and
// no goroutine survives the drain. Run under -race this is the data-race
// proof for the lock-free recording paths.
func TestObservabilityRaceAndLeak(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	sys := buildSystem(t, 2, 6)
	srv := New(sys, Config{
		SlowQuery: time.Nanosecond,
		Logger:    slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	var wg, clientsWg sync.WaitGroup
	// Traced clients: every answer's trace must attribute costs exactly.
	for cl := 0; cl < 6; cl++ {
		clientsWg.Add(1)
		go func(seed int64) {
			defer clientsWg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				req := QueryRequest{SQL: "SELECT SUM(value) WITHIN 20 FROM vals"}
				switch rng.Intn(3) {
				case 0:
					req.Trace = true
				case 1:
					req.SQL = "EXPLAIN ANALYZE " + req.SQL
				}
				status, qr := postQuery(t, ts.URL, req)
				if status != 200 && status != 206 {
					t.Errorf("status %d: %+v", status, qr.Error)
					return
				}
				for _, r := range qr.Results {
					if r.Trace != nil && r.Trace.TotalCost != float64(r.RefreshCost) {
						t.Errorf("trace TotalCost %v != RefreshCost %v",
							r.Trace.TotalCost, float64(r.RefreshCost))
						return
					}
				}
			}
		}(int64(cl) + 1)
	}
	// Scrapers: counters must be monotone across successive snapshots and
	// every prom exposition must parse clean mid-hammer.
	stopScrape := make(chan struct{})
	for sc := 0; sc < 2; sc++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastRequests, lastStatements int64
			for {
				select {
				case <-stopScrape:
					return
				default:
				}
				resp, err := client.Get(ts.URL + "/metrics")
				if err != nil {
					t.Errorf("metrics: %v", err)
					return
				}
				var m Metrics
				if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
					t.Errorf("metrics decode: %v", err)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				if m.Requests < lastRequests || m.Statements < lastStatements {
					t.Errorf("counters went backwards: requests %d→%d statements %d→%d",
						lastRequests, m.Requests, lastStatements, m.Statements)
					return
				}
				lastRequests, lastStatements = m.Requests, m.Statements

				resp, err = client.Get(ts.URL + "/metrics.prom")
				if err != nil {
					t.Errorf("metrics.prom: %v", err)
					return
				}
				if err := obs.ValidateProm(resp.Body); err != nil {
					t.Errorf("mid-hammer exposition invalid: %v", err)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
			}
		}()
	}
	// Updaters keep the refresh path busy so histograms record under
	// concurrent writes.
	stopUpdate := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; ; i++ {
			select {
			case <-stopUpdate:
				return
			default:
			}
			key := int64(rng.Intn(6))
			src := sys.Source("s0")
			if err := src.SetValue(key, []float64{100 + float64(key) + rng.Float64()}); err != nil {
				t.Errorf("SetValue: %v", err)
				return
			}
			if i%64 == 63 {
				sys.Clock.Advance(1)
			}
		}
	}()

	// Wait for the clients, then stop the background load.
	clientsWg.Wait()
	close(stopScrape)
	close(stopUpdate)
	wg.Wait()

	// Quiescent histograms are exactly consistent: Count == Σ buckets.
	for name, h := range sys.Metrics().Snapshot() {
		var sum uint64
		for _, b := range h.Buckets {
			sum += b.Count
		}
		if sum != h.Count {
			t.Errorf("%s: bucket sum %d != count %d", name, sum, h.Count)
		}
	}
	if h := srv.SnapshotMetrics().QueryLatency; h.Count == 0 {
		t.Error("query latency histogram recorded nothing")
	}

	// Drain and prove no goroutine outlives the server.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Close()
	client.CloseIdleConnections()
	sys.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after drain: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
