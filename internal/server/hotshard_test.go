package server

// Soak race test for Zipfian hot-shard traffic through the full service
// stack: updaters sample keys from a sharp Zipf, so a handful of hot
// keys — and therefore the one or two store shards owning them — absorb
// most of the push load while query clients and SSE subscribers read the
// same shared table. Soundness is the envelope argument of the stress
// test (updates confined to base ± D, so every answer must intersect the
// achievable envelope), now under maximally skewed contention: the
// per-key dirty tracking in cache.Sync and the per-shard locking both
// get hammered on exactly one shard. After the clients stop, the server
// drains and no goroutine may survive.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"testing"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/workload"

	"context"
)

func TestHotShardZipfSoundness(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	// One shared table, enough keys that the default 8 shards all hold
	// tuples while the Zipf head concentrates on a few of them.
	const nsrc, perSrc = 4, 64
	sys := buildSystem(t, nsrc, perSrc)
	var keys []int64
	for si := 0; si < nsrc; si++ {
		for oi := 0; oi < perSrc; oi++ {
			keys = append(keys, int64(si*100+oi))
		}
	}
	srv := New(sys, Config{MaxSubscribers: 8})
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()

	aggNames := map[aggregate.Func]string{
		aggregate.Sum: "SUM", aggregate.Avg: "AVG", aggregate.Min: "MIN",
		aggregate.Max: "MAX", aggregate.Count: "COUNT",
	}
	aggs := []aggregate.Func{aggregate.Sum, aggregate.Avg, aggregate.Min, aggregate.Max, aggregate.Count}

	// Zipfian updaters: rank 0 is hottest; updates stay inside the
	// envelope. Clock ticks keep the bounds growing so queries must
	// refresh the hot keys, driving query-initiated collapses into the
	// same shard the pushes hammer.
	zu := workload.MustZipf(len(keys), 1.3)
	var updaters sync.WaitGroup
	for u := 0; u < 3; u++ {
		updaters.Add(1)
		go func(seed int64) {
			defer updaters.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 1200; i++ {
				key := keys[zu.Rank(rng)]
				src := sys.Source(fmt.Sprintf("s%d", key/100))
				v := stressBase(key) + (rng.Float64()*2-1)*stressD
				if err := src.SetValue(key, []float64{v}); err != nil {
					t.Errorf("SetValue(%d): %v", key, err)
					return
				}
				if i%60 == 59 {
					sys.Clock.Advance(1)
				}
			}
		}(int64(u) + 7)
	}

	// SSE subscribers over the same table, every delivered answer
	// envelope-checked until the drain closes the stream.
	var subscribers sync.WaitGroup
	for si := 0; si < 4; si++ {
		subscribers.Add(1)
		go func(agg aggregate.Func) {
			defer subscribers.Done()
			stmt := fmt.Sprintf("SELECT %s(value) FROM vals", aggNames[agg])
			resp, err := client.Get(ts.URL + "/subscribe?sql=" + url.QueryEscape(stmt))
			if err != nil {
				t.Errorf("subscribe: %v", err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("subscribe status %d", resp.StatusCode)
				return
			}
			r := NewSSEReader(resp.Body)
			env := stressEnvelope(agg, keys)
			for {
				ev, err := r.Next()
				if err != nil {
					return // stream ended (drain)
				}
				if ev.Name != "update" {
					continue
				}
				var u WireUpdate
				if err := json.Unmarshal(ev.Data, &u); err != nil {
					t.Errorf("bad update payload: %v", err)
					return
				}
				if u.Answer.Interval().Intersect(env).IsEmpty() {
					t.Errorf("%s subscription answer %v misses envelope %v", aggNames[agg], u.Answer, env)
					return
				}
			}
		}(aggs[si%len(aggs)])
	}

	// Query clients: mixed precision constraints; every answer must
	// intersect the achievable envelope. Distinct X-Trapp-Client keys
	// exercise the per-client ledger map alongside the query path.
	var clients sync.WaitGroup
	for cl := 0; cl < 6; cl++ {
		clients.Add(1)
		go func(id int, seed int64) {
			defer clients.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				agg := aggs[rng.Intn(len(aggs))]
				within := math.Inf(1)
				sql := fmt.Sprintf("SELECT %s(value) FROM vals", aggNames[agg])
				if rng.Intn(2) == 0 {
					within = []float64{10, 40, 160}[rng.Intn(3)]
					sql = fmt.Sprintf("SELECT %s(value) WITHIN %g FROM vals", aggNames[agg], within)
				}
				body, _ := json.Marshal(QueryRequest{SQL: sql})
				req, _ := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Trapp-Client", fmt.Sprintf("hot-client-%d", id))
				resp, err := client.Do(req)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				var qr QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					t.Errorf("decode: %v", err)
					return
				}
				if resp.StatusCode != 200 && resp.StatusCode != 206 {
					t.Errorf("status %d: %+v", resp.StatusCode, qr.Error)
					return
				}
				if len(qr.Results) != 1 || qr.Results[0].Error != nil {
					t.Errorf("results %+v", qr.Results)
					return
				}
				ans := qr.Results[0].Answer.Interval()
				env := stressEnvelope(agg, keys)
				if ans.IsEmpty() || ans.Intersect(env).IsEmpty() {
					t.Errorf("answer %v misses achievable envelope %v (%s)", ans, env, sql)
					return
				}
				if qr.Results[0].Met && !math.IsInf(within, 1) && ans.Width() > within+1e-6 {
					t.Errorf("Met but width %g > R=%g", ans.Width(), within)
					return
				}
			}
		}(cl, int64(cl)+300)
	}

	clients.Wait()
	updaters.Wait()

	// Quiescent soundness after the skewed churn: a precise SUM over the
	// wire equals the sources' current exact values.
	status, qr := postQuery(t, ts.URL, QueryRequest{SQL: "SELECT SUM(value) FROM vals", Mode: "precise"})
	if status != 200 || len(qr.Results) != 1 {
		t.Fatalf("precise status %d (%+v)", status, qr.Error)
	}
	got := qr.Results[0].Answer.Interval()
	want := trueSum(t, sys, keys)
	if got.Width() > 1e-9 || math.Abs(got.Lo-want) > 1e-6 {
		t.Errorf("quiescent precise SUM %v, want exactly %g", got, want)
	}

	// Drain and verify zero leaked goroutines.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	subscribers.Wait()
	ts.Close()
	client.CloseIdleConnections()
	sys.Close()

	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak after drain: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseGoroutines, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
