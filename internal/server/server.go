package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/continuous"
	"trapp/internal/netsim"
	"trapp/internal/obs"
	"trapp/internal/query"
	"trapp/internal/source"
	"trapp/internal/sql"
	itrapp "trapp/internal/trapp"
)

// Subscription is the standing-query surface the service layer needs
// from whatever engine it fronts: the coalesced update stream and a
// teardown. *continuous.Subscription satisfies it; so does the
// partition coordinator's re-multiplexed cluster subscription.
type Subscription interface {
	Updates() <-chan continuous.Update
	Close()
}

// Engine is the query surface the service layer serves: an embedded
// System, or the partition coordinator scatter-gathering a cluster —
// the same HTTP and framed paths answer for both, which is what lets
// the cluster differential suite compare them wire-result for
// wire-result. Optional capabilities (network stats, engine histograms,
// width telemetry, plan-cache introspection, cluster health) are
// feature-detected by SnapshotMetrics, so a partial engine serves with
// a partial /metrics rather than not at all.
type Engine interface {
	Catalog() sql.Catalog
	ExecuteCtx(ctx context.Context, q query.Query, opts ...query.ExecOption) (query.Result, error)
	ExecuteBatchDetailed(ctx context.Context, qs []query.Query, opts ...query.ExecOption) ([]query.Result, []error, error)
	SubscribeCtx(ctx context.Context, q query.Query) (Subscription, error)
}

// systemEngine adapts the embedded System to Engine (only SubscribeCtx
// needs adapting, for the concrete-vs-interface return).
type systemEngine struct {
	*itrapp.System
}

func (e systemEngine) SubscribeCtx(ctx context.Context, q query.Query) (Subscription, error) {
	sub, err := e.System.SubscribeCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	return sub, nil
}

// Config tunes the service layer.
type Config struct {
	// MaxInFlight caps concurrently executing /query requests; one past
	// the cap is rejected with 429 over_capacity. 0 means unlimited.
	MaxInFlight int
	// MaxSubscribers caps concurrently open /subscribe streams the same
	// way. 0 means unlimited.
	MaxSubscribers int
	// ClientBudget, when positive, is each client's cumulative
	// refresh-cost ceiling: the refresh cost of a client's requests is
	// metered against it, and once spent, further requests execute with
	// a zero cost budget — they still answer from cache, but anything
	// needing paid refreshes returns budget_exhausted semantics over
	// the wire (the typed ErrBudgetExhausted, encoded). Clients are
	// keyed by the X-Trapp-Client header, falling back to the remote
	// host. The ceiling is enforced pessimistically: a request reserves
	// min(its requested budget, the client's remainder) up front and
	// refunds what it did not spend, so concurrent requests from one
	// client can never jointly overrun the ceiling — at the price that
	// simultaneous requests may see a temporarily drained ledger.
	ClientBudget float64
	// MaxClients caps the number of distinct client ledgers kept when
	// ClientBudget is active (the client key is untrusted input, so
	// the map must not grow without bound). Past the cap, unseen
	// clients draw from a fixed array of hashed overflow ledgers (one
	// key per slot; colliding keys spill into a bounded LRU so clients
	// never share a budget). 0 means DefaultMaxClients.
	MaxClients int
	// Info is an arbitrary workload descriptor published by /healthz and
	// /metrics (trappserver records links/sources/seed here so
	// trappbench -remote can rebuild the identical system for parity
	// verification).
	Info map[string]any
	// SlowQuery, when positive, is the slow-query log threshold: any
	// /query request taking at least this long is logged (request id,
	// SQL, duration, refresh cost) through Logger. 0 disables the log.
	SlowQuery time.Duration
	// Logger receives structured server logs (the slow-query log).
	// Nil falls back to slog.Default().
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — off by
	// default since profiling endpoints should not be public.
	EnablePprof bool
	// Topology, when set, is published by /healthz as the node's
	// partition topology: a trappserver reports its partition id and
	// key-range (canonical bucket) ownership plus its peer list, a
	// trappcoord reports the whole partition map.
	Topology func() map[string]any
	// FramedExt, when set, receives extension frames (payload type at
	// or above FrameExtBase) arriving on framed connections — the hook
	// the partition service mounts its scatter-gather operations on.
	FramedExt FramedExtHandler
}

// Server serves a System over HTTP. Create with New, mount Handler (or
// ListenAndServe), stop with Shutdown.
type Server struct {
	eng Engine
	cfg Config
	mux *http.ServeMux

	// baseCtx is canceled by Shutdown; every streaming handler derives
	// its context from both the request and baseCtx, so draining closes
	// subscriptions promptly.
	baseCtx context.Context
	drain   context.CancelFunc

	draining atomic.Bool
	// drainMu makes the draining check and handler registration atomic:
	// track() holds it while flipping handlers from zero, Shutdown holds
	// it while setting draining, so no handler can slip in after
	// handlers.Wait has started (the WaitGroup zero-Add/Wait race).
	drainMu  sync.Mutex
	handlers sync.WaitGroup // in-flight /query and /subscribe handlers

	start time.Time

	// Gauges and counters for /metrics and the admission-control tests.
	inflight      atomic.Int64
	inflightPeak  atomic.Int64
	subscribers   atomic.Int64
	requests      atomic.Int64
	statements    atomic.Int64
	rejected      atomic.Int64
	updatesSent   atomic.Int64
	errorsByCode  sync.Map // code string → *atomic.Int64
	clientLedgers sync.Map // client key → *ledger
	clientCount   atomic.Int64
	// queryLatency is the server-side /query handler latency histogram
	// (admission to response write), exported by /metrics and
	// /metrics.prom alongside the engine's phase histograms.
	queryLatency obs.Histogram
	// framedLatency is the framed-path twin: per-frame latency covering
	// the whole server-side lifecycle — request decode, execution,
	// response encode, and the flush when the frame drains its pipeline —
	// for both core requests and extension frames.
	framedLatency obs.Histogram
	// reqSeq numbers requests for X-Trapp-Request-Id.
	reqSeq atomic.Int64
	// parsed memoizes statement compilation (one cache per server, bound
	// to the system's catalog); at framed-wire rates the parse costs
	// more than a cache-answered execution.
	parsed *sql.ParseCache
	// framedConns gauges live framed-protocol connections; framed
	// listeners are tracked for Shutdown teardown.
	framedConns     atomic.Int64
	framedListeners sync.Map // net.Listener → struct{}
	// overflow holds the ledgers of clients past MaxClients, hashed by
	// client key. Each slot remembers the key that claimed it, so a hash
	// collision between two distinct overflow keys is detected instead of
	// silently pooling their budgets (which would let one client exhaust
	// another's ceiling); colliding keys spill into overflowSpill, a
	// bounded LRU of per-key ledgers. Memory stays bounded no matter how
	// many keys an adversary mints — the array is fixed and the spill
	// capped — while every honest client keeps a budget of its own.
	overflow [overflowShards]overflowSlot
	// overflowSpill holds the per-key fallback ledgers for overflow keys
	// whose slot is owned by a different key.
	overflowSpill ledgerLRU
}

// overflowShards is the size of the overflow-ledger array; a power of
// two, sized so that overflow contention is negligible next to the
// query work itself.
const overflowShards = 64

// overflowSlot is one entry of the hashed overflow array: a ledger plus
// the client key that first claimed it, the collision detector.
type overflowSlot struct {
	mu    sync.Mutex
	owner string
	led   ledger
}

// fnv32a is FNV-1a over the client key, used to pick an overflow slot.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// DefaultMaxClients bounds the per-client ledger map when Config leaves
// MaxClients zero.
const DefaultMaxClients = 10000

// ledger meters one client's cumulative refresh-cost spend. Budget is
// reserved before execution and the unspent remainder refunded after,
// so concurrent requests from one client can never jointly overrun the
// ceiling.
type ledger struct {
	mu    sync.Mutex
	spent float64
}

// overflowSpillCap bounds the collision-spill LRU: at most this many
// per-key ledgers are retained for overflow keys that lost the race for
// their hashed slot.
const overflowSpillCap = 1024

// ledgerLRU is a bounded most-recently-used cache of per-key ledgers.
// When full, admitting a new key evicts the least recently used entry;
// an evicted key that returns starts a fresh ledger. That forgiveness is
// the price of bounded memory over attacker-controlled keys — an
// adversary must keep minting and cycling distinct keys to reset spend,
// and gains nothing over minting fresh keys in the first place — while
// an honest client's ledger survives as long as it keeps requesting.
type ledgerLRU struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

// lruEntry is one spill ledger and the key owning it (needed to delete
// the map entry on eviction).
type lruEntry struct {
	key string
	led ledger
}

// get returns the key's ledger, creating (and possibly evicting) as
// needed. The returned pointer stays valid after eviction — an in-flight
// request keeps metering against it; only the map forgets it.
func (l *ledgerLRU) get(key string) *ledger {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.entries == nil {
		l.entries = make(map[string]*list.Element)
		l.order = list.New()
	}
	if el, ok := l.entries[key]; ok {
		l.order.MoveToFront(el)
		return &el.Value.(*lruEntry).led
	}
	if l.order.Len() >= overflowSpillCap {
		back := l.order.Back()
		l.order.Remove(back)
		delete(l.entries, back.Value.(*lruEntry).key)
	}
	e := &lruEntry{key: key}
	l.entries[key] = l.order.PushFront(e)
	return &e.led
}

// len reports the retained entry count (tests assert the bound).
func (l *ledgerLRU) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.order == nil {
		return 0
	}
	return l.order.Len()
}

// New wraps a System. The server does not own the system: Shutdown
// drains HTTP work but leaves the engine running (callers close it
// afterwards if they own it).
func New(sys *itrapp.System, cfg Config) *Server {
	return NewEngine(systemEngine{sys}, cfg)
}

// NewEngine wraps any Engine — the partition coordinator's entry point;
// see New for lifecycle semantics.
func NewEngine(eng Engine, cfg Config) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{eng: eng, cfg: cfg, baseCtx: ctx, drain: cancel, start: time.Now(),
		parsed: sql.NewParseCache()}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/subscribe", s.handleSubscribe)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics.prom", s.handleMetricsProm)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// logger returns the configured structured logger.
func (s *Server) logger() *slog.Logger {
	if s.cfg.Logger != nil {
		return s.cfg.Logger
	}
	return slog.Default()
}

// nextRequestID mints the X-Trapp-Request-Id value: the server start
// time (distinguishing restarts) plus a per-server sequence number.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%x-%d", uint64(s.start.UnixNano()), s.reqSeq.Add(1))
}

// Handler returns the root handler (also usable under httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the server: new requests are rejected with 503
// draining, streaming subscriptions are closed (their contexts cancel,
// so SubscribeCtx tears each one down without leaking its watcher
// goroutine), and Shutdown blocks until every in-flight handler has
// returned or ctx expires. The engine itself is left running. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	s.drain()
	// Framed listeners stop accepting; live framed connections observe
	// baseCtx and close via their per-connection AfterFunc.
	s.framedListeners.Range(func(k, _ any) bool {
		_ = k.(net.Listener).Close()
		return true
	})
	done := make(chan struct{})
	go func() { s.handlers.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ListenAndServe serves on addr until Shutdown; the returned *http.Server
// is already running when ListenAndServe returns. It exists for
// cmd/trappserver; tests mount Handler directly.
func (s *Server) ListenAndServe(addr string) (*http.Server, net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	// Slowloris hardening: a client trickling header bytes (or holding
	// idle keep-alive sockets) must not pin handler resources forever.
	// Request bodies are already capped by MaxBytesReader in the
	// handlers; no WriteTimeout since /subscribe streams indefinitely.
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Printf("trappserver: serve: %v\n", err)
		}
	}()
	return hs, ln, nil
}

// track registers an in-flight handler, returning false when the
// server is draining. Registration is atomic with the draining check
// (drainMu), so Shutdown's handlers.Wait always accounts every
// admitted handler.
func (s *Server) track() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.handlers.Add(1)
	return true
}

// admit takes one slot of a capped gauge (max 0 = unlimited),
// returning false when the gauge is full. On success the gauge has been
// incremented (the caller must decrement) and the corresponding peak is
// updated; the CAS loop guarantees the gauge never exceeds max.
func (s *Server) admit(gauge *atomic.Int64, max int) bool {
	for {
		cur := gauge.Load()
		if max > 0 && cur >= int64(max) {
			return false
		}
		if gauge.CompareAndSwap(cur, cur+1) {
			if gauge == &s.inflight {
				for peak := s.inflightPeak.Load(); cur+1 > peak; peak = s.inflightPeak.Load() {
					if s.inflightPeak.CompareAndSwap(peak, cur+1) {
						break
					}
				}
			}
			return true
		}
	}
}

// counter returns the per-code error counter, creating it on first use.
func (s *Server) counter(code string) *atomic.Int64 {
	v, ok := s.errorsByCode.Load(code)
	if !ok {
		v, _ = s.errorsByCode.LoadOrStore(code, &atomic.Int64{})
	}
	return v.(*atomic.Int64)
}

// fail writes a request-level error response.
func (s *Server) fail(w http.ResponseWriter, we *WireError) {
	s.counter(we.Code).Add(1)
	writeJSON(w, HTTPStatus(we.Code), QueryResponse{Error: we})
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// clientKey identifies the requesting client for admission control.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-Trapp-Client"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// ledgerFor returns the client's spend ledger, creating it on first
// use. The map is bounded: once MaxClients distinct keys exist, unseen
// clients take a hashed overflow slot instead of allocating (the key is
// client-controlled, so an adversary must not be able to grow the map
// without bound). Each overflow slot belongs to the first key that
// claims it; a different key hashing to an owned slot gets its own
// ledger from the bounded spill LRU rather than sharing the slot's
// budget — a collision must never let one client drain another's
// ceiling.
func (s *Server) ledgerFor(key string) *ledger {
	if v, ok := s.clientLedgers.Load(key); ok {
		return v.(*ledger)
	}
	max := s.cfg.MaxClients
	if max <= 0 {
		max = DefaultMaxClients
	}
	if s.clientCount.Load() >= int64(max) {
		slot := &s.overflow[fnv32a(key)%overflowShards]
		slot.mu.Lock()
		if slot.owner == "" {
			slot.owner = key
		}
		owned := slot.owner == key
		slot.mu.Unlock()
		if owned {
			return &slot.led
		}
		return s.overflowSpill.get(key)
	}
	v, loaded := s.clientLedgers.LoadOrStore(key, &ledger{})
	if !loaded {
		s.clientCount.Add(1)
	}
	return v.(*ledger)
}

// reserve carves the effective cost budget for one request out of the
// client's remaining admission budget (and the request's own budget,
// whichever is smaller). The reservation is pessimistic; refund returns
// what the request did not actually spend.
func (l *ledger) reserve(ceiling float64, requested *Float) (eff float64, reserved float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	remaining := ceiling - l.spent
	if remaining < 0 {
		remaining = 0
	}
	eff = remaining
	// The request's own budget can only lower the reservation, never
	// credit the ledger (requests with a negative budget are rejected
	// before reaching here; the clamp is defense in depth).
	if requested != nil && float64(*requested) < eff && float64(*requested) >= 0 {
		eff = float64(*requested)
	}
	l.spent += eff
	return eff, eff
}

// refund returns the unspent part of a reservation.
func (l *ledger) refund(reserved, actual float64) {
	if reserved <= actual {
		return
	}
	l.mu.Lock()
	l.spent -= reserved - actual
	if l.spent < 0 {
		l.spent = 0
	}
	l.mu.Unlock()
}

// remaining reports the client's unreserved budget.
func (l *ledger) remaining(ceiling float64) float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := ceiling - l.spent
	if r < 0 {
		r = 0
	}
	return r
}

// parseRequest compiles a request's SQL into executable queries.
// Multi-statement requests (';'-separated) concatenate their queries
// into one batch; parse errors are positioned against the full request
// text. GROUP BY is only servable on /subscribe (allowGroupBy), and
// EXPLAIN ANALYZE only on /query (allowExplain). The returned explain
// slice aligns with the queries: explain[i] marks queries compiled from
// an EXPLAIN ANALYZE statement.
func (s *Server) parseRequest(src string, allowGroupBy, allowExplain bool) ([]query.Query, []bool, *WireError) {
	stmts, offsets := SplitStatements(src)
	if len(stmts) == 0 {
		return nil, nil, &WireError{Code: CodeInvalid, Message: "empty sql"}
	}
	var (
		qs      []query.Query
		explain []bool
	)
	for i, stmt := range stmts {
		st, err := s.parsed.Parse(stmt, s.eng.Catalog())
		if err != nil {
			we := EncodeError(err)
			if we.Pos != nil {
				pos := *we.Pos + offsets[i]
				we.Pos = &pos
			}
			return nil, nil, we
		}
		if st.Explain && !allowExplain {
			return nil, nil, &WireError{Code: CodeUnsupported,
				Message: "EXPLAIN ANALYZE is only supported on /query"}
		}
		for range st.Queries {
			explain = append(explain, st.Explain)
		}
		qs = append(qs, st.Queries...)
	}
	if !allowGroupBy {
		for _, q := range qs {
			if len(q.GroupBy) > 0 {
				return nil, nil, &WireError{Code: CodeUnsupported,
					Message: "GROUP BY is not supported on /query; subscribe to it on /subscribe"}
			}
		}
	}
	return qs, explain, nil
}

// buildOptions resolves the request's execution options (mode, solver,
// deadline). The cost budget is resolved separately against the
// client's ledger.
func buildOptions(req QueryRequest) ([]query.ExecOption, *WireError) {
	var opts []query.ExecOption
	if b := req.Budget; b != nil && (float64(*b) < 0 || math.IsNaN(float64(*b))) {
		// A negative budget must never reach the ledger (it would
		// credit the client) or the engine (a 500 for bad input).
		return nil, &WireError{Code: CodeInvalid, Message: fmt.Sprintf("invalid cost budget %g", float64(*b))}
	}
	mode, err := ParseMode(req.Mode)
	if err != nil {
		return nil, &WireError{Code: CodeInvalid, Message: err.Error()}
	}
	if mode != query.ModeBounded {
		opts = append(opts, query.WithMode(mode))
	}
	if req.Solver != "" {
		solver, err := ParseSolver(req.Solver)
		if err != nil {
			return nil, &WireError{Code: CodeInvalid, Message: err.Error()}
		}
		opts = append(opts, query.WithSolver(solver))
	}
	if req.DeadlineMillis != 0 {
		opts = append(opts, query.WithDeadline(time.Now().Add(time.Duration(req.DeadlineMillis)*time.Millisecond)))
	}
	return opts, nil
}

// handleQuery is POST /query: parse → admission → execute → encode.
// Every request gets an X-Trapp-Request-Id, its latency lands in the
// server histogram, and requests past Config.SlowQuery are logged.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	rid := s.nextRequestID()
	w.Header().Set("X-Trapp-Request-Id", rid)
	if r.Method != http.MethodPost {
		s.fail(w, &WireError{Code: CodeInvalid, Message: "POST required"})
		return
	}
	if s.draining.Load() {
		s.fail(w, &WireError{Code: CodeDraining, Message: "server draining"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, &WireError{Code: CodeInvalid, Message: "bad request body: " + err.Error()})
		return
	}
	t0 := time.Now()
	var spent float64
	defer func() {
		d := time.Since(t0)
		s.queryLatency.ObserveDuration(d)
		if s.cfg.SlowQuery > 0 && d >= s.cfg.SlowQuery {
			s.logger().Warn("slow query",
				"request_id", rid, "sql", req.SQL, "duration", d, "refresh_cost", spent)
		}
	}()

	// Admission: cap in-flight executions. The slot is taken with a CAS
	// so the cap is strict — the in-flight gauge never exceeds
	// MaxInFlight, even transiently, which the stress test asserts.
	if !s.admit(&s.inflight, s.cfg.MaxInFlight) {
		s.rejected.Add(1)
		s.fail(w, &WireError{Code: CodeOverCapacity,
			Message: fmt.Sprintf("over capacity: %d requests in flight (max %d)", s.inflight.Load(), s.cfg.MaxInFlight)})
		return
	}
	defer s.inflight.Add(-1)
	if !s.track() {
		s.fail(w, &WireError{Code: CodeDraining, Message: "server draining"})
		return
	}
	defer s.handlers.Done()

	qs, explain, we := s.parseRequest(req.SQL, false, true)
	if we == nil {
		var opts []query.ExecOption
		opts, we = buildOptions(req)
		if we == nil {
			var resp QueryResponse
			var status int
			resp, status, spent = s.run(r.Context(), clientKey(r), req, qs, explain, opts)
			writeJSON(w, status, resp)
			return
		}
	}
	s.fail(w, we)
}

// run executes the parsed statements and builds the response. It is
// transport-agnostic — the HTTP handler and the framed-protocol loop
// both feed it — and it owns all error accounting for the execution
// phase (per-code counters, the statements counter), so callers must
// encode the returned response as-is rather than re-counting through
// fail. It also returns the HTTP status the response maps to (framed
// transport ignores it) and the refresh cost actually spent (the
// slow-query log reports it).
func (s *Server) run(ctx context.Context, client string, req QueryRequest, qs []query.Query, explain []bool, opts []query.ExecOption) (_ QueryResponse, status int, spent float64) {
	traced := req.Trace
	for _, e := range explain {
		if e {
			traced = true
		}
	}

	// Admission: meter the client's cumulative refresh-cost budget. The
	// effective budget is reserved up front and the unspent remainder
	// refunded, so concurrent requests cannot jointly overrun the
	// ceiling.
	var (
		led       *ledger
		reserved  float64
		hasBudget bool
		budget    float64
	)
	if s.cfg.ClientBudget > 0 {
		led = s.ledgerFor(client)
		var eff float64
		eff, reserved = led.reserve(s.cfg.ClientBudget, req.Budget)
		hasBudget, budget = true, eff
	} else if req.Budget != nil {
		hasBudget, budget = true, float64(*req.Budget)
	}

	// The execution context dies with the client connection or with
	// Shutdown, whichever comes first, so an abandoned request stops
	// refreshing mid-fan-out.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	var (
		results  []query.Result
		perQuery []error
		err      error
	)
	switch {
	case traced:
		// Traced statements execute individually so each gets its own
		// span tree, at the price of cross-statement refresh sharing.
		// The cost budget still covers the request as a whole: each
		// statement runs under whatever its predecessors left.
		remaining := budget
		for i := range qs {
			qopts := append([]query.ExecOption(nil), opts...)
			if hasBudget {
				qopts = append(qopts, query.WithCostBudget(remaining))
			}
			if req.Trace || explain[i] {
				qopts = append(qopts, query.WithTrace())
			}
			var res query.Result
			var qerr error
			res, qerr = s.eng.ExecuteCtx(ctx, qs[i], qopts...)
			if qerr != nil && !errors.Is(qerr, query.ErrPrecisionUnmet{}) && !errors.Is(qerr, query.ErrBudgetExhausted{}) {
				err = qerr
				break
			}
			results, perQuery = append(results, res), append(perQuery, qerr)
			if remaining -= res.RefreshCost; remaining < 0 {
				remaining = 0
			}
		}
	case len(qs) == 1:
		if hasBudget {
			opts = append(opts, query.WithCostBudget(budget))
		}
		var res query.Result
		res, err = s.eng.ExecuteCtx(ctx, qs[0], opts...)
		if err == nil || errors.Is(err, query.ErrPrecisionUnmet{}) || errors.Is(err, query.ErrBudgetExhausted{}) {
			// Partial outcomes still carry a sound result; report them
			// per-statement like the batch path does.
			results, perQuery, err = []query.Result{res}, []error{err}, nil
		}
	default:
		if hasBudget {
			opts = append(opts, query.WithCostBudget(budget))
		}
		results, perQuery, err = s.eng.ExecuteBatchDetailed(ctx, qs, opts...)
	}
	for _, res := range results {
		spent += res.RefreshCost
	}
	if err != nil {
		// A whole-request failure may have paid refresh cost that no
		// Result attributes (a batch cut down mid-fan-out); the
		// reservation is forfeited rather than refunded, so metering
		// errs against the client, never against the ceiling.
		we := EncodeError(err)
		s.counter(we.Code).Add(1)
		return QueryResponse{Error: we}, HTTPStatus(we.Code), spent
	}
	if led != nil {
		led.refund(reserved, spent)
	}

	resp := QueryResponse{Results: make([]WireResult, len(results))}
	status = 200
	for i := range results {
		resp.Results[i] = ToWireResult(results[i], perQuery[i])
		if e := resp.Results[i].Error; e != nil {
			s.counter(e.Code).Add(1)
			if st := HTTPStatus(e.Code); st > status {
				status = st
			}
		}
	}
	if led != nil {
		rem := Float(led.remaining(s.cfg.ClientBudget))
		resp.BudgetRemaining = &rem
	}
	s.statements.Add(int64(len(results)))
	return resp, status, spent
}

// handleSubscribe is GET /subscribe?sql=...: a server-sent-events stream
// of the standing query's maintained answer, backed by SubscribeCtx.
// Updates are coalesced by the engine (a slow client observes the latest
// state, never stale backlog); the stream ends when the client
// disconnects, the server drains, or the engine closes.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet {
		s.fail(w, &WireError{Code: CodeInvalid, Message: "GET required"})
		return
	}
	if s.draining.Load() {
		s.fail(w, &WireError{Code: CodeDraining, Message: "server draining"})
		return
	}
	// /subscribe accepts GROUP BY: the engine maintains per-group
	// answers and the stream carries them in update.groups.
	qs, _, we := s.parseRequest(r.URL.Query().Get("sql"), true, false)
	if we != nil {
		s.fail(w, we)
		return
	}
	if len(qs) != 1 {
		s.fail(w, &WireError{Code: CodeUnsupported, Message: "subscribe takes exactly one query"})
		return
	}

	if !s.admit(&s.subscribers, s.cfg.MaxSubscribers) {
		s.rejected.Add(1)
		s.fail(w, &WireError{Code: CodeOverCapacity,
			Message: fmt.Sprintf("over capacity: %d subscriptions open (max %d)", s.subscribers.Load(), s.cfg.MaxSubscribers)})
		return
	}
	defer s.subscribers.Add(-1)
	if !s.track() {
		s.fail(w, &WireError{Code: CodeDraining, Message: "server draining"})
		return
	}
	defer s.handlers.Done()

	flusher, ok := w.(http.Flusher)
	if !ok {
		s.fail(w, &WireError{Code: CodeInternal, Message: "streaming unsupported by connection"})
		return
	}

	// The subscription lives exactly as long as this context: client
	// disconnect or Shutdown cancels it, and SubscribeCtx then closes
	// the subscription — constraint repair stops and no watcher
	// goroutine outlives the stream.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()

	sub, err := s.eng.SubscribeCtx(ctx, qs[0])
	if err != nil {
		s.fail(w, EncodeError(err))
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(200)
	writeSSE(w, "subscribed", map[string]string{"query": qs[0].String()})
	flusher.Flush()

	for u := range sub.Updates() {
		wu := WireUpdate{Seq: u.Seq, At: u.At, Answer: ToWire(u.Answer), Met: u.Met}
		for _, g := range u.Groups {
			key := make([]Float, len(g.Key))
			for i, v := range g.Key {
				key[i] = Float(v)
			}
			wu.Groups = append(wu.Groups, WireGroup{Key: key, Answer: ToWire(g.Answer), Met: g.Met})
		}
		if err := writeSSE(w, "update", wu); err != nil {
			return // client gone; ctx cancel tears the subscription down
		}
		flusher.Flush()
		s.updatesSent.Add(1)
	}
	// Channel closed: context canceled or engine shut down.
	writeSSE(w, "bye", map[string]string{"reason": "subscription closed"})
	flusher.Flush()
}

// writeSSE writes one server-sent event with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, data any) error {
	buf, err := json.Marshal(data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, buf)
	return err
}

// Metrics is the /metrics payload.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts HTTP requests; Statements counts executed
	// statements (a batch request counts each of its statements).
	Requests   int64 `json:"requests"`
	Statements int64 `json:"statements"`
	// StatementsPerSecond is Statements over uptime — the wire-level QPS.
	StatementsPerSecond float64 `json:"statements_per_second"`
	// Rejected counts admission-control rejections; InFlight,
	// InFlightPeak and Subscribers are the live gauges.
	Rejected     int64 `json:"rejected"`
	InFlight     int64 `json:"in_flight"`
	InFlightPeak int64 `json:"in_flight_peak"`
	Subscribers  int64 `json:"subscribers"`
	UpdatesSent  int64 `json:"updates_sent"`
	// ErrorsByCode counts statement and request outcomes by error code.
	ErrorsByCode map[string]int64 `json:"errors_by_code,omitempty"`
	// Network is the engine's refresh-traffic snapshot: message counts
	// by kind, refresh costs, and the per-source breakdown.
	Network NetworkMetrics `json:"network"`
	// Continuous mirrors the subscription engine's counters.
	Continuous ContinuousMetrics `json:"continuous"`
	// QueryLatency is the server-side /query handler latency histogram
	// (nanoseconds, log-bucketed).
	QueryLatency obs.HistogramSnapshot `json:"query_latency"`
	// FramedLatency is the framed-path per-frame latency histogram
	// (request decode through response encode and flush; nanoseconds,
	// log-bucketed).
	FramedLatency obs.HistogramSnapshot `json:"framed_latency"`
	// Cluster is the partition coordinator's per-partition health
	// snapshot (partition.Metrics), present only when the served engine
	// is a cluster.
	Cluster any `json:"cluster,omitempty"`
	// Engine is the engine's always-on histogram set: per-phase request
	// latency, refresh batch sizes, and the paper's precision–cost
	// telemetry (width ratio, cost per unit width). Keys are fixed; see
	// obs.EngineMetrics.
	Engine obs.MetricsSnapshot `json:"engine,omitempty"`
	// Sources reports each source's adaptive-width controller state.
	Sources map[string]source.WidthTelemetry `json:"sources,omitempty"`
	// PlanCache reports the shape-keyed plan/classification cache:
	// cumulative hit/miss/invalidation counts and current occupancy.
	PlanCache PlanCacheMetrics `json:"plan_cache"`
	// ParseCache reports the statement-compilation memo.
	ParseCache ParseCacheMetrics `json:"parse_cache"`
	// Runtime reports process-wide allocation counters; paired with the
	// Statements counter it yields server-side allocs per statement,
	// which the wire benchmark reports alongside client-side allocs.
	Runtime RuntimeMetrics `json:"runtime"`
	// FramedConnections gauges live framed-protocol connections.
	FramedConnections int64 `json:"framed_connections"`
	// Workload echoes Config.Info.
	Workload map[string]any `json:"workload,omitempty"`
}

// PlanCacheMetrics is the plan cache's /metrics section. HitRate is
// hits/(hits+misses+invalidations) — the share of executions that
// skipped the classification scan entirely.
type PlanCacheMetrics struct {
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Invalidations int64   `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`
	FoldEntries   int     `json:"fold_entries"`
	ScanEntries   int     `json:"scan_entries"`
}

// ParseCacheMetrics is the statement-cache /metrics section.
type ParseCacheMetrics struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
}

// RuntimeMetrics is a minimal runtime.MemStats excerpt: enough to
// compute allocation deltas across a benchmark window without the full
// (and expensive to encode) MemStats dump.
type RuntimeMetrics struct {
	Mallocs    uint64 `json:"mallocs"`
	TotalAlloc uint64 `json:"total_alloc"`
	HeapAlloc  uint64 `json:"heap_alloc"`
	NumGC      uint32 `json:"num_gc"`
	Goroutines int    `json:"goroutines"`
}

// NetworkMetrics is the JSON form of netsim.Stats.
type NetworkMetrics struct {
	Messages         map[string]int64         `json:"messages,omitempty"`
	QueryRefreshCost float64                  `json:"query_refresh_cost"`
	ValueRefreshCost float64                  `json:"value_refresh_cost"`
	PerSource        map[string]SourceMetrics `json:"per_source,omitempty"`
}

// SourceMetrics is one source's traffic share.
type SourceMetrics struct {
	Messages         map[string]int64 `json:"messages,omitempty"`
	QueryRefreshCost float64          `json:"query_refresh_cost"`
	ValueRefreshCost float64          `json:"value_refresh_cost"`
}

// ContinuousMetrics is the JSON form of continuous.Metrics.
type ContinuousMetrics struct {
	Rounds           int64   `json:"rounds"`
	Notifications    int64   `json:"notifications"`
	RefreshBatches   int64   `json:"refresh_batches"`
	RefreshedObjects int64   `json:"refreshed_objects"`
	RefreshCost      float64 `json:"refresh_cost"`
	SharedRefreshes  int64   `json:"shared_refreshes"`
	Views            int     `json:"views"`
	Subscriptions    int     `json:"subscriptions"`
}

// SnapshotMetrics assembles the current metrics (also used by tests).
func (s *Server) SnapshotMetrics() Metrics {
	up := time.Since(s.start).Seconds()
	m := Metrics{
		UptimeSeconds: up,
		Requests:      s.requests.Load(),
		Statements:    s.statements.Load(),
		Rejected:      s.rejected.Load(),
		InFlight:      s.inflight.Load(),
		InFlightPeak:  s.inflightPeak.Load(),
		Subscribers:   s.subscribers.Load(),
		UpdatesSent:   s.updatesSent.Load(),
		Workload:      s.cfg.Info,
	}
	if up > 0 {
		m.StatementsPerSecond = float64(m.Statements) / up
	}
	s.errorsByCode.Range(func(code, v any) bool {
		if m.ErrorsByCode == nil {
			m.ErrorsByCode = make(map[string]int64)
		}
		m.ErrorsByCode[code.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	// Engine introspection is feature-detected: the embedded System
	// implements all of it, the partition coordinator only what makes
	// sense at a coordinator (cluster health instead of store internals).
	if sp, ok := s.eng.(interface{ Stats() netsim.Stats }); ok {
		st := sp.Stats()
		m.Network = NetworkMetrics{
			QueryRefreshCost: st.QueryRefreshCost,
			ValueRefreshCost: st.ValueRefreshCost,
		}
		for k, n := range st.Messages {
			if m.Network.Messages == nil {
				m.Network.Messages = make(map[string]int64)
			}
			m.Network.Messages[k.String()] = n
		}
		for id, ss := range st.PerSource {
			if m.Network.PerSource == nil {
				m.Network.PerSource = make(map[string]SourceMetrics)
			}
			sm := SourceMetrics{QueryRefreshCost: ss.QueryRefreshCost, ValueRefreshCost: ss.ValueRefreshCost}
			for k, n := range ss.Messages {
				if sm.Messages == nil {
					sm.Messages = make(map[string]int64)
				}
				sm.Messages[k.String()] = n
			}
			m.Network.PerSource[id] = sm
		}
	}
	if cp, ok := s.eng.(interface{ SubscriptionMetrics() continuous.Metrics }); ok {
		cm := cp.SubscriptionMetrics()
		m.Continuous = ContinuousMetrics{
			Rounds:           cm.Rounds,
			Notifications:    cm.Notifications,
			RefreshBatches:   cm.RefreshBatches,
			RefreshedObjects: cm.RefreshedObjects,
			RefreshCost:      cm.RefreshCost,
			SharedRefreshes:  cm.SharedRefreshes,
			Views:            cm.Views,
			Subscriptions:    cm.Subscriptions,
		}
	}
	m.QueryLatency = s.queryLatency.Snapshot()
	m.FramedLatency = s.framedLatency.Snapshot()
	if ep, ok := s.eng.(interface{ Metrics() *obs.EngineMetrics }); ok {
		if em := ep.Metrics(); em != nil {
			m.Engine = em.Snapshot()
			counters := em.Counters()
			m.PlanCache = PlanCacheMetrics{
				Hits:          counters["plan_cache_hits"],
				Misses:        counters["plan_cache_misses"],
				Invalidations: counters["plan_cache_invalidations"],
			}
			if total := m.PlanCache.Hits + m.PlanCache.Misses + m.PlanCache.Invalidations; total > 0 {
				m.PlanCache.HitRate = float64(m.PlanCache.Hits) / float64(total)
			}
		}
	}
	if wp, ok := s.eng.(interface {
		WidthTelemetry() map[string]source.WidthTelemetry
	}); ok {
		m.Sources = wp.WidthTelemetry()
	}
	if pp, ok := s.eng.(interface{ Processor() *query.Processor }); ok {
		m.PlanCache.FoldEntries, m.PlanCache.ScanEntries = pp.Processor().PlanCacheSizes()
	}
	if cp, ok := s.eng.(interface{ ClusterMetrics() any }); ok {
		m.Cluster = cp.ClusterMetrics()
	}
	m.ParseCache.Hits, m.ParseCache.Misses, m.ParseCache.Entries = s.parsed.Stats()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.Runtime = RuntimeMetrics{
		Mallocs:    ms.Mallocs,
		TotalAlloc: ms.TotalAlloc,
		HeapAlloc:  ms.HeapAlloc,
		NumGC:      ms.NumGC,
		Goroutines: runtime.NumGoroutine(),
	}
	m.FramedConnections = s.framedConns.Load()
	return m
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, 200, s.SnapshotMetrics())
}

// promPhases orders the engine's nanosecond histograms for the
// trapp_phase_duration_seconds family; the remaining EngineMetrics keys
// export as their own families in their native units.
var promPhases = []struct{ key, phase string }{
	{"request_ns", "request"},
	{"scan_ns", "scan"},
	{"choose_ns", "choose"},
	{"refresh_ns", "refresh"},
	{"fold_ns", "fold"},
	{"repair_ns", "repair"},
	{"maintain_ns", "maintain"},
}

// handleMetricsProm is GET /metrics.prom: the Prometheus text-format
// twin of /metrics. Durations export in seconds; the width ratio and
// cost-per-width telemetry export in their natural units (the stored
// permille/milli fixed-point scaling is divided back out).
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	m := s.SnapshotMetrics()
	pw := obs.NewPromWriter()
	pw.Gauge("trapp_uptime_seconds", "Seconds since server start.", nil, m.UptimeSeconds)
	pw.Counter("trapp_requests_total", "HTTP requests received.", nil, float64(m.Requests))
	pw.Counter("trapp_statements_total", "Statements executed.", nil, float64(m.Statements))
	pw.Counter("trapp_rejected_total", "Admission-control rejections.", nil, float64(m.Rejected))
	pw.Counter("trapp_updates_sent_total", "Subscription updates sent.", nil, float64(m.UpdatesSent))
	pw.Gauge("trapp_in_flight", "Requests currently executing.", nil, float64(m.InFlight))
	pw.Gauge("trapp_subscribers", "Open subscription streams.", nil, float64(m.Subscribers))
	pw.Gauge("trapp_framed_connections", "Live framed-protocol connections.", nil, float64(m.FramedConnections))
	pw.Counter("trapp_plan_cache_hits_total", "Plan-cache hits (classification scan skipped).",
		nil, float64(m.PlanCache.Hits))
	pw.Counter("trapp_plan_cache_misses_total", "Plan-cache misses (shape not yet cached).",
		nil, float64(m.PlanCache.Misses))
	pw.Counter("trapp_plan_cache_invalidations_total", "Plan-cache entries discarded by relation mutations.",
		nil, float64(m.PlanCache.Invalidations))
	pw.Gauge("trapp_plan_cache_hit_rate", "Plan-cache hits over all lookups.", nil, m.PlanCache.HitRate)
	pw.Counter("trapp_parse_cache_hits_total", "Statement-cache hits (parse skipped).",
		nil, float64(m.ParseCache.Hits))
	pw.Counter("trapp_parse_cache_misses_total", "Statement-cache misses.",
		nil, float64(m.ParseCache.Misses))
	for code, n := range m.ErrorsByCode {
		pw.Counter("trapp_errors_total", "Request and statement outcomes by error code.",
			map[string]string{"code": code}, float64(n))
	}
	pw.Counter("trapp_query_refresh_cost_total", "Cumulative query-initiated refresh cost.",
		nil, m.Network.QueryRefreshCost)
	pw.Counter("trapp_value_refresh_cost_total", "Cumulative value-initiated refresh cost.",
		nil, m.Network.ValueRefreshCost)

	pw.Histo("trapp_query_latency_seconds", "Server-side /query handler latency.",
		nil, m.QueryLatency, 1e9)
	pw.Histo("trapp_framed_latency_seconds", "Server-side framed-path request latency.",
		nil, m.FramedLatency, 1e9)
	for _, p := range promPhases {
		pw.Histo("trapp_phase_duration_seconds", "Engine phase latency by phase.",
			map[string]string{"phase": p.phase}, m.Engine[p.key], 1e9)
	}
	pw.Histo("trapp_refresh_batch_keys", "Keys per single-source refresh batch.",
		nil, m.Engine["refresh_batch_keys"], 1)
	pw.Histo("trapp_width_ratio", "Achieved interval width over requested bound.",
		nil, m.Engine["width_ratio_permille"], 1000)
	pw.Histo("trapp_cost_per_width", "Refresh cost per unit of interval-width reduction.",
		nil, m.Engine["cost_per_width_milli"], 1000)

	for id, t := range m.Sources {
		lbl := map[string]string{"source": id}
		pw.Gauge("trapp_source_objects", "Objects held by the source.", lbl, float64(t.Objects))
		pw.Gauge("trapp_source_adaptive_objects", "Objects under adaptive-width control.", lbl, float64(t.Adaptive))
		if t.Adaptive > 0 {
			pw.Gauge("trapp_source_width_min", "Smallest adaptive bound width.", lbl, t.WMin)
			pw.Gauge("trapp_source_width_max", "Largest adaptive bound width.", lbl, t.WMax)
			pw.Gauge("trapp_source_width_mean", "Mean adaptive bound width.", lbl, t.WMean)
		}
		pw.Counter("trapp_source_value_refreshes_total", "Value-initiated refreshes (bound escapes).", lbl, float64(t.ValueRefreshes))
		pw.Counter("trapp_source_query_refreshes_total", "Query-initiated refreshes.", lbl, float64(t.QueryRefreshes))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(200)
	fmt.Fprint(w, pw.String())
}

// buildInfo summarizes runtime/debug.ReadBuildInfo for /healthz.
func buildInfo() map[string]any {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return nil
	}
	out := map[string]any{
		"go_version": bi.GoVersion,
		"module":     bi.Main.Path,
	}
	if bi.Main.Version != "" {
		out["version"] = bi.Main.Version
	}
	for _, st := range bi.Settings {
		switch st.Key {
		case "vcs.revision", "vcs.time", "vcs.modified":
			out[st.Key] = st.Value
		}
	}
	return out
}

// handleHealthz is GET /healthz: 200 while serving, 503 while draining,
// with build/version info and process uptime.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, state := 200, "ok"
	if s.draining.Load() {
		status, state = 503, "draining"
	}
	body := map[string]any{
		"status":   state,
		"uptime_s": time.Since(s.start).Seconds(),
		"build":    buildInfo(),
		"workload": s.cfg.Info,
	}
	if s.cfg.Topology != nil {
		body["topology"] = s.cfg.Topology()
	}
	writeJSON(w, status, body)
}
