package server

// Frame codec tests: encode→decode→encode round trips for requests and
// responses across the optional-field space, strictness rejections, and
// the FuzzDecodeFrame invariant — no panic on any input, structured
// *FrameError on rejection, and byte-identical re-encoding of every
// accepted payload.

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// sampleRequests covers every optional-field combination worth having.
func sampleRequests() []QueryRequest {
	return []QueryRequest{
		{SQL: "SELECT SUM(value) FROM vals"},
		{SQL: "SELECT MIN(value) FROM vals WITHIN 5", DeadlineMillis: 1500},
		{SQL: "SELECT AVG(value) FROM vals WITHIN 2", Budget: floatPtr(12.5)},
		{SQL: "SELECT MAX(value) FROM vals", Mode: "precise"},
		{SQL: "SELECT COUNT(value) FROM vals WHERE value > 10 WITHIN 3", Solver: "greedy-density"},
		{SQL: "SELECT SUM(value) FROM vals WITHIN 1", DeadlineMillis: -1,
			Budget: floatPtr(0), Mode: "imprecise", Solver: "auto"},
		{SQL: ""},
	}
}

// sampleResponses covers ok/error shapes, result errors, and budgets.
func sampleResponses() []QueryResponse {
	pos := 7
	return []QueryResponse{
		{Results: []WireResult{}},
		{Results: []WireResult{{
			Answer:    WireInterval{Lo: 1.25, Hi: 2.5},
			Initial:   WireInterval{Lo: 0.5, Hi: 3.5},
			Refreshed: 3, RefreshCost: 9.75, Met: true, ChooseTimeNS: 12345,
		}}},
		{Results: []WireResult{
			{Answer: WireInterval{Lo: -1, Hi: 1}, Met: false, Error: &WireError{
				Code: CodePrecisionUnmet, Message: "deadline",
				Achieved: &WireInterval{Lo: -1, Hi: 1},
				Spent:    floatPtr(4), Cause: CodeDeadline,
			}},
			{Answer: WireInterval{Lo: 2, Hi: 2}, Met: true},
		}, BudgetRemaining: floatPtr(88)},
		{Error: &WireError{Code: CodeParse, Message: "bad sql", Pos: &pos}},
		{Error: &WireError{Code: CodeBudgetExhausted, Message: "spent",
			Achieved: &WireInterval{Lo: 0, Hi: 10}, Spent: floatPtr(5), Budget: floatPtr(5)}},
	}
}

func TestRequestFrameRoundTrip(t *testing.T) {
	for i, req := range sampleRequests() {
		frame, err := AppendRequest(nil, uint32(1000+i), req)
		if err != nil {
			t.Fatalf("req %d: encode: %v", i, err)
		}
		payload := frame[4:] // strip length prefix
		id, got, ferr := DecodeRequest(payload)
		if ferr != nil {
			t.Fatalf("req %d: decode: %v", i, ferr)
		}
		if id != uint32(1000+i) {
			t.Fatalf("req %d: id %d", i, id)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("req %d: round trip %+v != %+v", i, got, req)
		}
		again, err := AppendRequest(nil, id, got)
		if err != nil {
			t.Fatalf("req %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("req %d: re-encode differs", i)
		}
	}
}

func TestResponseFrameRoundTrip(t *testing.T) {
	for i, resp := range sampleResponses() {
		frame, err := AppendResponse(nil, uint32(i), resp)
		if err != nil {
			t.Fatalf("resp %d: encode: %v", i, err)
		}
		id, got, ferr := DecodeResponse(frame[4:])
		if ferr != nil {
			t.Fatalf("resp %d: decode: %v", i, ferr)
		}
		if id != uint32(i) {
			t.Fatalf("resp %d: id %d", i, id)
		}
		// Empty result slices decode as nil; normalize before comparing.
		want := resp
		if len(want.Results) == 0 {
			want.Results = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("resp %d: round trip %+v != %+v", i, got, want)
		}
		again, err := AppendResponse(nil, id, got)
		if err != nil {
			t.Fatalf("resp %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("resp %d: re-encode differs", i)
		}
	}
}

func TestFrameStrictness(t *testing.T) {
	if _, err := AppendRequest(nil, 1, QueryRequest{SQL: "x", Trace: true}); err == nil {
		t.Error("trace request encoded")
	}
	if _, err := AppendRequest(nil, 1, QueryRequest{SQL: "x", Mode: "bogus"}); err == nil {
		t.Error("bogus mode encoded")
	}

	good, err := AppendRequest(nil, 9, QueryRequest{SQL: "SELECT SUM(value) FROM vals"})
	if err != nil {
		t.Fatal(err)
	}
	payload := append([]byte(nil), good[4:]...)

	// Undefined flag bit.
	bad := append([]byte(nil), payload...)
	bad[5] |= 0x80
	if _, _, ferr := DecodeRequest(bad); ferr == nil {
		t.Error("undefined flag bit accepted")
	}
	// Trailing byte.
	if _, _, ferr := DecodeRequest(append(append([]byte(nil), payload...), 0)); ferr == nil {
		t.Error("trailing byte accepted")
	}
	// Truncations at every length must fail cleanly, never panic.
	for n := 0; n < len(payload); n++ {
		if _, _, ferr := DecodeRequest(payload[:n]); ferr == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}

	// Wrong frame type byte routed to the other decoder.
	if _, _, ferr := DecodeResponse(payload); ferr == nil {
		t.Error("request payload accepted as response")
	}
}

func TestReadFrame(t *testing.T) {
	var frames []byte
	var err error
	frames, err = AppendRequest(frames, 1, QueryRequest{SQL: "SELECT SUM(value) FROM vals"})
	if err != nil {
		t.Fatal(err)
	}
	frames, err = AppendRequest(frames, 2, QueryRequest{SQL: "SELECT MIN(value) FROM vals"})
	if err != nil {
		t.Fatal(err)
	}
	br := bytes.NewReader(frames)
	var buf []byte
	for want := uint32(1); want <= 2; want++ {
		payload, err := ReadFrame(br, &buf)
		if err != nil {
			t.Fatalf("frame %d: %v", want, err)
		}
		id, _, ferr := DecodeRequest(payload)
		if ferr != nil || id != want {
			t.Fatalf("frame %d: id %d ferr %v", want, id, ferr)
		}
	}
	if _, err := ReadFrame(br, &buf); err != io.EOF {
		t.Fatalf("want io.EOF at clean boundary, got %v", err)
	}

	// Mid-frame cut → ErrUnexpectedEOF (the first frame still reads
	// clean; the error lands on the second).
	cut := bytes.NewReader(frames[:len(frames)-3])
	if _, err := ReadFrame(cut, &buf); err != nil {
		t.Fatalf("intact first frame: %v", err)
	}
	if _, err := ReadFrame(cut, &buf); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF mid-frame, got %v", err)
	}

	// Oversized and empty frames are framing violations.
	over := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(over), &buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
	empty := []byte{0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(empty), &buf); err == nil {
		t.Fatal("empty frame accepted")
	}
}

// FuzzDecodeFrame feeds arbitrary payloads to both decoders: decoding
// must never panic, every rejection must be a structured *FrameError,
// and every accepted payload must re-encode byte-identically (the
// canonical-encoding invariant).
func FuzzDecodeFrame(f *testing.F) {
	for i, req := range sampleRequests() {
		if frame, err := AppendRequest(nil, uint32(i), req); err == nil {
			f.Add(frame[4:])
		}
	}
	for i, resp := range sampleResponses() {
		if frame, err := AppendResponse(nil, uint32(i), resp); err == nil {
			f.Add(frame[4:])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x01})
	f.Add([]byte{0x02, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, payload []byte) {
		if id, req, ferr := DecodeRequest(payload); ferr == nil {
			frame, err := AppendRequest(nil, id, req)
			if err != nil {
				t.Fatalf("accepted request does not re-encode: %v", err)
			}
			if !bytes.Equal(frame[4:], payload) {
				t.Fatalf("request re-encode differs:\n in %x\nout %x", payload, frame[4:])
			}
		} else if ferr.Offset < 0 || ferr.Offset > len(payload) || ferr.Msg == "" {
			t.Fatalf("malformed FrameError %+v for %x", ferr, payload)
		}
		if id, resp, ferr := DecodeResponse(payload); ferr == nil {
			frame, err := AppendResponse(nil, id, resp)
			if err != nil {
				t.Fatalf("accepted response does not re-encode: %v", err)
			}
			if !bytes.Equal(frame[4:], payload) {
				t.Fatalf("response re-encode differs:\n in %x\nout %x", payload, frame[4:])
			}
		} else if ferr.Offset < 0 || ferr.Offset > len(payload) || ferr.Msg == "" {
			t.Fatalf("malformed FrameError %+v for %x", ferr, payload)
		}
	})
}
