// Package server is the TRAPP network service layer: an HTTP/JSON front
// end over the embedded engine's request API, exposing the SQL dialect
// end to end. POST /query executes single statements and multi-statement
// batches (ParseQueries → ExecuteBatch) under per-request options
// (deadline, cost budget, mode, solver); GET /subscribe streams a
// standing query's maintained answer as server-sent events backed by
// SubscribeCtx; /metrics and /healthz serve observability. Admission
// control caps in-flight requests and meters each client against a
// cumulative refresh-cost budget; Shutdown drains gracefully, closing
// every subscription without leaking watcher goroutines.
//
// Every engine answer and typed error crosses the wire bit-identically:
// intervals round-trip through JSON exactly (including ±Inf), and the
// typed error taxonomy of internal/query maps to structured error codes
// a client can decode back into the same errors.As-able values —
// DecodeError(EncodeError(err)) preserves kind and fields. DESIGN.md §10
// documents the endpoint map, error-code table and drain invariants.
package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"trapp/internal/interval"
	"trapp/internal/obs"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/sql"
)

// Float is a float64 that survives JSON: finite values marshal as
// numbers, while ±Inf and NaN — which encoding/json rejects — marshal as
// the strings "+Inf", "-Inf", "NaN". Unbounded answers (an empty table's
// MIN is [+Inf, -Inf]) would otherwise be unencodable.
type Float float64

// MarshalJSON encodes finite values as numbers, non-finite as strings.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return strconv.AppendFloat(nil, v, 'g', -1, 64), nil
}

// UnmarshalJSON accepts both encodings.
func (f *Float) UnmarshalJSON(b []byte) error {
	s := string(b)
	switch s {
	case `"+Inf"`, `"Inf"`:
		*f = Float(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = Float(math.Inf(-1))
		return nil
	case `"NaN"`:
		*f = Float(math.NaN())
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("server: invalid float %s", s)
	}
	*f = Float(v)
	return nil
}

// WireInterval is a closed interval on the wire.
type WireInterval struct {
	Lo Float `json:"lo"`
	Hi Float `json:"hi"`
}

// ToWire converts an engine interval.
func ToWire(iv interval.Interval) WireInterval {
	return WireInterval{Lo: Float(iv.Lo), Hi: Float(iv.Hi)}
}

// Interval converts back to the engine representation.
func (w WireInterval) Interval() interval.Interval {
	return interval.Interval{Lo: float64(w.Lo), Hi: float64(w.Hi)}
}

// QueryRequest is the POST /query body. SQL may hold one statement or
// several separated by ';'; all resulting queries execute as one
// ExecuteBatch when there is more than one.
type QueryRequest struct {
	// SQL is the statement text in the TRAPP/AG dialect.
	SQL string `json:"sql"`
	// DeadlineMillis, when non-zero, bounds the request's wall-clock
	// time: the server attaches WithDeadline(now + DeadlineMillis). A
	// negative value arrives already expired — the deterministic
	// best-effort path (the engine answers from cache with
	// precision_unmet), which the remote bench's parity verifier relies
	// on.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Budget, when set, attaches WithCostBudget — the cost-bounded dual.
	// The server additionally clamps it against the client's remaining
	// admission budget when one is configured.
	Budget *Float `json:"budget,omitempty"`
	// Mode is "", "bounded", "precise" or "imprecise" (WithMode).
	Mode string `json:"mode,omitempty"`
	// Solver optionally overrides the knapsack solver for this request:
	// "auto", "exact-dp", "approx", "greedy-uniform", "greedy-density".
	Solver string `json:"solver,omitempty"`
	// Trace requests a per-statement execution trace: each result carries
	// a span tree (scan → choose → refresh fan-out per source → fold)
	// with wall times and exact refresh-cost attribution. Equivalent to
	// prefixing every statement with EXPLAIN ANALYZE. Traced statements
	// execute individually rather than as a shared batch, so a
	// multi-statement request loses cross-statement refresh sharing.
	Trace bool `json:"trace,omitempty"`
}

// WireResult is one executed statement's result.
type WireResult struct {
	// Answer and Initial are the final and pre-refresh bounded answers.
	Answer  WireInterval `json:"answer"`
	Initial WireInterval `json:"initial"`
	// Refreshed and RefreshCost total the query-initiated refreshes paid.
	Refreshed   int   `json:"refreshed"`
	RefreshCost Float `json:"refresh_cost"`
	// Met reports whether the precision constraint holds.
	Met bool `json:"met"`
	// ChooseTimeNS is the time spent inside CHOOSE_REFRESH (wall-clock
	// noise: excluded from parity comparisons).
	ChooseTimeNS int64 `json:"choose_time_ns"`
	// Error carries this statement's typed outcome (precision_unmet,
	// budget_exhausted); the result fields alongside it are still sound.
	Error *WireError `json:"error,omitempty"`
	// Trace is the execution trace, present when the statement ran under
	// EXPLAIN ANALYZE or the request set Trace. Its TotalCost equals
	// RefreshCost bit-exactly (wall times are, of course, wall-clock
	// noise).
	Trace *obs.TraceSnapshot `json:"trace,omitempty"`
}

// ToWireResult converts an engine result.
func ToWireResult(res query.Result, err error) WireResult {
	wr := WireResult{
		Answer:       ToWire(res.Answer),
		Initial:      ToWire(res.Initial),
		Refreshed:    res.Refreshed,
		RefreshCost:  Float(res.RefreshCost),
		Met:          res.Met,
		ChooseTimeNS: int64(res.ChooseTime),
		Error:        EncodeError(err),
	}
	if res.Trace != nil {
		snap := res.Trace.Snapshot()
		wr.Trace = &snap
	}
	return wr
}

// Result converts back to the engine representation.
func (w WireResult) Result() query.Result {
	return query.Result{
		Answer:      w.Answer.Interval(),
		Initial:     w.Initial.Interval(),
		Refreshed:   w.Refreshed,
		RefreshCost: float64(w.RefreshCost),
		Met:         w.Met,
		ChooseTime:  time.Duration(w.ChooseTimeNS),
	}
}

// QueryResponse is the POST /query reply. Either Error is set (the
// request failed as a whole: parse error, unknown table, over capacity,
// draining) or Results aligns statement-for-statement with the request,
// each carrying its own outcome.
type QueryResponse struct {
	Results []WireResult `json:"results,omitempty"`
	Error   *WireError   `json:"error,omitempty"`
	// BudgetRemaining reports the client's remaining admission budget
	// after this request, when per-client budgets are configured.
	BudgetRemaining *Float `json:"budget_remaining,omitempty"`
}

// WireUpdate is one server-sent subscription notification, mirroring
// continuous.Update.
type WireUpdate struct {
	Seq    int64        `json:"seq"`
	At     int64        `json:"at"`
	Answer WireInterval `json:"answer"`
	Met    bool         `json:"met"`
	Groups []WireGroup  `json:"groups,omitempty"`
}

// WireGroup is one group's answer in a GROUP BY subscription update.
type WireGroup struct {
	Key    []Float      `json:"key"`
	Answer WireInterval `json:"answer"`
	Met    bool         `json:"met"`
}

// Error codes of the service layer. Each maps to one HTTP status
// (HTTPStatus) and, for engine outcomes, round-trips through
// EncodeError/DecodeError to the typed error it came from.
const (
	// CodeParse is a positioned SQL parse error (*sql.Error).
	CodeParse = "parse_error"
	// CodeUnknownTable / CodeUnknownColumn are the catalog sentinels.
	CodeUnknownTable  = "unknown_table"
	CodeUnknownColumn = "unknown_column"
	// CodeNoOracle: the query needs refreshes but the table has none.
	CodeNoOracle = "no_oracle"
	// CodeUnsupported: the statement parses but the service cannot run
	// it (GROUP BY on /query, a multi-statement /subscribe).
	CodeUnsupported = "unsupported"
	// CodeInvalid: malformed request (bad JSON, empty SQL, bad option).
	CodeInvalid = "invalid_request"
	// CodePrecisionUnmet / CodeBudgetExhausted are the typed partial
	// outcomes; responses carrying them still hold a sound answer.
	CodePrecisionUnmet  = "precision_unmet"
	CodeBudgetExhausted = "budget_exhausted"
	// CodeDeadline / CodeCanceled are bare context errors (a request cut
	// off before any answer existed).
	CodeDeadline = "deadline_exceeded"
	CodeCanceled = "canceled"
	// CodeOverCapacity: admission control rejected the request.
	CodeOverCapacity = "over_capacity"
	// CodeDraining / CodeClosed: the server is shutting down / the
	// engine is closed.
	CodeDraining = "draining"
	CodeClosed   = "closed"
	// CodeInternal is the catch-all.
	CodeInternal = "internal"
)

// WireError is a structured error on the wire.
type WireError struct {
	// Code is one of the Code* constants.
	Code string `json:"code"`
	// Message is the engine error's text.
	Message string `json:"message"`
	// Pos is the byte offset of a parse error into the request SQL.
	Pos *int `json:"pos,omitempty"`
	// Achieved, Spent and Budget carry the typed fields of
	// precision_unmet and budget_exhausted outcomes.
	Achieved *WireInterval `json:"achieved,omitempty"`
	Spent    *Float        `json:"spent,omitempty"`
	Budget   *Float        `json:"budget,omitempty"`
	// Cause distinguishes what cut a precision_unmet short:
	// "deadline_exceeded" or "canceled".
	Cause string `json:"cause,omitempty"`
}

// Error formats the wire error, so a *WireError can travel as an error.
func (e *WireError) Error() string {
	return fmt.Sprintf("server: %s: %s", e.Code, e.Message)
}

// EncodeError maps an engine error to its wire form; nil maps to nil.
func EncodeError(err error) *WireError {
	if err == nil {
		return nil
	}
	we := &WireError{Code: CodeInternal, Message: err.Error()}
	var (
		se     *sql.Error
		unmet  query.ErrPrecisionUnmet
		budget query.ErrBudgetExhausted
	)
	switch {
	case errors.As(err, &se):
		we.Code = CodeParse
		pos := se.Pos
		we.Pos = &pos
		we.Message = se.Msg
	case errors.As(err, &unmet):
		we.Code = CodePrecisionUnmet
		ach, spent := ToWire(unmet.Achieved), Float(unmet.Spent)
		we.Achieved, we.Spent = &ach, &spent
		we.Cause = CodeCanceled
		if errors.Is(unmet.Cause, context.DeadlineExceeded) {
			we.Cause = CodeDeadline
		}
	case errors.As(err, &budget):
		we.Code = CodeBudgetExhausted
		ach, spent, b := ToWire(budget.Achieved), Float(budget.Spent), Float(budget.Budget)
		we.Achieved, we.Spent, we.Budget = &ach, &spent, &b
	case errors.Is(err, query.ErrClosed):
		we.Code = CodeClosed
	case errors.Is(err, query.ErrUnknownTable):
		we.Code = CodeUnknownTable
	case errors.Is(err, query.ErrUnknownColumn):
		we.Code = CodeUnknownColumn
	case errors.Is(err, query.ErrNoOracle):
		we.Code = CodeNoOracle
	case errors.Is(err, context.DeadlineExceeded):
		we.Code = CodeDeadline
	case errors.Is(err, context.Canceled):
		we.Code = CodeCanceled
	}
	return we
}

// DecodeError reconstructs the typed engine error from its wire form,
// so remote callers can use errors.Is / errors.As exactly as embedded
// ones do; nil maps to nil. Codes without a typed engine counterpart
// decode to the *WireError itself.
func DecodeError(we *WireError) error {
	if we == nil {
		return nil
	}
	switch we.Code {
	case CodeParse:
		pos := 0
		if we.Pos != nil {
			pos = *we.Pos
		}
		return &sql.Error{Pos: pos, Msg: we.Message}
	case CodePrecisionUnmet:
		e := query.ErrPrecisionUnmet{Cause: context.Canceled}
		if we.Cause == CodeDeadline {
			e.Cause = context.DeadlineExceeded
		}
		if we.Achieved != nil {
			e.Achieved = we.Achieved.Interval()
		}
		if we.Spent != nil {
			e.Spent = float64(*we.Spent)
		}
		return e
	case CodeBudgetExhausted:
		var e query.ErrBudgetExhausted
		if we.Achieved != nil {
			e.Achieved = we.Achieved.Interval()
		}
		if we.Spent != nil {
			e.Spent = float64(*we.Spent)
		}
		if we.Budget != nil {
			e.Budget = float64(*we.Budget)
		}
		return e
	case CodeClosed:
		return query.ErrClosed
	case CodeUnknownTable:
		return fmt.Errorf("%w: %s", query.ErrUnknownTable, we.Message)
	case CodeUnknownColumn:
		return fmt.Errorf("%w: %s", query.ErrUnknownColumn, we.Message)
	case CodeNoOracle:
		return fmt.Errorf("%w: %s", query.ErrNoOracle, we.Message)
	case CodeDeadline:
		return context.DeadlineExceeded
	case CodeCanceled:
		return context.Canceled
	}
	return we
}

// HTTPStatus maps an error code to its HTTP status. Partial outcomes
// (precision_unmet, budget_exhausted) are 206: the response body still
// carries a sound best-effort answer.
func HTTPStatus(code string) int {
	switch code {
	case "":
		return 200
	case CodePrecisionUnmet, CodeBudgetExhausted:
		return 206
	case CodeParse, CodeUnsupported, CodeInvalid:
		return 400
	case CodeUnknownTable, CodeUnknownColumn:
		return 404
	case CodeNoOracle:
		return 422
	case CodeOverCapacity:
		return 429
	case CodeCanceled:
		return 499 // client closed request (nginx convention)
	case CodeDraining, CodeClosed:
		return 503
	case CodeDeadline:
		return 504
	}
	return 500
}

// ParseMode resolves a wire mode name; "" is ModeBounded.
func ParseMode(s string) (query.Mode, error) {
	switch strings.ToLower(s) {
	case "", "bounded":
		return query.ModeBounded, nil
	case "precise":
		return query.ModePrecise, nil
	case "imprecise":
		return query.ModeImprecise, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want bounded, precise or imprecise)", s)
}

// ParseSolver resolves a wire solver name.
func ParseSolver(s string) (refresh.Solver, error) {
	switch strings.ToLower(s) {
	case "auto":
		return refresh.Auto, nil
	case "exact-dp":
		return refresh.SolverExactDP, nil
	case "approx":
		return refresh.SolverApprox, nil
	case "greedy-uniform":
		return refresh.SolverGreedyUniform, nil
	case "greedy-density":
		return refresh.SolverGreedyDensity, nil
	}
	return 0, fmt.Errorf("unknown solver %q", s)
}

// SplitStatements splits a request's SQL on ';' into non-empty
// statements, returning each with its byte offset into the original
// text so parse-error positions can be reported against the full
// request. The dialect has no string literals, so splitting is textual.
func SplitStatements(src string) (stmts []string, offsets []int) {
	off := 0
	for {
		i := strings.IndexByte(src[off:], ';')
		var stmt string
		if i < 0 {
			stmt = src[off:]
		} else {
			stmt = src[off : off+i]
		}
		if strings.TrimSpace(stmt) != "" {
			stmts = append(stmts, stmt)
			offsets = append(offsets, off)
		}
		if i < 0 {
			return stmts, offsets
		}
		off += i + 1
	}
}
