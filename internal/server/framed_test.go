package server

// End-to-end tests for the persistent framed protocol: answers must
// match POST /query on the same system bit for bit, pipelined requests
// must all answer in order, malformed traffic must be answered with
// structured errors (or close the connection when the stream is
// undelimitable), and Shutdown must close live framed connections.

import (
	"bufio"
	"context"
	"encoding/binary"
	"net"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// dialTestFramed starts a framed listener on the test server and
// returns a connected socket with buffered endpoints.
func dialTestFramed(t *testing.T, srv *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	ln, err := srv.ListenAndServeFramed("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn)
}

// framedExchange sends one request and decodes the one response.
func framedExchange(t *testing.T, conn net.Conn, br *bufio.Reader, id uint32, req QueryRequest) QueryResponse {
	t.Helper()
	frame, err := AppendRequest(nil, id, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	payload, err := ReadFrame(br, &buf)
	if err != nil {
		t.Fatal(err)
	}
	gotID, resp, ferr := DecodeResponse(payload)
	if ferr != nil {
		t.Fatalf("decode response: %v", ferr)
	}
	if gotID != id {
		t.Fatalf("response id %d for request %d", gotID, id)
	}
	return resp
}

func TestFramedMatchesHTTPBitForBit(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	srv := New(sys, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	conn, br := dialTestFramed(t, srv)

	cases := []QueryRequest{
		{SQL: "SELECT SUM(value) FROM vals"},
		{SQL: "SELECT MIN(value) WITHIN 5 FROM vals"},
		{SQL: "SELECT AVG(value) WITHIN 2 FROM vals WHERE value > 100; SELECT COUNT(value) FROM vals"},
		{SQL: "SELECT MAX(value) FROM vals", Mode: "precise"},
		{SQL: "SELECT SUM(value) WITHIN 0.5 FROM vals", Budget: floatPtr(3)},
		{SQL: "SELECT BOGUS(value) FROM vals"},
		{SQL: "SELECT SUM(value) FROM missing"},
	}
	for i, req := range cases {
		_, viaHTTP := postQuery(t, ts.URL, req)
		viaFrame := framedExchange(t, conn, br, uint32(i+1), req)
		normalizeResponses(&viaHTTP, &viaFrame)
		if !reflect.DeepEqual(viaHTTP, viaFrame) {
			t.Errorf("case %d (%s):\n http %+v\nframe %+v", i, req.SQL, viaHTTP, viaFrame)
		}
	}
}

// normalizeResponses zeroes wall-clock fields before comparison.
func normalizeResponses(rs ...*QueryResponse) {
	for _, r := range rs {
		for i := range r.Results {
			r.Results[i].ChooseTimeNS = 0
		}
	}
}

func TestFramedPipelining(t *testing.T) {
	sys := buildSystem(t, 2, 4)
	srv := New(sys, Config{})
	conn, br := dialTestFramed(t, srv)

	// One write carrying a burst of requests; responses come back in
	// order, one per request.
	const n = 50
	var burst []byte
	var err error
	for i := 1; i <= n; i++ {
		sql := "SELECT SUM(value) FROM vals"
		if i%3 == 0 {
			sql = "SELECT MIN(value) WITHIN 5 FROM vals"
		}
		burst, err = AppendRequest(burst, uint32(i), QueryRequest{SQL: sql})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := conn.Write(burst); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := 1; i <= n; i++ {
		payload, err := ReadFrame(br, &buf)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		id, resp, ferr := DecodeResponse(payload)
		if ferr != nil {
			t.Fatalf("response %d: %v", i, ferr)
		}
		if id != uint32(i) {
			t.Fatalf("response %d carries id %d", i, id)
		}
		if resp.Error != nil || len(resp.Results) != 1 {
			t.Fatalf("response %d: err %+v, %d results", i, resp.Error, len(resp.Results))
		}
	}
	if srv.SnapshotMetrics().Requests < n {
		t.Error("framed requests not counted")
	}
}

func TestFramedMalformedTraffic(t *testing.T) {
	sys := buildSystem(t, 1, 2)
	srv := New(sys, Config{})

	t.Run("bad request body keeps the connection", func(t *testing.T) {
		conn, br := dialTestFramed(t, srv)
		// A request frame with an undefined flag bit: structured error,
		// connection survives.
		frame, err := AppendRequest(nil, 7, QueryRequest{SQL: "SELECT SUM(value) FROM vals"})
		if err != nil {
			t.Fatal(err)
		}
		frame[4+5] |= 0x80 // flags byte: offset 4 (len prefix) + 5 (type+id)
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
		var buf []byte
		payload, err := ReadFrame(br, &buf)
		if err != nil {
			t.Fatal(err)
		}
		_, resp, ferr := DecodeResponse(payload)
		if ferr != nil {
			t.Fatal(ferr)
		}
		if resp.Error == nil || resp.Error.Code != CodeInvalid {
			t.Fatalf("want invalid error, got %+v", resp)
		}
		// The connection still serves.
		if resp := framedExchange(t, conn, br, 8, QueryRequest{SQL: "SELECT SUM(value) FROM vals"}); resp.Error != nil {
			t.Fatalf("connection dead after recoverable error: %+v", resp.Error)
		}
	})

	t.Run("oversized frame closes the connection", func(t *testing.T) {
		conn, br := dialTestFramed(t, srv)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxFrameLen+1)
		if _, err := conn.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		var buf []byte
		payload, err := ReadFrame(br, &buf)
		if err == nil {
			// The server answers with a final error frame, then closes.
			if _, resp, ferr := DecodeResponse(payload); ferr != nil || resp.Error == nil {
				t.Fatalf("want final error frame, got ferr=%v resp=%+v", ferr, resp)
			}
			if _, err := ReadFrame(br, &buf); err == nil {
				t.Fatal("connection still open after framing violation")
			}
		}
	})
}

func TestFramedShutdownClosesConnections(t *testing.T) {
	sys := buildSystem(t, 1, 2)
	srv := New(sys, Config{})
	conn, br := dialTestFramed(t, srv)

	if resp := framedExchange(t, conn, br, 1, QueryRequest{SQL: "SELECT SUM(value) FROM vals"}); resp.Error != nil {
		t.Fatalf("pre-shutdown query failed: %+v", resp.Error)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The read loop unblocks and the socket closes.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var buf []byte
	if _, err := ReadFrame(br, &buf); err == nil {
		t.Fatal("connection survived shutdown")
	}
	if got := srv.SnapshotMetrics().FramedConnections; got != 0 {
		// The close is asynchronous; give it a beat.
		time.Sleep(100 * time.Millisecond)
		if got = srv.SnapshotMetrics().FramedConnections; got != 0 {
			t.Fatalf("%d framed connections still gauged after shutdown", got)
		}
	}
}

// TestFramedLatencyCoversEveryFrame pins the framed histogram's
// coverage: one observation per frame, including frames whose request
// fails to decode — the server-side percentiles must account for codec
// work and error frames, not just successfully executed requests.
func TestFramedLatencyCoversEveryFrame(t *testing.T) {
	sys := buildSystem(t, 1, 2)
	srv := New(sys, Config{})
	conn, br := dialTestFramed(t, srv)

	if resp := framedExchange(t, conn, br, 1, QueryRequest{SQL: "SELECT SUM(value) FROM vals"}); resp.Error != nil {
		t.Fatalf("query failed: %+v", resp.Error)
	}
	// A request-typed frame with a truncated body: DecodeRequest fails,
	// the server answers an error frame and keeps the connection.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1)
	if _, err := conn.Write(append(hdr[:], FrameRequest)); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	payload, err := ReadFrame(br, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, resp, ferr := DecodeResponse(payload); ferr != nil || resp.Error == nil || resp.Error.Code != CodeInvalid {
		t.Fatalf("want invalid-error frame, got ferr=%v resp=%+v", ferr, resp)
	}
	if got := srv.SnapshotMetrics().FramedLatency.Count; got != 2 {
		t.Fatalf("framed latency observed %d frames, want 2 (good + undecodable)", got)
	}
}
