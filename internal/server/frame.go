package server

// Binary frame codec for the persistent wire protocol (DESIGN.md §13).
//
// A frame is a 4-byte big-endian payload length followed by the payload;
// the payload's first byte is the frame type. Requests and responses are
// fixed-layout binary: intervals and costs travel as raw IEEE-754 bits
// (bit-exact by construction, no float formatting or parsing anywhere on
// the path), strings are length-prefixed, and optional fields are
// declared by flag bits. Encoding appends into caller-owned buffers —
// the encoder itself never allocates — and decoding is strict and
// canonical: every accepted payload re-encodes to exactly the same
// bytes (the FuzzDecodeFrame invariant), every rejection is a typed
// *FrameError, and no input can panic the decoder. Strictness is what
// buys canonicality: redundant encodings (undefined flag bits, a
// zero deadline with its flag set, non-minimal trailing bytes) are
// rejected rather than normalized.
//
// Traces do not travel over frames: EXPLAIN ANALYZE and the trace flag
// are HTTP-only (span trees are deep JSON; the framed path exists to
// avoid exactly that).

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Frame layout constants.
const (
	// MaxFrameLen bounds a frame payload, mirroring the HTTP body cap.
	MaxFrameLen = 1 << 20

	// FrameRequest and FrameResponse are the payload type bytes.
	FrameRequest  byte = 0x01
	FrameResponse byte = 0x02
)

// Request flag bits.
const (
	reqFlagDeadline byte = 1 << 0
	reqFlagBudget   byte = 1 << 1
	reqFlagMode     byte = 1 << 2
	reqFlagSolver   byte = 1 << 3
	reqFlagsKnown        = reqFlagDeadline | reqFlagBudget | reqFlagMode | reqFlagSolver
)

// Error-record field-mask bits.
const (
	errFieldPos      byte = 1 << 0
	errFieldAchieved byte = 1 << 1
	errFieldSpent    byte = 1 << 2
	errFieldBudget   byte = 1 << 3
	errFieldCause    byte = 1 << 4
	errFieldsKnown        = errFieldPos | errFieldAchieved | errFieldSpent | errFieldBudget | errFieldCause
)

// FrameError is the structured decode failure: every malformed input is
// rejected with one (never a panic), positioned at the payload offset
// where decoding failed.
type FrameError struct {
	Offset int
	Msg    string
}

func (e *FrameError) Error() string {
	return fmt.Sprintf("frame: %s (at payload offset %d)", e.Msg, e.Offset)
}

// frameCodes maps wire error codes to their frame enum bytes (and back
// via frameCodeNames). The set is closed: EncodeError only produces
// these, and the decoder rejects bytes outside the table.
var frameCodes = map[string]byte{
	CodeParse:           1,
	CodeUnknownTable:    2,
	CodeUnknownColumn:   3,
	CodeNoOracle:        4,
	CodeUnsupported:     5,
	CodeInvalid:         6,
	CodePrecisionUnmet:  7,
	CodeBudgetExhausted: 8,
	CodeDeadline:        9,
	CodeCanceled:        10,
	CodeOverCapacity:    11,
	CodeDraining:        12,
	CodeClosed:          13,
	CodeInternal:        14,
}

var frameCodeNames = func() map[byte]string {
	m := make(map[byte]string, len(frameCodes))
	for name, b := range frameCodes {
		m[b] = name
	}
	return m
}()

// Mode enum bytes (1-based; 0 is reserved as invalid).
var frameModes = map[string]byte{"bounded": 1, "precise": 2, "imprecise": 3}
var frameModeNames = map[byte]string{1: "bounded", 2: "precise", 3: "imprecise"}

// Solver enum bytes.
var frameSolvers = map[string]byte{
	"auto": 1, "exact-dp": 2, "approx": 3, "greedy-uniform": 4, "greedy-density": 5,
}
var frameSolverNames = map[byte]string{
	1: "auto", 2: "exact-dp", 3: "approx", 4: "greedy-uniform", 5: "greedy-density",
}

// ---------------------------------------------------------------------
// Encoding. All Append* helpers grow dst in place and never allocate
// beyond the slice growth the caller's buffer amortizes away.

func appendU16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

// appendF64 appends a float64 as its raw IEEE-754 bits — the zero-alloc
// interval encoder (compare Float.MarshalJSON, which formats and
// allocates per field and needs a parse on the other side).
func appendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

// finishFrame back-fills the 4-byte length prefix reserved at start.
func finishFrame(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// AppendRequest appends one framed query request to dst and returns the
// extended slice. Unencodable requests (trace flags, unknown mode or
// solver names, oversized SQL) return an error with dst unmodified.
func AppendRequest(dst []byte, id uint32, req QueryRequest) ([]byte, error) {
	if req.Trace {
		return dst, fmt.Errorf("frame: traces are not supported over the framed protocol")
	}
	var flags byte
	if req.DeadlineMillis != 0 {
		flags |= reqFlagDeadline
	}
	if req.Budget != nil {
		flags |= reqFlagBudget
	}
	var modeB, solverB byte
	if req.Mode != "" {
		b, ok := frameModes[req.Mode]
		if !ok {
			return dst, fmt.Errorf("frame: unknown mode %q", req.Mode)
		}
		flags |= reqFlagMode
		modeB = b
	}
	if req.Solver != "" {
		b, ok := frameSolvers[req.Solver]
		if !ok {
			return dst, fmt.Errorf("frame: unknown solver %q", req.Solver)
		}
		flags |= reqFlagSolver
		solverB = b
	}
	if len(req.SQL) > MaxFrameLen-64 {
		return dst, fmt.Errorf("frame: sql too large (%d bytes)", len(req.SQL))
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, FrameRequest)
	dst = appendU32(dst, id)
	dst = append(dst, flags)
	if flags&reqFlagDeadline != 0 {
		dst = appendU64(dst, uint64(req.DeadlineMillis))
	}
	if flags&reqFlagBudget != 0 {
		dst = appendF64(dst, float64(*req.Budget))
	}
	if flags&reqFlagMode != 0 {
		dst = append(dst, modeB)
	}
	if flags&reqFlagSolver != 0 {
		dst = append(dst, solverB)
	}
	dst = appendU32(dst, uint32(len(req.SQL)))
	dst = append(dst, req.SQL...)
	return finishFrame(dst, start), nil
}

// appendErrRecord appends one error record (shared by request-level and
// per-result errors).
func appendErrRecord(dst []byte, we *WireError) ([]byte, error) {
	code, ok := frameCodes[we.Code]
	if !ok {
		return dst, fmt.Errorf("frame: unknown error code %q", we.Code)
	}
	if len(we.Message) > math.MaxUint16 {
		return dst, fmt.Errorf("frame: error message too large (%d bytes)", len(we.Message))
	}
	var causeB byte
	var mask byte
	if we.Pos != nil {
		mask |= errFieldPos
	}
	if we.Achieved != nil {
		mask |= errFieldAchieved
	}
	if we.Spent != nil {
		mask |= errFieldSpent
	}
	if we.Budget != nil {
		mask |= errFieldBudget
	}
	if we.Cause != "" {
		b, ok := frameCodes[we.Cause]
		if !ok {
			return dst, fmt.Errorf("frame: unknown cause %q", we.Cause)
		}
		mask |= errFieldCause
		causeB = b
	}
	dst = append(dst, code)
	dst = appendU16(dst, uint16(len(we.Message)))
	dst = append(dst, we.Message...)
	dst = append(dst, mask)
	if mask&errFieldPos != 0 {
		dst = appendU32(dst, uint32(*we.Pos))
	}
	if mask&errFieldAchieved != 0 {
		dst = appendF64(dst, float64(we.Achieved.Lo))
		dst = appendF64(dst, float64(we.Achieved.Hi))
	}
	if mask&errFieldSpent != 0 {
		dst = appendF64(dst, float64(*we.Spent))
	}
	if mask&errFieldBudget != 0 {
		dst = appendF64(dst, float64(*we.Budget))
	}
	if mask&errFieldCause != 0 {
		dst = append(dst, causeB)
	}
	return dst, nil
}

// AppendResponse appends one framed query response to dst. Responses
// carrying traces are unencodable (the framed path never produces them).
func AppendResponse(dst []byte, id uint32, resp QueryResponse) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, FrameResponse)
	dst = appendU32(dst, id)
	if resp.Error != nil {
		dst = append(dst, 1)
		var err error
		dst, err = appendErrRecord(dst, resp.Error)
		if err != nil {
			return dst[:start], err
		}
		return finishFrame(dst, start), nil
	}
	if len(resp.Results) > math.MaxUint16 {
		return dst[:start], fmt.Errorf("frame: too many results (%d)", len(resp.Results))
	}
	dst = append(dst, 0)
	dst = appendU16(dst, uint16(len(resp.Results)))
	for i := range resp.Results {
		r := &resp.Results[i]
		if r.Trace != nil {
			return dst[:start], fmt.Errorf("frame: traces are not supported over the framed protocol")
		}
		dst = appendF64(dst, float64(r.Answer.Lo))
		dst = appendF64(dst, float64(r.Answer.Hi))
		dst = appendF64(dst, float64(r.Initial.Lo))
		dst = appendF64(dst, float64(r.Initial.Hi))
		dst = appendU32(dst, uint32(r.Refreshed))
		dst = appendF64(dst, float64(r.RefreshCost))
		if r.Met {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendU64(dst, uint64(r.ChooseTimeNS))
		if r.Error != nil {
			dst = append(dst, 1)
			var err error
			dst, err = appendErrRecord(dst, r.Error)
			if err != nil {
				return dst[:start], err
			}
		} else {
			dst = append(dst, 0)
		}
	}
	if resp.BudgetRemaining != nil {
		dst = append(dst, 1)
		dst = appendF64(dst, float64(*resp.BudgetRemaining))
	} else {
		dst = append(dst, 0)
	}
	return finishFrame(dst, start), nil
}

// ---------------------------------------------------------------------
// Decoding.

// frameReader walks a payload with bounds-checked reads.
type frameReader struct {
	b   []byte
	off int
}

func (r *frameReader) fail(msg string) *FrameError { return &FrameError{Offset: r.off, Msg: msg} }

func (r *frameReader) u8(what string) (byte, *FrameError) {
	if r.off+1 > len(r.b) {
		return 0, r.fail("truncated " + what)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *frameReader) u16(what string) (uint16, *FrameError) {
	if r.off+2 > len(r.b) {
		return 0, r.fail("truncated " + what)
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *frameReader) u32(what string) (uint32, *FrameError) {
	if r.off+4 > len(r.b) {
		return 0, r.fail("truncated " + what)
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *frameReader) u64(what string) (uint64, *FrameError) {
	if r.off+8 > len(r.b) {
		return 0, r.fail("truncated " + what)
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *frameReader) f64(what string) (float64, *FrameError) {
	v, err := r.u64(what)
	return math.Float64frombits(v), err
}

func (r *frameReader) bytes(n int, what string) ([]byte, *FrameError) {
	if n < 0 || r.off+n > len(r.b) {
		return nil, r.fail("truncated " + what)
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v, nil
}

func (r *frameReader) done() *FrameError {
	if r.off != len(r.b) {
		return r.fail(fmt.Sprintf("%d trailing bytes", len(r.b)-r.off))
	}
	return nil
}

// DecodeRequest decodes a request payload (type byte included).
func DecodeRequest(payload []byte) (id uint32, req QueryRequest, ferr *FrameError) {
	r := &frameReader{b: payload}
	t, ferr := r.u8("frame type")
	if ferr != nil {
		return 0, req, ferr
	}
	if t != FrameRequest {
		return 0, req, r.fail(fmt.Sprintf("unexpected frame type 0x%02x", t))
	}
	if id, ferr = r.u32("request id"); ferr != nil {
		return 0, req, ferr
	}
	flags, ferr := r.u8("flags")
	if ferr != nil {
		return id, req, ferr
	}
	if flags&^reqFlagsKnown != 0 {
		return id, req, r.fail(fmt.Sprintf("undefined flag bits 0x%02x", flags&^reqFlagsKnown))
	}
	if flags&reqFlagDeadline != 0 {
		v, err := r.u64("deadline")
		if err != nil {
			return id, req, err
		}
		req.DeadlineMillis = int64(v)
		if req.DeadlineMillis == 0 {
			return id, req, r.fail("deadline flag set with zero deadline")
		}
	}
	if flags&reqFlagBudget != 0 {
		v, err := r.f64("budget")
		if err != nil {
			return id, req, err
		}
		b := Float(v)
		req.Budget = &b
	}
	if flags&reqFlagMode != 0 {
		b, err := r.u8("mode")
		if err != nil {
			return id, req, err
		}
		name, ok := frameModeNames[b]
		if !ok {
			return id, req, r.fail(fmt.Sprintf("unknown mode byte 0x%02x", b))
		}
		req.Mode = name
	}
	if flags&reqFlagSolver != 0 {
		b, err := r.u8("solver")
		if err != nil {
			return id, req, err
		}
		name, ok := frameSolverNames[b]
		if !ok {
			return id, req, r.fail(fmt.Sprintf("unknown solver byte 0x%02x", b))
		}
		req.Solver = name
	}
	n, ferr := r.u32("sql length")
	if ferr != nil {
		return id, req, ferr
	}
	sql, ferr := r.bytes(int(n), "sql")
	if ferr != nil {
		return id, req, ferr
	}
	req.SQL = string(sql)
	if ferr = r.done(); ferr != nil {
		return id, req, ferr
	}
	return id, req, nil
}

// decodeErrRecord decodes one error record.
func decodeErrRecord(r *frameReader) (*WireError, *FrameError) {
	code, ferr := r.u8("error code")
	if ferr != nil {
		return nil, ferr
	}
	name, ok := frameCodeNames[code]
	if !ok {
		return nil, r.fail(fmt.Sprintf("unknown error code byte 0x%02x", code))
	}
	n, ferr := r.u16("error message length")
	if ferr != nil {
		return nil, ferr
	}
	msg, ferr := r.bytes(int(n), "error message")
	if ferr != nil {
		return nil, ferr
	}
	we := &WireError{Code: name, Message: string(msg)}
	mask, ferr := r.u8("error field mask")
	if ferr != nil {
		return nil, ferr
	}
	if mask&^errFieldsKnown != 0 {
		return nil, r.fail(fmt.Sprintf("undefined error field bits 0x%02x", mask&^errFieldsKnown))
	}
	if mask&errFieldPos != 0 {
		v, err := r.u32("error position")
		if err != nil {
			return nil, err
		}
		pos := int(v)
		we.Pos = &pos
	}
	if mask&errFieldAchieved != 0 {
		lo, err := r.f64("achieved lo")
		if err != nil {
			return nil, err
		}
		hi, err := r.f64("achieved hi")
		if err != nil {
			return nil, err
		}
		we.Achieved = &WireInterval{Lo: Float(lo), Hi: Float(hi)}
	}
	if mask&errFieldSpent != 0 {
		v, err := r.f64("spent")
		if err != nil {
			return nil, err
		}
		f := Float(v)
		we.Spent = &f
	}
	if mask&errFieldBudget != 0 {
		v, err := r.f64("budget")
		if err != nil {
			return nil, err
		}
		f := Float(v)
		we.Budget = &f
	}
	if mask&errFieldCause != 0 {
		b, err := r.u8("cause")
		if err != nil {
			return nil, err
		}
		cause, ok := frameCodeNames[b]
		if !ok {
			return nil, r.fail(fmt.Sprintf("unknown cause byte 0x%02x", b))
		}
		we.Cause = cause
	}
	return we, nil
}

// DecodeResponse decodes a response payload (type byte included).
func DecodeResponse(payload []byte) (id uint32, resp QueryResponse, ferr *FrameError) {
	r := &frameReader{b: payload}
	t, ferr := r.u8("frame type")
	if ferr != nil {
		return 0, resp, ferr
	}
	if t != FrameResponse {
		return 0, resp, r.fail(fmt.Sprintf("unexpected frame type 0x%02x", t))
	}
	if id, ferr = r.u32("response id"); ferr != nil {
		return 0, resp, ferr
	}
	kind, ferr := r.u8("response kind")
	if ferr != nil {
		return id, resp, ferr
	}
	switch kind {
	case 1:
		we, err := decodeErrRecord(r)
		if err != nil {
			return id, resp, err
		}
		resp.Error = we
		if err := r.done(); err != nil {
			return id, resp, err
		}
		return id, resp, nil
	case 0:
	default:
		return id, resp, r.fail(fmt.Sprintf("unknown response kind 0x%02x", kind))
	}
	n, ferr := r.u16("result count")
	if ferr != nil {
		return id, resp, ferr
	}
	// A result needs ≥ 46 bytes; pre-check so a hostile count cannot
	// force a huge allocation before the truncation is noticed.
	if int(n)*46 > len(r.b)-r.off {
		return id, resp, r.fail("result count exceeds payload")
	}
	if n > 0 {
		resp.Results = make([]WireResult, 0, n)
	}
	for i := 0; i < int(n); i++ {
		var w WireResult
		fields := []struct {
			dst  *Float
			what string
		}{
			{&w.Answer.Lo, "answer lo"}, {&w.Answer.Hi, "answer hi"},
			{&w.Initial.Lo, "initial lo"}, {&w.Initial.Hi, "initial hi"},
		}
		for _, f := range fields {
			v, err := r.f64(f.what)
			if err != nil {
				return id, resp, err
			}
			*f.dst = Float(v)
		}
		refreshed, err := r.u32("refreshed")
		if err != nil {
			return id, resp, err
		}
		w.Refreshed = int(refreshed)
		cost, err := r.f64("refresh cost")
		if err != nil {
			return id, resp, err
		}
		w.RefreshCost = Float(cost)
		met, err := r.u8("met")
		if err != nil {
			return id, resp, err
		}
		if met > 1 {
			return id, resp, r.fail(fmt.Sprintf("non-boolean met byte 0x%02x", met))
		}
		w.Met = met == 1
		chooseNS, err := r.u64("choose time")
		if err != nil {
			return id, resp, err
		}
		w.ChooseTimeNS = int64(chooseNS)
		hasErr, err := r.u8("result error flag")
		if err != nil {
			return id, resp, err
		}
		if hasErr > 1 {
			return id, resp, r.fail(fmt.Sprintf("non-boolean error flag 0x%02x", hasErr))
		}
		if hasErr == 1 {
			we, err := decodeErrRecord(r)
			if err != nil {
				return id, resp, err
			}
			w.Error = we
		}
		resp.Results = append(resp.Results, w)
	}
	hasBudget, ferr := r.u8("budget flag")
	if ferr != nil {
		return id, resp, ferr
	}
	if hasBudget > 1 {
		return id, resp, r.fail(fmt.Sprintf("non-boolean budget flag 0x%02x", hasBudget))
	}
	if hasBudget == 1 {
		v, err := r.f64("budget remaining")
		if err != nil {
			return id, resp, err
		}
		f := Float(v)
		resp.BudgetRemaining = &f
	}
	if ferr = r.done(); ferr != nil {
		return id, resp, ferr
	}
	return id, resp, nil
}

// ReadFrame reads one length-prefixed frame payload from br into buf
// (reused and grown as needed), returning the payload slice. io.EOF is
// returned untouched at a clean frame boundary; a *FrameError marks an
// unrecoverable framing violation (the connection must close, since the
// byte stream can no longer be delimited).
func ReadFrame(br io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, &FrameError{Msg: "empty frame"}
	}
	if n > MaxFrameLen {
		return nil, &FrameError{Msg: fmt.Sprintf("frame of %d bytes exceeds cap %d", n, MaxFrameLen)}
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	p := (*buf)[:n]
	if _, err := io.ReadFull(br, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return p, nil
}
