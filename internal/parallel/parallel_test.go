package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestGroupRunsAllTasks(t *testing.T) {
	var n atomic.Int64
	g := NewGroup(4)
	for i := 0; i < 100; i++ {
		g.Go(func() error {
			n.Add(1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestGroupReportsFirstError(t *testing.T) {
	boom := errors.New("boom")
	var g Group
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() error {
			if i == 7 {
				return boom
			}
			return nil
		})
	}
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want %v", err, boom)
	}
}

func TestGroupLimitBoundsConcurrency(t *testing.T) {
	const limit = 3
	var inFlight, peak atomic.Int64
	g := NewGroup(limit)
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			inFlight.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if peak.Load() > limit {
		t.Fatalf("peak concurrency %d exceeds limit %d", peak.Load(), limit)
	}
}

func TestForEachChunkCoversRangeExactlyOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {7, 1}, {7, 3}, {100, 8}, {5, 100}, {64, 0},
	} {
		seen := make([]atomic.Int32, tc.n)
		chunks := make([]atomic.Int32, NumChunks(tc.n, tc.workers))
		ForEachChunk(tc.n, tc.workers, func(c, lo, hi int) {
			chunks[c].Add(1)
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d workers=%d: index %d visited %d times", tc.n, tc.workers, i, got)
			}
		}
		for c := range chunks {
			if got := chunks[c].Load(); got != 1 {
				t.Fatalf("n=%d workers=%d: chunk %d ran %d times", tc.n, tc.workers, c, got)
			}
		}
	}
}

func TestWorkersDefaultsPositive(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", Workers(0))
	}
	if Workers(5) != 5 {
		t.Fatalf("Workers(5) = %d", Workers(5))
	}
}
