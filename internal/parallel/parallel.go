// Package parallel provides the small, dependency-free concurrency
// primitives the TRAPP engine builds on: an errgroup-style Group for
// fanning work out to goroutines and collecting the first error, and a
// chunked parallel-for over index ranges for data-parallel scans.
//
// The package exists so that the refresh fan-out (one goroutine per data
// source) and the parallel aggregation scans share one tested
// coordination idiom without pulling in golang.org/x/sync.
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// IsContextError reports whether err is a context cancellation or
// deadline expiry (possibly wrapped). Fan-out callers use it to
// distinguish a caller-requested cutoff — whose partial results are
// kept — from hard failures.
func IsContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Group runs a set of goroutines and waits for them; the first non-nil
// error returned by any task is reported by Wait. The zero value is
// ready to use and places no limit on concurrency.
type Group struct {
	wg   sync.WaitGroup
	sem  chan struct{}
	once sync.Once
	err  error
}

// NewGroup returns a group that runs at most limit tasks concurrently;
// limit <= 0 means no limit.
func NewGroup(limit int) *Group {
	g := &Group{}
	if limit > 0 {
		g.sem = make(chan struct{}, limit)
	}
	return g
}

// Go starts fn in its own goroutine, blocking first if the group's
// concurrency limit is reached.
func (g *Group) Go(fn func() error) {
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer func() {
			if g.sem != nil {
				<-g.sem
			}
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.once.Do(func() { g.err = err })
		}
	}()
}

// Wait blocks until every task started with Go has returned, then
// reports the first error observed (or nil).
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}

// Workers normalizes a requested worker count: n <= 0 selects
// GOMAXPROCS, anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// chunkSize returns the per-chunk length ForEachChunk uses for the
// index range [0, n) across the (normalized) worker count.
func chunkSize(n, workers int) int {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return (n + workers - 1) / workers
}

// NumChunks returns how many chunks ForEachChunk will produce for the
// same arguments — callers use it to size per-chunk result slices.
func NumChunks(n, workers int) int {
	if n <= 0 {
		return 0
	}
	c := chunkSize(n, workers)
	return (n + c - 1) / c
}

// ForEachChunk splits the index range [0, n) into NumChunks(n, workers)
// contiguous chunks and calls fn(chunk, lo, hi) for each on its own
// goroutine, waiting for all of them. chunk is the 0-based chunk index,
// so callers can write per-chunk results without sharing. With
// workers <= 1 (or n small enough to fit one chunk) fn runs inline on
// the calling goroutine, so callers need no separate serial path.
func ForEachChunk(n, workers int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	size := chunkSize(n, workers)
	if size >= n {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for c, lo := 0, 0; lo < n; c, lo = c+1, lo+size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			fn(c, lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
}
