// Package boundfn implements the time-varying bound functions that TRAPP
// sources attach to refreshed values (paper section 3.2 and Appendix A).
//
// At refresh time Tr a source sends the current master value V(Tr) together
// with a bound whose endpoints are functions of time:
//
//	L(T) = V(Tr) − W·f(T−Tr)
//	H(T) = V(Tr) + W·f(T−Tr)
//
// where f is a monotonically increasing shape with f(0) = 0 and W ≥ 0 is a
// per-object width parameter chosen at run time. At refresh time the bound
// has zero width and both endpoints equal the refreshed value; as time
// advances the endpoints diverge so the bound keeps containing the master
// value with high probability. In the absence of information about update
// behaviour, a random-walk argument (Appendix A) yields f(T) = √T, which is
// the package default.
//
// The package also provides the adaptive width controller sketched in
// Appendix A: the width parameter W is increased every time a
// value-initiated refresh occurs (the bound proved too narrow) and decreased
// every time a query-initiated refresh occurs (the bound proved too wide).
package boundfn

import (
	"fmt"
	"math"

	"trapp/internal/interval"
)

// Shape is a monotonically increasing bound-growth shape with Shape(0) = 0.
// Elapsed time is measured in abstract ticks; negative elapsed time is
// treated as zero so a bound evaluated "before" its refresh is a point.
type Shape interface {
	// Eval returns the shape value at elapsed time dt ≥ 0.
	Eval(dt float64) float64
	// Name identifies the shape in reports.
	Name() string
}

// SqrtShape is the paper's default √T shape, derived from modelling the
// data value as a one-dimensional random walk: after T steps the walk's
// standard deviation grows proportionally to √T, so a bound proportional to
// √T contains the value with fixed probability (Chebyshev's inequality).
type SqrtShape struct{}

// Eval returns √dt (0 for negative dt).
func (SqrtShape) Eval(dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	return math.Sqrt(dt)
}

// Name returns "sqrt".
func (SqrtShape) Name() string { return "sqrt" }

// LinearShape grows the bound linearly with elapsed time, appropriate when
// the value drifts at a roughly constant rate (e.g. a counter).
type LinearShape struct{}

// Eval returns dt (0 for negative dt).
func (LinearShape) Eval(dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	return dt
}

// Name returns "linear".
func (LinearShape) Name() string { return "linear" }

// ConstantShape yields a fixed-width bound immediately after refresh, the
// static policy used by Quasi-copies-style systems; included as a baseline
// for the Appendix A ablation experiment.
type ConstantShape struct{}

// Eval returns 1 for any positive dt and 0 at dt = 0 (the bound snaps open
// one tick after refresh).
func (ConstantShape) Eval(dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	return 1
}

// Name returns "constant".
func (ConstantShape) Name() string { return "constant" }

// LogShape grows with log(1+dt), for values whose volatility decays; kept
// for experimentation with specialized update patterns (paper section 8.3).
type LogShape struct{}

// Eval returns log(1+dt) (0 for negative dt).
func (LogShape) Eval(dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	return math.Log1p(dt)
}

// Name returns "log".
func (LogShape) Name() string { return "log" }

// Bound is an instantiated pair of bound functions for one data object: the
// value and width transmitted at refresh time plus the shape. A Bound can
// be encoded in two numbers (V and W) plus the refresh time, exactly the
// compressed representation discussed in Appendix A.
type Bound struct {
	// Value is the exact master value V(Tr) sent at refresh time.
	Value float64
	// Width is the width parameter W ≥ 0.
	Width float64
	// RefreshedAt is the refresh time Tr in ticks.
	RefreshedAt int64
	// Shape determines how the bound grows; nil means SqrtShape.
	Shape Shape
}

// shape returns the configured shape, defaulting to √T.
func (b Bound) shape() Shape {
	if b.Shape == nil {
		return SqrtShape{}
	}
	return b.Shape
}

// At evaluates the bound at time now, returning the interval
// [V − W·f(now−Tr), V + W·f(now−Tr)]. A non-finite half-width (an
// overflowed width parameter times a zero shape value is NaN) degrades to
// Unbounded — complete ignorance — which is sound: the master value is
// certainly inside it.
func (b Bound) At(now int64) interval.Interval {
	dt := float64(now - b.RefreshedAt)
	d := b.Width * b.shape().Eval(dt)
	if math.IsNaN(d) {
		return interval.Unbounded
	}
	return interval.Interval{Lo: b.Value - d, Hi: b.Value + d}
}

// Contains reports whether value v lies within the bound at time now.
func (b Bound) Contains(now int64, v float64) bool {
	return b.At(now).Contains(v)
}

// String renders the bound for diagnostics.
func (b Bound) String() string {
	return fmt.Sprintf("bound{V=%g W=%g Tr=%d shape=%s}", b.Value, b.Width, b.RefreshedAt, b.shape().Name())
}

// WidthPolicy chooses the width parameter W for the next bound sent by a
// source, and observes refresh events to adapt.
type WidthPolicy interface {
	// NextWidth returns the width parameter for a new bound on the object.
	NextWidth() float64
	// ObserveValueRefresh notes that a value-initiated refresh occurred:
	// the master value escaped the bound, a signal it was too narrow.
	ObserveValueRefresh()
	// ObserveQueryRefresh notes that a query-initiated refresh occurred: a
	// query had to pay to refresh the object, a signal the bound was too
	// wide.
	ObserveQueryRefresh()
}

// DemandObserver is an optional WidthPolicy extension consumed by the
// continuous-query engine's shared refresh scheduler. When one paid
// query-initiated refresh of an object satisfies several standing
// queries at once, the per-refresh ObserveQueryRefresh signal
// under-represents how much query demand the object really has: in a
// per-query world each of those queries would have paid (and narrowed
// the bound) separately. ObserveDemand passes the number of
// subscriptions the shared refresh served so the policy can converge the
// width to the object's aggregate demand rather than to the demand of a
// single query stream.
type DemandObserver interface {
	// ObserveDemand notes that one query-initiated refresh of the object
	// satisfied subscribers standing queries (subscribers ≥ 1; 1 carries
	// no extra information beyond ObserveQueryRefresh).
	ObserveDemand(subscribers int)
}

// StaticWidth is a WidthPolicy that always returns the same width. It is
// the Quasi-copies-style baseline in which an administrator fixes bounds
// statically.
type StaticWidth float64

// NextWidth returns the fixed width.
func (w StaticWidth) NextWidth() float64 { return float64(w) }

// ObserveValueRefresh is a no-op for the static policy.
func (StaticWidth) ObserveValueRefresh() {}

// ObserveQueryRefresh is a no-op for the static policy.
func (StaticWidth) ObserveQueryRefresh() {}

// AdaptiveWidth implements the Appendix A adaptive strategy: start with
// some width, multiply it by Grow (> 1) after each value-initiated refresh
// and by Shrink (< 1) after each query-initiated refresh, clamping to
// [Min, Max]. The controller seeks a middle ground between bounds so wide
// they are useless to queries and bounds so narrow that value-initiated
// refreshes fire constantly.
type AdaptiveWidth struct {
	// W is the current width parameter.
	W float64
	// Grow is the multiplicative increase applied on value-initiated
	// refreshes; must be > 1. Zero means the default 2.
	Grow float64
	// Shrink is the multiplicative decrease applied on query-initiated
	// refreshes; must be in (0, 1). Zero means the default 0.7.
	Shrink float64
	// Min and Max clamp W. Zero Max means no upper clamp; Min defaults to
	// a small positive floor so the bound never degenerates permanently.
	Min, Max float64

	valueRefreshes int64
	queryRefreshes int64
	demandHold     int64 // growth steps suppressed by standing demand
}

// NewAdaptiveWidth returns an adaptive controller starting at width w with
// the default gains.
func NewAdaptiveWidth(w float64) *AdaptiveWidth {
	return &AdaptiveWidth{W: w}
}

func (a *AdaptiveWidth) grow() float64 {
	if a.Grow <= 1 {
		return 2
	}
	return a.Grow
}

func (a *AdaptiveWidth) shrink() float64 {
	if a.Shrink <= 0 || a.Shrink >= 1 {
		return 0.7
	}
	return a.Shrink
}

func (a *AdaptiveWidth) clamp() {
	min := a.Min
	if min <= 0 {
		min = 1e-6
	}
	if a.W < min {
		a.W = min
	}
	max := a.Max
	if max <= 0 {
		// No configured upper clamp still guards against float overflow: a
		// width that reached +Inf would evaluate to NaN bounds at dt = 0.
		max = math.MaxFloat64 / 4
	}
	if a.W > max {
		a.W = max
	}
}

// NextWidth returns the current width parameter.
func (a *AdaptiveWidth) NextWidth() float64 {
	a.clamp()
	return a.W
}

// ObserveValueRefresh widens the next bound — unless standing-query
// demand is holding the bound narrow (see ObserveDemand), in which case
// the growth step is consumed from the hold instead.
func (a *AdaptiveWidth) ObserveValueRefresh() {
	a.valueRefreshes++
	if a.demandHold > 0 {
		a.demandHold--
	} else {
		a.W *= a.grow()
	}
	a.clamp()
}

// ObserveQueryRefresh narrows the next bound.
func (a *AdaptiveWidth) ObserveQueryRefresh() {
	a.queryRefreshes++
	a.W *= a.shrink()
	a.clamp()
}

// demandHoldCap bounds how many growth steps a single shared refresh
// can suppress, so an object whose standing demand disappears regains
// adaptive width after at most this many value-initiated refreshes.
// demandShrinkCap likewise bounds the extra shrink steps one shared
// refresh can apply.
const (
	demandHoldCap   = 64
	demandShrinkCap = 16
)

// ObserveDemand implements DemandObserver with two effects, both
// following from the same observation: an object under standing demand
// from n subscribers is effectively queried every tick, and in a
// per-query world each of those queries would have paid its own
// refresh and narrowed the bound. First, the shrink the absent
// duplicate refreshes would have exerted — one step per additional
// subscriber, capped at demandShrinkCap — which under sustained demand
// drives the width toward its floor: the cost-optimal protocol for a
// continuously watched object is a near-zero-width bound maintained by
// one source push per real change, instead of repeated query-initiated
// repairs of √T growth. Second, a growth hold: the next
// min(n, demandHoldCap) value-initiated refreshes do not widen the
// bound. The hold decays with each escape, so objects whose demand
// fades return to the plain Appendix A dynamics.
func (a *AdaptiveWidth) ObserveDemand(subscribers int) {
	steps := subscribers - 1
	if steps > demandShrinkCap {
		steps = demandShrinkCap
	}
	for i := 0; i < steps; i++ {
		a.W *= a.shrink()
	}
	hold := int64(subscribers)
	if hold > demandHoldCap {
		hold = demandHoldCap
	}
	if hold > a.demandHold {
		a.demandHold = hold
	}
	a.clamp()
}

// Counts returns the number of value- and query-initiated refreshes
// observed, for the Appendix A experiments.
func (a *AdaptiveWidth) Counts() (valueRefreshes, queryRefreshes int64) {
	return a.valueRefreshes, a.queryRefreshes
}
