package boundfn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trapp/internal/interval"
)

func TestShapesZeroAtOrigin(t *testing.T) {
	shapes := []Shape{SqrtShape{}, LinearShape{}, ConstantShape{}, LogShape{}}
	for _, s := range shapes {
		if got := s.Eval(0); got != 0 {
			t.Errorf("%s.Eval(0) = %g, want 0", s.Name(), got)
		}
		if got := s.Eval(-5); got != 0 {
			t.Errorf("%s.Eval(-5) = %g, want 0", s.Name(), got)
		}
	}
}

func TestShapesMonotone(t *testing.T) {
	shapes := []Shape{SqrtShape{}, LinearShape{}, ConstantShape{}, LogShape{}}
	for _, s := range shapes {
		prev := 0.0
		for dt := 1.0; dt <= 1000; dt *= 2 {
			v := s.Eval(dt)
			if v < prev {
				t.Errorf("%s not monotone at dt=%g: %g < %g", s.Name(), dt, v, prev)
			}
			prev = v
		}
	}
}

func TestSqrtShapeValues(t *testing.T) {
	s := SqrtShape{}
	if got := s.Eval(4); got != 2 {
		t.Errorf("sqrt(4) = %g", got)
	}
	if got := s.Eval(9); got != 3 {
		t.Errorf("sqrt(9) = %g", got)
	}
}

func TestBoundZeroWidthAtRefresh(t *testing.T) {
	b := Bound{Value: 42, Width: 3, RefreshedAt: 100}
	iv := b.At(100)
	if !iv.IsPoint() || iv.Lo != 42 {
		t.Errorf("bound at refresh time = %v, want [42]", iv)
	}
}

func TestBoundGrowth(t *testing.T) {
	b := Bound{Value: 10, Width: 2, RefreshedAt: 0}
	iv := b.At(16) // sqrt(16)=4, so ±8
	want := interval.New(2, 18)
	if !iv.ApproxEqual(want, 1e-12) {
		t.Errorf("bound at 16 = %v, want %v", iv, want)
	}
}

func TestBoundDefaultShapeIsSqrt(t *testing.T) {
	b := Bound{Value: 0, Width: 1, RefreshedAt: 0}
	if got := b.At(25).Hi; math.Abs(got-5) > 1e-12 {
		t.Errorf("default shape Hi at t=25: %g, want 5", got)
	}
}

func TestBoundLinearShape(t *testing.T) {
	b := Bound{Value: 0, Width: 1, RefreshedAt: 0, Shape: LinearShape{}}
	if got := b.At(7).Hi; got != 7 {
		t.Errorf("linear Hi at t=7: %g", got)
	}
}

func TestBoundConstantShape(t *testing.T) {
	b := Bound{Value: 5, Width: 3, RefreshedAt: 0, Shape: ConstantShape{}}
	if got := b.At(1); !got.Equal(interval.New(2, 8)) {
		t.Errorf("constant shape at t=1: %v", got)
	}
	if got := b.At(1000); !got.Equal(interval.New(2, 8)) {
		t.Errorf("constant shape at t=1000: %v", got)
	}
}

func TestBoundContains(t *testing.T) {
	b := Bound{Value: 10, Width: 1, RefreshedAt: 0}
	if !b.Contains(4, 11.5) { // bound is [8, 12]
		t.Error("Contains(4, 11.5) = false")
	}
	if b.Contains(4, 13) {
		t.Error("Contains(4, 13) = true")
	}
}

func TestBoundBeforeRefreshIsPoint(t *testing.T) {
	b := Bound{Value: 7, Width: 5, RefreshedAt: 50}
	if got := b.At(10); !got.IsPoint() {
		t.Errorf("bound before refresh = %v, want point", got)
	}
}

func TestStaticWidth(t *testing.T) {
	var p WidthPolicy = StaticWidth(4)
	if p.NextWidth() != 4 {
		t.Error("static width wrong")
	}
	p.ObserveValueRefresh()
	p.ObserveQueryRefresh()
	if p.NextWidth() != 4 {
		t.Error("static width changed after observations")
	}
}

func TestAdaptiveWidthGrowsOnValueRefresh(t *testing.T) {
	a := NewAdaptiveWidth(1)
	a.ObserveValueRefresh()
	if a.NextWidth() != 2 {
		t.Errorf("width after value refresh = %g, want 2", a.NextWidth())
	}
	a.ObserveValueRefresh()
	if a.NextWidth() != 4 {
		t.Errorf("width after two value refreshes = %g, want 4", a.NextWidth())
	}
}

func TestAdaptiveWidthShrinksOnQueryRefresh(t *testing.T) {
	a := NewAdaptiveWidth(10)
	a.ObserveQueryRefresh()
	if got := a.NextWidth(); math.Abs(got-7) > 1e-12 {
		t.Errorf("width after query refresh = %g, want 7", got)
	}
}

func TestAdaptiveWidthClamps(t *testing.T) {
	a := &AdaptiveWidth{W: 1, Min: 0.5, Max: 3}
	for i := 0; i < 10; i++ {
		a.ObserveValueRefresh()
	}
	if a.NextWidth() != 3 {
		t.Errorf("width not clamped to Max: %g", a.NextWidth())
	}
	for i := 0; i < 50; i++ {
		a.ObserveQueryRefresh()
	}
	if a.NextWidth() != 0.5 {
		t.Errorf("width not clamped to Min: %g", a.NextWidth())
	}
}

func TestAdaptiveWidthCounts(t *testing.T) {
	a := NewAdaptiveWidth(1)
	a.ObserveValueRefresh()
	a.ObserveValueRefresh()
	a.ObserveQueryRefresh()
	v, q := a.Counts()
	if v != 2 || q != 1 {
		t.Errorf("counts = (%d, %d), want (2, 1)", v, q)
	}
}

func TestAdaptiveWidthCustomGains(t *testing.T) {
	a := &AdaptiveWidth{W: 8, Grow: 1.5, Shrink: 0.5}
	a.ObserveQueryRefresh()
	if a.NextWidth() != 4 {
		t.Errorf("custom shrink: %g, want 4", a.NextWidth())
	}
	a.ObserveValueRefresh()
	if a.NextWidth() != 6 {
		t.Errorf("custom grow: %g, want 6", a.NextWidth())
	}
}

func TestAdaptiveWidthDefaultsOnBadGains(t *testing.T) {
	a := &AdaptiveWidth{W: 1, Grow: 0.5, Shrink: 5} // invalid, fall back
	a.ObserveValueRefresh()
	if a.NextWidth() != 2 {
		t.Errorf("invalid Grow not defaulted: %g", a.NextWidth())
	}
	a.ObserveQueryRefresh()
	if got := a.NextWidth(); math.Abs(got-1.4) > 1e-12 {
		t.Errorf("invalid Shrink not defaulted: %g", got)
	}
}

// TestQuickBoundAlwaysContainsRefreshValue: at any time at or after refresh,
// the bound must contain the refreshed value (it only grows outward).
func TestQuickBoundContainsRefreshValue(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := Bound{
			Value:       r.Float64()*200 - 100,
			Width:       r.Float64() * 10,
			RefreshedAt: int64(r.Intn(1000)),
		}
		for i := 0; i < 20; i++ {
			now := b.RefreshedAt + int64(r.Intn(10000))
			if !b.Contains(now, b.Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickBoundWidthMonotone: bound width is non-decreasing in time for
// every shape.
func TestQuickBoundWidthMonotone(t *testing.T) {
	shapes := []Shape{SqrtShape{}, LinearShape{}, ConstantShape{}, LogShape{}}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := Bound{
			Value:       r.Float64() * 100,
			Width:       r.Float64() * 5,
			RefreshedAt: 0,
			Shape:       shapes[r.Intn(len(shapes))],
		}
		prev := -1.0
		for now := int64(0); now < 200; now += int64(1 + r.Intn(20)) {
			w := b.At(now).Width()
			if w < prev-1e-12 {
				return false
			}
			prev = w
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
