package boundfn_test

import (
	"fmt"

	"trapp/internal/boundfn"
)

// A source refreshes value 100 at time 0 with width parameter 2; the
// cached bound grows like ±2·√(elapsed) (paper section 3.2).
func ExampleBound_At() {
	b := boundfn.Bound{Value: 100, Width: 2, RefreshedAt: 0}
	fmt.Println(b.At(0))
	fmt.Println(b.At(25))
	fmt.Println(b.At(100))
	// Output:
	// [100]
	// [90, 110]
	// [80, 120]
}

// The Appendix A controller widens after escapes and narrows after
// query-paid refreshes.
func ExampleAdaptiveWidth() {
	w := boundfn.NewAdaptiveWidth(1)
	w.ObserveValueRefresh() // bound was too narrow
	fmt.Println(w.NextWidth())
	w.ObserveQueryRefresh() // bound was too wide
	w.ObserveQueryRefresh()
	fmt.Printf("%.2f\n", w.NextWidth())
	// Output:
	// 2
	// 0.98
}
