package predicate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trapp/internal/interval"
	"trapp/internal/workload"
)

func TestRestrictionSimpleComparisons(t *testing.T) {
	col := 0
	cases := []struct {
		p    Expr
		want interval.Interval
	}{
		{NewCmp(Column(col, "x"), Lt, Const(5)), interval.Interval{Lo: math.Inf(-1), Hi: 5}},
		{NewCmp(Column(col, "x"), Le, Const(5)), interval.Interval{Lo: math.Inf(-1), Hi: 5}},
		{NewCmp(Column(col, "x"), Gt, Const(5)), interval.Interval{Lo: 5, Hi: math.Inf(1)}},
		{NewCmp(Column(col, "x"), Ge, Const(5)), interval.Interval{Lo: 5, Hi: math.Inf(1)}},
		{NewCmp(Column(col, "x"), Eq, Const(5)), interval.Point(5)},
		{NewCmp(Column(col, "x"), Ne, Const(5)), interval.Unbounded},
		// Mirrored: 5 < x  ≡  x > 5.
		{NewCmp(Const(5), Lt, Column(col, "x")), interval.Interval{Lo: 5, Hi: math.Inf(1)}},
		{NewCmp(Const(5), Ge, Column(col, "x")), interval.Interval{Lo: math.Inf(-1), Hi: 5}},
		// Different column: no restriction on col 0.
		{NewCmp(Column(1, "y"), Lt, Const(5)), interval.Unbounded},
		// Column-to-column: no restriction.
		{NewCmp(Column(col, "x"), Lt, Column(1, "y")), interval.Unbounded},
	}
	for _, c := range cases {
		got := Restriction(c.p, col)
		if !got.Equal(c.want) {
			t.Errorf("Restriction(%s) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRestrictionConnectives(t *testing.T) {
	col := 0
	x := func(op Op, k float64) Expr { return NewCmp(Column(col, "x"), op, Const(k)) }
	// x > 2 AND x < 8 → [2, 8]
	and := NewAnd(x(Gt, 2), x(Lt, 8))
	if got := Restriction(and, col); !got.Equal(interval.New(2, 8)) {
		t.Errorf("AND restriction = %v", got)
	}
	// x < 2 OR x < 8 → (-inf, 8]
	or := NewOr(x(Lt, 2), x(Lt, 8))
	if got := Restriction(or, col); !got.Equal(interval.Interval{Lo: math.Inf(-1), Hi: 8}) {
		t.Errorf("OR restriction = %v", got)
	}
	// NOT is conservative.
	if got := Restriction(NewNot(x(Lt, 2)), col); !got.Equal(interval.Unbounded) {
		t.Errorf("NOT restriction = %v", got)
	}
	if got := Restriction(TruePred{}, col); !got.Equal(interval.Unbounded) {
		t.Errorf("TRUE restriction = %v", got)
	}
}

func TestShrinkBoundPaperExample(t *testing.T) {
	// Appendix D: aggregating latency under "latency > 10", bound [3, 8]
	// cannot contribute; bound [8, 12] shrinks to [10, 12].
	col := 0
	p := NewCmp(Column(col, "latency"), Gt, Const(10))
	if _, ok := ShrinkBound(p, col, interval.New(3, 8)); ok {
		t.Error("bound [3,8] should have empty intersection with latency>10")
	}
	got, ok := ShrinkBound(p, col, interval.New(8, 12))
	if !ok || !got.Equal(interval.New(10, 12)) {
		t.Errorf("ShrinkBound([8,12]) = %v, %v", got, ok)
	}
	// Unrestricted column: unchanged.
	got, ok = ShrinkBound(p, 1, interval.New(8, 12))
	if !ok || !got.Equal(interval.New(8, 12)) {
		t.Errorf("ShrinkBound other col = %v, %v", got, ok)
	}
}

// TestQuickRestrictionSoundness: whenever the predicate holds on exact
// values, the restricted column's value lies in the restriction interval.
func TestQuickRestrictionSoundness(t *testing.T) {
	const cols = 3
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomExpr(r, cols, 3)
		col := r.Intn(cols)
		restr := Restriction(p, col)
		for trial := 0; trial < 50; trial++ {
			vals := make([]float64, cols)
			for i := range vals {
				vals[i] = r.Float64()*40 - 20
			}
			if p.EvalExact(vals) && !restr.Contains(vals[col]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickShrinkPreservesMasterValue: if a master value inside the bound
// satisfies the predicate, it stays inside the shrunk bound.
func TestQuickShrinkPreservesMasterValue(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomExpr(r, 2, 2)
		lo := r.Float64()*20 - 10
		b := interval.New(lo, lo+r.Float64()*10)
		shrunk, ok := ShrinkBound(p, 0, b)
		for trial := 0; trial < 30; trial++ {
			v0 := lo + r.Float64()*b.Width()
			v1 := r.Float64()*20 - 10
			if p.EvalExact([]float64{v0, v1}) {
				if !ok {
					// ShrinkBound said no contribution possible, yet the
					// predicate held — unsound.
					return false
				}
				if !shrunk.Contains(v0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMapOracle(t *testing.T) {
	m := workload.MapOracle{1: {3, 61, 98}}
	vals, ok := m.Master(1)
	if !ok || vals[0] != 3 {
		t.Error("MapOracle lookup failed")
	}
	if _, ok := m.Master(2); ok {
		t.Error("MapOracle found missing key")
	}
}
