package predicate

import (
	"math"

	"trapp/internal/interval"
	"trapp/internal/relation"
)

// Class is the three-way classification of a tuple with respect to a
// selection predicate over bounded values (paper section 6).
type Class int8

const (
	// Minus (T−): the tuple cannot satisfy the predicate.
	Minus Class = iota
	// Maybe (T?): the tuple may or may not satisfy the predicate.
	Maybe
	// Plus (T+): the tuple is guaranteed to satisfy the predicate.
	Plus
)

// String returns "T-", "T?", or "T+".
func (c Class) String() string {
	switch c {
	case Minus:
		return "T-"
	case Plus:
		return "T+"
	default:
		return "T?"
	}
}

// ClassifyTuple classifies one tuple: Certain(P) ⇒ Plus,
// Possible(P) ∧ ¬Certain(P) ⇒ Maybe, otherwise Minus.
func ClassifyTuple(p Expr, tu *relation.Tuple) Class {
	switch p.Eval(tu) {
	case interval.True:
		return Plus
	case interval.Unknown:
		return Maybe
	default:
		return Minus
	}
}

// Classification partitions a table's tuple indexes into T+, T?, and T−.
type Classification struct {
	// Plus holds indexes of tuples guaranteed to satisfy the predicate.
	Plus []int
	// Maybe holds indexes of tuples that may satisfy the predicate.
	Maybe []int
	// Minus holds indexes of tuples that cannot satisfy the predicate.
	Minus []int
}

// Classify partitions every tuple of the table. The scan is O(n); with
// endpoint indexes the Plus/Maybe filters could run sublinearly as
// discussed in section 8.3, but classification cost is not part of the
// paper's reported metrics.
func Classify(t *relation.Table, p Expr) Classification {
	var c Classification
	for i := range t.Tuples() {
		switch ClassifyTuple(p, t.At(i)) {
		case Plus:
			c.Plus = append(c.Plus, i)
		case Maybe:
			c.Maybe = append(c.Maybe, i)
		default:
			c.Minus = append(c.Minus, i)
		}
	}
	return c
}

// PossibleCount returns |T+| + |T?|, the number of tuples that might
// contribute to an aggregate.
func (c Classification) PossibleCount() int { return len(c.Plus) + len(c.Maybe) }

// Restriction computes an interval I such that whenever the predicate
// holds for a tuple, the tuple's value in column col lies in I. It returns
// interval.Unbounded when the predicate imposes no (derivable) restriction.
//
// This implements the refinement of Appendix D (footnote 4): when the
// selection predicate restricts the aggregation column, the bounds of T?
// tuples can be shrunk by intersecting with the restriction before the
// bounded answer or CHOOSE_REFRESH computation — e.g. aggregating latency
// under "latency > 10" allows lower bounds below 10 to be raised to 10.
//
// The derivation is conservative: comparisons against non-constant operands
// and negations contribute no restriction. Conjunction intersects and
// disjunction unions the operand restrictions, both of which preserve
// soundness.
func Restriction(p Expr, col int) interval.Interval {
	switch e := p.(type) {
	case *Cmp:
		return cmpRestriction(e, col)
	case *And:
		return Restriction(e.L, col).Intersect(Restriction(e.R, col))
	case *Or:
		return Restriction(e.L, col).Union(Restriction(e.R, col))
	default:
		// Not, TruePred, unknown types: no derivable restriction.
		return interval.Unbounded
	}
}

// cmpRestriction derives the restriction a single comparison places on col.
func cmpRestriction(c *Cmp, col int) interval.Interval {
	// Normalize to "col op const".
	var op Op
	var k float64
	switch {
	case c.Left.Col == col && c.Right.Col < 0:
		op, k = c.Op, c.Right.Const
	case c.Right.Col == col && c.Left.Col < 0:
		// K op col  ≡  col op' K with the operator mirrored.
		k = c.Left.Const
		switch c.Op {
		case Lt:
			op = Gt
		case Le:
			op = Ge
		case Gt:
			op = Lt
		case Ge:
			op = Le
		default:
			op = c.Op // Eq, Ne are symmetric
		}
	default:
		return interval.Unbounded
	}
	switch op {
	case Lt, Le:
		// Closed endpoint is a conservative superset for strict <.
		return interval.Interval{Lo: math.Inf(-1), Hi: k}
	case Gt, Ge:
		return interval.Interval{Lo: k, Hi: math.Inf(1)}
	case Eq:
		return interval.Point(k)
	default: // Ne: no useful interval restriction
		return interval.Unbounded
	}
}

// ShrinkBound applies the Appendix D refinement to one tuple bound: it
// intersects the bound for the aggregation column with the predicate's
// restriction on that column. If the intersection is empty the tuple
// cannot both satisfy the predicate and contribute, so the caller may
// treat it as T− for aggregation purposes; ShrinkBound then returns the
// original bound unchanged along with ok=false.
func ShrinkBound(p Expr, col int, b interval.Interval) (shrunk interval.Interval, ok bool) {
	r := Restriction(p, col)
	s := b.Intersect(r)
	if s.IsEmpty() {
		return b, false
	}
	return s, true
}
