// Package predicate implements selection predicates over bounded data and
// the T+/T?/T− classification at the heart of TRAPP/AG queries with
// predicates (paper section 6 and Appendix D).
//
// A predicate is a boolean expression tree over binary comparisons between
// columns and constants. Evaluated over a tuple whose attributes are
// guaranteed bounds, a predicate yields a three-valued result:
//
//   - True:    Certain(P) holds — the tuple satisfies P for every choice of
//     master values inside its bounds (tuple ∈ T+).
//   - False:   ¬Possible(P) — no choice satisfies P (tuple ∈ T−).
//   - Unknown: some choices satisfy P and others do not (tuple ∈ T?).
//
// The translation follows the paper's Figure 8: comparisons translate to
// endpoint comparisons; ¬, ∧ and ∨ combine by Kleene three-valued logic.
// As the paper notes, Certain(E1 ∨ E2) ⇐ Certain(E1) ∨ Certain(E2) and
// Possible(E1 ∧ E2) ⇒ Possible(E1) ∧ Possible(E2) are implications rather
// than equivalences, so correlated subexpressions may land a tuple in T?
// that belongs in T+ or T−; this affects only optimality, never
// correctness.
package predicate

import (
	"fmt"

	"trapp/internal/interval"
	"trapp/internal/relation"
)

// Expr is a selection predicate over one relation's tuples.
type Expr interface {
	// Eval evaluates the predicate over a tuple's bounds, returning the
	// three-valued classification result.
	Eval(tu *relation.Tuple) interval.Tri
	// EvalExact evaluates the predicate over exact attribute values (one
	// per schema column). It defines the ground truth that Eval's
	// Possible/Certain results are sound with respect to.
	EvalExact(vals []float64) bool
	// Columns appends the referenced column indexes to dst.
	Columns(dst []int) []int
	// String renders the predicate in SQL-ish syntax.
	String() string
}

// Op is a comparison operator.
type Op int8

const (
	// Lt is <.
	Lt Op = iota
	// Le is <=.
	Le
	// Gt is >.
	Gt
	// Ge is >=.
	Ge
	// Eq is =.
	Eq
	// Ne is <>.
	Ne
)

// String returns the SQL spelling of the operator.
func (o Op) String() string {
	switch o {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	default:
		return "<>"
	}
}

// tri dispatches an interval comparison for the operator.
func (o Op) tri(x, y interval.Interval) interval.Tri {
	switch o {
	case Lt:
		return interval.CmpLess(x, y)
	case Le:
		return interval.CmpLessEq(x, y)
	case Gt:
		return interval.CmpGreater(x, y)
	case Ge:
		return interval.CmpGreaterEq(x, y)
	case Eq:
		return interval.CmpEq(x, y)
	default:
		return interval.CmpNotEq(x, y)
	}
}

// exact evaluates the operator on two exact values.
func (o Op) exact(a, b float64) bool {
	switch o {
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	case Eq:
		return a == b
	default:
		return a != b
	}
}

// Operand is one side of a comparison: a column reference or a constant.
// To handle expressions uniformly (Appendix D), constants behave as point
// intervals [K, K].
type Operand struct {
	// Col is the referenced column index, or -1 for a constant.
	Col int
	// Name is the column name for display; ignored for constants.
	Name string
	// Const is the constant value when Col < 0.
	Const float64
}

// Column returns an operand referencing column index col named name.
func Column(col int, name string) Operand { return Operand{Col: col, Name: name} }

// Const returns a constant operand.
func Const(v float64) Operand { return Operand{Col: -1, Const: v} }

// bound returns the operand's interval for a tuple.
func (o Operand) bound(tu *relation.Tuple) interval.Interval {
	if o.Col < 0 {
		return interval.Point(o.Const)
	}
	return tu.Bounds[o.Col]
}

// exact returns the operand's exact value given exact column values.
func (o Operand) exact(vals []float64) float64 {
	if o.Col < 0 {
		return o.Const
	}
	return vals[o.Col]
}

// String renders the operand.
func (o Operand) String() string {
	if o.Col < 0 {
		return fmt.Sprintf("%g", o.Const)
	}
	if o.Name != "" {
		return o.Name
	}
	return fmt.Sprintf("col%d", o.Col)
}

// Cmp is a binary comparison between two operands.
type Cmp struct {
	Left  Operand
	Op    Op
	Right Operand
}

// NewCmp builds a comparison expression.
func NewCmp(left Operand, op Op, right Operand) *Cmp {
	return &Cmp{Left: left, Op: op, Right: right}
}

// Eval applies the Figure 8 translation for the comparison.
func (c *Cmp) Eval(tu *relation.Tuple) interval.Tri {
	return c.Op.tri(c.Left.bound(tu), c.Right.bound(tu))
}

// EvalExact evaluates the comparison over exact values.
func (c *Cmp) EvalExact(vals []float64) bool {
	return c.Op.exact(c.Left.exact(vals), c.Right.exact(vals))
}

// Columns appends referenced columns.
func (c *Cmp) Columns(dst []int) []int {
	if c.Left.Col >= 0 {
		dst = append(dst, c.Left.Col)
	}
	if c.Right.Col >= 0 {
		dst = append(dst, c.Right.Col)
	}
	return dst
}

// String renders "left op right".
func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// And is a conjunction.
type And struct{ L, R Expr }

// NewAnd builds L AND R.
func NewAnd(l, r Expr) *And { return &And{l, r} }

// Eval combines by Kleene conjunction, matching the paper's translation:
// Certain(E1 ∧ E2) ⇔ Certain(E1) ∧ Certain(E2) and
// Possible(E1 ∧ E2) ⇒ Possible(E1) ∧ Possible(E2).
func (a *And) Eval(tu *relation.Tuple) interval.Tri {
	return a.L.Eval(tu).And(a.R.Eval(tu))
}

// EvalExact evaluates the conjunction over exact values.
func (a *And) EvalExact(vals []float64) bool {
	return a.L.EvalExact(vals) && a.R.EvalExact(vals)
}

// Columns appends referenced columns.
func (a *And) Columns(dst []int) []int { return a.R.Columns(a.L.Columns(dst)) }

// String renders "(L AND R)".
func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is a disjunction.
type Or struct{ L, R Expr }

// NewOr builds L OR R.
func NewOr(l, r Expr) *Or { return &Or{l, r} }

// Eval combines by Kleene disjunction, matching the paper's translation:
// Possible(E1 ∨ E2) ⇔ Possible(E1) ∨ Possible(E2) and
// Certain(E1 ∨ E2) ⇐ Certain(E1) ∨ Certain(E2).
func (o *Or) Eval(tu *relation.Tuple) interval.Tri {
	return o.L.Eval(tu).Or(o.R.Eval(tu))
}

// EvalExact evaluates the disjunction over exact values.
func (o *Or) EvalExact(vals []float64) bool {
	return o.L.EvalExact(vals) || o.R.EvalExact(vals)
}

// Columns appends referenced columns.
func (o *Or) Columns(dst []int) []int { return o.R.Columns(o.L.Columns(dst)) }

// String renders "(L OR R)".
func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is a negation.
type Not struct{ E Expr }

// NewNot builds NOT E.
func NewNot(e Expr) *Not { return &Not{e} }

// Eval applies the Figure 8 rule Possible(¬E) ⇔ ¬Certain(E) and
// Certain(¬E) ⇔ ¬Possible(E), which is exactly Kleene negation.
func (n *Not) Eval(tu *relation.Tuple) interval.Tri {
	return n.E.Eval(tu).Not()
}

// EvalExact evaluates the negation over exact values.
func (n *Not) EvalExact(vals []float64) bool { return !n.E.EvalExact(vals) }

// Columns appends referenced columns.
func (n *Not) Columns(dst []int) []int { return n.E.Columns(dst) }

// String renders "NOT (E)".
func (n *Not) String() string { return fmt.Sprintf("NOT (%s)", n.E) }

// TruePred matches every tuple; it represents an absent WHERE clause.
type TruePred struct{}

// Eval always returns True.
func (TruePred) Eval(*relation.Tuple) interval.Tri { return interval.True }

// EvalExact always returns true.
func (TruePred) EvalExact([]float64) bool { return true }

// Columns appends nothing.
func (TruePred) Columns(dst []int) []int { return dst }

// String renders "TRUE".
func (TruePred) String() string { return "TRUE" }

// IsTrivial reports whether the predicate is the constant TRUE, meaning
// the no-predicate algorithms of section 5 apply.
func IsTrivial(e Expr) bool {
	_, ok := e.(TruePred)
	return ok || e == nil
}
