package predicate_test

import (
	"fmt"

	"trapp/internal/predicate"
	"trapp/internal/workload"
)

// Classifying the Figure 2 links under Q4's predicate
// (bandwidth > 50 AND latency < 10): tuple 1 certainly satisfies it,
// tuple 3 certainly does not, the rest are uncertain (Figure 7).
func ExampleClassify() {
	table := workload.Figure2Table()
	s := table.Schema()
	p := predicate.NewAnd(
		predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColBandwidth), "bandwidth"),
			predicate.Gt, predicate.Const(50)),
		predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColLatency), "latency"),
			predicate.Lt, predicate.Const(10)),
	)
	c := predicate.Classify(table, p)
	fmt.Println("T+:", len(c.Plus), "T?:", len(c.Maybe), "T-:", len(c.Minus))
	for _, i := range c.Plus {
		fmt.Println("certain:", table.At(i).Key)
	}
	// Output:
	// T+: 1 T?: 4 T-: 1
	// certain: 1
}

// The Appendix D refinement: when the predicate restricts the aggregation
// column itself, T? bounds shrink before aggregation.
func ExampleShrinkBound() {
	p := predicate.NewCmp(predicate.Column(0, "latency"), predicate.Gt, predicate.Const(10))
	b, ok := predicate.ShrinkBound(p, 0, workload.Figure2()[4].Latency) // tuple 5: [8, 11]
	fmt.Println(b, ok)
	// Output: [10, 11] true
}
