package predicate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trapp/internal/interval"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

// figure2Preds builds the three predicates of the paper's Figure 7 against
// the link schema.
func fastLinksPred(s *relation.Schema) Expr {
	bw := s.MustLookup(workload.ColBandwidth)
	lat := s.MustLookup(workload.ColLatency)
	return NewAnd(
		NewCmp(Column(bw, "bandwidth"), Gt, Const(50)),
		NewCmp(Column(lat, "latency"), Lt, Const(10)),
	)
}

func highLatencyPred(s *relation.Schema) Expr {
	lat := s.MustLookup(workload.ColLatency)
	return NewCmp(Column(lat, "latency"), Gt, Const(10))
}

func highTrafficPred(s *relation.Schema) Expr {
	tr := s.MustLookup(workload.ColTraffic)
	return NewCmp(Column(tr, "traffic"), Gt, Const(100))
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{Lt: "<", Le: "<=", Gt: ">", Ge: ">=", Eq: "=", Ne: "<>"}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("Op %d string %q, want %q", op, op.String(), want)
		}
	}
}

func TestCmpEvalAgainstBounds(t *testing.T) {
	s := workload.LinkSchema()
	tab := workload.Figure2Table()
	lat := s.MustLookup(workload.ColLatency)
	p := NewCmp(Column(lat, "latency"), Gt, Const(10))
	// Tuple 3 has latency [12,16]: certainly > 10.
	if got := p.Eval(tab.At(tab.ByKey(3))); got != interval.True {
		t.Errorf("tuple 3: %v", got)
	}
	// Tuple 1 has latency [2,4]: certainly not > 10.
	if got := p.Eval(tab.At(tab.ByKey(1))); got != interval.False {
		t.Errorf("tuple 1: %v", got)
	}
	// Tuple 4 has latency [9,11]: unknown.
	if got := p.Eval(tab.At(tab.ByKey(4))); got != interval.Unknown {
		t.Errorf("tuple 4: %v", got)
	}
}

func TestFigure7ClassificationBeforeRefresh(t *testing.T) {
	// The paper's Figure 7 lists, for each of three predicates, the
	// classification of tuples 1–6 before refresh.
	s := workload.LinkSchema()
	tab := workload.Figure2Table()
	cases := []struct {
		name string
		p    Expr
		want map[int64]Class // by tuple key
	}{
		{
			name: "(bandwidth > 50) AND (latency < 10)",
			p:    fastLinksPred(s),
			want: map[int64]Class{1: Plus, 2: Maybe, 3: Minus, 4: Maybe, 5: Maybe, 6: Maybe},
		},
		{
			name: "latency > 10",
			p:    highLatencyPred(s),
			want: map[int64]Class{1: Minus, 2: Minus, 3: Plus, 4: Maybe, 5: Maybe, 6: Minus},
		},
		{
			name: "traffic > 100",
			p:    highTrafficPred(s),
			want: map[int64]Class{1: Maybe, 2: Plus, 3: Maybe, 4: Plus, 5: Maybe, 6: Maybe},
		},
	}
	for _, c := range cases {
		for key, want := range c.want {
			got := ClassifyTuple(c.p, tab.At(tab.ByKey(key)))
			if got != want {
				t.Errorf("%s tuple %d: got %v, want %v", c.name, key, got, want)
			}
		}
	}
}

func TestFigure7ClassificationAfterRefresh(t *testing.T) {
	// After refreshing every tuple to its master values, classification
	// must match Figure 7's "after refresh" columns (all T+ or T−).
	tab := workload.Figure2Table()
	master := workload.Figure2Master()
	for i := 0; i < tab.Len(); i++ {
		if err := tab.Refresh(i, master[tab.At(i).Key]); err != nil {
			t.Fatal(err)
		}
	}
	s := tab.Schema()
	cases := []struct {
		p    Expr
		want map[int64]Class
	}{
		{fastLinksPred(s), map[int64]Class{1: Plus, 2: Plus, 3: Minus, 4: Plus, 5: Minus, 6: Minus}},
		{highLatencyPred(s), map[int64]Class{1: Minus, 2: Minus, 3: Plus, 4: Minus, 5: Plus, 6: Minus}},
		{highTrafficPred(s), map[int64]Class{1: Minus, 2: Plus, 3: Plus, 4: Plus, 5: Minus, 6: Plus}},
	}
	for _, c := range cases {
		for key, want := range c.want {
			got := ClassifyTuple(c.p, tab.At(tab.ByKey(key)))
			if got != want {
				t.Errorf("%s tuple %d after refresh: got %v, want %v", c.p, key, got, want)
			}
		}
	}
}

func TestClassifyPartition(t *testing.T) {
	tab := workload.Figure2Table()
	p := highTrafficPred(tab.Schema())
	c := Classify(tab, p)
	if len(c.Plus)+len(c.Maybe)+len(c.Minus) != tab.Len() {
		t.Fatalf("partition sizes %d+%d+%d != %d",
			len(c.Plus), len(c.Maybe), len(c.Minus), tab.Len())
	}
	if len(c.Plus) != 2 || len(c.Maybe) != 4 || len(c.Minus) != 0 {
		t.Errorf("traffic>100 partition = +%d ?%d -%d, want +2 ?4 -0",
			len(c.Plus), len(c.Maybe), len(c.Minus))
	}
	if c.PossibleCount() != 6 {
		t.Errorf("PossibleCount = %d", c.PossibleCount())
	}
}

func TestLogicalConnectives(t *testing.T) {
	tab := workload.Figure2Table()
	s := tab.Schema()
	lat := s.MustLookup(workload.ColLatency)
	lt10 := NewCmp(Column(lat, "latency"), Lt, Const(10))
	// Tuple 4 latency [9,11] → Unknown; NOT Unknown = Unknown.
	tu := tab.At(tab.ByKey(4))
	if got := NewNot(lt10).Eval(tu); got != interval.Unknown {
		t.Errorf("NOT unknown = %v", got)
	}
	// Unknown OR True = True.
	always := TruePred{}
	if got := NewOr(lt10, always).Eval(tu); got != interval.True {
		t.Errorf("unknown OR true = %v", got)
	}
	// Unknown AND False = False.
	never := NewNot(TruePred{})
	if got := NewAnd(lt10, never).Eval(tu); got != interval.False {
		t.Errorf("unknown AND false = %v", got)
	}
}

func TestColumns(t *testing.T) {
	s := workload.LinkSchema()
	p := fastLinksPred(s)
	cols := p.Columns(nil)
	if len(cols) != 2 {
		t.Fatalf("Columns = %v", cols)
	}
	seen := map[int]bool{}
	for _, c := range cols {
		seen[c] = true
	}
	if !seen[s.MustLookup(workload.ColBandwidth)] || !seen[s.MustLookup(workload.ColLatency)] {
		t.Errorf("Columns = %v", cols)
	}
}

func TestString(t *testing.T) {
	s := workload.LinkSchema()
	p := fastLinksPred(s)
	want := "(bandwidth > 50 AND latency < 10)"
	if p.String() != want {
		t.Errorf("String = %q, want %q", p.String(), want)
	}
	if (TruePred{}).String() != "TRUE" {
		t.Error("TruePred string")
	}
	n := NewNot(TruePred{})
	if n.String() != "NOT (TRUE)" {
		t.Errorf("Not string = %q", n.String())
	}
	if Const(3.5).String() != "3.5" {
		t.Errorf("Const string = %q", Const(3.5).String())
	}
	if Column(2, "").String() != "col2" {
		t.Errorf("anonymous column string = %q", Column(2, "").String())
	}
}

func TestIsTrivial(t *testing.T) {
	if !IsTrivial(TruePred{}) || !IsTrivial(nil) {
		t.Error("IsTrivial false negatives")
	}
	if IsTrivial(NewCmp(Const(1), Lt, Const(2))) {
		t.Error("comparison is trivial")
	}
}

func TestClassString(t *testing.T) {
	if Plus.String() != "T+" || Maybe.String() != "T?" || Minus.String() != "T-" {
		t.Error("Class strings")
	}
}

// randomExpr builds a random predicate tree over the given columns.
func randomExpr(r *rand.Rand, cols int, depth int) Expr {
	if depth == 0 || r.Intn(3) == 0 {
		mkOperand := func() Operand {
			if r.Intn(2) == 0 {
				return Column(r.Intn(cols), "")
			}
			return Const(r.Float64()*40 - 20)
		}
		return NewCmp(mkOperand(), Op(r.Intn(6)), mkOperand())
	}
	switch r.Intn(3) {
	case 0:
		return NewAnd(randomExpr(r, cols, depth-1), randomExpr(r, cols, depth-1))
	case 1:
		return NewOr(randomExpr(r, cols, depth-1), randomExpr(r, cols, depth-1))
	default:
		return NewNot(randomExpr(r, cols, depth-1))
	}
}

// TestQuickClassificationSoundness is the package's central property: for
// random predicates, random bounds, and random master values inside those
// bounds, T+ tuples always satisfy the predicate and T− tuples never do.
func TestQuickClassificationSoundness(t *testing.T) {
	const cols = 3
	schema := relation.NewSchema(
		relation.Column{Name: "a", Kind: relation.Bounded},
		relation.Column{Name: "b", Kind: relation.Bounded},
		relation.Column{Name: "c", Kind: relation.Bounded},
	)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomExpr(r, cols, 3)
		for trial := 0; trial < 30; trial++ {
			bounds := make([]interval.Interval, cols)
			vals := make([]float64, cols)
			for i := range bounds {
				lo := r.Float64()*40 - 20
				w := r.Float64() * 10
				if r.Intn(4) == 0 {
					w = 0 // exact value
				}
				bounds[i] = interval.New(lo, lo+w)
				vals[i] = lo + r.Float64()*w
			}
			tu := &relation.Tuple{Key: 1, Bounds: bounds}
			cls := ClassifyTuple(p, tu)
			holds := p.EvalExact(vals)
			if cls == Plus && !holds {
				return false
			}
			if cls == Minus && holds {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
	_ = schema
}
