package aggregate

import (
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/relation"
)

// This file defines State, a mergeable partial fold of one aggregate
// over a subset of a relation's tuples — the unit a cluster partition
// computes locally and ships to the scatter-gather coordinator.
//
// Bit-identity across the split is by construction, not by luck
// (DESIGN.md §14): every order-sensitive accumulation in the engine is
// bucket-structured (per-canonical-bucket subtotals combined in
// ascending bucket order — see evalSum/evalAvgTight/foldAcc), and a
// partition owns whole canonical buckets. A partition's local canonical
// scan therefore produces exactly the per-bucket subtotals the
// single-node scan would produce for those buckets, and merging states
// replays the single-node combination operation for operation:
//
//   - MIN/MAX are selections; ties (equal float values, e.g. ±0.0) are
//     broken by canonical tuple order, which each Selection carries as
//     the winning tuple's key.
//   - COUNT is integer arithmetic — exactly associative.
//   - SUM and the AVG T+ seed carry per-bucket float subtotals plus a
//     presence mask; the merged fold adds present buckets in ascending
//     bucket order, the same sequence of float additions a single node
//     performs.
//   - AVG's T? endpoints participate through the Appendix E
//     prefix-averaging fold, which sorts the merged endpoint multiset
//     under a total order (canonicalFloatCmp) — a pure function of the
//     multiset, so concatenation order across partitions is irrelevant.
//
// Merging states whose bucket presence masks overlap is still sound
// (subtotals add), but bit-identity with a single-node fold is only
// guaranteed for bucket-disjoint states.

// Selection is one MIN/MAX reduction: the best endpoint value seen plus
// the key of the tuple it came from, used to break exact-value ties
// (±0.0) by canonical order so merged selections pick the same tuple a
// single-node canonical scan would.
type Selection struct {
	Valid bool
	Val   float64
	Key   int64
}

// take offers a candidate to the selection. better reports whether a
// strictly beats b; on equal values the canonically earlier key wins —
// exactly the "first occurrence in canonical order" a strict-inequality
// scan keeps.
func (s *Selection) take(val float64, key int64, better func(a, b float64) bool) {
	switch {
	case !s.Valid:
		s.Valid, s.Val, s.Key = true, val, key
	case better(val, s.Val):
		s.Val, s.Key = val, key
	case val == s.Val && relation.CanonicalLess(key, s.Key):
		s.Val, s.Key = val, key
	}
}

func lessF(a, b float64) bool { return a < b }
func moreF(a, b float64) bool { return a > b }

// merge folds another selection into s under the same total order.
func (s *Selection) merge(o Selection, better func(a, b float64) bool) {
	if o.Valid {
		s.take(o.Val, o.Key, better)
	}
}

// State is a mergeable partial bounded-answer fold for one aggregate
// over a tuple subset. Produce one with StateOf or CollectState, combine
// bucket-disjoint states with Merge, and finalize with Answer. All
// fields are exported so states can cross a wire.
type State struct {
	Fn     Func
	NoPred bool
	// TableLen is the scanned cardinality of the subset (all tuples, not
	// just contributing ones) — summed by Merge, consumed by COUNT
	// without a predicate.
	TableLen int

	// MIN state: Lo = min L over T+∪T?, HiPlus = min H over T+.
	// MAX state: Hi = max H over T+∪T?, LoPlus = max L over T+.
	MinLo, MinHiPlus Selection
	MaxHi, MaxLoPlus Selection

	// SUM per-bucket endpoint subtotals.
	SumLo, SumHi [relation.NumCanonicalBuckets]float64
	SumPresent   uint64

	// COUNT tallies.
	Plus, Maybe int

	// AVG T+ per-bucket seed subtotals, seed count, and the retained T?
	// bounds for the Appendix E fold. AvgAny records whether any input
	// contributed at all (Empty answer otherwise).
	AvgSeedLo, AvgSeedHi [relation.NumCanonicalBuckets]float64
	AvgSeedPresent       uint64
	AvgK                 int
	AvgAny               bool
	AvgMaybes            []interval.Interval
}

// NewState returns an empty state for the aggregate.
func NewState(fn Func, noPred bool) State {
	return State{Fn: fn, NoPred: noPred}
}

// Feed folds one contributing (T+ or surviving T?) bound for the keyed
// tuple, with arithmetic identical to foldAcc.feed.
func (s *State) Feed(key int64, b interval.Interval, cls predicate.Class) {
	switch s.Fn {
	case Min:
		s.MinLo.take(b.Lo, key, lessF)
		if cls == predicate.Plus {
			s.MinHiPlus.take(b.Hi, key, lessF)
		}
	case Max:
		s.MaxHi.take(b.Hi, key, moreF)
		if cls == predicate.Plus {
			s.MaxLoPlus.take(b.Lo, key, moreF)
		}
	case Sum:
		bk := relation.CanonicalBucket(key)
		lo, hi := b.Lo, b.Hi
		if !(s.NoPred || cls == predicate.Plus) {
			if lo >= 0 {
				lo = 0
			}
			if hi <= 0 {
				hi = 0
			}
		}
		s.SumLo[bk] += lo
		s.SumHi[bk] += hi
		s.SumPresent |= 1 << bk
	case Count:
		if cls == predicate.Plus {
			s.Plus++
		} else {
			s.Maybe++
		}
	case Avg:
		s.AvgAny = true
		if cls == predicate.Plus {
			bk := relation.CanonicalBucket(key)
			s.AvgSeedLo[bk] += b.Lo
			s.AvgSeedHi[bk] += b.Hi
			s.AvgSeedPresent |= 1 << bk
			s.AvgK++
		} else {
			s.AvgMaybes = append(s.AvgMaybes, b)
		}
	}
}

// Merge folds another state (same Fn and NoPred) into s. Merging is
// commutative and associative for bucket-disjoint states; see the file
// comment for the overlap caveat.
func (s *State) Merge(o *State) {
	s.TableLen += o.TableLen
	switch s.Fn {
	case Min:
		s.MinLo.merge(o.MinLo, lessF)
		s.MinHiPlus.merge(o.MinHiPlus, lessF)
	case Max:
		s.MaxHi.merge(o.MaxHi, moreF)
		s.MaxLoPlus.merge(o.MaxLoPlus, moreF)
	case Sum:
		for b := 0; b < relation.NumCanonicalBuckets; b++ {
			if o.SumPresent&(1<<b) == 0 {
				continue
			}
			if s.SumPresent&(1<<b) == 0 {
				s.SumLo[b], s.SumHi[b] = o.SumLo[b], o.SumHi[b]
			} else {
				s.SumLo[b] += o.SumLo[b]
				s.SumHi[b] += o.SumHi[b]
			}
			s.SumPresent |= 1 << b
		}
	case Count:
		s.Plus += o.Plus
		s.Maybe += o.Maybe
	case Avg:
		s.AvgAny = s.AvgAny || o.AvgAny
		for b := 0; b < relation.NumCanonicalBuckets; b++ {
			if o.AvgSeedPresent&(1<<b) == 0 {
				continue
			}
			if s.AvgSeedPresent&(1<<b) == 0 {
				s.AvgSeedLo[b], s.AvgSeedHi[b] = o.AvgSeedLo[b], o.AvgSeedHi[b]
			} else {
				s.AvgSeedLo[b] += o.AvgSeedLo[b]
				s.AvgSeedHi[b] += o.AvgSeedHi[b]
			}
			s.AvgSeedPresent |= 1 << b
		}
		s.AvgK += o.AvgK
		s.AvgMaybes = append(s.AvgMaybes, o.AvgMaybes...)
	}
}

// Answer finalizes the fold into the bounded answer, with arithmetic
// identical to foldAcc.answer / EvalInputs.
func (s *State) Answer() interval.Interval {
	switch s.Fn {
	case Min:
		if !s.MinLo.Valid {
			return interval.Empty
		}
		if !s.MinHiPlus.Valid {
			return interval.Interval{Lo: s.MinLo.Val, Hi: interval.Unbounded.Hi}
		}
		return interval.Interval{Lo: s.MinLo.Val, Hi: s.MinHiPlus.Val}
	case Max:
		if !s.MaxHi.Valid {
			return interval.Empty
		}
		if !s.MaxLoPlus.Valid {
			return interval.Interval{Lo: interval.Unbounded.Lo, Hi: s.MaxHi.Val}
		}
		return interval.Interval{Lo: s.MaxLoPlus.Val, Hi: s.MaxHi.Val}
	case Sum:
		var lo, hi float64
		for b := 0; b < relation.NumCanonicalBuckets; b++ {
			if s.SumPresent&(1<<b) == 0 {
				continue
			}
			lo += s.SumLo[b]
			hi += s.SumHi[b]
		}
		return interval.Interval{Lo: lo, Hi: hi}
	case Count:
		if s.NoPred {
			return interval.Point(float64(s.TableLen))
		}
		return interval.Interval{Lo: float64(s.Plus), Hi: float64(s.Plus + s.Maybe)}
	default: // Avg
		if !s.AvgAny {
			return interval.Empty
		}
		var sl, sh float64
		for b := 0; b < relation.NumCanonicalBuckets; b++ {
			if s.AvgSeedPresent&(1<<b) == 0 {
				continue
			}
			sl += s.AvgSeedLo[b]
			sh += s.AvgSeedHi[b]
		}
		maybes := make([]Input, len(s.AvgMaybes))
		for i, b := range s.AvgMaybes {
			maybes[i] = Input{Bound: b, Class: predicate.Maybe}
		}
		lo := foldAvg(sl, s.AvgK, maybes, func(in Input) float64 { return in.Bound.Lo }, true)
		hi := foldAvg(sh, s.AvgK, maybes, func(in Input) float64 { return in.Bound.Hi }, false)
		return interval.Interval{Lo: lo, Hi: hi}
	}
}

// StateOf builds the state from pre-collected inputs (any order —
// feeding is order-insensitive by construction).
func StateOf(inputs []Input, fn Func, noPred bool, tableLen int) State {
	s := NewState(fn, noPred)
	s.TableLen = tableLen
	for _, in := range inputs {
		s.Feed(in.Key, in.Bound, in.Class)
	}
	return s
}

// CollectState computes the state for the aggregate over column col of
// the store under predicate p, in one streaming pass without
// materializing inputs (the shrink refinement is applied, matching
// Collect/EvalStoreStream).
func CollectState(st *relation.Store, col int, fn Func, p predicate.Expr) State {
	c := newCollector(col, p, true)
	s := NewState(fn, predicate.IsTrivial(p))
	for si := 0; si < st.NumShards(); si++ {
		st.ViewShard(si, func(t *relation.Table) {
			s.TableLen += t.Len()
			c.scanState(t, &s)
		})
	}
	return s
}

// scanState is scanFold feeding a State instead of a foldAcc.
func (c collector) scanState(t *relation.Table, s *State) {
	for i := 0; i < t.Len(); i++ {
		tu := t.At(i)
		cls := predicate.Plus
		if !c.trivial {
			cls = predicate.ClassifyTuple(c.p, tu)
		}
		if cls == predicate.Minus {
			continue
		}
		b := tu.Bounds[c.col]
		if cls == predicate.Maybe {
			sh := b.Intersect(c.restr)
			if sh.IsEmpty() {
				continue
			}
			b = sh
		}
		s.Feed(tu.Key, b, cls)
	}
}

// MergeInputs concatenates per-partition input snapshots into the
// single canonical snapshot a whole-relation scan would produce: the
// union is sorted into canonical order and Index reassigned to the
// canonical position (per-partition indexes are partition-local).
// Plans chosen from the merged snapshot are bit-identical to plans a
// single node holding all tuples would choose, because the inputs are.
func MergeInputs(parts ...[]Input) []Input {
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	merged := make([]Input, 0, n)
	for _, p := range parts {
		merged = append(merged, p...)
	}
	sortCanonical(merged)
	for i := range merged {
		merged[i].Index = i
	}
	return merged
}

// MergeStates merges bucket-disjoint per-partition states (in any
// order) into the global state. The slice is not modified; an empty
// slice yields the zero state for the aggregate.
func MergeStates(fn Func, noPred bool, states []*State) State {
	out := NewState(fn, noPred)
	for _, st := range states {
		if st != nil {
			out.Merge(st)
		}
	}
	return out
}
