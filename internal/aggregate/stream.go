package aggregate

import (
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/relation"
)

// This file implements the streaming store evaluation used by the query
// processor's hot path: the bounded answer is folded tuple by tuple
// during the shard scans themselves, without materializing any Input
// slice. A default-sharded store's scan order — shards in index order,
// canonically sorted tuples within each shard — IS the canonical order
// (relation.CanonicalLess), and the per-aggregate accumulation replays
// EvalInputs' arithmetic operation for operation, so the streamed answer
// is bit-identical to EvalInputs(CollectStore(...)) — the property the
// differential tests pin down. A cache-answered query therefore
// allocates nothing proportional to the table and holds only one shard
// read lock at a time.

// EvalStoreStream computes the bounded answer for the aggregate over the
// store — bit-identical to EvalStore — in one streaming pass. It returns
// the answer and the store cardinality at scan time. Stores with a
// non-default shard count (whose scan order is not canonical) take the
// materializing path instead.
func EvalStoreStream(st *relation.Store, col int, fn Func, p predicate.Expr) (interval.Interval, int) {
	noPred := predicate.IsTrivial(p)
	if !st.Canonical() {
		inputs, tableLen := CollectStore(st, col, p, true, 1)
		return EvalInputs(inputs, fn, noPred, tableLen), tableLen
	}
	c := newCollector(col, p, true)
	acc := foldAcc{fn: fn, noPred: noPred}
	acc.init()
	tableLen := 0
	for si := 0; si < st.NumShards(); si++ {
		st.ViewShard(si, func(t *relation.Table) {
			tableLen += t.Len()
			c.scanFold(t, &acc)
		})
	}
	return acc.answer(tableLen), tableLen
}

// scanFold classifies t's tuples like scan but feeds each contributing
// tuple straight into the accumulator instead of materializing an Input.
func (c collector) scanFold(t *relation.Table, acc *foldAcc) {
	for i := 0; i < t.Len(); i++ {
		tu := t.At(i)
		cls := predicate.Plus
		if !c.trivial {
			cls = predicate.ClassifyTuple(c.p, tu)
		}
		if cls == predicate.Minus {
			continue
		}
		b := tu.Bounds[c.col]
		if cls == predicate.Maybe {
			s := b.Intersect(c.restr)
			if s.IsEmpty() {
				continue // cannot satisfy the restriction: effectively T−
			}
			b = s
		}
		acc.feed(tu.Key, b, cls)
	}
}

// foldAcc accumulates one aggregate's bounded answer over contributions
// fed in canonical order, mirroring the EvalInputs fold arithmetic
// exactly.
type foldAcc struct {
	fn     Func
	noPred bool

	// MIN/MAX state (evalMin/evalMax replicas).
	lo, hi interval.Interval

	// SUM state (evalSum replica): per-bucket subtotals folded in
	// ascending bucket order at finalization.
	sums bucketSums

	// COUNT state.
	plus, maybe int

	// AVG state (evalAvgTight replica): bucket-structured T+ endpoint
	// seed sums and count, T? bounds retained for the prefix-averaging
	// fold.
	avgSeeds bucketSums
	avgK     int
	avgAny   bool
	maybes   []Input
}

func (a *foldAcc) init() {
	a.lo, a.hi = interval.Empty, interval.Empty
}

// feed folds one contributing (T+ or T?) bound for the keyed tuple.
func (a *foldAcc) feed(key int64, b interval.Interval, cls predicate.Class) {
	switch a.fn {
	case Min:
		if a.lo.IsEmpty() || b.Lo < a.lo.Lo {
			a.lo = interval.Point(b.Lo)
		}
		if cls == predicate.Plus {
			if a.hi.IsEmpty() || b.Hi < a.hi.Lo {
				a.hi = interval.Point(b.Hi)
			}
		}
	case Max:
		if a.hi.IsEmpty() || b.Hi > a.hi.Lo {
			a.hi = interval.Point(b.Hi)
		}
		if cls == predicate.Plus {
			if a.lo.IsEmpty() || b.Lo > a.lo.Lo {
				a.lo = interval.Point(b.Lo)
			}
		}
	case Sum:
		bk := relation.CanonicalBucket(key)
		if a.noPred || cls == predicate.Plus {
			a.sums.add(bk, b.Lo, b.Hi)
			return
		}
		lo, hi := b.Lo, b.Hi
		if lo >= 0 {
			lo = 0
		}
		if hi <= 0 {
			hi = 0
		}
		a.sums.add(bk, lo, hi)
	case Count:
		if cls == predicate.Plus {
			a.plus++
		} else {
			a.maybe++
		}
	case Avg:
		a.avgAny = true
		if cls == predicate.Plus {
			a.avgSeeds.add(relation.CanonicalBucket(key), b.Lo, b.Hi)
			a.avgK++
		} else {
			a.maybes = append(a.maybes, Input{Key: key, Bound: b, Class: cls})
		}
	}
}

// answer finalizes the fold; tableLen is the cardinality at scan time
// (COUNT without a predicate).
func (a *foldAcc) answer(tableLen int) interval.Interval {
	switch a.fn {
	case Min:
		if a.lo.IsEmpty() {
			return interval.Empty
		}
		if a.hi.IsEmpty() {
			return interval.Interval{Lo: a.lo.Lo, Hi: interval.Unbounded.Hi}
		}
		return interval.Interval{Lo: a.lo.Lo, Hi: a.hi.Lo}
	case Max:
		if a.hi.IsEmpty() {
			return interval.Empty
		}
		if a.lo.IsEmpty() {
			return interval.Interval{Lo: interval.Unbounded.Lo, Hi: a.hi.Lo}
		}
		return interval.Interval{Lo: a.lo.Lo, Hi: a.hi.Lo}
	case Sum:
		lo, hi := a.sums.fold()
		return interval.Interval{Lo: lo, Hi: hi}
	case Count:
		if a.noPred {
			return interval.Point(float64(tableLen))
		}
		return interval.Interval{Lo: float64(a.plus), Hi: float64(a.plus + a.maybe)}
	default: // Avg
		if !a.avgAny {
			return interval.Empty
		}
		sl, sh := a.avgSeeds.fold()
		lo := foldAvg(sl, a.avgK, a.maybes, func(in Input) float64 { return in.Bound.Lo }, true)
		hi := foldAvg(sh, a.avgK, a.maybes, func(in Input) float64 { return in.Bound.Hi }, false)
		return interval.Interval{Lo: lo, Hi: hi}
	}
}
