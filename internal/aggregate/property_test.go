package aggregate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/relation"
)

// randTableAndMaster builds a random two-bounded-column table plus master
// values consistent with the cached bounds.
func randTableAndMaster(r *rand.Rand, n int) (*relation.Table, map[int64][]float64) {
	s := relation.NewSchema(
		relation.Column{Name: "a", Kind: relation.Bounded},
		relation.Column{Name: "b", Kind: relation.Bounded},
	)
	tab := relation.NewTable(s)
	master := make(map[int64][]float64, n)
	for i := 0; i < n; i++ {
		mk := func() (interval.Interval, float64) {
			lo := r.Float64()*60 - 30
			w := r.Float64() * 12
			if r.Intn(5) == 0 {
				w = 0
			}
			return interval.New(lo, lo+w), lo + r.Float64()*w
		}
		ba, va := mk()
		bb, vb := mk()
		key := int64(i + 1)
		tab.MustInsert(relation.Tuple{
			Key:    key,
			Bounds: []interval.Interval{ba, bb},
			Cost:   1 + r.Float64()*9,
		})
		master[key] = []float64{va, vb}
	}
	return tab, master
}

// randPred builds a random predicate over columns {0, 1}.
func randPred(r *rand.Rand) predicate.Expr {
	if r.Intn(4) == 0 {
		return nil // no predicate
	}
	leaf := func() predicate.Expr {
		return predicate.NewCmp(
			predicate.Column(r.Intn(2), ""),
			predicate.Op(r.Intn(6)),
			predicate.Const(r.Float64()*60-30),
		)
	}
	switch r.Intn(4) {
	case 0:
		return leaf()
	case 1:
		return predicate.NewAnd(leaf(), leaf())
	case 2:
		return predicate.NewOr(leaf(), leaf())
	default:
		return predicate.NewNot(leaf())
	}
}

// TestQuickBoundedAnswerContainsExact is the paper's core guarantee as a
// property: for random tables, predicates, and master values inside the
// cached bounds, every bounded answer contains the exact answer.
func TestQuickBoundedAnswerContainsExact(t *testing.T) {
	fns := []Func{Min, Max, Sum, Count, Avg}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab, master := randTableAndMaster(r, 1+r.Intn(20))
		p := randPred(r)
		for _, fn := range fns {
			for _, c := range []int{0, 1} {
				bounded := Eval(tab, c, fn, p)
				exact, ok := Exact(tab, c, fn, p, master)
				if !ok {
					continue // undefined aggregate; any bound is vacuous
				}
				if bounded.IsEmpty() {
					return false // defined exact answer but empty bound
				}
				if !bounded.Expand(1e-9).Contains(exact) {
					t.Logf("seed %d: %v col %d pred %v bounded %v exact %g",
						seed, fn, c, p, bounded, exact)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickLooseAvgContainsTight: the Appendix E tight bound is always
// inside the section 6.4.1 loose bound, and both contain the exact answer.
func TestQuickLooseAvgContainsTight(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab, master := randTableAndMaster(r, 1+r.Intn(20))
		p := randPred(r)
		tight := Eval(tab, 0, Avg, p)
		loose := EvalLooseAvg(tab, 0, p)
		if tight.IsEmpty() != loose.IsEmpty() {
			return false
		}
		if tight.IsEmpty() {
			return true
		}
		if !loose.Expand(1e-9).ContainsInterval(tight) {
			t.Logf("seed %d: loose %v tight %v pred %v", seed, loose, tight, p)
			return false
		}
		if exact, ok := Exact(tab, 0, Avg, p, master); ok {
			if !loose.Expand(1e-9).Contains(exact) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickRefreshTightensAnswers: refreshing every tuple to its master
// value collapses each bounded answer to (an interval containing only) the
// exact answer.
func TestQuickRefreshCollapsesAnswers(t *testing.T) {
	fns := []Func{Min, Max, Sum, Count, Avg}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab, master := randTableAndMaster(r, 1+r.Intn(15))
		p := randPred(r)
		for i := 0; i < tab.Len(); i++ {
			if err := tab.Refresh(i, master[tab.At(i).Key]); err != nil {
				return false
			}
		}
		for _, fn := range fns {
			bounded := Eval(tab, 0, fn, p)
			exact, ok := Exact(tab, 0, fn, p, master)
			if !ok {
				continue
			}
			if bounded.Width() > 1e-9 {
				return false
			}
			if !bounded.Expand(1e-9).Contains(exact) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
