package aggregate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/relation"
)

// bitsEqual compares two intervals bit for bit — the cluster-merge
// contract is bit-identity, not approximate equality.
func bitsEqual(a, b interval.Interval) bool {
	return math.Float64bits(a.Lo) == math.Float64bits(b.Lo) &&
		math.Float64bits(a.Hi) == math.Float64bits(b.Hi)
}

// TestQuickMergedStateBitIdentical is the cluster-merge contract as a
// property: splitting a table's inputs into bucket-disjoint partitions,
// folding each partition into a State, and merging the states yields an
// answer bit-identical to the single-scan fold — for random tables,
// predicates, partition counts, and bucket→partition assignments.
func TestQuickMergedStateBitIdentical(t *testing.T) {
	fns := []Func{Min, Max, Sum, Count, Avg}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab, _ := randTableAndMaster(r, 1+r.Intn(24))
		p := randPred(r)
		noPred := predicate.IsTrivial(p)
		nparts := 1 + r.Intn(4)
		owner := make([]int, relation.NumCanonicalBuckets)
		for b := range owner {
			owner[b] = r.Intn(nparts)
		}
		// Per-partition scanned cardinality: every tuple counts toward its
		// owner, contributing or not (a partition's TableLen is its local
		// store cardinality).
		partLen := make([]int, nparts)
		for i := 0; i < tab.Len(); i++ {
			partLen[owner[relation.CanonicalBucket(tab.At(i).Key)]]++
		}
		for _, fn := range fns {
			for _, c := range []int{0, 1} {
				inputs := Collect(tab, c, p, true)
				want := EvalInputs(inputs, fn, noPred, tab.Len())

				parts := make([][]Input, nparts)
				for _, in := range inputs {
					pi := owner[relation.CanonicalBucket(in.Key)]
					parts[pi] = append(parts[pi], in)
				}
				states := make([]*State, nparts)
				for pi := range parts {
					st := StateOf(parts[pi], fn, noPred, partLen[pi])
					states[pi] = &st
				}
				// Merge in a random order: the result must not depend on it.
				r.Shuffle(len(states), func(i, j int) { states[i], states[j] = states[j], states[i] })
				merged := MergeStates(fn, noPred, states)
				got := merged.Answer()
				if !bitsEqual(got, want) {
					t.Logf("seed %d: %v col %d pred %v nparts %d: merged %v want %v",
						seed, fn, c, p, nparts, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickCollectStateMatchesStream: the streaming State collection
// over a canonical store answers bit-identically to EvalStoreStream —
// the single-node arithmetic the merged cluster fold must reproduce.
func TestQuickCollectStateMatchesStream(t *testing.T) {
	fns := []Func{Min, Max, Sum, Count, Avg}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab, _ := randTableAndMaster(r, 1+r.Intn(24))
		st := relation.NewStore(tab.Schema(), 0)
		for i := 0; i < tab.Len(); i++ {
			st.MustInsert(tab.At(i).Clone())
		}
		p := randPred(r)
		for _, fn := range fns {
			for _, c := range []int{0, 1} {
				want, _ := EvalStoreStream(st, c, fn, p)
				cs := CollectState(st, c, fn, p)
				got := cs.Answer()
				if !bitsEqual(got, want) {
					t.Logf("seed %d: %v col %d pred %v: state %v stream %v",
						seed, fn, c, p, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSignedZeroSelectionMerge pins the ±0.0 tie-break: when −0.0 and
// +0.0 both appear, MIN/MAX pick the canonically-first occurrence, and
// the merged selection must reproduce that exact sign bit regardless of
// which partition held which zero.
func TestSignedZeroSelectionMerge(t *testing.T) {
	s := relation.NewSchema(relation.Column{Name: "v", Kind: relation.Bounded})
	negZero := math.Copysign(0, -1)
	for swap := 0; swap < 2; swap++ {
		tab := relation.NewTable(s)
		vals := []float64{negZero, 0}
		if swap == 1 {
			vals[0], vals[1] = vals[1], vals[0]
		}
		for i, v := range vals {
			tab.MustInsert(relation.Tuple{
				Key:    int64(i + 1),
				Bounds: []interval.Interval{interval.Point(v)},
				Cost:   1,
			})
		}
		for _, fn := range []Func{Min, Max, Sum} {
			inputs := Collect(tab, 0, nil, true)
			want := EvalInputs(inputs, fn, true, tab.Len())
			var states []*State
			for _, in := range inputs {
				st := StateOf([]Input{in}, fn, true, 1)
				states = append(states, &st)
			}
			// Both merge orders must reproduce the single-scan answer.
			for ord := 0; ord < 2; ord++ {
				ss := []*State{states[ord], states[1-ord]}
				merged := MergeStates(fn, true, ss)
				got := merged.Answer()
				if !bitsEqual(got, want) {
					t.Errorf("swap %d %v order %d: merged %v (bits %x/%x) want %v (bits %x/%x)",
						swap, fn, ord, got, math.Float64bits(got.Lo), math.Float64bits(got.Hi),
						want, math.Float64bits(want.Lo), math.Float64bits(want.Hi))
				}
			}
		}
	}
}
