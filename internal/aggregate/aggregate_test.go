package aggregate

import (
	"math"
	"testing"

	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

// pathTable returns the Figure 2 table restricted to the path
// N1→N2→N4→N5→N6, i.e. tuples {1, 2, 5, 6}, used by queries Q1 and Q2.
func pathTable(t *testing.T) *relation.Table {
	t.Helper()
	tab := workload.Figure2Table()
	tab.Delete(3)
	tab.Delete(4)
	return tab
}

func col(t *relation.Table, name string) int { return t.Schema().MustLookup(name) }

func TestQ1BoundedMinBandwidth(t *testing.T) {
	// Q1: bounded MIN of bandwidth over tuples {1,2,5,6} = [40, 55].
	tab := pathTable(t)
	got := Eval(tab, col(tab, workload.ColBandwidth), Min, nil)
	if !got.Equal(interval.New(40, 55)) {
		t.Errorf("Q1 = %v, want [40, 55]", got)
	}
}

func TestQ2BoundedSumLatency(t *testing.T) {
	// Q2: bounded SUM of latency over tuples {1,2,5,6} = [19, 28].
	tab := pathTable(t)
	got := Eval(tab, col(tab, workload.ColLatency), Sum, nil)
	if !got.Equal(interval.New(19, 28)) {
		t.Errorf("Q2 = %v, want [19, 28]", got)
	}
}

func TestQ3CountAndSumTraffic(t *testing.T) {
	// Q3 setup: COUNT = 6 exactly; full-table traffic SUM bound.
	tab := workload.Figure2Table()
	cnt := Eval(tab, col(tab, workload.ColTraffic), Count, nil)
	if !cnt.Equal(interval.Point(6)) {
		t.Errorf("COUNT = %v, want [6]", cnt)
	}
	sum := Eval(tab, col(tab, workload.ColTraffic), Sum, nil)
	// Sums of Figure 2 traffic bounds: 95+110+95+120+90+90=600,
	// 105+120+110+145+110+105=695.
	if !sum.Equal(interval.New(600, 695)) {
		t.Errorf("traffic SUM = %v, want [600, 695]", sum)
	}
}

func TestAvgNoPredicateIsSumOverCount(t *testing.T) {
	tab := workload.Figure2Table()
	avg := Eval(tab, col(tab, workload.ColTraffic), Avg, nil)
	want := interval.New(100, 695.0/6)
	if !avg.ApproxEqual(want, 1e-9) {
		t.Errorf("AVG = %v, want %v", avg, want)
	}
}

func TestMaxNoPredicate(t *testing.T) {
	tab := pathTable(t)
	got := Eval(tab, col(tab, workload.ColLatency), Max, nil)
	// Latency bounds of {1,2,5,6}: [2,4],[5,7],[8,11],[4,6] → [8, 11].
	if !got.Equal(interval.New(8, 11)) {
		t.Errorf("MAX = %v, want [8, 11]", got)
	}
}

func fastLinks(t *relation.Table) predicate.Expr {
	s := t.Schema()
	return predicate.NewAnd(
		predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColBandwidth), "bandwidth"), predicate.Gt, predicate.Const(50)),
		predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColLatency), "latency"), predicate.Lt, predicate.Const(10)),
	)
}

func highLatency(t *relation.Table) predicate.Expr {
	s := t.Schema()
	return predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColLatency), "latency"), predicate.Gt, predicate.Const(10))
}

func highTraffic(t *relation.Table) predicate.Expr {
	s := t.Schema()
	return predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColTraffic), "traffic"), predicate.Gt, predicate.Const(100))
}

func TestQ4MinTrafficFastLinks(t *testing.T) {
	// Q4: MIN traffic WHERE bandwidth > 50 AND latency < 10 = [90, 105].
	tab := workload.Figure2Table()
	got := Eval(tab, col(tab, workload.ColTraffic), Min, fastLinks(tab))
	if !got.Equal(interval.New(90, 105)) {
		t.Errorf("Q4 = %v, want [90, 105]", got)
	}
}

func TestQ5CountHighLatency(t *testing.T) {
	// Q5: COUNT WHERE latency > 10 = [1, 3].
	tab := workload.Figure2Table()
	got := Eval(tab, col(tab, workload.ColLatency), Count, highLatency(tab))
	if !got.Equal(interval.New(1, 3)) {
		t.Errorf("Q5 = %v, want [1, 3]", got)
	}
}

func TestQ6AvgLatencyHighTrafficTight(t *testing.T) {
	// Q6: AVG latency WHERE traffic > 100; Appendix E computes the tight
	// bound [5, 11.33...].
	tab := workload.Figure2Table()
	got := Eval(tab, col(tab, workload.ColLatency), Avg, highTraffic(tab))
	want := interval.New(5, 34.0/3)
	if !got.ApproxEqual(want, 1e-9) {
		t.Errorf("Q6 tight = %v, want %v", got, want)
	}
}

func TestQ6AvgLatencyHighTrafficLoose(t *testing.T) {
	// Section 6.4.1: the linear-time loose bound for Q6 is [2.33, 27.5],
	// from SUM=[14,55] and COUNT=[2,6].
	tab := workload.Figure2Table()
	got := EvalLooseAvg(tab, col(tab, workload.ColLatency), highTraffic(tab))
	want := interval.New(14.0/6, 27.5)
	if !got.ApproxEqual(want, 1e-9) {
		t.Errorf("Q6 loose = %v, want %v", got, want)
	}
	// The tight bound must be contained in the loose bound.
	tight := Eval(tab, col(tab, workload.ColLatency), Avg, highTraffic(tab))
	if !got.ContainsInterval(tight) {
		t.Errorf("loose %v does not contain tight %v", got, tight)
	}
}

func TestSumWithPredicate(t *testing.T) {
	// SUM latency WHERE traffic > 100: T+ = {2,4} contribute [5,7]+[9,11];
	// T? = {1,3,5,6} contribute only positive H: 4+16+11+6.
	tab := workload.Figure2Table()
	got := Eval(tab, col(tab, workload.ColLatency), Sum, highTraffic(tab))
	want := interval.New(14, 55)
	if !got.Equal(want) {
		t.Errorf("SUM pred = %v, want %v", got, want)
	}
}

func TestSumPredicateNegativeValues(t *testing.T) {
	// T? tuples with negative lower endpoints drag the SUM lower bound
	// down (section 6.2).
	s := relation.NewSchema(
		relation.Column{Name: "v", Kind: relation.Bounded},
		relation.Column{Name: "w", Kind: relation.Bounded},
	)
	tab := relation.NewTable(s)
	tab.MustInsert(relation.Tuple{Key: 1, Bounds: []interval.Interval{interval.New(-5, -2), interval.New(0, 10)}, Cost: 1})
	tab.MustInsert(relation.Tuple{Key: 2, Bounds: []interval.Interval{interval.New(3, 4), interval.New(6, 10)}, Cost: 1})
	p := predicate.NewCmp(predicate.Column(1, "w"), predicate.Gt, predicate.Const(5))
	// Tuple 1: T? (w=[0,10] vs >5), v=[-5,-2]: contributes -5 to lower, 0 to upper.
	// Tuple 2: T+ (w=[6,10]), contributes [3,4].
	got := Eval(tab, 0, Sum, p)
	if !got.Equal(interval.New(-2, 4)) {
		t.Errorf("SUM = %v, want [-2, 4]", got)
	}
}

func TestMinPredicateEmptyPlus(t *testing.T) {
	// With no T+ tuples the MIN has no finite upper bound.
	tab := workload.Figure2Table()
	s := tab.Schema()
	// traffic > 130: only tuple 4 ([120,145]) is T?, others T−.
	p := predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColTraffic), "traffic"), predicate.Gt, predicate.Const(130))
	got := Eval(tab, col(tab, workload.ColTraffic), Min, p)
	if !math.IsInf(got.Hi, 1) {
		t.Errorf("MIN upper = %v, want +Inf", got.Hi)
	}
	// Lower bound comes from tuple 4's shrunk bound [130, 145].
	if got.Lo != 130 {
		t.Errorf("MIN lower = %v, want 130 (shrunk)", got.Lo)
	}
}

func TestMaxPredicateSymmetric(t *testing.T) {
	tab := workload.Figure2Table()
	got := Eval(tab, col(tab, workload.ColLatency), Max, highTraffic(tab))
	// T+ = {2,4}: max L = max(5,9) = 9. T+∪T? max H = 16 (tuple 3).
	if !got.Equal(interval.New(9, 16)) {
		t.Errorf("MAX pred = %v, want [9, 16]", got)
	}
}

func TestEmptySelectionConventions(t *testing.T) {
	tab := workload.Figure2Table()
	s := tab.Schema()
	// latency > 1000: everything T−.
	p := predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColLatency), "latency"), predicate.Gt, predicate.Const(1000))
	lat := col(tab, workload.ColLatency)
	if got := Eval(tab, lat, Min, p); !got.IsEmpty() {
		t.Errorf("MIN empty = %v", got)
	}
	if got := Eval(tab, lat, Max, p); !got.IsEmpty() {
		t.Errorf("MAX empty = %v", got)
	}
	if got := Eval(tab, lat, Avg, p); !got.IsEmpty() {
		t.Errorf("AVG empty = %v", got)
	}
	if got := Eval(tab, lat, Sum, p); !got.Equal(interval.Point(0)) {
		t.Errorf("SUM empty = %v, want [0]", got)
	}
	if got := Eval(tab, lat, Count, p); !got.Equal(interval.Point(0)) {
		t.Errorf("COUNT empty = %v, want [0]", got)
	}
}

func TestCollectShrinking(t *testing.T) {
	// Aggregating latency under latency > 10 shrinks T? bounds.
	tab := workload.Figure2Table()
	lat := col(tab, workload.ColLatency)
	inputs := Collect(tab, lat, highLatency(tab), true)
	// T+ = {3}, T? = {4 ([9,11]→[10,11]), 5 ([8,11]→[10,11])}.
	if len(inputs) != 3 {
		t.Fatalf("collected %d inputs", len(inputs))
	}
	for _, in := range inputs {
		if in.Key == 4 || in.Key == 5 {
			if in.Bound.Lo != 10 {
				t.Errorf("tuple %d bound = %v, want lo 10", in.Key, in.Bound)
			}
		}
	}
	// Without shrinking, original bounds persist.
	raw := Collect(tab, lat, highLatency(tab), false)
	for _, in := range raw {
		if in.Key == 4 && in.Bound.Lo != 9 {
			t.Errorf("unshrunk tuple 4 = %v", in.Bound)
		}
	}
}

func TestExactGroundTruth(t *testing.T) {
	tab := workload.Figure2Table()
	master := workload.Figure2Master()
	lat := col(tab, workload.ColLatency)
	tr := col(tab, workload.ColTraffic)
	bw := col(tab, workload.ColBandwidth)

	if v, ok := Exact(tab, bw, Min, nil, master); !ok || v != 45 {
		t.Errorf("exact MIN bandwidth = %g, %v", v, ok)
	}
	if v, ok := Exact(tab, lat, Sum, nil, master); !ok || v != 48 {
		t.Errorf("exact SUM latency = %g (want 3+7+13+9+11+5=48)", v)
	}
	if v, ok := Exact(tab, lat, Count, highLatency(tab), master); !ok || v != 2 {
		t.Errorf("exact COUNT latency>10 = %g, want 2", v)
	}
	// AVG latency where traffic > 100: true traffic {116,105,127,103} →
	// tuples {2,3,4,6}, latencies {7,13,9,5}, avg 8.5.
	if v, ok := Exact(tab, lat, Avg, highTraffic(tab), master); !ok || v != 8.5 {
		t.Errorf("exact AVG = %g, want 8.5", v)
	}
	if v, ok := Exact(tab, tr, Max, nil, master); !ok || v != 127 {
		t.Errorf("exact MAX traffic = %g, want 127", v)
	}
	// Undefined aggregate.
	s := tab.Schema()
	never := predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColLatency), "latency"), predicate.Gt, predicate.Const(1e6))
	if _, ok := Exact(tab, lat, Min, never, master); ok {
		t.Error("exact MIN over empty selection reported ok")
	}
}

func TestBoundedAnswersContainExact(t *testing.T) {
	// Every bounded answer over Figure 2 must contain the corresponding
	// exact answer — the paper's core guarantee.
	tab := workload.Figure2Table()
	master := workload.Figure2Master()
	cols := []int{col(tab, workload.ColLatency), col(tab, workload.ColBandwidth), col(tab, workload.ColTraffic)}
	preds := []predicate.Expr{nil, fastLinks(tab), highLatency(tab), highTraffic(tab)}
	fns := []Func{Min, Max, Sum, Count, Avg}
	for _, c := range cols {
		for _, p := range preds {
			for _, fn := range fns {
				bounded := Eval(tab, c, fn, p)
				exact, ok := Exact(tab, c, fn, p, master)
				if !ok {
					continue
				}
				if !bounded.Expand(1e-9).Contains(exact) {
					t.Errorf("%v col %d pred %v: bounded %v misses exact %g",
						fn, c, p, bounded, exact)
				}
			}
		}
	}
}

func TestFuncStringParse(t *testing.T) {
	for _, fn := range []Func{Min, Max, Sum, Count, Avg} {
		parsed, err := ParseFunc(fn.String())
		if err != nil || parsed != fn {
			t.Errorf("round trip %v failed: %v, %v", fn, parsed, err)
		}
	}
	if _, err := ParseFunc("MEDIAN"); err == nil {
		t.Error("MEDIAN accepted")
	}
}

// TestCollectStoreMatchesFlat builds a large relation twice — once as a
// flat table, once as sharded stores of several shard counts, inserting
// in a scrambled order — and checks the shard-parallel scan returns
// exactly the flat scan's canonical key-ordered inputs and bit-identical
// answers for every aggregate, with and without a predicate.
func TestCollectStoreMatchesFlat(t *testing.T) {
	schema := relation.NewSchema(
		relation.Column{Name: "v", Kind: relation.Bounded},
		relation.Column{Name: "w", Kind: relation.Bounded},
	)
	tab := relation.NewTable(schema)
	const n = 5000
	mk := func(i int) relation.Tuple {
		lo := float64(i%977) - 300
		return relation.Tuple{
			Key:    int64(i),
			Cost:   float64(i%7 + 1),
			Bounds: []interval.Interval{interval.New(lo, lo+float64(i%13)), interval.Point(float64(i % 10))},
		}
	}
	for i := 0; i < n; i++ {
		tab.MustInsert(mk(i))
	}
	col := schema.MustLookup("v")
	pred := predicate.NewCmp(predicate.Column(col, "v"), predicate.Gt, predicate.Const(25))
	for _, nshards := range []int{1, 4, 16} {
		st := relation.NewStore(schema, nshards)
		// Scrambled insertion order: canonical key order must not depend
		// on physical layout.
		for i := 0; i < n; i++ {
			st.MustInsert(mk((i*2654435761 + 17) % n))
		}
		for _, p := range []predicate.Expr{nil, pred} {
			serial := Collect(tab, col, p, true)
			for _, workers := range []int{0, 1, 3} {
				par, tableLen := CollectStore(st, col, p, true, workers)
				if tableLen != n {
					t.Fatalf("shards=%d workers=%d: tableLen %d, want %d", nshards, workers, tableLen, n)
				}
				if len(par) != len(serial) {
					t.Fatalf("shards=%d workers=%d: %d inputs, flat %d", nshards, workers, len(par), len(serial))
				}
				for i := range par {
					// Index differs by design (canonical vs physical
					// position); everything else must match exactly.
					got, want := par[i], serial[i]
					got.Index, want.Index = 0, 0
					if got != want {
						t.Fatalf("shards=%d workers=%d: input %d = %+v, flat %+v", nshards, workers, i, par[i], serial[i])
					}
				}
			}
			for _, fn := range []Func{Min, Max, Sum, Count, Avg} {
				want := Eval(tab, col, fn, p)
				if got := EvalStore(st, col, fn, p, 4); got != want {
					t.Errorf("shards=%d %v store = %v, flat = %v", nshards, fn, got, want)
				}
				// The streaming fold must replay the same arithmetic in
				// the same canonical order — bit-identical, repeatedly
				// (pooled buffers must not leak state between calls).
				for rep := 0; rep < 2; rep++ {
					got, gotLen := EvalStoreStream(st, col, fn, p)
					if got != want || gotLen != n {
						t.Errorf("shards=%d %v stream = %v (len %d), flat = %v", nshards, fn, got, gotLen, want)
					}
				}
			}
		}
	}
}
