// Package aggregate computes bounded answers to the five standard
// relational aggregation functions over bounded data, with and without
// selection predicates (paper sections 5 and 6, Appendices C and E).
//
// A bounded answer is an interval [LA, HA] guaranteed to contain the
// precise answer that would be obtained from the master values, for every
// possible assignment of master values inside the cached bounds. The
// precision of the answer is its width HA − LA.
package aggregate

import (
	"fmt"
	"math"
	"slices"

	"trapp/internal/interval"
	"trapp/internal/parallel"
	"trapp/internal/predicate"
	"trapp/internal/relation"
)

// Func identifies an aggregation function.
type Func int8

const (
	// Min is the MIN aggregate.
	Min Func = iota
	// Max is the MAX aggregate.
	Max
	// Sum is the SUM aggregate.
	Sum
	// Count is the COUNT aggregate.
	Count
	// Avg is the AVG aggregate.
	Avg
)

// String returns the SQL name of the aggregate.
func (f Func) String() string {
	switch f {
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	case Sum:
		return "SUM"
	case Count:
		return "COUNT"
	default:
		return "AVG"
	}
}

// ParseFunc parses a SQL aggregate name (upper case) into a Func.
func ParseFunc(name string) (Func, error) {
	switch name {
	case "MIN":
		return Min, nil
	case "MAX":
		return Max, nil
	case "SUM":
		return Sum, nil
	case "COUNT":
		return Count, nil
	case "AVG":
		return Avg, nil
	default:
		return 0, fmt.Errorf("aggregate: unknown function %q", name)
	}
}

// Input is the per-tuple view consumed by bounded-answer computation and
// by the CHOOSE_REFRESH algorithms: the tuple's (possibly shrunk) bound on
// the aggregation column, its refresh cost, its predicate classification,
// and its index in the table.
type Input struct {
	// Index is the tuple's position in the table.
	Index int
	// Key is the tuple's object key.
	Key int64
	// Bound is the tuple's bound on the aggregation column, after the
	// Appendix D shrinking refinement when applicable.
	Bound interval.Interval
	// Cost is the tuple's refresh cost.
	Cost float64
	// Class is Plus (T+) or Maybe (T?); Minus tuples are omitted.
	Class predicate.Class
}

// collector holds the predicate classification state shared by the flat
// and sharded scans.
type collector struct {
	col     int
	p       predicate.Expr
	trivial bool
	restr   interval.Interval
}

// newCollector prepares classification over column col under predicate p;
// shrink enables the Appendix D refinement.
func newCollector(col int, p predicate.Expr, shrink bool) collector {
	c := collector{col: col, p: p, trivial: predicate.IsTrivial(p), restr: interval.Unbounded}
	if shrink && !c.trivial {
		c.restr = predicate.Restriction(p, col)
	}
	return c
}

// scan appends the T+ and T? inputs of t's tuples to out, with Index set
// to each tuple's position in t.
func (c collector) scan(t *relation.Table, out []Input) []Input {
	for i := 0; i < t.Len(); i++ {
		tu := t.At(i)
		cls := predicate.Plus
		if !c.trivial {
			cls = predicate.ClassifyTuple(c.p, tu)
		}
		if cls == predicate.Minus {
			continue
		}
		b := tu.Bounds[c.col]
		if cls == predicate.Maybe {
			s := b.Intersect(c.restr)
			if s.IsEmpty() {
				continue // cannot satisfy the restriction: effectively T−
			}
			b = s
		}
		out = append(out, Input{
			Index: i,
			Key:   tu.Key,
			Bound: b,
			Cost:  tu.Cost,
			Class: cls,
		})
	}
	return out
}

// CollectOne classifies a single tuple exactly as Collect's scan would:
// it returns the tuple's Input (with Index left zero — the caller knows
// the tuple's position) and whether the tuple contributes at all (false
// for T−, including T? tuples whose shrunk bound is empty). The batch
// executor uses it to patch a pre-refresh input snapshot with the
// refreshed tuples of one query's own plan, reproducing bit-identically
// the inputs a full post-refresh rescan would collect.
func CollectOne(tu *relation.Tuple, col int, p predicate.Expr, shrink bool) (Input, bool) {
	c := newCollector(col, p, shrink)
	cls := predicate.Plus
	if !c.trivial {
		cls = predicate.ClassifyTuple(c.p, tu)
	}
	if cls == predicate.Minus {
		return Input{}, false
	}
	b := tu.Bounds[c.col]
	if cls == predicate.Maybe {
		s := b.Intersect(c.restr)
		if s.IsEmpty() {
			return Input{}, false
		}
		b = s
	}
	return Input{Key: tu.Key, Bound: b, Cost: tu.Cost, Class: cls}, true
}

// sortCanonical orders inputs into the canonical order (see
// relation.CanonicalLess). Keys are unique, so the order — and therefore
// every order-sensitive fold over the inputs (floating-point summation,
// cost-tie breaking in CHOOSE_REFRESH) — is fully determined by the
// tuple set, independent of physical layout. This is what makes answers
// over any store or table bit-identical to answers over any other layout
// holding the same tuples. The already-sorted pre-check keeps the call
// linear for scans that emit canonical order natively (default-sharded
// stores).
func sortCanonical(inputs []Input) {
	sorted := true
	for i := 1; i < len(inputs); i++ {
		if relation.CanonicalLess(inputs[i].Key, inputs[i-1].Key) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	slices.SortFunc(inputs, func(a, b Input) int {
		switch {
		case relation.CanonicalLess(a.Key, b.Key):
			return -1
		case relation.CanonicalLess(b.Key, a.Key):
			return 1
		default:
			return 0
		}
	})
}

// Collect classifies the table's tuples against the predicate and returns
// the T+ and T? tuples' inputs for aggregation over column col, in the
// canonical ascending-key order (each Input.Index still records the
// tuple's physical table position). T− tuples are omitted: they
// contribute to no aggregate. When shrink is true the Appendix D
// refinement is applied: T? bounds are intersected with the predicate's
// restriction on the aggregation column. Tuples whose shrunk bound would
// be empty are reclassified as T− (their bound cannot satisfy the
// predicate's restriction on the aggregation column).
func Collect(t *relation.Table, col int, p predicate.Expr, shrink bool) []Input {
	c := newCollector(col, p, shrink)
	inputs := c.scan(t, make([]Input, 0, t.Len()))
	sortCanonical(inputs)
	return inputs
}

// CollectStore is Collect over a sharded store: the classification scan
// runs shard-natively — up to workers goroutines (0 means GOMAXPROCS),
// each scanning whole shards under their read locks — and the result is
// in the canonical order, so the inputs (and every answer or refresh
// plan computed from them) are bit-identical to a flat-table scan over
// the same tuples. A default-sharded store's scan emits canonical order
// natively (shards in index order, canonically sorted tuples within each shard —
// see relation.CanonicalLess), so the common case never sorts.
// Input.Index holds the input's position in the canonical order, since a
// sharded store has no global physical positions. The returned tableLen
// is the store cardinality at scan time, consistent with the scanned
// shards.
func CollectStore(st *relation.Store, col int, p predicate.Expr, shrink bool, workers int) (inputs []Input, tableLen int) {
	c := newCollector(col, p, shrink)
	ns := st.NumShards()
	if workers = parallel.Workers(workers); workers > ns {
		workers = ns
	}
	if workers <= 1 {
		inputs = make([]Input, 0, st.Len())
		for si := 0; si < ns; si++ {
			st.ViewShard(si, func(t *relation.Table) {
				tableLen += t.Len()
				inputs = c.scan(t, inputs)
			})
		}
	} else {
		parts := make([][]Input, ns)
		lens := make([]int, ns)
		parallel.ForEachChunk(ns, workers, func(_, lo, hi int) {
			for si := lo; si < hi; si++ {
				st.ViewShard(si, func(t *relation.Table) {
					lens[si] = t.Len()
					parts[si] = c.scan(t, make([]Input, 0, t.Len()))
				})
			}
		})
		total := 0
		for si := range parts {
			total += len(parts[si])
			tableLen += lens[si]
		}
		inputs = make([]Input, 0, total)
		for si := range parts {
			inputs = append(inputs, parts[si]...)
		}
	}
	if !st.Canonical() {
		sortCanonical(inputs)
	}
	for i := range inputs {
		inputs[i].Index = i
	}
	return inputs, tableLen
}

// Eval computes the bounded answer for the aggregate over column col of
// table t under predicate p (TruePred or nil for no predicate). For AVG
// with a predicate the tight O(n log n) bound of Appendix E is used; see
// EvalLooseAvg for the linear-time loose variant.
//
// Conventions for empty inputs follow the paper's min(∅) = +∞ /
// max(∅) = −∞: MIN/MAX/AVG over a certainly empty selection return
// interval.Empty; SUM returns [0, 0]; COUNT returns [0, 0].
func Eval(t *relation.Table, col int, fn Func, p predicate.Expr) interval.Interval {
	inputs := Collect(t, col, p, true)
	return EvalInputs(inputs, fn, predicate.IsTrivial(p), t.Len())
}

// EvalStore is Eval over a sharded store, with the scan shard-parallel
// across up to workers goroutines (see CollectStore). The answer is
// bit-identical to Eval over a flat table holding the same tuples.
func EvalStore(st *relation.Store, col int, fn Func, p predicate.Expr, workers int) interval.Interval {
	inputs, tableLen := CollectStore(st, col, p, true, workers)
	return EvalInputs(inputs, fn, predicate.IsTrivial(p), tableLen)
}

// EvalInputs computes the bounded answer from pre-collected inputs.
// noPredicate selects the section 5 formulas (all tuples count as T+);
// tableLen is the full table cardinality, needed by COUNT without a
// predicate.
func EvalInputs(inputs []Input, fn Func, noPredicate bool, tableLen int) interval.Interval {
	switch fn {
	case Min:
		return evalMin(inputs)
	case Max:
		return evalMax(inputs)
	case Sum:
		return evalSum(inputs, noPredicate)
	case Count:
		return evalCount(inputs, noPredicate, tableLen)
	case Avg:
		return evalAvgTight(inputs)
	default:
		panic(fmt.Sprintf("aggregate: unknown func %d", fn))
	}
}

// evalMin implements sections 5.1 and 6.1:
// [min over T+∪T? of L, min over T+ of H]. Without a predicate every tuple
// is T+ so both reductions range over all tuples. An empty T+ leaves the
// answer unbounded above (+∞); empty input yields Empty.
func evalMin(inputs []Input) interval.Interval {
	lo, hi := interval.Empty, interval.Empty
	for _, in := range inputs {
		if lo.IsEmpty() || in.Bound.Lo < lo.Lo {
			lo = interval.Point(in.Bound.Lo)
		}
		if in.Class == predicate.Plus {
			if hi.IsEmpty() || in.Bound.Hi < hi.Lo {
				hi = interval.Point(in.Bound.Hi)
			}
		}
	}
	if lo.IsEmpty() {
		return interval.Empty
	}
	if hi.IsEmpty() {
		return interval.Interval{Lo: lo.Lo, Hi: interval.Unbounded.Hi}
	}
	return interval.Interval{Lo: lo.Lo, Hi: hi.Lo}
}

// evalMax implements the symmetric Appendix C formulas:
// [max over T+ of L, max over T+∪T? of H].
func evalMax(inputs []Input) interval.Interval {
	lo, hi := interval.Empty, interval.Empty
	for _, in := range inputs {
		if hi.IsEmpty() || in.Bound.Hi > hi.Lo {
			hi = interval.Point(in.Bound.Hi)
		}
		if in.Class == predicate.Plus {
			if lo.IsEmpty() || in.Bound.Lo > lo.Lo {
				lo = interval.Point(in.Bound.Lo)
			}
		}
	}
	if hi.IsEmpty() {
		return interval.Empty
	}
	if lo.IsEmpty() {
		return interval.Interval{Lo: interval.Unbounded.Lo, Hi: hi.Lo}
	}
	return interval.Interval{Lo: lo.Lo, Hi: hi.Lo}
}

// evalSum implements sections 5.2 and 6.2. Without a predicate:
// [ΣL, ΣH]. With one: T+ tuples contribute their full bounds; T? tuples
// contribute only negative L to the lower bound and only positive H to the
// upper bound (their bounds are effectively extended to include 0, since
// they may contribute nothing).
//
// The summation is bucket-structured: contributions accumulate into
// per-canonical-bucket subtotals which are then combined in ascending
// bucket order (see bucketSums). Canonical input order is ascending
// (bucket, key), so the per-bucket sequences are exactly the canonical
// subsequences — the fold is a fixed regrouping of the canonical scan,
// identical no matter how the inputs are split along bucket boundaries.
// A cluster partition owning whole buckets can therefore ship its
// subtotals and the coordinator's merge is bit-identical to a
// single-node fold (DESIGN.md §14).
func evalSum(inputs []Input, noPredicate bool) interval.Interval {
	var s bucketSums
	for _, in := range inputs {
		bk := relation.CanonicalBucket(in.Key)
		if noPredicate || in.Class == predicate.Plus {
			s.add(bk, in.Bound.Lo, in.Bound.Hi)
			continue
		}
		lo, hi := in.Bound.Lo, in.Bound.Hi
		if lo >= 0 {
			lo = 0
		}
		if hi <= 0 {
			hi = 0
		}
		s.add(bk, lo, hi)
	}
	l, h := s.fold()
	return interval.Interval{Lo: l, Hi: h}
}

// bucketSums is a pair of per-canonical-bucket running sums plus a
// presence mask. A bucket participates in the final fold iff at least one
// contribution was added to it — the presence rule that keeps the fold a
// pure function of the contributing-input multiset (an untouched bucket
// must not inject a +0.0 that could flip a −0.0 subtotal's sign).
type bucketSums struct {
	lo, hi  [relation.NumCanonicalBuckets]float64
	present uint64
}

func (s *bucketSums) add(bucket int, lo, hi float64) {
	s.lo[bucket] += lo
	s.hi[bucket] += hi
	s.present |= 1 << bucket
}

// fold combines the subtotals of the present buckets in ascending bucket
// order — the one canonical combination order every layout and every
// partition merge uses.
func (s *bucketSums) fold() (lo, hi float64) {
	for b := 0; b < relation.NumCanonicalBuckets; b++ {
		if s.present&(1<<b) == 0 {
			continue
		}
		lo += s.lo[b]
		hi += s.hi[b]
	}
	return lo, hi
}

// evalCount implements sections 5.3 and 6.3. Without a predicate the
// cached cardinality is exact. With one: [|T+|, |T+| + |T?|].
func evalCount(inputs []Input, noPredicate bool, tableLen int) interval.Interval {
	if noPredicate {
		return interval.Point(float64(tableLen))
	}
	plus, maybe := 0, 0
	for _, in := range inputs {
		if in.Class == predicate.Plus {
			plus++
		} else {
			maybe++
		}
	}
	return interval.Interval{Lo: float64(plus), Hi: float64(plus + maybe)}
}

// evalAvgTight implements the Appendix E tight bound for AVG.
//
// Lower endpoint: start from the average of the T+ tuples' lower endpoints
// and fold in T? lower endpoints in increasing order while each further
// endpoint decreases the running average. The upper endpoint is symmetric
// with upper endpoints in decreasing order. When T+ is empty the running
// average starts from the first T? endpoint (an AVG over a possibly empty
// selection is only defined when at least one tuple contributes; the bound
// covers every nonempty subset). Without a predicate every tuple is T+ and
// the result reduces to [mean of L, mean of H].
func evalAvgTight(inputs []Input) interval.Interval {
	if len(inputs) == 0 {
		return interval.Empty
	}
	// The T+ seed sums are bucket-structured like evalSum's, so a
	// partition's seed subtotals merge into the global seed bit-identically
	// (DESIGN.md §14). T? bounds participate only through the value-sorted
	// prefix fold below, which is already order-independent.
	var seeds bucketSums
	k := 0
	var maybes []Input
	for _, in := range inputs {
		if in.Class == predicate.Plus {
			seeds.add(relation.CanonicalBucket(in.Key), in.Bound.Lo, in.Bound.Hi)
			k++
		} else {
			maybes = append(maybes, in)
		}
	}
	sl, sh := seeds.fold()
	lo := foldAvg(sl, k, maybes, func(in Input) float64 { return in.Bound.Lo }, true)
	hi := foldAvg(sh, k, maybes, func(in Input) float64 { return in.Bound.Hi }, false)
	return interval.Interval{Lo: lo, Hi: hi}
}

// canonicalFloatCmp is a total order on endpoint values: ascending, with
// −0.0 ordered before +0.0. sort.Float64s treats the two zeros as equal,
// which would leave the fold sequence — and hence the folded sum's sign
// bits — dependent on input order; the tie-break makes the sorted
// sequence a pure function of the value multiset, so partitioned and
// single-node folds over the same multiset are bit-identical.
func canonicalFloatCmp(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	sa, sb := math.Signbit(a), math.Signbit(b)
	switch {
	case sa == sb:
		return 0
	case sa:
		return -1
	default:
		return 1
	}
}

// foldAvg performs the Appendix E prefix-averaging fold. s and k are the
// T+ seed sum and count; endpoint extracts the relevant endpoint from a T?
// tuple; minimize selects whether endpoints are folded in increasing order
// to minimize the average (lower bound) or decreasing order to maximize it
// (upper bound).
func foldAvg(s float64, k int, maybes []Input, endpoint func(Input) float64, minimize bool) float64 {
	vals := make([]float64, len(maybes))
	for i, in := range maybes {
		vals[i] = endpoint(in)
	}
	slices.SortFunc(vals, canonicalFloatCmp)
	if !minimize {
		for i, j := 0, len(vals)-1; i < j; i, j = i+1, j-1 {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
	i := 0
	if k == 0 {
		// Empty T+: seed with the extreme T? endpoint.
		s, k, i = vals[0], 1, 1
	}
	for ; i < len(vals); i++ {
		avg := s / float64(k)
		if minimize {
			if vals[i] >= avg {
				break
			}
		} else {
			if vals[i] <= avg {
				break
			}
		}
		s += vals[i]
		k++
	}
	return s / float64(k)
}

// EvalLooseAvg computes the linear-time loose AVG bound of section 6.4.1:
// divide the SUM bound endpoints by the COUNT bound endpoints and take the
// widest combination. When the count lower bound is zero (possibly empty
// selection) the division degenerates, so the bound falls back to
// [min of L, max of H] over contributing tuples — sound because an average
// always lies between the minimum and maximum element.
func EvalLooseAvg(t *relation.Table, col int, p predicate.Expr) interval.Interval {
	inputs := Collect(t, col, p, true)
	return EvalLooseAvgInputs(inputs, predicate.IsTrivial(p), t.Len())
}

// EvalLooseAvgInputs is EvalLooseAvg over pre-collected inputs.
func EvalLooseAvgInputs(inputs []Input, noPredicate bool, tableLen int) interval.Interval {
	if len(inputs) == 0 {
		return interval.Empty
	}
	sum := evalSum(inputs, noPredicate)
	cnt := evalCount(inputs, noPredicate, tableLen)
	if cnt.Lo <= 0 {
		lo, hi := interval.Empty, interval.Empty
		for _, in := range inputs {
			lo = lo.Min(interval.Point(in.Bound.Lo))
			hi = hi.Max(interval.Point(in.Bound.Hi))
		}
		return interval.Interval{Lo: lo.Lo, Hi: hi.Hi}
	}
	la := sum.Lo / cnt.Hi
	if v := sum.Lo / cnt.Lo; v < la {
		la = v
	}
	ha := sum.Hi / cnt.Lo
	if v := sum.Hi / cnt.Hi; v > ha {
		ha = v
	}
	return interval.Interval{Lo: la, Hi: ha}
}

// Exact computes the precise aggregate from master values, the ground
// truth used by tests and by precise-mode baselines. The master map holds,
// for each tuple key, exact values for the table's bounded columns in
// schema order; exact columns take their cached point values. ok is false
// when the aggregate is undefined (MIN/MAX/AVG over an empty selection).
func Exact(t *relation.Table, col int, fn Func, p predicate.Expr, master map[int64][]float64) (result float64, ok bool) {
	schema := t.Schema()
	bcols := schema.BoundedColumns()
	bpos := make(map[int]int, len(bcols))
	for j, c := range bcols {
		bpos[c] = j
	}
	var vals []float64
	count := 0
	var sum float64
	best := 0.0
	haveBest := false
	for i := range t.Tuples() {
		tu := t.At(i)
		mv := master[tu.Key]
		if vals == nil {
			vals = make([]float64, schema.NumColumns())
		}
		for c := 0; c < schema.NumColumns(); c++ {
			if j, isBounded := bpos[c]; isBounded {
				vals[c] = mv[j]
			} else {
				vals[c] = tu.Bounds[c].Lo
			}
		}
		if p != nil && !p.EvalExact(vals) {
			continue
		}
		v := vals[col]
		count++
		sum += v
		switch fn {
		case Min:
			if !haveBest || v < best {
				best, haveBest = v, true
			}
		case Max:
			if !haveBest || v > best {
				best, haveBest = v, true
			}
		}
	}
	switch fn {
	case Count:
		return float64(count), true
	case Sum:
		return sum, true
	case Avg:
		if count == 0 {
			return 0, false
		}
		return sum / float64(count), true
	default: // Min, Max
		if !haveBest {
			return 0, false
		}
		return best, true
	}
}
