// Package join implements bounded aggregation queries over two-table joins
// (paper section 7). Computing the bounded answer reuses the predicate
// classification machinery of section 6: each joined pair of base tuples is
// classified into T+/T?/T− by evaluating the combined join-and-selection
// predicate over the concatenated bounds, and the single-table aggregation
// formulas then apply to the classified pairs.
//
// Choosing tuples to refresh is substantially harder for joins — each base
// tuple can feed many joined pairs, and each pair can be shrunk by
// refreshing either side — and the paper stops at noting it considered
// heuristics. This package implements two documented heuristics:
//
//   - BatchGreedy: conservative a-priori selection that repeatedly picks the
//     base tuple with the best worst-case width reduction per unit cost
//     until the worst-case post-refresh width meets the constraint. The
//     guarantee holds for any master values inside the bounds, like the
//     single-table algorithms.
//   - Iterative: the section 8.2 style online loop — refresh the current
//     best-scoring base tuple, recompute the actual bounded answer, and stop
//     as soon as the constraint is met. Usually cheaper in refresh cost, but
//     refreshes are sequential rather than batched.
package join

import (
	"fmt"
	"math"
	"sort"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/relation"
)

// Side identifies which base table a column or tuple belongs to.
type Side int8

const (
	// Left is the first table in the FROM clause.
	Left Side = iota
	// Right is the second.
	Right
)

// String returns "left" or "right".
func (s Side) String() string {
	if s == Left {
		return "left"
	}
	return "right"
}

// Spec describes an aggregation query over a two-table join:
//
//	SELECT AGG(side.column) WITHIN R FROM left, right WHERE pred
//
// The predicate is expressed over the concatenated schema: columns
// 0..len(left)−1 are the left table's, the rest are the right table's
// shifted by len(left).
type Spec struct {
	// Agg is the aggregation function.
	Agg aggregate.Func
	// AggSide and AggColumn locate the aggregation column in its base
	// table's schema.
	AggSide   Side
	AggColumn int
	// Pred is the combined join + selection predicate over the
	// concatenated column space; it must not be nil (a join without a
	// predicate is a plain cross product, which is supported by passing
	// predicate.TruePred).
	Pred predicate.Expr
	// Within is the precision constraint R.
	Within float64
}

// ShiftColumn converts a right-table column index into the concatenated
// predicate column space.
func ShiftColumn(leftSchema *relation.Schema, rightCol int) int {
	return leftSchema.NumColumns() + rightCol
}

// pair is one joined tuple: indexes into the two base tables plus the
// concatenated-bounds tuple used for classification.
type pair struct {
	li, ri int
	class  predicate.Class
	bound  interval.Interval // aggregation column bound
}

// classifyPairs enumerates the cross product and classifies every pair
// whose membership is possible. The nested loop is O(|L|·|R|); at the
// paper's simulation scale this is adequate, and the classification
// predicates could be pushed into standard join algorithms as the paper
// notes.
func classifyPairs(left, right *relation.Table, spec Spec) []pair {
	nl := left.Schema().NumColumns()
	nr := right.Schema().NumColumns()
	combined := make([]interval.Interval, nl+nr)
	var pairs []pair
	for li := 0; li < left.Len(); li++ {
		lt := left.At(li)
		copy(combined[:nl], lt.Bounds)
		for ri := 0; ri < right.Len(); ri++ {
			rt := right.At(ri)
			copy(combined[nl:], rt.Bounds)
			tu := relation.Tuple{Bounds: combined}
			cls := predicate.ClassifyTuple(spec.Pred, &tu)
			if cls == predicate.Minus {
				continue
			}
			b := lt.Bounds[spec.AggColumn]
			if spec.AggSide == Right {
				b = rt.Bounds[spec.AggColumn]
			}
			pairs = append(pairs, pair{li: li, ri: ri, class: cls, bound: b})
		}
	}
	return pairs
}

// Eval computes the bounded answer for the join query from cached bounds,
// applying the section 6 aggregation formulas to the classified pairs.
func Eval(left, right *relation.Table, spec Spec) interval.Interval {
	pairs := classifyPairs(left, right, spec)
	inputs := make([]aggregate.Input, len(pairs))
	for i, p := range pairs {
		inputs[i] = aggregate.Input{Index: i, Bound: p.bound, Class: p.class}
	}
	return aggregate.EvalInputs(inputs, spec.Agg, false, left.Len()*right.Len())
}

// Plan is a refresh selection over the two base tables.
type Plan struct {
	// LeftKeys and RightKeys are the base tuples to refresh on each side.
	LeftKeys, RightKeys []int64
	// Cost is the total refresh cost.
	Cost float64
}

// Len returns the total number of base-tuple refreshes.
func (p Plan) Len() int { return len(p.LeftKeys) + len(p.RightKeys) }

// baseRef identifies one base tuple.
type baseRef struct {
	side Side
	idx  int
}

// BatchGreedy selects a refresh set that guarantees the precision
// constraint for any master values inside the current bounds. It uses a
// conservative worst-case width model: a joined pair stops contributing
// uncertainty only when both of its base tuples are refreshed (its value
// becomes exact and its membership definite); a T+ pair whose
// aggregation-side tuple is refreshed also stops contributing for SUM/AVG.
// Greedily, the base tuple with the largest worst-case width reduction per
// unit cost is added until the modelled width is within R.
func BatchGreedy(left, right *relation.Table, spec Spec) (Plan, error) {
	if spec.Within < 0 || math.IsNaN(spec.Within) {
		return Plan{}, fmt.Errorf("join: invalid precision constraint %g", spec.Within)
	}
	pairs := classifyPairs(left, right, spec)
	chosen := make(map[baseRef]bool)

	width := func() float64 { return worstWidth(pairs, chosen, spec, left, right) }
	if math.IsInf(spec.Within, 1) {
		return Plan{}, nil
	}
	for width() > spec.Within+1e-12 {
		best, bestScore := baseRef{}, -1.0
		for _, cand := range candidates(pairs, chosen) {
			cost := refreshCost(left, right, cand)
			chosen[cand] = true
			reduced := width()
			delete(chosen, cand)
			gain := worstWidth(pairs, chosen, spec, left, right) - reduced
			score := gain / math.Max(cost, 1e-9)
			if score > bestScore {
				best, bestScore = cand, score
			}
		}
		if bestScore < 0 {
			return Plan{}, fmt.Errorf("join: no refresh candidate reduces width")
		}
		if bestScore == 0 {
			// No single tuple helps (pairs need both sides); pick the
			// cheapest unchosen tuple of the pair with the widest
			// contribution to make progress.
			best = cheapestBlocking(pairs, chosen, left, right)
		}
		chosen[best] = true
	}
	return materialize(left, right, chosen), nil
}

// candidates returns the unchosen base tuples of unresolved pairs.
func candidates(pairs []pair, chosen map[baseRef]bool) []baseRef {
	seen := make(map[baseRef]bool)
	var out []baseRef
	for _, p := range pairs {
		for _, ref := range []baseRef{{Left, p.li}, {Right, p.ri}} {
			if !chosen[ref] && !seen[ref] {
				seen[ref] = true
				out = append(out, ref)
			}
		}
	}
	return out
}

// cheapestBlocking finds the cheapest unchosen tuple among pairs that are
// not fully resolved.
func cheapestBlocking(pairs []pair, chosen map[baseRef]bool, left, right *relation.Table) baseRef {
	best, bestCost := baseRef{}, math.Inf(1)
	for _, p := range pairs {
		if chosen[baseRef{Left, p.li}] && chosen[baseRef{Right, p.ri}] {
			continue
		}
		for _, ref := range []baseRef{{Left, p.li}, {Right, p.ri}} {
			if chosen[ref] {
				continue
			}
			if c := refreshCost(left, right, ref); c < bestCost {
				best, bestCost = ref, c
			}
		}
	}
	return best
}

// refreshCost returns the cost of refreshing a base tuple.
func refreshCost(left, right *relation.Table, ref baseRef) float64 {
	if ref.side == Left {
		return left.At(ref.idx).Cost
	}
	return right.At(ref.idx).Cost
}

// worstWidth computes the conservative post-refresh answer width for the
// current chosen set: pairs with both sides chosen are resolved; remaining
// pairs contribute their current (membership-extended) uncertainty.
func worstWidth(pairs []pair, chosen map[baseRef]bool, spec Spec, left, right *relation.Table) float64 {
	inputs := make([]aggregate.Input, 0, len(pairs))
	for i, p := range pairs {
		lDone := chosen[baseRef{Left, p.li}]
		rDone := chosen[baseRef{Right, p.ri}]
		aggDone := lDone
		if spec.AggSide == Right {
			aggDone = rDone
		}
		b := p.bound
		cls := p.class
		switch {
		case lDone && rDone:
			// Fully resolved: value exact, membership definite. Worst case
			// still spans the bound for MIN/MAX (the exact value can land
			// anywhere), but contributes no membership uncertainty; for
			// SUM/COUNT/AVG it contributes zero residual width. Model as a
			// T+ point at either end — we take the conservative midpoint
			// representation: a point contributes no width to SUM/COUNT,
			// and MIN/MAX handle it via the bound endpoints below.
			if spec.Agg == aggregate.Min || spec.Agg == aggregate.Max {
				// The exact value lies somewhere in b; keep the bound but
				// as T+ (definite membership is the worst case for MIN's
				// upper endpoint is covered by b.Hi).
				inputs = append(inputs, aggregate.Input{Index: i, Bound: b, Class: predicate.Plus})
			}
			continue
		case aggDone && p.class == predicate.Plus:
			// Value exact, membership already certain: no residual width
			// for SUM/AVG/COUNT; MIN/MAX keep the bound as T+.
			if spec.Agg == aggregate.Min || spec.Agg == aggregate.Max {
				inputs = append(inputs, aggregate.Input{Index: i, Bound: b, Class: predicate.Plus})
			}
			continue
		case aggDone:
			// Value exact, membership possibly unknown: worst-case residual
			// is the larger endpoint magnitude (the exact value extended to
			// include 0 for SUM).
			m := math.Max(math.Abs(b.Lo), math.Abs(b.Hi))
			inputs = append(inputs, aggregate.Input{
				Index: i,
				Bound: interval.New(-m, m).Intersect(b.IncludeZero()),
				Class: predicate.Maybe,
			})
			continue
		default:
			inputs = append(inputs, aggregate.Input{Index: i, Bound: b, Class: cls})
		}
	}
	ans := aggregate.EvalInputs(inputs, spec.Agg, false, len(pairs))
	if ans.IsEmpty() {
		return 0
	}
	return ans.Width()
}

// materialize converts the chosen set into a Plan.
func materialize(left, right *relation.Table, chosen map[baseRef]bool) Plan {
	var plan Plan
	for ref := range chosen {
		if ref.side == Left {
			tu := left.At(ref.idx)
			plan.LeftKeys = append(plan.LeftKeys, tu.Key)
			plan.Cost += tu.Cost
		} else {
			tu := right.At(ref.idx)
			plan.RightKeys = append(plan.RightKeys, tu.Key)
			plan.Cost += tu.Cost
		}
	}
	sort.Slice(plan.LeftKeys, func(a, b int) bool { return plan.LeftKeys[a] < plan.LeftKeys[b] })
	sort.Slice(plan.RightKeys, func(a, b int) bool { return plan.RightKeys[a] < plan.RightKeys[b] })
	return plan
}

// Result reports an executed join query.
type Result struct {
	// Answer is the final bounded answer.
	Answer interval.Interval
	// Initial is the pre-refresh bounded answer.
	Initial interval.Interval
	// Refreshed counts base-tuple refreshes performed.
	Refreshed int
	// RefreshCost is the total cost paid.
	RefreshCost float64
	// Met reports whether the final answer satisfies the constraint.
	Met bool
}

// Execute runs a join query end to end with the BatchGreedy planner,
// refreshing from the two oracles.
func Execute(left, right *relation.Table, spec Spec, leftOracle, rightOracle query.Oracle) (Result, error) {
	var res Result
	res.Initial = Eval(left, right, spec)
	res.Answer = res.Initial
	if res.Answer.IsEmpty() || res.Answer.Width() <= spec.Within+1e-9 {
		res.Met = true
		return res, nil
	}
	plan, err := BatchGreedy(left, right, spec)
	if err != nil {
		return res, err
	}
	if err := applyPlan(left, plan.LeftKeys, leftOracle); err != nil {
		return res, err
	}
	if err := applyPlan(right, plan.RightKeys, rightOracle); err != nil {
		return res, err
	}
	res.Refreshed = plan.Len()
	res.RefreshCost = plan.Cost
	res.Answer = Eval(left, right, spec)
	res.Met = res.Answer.IsEmpty() || res.Answer.Width() <= spec.Within+1e-9
	return res, nil
}

// ExecuteIterative runs the section 8.2 style online loop: repeatedly
// refresh the single cheapest base tuple participating in an unresolved
// pair and recompute, stopping when the constraint is met. Unlike
// BatchGreedy it exploits the actual refreshed values, typically paying
// less total cost at the price of sequential refresh rounds.
func ExecuteIterative(left, right *relation.Table, spec Spec, leftOracle, rightOracle query.Oracle) (Result, error) {
	var res Result
	res.Initial = Eval(left, right, spec)
	res.Answer = res.Initial
	refreshedL := make(map[int64]bool)
	refreshedR := make(map[int64]bool)
	for {
		if res.Answer.IsEmpty() || res.Answer.Width() <= spec.Within+1e-9 {
			res.Met = true
			return res, nil
		}
		pairs := classifyPairs(left, right, spec)
		best, bestCost := baseRef{}, math.Inf(1)
		found := false
		for _, p := range pairs {
			uncertain := p.class == predicate.Maybe || p.bound.Width() > 0
			if !uncertain {
				continue
			}
			for _, ref := range []baseRef{{Left, p.li}, {Right, p.ri}} {
				var key int64
				var done map[int64]bool
				if ref.side == Left {
					key = left.At(ref.idx).Key
					done = refreshedL
				} else {
					key = right.At(ref.idx).Key
					done = refreshedR
				}
				if done[key] {
					continue
				}
				if c := refreshCost(left, right, ref); c < bestCost {
					best, bestCost, found = ref, c, true
				}
			}
		}
		if !found {
			// Nothing left to refresh; the answer is as tight as it gets.
			res.Met = res.Answer.IsEmpty() || res.Answer.Width() <= spec.Within+1e-9
			if !res.Met {
				return res, fmt.Errorf("join: constraint unreachable (width %g > R %g)",
					res.Answer.Width(), spec.Within)
			}
			return res, nil
		}
		var t *relation.Table
		var o query.Oracle
		var done map[int64]bool
		if best.side == Left {
			t, o, done = left, leftOracle, refreshedL
		} else {
			t, o, done = right, rightOracle, refreshedR
		}
		tu := t.At(best.idx)
		vals, ok := o.Master(tu.Key)
		if !ok {
			return res, fmt.Errorf("join: oracle missing key %d", tu.Key)
		}
		if err := t.Refresh(best.idx, vals); err != nil {
			return res, err
		}
		done[tu.Key] = true
		res.Refreshed++
		res.RefreshCost += bestCost
		res.Answer = Eval(left, right, spec)
	}
}

// applyPlan refreshes the listed keys from the oracle.
func applyPlan(t *relation.Table, keys []int64, o query.Oracle) error {
	for _, key := range keys {
		vals, ok := o.Master(key)
		if !ok {
			return fmt.Errorf("join: oracle missing key %d", key)
		}
		if err := t.Refresh(t.ByKey(key), vals); err != nil {
			return err
		}
	}
	return nil
}
