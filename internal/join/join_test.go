package join

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

// twoTables builds small left ("nodes": key, load) and right ("links":
// from, latency) tables with master values for join tests.
func twoTables() (left, right *relation.Table, lm, rm workload.MapOracle) {
	ls := relation.NewSchema(
		relation.Column{Name: "node", Kind: relation.Exact},
		relation.Column{Name: "load", Kind: relation.Bounded},
	)
	left = relation.NewTable(ls)
	lm = workload.MapOracle{}
	leftRows := []struct {
		key  int64
		node float64
		load interval.Interval
		v    float64
		cost float64
	}{
		{1, 1, interval.New(10, 20), 14, 2},
		{2, 2, interval.New(30, 40), 33, 3},
		{3, 3, interval.New(5, 9), 7, 1},
	}
	for _, r := range leftRows {
		left.MustInsert(relation.Tuple{
			Key:    r.key,
			Bounds: []interval.Interval{interval.Point(r.node), r.load},
			Cost:   r.cost,
		})
		lm[r.key] = []float64{r.v}
	}

	rs := relation.NewSchema(
		relation.Column{Name: "from", Kind: relation.Exact},
		relation.Column{Name: "latency", Kind: relation.Bounded},
	)
	right = relation.NewTable(rs)
	rm = workload.MapOracle{}
	rightRows := []struct {
		key  int64
		from float64
		lat  interval.Interval
		v    float64
		cost float64
	}{
		{11, 1, interval.New(2, 4), 3, 2},
		{12, 2, interval.New(5, 9), 6, 4},
		{13, 3, interval.New(1, 2), 1.5, 1},
	}
	for _, r := range rightRows {
		right.MustInsert(relation.Tuple{
			Key:    r.key,
			Bounds: []interval.Interval{interval.Point(r.from), r.lat},
			Cost:   r.cost,
		})
		rm[r.key] = []float64{r.v}
	}
	return left, right, lm, rm
}

// equiJoinPred builds node = from as the join predicate, optionally ANDed
// with load > k.
func equiJoinPred(left *relation.Table, loadGt float64) predicate.Expr {
	nodeCol := left.Schema().MustLookup("node")
	fromCol := ShiftColumn(left.Schema(), 0)
	join := predicate.NewCmp(
		predicate.Column(nodeCol, "node"), predicate.Eq, predicate.Column(fromCol, "from"))
	if math.IsInf(loadGt, -1) {
		return join
	}
	loadCol := left.Schema().MustLookup("load")
	return predicate.NewAnd(join, predicate.NewCmp(
		predicate.Column(loadCol, "load"), predicate.Gt, predicate.Const(loadGt)))
}

func TestEvalEquiJoinSum(t *testing.T) {
	left, right, _, _ := twoTables()
	spec := Spec{
		Agg:     aggregate.Sum,
		AggSide: Right, AggColumn: right.Schema().MustLookup("latency"),
		Pred:   equiJoinPred(left, math.Inf(-1)),
		Within: math.Inf(1),
	}
	got := Eval(left, right, spec)
	// All three pairs are T+ (exact equi-join on exact columns):
	// SUM latency = [2+5+1, 4+9+2] = [8, 15].
	if !got.Equal(interval.New(8, 15)) {
		t.Errorf("join SUM = %v, want [8, 15]", got)
	}
}

func TestEvalJoinWithBoundedSelection(t *testing.T) {
	left, right, _, _ := twoTables()
	// load > 12: node 1 [10,20] T?, node 2 [30,40] T+, node 3 [5,9] T−.
	spec := Spec{
		Agg:     aggregate.Sum,
		AggSide: Right, AggColumn: right.Schema().MustLookup("latency"),
		Pred:   equiJoinPred(left, 12),
		Within: math.Inf(1),
	}
	got := Eval(left, right, spec)
	// T+ pair (2,12): [5,9]. T? pair (1,11): latency [2,4], contributes
	// only H to the upper bound. → [5, 9+4] = [5, 13].
	if !got.Equal(interval.New(5, 13)) {
		t.Errorf("join SUM with selection = %v, want [5, 13]", got)
	}
}

func TestEvalJoinCount(t *testing.T) {
	left, right, _, _ := twoTables()
	spec := Spec{
		Agg:     aggregate.Count,
		AggSide: Right, AggColumn: right.Schema().MustLookup("latency"),
		Pred:   equiJoinPred(left, 12),
		Within: math.Inf(1),
	}
	got := Eval(left, right, spec)
	if !got.Equal(interval.New(1, 2)) {
		t.Errorf("join COUNT = %v, want [1, 2]", got)
	}
}

func TestExecuteBatchGreedyMeetsConstraint(t *testing.T) {
	left, right, lm, rm := twoTables()
	spec := Spec{
		Agg:     aggregate.Sum,
		AggSide: Right, AggColumn: right.Schema().MustLookup("latency"),
		Pred:   equiJoinPred(left, 12),
		Within: 1,
	}
	res, err := Execute(left, right, spec, lm, rm)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("constraint not met: %v (width %g)", res.Answer, res.Answer.Width())
	}
	if res.Refreshed == 0 {
		t.Error("expected refreshes")
	}
	// True answer: loads 14, 33, 7 → nodes 1 and 2 pass load > 12;
	// SUM latency = 3 + 6 = 9.
	if !res.Answer.Contains(9) {
		t.Errorf("answer %v does not contain true value 9", res.Answer)
	}
}

func TestExecuteIterativeMeetsConstraint(t *testing.T) {
	left, right, lm, rm := twoTables()
	spec := Spec{
		Agg:     aggregate.Sum,
		AggSide: Right, AggColumn: right.Schema().MustLookup("latency"),
		Pred:   equiJoinPred(left, 12),
		Within: 1,
	}
	res, err := ExecuteIterative(left, right, spec, lm, rm)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("constraint not met: %v", res.Answer)
	}
	if !res.Answer.Contains(9) {
		t.Errorf("answer %v does not contain true value 9", res.Answer)
	}
}

func TestExecuteAlreadyPrecise(t *testing.T) {
	left, right, lm, rm := twoTables()
	spec := Spec{
		Agg:     aggregate.Sum,
		AggSide: Right, AggColumn: right.Schema().MustLookup("latency"),
		Pred:   equiJoinPred(left, math.Inf(-1)),
		Within: 100,
	}
	res, err := Execute(left, right, spec, lm, rm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refreshed != 0 {
		t.Errorf("refreshed %d with satisfied constraint", res.Refreshed)
	}
}

func TestBatchGreedyRejectsBadR(t *testing.T) {
	left, right, _, _ := twoTables()
	spec := Spec{
		Agg:     aggregate.Sum,
		AggSide: Right, AggColumn: 1,
		Pred:   equiJoinPred(left, 12),
		Within: -1,
	}
	if _, err := BatchGreedy(left, right, spec); err == nil {
		t.Error("negative R accepted")
	}
}

func TestSideString(t *testing.T) {
	if Left.String() != "left" || Right.String() != "right" {
		t.Error("Side strings")
	}
}

// TestQuickJoinAnswerContainsExact: the bounded join answer always
// contains the answer computed from master values.
func TestQuickJoinAnswerContainsExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		left, right, lm, rm := randJoinTables(r)
		spec := Spec{
			Agg:     []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum, aggregate.Count, aggregate.Avg}[r.Intn(5)],
			AggSide: Right, AggColumn: 1,
			Pred:   randJoinPred(r, left),
			Within: math.Inf(1),
		}
		bounded := Eval(left, right, spec)
		exact, ok := exactJoin(left, right, spec, lm, rm)
		if !ok {
			return true
		}
		if bounded.IsEmpty() {
			return false
		}
		return bounded.Expand(1e-9).Contains(exact)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickJoinExecuteMeetsConstraint: both planners meet finite
// constraints on random instances.
func TestQuickJoinExecuteMeetsConstraint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		left, right, lm, rm := randJoinTables(r)
		spec := Spec{
			Agg:     aggregate.Sum,
			AggSide: Right, AggColumn: 1,
			Pred:   randJoinPred(r, left),
			Within: r.Float64() * 10,
		}
		l2, r2 := left.Clone(), right.Clone()
		res, err := Execute(left, right, spec, lm, rm)
		if err != nil || !res.Met {
			t.Logf("seed %d batch: err=%v met=%v answer=%v", seed, err, res.Met, res.Answer)
			return false
		}
		res2, err := ExecuteIterative(l2, r2, spec, lm, rm)
		if err != nil || !res2.Met {
			t.Logf("seed %d iterative: err=%v met=%v", seed, err, res2.Met)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randJoinTables builds random compatible tables with 2-5 rows each.
func randJoinTables(r *rand.Rand) (left, right *relation.Table, lm, rm workload.MapOracle) {
	ls := relation.NewSchema(
		relation.Column{Name: "node", Kind: relation.Exact},
		relation.Column{Name: "load", Kind: relation.Bounded},
	)
	rs := relation.NewSchema(
		relation.Column{Name: "from", Kind: relation.Exact},
		relation.Column{Name: "latency", Kind: relation.Bounded},
	)
	left, right = relation.NewTable(ls), relation.NewTable(rs)
	lm, rm = workload.MapOracle{}, workload.MapOracle{}
	nl, nr := 2+r.Intn(4), 2+r.Intn(4)
	for i := 0; i < nl; i++ {
		lo := r.Float64() * 30
		w := r.Float64() * 10
		left.MustInsert(relation.Tuple{
			Key:    int64(i + 1),
			Bounds: []interval.Interval{interval.Point(float64(i % 3)), interval.New(lo, lo+w)},
			Cost:   1 + r.Float64()*5,
		})
		lm[int64(i+1)] = []float64{lo + r.Float64()*w}
	}
	for i := 0; i < nr; i++ {
		lo := r.Float64() * 10
		w := r.Float64() * 5
		right.MustInsert(relation.Tuple{
			Key:    int64(100 + i),
			Bounds: []interval.Interval{interval.Point(float64(i % 3)), interval.New(lo, lo+w)},
			Cost:   1 + r.Float64()*5,
		})
		rm[int64(100+i)] = []float64{lo + r.Float64()*w}
	}
	return left, right, lm, rm
}

// randJoinPred returns node = from, possibly with a bounded selection.
func randJoinPred(r *rand.Rand, left *relation.Table) predicate.Expr {
	join := predicate.NewCmp(
		predicate.Column(0, "node"), predicate.Eq,
		predicate.Column(ShiftColumn(left.Schema(), 0), "from"))
	if r.Intn(2) == 0 {
		return join
	}
	return predicate.NewAnd(join, predicate.NewCmp(
		predicate.Column(1, "load"), predicate.Gt, predicate.Const(r.Float64()*30)))
}

// exactJoin computes the ground-truth join aggregate from master values.
func exactJoin(left, right *relation.Table, spec Spec, lm, rm workload.MapOracle) (float64, bool) {
	nl := left.Schema().NumColumns()
	nr := right.Schema().NumColumns()
	vals := make([]float64, nl+nr)
	var agg []float64
	for li := 0; li < left.Len(); li++ {
		lt := left.At(li)
		lv, _ := lm.Master(lt.Key)
		vals[0] = lt.Bounds[0].Lo
		vals[1] = lv[0]
		for ri := 0; ri < right.Len(); ri++ {
			rt := right.At(ri)
			rv, _ := rm.Master(rt.Key)
			vals[nl] = rt.Bounds[0].Lo
			vals[nl+1] = rv[0]
			if !spec.Pred.EvalExact(vals) {
				continue
			}
			v := vals[1]
			if spec.AggSide == Right {
				v = vals[nl+spec.AggColumn]
			}
			agg = append(agg, v)
		}
	}
	switch spec.Agg {
	case aggregate.Count:
		return float64(len(agg)), true
	case aggregate.Sum:
		s := 0.0
		for _, v := range agg {
			s += v
		}
		return s, true
	}
	if len(agg) == 0 {
		return 0, false
	}
	switch spec.Agg {
	case aggregate.Min:
		m := agg[0]
		for _, v := range agg {
			m = math.Min(m, v)
		}
		return m, true
	case aggregate.Max:
		m := agg[0]
		for _, v := range agg {
			m = math.Max(m, v)
		}
		return m, true
	default: // Avg
		s := 0.0
		for _, v := range agg {
			s += v
		}
		return s / float64(len(agg)), true
	}
}
