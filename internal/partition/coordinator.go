package partition

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/obs"
	"trapp/internal/parallel"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/sql"
)

// Config tunes the scatter-gather coordinator.
type Config struct {
	// Options are the refresh solver options the coordinator plans with;
	// they must match the options the partition engines run, or plans
	// chosen here diverge from single-node plans.
	Options refresh.Options
	// OpTimeout bounds each per-partition operation attempt; zero means
	// only the request context limits it.
	OpTimeout time.Duration
	// Retries is the number of extra attempts after a failed partition
	// operation (all node operations are idempotent). The retry fires
	// immediately — with OpTimeout set it acts as a hedge against a
	// stuck node rather than a backoff loop.
	Retries int
	// DegradedSlack is the conservative per-degraded-partition widening:
	// when a partition stays unreachable after retries and the
	// coordinator falls back to its last good fold state, the merged
	// answer is expanded by DegradedSlack for each degraded partition so
	// staleness degrades precision instead of soundness claims.
	DegradedSlack float64
}

// nodeStats is the per-partition health ledger behind ClusterMetrics.
type nodeStats struct {
	ops      atomic.Int64
	errors   atomic.Int64
	retries  atomic.Int64
	degraded atomic.Int64
	lat      obs.Histogram
}

// NodeMetrics is one partition's health snapshot.
type NodeMetrics struct {
	ID       string                `json:"id"`
	Buckets  []int                 `json:"buckets"`
	Ops      int64                 `json:"ops"`
	Errors   int64                 `json:"errors"`
	Retries  int64                 `json:"retries"`
	Degraded int64                 `json:"degraded"`
	Latency  obs.HistogramSnapshot `json:"latency"`
}

// Metrics is the coordinator's health snapshot: per-partition operation
// counts, retry/degradation tallies, and op latency histograms.
type Metrics struct {
	Queries    int64         `json:"queries"`
	Degraded   int64         `json:"degraded_queries"`
	Partitions []NodeMetrics `json:"partitions"`
}

// Cluster is the scatter-gather coordinator: a query.Processor replica
// whose scan, plan, and refresh phases fan out to the partitions owning
// the relation's canonical buckets. It implements the server Engine
// surface (ExecuteCtx / ExecuteBatchDetailed / SubscribeCtx / Catalog),
// so cmd/trappcoord serves a cluster through the exact HTTP and framed
// paths a single node serves an embedded system.
type Cluster struct {
	nodes []Node
	ring  *Ring
	cfg   Config

	catalog sql.MapCatalog
	closed  atomic.Bool

	queries    atomic.Int64
	degradedQs atomic.Int64
	stats      []nodeStats

	// Last good fold state per shape and partition — the degradation
	// fallback. Bounded by clearing wholesale past maxStateEntries
	// shapes.
	mu   sync.Mutex
	last map[string][]*aggregate.State

	subSeq atomic.Int64
}

// New assembles a coordinator over the given partitions: each node is
// greeted, the table catalogs are required to agree, and bucket
// ownership is fixed by rendezvous hashing of the node IDs.
func New(ctx context.Context, nodes []Node, cfg Config) (*Cluster, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("partition: cluster needs at least one node")
	}
	ids := make([]string, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID()
	}
	ring, err := NewRing(ids)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		nodes: nodes,
		ring:  ring,
		cfg:   cfg,
		stats: make([]nodeStats, len(nodes)),
		last:  make(map[string][]*aggregate.State),
	}
	var ref Hello
	for i, n := range nodes {
		h, err := call(cl, ctx, i, func(ctx context.Context) (Hello, error) { return n.Hello(ctx) })
		if err != nil {
			return nil, fmt.Errorf("partition: hello %s: %w", n.ID(), err)
		}
		if i == 0 {
			ref = h
			cl.catalog = make(sql.MapCatalog, len(h.Tables))
			for _, t := range h.Tables {
				cl.catalog[t.Name] = relation.NewSchema(t.Columns...)
			}
			continue
		}
		if err := sameTables(ref, h); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// sameTables checks two topology advertisements serve identical tables.
func sameTables(a, b Hello) error {
	if len(a.Tables) != len(b.Tables) {
		return fmt.Errorf("partition: %s serves %d tables, %s serves %d",
			a.ID, len(a.Tables), b.ID, len(b.Tables))
	}
	for i, ta := range a.Tables {
		tb := b.Tables[i]
		if ta.Name != tb.Name || len(ta.Columns) != len(tb.Columns) {
			return fmt.Errorf("partition: table mismatch between %s and %s: %q vs %q", a.ID, b.ID, ta.Name, tb.Name)
		}
		for j, ca := range ta.Columns {
			if ca != tb.Columns[j] {
				return fmt.Errorf("partition: schema mismatch for %q between %s and %s", ta.Name, a.ID, b.ID)
			}
		}
	}
	return nil
}

// Ring returns the cluster's bucket-ownership assignment.
func (cl *Cluster) Ring() *Ring { return cl.ring }

// Catalog implements the server engine surface over the agreed tables.
func (cl *Cluster) Catalog() sql.Catalog { return cl.catalog }

// Close marks the cluster closed and releases the nodes.
func (cl *Cluster) Close() {
	if cl.closed.Swap(true) {
		return
	}
	for _, n := range cl.nodes {
		n.Close()
	}
}

// ClusterMetrics returns the per-partition health snapshot; the server
// metrics endpoint feature-detects this method and inlines the result.
func (cl *Cluster) ClusterMetrics() any {
	m := Metrics{Queries: cl.queries.Load(), Degraded: cl.degradedQs.Load()}
	for i := range cl.nodes {
		s := &cl.stats[i]
		m.Partitions = append(m.Partitions, NodeMetrics{
			ID:       cl.nodes[i].ID(),
			Buckets:  cl.ring.Buckets(i),
			Ops:      s.ops.Load(),
			Errors:   s.errors.Load(),
			Retries:  s.retries.Load(),
			Degraded: s.degraded.Load(),
			Latency:  s.lat.Snapshot(),
		})
	}
	return m
}

// Topology returns the coordinator's partition map for /healthz: each
// partition's ID and the canonical buckets (key ranges under the
// canonical hash) it owns.
func (cl *Cluster) Topology() map[string]any {
	parts := make([]map[string]any, len(cl.nodes))
	for i := range cl.nodes {
		parts[i] = map[string]any{
			"id":      cl.nodes[i].ID(),
			"buckets": cl.ring.Buckets(i),
		}
	}
	return map[string]any{
		"role":       "coordinator",
		"partitions": parts,
	}
}

// call runs one idempotent partition operation with the configured
// per-attempt timeout and bounded retry, recording health telemetry.
// The parent context aborts retries immediately.
func call[T any](cl *Cluster, ctx context.Context, node int, fn func(ctx context.Context) (T, error)) (T, error) {
	s := &cl.stats[node]
	var lastErr error
	for attempt := 0; ; attempt++ {
		actx, cancel := ctx, context.CancelFunc(nil)
		if cl.cfg.OpTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, cl.cfg.OpTimeout)
		}
		t0 := time.Now()
		v, err := fn(actx)
		s.lat.ObserveDuration(time.Since(t0))
		if cancel != nil {
			cancel()
		}
		s.ops.Add(1)
		if err == nil {
			return v, nil
		}
		s.errors.Add(1)
		lastErr = err
		if ctx.Err() != nil {
			// The request itself is done; surface its error, not the
			// attempt's.
			var zero T
			return zero, ctx.Err()
		}
		if attempt >= cl.cfg.Retries {
			var zero T
			return zero, lastErr
		}
		s.retries.Add(1)
	}
}

// rememberState records a partition's latest good fold state for the
// shape — the degradation fallback.
func (cl *Cluster) rememberState(shape string, node int, st *aggregate.State) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	states, ok := cl.last[shape]
	if !ok {
		if len(cl.last) >= maxStateEntries {
			clear(cl.last)
		}
		states = make([]*aggregate.State, len(cl.nodes))
		cl.last[shape] = states
	}
	states[node] = st
}

// lastState returns the degradation fallback for a partition, or nil.
func (cl *Cluster) lastState(shape string, node int) *aggregate.State {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if states, ok := cl.last[shape]; ok {
		return states[node]
	}
	return nil
}

// coordCtxErr maps a partition-reported context cutoff onto the
// coordinator's own context error — the cause a single node would carry.
func coordCtxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.DeadlineExceeded
}

// cutoffRes mirrors the processor's cutoff shaping: a request stopped by
// context cancellation returns the best interval achieved so far, with a
// typed ErrPrecisionUnmet when the constraint is still unmet.
func cutoffRes(res query.Result, q query.Query, cause error) (query.Result, error) {
	if query.Satisfies(res.Answer, q.Within) {
		return res, cause
	}
	return res, query.ErrPrecisionUnmet{Achieved: res.Answer, Spent: res.RefreshCost, Cause: cause}
}

// Execute runs a query with a background context and default options.
func (cl *Cluster) Execute(q query.Query) (query.Result, error) {
	return cl.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx implements the server engine surface: the single-node
// three-step bounded execution, scattered.
func (cl *Cluster) ExecuteCtx(ctx context.Context, q query.Query, opts ...query.ExecOption) (query.Result, error) {
	return cl.ExecuteConfig(ctx, q, query.BuildExecConfig(opts...))
}

// ExecuteConfig mirrors the single-node System.executeConfig →
// Processor.ExecuteConfig pipeline phase for phase — same validation
// order, same phase boundaries, same error shaping — with each phase
// scattered to the partitions and gathered through the mergeable fold:
//
//	Phase 1   State ops     → MergeStates  → initial answer (+fast path)
//	Phase 2   Inputs ops    → MergeInputs  → ChoosePlan (at coordinator)
//	Phase 3   Refresh ops   → plan-order cost fold → merged refold
//
// Bit-identity with a single node holding all tuples is by construction:
// see the package comment and DESIGN.md §14.
func (cl *Cluster) ExecuteConfig(ctx context.Context, q query.Query, cfg query.ExecConfig) (query.Result, error) {
	if cl.closed.Load() {
		return query.Result{}, query.ErrClosed
	}
	cl.queries.Add(1)
	if _, ok := cl.catalog[q.Table]; !ok {
		return query.Result{}, fmt.Errorf("partition: %w: %q not mounted", query.ErrUnknownTable, q.Table)
	}
	if len(q.GroupBy) > 0 {
		return query.Result{}, fmt.Errorf("query: GROUP BY query requires ExecuteGroupBy")
	}
	q, ropts := cfg.Resolve(q, cl.cfg.Options)
	if cfg.HasBudget && (cfg.Budget < 0 || math.IsNaN(cfg.Budget)) {
		return query.Result{}, fmt.Errorf("query: invalid cost budget %g", cfg.Budget)
	}
	if !cfg.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, cfg.Deadline)
		defer cancel()
		cfg.Deadline = time.Time{}
	}
	if q.RelativeWithin > 0 {
		return query.Result{}, fmt.Errorf("partition: relative precision constraints are not supported in cluster mode")
	}
	sch := cl.catalog[q.Table]
	if _, ok := sch.Lookup(q.Column); !ok {
		return query.Result{}, fmt.Errorf("%w: %q.%q", query.ErrUnknownColumn, q.Table, q.Column)
	}
	if q.Within < 0 || math.IsNaN(q.Within) {
		return query.Result{}, fmt.Errorf("query: invalid precision constraint %g", q.Within)
	}
	// Scan boundary: a request that arrives already expired does no work.
	if err := ctx.Err(); err != nil {
		return query.Result{}, err
	}

	tr := cfg.TraceRoot
	if tr == nil && cfg.Trace {
		tr = obs.NewTrace(q.String())
	}
	var root *obs.Span
	if tr != nil {
		root = tr.Root
		defer tr.Finish()
	}

	shape := shapeOf(q)
	noPred := predicate.IsTrivial(q.Where)
	n := len(cl.nodes)

	var res query.Result
	res.Trace = tr

	// Phase 1: scatter the fold. Each partition syncs its cache bounds
	// and returns its local State; the gather merges bucket-disjoint
	// states into the global initial answer.
	scatterSp := root.StartSpan("scatter-state")
	states := make([]*aggregate.State, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range cl.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := call(cl, ctx, i, func(ctx context.Context) (aggregate.State, error) {
				return cl.nodes[i].State(ctx, shape)
			})
			if err != nil {
				errs[i] = err
				return
			}
			states[i] = &st
		}(i)
	}
	wg.Wait()
	var degraded []int
	var degCause error
	for i, err := range errs {
		if err == nil {
			cl.rememberState(shape, i, states[i])
			continue
		}
		if cached := cl.lastState(shape, i); cached != nil && ctx.Err() == nil {
			// The partition stayed unreachable through the retries: fall
			// back to its last good state and re-widen below, degrading
			// precision instead of failing the query.
			cl.stats[i].degraded.Add(1)
			states[i] = cached
			degraded = append(degraded, i)
			degCause = err
			continue
		}
		// No sound fallback: without this partition's tuples any answer
		// would be unsound, so the query fails like a single node whose
		// scan could not run.
		if scatterSp != nil {
			scatterSp.End()
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return query.Result{}, ctxErr
		}
		return query.Result{}, fmt.Errorf("partition %s: state: %w", cl.nodes[i].ID(), err)
	}
	merged := aggregate.MergeStates(q.Agg, noPred, states)
	res.Initial = merged.Answer()
	if len(degraded) > 0 {
		cl.degradedQs.Add(1)
		res.Initial = res.Initial.Expand(cl.cfg.DegradedSlack * float64(len(degraded)))
	}
	if scatterSp != nil {
		scatterSp.SetDetail("parts=%d degraded=%d width=%g", n, len(degraded), res.Initial.Width())
		scatterSp.End()
	}
	res.Answer = res.Initial
	res.Met = query.Satisfies(res.Answer, q.Within)
	budgetDual := cfg.HasBudget && cfg.Mode != query.ModeImprecise
	if res.Met && !(budgetDual && math.IsInf(q.Within, 1)) {
		return res, nil
	}
	if len(degraded) > 0 {
		// A stale fallback state cannot be refreshed through its dead
		// partition; stop at the widened merged answer.
		if !res.Met {
			return res, query.ErrPrecisionUnmet{Achieved: res.Answer, Spent: 0, Cause: degCause}
		}
		return res, nil
	}

	// Plan boundary.
	if err := ctx.Err(); err != nil {
		return cutoffRes(res, q, err)
	}

	// Phase 2: scatter the classified snapshots and plan centrally over
	// the merged canonical inputs — the same inputs, in the same order,
	// a single node would classify, so the same plan.
	inputsSp := root.StartSpan("scatter-inputs")
	perInputs := make([][]aggregate.Input, n)
	lens := make([]int, n)
	for i := range errs {
		errs[i] = nil
	}
	for i := range cl.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			type snap struct {
				inputs []aggregate.Input
				n      int
			}
			sn, err := call(cl, ctx, i, func(ctx context.Context) (snap, error) {
				inputs, tableLen, err := cl.nodes[i].Inputs(ctx, shape)
				return snap{inputs, tableLen}, err
			})
			if err != nil {
				errs[i] = err
				return
			}
			perInputs[i], lens[i] = sn.inputs, sn.n
		}(i)
	}
	wg.Wait()
	tableLen := 0
	planParts := perInputs[:0:0]
	excluded := 0
	for i, err := range errs {
		if err == nil {
			planParts = append(planParts, perInputs[i])
			tableLen += lens[i]
			continue
		}
		if inputsSp != nil {
			inputsSp.End()
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return cutoffRes(res, q, ctxErr)
		}
		// A partition that answered phase 1 but not phase 2 keeps its
		// (current) phase-1 state in the final merge; its tuples are
		// simply not candidates for refresh this request — sound, since
		// fewer refreshes only leave the answer wider.
		excluded++
		tableLen += states[i].TableLen
	}
	inputs := aggregate.MergeInputs(planParts...)
	if inputsSp != nil {
		inputsSp.SetDetail("inputs=%d excluded=%d", len(inputs), excluded)
		inputsSp.End()
	}

	chooseSp := root.StartSpan("choose")
	start := time.Now()
	plan, err := query.ChoosePlan(inputs, q, noPred, tableLen, cfg, ropts)
	res.ChooseTime = time.Since(start)
	if chooseSp != nil {
		chooseSp.SetDetail("%s", plan.Describe())
		chooseSp.End()
	}
	if err != nil {
		return res, err
	}

	var ctxErr error
	if plan.Len() > 0 {
		// Fan-out boundary.
		if err := ctx.Err(); err != nil {
			return cutoffRes(res, q, err)
		}
		tr.SetPlanCosts(plan.Keys, plan.Costs)
		refreshSp := root.StartSpan("refresh")

		// Phase 3: route each planned key to its owning partition and
		// scatter the refresh fan-outs.
		perKeys := make([][]int64, n)
		for _, key := range plan.Keys {
			o := cl.ring.OwnerOfKey(key)
			perKeys[o] = append(perKeys[o], key)
		}
		outs := make([]*RefreshOutcome, n)
		for i := range errs {
			errs[i] = nil
		}
		for i := range cl.nodes {
			if len(perKeys[i]) == 0 {
				continue
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out, err := call(cl, ctx, i, func(ctx context.Context) (RefreshOutcome, error) {
					return cl.nodes[i].Refresh(ctx, shape, perKeys[i])
				})
				if err != nil {
					errs[i] = err
					return
				}
				outs[i] = &out
			}(i)
		}
		wg.Wait()

		installed := make(map[int64]bool, len(plan.Keys))
		final := make([]*aggregate.State, n)
		var hardErr error
		for i := range cl.nodes {
			if len(perKeys[i]) == 0 {
				final[i] = states[i]
				continue
			}
			if errs[i] != nil {
				// The partition's installs (if any) are unconfirmed:
				// charge nothing for them and keep its wider phase-1
				// state — conservative, therefore sound.
				final[i] = states[i]
				if parallel.IsContextError(errs[i]) || ctx.Err() != nil {
					ctxErr = coordCtxErr(ctx)
				} else if hardErr == nil {
					hardErr = fmt.Errorf("partition %s: refresh: %w", cl.nodes[i].ID(), errs[i])
				}
				continue
			}
			for _, k := range outs[i].Installed {
				installed[k] = true
			}
			if outs[i].Cut {
				ctxErr = coordCtxErr(ctx)
			}
			final[i] = &outs[i].State
			cl.rememberState(shape, i, &outs[i].State)
		}
		// The paid costs fold in plan order — the same deterministic
		// float addition sequence a single node's runPlan performs, so
		// the cluster's RefreshCost is bit-identical.
		var installedKeys []int64
		if refreshSp != nil {
			installedKeys = make([]int64, 0, len(installed))
		}
		for j, key := range plan.Keys {
			if !installed[key] {
				continue
			}
			res.Refreshed++
			res.RefreshCost += plan.Costs[j]
			if refreshSp != nil {
				installedKeys = append(installedKeys, key)
			}
		}
		refreshSp.RecordKeys(installedKeys)
		refreshSp.End()
		if hardErr != nil {
			return res, hardErr
		}

		// Merged refold: refreshed partitions contribute their
		// post-refresh states, untouched ones their phase-1 states.
		foldSp := root.StartSpan("fold")
		mergedFinal := aggregate.MergeStates(q.Agg, noPred, final)
		res.Answer = mergedFinal.Answer()
		res.Met = query.Satisfies(res.Answer, q.Within)
		if foldSp != nil {
			foldSp.SetDetail("width=%g", res.Answer.Width())
			foldSp.End()
		}
	}
	if ctxErr != nil && !res.Met {
		return res, query.ErrPrecisionUnmet{Achieved: res.Answer, Spent: res.RefreshCost, Cause: ctxErr}
	}
	if ctxErr != nil {
		return res, nil // cut short, but the constraint held anyway
	}
	if budgetDual && !res.Met && !math.IsInf(q.Within, 1) {
		return res, query.ErrBudgetExhausted{Achieved: res.Answer, Spent: res.RefreshCost, Budget: cfg.Budget}
	}
	return res, nil
}

// ExecuteBatchDetailed implements the server engine surface. The
// coordinator executes batch statements as a sequential per-query loop:
// unlike the single-node batch executor it does not merge the plans into
// shared refresh rounds (cross-partition plan sharing would change
// per-query cost attribution), so a batched statement answers exactly as
// if issued alone — the property the cluster differential test pins.
func (cl *Cluster) ExecuteBatchDetailed(ctx context.Context, qs []query.Query, opts ...query.ExecOption) ([]query.Result, []error, error) {
	if cl.closed.Load() {
		return nil, nil, query.ErrClosed
	}
	for _, q := range qs {
		if _, ok := cl.catalog[q.Table]; !ok {
			return nil, nil, fmt.Errorf("partition: %w: %q not mounted", query.ErrUnknownTable, q.Table)
		}
	}
	cfg := query.BuildExecConfig(opts...)
	results := make([]query.Result, len(qs))
	perQuery := make([]error, len(qs))
	for i, q := range qs {
		res, err := cl.ExecuteConfig(ctx, q, cfg)
		results[i] = res
		switch {
		case err == nil,
			isTyped(err):
			perQuery[i] = err
		default:
			return nil, nil, err
		}
	}
	return results, perQuery, nil
}

// isTyped reports whether an execution error is a per-query outcome
// (partial results the batch keeps) rather than a whole-batch failure.
func isTyped(err error) bool {
	switch err.(type) {
	case query.ErrPrecisionUnmet, query.ErrBudgetExhausted:
		return true
	}
	return parallel.IsContextError(err)
}
