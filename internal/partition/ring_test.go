package partition

import (
	"fmt"
	"testing"

	"trapp/internal/relation"
)

// TestRingWiderThanEight pins the regression where placement was keyed
// by an 8-bucket canonical order, capping clusters at 8 nodes: rings of
// every size up to relation.NumCanonicalBuckets must build, cover all
// buckets, and keep the rendezvous property that removing one node moves
// only that node's buckets.
func TestRingWiderThanEight(t *testing.T) {
	if relation.NumCanonicalBuckets <= 8 {
		t.Fatalf("NumCanonicalBuckets = %d, rings larger than 8 nodes impossible",
			relation.NumCanonicalBuckets)
	}
	makeIDs := func(n int) []string {
		ids := make([]string, n)
		for i := range ids {
			ids[i] = fmt.Sprintf("p%d", i)
		}
		return ids
	}
	for n := 1; n <= relation.NumCanonicalBuckets; n++ {
		ids := makeIDs(n)
		r, err := NewRing(ids)
		if err != nil {
			t.Fatalf("NewRing(%d nodes): %v", n, err)
		}
		// Every bucket owned by a valid node; Buckets partitions them.
		owned := 0
		for i := 0; i < n; i++ {
			owned += len(r.Buckets(i))
		}
		if owned != relation.NumCanonicalBuckets {
			t.Fatalf("%d nodes: %d buckets owned, want %d",
				n, owned, relation.NumCanonicalBuckets)
		}
		for b := 0; b < relation.NumCanonicalBuckets; b++ {
			if o := r.Owner(b); o < 0 || o >= n {
				t.Fatalf("%d nodes: bucket %d owned by %d", n, b, o)
			}
		}
	}
	// Minimal-disruption property across every width that can shrink:
	// dropping the last node must not move a surviving node's buckets.
	for n := 2; n <= relation.NumCanonicalBuckets; n++ {
		ids := makeIDs(n)
		full, err := NewRing(ids)
		if err != nil {
			t.Fatal(err)
		}
		smaller, err := NewRing(ids[:n-1])
		if err != nil {
			t.Fatal(err)
		}
		for b := 0; b < relation.NumCanonicalBuckets; b++ {
			before := full.IDs()[full.Owner(b)]
			after := smaller.IDs()[smaller.Owner(b)]
			if before != ids[n-1] && before != after {
				t.Fatalf("%d→%d nodes: bucket %d moved %s→%s though %s survived",
					n, n-1, b, before, after, before)
			}
		}
	}
	// Wide rings spread load: with 9+ nodes (the old impossible case)
	// more than 8 distinct nodes must actually own buckets once the node
	// count clears the old cap enough for rendezvous to reach them all.
	r, err := NewRing(makeIDs(relation.NumCanonicalBuckets))
	if err != nil {
		t.Fatal(err)
	}
	distinct := make(map[int]bool)
	for b := 0; b < relation.NumCanonicalBuckets; b++ {
		distinct[r.Owner(b)] = true
	}
	if len(distinct) <= 8 {
		t.Fatalf("full-width ring uses only %d distinct nodes", len(distinct))
	}
	if _, err := NewRing(makeIDs(relation.NumCanonicalBuckets + 1)); err == nil {
		t.Fatal("ring wider than the bucket count accepted")
	}
}
