package partition

import (
	"context"
	"fmt"
	"math"
	"sync"

	"trapp/internal/aggregate"
	"trapp/internal/continuous"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/server"
)

// clusterSub is a standing query maintained across the cluster: every
// partition runs a local subscription for the shape, streams its fold
// state on change, and the coordinator re-multiplexes the streams into
// one merged answer stream.
type clusterSub struct {
	q       query.Query
	updates chan continuous.Update
	cancel  context.CancelFunc
}

// Updates implements the server subscription surface.
func (s *clusterSub) Updates() <-chan continuous.Update { return s.updates }

// Close tears the cluster subscription down; the update channel closes
// once every partition stream has ended.
func (s *clusterSub) Close() { s.cancel() }

// Query returns the subscribed query.
func (s *clusterSub) Query() query.Query { return s.q }

// SubscribeCtx implements the server engine surface: a standing query
// over the whole partitioned relation. Because tuples are key-hash
// sharded, every partition holds a slice of every table, so the
// subscription fans out to all partitions; each runs a local standing
// query whose repair target is the pro-rata share Within/N (a heuristic
// — local widths do not add across MIN/MAX, so the coordinator always
// recomputes Met on the merged answer against the full constraint).
func (cl *Cluster) SubscribeCtx(ctx context.Context, q query.Query) (server.Subscription, error) {
	if cl.closed.Load() {
		return nil, query.ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if _, ok := cl.catalog[q.Table]; !ok {
		return nil, fmt.Errorf("partition: %w: %q not mounted", query.ErrUnknownTable, q.Table)
	}
	if len(q.GroupBy) > 0 {
		return nil, fmt.Errorf("partition: GROUP BY subscriptions are not supported in cluster mode")
	}
	if q.RelativeWithin > 0 {
		return nil, fmt.Errorf("partition: relative precision constraints are not supported in cluster mode")
	}
	if q.Within < 0 || math.IsNaN(q.Within) {
		return nil, fmt.Errorf("continuous: invalid precision constraint %g", q.Within)
	}
	shape := shapeOf(q)
	share := q.Within
	if !math.IsInf(share, 1) {
		share = q.Within / float64(len(cl.nodes))
	}
	subCtx, cancel := context.WithCancel(ctx)
	chans := make([]<-chan Update, len(cl.nodes))
	for i, n := range cl.nodes {
		ch, err := n.Subscribe(subCtx, shape, share)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("partition %s: subscribe: %w", n.ID(), err)
		}
		chans[i] = ch
	}
	cs := &clusterSub{q: q, updates: make(chan continuous.Update, 1), cancel: cancel}
	go cs.mux(q, chans)
	return cs, nil
}

// mux fans the per-partition update streams into the merged stream. The
// first merged update is emitted only once every partition has reported
// at least one state (a partial merge would silently exclude tuples);
// after that every partition update re-merges and re-emits, coalescing
// so a slow consumer sees the latest merged answer rather than backlog.
func (s *clusterSub) mux(q query.Query, chans []<-chan Update) {
	noPred := predicate.IsTrivial(q.Where)
	type tagged struct {
		i int
		u Update
	}
	in := make(chan tagged)
	var wg sync.WaitGroup
	for i, ch := range chans {
		wg.Add(1)
		go func(i int, ch <-chan Update) {
			defer wg.Done()
			for u := range ch {
				in <- tagged{i, u}
			}
		}(i, ch)
	}
	go func() {
		wg.Wait()
		close(in)
	}()

	latest := make([]*aggregate.State, len(chans))
	have := 0
	var seq, maxAt int64
	for t := range in {
		if latest[t.i] == nil {
			have++
		}
		st := t.u.State
		latest[t.i] = &st
		if t.u.At > maxAt {
			maxAt = t.u.At
		}
		if have < len(chans) {
			continue
		}
		merged := aggregate.MergeStates(q.Agg, noPred, latest)
		ans := merged.Answer()
		seq++
		u := continuous.Update{Seq: seq, At: maxAt, Answer: ans, Met: query.Satisfies(ans, q.Within)}
		select {
		case s.updates <- u:
		default:
			select {
			case <-s.updates:
			default:
			}
			select {
			case s.updates <- u:
			default:
			}
		}
	}
	close(s.updates)
}
