package partition

// Service exposes a LocalNode over the server's framed listener: the
// node side of the partition wire protocol. One trappserver port serves
// both client queries (core frames < FrameExtBase) and coordinator
// traffic (partition frames ≥ FrameExtBase).

import (
	"bufio"
	"context"
	"fmt"
	"net"

	"time"
)

// Service dispatches partition frames to a LocalNode. It implements
// server.FramedExtHandler.
type Service struct {
	node *LocalNode
}

// NewService wraps a node for the framed listener.
func NewService(n *LocalNode) *Service {
	return &Service{node: n}
}

// reqCtx derives the per-request context from the server's base context
// and the relative deadline carried on the wire.
func reqCtx(ctx context.Context, deadline int64) (context.Context, context.CancelFunc) {
	if deadline > 0 {
		return context.WithTimeout(ctx, time.Duration(deadline))
	}
	return ctx, func() {}
}

// getBuf starts a fresh response buffer. Responses are built per call
// (connections dispatch concurrently) and handed to the server's
// per-connection writer, which copies them out immediately.
func (s *Service) getBuf() []byte { return nil }

// ServeExtFrame implements server.FramedExtHandler. Unary operations
// return a response frame for the connection's writer; subscribe takes
// the connection over and streams updates until the peer hangs up.
func (s *Service) ServeExtFrame(ctx context.Context, payload []byte, conn net.Conn, bw *bufio.Writer) ([]byte, bool, error) {
	switch payload[0] {
	case frameHelloReq:
		id, err := decodeHelloReq(payload)
		if err != nil {
			return nil, false, err
		}
		h, herr := s.node.Hello(ctx)
		if herr != nil {
			return AppendErrResp(s.getBuf(), frameHelloResp, id, herr), false, nil
		}
		return AppendHelloResp(s.getBuf(), id, &h), false, nil

	case frameStateReq:
		id, deadline, shape, err := decodeStateReq(payload)
		if err != nil {
			return nil, false, err
		}
		rctx, cancel := reqCtx(ctx, deadline)
		st, serr := s.node.State(rctx, shape)
		cancel()
		if serr != nil {
			return AppendErrResp(s.getBuf(), frameStateResp, id, serr), false, nil
		}
		return AppendStateResp(s.getBuf(), id, &st), false, nil

	case frameInputsReq:
		id, deadline, shape, err := decodeInputsReq(payload)
		if err != nil {
			return nil, false, err
		}
		rctx, cancel := reqCtx(ctx, deadline)
		inputs, tableLen, ierr := s.node.Inputs(rctx, shape)
		cancel()
		if ierr != nil {
			return AppendErrResp(s.getBuf(), frameInputsResp, id, ierr), false, nil
		}
		return AppendInputsResp(s.getBuf(), id, inputs, tableLen), false, nil

	case frameRefreshReq:
		id, deadline, shape, keys, err := decodeRefreshReq(payload)
		if err != nil {
			return nil, false, err
		}
		rctx, cancel := reqCtx(ctx, deadline)
		out, rerr := s.node.Refresh(rctx, shape, keys)
		cancel()
		if rerr != nil {
			return AppendErrResp(s.getBuf(), frameRefreshResp, id, rerr), false, nil
		}
		return AppendRefreshResp(s.getBuf(), id, &out), false, nil

	case frameSubscribeReq:
		return nil, true, s.serveSubscribe(ctx, payload, conn, bw)

	default:
		return nil, false, fmt.Errorf("partition: unknown frame type 0x%02x", payload[0])
	}
}

// serveSubscribe owns the connection for the life of one subscription
// stream: updates flow out as frameSubUpdate frames; the stream ends
// when the peer closes the connection (detected by the read side going
// live — subscribers send nothing after the request), the local engine
// ends the subscription, or the server shuts down.
func (s *Service) serveSubscribe(ctx context.Context, payload []byte, conn net.Conn, bw *bufio.Writer) error {
	id, shape, within, err := decodeSubscribeReq(payload)
	if err != nil {
		return err
	}
	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, serr := s.node.Subscribe(subCtx, shape, within)
	if serr != nil {
		// Terminal error frame; the peer treats the stream as dead.
		out := AppendErrResp(s.getBuf(), frameSubUpdate, id, serr)
		if _, werr := bw.Write(out); werr != nil {
			return werr
		}
		return bw.Flush()
	}
	// The peer sends nothing after the subscribe request, so any read
	// completion — data or error — means the connection is done.
	go func() {
		var one [1]byte
		_, _ = conn.Read(one[:])
		cancel()
	}()
	var buf []byte
	for u := range ch {
		buf = AppendSubUpdate(buf[:0], id, &u)
		if _, werr := bw.Write(buf); werr != nil {
			return werr
		}
		if werr := bw.Flush(); werr != nil {
			return werr
		}
	}
	return nil
}
