package partition

// RemoteNode speaks the partition wire protocol to a trappserver's
// framed listener: the coordinator side of the protocol. Connections
// are pooled and exclusive per request (the coordinator's concurrency
// comes from scattering across partitions, not pipelining within one),
// lazily dialed, and dropped on any error — the coordinator's retry
// layer re-dials. Subscriptions hold a dedicated connection for the
// stream's life.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/aggregate"
)

// maxIdleConns bounds the per-node idle connection pool.
const maxIdleConns = 4

// RemoteNode is a partition served by another process. The id must
// match the partition id the remote server was started with (data
// placement happened under that id); Hello verifies the match.
type RemoteNode struct {
	id   string
	addr string

	nextID atomic.Uint32

	mu     sync.Mutex
	closed bool
	idle   []*rconn
	subs   map[net.Conn]struct{}
}

// rconn is one pooled connection with its reusable buffers.
type rconn struct {
	c        net.Conn
	br       *bufio.Reader
	readBuf  []byte
	writeBuf []byte
}

// NewRemoteNode addresses the partition id at addr (host:port of the
// remote framed listener). No connection is made until the first
// operation.
func NewRemoteNode(id, addr string) *RemoteNode {
	return &RemoteNode{id: id, addr: addr, subs: make(map[net.Conn]struct{})}
}

// ID implements Node.
func (n *RemoteNode) ID() string { return n.id }

// Close implements Node: closes pooled and streaming connections.
func (n *RemoteNode) Close() error {
	n.mu.Lock()
	n.closed = true
	idle := n.idle
	n.idle = nil
	subs := n.subs
	n.subs = nil
	n.mu.Unlock()
	for _, rc := range idle {
		rc.c.Close()
	}
	for c := range subs {
		c.Close()
	}
	return nil
}

// get checks a connection out of the pool, dialing if none is idle.
func (n *RemoteNode) get(ctx context.Context) (*rconn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("partition: node %s closed", n.id)
	}
	if len(n.idle) > 0 {
		rc := n.idle[len(n.idle)-1]
		n.idle = n.idle[:len(n.idle)-1]
		n.mu.Unlock()
		return rc, nil
	}
	n.mu.Unlock()
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", n.addr)
	if err != nil {
		return nil, fmt.Errorf("partition: dial %s: %w", n.addr, err)
	}
	return &rconn{c: c, br: bufio.NewReaderSize(c, 1<<16)}, nil
}

// put returns a healthy connection to the pool.
func (n *RemoteNode) put(rc *rconn) {
	n.mu.Lock()
	if n.closed || len(n.idle) >= maxIdleConns {
		n.mu.Unlock()
		rc.c.Close()
		return
	}
	n.idle = append(n.idle, rc)
	n.mu.Unlock()
}

// remaining converts the context deadline into the relative nanoseconds
// a request frame carries (0 = none).
func remaining(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	d := time.Until(dl)
	if d <= 0 {
		return 1 // expired; let the remote side fail it canonically
	}
	return int64(d)
}

// roundTrip runs one request/response exchange on a pooled connection.
// build appends the request frame; decode returns (opErr, protoErr):
// an opErr is a clean node-side failure (connection stays pooled), a
// protoErr poisons the connection. I/O failures surface ctx.Err() when
// the context was the cause.
func (n *RemoteNode) roundTrip(ctx context.Context,
	build func(dst []byte, id uint32) []byte,
	decode func(payload []byte, id uint32) (opErr, protoErr error)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	rc, err := n.get(ctx)
	if err != nil {
		return err
	}
	id := n.nextID.Add(1)
	if dl, ok := ctx.Deadline(); ok {
		rc.c.SetDeadline(dl)
	} else {
		rc.c.SetDeadline(time.Time{})
	}
	// Context cancellation (not just deadline) must unblock the read.
	stop := context.AfterFunc(ctx, func() { rc.c.SetDeadline(time.Unix(1, 0)) })
	rc.writeBuf = build(rc.writeBuf[:0], id)
	var payload []byte
	_, ioErr := rc.c.Write(rc.writeBuf)
	if ioErr == nil {
		payload, ioErr = readFrame(rc.br, &rc.readBuf)
	}
	stop()
	if ioErr != nil {
		rc.c.Close()
		if ce := ctx.Err(); ce != nil {
			return ce
		}
		return fmt.Errorf("partition: %s: %w", n.addr, ioErr)
	}
	rc.c.SetDeadline(time.Time{})
	opErr, protoErr := decode(payload, id)
	if protoErr != nil {
		rc.c.Close()
		return protoErr
	}
	n.put(rc)
	return opErr
}

// checkID verifies the response echoes the request id; a mismatch means
// the connection's framing state is lost.
func checkID(got, want uint32) error {
	if got != want {
		return fmt.Errorf("partition: response id mismatch: got %d, want %d", got, want)
	}
	return nil
}

// Hello implements Node, verifying the remote's identity matches the
// configured partition id.
func (n *RemoteNode) Hello(ctx context.Context) (Hello, error) {
	var h Hello
	err := n.roundTrip(ctx,
		func(dst []byte, id uint32) []byte { return AppendHelloReq(dst, id) },
		func(payload []byte, id uint32) (error, error) {
			rid, hh, remoteErr, perr := DecodeHelloResp(payload)
			if perr != nil {
				return nil, perr
			}
			if err := checkID(rid, id); err != nil {
				return nil, err
			}
			h = hh
			return remoteErr, nil
		})
	if err != nil {
		return Hello{}, err
	}
	if h.ID != n.id {
		return Hello{}, fmt.Errorf("partition: node at %s identifies as %q, expected %q", n.addr, h.ID, n.id)
	}
	return h, nil
}

// State implements Node.
func (n *RemoteNode) State(ctx context.Context, shape string) (aggregate.State, error) {
	var st aggregate.State
	err := n.roundTrip(ctx,
		func(dst []byte, id uint32) []byte { return AppendStateReq(dst, id, remaining(ctx), shape) },
		func(payload []byte, id uint32) (error, error) {
			rid, s, remoteErr, perr := DecodeStateResp(payload)
			if perr != nil {
				return nil, perr
			}
			if err := checkID(rid, id); err != nil {
				return nil, err
			}
			st = s
			return remoteErr, nil
		})
	return st, err
}

// Inputs implements Node.
func (n *RemoteNode) Inputs(ctx context.Context, shape string) ([]aggregate.Input, int, error) {
	var inputs []aggregate.Input
	var tableLen int
	err := n.roundTrip(ctx,
		func(dst []byte, id uint32) []byte { return AppendInputsReq(dst, id, remaining(ctx), shape) },
		func(payload []byte, id uint32) (error, error) {
			rid, in, tl, remoteErr, perr := DecodeInputsResp(payload)
			if perr != nil {
				return nil, perr
			}
			if err := checkID(rid, id); err != nil {
				return nil, err
			}
			inputs, tableLen = in, tl
			return remoteErr, nil
		})
	return inputs, tableLen, err
}

// Refresh implements Node.
func (n *RemoteNode) Refresh(ctx context.Context, shape string, keys []int64) (RefreshOutcome, error) {
	var out RefreshOutcome
	err := n.roundTrip(ctx,
		func(dst []byte, id uint32) []byte {
			return AppendRefreshReq(dst, id, remaining(ctx), shape, keys)
		},
		func(payload []byte, id uint32) (error, error) {
			rid, o, remoteErr, perr := DecodeRefreshResp(payload)
			if perr != nil {
				return nil, perr
			}
			if err := checkID(rid, id); err != nil {
				return nil, err
			}
			out = o
			return remoteErr, nil
		})
	return out, err
}

// Subscribe implements Node: a dedicated connection streams update
// frames until ctx ends, the node closes the stream, or Close tears the
// node down. Updates coalesce so a slow coordinator sees the latest
// state, not a backlog.
func (n *RemoteNode) Subscribe(ctx context.Context, shape string, within float64) (<-chan Update, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", n.addr)
	if err != nil {
		return nil, fmt.Errorf("partition: dial %s: %w", n.addr, err)
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("partition: node %s closed", n.id)
	}
	n.subs[c] = struct{}{}
	n.mu.Unlock()
	release := func() {
		c.Close()
		n.mu.Lock()
		if n.subs != nil {
			delete(n.subs, c)
		}
		n.mu.Unlock()
	}
	id := n.nextID.Add(1)
	req := AppendSubscribeReq(nil, id, shape, within)
	if _, err := c.Write(req); err != nil {
		release()
		return nil, fmt.Errorf("partition: %s: subscribe: %w", n.addr, err)
	}
	stop := context.AfterFunc(ctx, func() { c.Close() })
	ch := make(chan Update, 1)
	go func() {
		defer close(ch)
		defer stop()
		defer release()
		br := bufio.NewReaderSize(c, 1<<16)
		var buf []byte
		for {
			payload, err := readFrame(br, &buf)
			if err != nil {
				return // stream over: peer closed, ctx canceled, or node down
			}
			rid, u, remoteErr, perr := DecodeSubUpdate(payload)
			if perr != nil || remoteErr != nil || rid != id {
				return
			}
			select {
			case ch <- u:
			default:
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- u:
				default:
				}
			}
		}
	}()
	return ch, nil
}
