package partition

// Wire codec for the partition coordination protocol.
//
// The protocol rides the server's persistent framed listener: frame
// types at or above server.FrameExtBase are dispatched to the node-side
// Service (service.go) instead of the core query decoder, so one
// trappserver port carries both client queries and coordinator traffic.
// The framing idiom matches internal/server/frame.go — 4-byte big-endian
// length prefix, payload[0] is the type byte, floats travel as raw
// IEEE-754 bits, strings are length-prefixed, decoding is strict and
// bounds-checked — but the payload vocabulary is fold state, classified
// inputs, and refresh outcomes rather than SQL results.
//
// Requests carry the remaining request deadline as relative nanoseconds
// (0 = none): absolute deadlines do not survive clock skew between
// coordinator and partitions, remaining time does. Error responses carry
// a kind byte so context errors reconstruct as the canonical
// context.DeadlineExceeded / context.Canceled sentinels across the wire
// — the coordinator's degradation taxonomy branches on them.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/relation"
	"trapp/internal/server"
)

// Partition frame types (all ≥ server.FrameExtBase).
const (
	frameStateReq     byte = server.FrameExtBase + iota // 0x10
	frameStateResp                                      // 0x11
	frameInputsReq                                      // 0x12
	frameInputsResp                                     // 0x13
	frameRefreshReq                                     // 0x14
	frameRefreshResp                                    // 0x15
	frameSubscribeReq                                   // 0x16
	frameSubUpdate                                      // 0x17
	frameHelloReq                                       // 0x18
	frameHelloResp                                      // 0x19
)

// maxRespFrame bounds a response frame read by the coordinator. Inputs
// responses scale with partition cardinality, so the cap is far above
// the server's request cap (which still bounds coordinator→node frames).
const maxRespFrame = 1 << 26

// Error kind bytes: how an error response reconstructs on the far side.
const (
	errKindGeneric  byte = 0
	errKindDeadline byte = 1
	errKindCanceled byte = 2
)

// ---------------------------------------------------------------------
// Append helpers (the server's are unexported; same idiom).

func appendU16(dst []byte, v uint16) []byte { return binary.BigEndian.AppendUint16(dst, v) }
func appendU32(dst []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(dst, v) }

func appendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendStr16(dst []byte, s string) []byte {
	dst = appendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

// finishFrame back-fills the 4-byte length prefix reserved at start.
func finishFrame(dst []byte, start int) []byte {
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// ---------------------------------------------------------------------
// Bounds-checked payload reader.

type wireReader struct {
	b   []byte
	off int
}

func (r *wireReader) fail(what string) error {
	return fmt.Errorf("partition: truncated %s (at payload offset %d)", what, r.off)
}

func (r *wireReader) u8(what string) (byte, error) {
	if r.off+1 > len(r.b) {
		return 0, r.fail(what)
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *wireReader) u16(what string) (uint16, error) {
	if r.off+2 > len(r.b) {
		return 0, r.fail(what)
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *wireReader) u32(what string) (uint32, error) {
	if r.off+4 > len(r.b) {
		return 0, r.fail(what)
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *wireReader) u64(what string) (uint64, error) {
	if r.off+8 > len(r.b) {
		return 0, r.fail(what)
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v, nil
}

func (r *wireReader) f64(what string) (float64, error) {
	v, err := r.u64(what)
	return math.Float64frombits(v), err
}

func (r *wireReader) str16(what string) (string, error) {
	n, err := r.u16(what + " length")
	if err != nil {
		return "", err
	}
	if r.off+int(n) > len(r.b) {
		return "", r.fail(what)
	}
	v := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return v, nil
}

func (r *wireReader) str32(what string) (string, error) {
	n, err := r.u32(what + " length")
	if err != nil {
		return "", err
	}
	if int(n) < 0 || r.off+int(n) > len(r.b) {
		return "", r.fail(what)
	}
	v := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return v, nil
}

// count reads a u32 element count and rejects counts that cannot fit in
// the remaining payload at elemSize bytes each (hostile-count guard).
func (r *wireReader) count(elemSize int, what string) (int, error) {
	n, err := r.u32(what)
	if err != nil {
		return 0, err
	}
	if int(n)*elemSize > len(r.b)-r.off {
		return 0, fmt.Errorf("partition: %s %d exceeds payload (at payload offset %d)", what, n, r.off)
	}
	return int(n), nil
}

func (r *wireReader) done() error {
	if r.off != len(r.b) {
		return fmt.Errorf("partition: %d trailing bytes in frame", len(r.b)-r.off)
	}
	return nil
}

// ---------------------------------------------------------------------
// Requests. Layout: [type][u32 id][u64 deadline-remaining-nanos]
// [u32 shapeLen][shape] plus per-type operands. Hello has no shape or
// deadline: [type][u32 id].

func appendShapeReq(dst []byte, typ byte, id uint32, deadline int64, shape string) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, typ)
	dst = appendU32(dst, id)
	dst = appendU64(dst, uint64(deadline))
	dst = appendU32(dst, uint32(len(shape)))
	dst = append(dst, shape...)
	return finishFrame(dst, start)
}

// AppendStateReq encodes a fold-state request.
func AppendStateReq(dst []byte, id uint32, deadline int64, shape string) []byte {
	return appendShapeReq(dst, frameStateReq, id, deadline, shape)
}

// AppendInputsReq encodes a classified-inputs request.
func AppendInputsReq(dst []byte, id uint32, deadline int64, shape string) []byte {
	return appendShapeReq(dst, frameInputsReq, id, deadline, shape)
}

// AppendRefreshReq encodes a refresh fan-out request for the plan keys
// this partition owns.
func AppendRefreshReq(dst []byte, id uint32, deadline int64, shape string, keys []int64) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, frameRefreshReq)
	dst = appendU32(dst, id)
	dst = appendU64(dst, uint64(deadline))
	dst = appendU32(dst, uint32(len(shape)))
	dst = append(dst, shape...)
	dst = appendU32(dst, uint32(len(keys)))
	for _, k := range keys {
		dst = appendU64(dst, uint64(k))
	}
	return finishFrame(dst, start)
}

// AppendSubscribeReq encodes a standing-query registration; within is
// the partition's pro-rata repair target.
func AppendSubscribeReq(dst []byte, id uint32, shape string, within float64) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, frameSubscribeReq)
	dst = appendU32(dst, id)
	dst = appendU32(dst, uint32(len(shape)))
	dst = append(dst, shape...)
	dst = appendF64(dst, within)
	return finishFrame(dst, start)
}

// AppendHelloReq encodes a topology handshake request.
func AppendHelloReq(dst []byte, id uint32) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, frameHelloReq)
	dst = appendU32(dst, id)
	return finishFrame(dst, start)
}

func decodeShapeReq(payload []byte, typ byte) (id uint32, deadline int64, shape string, err error) {
	r := &wireReader{b: payload}
	t, err := r.u8("frame type")
	if err != nil {
		return 0, 0, "", err
	}
	if t != typ {
		return 0, 0, "", fmt.Errorf("partition: unexpected frame type 0x%02x (want 0x%02x)", t, typ)
	}
	if id, err = r.u32("request id"); err != nil {
		return 0, 0, "", err
	}
	d, err := r.u64("deadline")
	if err != nil {
		return id, 0, "", err
	}
	if shape, err = r.str32("shape"); err != nil {
		return id, 0, "", err
	}
	if err = r.done(); err != nil {
		return id, 0, "", err
	}
	return id, int64(d), shape, nil
}

func decodeStateReq(payload []byte) (uint32, int64, string, error) {
	return decodeShapeReq(payload, frameStateReq)
}

func decodeInputsReq(payload []byte) (uint32, int64, string, error) {
	return decodeShapeReq(payload, frameInputsReq)
}

func decodeRefreshReq(payload []byte) (id uint32, deadline int64, shape string, keys []int64, err error) {
	r := &wireReader{b: payload}
	if _, err = r.u8("frame type"); err != nil {
		return
	}
	if id, err = r.u32("request id"); err != nil {
		return
	}
	d, err := r.u64("deadline")
	if err != nil {
		return id, 0, "", nil, err
	}
	deadline = int64(d)
	if shape, err = r.str32("shape"); err != nil {
		return
	}
	n, err := r.count(8, "key count")
	if err != nil {
		return
	}
	keys = make([]int64, n)
	for i := range keys {
		v, kerr := r.u64("key")
		if kerr != nil {
			return id, deadline, shape, nil, kerr
		}
		keys[i] = int64(v)
	}
	err = r.done()
	return
}

func decodeSubscribeReq(payload []byte) (id uint32, shape string, within float64, err error) {
	r := &wireReader{b: payload}
	if _, err = r.u8("frame type"); err != nil {
		return
	}
	if id, err = r.u32("request id"); err != nil {
		return
	}
	if shape, err = r.str32("shape"); err != nil {
		return
	}
	if within, err = r.f64("within"); err != nil {
		return
	}
	err = r.done()
	return
}

func decodeHelloReq(payload []byte) (id uint32, err error) {
	r := &wireReader{b: payload}
	if _, err = r.u8("frame type"); err != nil {
		return
	}
	if id, err = r.u32("request id"); err != nil {
		return
	}
	err = r.done()
	return
}

// ---------------------------------------------------------------------
// Responses. Layout: [type][u32 id][u8 status]; status 1 is an error —
// [u16 msgLen][msg][u8 kind] — status 0 is followed by the result body.

// AppendErrResp encodes an error response of the given type.
func AppendErrResp(dst []byte, typ byte, id uint32, err error) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, typ)
	dst = appendU32(dst, id)
	dst = append(dst, 1)
	msg := err.Error()
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	dst = appendStr16(dst, msg)
	kind := errKindGeneric
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		kind = errKindDeadline
	case errors.Is(err, context.Canceled):
		kind = errKindCanceled
	}
	dst = append(dst, kind)
	return finishFrame(dst, start)
}

func appendOKHeader(dst []byte, typ byte, id uint32) []byte {
	dst = append(dst, 0, 0, 0, 0, typ)
	dst = appendU32(dst, id)
	return append(dst, 0)
}

// decodeRespHeader checks the type byte, extracts the id, and — for
// error responses — reconstructs the remote error (context sentinels
// survive the round trip via the kind byte). A nil reader with a nil
// error means the payload was an error response.
func decodeRespHeader(payload []byte, typ byte) (id uint32, r *wireReader, remoteErr error, err error) {
	r = &wireReader{b: payload}
	t, err := r.u8("frame type")
	if err != nil {
		return 0, nil, nil, err
	}
	if t != typ {
		return 0, nil, nil, fmt.Errorf("partition: unexpected frame type 0x%02x (want 0x%02x)", t, typ)
	}
	if id, err = r.u32("response id"); err != nil {
		return 0, nil, nil, err
	}
	status, err := r.u8("status")
	if err != nil {
		return id, nil, nil, err
	}
	switch status {
	case 0:
		return id, r, nil, nil
	case 1:
		msg, err := r.str16("error message")
		if err != nil {
			return id, nil, nil, err
		}
		kind, err := r.u8("error kind")
		if err != nil {
			return id, nil, nil, err
		}
		if err := r.done(); err != nil {
			return id, nil, nil, err
		}
		return id, nil, reconstructErr(kind, msg), nil
	default:
		return id, nil, nil, fmt.Errorf("partition: unknown status byte 0x%02x", status)
	}
}

// remoteErr carries a remote failure's exact message while unwrapping
// to a context sentinel, so errors.Is sees what the coordinator's
// degradation logic branches on without mangling the text.
type remoteErr struct {
	msg  string
	base error
}

func (e *remoteErr) Error() string { return e.msg }
func (e *remoteErr) Unwrap() error { return e.base }

// reconstructErr rebuilds a remote error so errors.Is sees the context
// sentinels the coordinator's degradation logic branches on.
func reconstructErr(kind byte, msg string) error {
	switch kind {
	case errKindDeadline:
		if msg == context.DeadlineExceeded.Error() {
			return context.DeadlineExceeded
		}
		return &remoteErr{msg: msg, base: context.DeadlineExceeded}
	case errKindCanceled:
		if msg == context.Canceled.Error() {
			return context.Canceled
		}
		return &remoteErr{msg: msg, base: context.Canceled}
	}
	return errors.New(msg)
}

// ---------------------------------------------------------------------
// Fold-state body: the full aggregate.State in fixed layout. Bucket
// arrays travel whole (NumCanonicalBuckets is a protocol constant);
// only AvgMaybes is variable-length.

func appendState(dst []byte, s *aggregate.State) []byte {
	dst = append(dst, byte(s.Fn))
	dst = appendBool(dst, s.NoPred)
	dst = appendU64(dst, uint64(s.TableLen))
	for _, sel := range [4]aggregate.Selection{s.MinLo, s.MinHiPlus, s.MaxHi, s.MaxLoPlus} {
		dst = appendBool(dst, sel.Valid)
		dst = appendF64(dst, sel.Val)
		dst = appendU64(dst, uint64(sel.Key))
	}
	dst = appendU64(dst, s.SumPresent)
	for _, v := range s.SumLo {
		dst = appendF64(dst, v)
	}
	for _, v := range s.SumHi {
		dst = appendF64(dst, v)
	}
	dst = appendU64(dst, uint64(s.Plus))
	dst = appendU64(dst, uint64(s.Maybe))
	dst = appendU64(dst, s.AvgSeedPresent)
	for _, v := range s.AvgSeedLo {
		dst = appendF64(dst, v)
	}
	for _, v := range s.AvgSeedHi {
		dst = appendF64(dst, v)
	}
	dst = appendU64(dst, uint64(s.AvgK))
	dst = appendBool(dst, s.AvgAny)
	dst = appendU32(dst, uint32(len(s.AvgMaybes)))
	for _, iv := range s.AvgMaybes {
		dst = appendF64(dst, iv.Lo)
		dst = appendF64(dst, iv.Hi)
	}
	return dst
}

func decodeState(r *wireReader) (aggregate.State, error) {
	var s aggregate.State
	fn, err := r.u8("fn")
	if err != nil {
		return s, err
	}
	s.Fn = aggregate.Func(fn)
	np, err := r.u8("noPred")
	if err != nil {
		return s, err
	}
	s.NoPred = np == 1
	tl, err := r.u64("tableLen")
	if err != nil {
		return s, err
	}
	s.TableLen = int(tl)
	for _, sel := range [4]*aggregate.Selection{&s.MinLo, &s.MinHiPlus, &s.MaxHi, &s.MaxLoPlus} {
		v, err := r.u8("selection valid")
		if err != nil {
			return s, err
		}
		sel.Valid = v == 1
		if sel.Val, err = r.f64("selection value"); err != nil {
			return s, err
		}
		k, err := r.u64("selection key")
		if err != nil {
			return s, err
		}
		sel.Key = int64(k)
	}
	if s.SumPresent, err = r.u64("sumPresent"); err != nil {
		return s, err
	}
	for i := range s.SumLo {
		if s.SumLo[i], err = r.f64("sumLo"); err != nil {
			return s, err
		}
	}
	for i := range s.SumHi {
		if s.SumHi[i], err = r.f64("sumHi"); err != nil {
			return s, err
		}
	}
	plus, err := r.u64("plus")
	if err != nil {
		return s, err
	}
	s.Plus = int(plus)
	maybe, err := r.u64("maybe")
	if err != nil {
		return s, err
	}
	s.Maybe = int(maybe)
	if s.AvgSeedPresent, err = r.u64("avgSeedPresent"); err != nil {
		return s, err
	}
	for i := range s.AvgSeedLo {
		if s.AvgSeedLo[i], err = r.f64("avgSeedLo"); err != nil {
			return s, err
		}
	}
	for i := range s.AvgSeedHi {
		if s.AvgSeedHi[i], err = r.f64("avgSeedHi"); err != nil {
			return s, err
		}
	}
	avgK, err := r.u64("avgK")
	if err != nil {
		return s, err
	}
	s.AvgK = int(avgK)
	anyB, err := r.u8("avgAny")
	if err != nil {
		return s, err
	}
	s.AvgAny = anyB == 1
	n, err := r.count(16, "avgMaybes count")
	if err != nil {
		return s, err
	}
	if n > 0 {
		s.AvgMaybes = make([]interval.Interval, n)
		for i := range s.AvgMaybes {
			if s.AvgMaybes[i].Lo, err = r.f64("avgMaybe lo"); err != nil {
				return s, err
			}
			if s.AvgMaybes[i].Hi, err = r.f64("avgMaybe hi"); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// AppendStateResp encodes a fold-state response.
func AppendStateResp(dst []byte, id uint32, s *aggregate.State) []byte {
	start := len(dst)
	dst = appendOKHeader(dst, frameStateResp, id)
	dst = appendState(dst, s)
	return finishFrame(dst, start)
}

// DecodeStateResp decodes a fold-state response; remoteErr carries a
// reconstructed node-side failure.
func DecodeStateResp(payload []byte) (id uint32, s aggregate.State, remoteErr, err error) {
	id, r, remoteErr, err := decodeRespHeader(payload, frameStateResp)
	if err != nil || remoteErr != nil {
		return id, s, remoteErr, err
	}
	if s, err = decodeState(r); err != nil {
		return id, s, nil, err
	}
	return id, s, nil, r.done()
}

// ---------------------------------------------------------------------
// Classified-inputs body: u64 tableLen, u32 n, then per input
// (u64 key, f64 lo, f64 hi, f64 cost, u8 class). Index is omitted —
// canonical positions are reassigned by aggregate.MergeInputs.

// AppendInputsResp encodes a classified-inputs response.
func AppendInputsResp(dst []byte, id uint32, inputs []aggregate.Input, tableLen int) []byte {
	start := len(dst)
	dst = appendOKHeader(dst, frameInputsResp, id)
	dst = appendU64(dst, uint64(tableLen))
	dst = appendU32(dst, uint32(len(inputs)))
	for i := range inputs {
		in := &inputs[i]
		dst = appendU64(dst, uint64(in.Key))
		dst = appendF64(dst, in.Bound.Lo)
		dst = appendF64(dst, in.Bound.Hi)
		dst = appendF64(dst, in.Cost)
		dst = append(dst, byte(in.Class))
	}
	return finishFrame(dst, start)
}

// DecodeInputsResp decodes a classified-inputs response.
func DecodeInputsResp(payload []byte) (id uint32, inputs []aggregate.Input, tableLen int, remoteErr, err error) {
	id, r, remoteErr, err := decodeRespHeader(payload, frameInputsResp)
	if err != nil || remoteErr != nil {
		return id, nil, 0, remoteErr, err
	}
	tl, err := r.u64("tableLen")
	if err != nil {
		return id, nil, 0, nil, err
	}
	tableLen = int(tl)
	n, err := r.count(33, "input count")
	if err != nil {
		return id, nil, 0, nil, err
	}
	if n > 0 {
		inputs = make([]aggregate.Input, n)
	}
	for i := range inputs {
		in := &inputs[i]
		k, err := r.u64("input key")
		if err != nil {
			return id, nil, 0, nil, err
		}
		in.Key = int64(k)
		if in.Bound.Lo, err = r.f64("input lo"); err != nil {
			return id, nil, 0, nil, err
		}
		if in.Bound.Hi, err = r.f64("input hi"); err != nil {
			return id, nil, 0, nil, err
		}
		if in.Cost, err = r.f64("input cost"); err != nil {
			return id, nil, 0, nil, err
		}
		cls, err := r.u8("input class")
		if err != nil {
			return id, nil, 0, nil, err
		}
		if cls > byte(predicate.Plus) {
			return id, nil, 0, nil, fmt.Errorf("partition: unknown class byte 0x%02x", cls)
		}
		in.Class = predicate.Class(cls)
	}
	return id, inputs, tableLen, nil, r.done()
}

// ---------------------------------------------------------------------
// Refresh-outcome body: u8 cut, u32 nInstalled, installed keys, then
// the post-refresh fold state.

// AppendRefreshResp encodes a refresh outcome.
func AppendRefreshResp(dst []byte, id uint32, out *RefreshOutcome) []byte {
	start := len(dst)
	dst = appendOKHeader(dst, frameRefreshResp, id)
	dst = appendBool(dst, out.Cut)
	dst = appendU32(dst, uint32(len(out.Installed)))
	for _, k := range out.Installed {
		dst = appendU64(dst, uint64(k))
	}
	dst = appendState(dst, &out.State)
	return finishFrame(dst, start)
}

// DecodeRefreshResp decodes a refresh outcome.
func DecodeRefreshResp(payload []byte) (id uint32, out RefreshOutcome, remoteErr, err error) {
	id, r, remoteErr, err := decodeRespHeader(payload, frameRefreshResp)
	if err != nil || remoteErr != nil {
		return id, out, remoteErr, err
	}
	cut, err := r.u8("cut")
	if err != nil {
		return id, out, nil, err
	}
	out.Cut = cut == 1
	n, err := r.count(8, "installed count")
	if err != nil {
		return id, out, nil, err
	}
	if n > 0 {
		out.Installed = make([]int64, n)
		for i := range out.Installed {
			v, kerr := r.u64("installed key")
			if kerr != nil {
				return id, out, nil, kerr
			}
			out.Installed[i] = int64(v)
		}
	}
	if out.State, err = decodeState(r); err != nil {
		return id, out, nil, err
	}
	return id, out, nil, r.done()
}

// ---------------------------------------------------------------------
// Subscription update body: i64 seq, i64 at, fold state. The same frame
// type with status 1 ends the stream with an error.

// AppendSubUpdate encodes one streamed subscription update.
func AppendSubUpdate(dst []byte, id uint32, u *Update) []byte {
	start := len(dst)
	dst = appendOKHeader(dst, frameSubUpdate, id)
	dst = appendU64(dst, uint64(u.Seq))
	dst = appendU64(dst, uint64(u.At))
	dst = appendState(dst, &u.State)
	return finishFrame(dst, start)
}

// DecodeSubUpdate decodes one streamed subscription update.
func DecodeSubUpdate(payload []byte) (id uint32, u Update, remoteErr, err error) {
	id, r, remoteErr, err := decodeRespHeader(payload, frameSubUpdate)
	if err != nil || remoteErr != nil {
		return id, u, remoteErr, err
	}
	seq, err := r.u64("seq")
	if err != nil {
		return id, u, nil, err
	}
	u.Seq = int64(seq)
	at, err := r.u64("at")
	if err != nil {
		return id, u, nil, err
	}
	u.At = int64(at)
	if u.State, err = decodeState(r); err != nil {
		return id, u, nil, err
	}
	return id, u, nil, r.done()
}

// ---------------------------------------------------------------------
// Hello body: the node's ID and table catalog.

// AppendHelloResp encodes a topology handshake response.
func AppendHelloResp(dst []byte, id uint32, h *Hello) []byte {
	start := len(dst)
	dst = appendOKHeader(dst, frameHelloResp, id)
	dst = appendStr16(dst, h.ID)
	dst = appendU16(dst, uint16(len(h.Tables)))
	for _, t := range h.Tables {
		dst = appendStr16(dst, t.Name)
		dst = appendU16(dst, uint16(len(t.Columns)))
		for _, c := range t.Columns {
			dst = appendStr16(dst, c.Name)
			dst = append(dst, byte(c.Kind))
		}
	}
	return finishFrame(dst, start)
}

// DecodeHelloResp decodes a topology handshake response.
func DecodeHelloResp(payload []byte) (id uint32, h Hello, remoteErr, err error) {
	id, r, remoteErr, err := decodeRespHeader(payload, frameHelloResp)
	if err != nil || remoteErr != nil {
		return id, h, remoteErr, err
	}
	if h.ID, err = r.str16("node id"); err != nil {
		return id, h, nil, err
	}
	nt, err := r.u16("table count")
	if err != nil {
		return id, h, nil, err
	}
	for i := 0; i < int(nt); i++ {
		var t TableSchema
		if t.Name, err = r.str16("table name"); err != nil {
			return id, h, nil, err
		}
		nc, err := r.u16("column count")
		if err != nil {
			return id, h, nil, err
		}
		for j := 0; j < int(nc); j++ {
			var c relation.Column
			if c.Name, err = r.str16("column name"); err != nil {
				return id, h, nil, err
			}
			kind, err := r.u8("column kind")
			if err != nil {
				return id, h, nil, err
			}
			if kind > byte(relation.Bounded) {
				return id, h, nil, fmt.Errorf("partition: unknown column kind byte 0x%02x", kind)
			}
			c.Kind = relation.Kind(kind)
			t.Columns = append(t.Columns, c)
		}
		h.Tables = append(h.Tables, t)
	}
	return id, h, nil, r.done()
}

// ---------------------------------------------------------------------
// Frame reading with the response-side cap.

// readFrame reads one partition frame, allowing responses larger than
// the server's request cap (inputs scale with partition cardinality).
func readFrame(br io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, errors.New("partition: empty frame")
	}
	if n > maxRespFrame {
		return nil, fmt.Errorf("partition: frame of %d bytes exceeds cap %d", n, maxRespFrame)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	p := (*buf)[:n]
	if _, err := io.ReadFull(br, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return p, nil
}
