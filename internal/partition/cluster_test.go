package partition_test

// Cluster differential tests: a 3-partition cluster — in-process
// LocalNodes and real framed servers over loopback — runs the benchmark
// query mix in lockstep with a single embedded system holding the same
// tuples, and every interval, plan-cost total, and typed error must
// match bit for bit (DESIGN.md §14's bit-identity claim, enforced).
// Plus the fan-out cancellation contract: a deadline expiring
// mid-scatter returns the best merged interval under ErrPrecisionUnmet,
// leaks no goroutines, and charges each installed refresh exactly once.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/experiment"
	"trapp/internal/interval"
	"trapp/internal/partition"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/server"
	itrapp "trapp/internal/trapp"
	"trapp/internal/workload"
)

const (
	diffLinks  = 64
	diffSrcs   = 4
	diffParts  = 3
	diffSeed   = int64(7)
	diffQuerys = 160
)

// buildPair builds the single system and its partitioned twin.
func buildPair(t *testing.T) (*itrapp.System, *workload.Network, []*itrapp.System, *workload.Network, *partition.Ring) {
	t.Helper()
	single, netS, err := experiment.BuildLinkSystem(diffLinks, diffSrcs, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)
	parts, netP, ring, err := experiment.BuildLinkPartitions(diffLinks, diffSrcs, diffSeed, experiment.PartitionIDs(diffParts))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, p := range parts {
			p.Close()
		}
	})
	return single, netS, parts, netP, ring
}

// startPartitionServer serves one partition over a loopback framed
// listener, the way a real trappserver process does.
func startPartitionServer(t *testing.T, id string, sys *itrapp.System) string {
	t.Helper()
	node := partition.NewLocalNode(id, sys)
	srv := server.New(sys, server.Config{FramedExt: partition.NewService(node)})
	ln, err := srv.ListenAndServeFramed("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return ln.Addr().String()
}

func newCluster(t *testing.T, nodes []partition.Node) *partition.Cluster {
	t.Helper()
	cl, err := partition.New(context.Background(), nodes, partition.Config{
		Options: refresh.Options{Solver: refresh.SolverGreedyDensity},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// normalizeMsgs blanks error messages when both sides carry the same
// code: the typed fields are the parity contract; message prefixes may
// differ between the partition path and local wrapping.
func normalizeMsgs(a, b *server.WireError) {
	if a != nil && b != nil && a.Code == b.Code {
		a.Message, b.Message = "", ""
	}
}

// runClusterDifferential drives the single system and the cluster in
// lockstep — identical queries, option variants, pushes, and clock
// advances — and asserts bit-identical wire results.
func runClusterDifferential(t *testing.T, mkNodes func(t *testing.T, parts []*itrapp.System) []partition.Node) {
	single, netS, parts, netP, ring := buildPair(t)
	cl := newCluster(t, mkNodes(t, parts))

	schema := single.MountedCache("links").Schema()
	rng := rand.New(rand.NewSource(diffSeed + 4242))
	ctx := context.Background()
	for i := 0; i < diffQuerys; i++ {
		if i%8 == 3 {
			// Lockstep mutation round: step the same links in both
			// generator instances (identical walks by construction) and
			// push each value to the single system and to the partition
			// owning the key.
			for j := 0; j < 8; j++ {
				li := rng.Intn(diffLinks)
				lS, lP := netS.Links[li], netP.Links[li]
				vs, vp := lS.Step(), lP.Step()
				if !reflect.DeepEqual(vs, vp) {
					t.Fatalf("generator divergence at link %d: %v vs %v", li, vs, vp)
				}
				name := fmt.Sprintf("s%d", li%diffSrcs)
				if err := single.Source(name).SetValue(lS.Key, vs); err != nil {
					t.Fatal(err)
				}
				if err := parts[ring.OwnerOfKey(lP.Key)].Source(name).SetValue(lP.Key, vp); err != nil {
					t.Fatal(err)
				}
			}
			single.Clock.Advance(1)
			for _, p := range parts {
				p.Clock.Advance(1)
			}
		}

		q := experiment.MixQuery(rng, schema, diffLinks)
		var opts []query.ExecOption
		switch i % 4 {
		case 1: // the cost-bounded dual
			opts = append(opts, query.WithCostBudget(2+rng.Float64()*8))
		case 2: // the fresh-data extreme
			opts = append(opts, query.WithMode(query.ModePrecise))
		case 3: // an already-expired deadline: deterministic best-effort
			opts = append(opts, query.WithDeadline(time.Now().Add(-time.Millisecond)))
		}

		wantRes, wantErr := single.ExecuteCtx(ctx, q, opts...)
		gotRes, gotErr := cl.ExecuteCtx(ctx, q, opts...)
		want := server.ToWireResult(wantRes, wantErr)
		got := server.ToWireResult(gotRes, gotErr)
		got.ChooseTimeNS, want.ChooseTimeNS = 0, 0
		normalizeMsgs(got.Error, want.Error)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d (%s, variant %d): cluster %+v != single %+v", i, q, i%4, got, want)
		}
	}
}

func TestClusterDifferentialLocal(t *testing.T) {
	runClusterDifferential(t, func(t *testing.T, parts []*itrapp.System) []partition.Node {
		nodes := make([]partition.Node, len(parts))
		for i, id := range experiment.PartitionIDs(len(parts)) {
			nodes[i] = partition.NewLocalNode(id, parts[i])
		}
		return nodes
	})
}

func TestClusterDifferentialRemote(t *testing.T) {
	runClusterDifferential(t, func(t *testing.T, parts []*itrapp.System) []partition.Node {
		nodes := make([]partition.Node, len(parts))
		for i, id := range experiment.PartitionIDs(len(parts)) {
			nodes[i] = partition.NewRemoteNode(id, startPartitionServer(t, id, parts[i]))
		}
		return nodes
	})
}

// TestClusterBatchDifferential pins the batch contract: the coordinator
// executes batch statements sequentially, each answering exactly as if
// issued alone.
func TestClusterBatchDifferential(t *testing.T) {
	single, _, parts, _, _ := buildPair(t)
	nodes := make([]partition.Node, len(parts))
	for i, id := range experiment.PartitionIDs(len(parts)) {
		nodes[i] = partition.NewLocalNode(id, parts[i])
	}
	cl := newCluster(t, nodes)
	schema := single.MountedCache("links").Schema()
	rng := rand.New(rand.NewSource(diffSeed + 99))
	qs := make([]query.Query, 5)
	for i := range qs {
		qs[i] = experiment.MixQuery(rng, schema, diffLinks)
	}
	ctx := context.Background()
	results, errs, err := cl.ExecuteBatchDetailed(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		wantRes, wantErr := single.ExecuteCtx(ctx, q)
		want := server.ToWireResult(wantRes, wantErr)
		got := server.ToWireResult(results[i], errs[i])
		got.ChooseTimeNS, want.ChooseTimeNS = 0, 0
		normalizeMsgs(got.Error, want.Error)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("batch statement %d (%s): cluster %+v != single %+v", i, q, got, want)
		}
	}
}

// TestClusterSubscription checks the re-multiplexed standing query: the
// first merged update must wait for every partition, merge to the
// cluster-wide fold, and later pushes must flow through.
func TestClusterSubscription(t *testing.T) {
	_, _, parts, netP, ring := buildPair(t)
	nodes := make([]partition.Node, len(parts))
	for i, id := range experiment.PartitionIDs(len(parts)) {
		nodes[i] = partition.NewLocalNode(id, parts[i])
	}
	cl := newCluster(t, nodes)

	q := query.NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = math.Inf(1) // pure change feed; Met must still be true
	sub, err := cl.SubscribeCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var first interval.Interval
	select {
	case u := <-sub.Updates():
		if !u.Met {
			t.Fatalf("unconstrained subscription not met: %+v", u)
		}
		first = u.Answer
	case <-time.After(5 * time.Second):
		t.Fatal("no initial merged update")
	}

	// The merged initial answer must equal the scattered imprecise fold.
	res, err := cl.ExecuteCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if first != res.Answer {
		t.Fatalf("initial merged update %v != scattered fold %v", first, res.Answer)
	}

	// A push through the owning partition must surface a fresh update.
	l := netP.Links[0]
	vals := l.Step()
	owner := ring.OwnerOfKey(l.Key)
	if err := parts[owner].Source("s0").SetValue(l.Key, vals); err != nil {
		t.Fatal(err)
	}
	parts[owner].Clock.Advance(1)
	deadline := time.After(5 * time.Second)
	for {
		select {
		case u, ok := <-sub.Updates():
			if !ok {
				t.Fatal("update stream closed early")
			}
			if u.Answer != first {
				return // merged answer moved with the push
			}
		case <-deadline:
			t.Fatal("no merged update after push")
		}
	}
}

// slowNode delays refresh fan-outs so a deadline reliably expires
// mid-scatter.
type slowNode struct {
	partition.Node
	delay time.Duration
}

func (s *slowNode) Refresh(ctx context.Context, shape string, keys []int64) (partition.RefreshOutcome, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return partition.RefreshOutcome{}, ctx.Err()
	}
	return s.Node.Refresh(ctx, shape, keys)
}

// TestClusterFanoutCancellation: a deadline expiring mid-refresh-scatter
// must return the best merged interval under ErrPrecisionUnmet with the
// deadline as cause, leak no goroutines, and never double-charge the
// cost ledger for the refreshes that did land.
func TestClusterFanoutCancellation(t *testing.T) {
	_, _, parts, netP, ring := buildPair(t)
	// Age the caches: push a fresh value for every link so bounds carry
	// the full static width and the precise query below must plan
	// refreshes on every partition.
	for li, l := range netP.Links {
		if err := parts[ring.OwnerOfKey(l.Key)].Source(fmt.Sprintf("s%d", li%diffSrcs)).SetValue(l.Key, l.Step()); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range parts {
		p.Clock.Advance(1)
	}
	ids := experiment.PartitionIDs(len(parts))
	nodes := make([]partition.Node, len(parts))
	for i, id := range ids {
		var n partition.Node = partition.NewLocalNode(id, parts[i])
		if i > 0 {
			n = &slowNode{Node: n, delay: 2 * time.Second}
		}
		nodes[i] = n
	}
	cl := newCluster(t, nodes)

	before := runtime.NumGoroutine()

	q := query.NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 0.01 // needs refreshes everywhere; unmeetable before the deadline
	res, err := cl.ExecuteCtx(context.Background(), q,
		query.WithDeadline(time.Now().Add(150*time.Millisecond)))

	var pu query.ErrPrecisionUnmet
	if !errors.As(err, &pu) {
		t.Fatalf("want ErrPrecisionUnmet, got %v", err)
	}
	if !errors.Is(pu.Cause, context.DeadlineExceeded) {
		t.Fatalf("want deadline cause, got %v", pu.Cause)
	}
	if res.Answer.IsEmpty() || math.IsInf(res.Answer.Width(), 1) {
		t.Fatalf("want best merged interval, got %v", res.Answer)
	}
	if pu.Achieved != res.Answer {
		t.Fatalf("achieved %v != answer %v", pu.Achieved, res.Answer)
	}
	if pu.Spent != res.RefreshCost {
		t.Fatalf("spent %g != charged refresh cost %g", pu.Spent, res.RefreshCost)
	}
	// Only the fast partition's installs may be charged; the slow
	// partitions' outcomes are unconfirmed and must cost nothing.
	if res.Refreshed > 0 && res.RefreshCost <= 0 {
		t.Fatalf("charged %d refreshes at zero cost", res.Refreshed)
	}

	// Scatter goroutines must all exit once the query returns.
	ok := false
	for i := 0; i < 50; i++ {
		if runtime.NumGoroutine() <= before+2 {
			ok = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
	}
}

// TestClusterLedgerSingleCharge drives the coordinator through a real
// server with a client cost ceiling and checks the ledger drains by
// exactly the refresh cost each query reports — charged once, not once
// per partition.
func TestClusterLedgerSingleCharge(t *testing.T) {
	_, _, parts, _, _ := buildPair(t)
	nodes := make([]partition.Node, len(parts))
	for i, id := range experiment.PartitionIDs(len(parts)) {
		nodes[i] = partition.NewLocalNode(id, parts[i])
	}
	cl := newCluster(t, nodes)

	const ceiling = 500.0
	srv := server.NewEngine(cl, server.Config{ClientBudget: ceiling})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	remaining := ceiling
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(server.QueryRequest{
			SQL:  "SELECT SUM(links.latency) WITHIN 0.5 FROM links",
			Mode: "precise",
		})
		req, _ := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
		req.Header.Set("X-Trapp-Client", "ledger-test")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var qr server.QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if qr.Error != nil {
			t.Fatalf("query %d failed: %+v", i, qr.Error)
		}
		if len(qr.Results) != 1 || qr.BudgetRemaining == nil {
			t.Fatalf("query %d: unexpected response %+v", i, qr)
		}
		spent := float64(qr.Results[0].RefreshCost)
		remaining -= spent
		if got := float64(*qr.BudgetRemaining); got != remaining {
			t.Fatalf("query %d: ledger %g after spending %g, want %g (double charge?)",
				i, got, spent, remaining)
		}
	}
}
