package partition

import (
	"context"
	"fmt"
	"sync"

	"trapp/internal/aggregate"
	"trapp/internal/cache"
	"trapp/internal/parallel"
	"trapp/internal/query"
	"trapp/internal/relation"
	"trapp/internal/sql"
	itrapp "trapp/internal/trapp"
)

// LocalNode serves one partition from an embedded System: the same
// store, cache, and continuous engine a single-node deployment runs,
// holding only the tuples whose canonical buckets the ring assigns to
// this node. It is both the in-process Node used by the loopback
// differential tests and the engine behind the framed Service a
// trappserver process exposes.
type LocalNode struct {
	id  string
	sys *itrapp.System

	parsed *sql.ParseCache

	// Fold-state memo: State() answers depend only on the shape and the
	// store's mutation counter, so repeat shapes between mutations skip
	// the scan — the partition-side analogue of the processor's plan
	// cache, and what keeps per-query cluster overhead flat when many
	// same-shape queries land between clock advances. The version is
	// read before the scan so a racing mutation can only leave a
	// conservatively stale stamp.
	mu     sync.Mutex
	states map[string]stateEntry
}

type stateEntry struct {
	ver   uint64
	state aggregate.State
}

// maxStateEntries bounds the fold-state memo; the map is cleared
// wholesale when the shape population exceeds it (shapes are few in
// steady workloads).
const maxStateEntries = 128

// NewLocalNode wraps an embedded system as a cluster partition.
func NewLocalNode(id string, sys *itrapp.System) *LocalNode {
	return &LocalNode{id: id, sys: sys, parsed: sql.NewParseCache(), states: make(map[string]stateEntry)}
}

// System returns the embedded system (the trappserver main also serves
// it over the core framed protocol).
func (n *LocalNode) System() *itrapp.System { return n.sys }

// ID implements Node.
func (n *LocalNode) ID() string { return n.id }

// Close implements Node; the embedded system's lifecycle belongs to its
// owner.
func (n *LocalNode) Close() error { return nil }

// Hello implements Node.
func (n *LocalNode) Hello(ctx context.Context) (Hello, error) {
	if err := ctx.Err(); err != nil {
		return Hello{}, err
	}
	h := Hello{ID: n.id}
	for _, name := range n.sys.Tables() {
		sch := n.sys.MountedCache(name).Schema()
		ts := TableSchema{Name: name}
		for i := 0; i < sch.NumColumns(); i++ {
			ts.Columns = append(ts.Columns, sch.Column(i))
		}
		h.Tables = append(h.Tables, ts)
	}
	return h, nil
}

// resolve parses a shape against the local catalog and locates the
// backing cache and aggregation column.
func (n *LocalNode) resolve(shape string) (query.Query, *cache.Cache, *relation.Store, int, error) {
	st, err := n.parsed.Parse(shape, n.sys.Catalog())
	if err != nil {
		return query.Query{}, nil, nil, 0, err
	}
	if len(st.Queries) != 1 || st.Explain {
		return query.Query{}, nil, nil, 0, fmt.Errorf("partition: shape must be a single plain query: %q", shape)
	}
	q := st.Queries[0]
	if len(q.GroupBy) > 0 {
		return query.Query{}, nil, nil, 0, fmt.Errorf("partition: GROUP BY shapes are not supported: %q", shape)
	}
	c := n.sys.MountedCache(q.Table)
	if c == nil {
		return query.Query{}, nil, nil, 0, fmt.Errorf("partition: %w: %q not mounted", query.ErrUnknownTable, q.Table)
	}
	col, ok := c.Schema().Lookup(q.Column)
	if !ok {
		return query.Query{}, nil, nil, 0, fmt.Errorf("partition: %w: %q.%q", query.ErrUnknownColumn, q.Table, q.Column)
	}
	return q, c, c.Store(), col, nil
}

// State implements Node: sync the cache bounds, then fold the shape over
// the local tuples (memoized per store version).
func (n *LocalNode) State(ctx context.Context, shape string) (aggregate.State, error) {
	if err := ctx.Err(); err != nil {
		return aggregate.State{}, err
	}
	q, c, store, col, err := n.resolve(shape)
	if err != nil {
		return aggregate.State{}, err
	}
	c.Sync()
	ver := store.Version()
	n.mu.Lock()
	if ent, ok := n.states[shape]; ok && ent.ver == ver {
		n.mu.Unlock()
		return ent.state, nil
	}
	n.mu.Unlock()
	s := aggregate.CollectState(store, col, q.Agg, q.Where)
	n.storeState(shape, ver, s)
	return s, nil
}

func (n *LocalNode) storeState(shape string, ver uint64, s aggregate.State) {
	n.mu.Lock()
	if len(n.states) >= maxStateEntries {
		clear(n.states)
	}
	n.states[shape] = stateEntry{ver: ver, state: s}
	n.mu.Unlock()
}

// Inputs implements Node: the partition's classified canonical snapshot
// for refresh planning. Input.Index is partition-local; the coordinator
// reassigns canonical positions when merging (aggregate.MergeInputs).
func (n *LocalNode) Inputs(ctx context.Context, shape string) ([]aggregate.Input, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	q, c, store, col, err := n.resolve(shape)
	if err != nil {
		return nil, 0, err
	}
	c.Sync()
	inputs, tableLen := aggregate.CollectStore(store, col, q.Where, true, 1)
	return inputs, tableLen, nil
}

// Refresh implements Node: fan out exact-value fetches for the keys the
// coordinator's plan assigned to this partition, then refold. A context
// cutoff mid-fan-out keeps the refreshes that beat it (installed and
// reported in Installed) and sets Cut; the coordinator charges exactly
// the installed keys, in plan order.
func (n *LocalNode) Refresh(ctx context.Context, shape string, keys []int64) (RefreshOutcome, error) {
	var out RefreshOutcome
	if err := ctx.Err(); err != nil {
		return out, err
	}
	q, c, store, col, err := n.resolve(shape)
	if err != nil {
		return out, err
	}
	c.Sync()
	vals, err := c.MasterBatchCtx(ctx, keys)
	if err != nil {
		if !parallel.IsContextError(err) {
			return out, err
		}
		out.Cut = true
	}
	for _, key := range keys {
		if _, ok := vals[key]; ok {
			out.Installed = append(out.Installed, key)
		}
	}
	ver := store.Version()
	out.State = aggregate.CollectState(store, col, q.Agg, q.Where)
	n.storeState(shape, ver, out.State)
	return out, nil
}

// Subscribe implements Node: register a standing query for the shape
// with the local continuous engine and translate its notifications into
// fold-state updates. within is the pro-rata repair target for the local
// engine's refresh scheduler; the coordinator recomputes the merged
// answer's Met against the subscription's full constraint.
func (n *LocalNode) Subscribe(ctx context.Context, shape string, within float64) (<-chan Update, error) {
	q, _, store, col, err := n.resolve(shape)
	if err != nil {
		return nil, err
	}
	q.Within = within
	sub, err := n.sys.SubscribeCtx(ctx, q)
	if err != nil {
		return nil, err
	}
	ch := make(chan Update, 1)
	go func() {
		defer close(ch)
		for u := range sub.Updates() {
			st := aggregate.CollectState(store, col, q.Agg, q.Where)
			pu := Update{Seq: u.Seq, At: u.At, State: st}
			// Coalesce like the continuous engine: a slow coordinator
			// sees the latest state, not a backlog.
			select {
			case ch <- pu:
			default:
				select {
				case <-ch:
				default:
				}
				select {
				case ch <- pu:
				default:
				}
			}
		}
	}()
	return ch, nil
}
