package partition

// Codec round-trips: every encoded partition frame must decode to the
// identical value (raw IEEE-754 bits make float fields bit-exact), and
// error responses must reconstruct the context sentinels the
// coordinator's degradation taxonomy branches on.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/relation"
)

func randSelection(rng *rand.Rand) aggregate.Selection {
	if rng.Intn(3) == 0 {
		return aggregate.Selection{}
	}
	return aggregate.Selection{Valid: true, Val: rng.NormFloat64() * 100, Key: rng.Int63n(1e6)}
}

func randState(rng *rand.Rand) aggregate.State {
	s := aggregate.State{
		Fn:       aggregate.Func(rng.Intn(5)),
		NoPred:   rng.Intn(2) == 0,
		TableLen: rng.Intn(1000),
		MinLo:    randSelection(rng), MinHiPlus: randSelection(rng),
		MaxHi: randSelection(rng), MaxLoPlus: randSelection(rng),
		SumPresent:     rng.Uint64(),
		Plus:           rng.Intn(500),
		Maybe:          rng.Intn(500),
		AvgSeedPresent: rng.Uint64(),
		AvgK:           rng.Intn(100),
		AvgAny:         rng.Intn(2) == 0,
	}
	for i := range s.SumLo {
		s.SumLo[i] = rng.NormFloat64() * 10
		s.SumHi[i] = s.SumLo[i] + rng.Float64()
		s.AvgSeedLo[i] = rng.NormFloat64()
		s.AvgSeedHi[i] = s.AvgSeedLo[i] + rng.Float64()
	}
	for i, n := 0, rng.Intn(5); i < n; i++ {
		lo := rng.NormFloat64() * 50
		s.AvgMaybes = append(s.AvgMaybes, interval.Interval{Lo: lo, Hi: lo + rng.Float64()*3})
	}
	return s
}

func TestWireStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		want := randState(rng)
		frame := AppendStateResp(nil, uint32(i), &want)
		id, got, remoteErr, err := DecodeStateResp(frame[4:])
		if err != nil || remoteErr != nil {
			t.Fatalf("decode: %v / %v", err, remoteErr)
		}
		if id != uint32(i) {
			t.Fatalf("id %d != %d", id, i)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("state round trip diverged:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestWireInputsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var want []aggregate.Input
	for i := 0; i < 64; i++ {
		want = append(want, aggregate.Input{
			Key:   rng.Int63n(1e6),
			Bound: interval.Interval{Lo: rng.NormFloat64(), Hi: rng.NormFloat64() + 5},
			Cost:  float64(1 + rng.Intn(10)),
			Class: predicate.Class(1 + rng.Intn(2)),
		})
	}
	frame := AppendInputsResp(nil, 7, want, 321)
	id, got, tableLen, remoteErr, err := DecodeInputsResp(frame[4:])
	if err != nil || remoteErr != nil || id != 7 || tableLen != 321 {
		t.Fatalf("decode: id=%d len=%d %v / %v", id, tableLen, err, remoteErr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("inputs round trip diverged")
	}
}

func TestWireRefreshRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	want := RefreshOutcome{Cut: true, Installed: []int64{3, 1, 4, 15}, State: randState(rng)}
	frame := AppendRefreshResp(nil, 9, &want)
	id, got, remoteErr, err := DecodeRefreshResp(frame[4:])
	if err != nil || remoteErr != nil || id != 9 {
		t.Fatalf("decode: %v / %v", err, remoteErr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("refresh round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestWireHelloRoundTrip(t *testing.T) {
	want := Hello{ID: "p1", Tables: []TableSchema{{
		Name: "links",
		Columns: []relation.Column{
			{Name: "latency", Kind: relation.Bounded},
			{Name: "from", Kind: relation.Exact},
		},
	}}}
	frame := AppendHelloResp(nil, 3, &want)
	id, got, remoteErr, err := DecodeHelloResp(frame[4:])
	if err != nil || remoteErr != nil || id != 3 {
		t.Fatalf("decode: %v / %v", err, remoteErr)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("hello round trip diverged:\n got %+v\nwant %+v", got, want)
	}
}

func TestWireRequestRoundTrips(t *testing.T) {
	id, dl, shape, err := decodeStateReq(AppendStateReq(nil, 5, 1234, "SELECT ...")[4:])
	if err != nil || id != 5 || dl != 1234 || shape != "SELECT ..." {
		t.Fatalf("state req: %d %d %q %v", id, dl, shape, err)
	}
	id, dl, shape, keys, err := decodeRefreshReq(AppendRefreshReq(nil, 6, 99, "Q", []int64{8, 2, 5})[4:])
	if err != nil || id != 6 || dl != 99 || shape != "Q" || !reflect.DeepEqual(keys, []int64{8, 2, 5}) {
		t.Fatalf("refresh req: %d %d %q %v %v", id, dl, shape, keys, err)
	}
	id, shape, within, err := decodeSubscribeReq(AppendSubscribeReq(nil, 8, "S", math.Inf(1))[4:])
	if err != nil || id != 8 || shape != "S" || !math.IsInf(within, 1) {
		t.Fatalf("subscribe req: %d %q %g %v", id, shape, within, err)
	}
}

func TestWireErrorReconstruction(t *testing.T) {
	cases := []struct {
		in   error
		want error
	}{
		{context.DeadlineExceeded, context.DeadlineExceeded},
		{context.Canceled, context.Canceled},
		{fmt.Errorf("refresh failed: %w", context.DeadlineExceeded), context.DeadlineExceeded},
		{errors.New("partition exploded"), nil},
	}
	for _, tc := range cases {
		frame := AppendErrResp(nil, frameStateResp, 1, tc.in)
		_, _, remoteErr, err := DecodeStateResp(frame[4:])
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if remoteErr == nil {
			t.Fatalf("no remote error for %v", tc.in)
		}
		if tc.want != nil && !errors.Is(remoteErr, tc.want) {
			t.Fatalf("%v did not reconstruct as %v (got %v)", tc.in, tc.want, remoteErr)
		}
		if tc.want == nil && (errors.Is(remoteErr, context.DeadlineExceeded) || errors.Is(remoteErr, context.Canceled)) {
			t.Fatalf("generic error gained a context identity: %v", remoteErr)
		}
		if remoteErr.Error() != tc.in.Error() {
			t.Fatalf("message %q != %q", remoteErr.Error(), tc.in.Error())
		}
	}
}

func TestWireTruncationRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	st := randState(rng)
	frame := AppendStateResp(nil, 1, &st)
	payload := frame[4:]
	for cut := 1; cut < len(payload); cut += 7 {
		if _, _, remoteErr, err := DecodeStateResp(payload[:len(payload)-cut]); err == nil && remoteErr == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	// Trailing garbage must be rejected too.
	if _, _, remoteErr, err := DecodeStateResp(append(append([]byte{}, payload...), 0)); err == nil && remoteErr == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestRingProperties(t *testing.T) {
	ids := []string{"pa", "pb", "pc", "pd"}
	r1, err := NewRing(ids)
	if err != nil {
		t.Fatal(err)
	}
	// Determinism and order-independence.
	r2, err := NewRing([]string{"pd", "pb", "pa", "pc"})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < relation.NumCanonicalBuckets; b++ {
		if r1.IDs()[r1.Owner(b)] != r2.IDs()[r2.Owner(b)] {
			t.Fatalf("bucket %d owner differs across id orderings", b)
		}
	}
	// Full coverage: every bucket owned, every key routed consistently.
	for key := int64(0); key < 1000; key++ {
		o := r1.OwnerOfKey(key)
		if o < 0 || o >= len(ids) {
			t.Fatalf("key %d routed to %d", key, o)
		}
		b := relation.CanonicalBucket(key)
		if r1.Owner(b) != o {
			t.Fatalf("key %d: bucket owner mismatch", key)
		}
	}
	// Buckets partition across nodes.
	seen := make(map[int]bool)
	for i := range ids {
		for _, b := range r1.Buckets(i) {
			if seen[b] {
				t.Fatalf("bucket %d owned twice", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != relation.NumCanonicalBuckets {
		t.Fatalf("only %d buckets owned", len(seen))
	}
	// A single node owns everything; too many nodes is rejected.
	solo, err := NewRing([]string{"only"})
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < relation.NumCanonicalBuckets; b++ {
		if solo.Owner(b) != 0 {
			t.Fatalf("solo ring bucket %d not owned by node 0", b)
		}
	}
	if _, err := NewRing(make([]string, relation.NumCanonicalBuckets+1)); err == nil {
		t.Fatal("oversized ring accepted")
	}
	if _, err := NewRing([]string{"dup", "dup"}); err == nil {
		t.Fatal("duplicate ids accepted")
	}
}
