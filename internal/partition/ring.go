package partition

import (
	"fmt"

	"trapp/internal/relation"
)

// Ring assigns the engine's canonical buckets to nodes by rendezvous
// (highest-random-weight) hashing: bucket b belongs to the node whose
// mixed score hash(node.ID) ⊕ b is highest. The assignment is a pure
// function of the node ID set, every coordinator computes the same
// ownership independently, and removing a node moves only that node's
// buckets — the consistent-hash property, without a token ring to
// maintain.
//
// Partitions own whole canonical buckets because bit-identical state
// merging requires bucket-disjoint partitions (see aggregate.State); the
// bucket count therefore also caps the cluster width at
// relation.NumCanonicalBuckets nodes.
type Ring struct {
	ids   []string
	owner [relation.NumCanonicalBuckets]int
}

// fibMix is the Fibonacci multiplier also used by the canonical bucket
// hash; here it mixes the node hash with the bucket index.
const fibMix = 0x9E3779B97F4A7C15

// fnv64 hashes a node ID (FNV-1a).
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// NewRing computes the bucket→node assignment for the given node IDs.
// IDs must be unique; between 1 and relation.NumCanonicalBuckets nodes
// are supported.
func NewRing(ids []string) (*Ring, error) {
	if len(ids) == 0 || len(ids) > relation.NumCanonicalBuckets {
		return nil, fmt.Errorf("partition: ring wants 1..%d nodes, got %d",
			relation.NumCanonicalBuckets, len(ids))
	}
	seen := make(map[string]bool, len(ids))
	hashes := make([]uint64, len(ids))
	for i, id := range ids {
		if seen[id] {
			return nil, fmt.Errorf("partition: duplicate node id %q", id)
		}
		seen[id] = true
		hashes[i] = fnv64(id)
	}
	r := &Ring{ids: append([]string(nil), ids...)}
	for b := 0; b < relation.NumCanonicalBuckets; b++ {
		best, bestScore := 0, uint64(0)
		for i, h := range hashes {
			score := (h ^ (uint64(b+1) * fibMix)) * fibMix
			// Ties break toward the lexicographically smaller ID so the
			// assignment stays a pure function of the ID set.
			if i == 0 || score > bestScore || (score == bestScore && r.ids[i] < r.ids[best]) {
				best, bestScore = i, score
			}
		}
		r.owner[b] = best
	}
	return r, nil
}

// N returns the node count.
func (r *Ring) N() int { return len(r.ids) }

// IDs returns the node IDs in ring order.
func (r *Ring) IDs() []string { return append([]string(nil), r.ids...) }

// Owner returns the index of the node owning a canonical bucket.
func (r *Ring) Owner(bucket int) int { return r.owner[bucket] }

// OwnerOfKey returns the index of the node owning a tuple key.
func (r *Ring) OwnerOfKey(key int64) int {
	return r.owner[relation.CanonicalBucket(key)]
}

// Buckets returns the canonical buckets owned by node i, ascending.
func (r *Ring) Buckets(i int) []int {
	var bs []int
	for b, o := range r.owner {
		if o == i {
			bs = append(bs, b)
		}
	}
	return bs
}
