// Package partition implements the partitioned serving tier: a relation
// sharded by consistent hash of the tuple key across N trappserver
// processes, answered through a thin scatter-gather coordinator that
// mirrors the single-node three-step execution (DESIGN.md §14).
//
// The split leans entirely on the engine's canonical-order invariants:
//
//   - Tuples hash into relation.NumCanonicalBuckets canonical buckets
//     (relation.CanonicalBucket), and a partition owns whole buckets
//     (Ring). Every order-sensitive accumulation in the engine is
//     bucket-structured, so a partition's local fold produces exactly
//     the per-bucket subtotals a single node would produce for those
//     buckets.
//   - Each partition folds its tuples into an aggregate.State — a
//     mergeable partial bounded answer. Merging bucket-disjoint states
//     (aggregate.MergeStates) replays the single-node combination
//     operation for operation, so the gathered answer is bit-identical
//     to one node holding all tuples.
//   - Refresh planning runs at the coordinator over the merged canonical
//     input snapshot (aggregate.MergeInputs + query.ChoosePlan); the
//     chosen keys scatter back to their owning partitions, and the paid
//     costs fold in plan order, reproducing single-node RefreshCost
//     bit-exactly.
//
// The cluster differential test (internal/experiment) runs a three-node
// loopback topology in lockstep with a single embedded system over the
// full mutation mix and asserts every interval, plan-cost total, and
// typed error bit-identical.
package partition

import (
	"context"
	"math"

	"trapp/internal/aggregate"
	"trapp/internal/query"
	"trapp/internal/relation"
)

// A Shape is the SQL text of a query with its precision constraint
// stripped — the wire format for query shapes. Query.String() round-trips
// through sql.Parse exactly (fuzz-verified), and String() omits the
// WITHIN clause when the constraint is +Inf, so a shape names
// (table, aggregate, column, predicate) without pinning a precision.
// Nodes parse shapes against their local catalog through a parse cache.
func shapeOf(q query.Query) string {
	q.Within = math.Inf(1)
	q.RelativeWithin = 0
	return q.String()
}

// TableSchema is one table a node serves, advertised in Hello.
type TableSchema struct {
	Name    string
	Columns []relation.Column
}

// Hello is a node's half of the topology exchange: its identity and the
// tables it serves. The coordinator requires all partitions to agree on
// the table set and schemas.
type Hello struct {
	ID     string
	Tables []TableSchema
}

// RefreshOutcome reports one partition's refresh fan-out: which of the
// requested keys actually reached the local table (dropped keys and
// replies that lost to newer pushes are absent), whether a context
// cutoff stopped the fan-out early (the installed keys beat it and are
// charged normally), and the partition's post-refresh fold state.
type RefreshOutcome struct {
	Installed []int64
	Cut       bool
	State     aggregate.State
}

// Update is one partition's standing-query notification: the partition's
// current fold state for the subscribed shape. The coordinator
// re-multiplexes per-partition updates into a merged global answer.
type Update struct {
	Seq   int64
	At    int64
	State aggregate.State
}

// Node is one partition of the serving tier. The embedded LocalNode and
// the framed-wire RemoteNode answer through the same interface, so the
// coordinator — and the differential tests — cannot tell process
// boundaries apart.
//
// All operations are idempotent (State/Inputs are reads; Refresh
// re-installs exact master values), so the coordinator may retry them
// on partition failure.
type Node interface {
	// ID returns the node's stable identity (the ring hashes it).
	ID() string
	// Hello returns the node's topology advertisement.
	Hello(ctx context.Context) (Hello, error)
	// State synchronizes the partition's cache bounds and folds the
	// shape over its local tuples.
	State(ctx context.Context, shape string) (aggregate.State, error)
	// Inputs returns the partition's classified canonical input snapshot
	// for refresh planning, plus its local cardinality at scan time.
	Inputs(ctx context.Context, shape string) ([]aggregate.Input, int, error)
	// Refresh installs exact master values for the given locally-owned
	// keys and reports what actually happened (see RefreshOutcome).
	Refresh(ctx context.Context, shape string, keys []int64) (RefreshOutcome, error)
	// Subscribe opens a standing-query stream for the shape: the node
	// pushes an Update whenever its local answer moves. within is the
	// partition's pro-rata share of the subscription's precision
	// constraint — a repair heuristic only; the coordinator recomputes
	// Met against the full constraint. The channel closes when ctx is
	// canceled or the node tears the stream down.
	Subscribe(ctx context.Context, shape string, within float64) (<-chan Update, error)
	// Close releases the node's resources (connections for remote
	// nodes; a no-op for embedded ones).
	Close() error
}
