package trapp

import (
	"fmt"
	"math"

	"trapp/internal/continuous"
	"trapp/internal/interval"
	"trapp/internal/query"
)

// Monitor is the poll-style adapter over the push-based continuous-query
// engine, kept for clients that want the paper's §8.1 standing-query
// model with a synchronous API: each Poll settles the engine and reports
// the maintained answer plus the refresh cost the engine paid on the
// query's behalf since the previous poll. The engine maintains the
// answer incrementally between polls (reacting to pushes and clock
// ticks), so a poll whose constraint is still satisfied is free; only
// when growth or updates violated the constraint has the shared
// scheduler paid for refreshes — deduped with every other subscription's
// demand.
//
// New code should use System.Subscribe directly and receive push
// notifications; Subscribe also supports GROUP BY standing queries,
// which have no scalar poll representation and are therefore rejected
// here.
type Monitor struct {
	sys *System
	sub *continuous.Subscription

	// Answer is the latest bounded answer.
	Answer interval.Interval
	// Polls counts Poll calls; FreePolls counts those for which the
	// engine paid no refresh cost since the previous poll.
	Polls, FreePolls int
	// TotalCost accumulates the refresh cost attributed to this standing
	// query across polls. A refresh shared with other subscriptions is
	// attributed to each, so the sum over monitors can exceed the
	// network's paid total — the saving of shared scheduling.
	TotalCost float64

	lastCost      float64
	lastRefreshed int64
}

// NewMonitor registers a scalar standing query. The query must have a
// finite precision constraint — an unconstrained continuous query never
// needs a monitor — and must target a mounted table. GROUP BY standing
// queries are supported by System.Subscribe, whose per-group answers
// cannot be flattened into a Poll result.
//
// Unlike the pre-engine Monitor, which was inert between polls, a
// monitor now holds a live engine subscription: its constraint is
// maintained (and refreshes are paid for) even while nobody polls.
// Call Close on monitors that are no longer needed, or the engine will
// keep their constraints repaired forever.
func (s *System) NewMonitor(q query.Query) (*Monitor, error) {
	if math.IsInf(q.Within, 1) && q.RelativeWithin == 0 {
		return nil, fmt.Errorf("trapp: continuous query needs a finite precision constraint")
	}
	if len(q.GroupBy) > 0 {
		return nil, fmt.Errorf("trapp: GROUP BY standing queries are push-only; use System.Subscribe")
	}
	if s.MountedCache(q.Table) == nil {
		return nil, fmt.Errorf("trapp: table %q not mounted", q.Table)
	}
	sub, err := s.Subscribe(q)
	if err != nil {
		return nil, err
	}
	// The subscription may have joined a pre-existing shared view whose
	// attributed counters already carry other subscribers' history;
	// polls must report only what was paid after this monitor existed.
	st := sub.Stats()
	return &Monitor{
		sys:           s,
		sub:           sub,
		lastCost:      st.AttributedCost,
		lastRefreshed: st.AttributedRefreshes,
	}, nil
}

// Poll settles the engine and reports the maintained standing answer.
// Result.RefreshCost and Result.Refreshed carry the refresh traffic the
// engine attributed to this query since the previous poll (zero for the
// common free poll, where cached bounds still satisfy the constraint).
func (m *Monitor) Poll() (query.Result, error) {
	m.Polls++
	m.sys.Settle()
	st := m.sub.Stats()
	paid := st.AttributedCost - m.lastCost
	refreshed := st.AttributedRefreshes - m.lastRefreshed
	m.lastCost, m.lastRefreshed = st.AttributedCost, st.AttributedRefreshes
	if paid == 0 {
		m.FreePolls++
	}
	m.TotalCost += paid
	m.Answer = st.Answer
	return query.Result{
		Answer:      st.Answer,
		Initial:     st.Answer,
		Refreshed:   int(refreshed),
		RefreshCost: paid,
		Met:         st.Met,
	}, nil
}

// Close unregisters the standing query from the engine.
func (m *Monitor) Close() { m.sub.Close() }
