package trapp

import (
	"fmt"
	"math"

	"trapp/internal/interval"
	"trapp/internal/query"
)

// Monitor is a continuous (standing) bounded query, the execution model
// behind the paper's section 8.1 visualization discussion: a precision
// constraint is "formulated in the visual domain and upheld by TRAPP" as
// the underlying data evolves. Each Poll re-establishes the constraint as
// cheaply as possible: if the current cached bounds still satisfy it —
// the common case, since value-initiated refreshes keep bounds honest —
// the poll is free; only when time growth or updates have widened the
// answer beyond R does the monitor pay for query-initiated refreshes.
type Monitor struct {
	sys *System
	q   query.Query

	// Answer is the latest bounded answer.
	Answer interval.Interval
	// Polls counts Poll calls; FreePolls counts those answered from cache
	// without any refresh.
	Polls, FreePolls int
	// TotalCost accumulates the refresh cost paid across polls.
	TotalCost float64
}

// NewMonitor registers a standing query. The query must have a finite
// precision constraint — an unconstrained continuous query never needs a
// monitor — and must target a mounted table.
func (s *System) NewMonitor(q query.Query) (*Monitor, error) {
	if math.IsInf(q.Within, 1) && q.RelativeWithin == 0 {
		return nil, fmt.Errorf("trapp: continuous query needs a finite precision constraint")
	}
	if len(q.GroupBy) > 0 {
		return nil, fmt.Errorf("trapp: continuous GROUP BY queries are not supported")
	}
	if s.MountedCache(q.Table) == nil {
		return nil, fmt.Errorf("trapp: table %q not mounted", q.Table)
	}
	return &Monitor{sys: s, q: q}, nil
}

// Poll refreshes the standing answer. It first checks whether the cached
// bounds alone still satisfy the constraint (free); otherwise it runs the
// full three-step execution and pays for the necessary refreshes.
func (m *Monitor) Poll() (query.Result, error) {
	m.Polls++
	free, err := m.sys.ImpreciseMode(m.q)
	if err != nil {
		return free, err
	}
	within := m.q.Within
	if m.q.RelativeWithin > 0 {
		within = query.RelativeR(free.Answer, m.q.RelativeWithin)
	}
	if free.Answer.IsEmpty() || free.Answer.Width() <= within+1e-9 {
		m.FreePolls++
		m.Answer = free.Answer
		free.Met = true
		return free, nil
	}
	res, err := m.sys.Execute(m.q)
	if err != nil {
		return res, err
	}
	m.Answer = res.Answer
	m.TotalCost += res.RefreshCost
	return res, nil
}
