package trapp

import (
	"math"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/workload"
)

func TestSystemSetup(t *testing.T) {
	sys := NewSystem(refresh.Options{})
	if _, err := sys.AddSource("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddSource("a", nil); err == nil {
		t.Error("duplicate source accepted")
	}
	if sys.Source("a") == nil || sys.Source("b") != nil {
		t.Error("Source lookup wrong")
	}
	if _, err := sys.AddCache("c", workload.LinkSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddCache("c", workload.LinkSchema()); err == nil {
		t.Error("duplicate cache accepted")
	}
	if sys.Cache("c") == nil {
		t.Error("Cache lookup wrong")
	}
	if err := sys.Mount("t", sys.Cache("c")); err != nil {
		t.Fatal(err)
	}
	if err := sys.Mount("t", sys.Cache("c")); err == nil {
		t.Error("duplicate mount accepted")
	}
	if _, err := sys.Execute(query.NewQuery("missing", aggregate.Sum, "x")); err == nil {
		t.Error("unmounted table accepted")
	}
}

// TestEndToEndLifecycle drives the full architecture: subscribe, let
// bounds grow with the clock, update master values (value-initiated
// refreshes), and run constrained queries (query-initiated refreshes).
func TestEndToEndLifecycle(t *testing.T) {
	sys := NewSystem(refresh.Options{})
	src, _ := sys.AddSource("nodes", nil)
	c, _ := sys.AddCache("monitor", workload.LinkSchema())
	for _, row := range workload.Figure2() {
		if err := src.AddObject(row.Key,
			[]float64{row.LatencyV, row.BandwidthV, row.TrafficV},
			row.Cost, boundfn.NewAdaptiveWidth(1)); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Mount("links", c); err != nil {
		t.Fatal(err)
	}

	// Immediately after subscribing, bounds are points: imprecise mode is
	// already exact.
	q := query.NewQuery("links", aggregate.Sum, workload.ColLatency)
	res, err := sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Width() != 0 {
		t.Errorf("fresh bounds not exact: %v", res.Answer)
	}
	wantSum := 3.0 + 7 + 13 + 9 + 11 + 5
	if !res.Answer.Contains(wantSum) {
		t.Errorf("SUM = %v, want %g", res.Answer, wantSum)
	}

	// Let time pass: bounds grow, imprecise answers widen.
	sys.Clock.Advance(100)
	res, err = sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Width() == 0 {
		t.Error("bounds did not grow with time")
	}

	// A constrained query forces query-initiated refreshes and meets R.
	q.Within = 1
	res, err = sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("constraint not met: %v", res.Answer)
	}
	if res.Refreshed == 0 {
		t.Error("no refreshes for tight constraint")
	}
	if sys.Stats().Messages[2] == 0 && sys.Stats().QueryRefreshCost == 0 {
		t.Error("network recorded no query-refresh traffic")
	}

	// Master update that escapes its (currently tight) bound pushes a
	// value-initiated refresh into the cache.
	before := sys.Stats().Messages[0] // netsim.ValueRefresh == 0
	if err := src.SetValue(1, []float64{50, 61, 98}); err != nil {
		t.Fatal(err)
	}
	after := sys.Stats().Messages[0]
	if after != before+1 {
		t.Errorf("value refreshes %d → %d, want +1", before, after)
	}
	// The cache sees the new value without paying a query refresh.
	res, err = sys.ImpreciseMode(query.NewQuery("links", aggregate.Max, workload.ColLatency))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Contains(50) {
		t.Errorf("pushed value not visible: %v", res.Answer)
	}
}

func TestPreciseAndImpreciseModes(t *testing.T) {
	sys := NewSystem(refresh.Options{})
	src, _ := sys.AddSource("s", nil)
	c, _ := sys.AddCache("c", workload.LinkSchema())
	for _, row := range workload.Figure2() {
		if err := src.AddObject(row.Key, []float64{row.LatencyV, row.BandwidthV, row.TrafficV}, row.Cost, nil); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Mount("links", c); err != nil {
		t.Fatal(err)
	}
	sys.Clock.Advance(10000) // bounds grow wide

	q := query.NewQuery("links", aggregate.Min, workload.ColBandwidth)
	imp, err := sys.ImpreciseMode(q)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Refreshed != 0 {
		t.Error("imprecise mode refreshed")
	}
	prec, err := sys.PreciseMode(q)
	if err != nil {
		t.Fatal(err)
	}
	if prec.Answer.Width() > 1e-9 {
		t.Errorf("precise mode width = %g", prec.Answer.Width())
	}
	if prec.Answer.Lo != 45 {
		t.Errorf("precise MIN bandwidth = %v, want 45", prec.Answer)
	}
	if !imp.Answer.ContainsInterval(prec.Answer) {
		t.Errorf("imprecise %v does not contain precise %v", imp.Answer, prec.Answer)
	}
}

func TestPredicateQueryThroughSystem(t *testing.T) {
	sys := NewSystem(refresh.Options{})
	src, _ := sys.AddSource("s", nil)
	c, _ := sys.AddCache("c", workload.LinkSchema())
	for _, row := range workload.Figure2() {
		if err := src.AddObject(row.Key, []float64{row.LatencyV, row.BandwidthV, row.TrafficV}, row.Cost, boundfn.StaticWidth(3)); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Mount("links", c); err != nil {
		t.Fatal(err)
	}
	sys.Clock.Advance(25) // ±15 bounds

	s := c.Schema()
	q := query.NewQuery("links", aggregate.Count, workload.ColLatency)
	q.Where = predicate.NewCmp(
		predicate.Column(s.MustLookup(workload.ColTraffic), "traffic"),
		predicate.Gt, predicate.Const(100))
	q.Within = 0
	res, err := sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.Answer.Width() != 0 {
		t.Fatalf("COUNT not exact: %v", res.Answer)
	}
	// True traffic values {98,116,105,127,95,103} → 4 links above 100.
	if res.Answer.Lo != 4 {
		t.Errorf("COUNT = %v, want 4", res.Answer)
	}
}

func TestStatsAccumulateAcrossQueries(t *testing.T) {
	sys := NewSystem(refresh.Options{})
	src, _ := sys.AddSource("s", nil)
	c, _ := sys.AddCache("c", workload.LinkSchema())
	for _, row := range workload.Figure2() {
		if err := src.AddObject(row.Key, []float64{row.LatencyV, row.BandwidthV, row.TrafficV}, row.Cost, nil); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Mount("links", c); err != nil {
		t.Fatal(err)
	}
	sys.Clock.Advance(10000)
	q := query.NewQuery("links", aggregate.Sum, workload.ColTraffic)
	q.Within = 0
	if _, err := sys.Execute(q); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	// Full refresh pays the sum of all costs: 3+6+6+8+4+2 = 29.
	if math.Abs(st.QueryRefreshCost-29) > 1e-9 {
		t.Errorf("query refresh cost = %g, want 29", st.QueryRefreshCost)
	}
}
