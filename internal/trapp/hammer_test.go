package trapp

// Plan-cache race hammer: concurrent queries (which populate and serve
// from the shape-keyed plan cache) against concurrent mutations (source
// pushes and clock ticks) on one shared system. The inline assertions
// are deliberately weak — no errors and no torn intervals — because the
// real check is the race detector: CI runs this under -race, where any
// unsynchronized access between the cache's readers and the mutators
// fails the build.

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPlanCacheHammer(t *testing.T) {
	d := newDiffSystem(t, 0) // default sharding
	const (
		queriers = 4
		mutators = 2
		rounds   = 300
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	for g := 0; g < queriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				// A tiny seed space keeps the shape population small, so
				// queriers collide on cache entries constantly.
				rng := rand.New(rand.NewSource(int64(g*3+i%9) + 1))
				q := diffQuery(rng)
				q.GroupBy = nil
				res, err := d.sys.ExecuteCtx(context.Background(), q)
				if err != nil {
					t.Errorf("querier %d round %d (%v): %v", g, i, q, err)
					return
				}
				if !res.Answer.IsEmpty() && res.Answer.Lo > res.Answer.Hi {
					t.Errorf("querier %d round %d: torn interval %+v", g, i, res.Answer)
					return
				}
			}
		}(g)
	}
	for g := 0; g < mutators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds && !stop.Load(); i++ {
				key := int64((g*37+i)%diffObjects) + int64(g%diffSources)*1000
				v := 100 + float64(key%97) + float64(i%25) - 12
				src := d.srcs[int(key/1000)%diffSources]
				if err := src.SetValue(key, []float64{v}); err != nil {
					t.Errorf("mutator %d round %d: %v", g, i, err)
					return
				}
				if i%50 == 49 {
					d.sys.Clock.Advance(1)
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)

	m := d.sys.Metrics()
	hits := m.PlanHits.Load()
	if hits == 0 {
		t.Error("hammer never hit the plan cache; nothing raced")
	}
	t.Logf("plan cache under contention: %d hits, %d misses, %d invalidations",
		hits, m.PlanMisses.Load(), m.PlanInvalidations.Load())
}
