package trapp

import (
	"math"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/workload"
)

// monitorSystem builds a live Figure 2 system with √T bounds.
func monitorSystem(t *testing.T) *System {
	t.Helper()
	sys := NewSystem(refresh.Options{})
	src, _ := sys.AddSource("nodes", nil)
	c, _ := sys.AddCache("monitor", workload.LinkSchema())
	for _, row := range workload.Figure2() {
		if err := src.AddObject(row.Key,
			[]float64{row.LatencyV, row.BandwidthV, row.TrafficV},
			row.Cost, boundfn.StaticWidth(1)); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Mount("links", c); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestMonitorValidation(t *testing.T) {
	sys := monitorSystem(t)
	q := query.NewQuery("links", aggregate.Sum, workload.ColLatency) // R = +Inf
	if _, err := sys.NewMonitor(q); err == nil {
		t.Error("unconstrained monitor accepted")
	}
	q.Within = 5
	q.GroupBy = []string{"from"}
	// GROUP BY standing queries have no scalar Poll representation; the
	// monitor redirects to the push API, which supports them.
	if _, err := sys.NewMonitor(q); err == nil {
		t.Error("GROUP BY monitor accepted")
	}
	sub, err := sys.Subscribe(q)
	if err != nil {
		t.Fatalf("GROUP BY subscription rejected: %v", err)
	}
	if cur, ok := sub.Current(); !ok || len(cur.Groups) == 0 {
		t.Errorf("GROUP BY subscription has no per-group answers: %+v", cur)
	}
	sub.Close()
	q.GroupBy = nil
	q.Table = "missing"
	if _, err := sys.NewMonitor(q); err == nil {
		t.Error("unmounted table accepted")
	}
}

func TestMonitorFreeWhileBoundsTight(t *testing.T) {
	sys := monitorSystem(t)
	q := query.NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 5
	m, err := sys.NewMonitor(q)
	if err != nil {
		t.Fatal(err)
	}
	// Immediately after subscription all bounds are points: polls are free.
	for i := 0; i < 3; i++ {
		res, err := m.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Met {
			t.Fatal("poll not met")
		}
	}
	if m.FreePolls != 3 || m.TotalCost != 0 {
		t.Errorf("free polls = %d cost = %g, want 3 free at no cost", m.FreePolls, m.TotalCost)
	}
}

func TestMonitorPaysWhenBoundsGrow(t *testing.T) {
	sys := monitorSystem(t)
	q := query.NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 2
	m, err := sys.NewMonitor(q)
	if err != nil {
		t.Fatal(err)
	}
	sys.Clock.Advance(400) // width 1, √400 = 20 → each bound ±20
	res, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("grown bounds not re-tightened: %v", res.Answer)
	}
	if m.TotalCost == 0 || res.Refreshed == 0 {
		t.Error("poll after growth paid nothing")
	}
	if m.Answer.Width() > 2+1e-9 {
		t.Errorf("monitored answer width %g > 2", m.Answer.Width())
	}
	// The immediately following poll is free again.
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	if m.FreePolls != 1 {
		t.Errorf("second poll not free (FreePolls=%d)", m.FreePolls)
	}
}

func TestMonitorTracksDriftingValues(t *testing.T) {
	sys := monitorSystem(t)
	src := sys.Source("nodes")
	q := query.NewQuery("links", aggregate.Max, workload.ColTraffic)
	q.Within = 5
	m, err := sys.NewMonitor(q)
	if err != nil {
		t.Fatal(err)
	}
	traffic := map[int64]float64{}
	for _, row := range workload.Figure2() {
		traffic[row.Key] = row.TrafficV
	}
	for round := 0; round < 15; round++ {
		sys.Clock.Advance(3)
		for _, row := range workload.Figure2() {
			traffic[row.Key] += float64(round%3) - 1 // drift −1..+1
			if err := src.SetValue(row.Key, []float64{row.LatencyV, row.BandwidthV, traffic[row.Key]}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if !res.Met {
			t.Fatalf("round %d: not met", round)
		}
		// The monitored answer must contain the true max.
		trueMax := math.Inf(-1)
		for _, v := range traffic {
			trueMax = math.Max(trueMax, v)
		}
		if !m.Answer.Expand(1e-9).Contains(trueMax) {
			t.Fatalf("round %d: answer %v excludes true max %g", round, m.Answer, trueMax)
		}
	}
	if m.Polls != 15 {
		t.Errorf("polls = %d", m.Polls)
	}
}

func TestMonitorRelativeConstraint(t *testing.T) {
	sys := monitorSystem(t)
	q := query.NewQuery("links", aggregate.Sum, workload.ColTraffic)
	q.RelativeWithin = 0.05
	m, err := sys.NewMonitor(q)
	if err != nil {
		t.Fatal(err)
	}
	sys.Clock.Advance(10000)
	res, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("relative monitor not met: %v", res.Answer)
	}
	trueSum := 98.0 + 116 + 105 + 127 + 95 + 103
	if m.Answer.Width() > 2*trueSum*0.05+1e-6 {
		t.Errorf("width %g exceeds relative guarantee", m.Answer.Width())
	}
}

func TestMonitorSharedViewCostAttribution(t *testing.T) {
	sys := monitorSystem(t)
	q := query.NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 2
	a, err := sys.NewMonitor(q)
	if err != nil {
		t.Fatal(err)
	}
	sys.Clock.Advance(400)
	if _, err := a.Poll(); err != nil {
		t.Fatal(err)
	}
	if a.TotalCost == 0 {
		t.Fatal("first monitor paid nothing; test is vacuous")
	}
	// A second monitor with the same query shape shares the engine view;
	// it must not inherit the view's pre-existing attributed cost.
	b, err := sys.NewMonitor(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if res.RefreshCost != 0 || res.Refreshed != 0 || b.TotalCost != 0 || b.FreePolls != 1 {
		t.Errorf("second monitor inherited history: res=%+v TotalCost=%g FreePolls=%d",
			res, b.TotalCost, b.FreePolls)
	}
}
