// Package trapp assembles the full TRAPP replication system of the paper's
// Figure 3: data sources with refresh monitors, data caches storing
// time-varying bounds, a shared logical clock, a traffic-accounting
// network, and a query processor executing bounded aggregation queries
// with precision constraints. It is the package examples and experiments
// program against; the root module package re-exports its API.
//
// The System is a concurrent query engine: any number of goroutines may
// Execute queries against it while sources apply updates and other
// goroutines add or mount components. Cached relations are sharded
// stores with per-shard locks: aggregation scans share shard read locks
// (a push blocks only scans of the shard owning the pushed key) and the
// refresh phase fans out to sources as parallel batched requests.
// DESIGN.md documents the shard locking protocol.
package trapp

import (
	"fmt"
	"sync"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/cache"
	"trapp/internal/continuous"
	"trapp/internal/netsim"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/source"
)

// System is a complete simulated TRAPP deployment. All methods are safe
// for concurrent use.
type System struct {
	// Clock is the shared logical clock; advance it to let bounds grow.
	Clock *netsim.Clock
	// Net records refresh traffic and cost.
	Net *netsim.Network

	mu      sync.RWMutex
	sources map[string]*source.Source
	caches  map[string]*cache.Cache
	tables  map[string]*cache.Cache // query table name → backing cache
	proc    *query.Processor
	engine  *continuous.Engine
}

// NewSystem creates an empty system with the given refresh options.
func NewSystem(opts refresh.Options) *System {
	clock := netsim.NewClock()
	return &System{
		Clock:   clock,
		Net:     netsim.NewNetwork(),
		sources: make(map[string]*source.Source),
		caches:  make(map[string]*cache.Cache),
		tables:  make(map[string]*cache.Cache),
		proc:    query.NewProcessor(opts),
		engine:  continuous.NewEngine(clock, continuous.Config{Options: opts}),
	}
}

// AddSource creates a data source. shape selects the transmitted bound
// shape (nil means the √T default).
func (s *System) AddSource(id string, shape boundfn.Shape) (*source.Source, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sources[id]; dup {
		return nil, fmt.Errorf("trapp: duplicate source %q", id)
	}
	src := source.New(id, s.Clock, s.Net, shape)
	s.sources[id] = src
	return src, nil
}

// Source returns a source by id, or nil.
func (s *System) Source(id string) *source.Source {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sources[id]
}

// AddCache creates a data cache with the given table schema and the
// default shard count.
func (s *System) AddCache(id string, schema *relation.Schema) (*cache.Cache, error) {
	return s.AddCacheSharded(id, schema, 0)
}

// AddCacheSharded is AddCache with an explicit store shard count
// (rounded up to a power of two; ≤ 0 selects the default). One shard
// yields the flat single-lock layout, used as the reference in
// differential tests.
func (s *System) AddCacheSharded(id string, schema *relation.Schema, nshards int) (*cache.Cache, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.caches[id]; dup {
		return nil, fmt.Errorf("trapp: duplicate cache %q", id)
	}
	c := cache.NewSharded(id, s.Clock, schema, nshards)
	s.caches[id] = c
	return c, nil
}

// Cache returns a cache by id, or nil.
func (s *System) Cache(id string) *cache.Cache {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.caches[id]
}

// MountedCache returns the cache backing a mounted table name, or nil.
func (s *System) MountedCache(tableName string) *cache.Cache {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[tableName]
}

// Mount exposes a cache's sharded table to the query processor under the
// given table name, with the cache itself serving query-initiated
// refreshes. The processor shares the cache's per-shard locks, so source
// pushes and query scans coordinate shard by shard: a push blocks only
// scans of the shard owning the pushed key.
func (s *System) Mount(tableName string, c *cache.Cache) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[tableName]; dup {
		return fmt.Errorf("trapp: table %q already mounted", tableName)
	}
	s.tables[tableName] = c
	s.proc.RegisterStore(tableName, c.Store(), c)
	s.engine.AddTable(tableName, c)
	return nil
}

// Subscribe registers a push-based standing query with the continuous
// engine: the bounded answer is maintained incrementally as sources
// push, queries refresh, and the clock advances, and notifications are
// delivered on the subscription's channel whenever the answer moves or
// the constraint's status changes. Violated constraints are repaired by
// the shared refresh scheduler, which dedupes refresh demand across all
// live subscriptions. GROUP BY queries maintain one answer per group.
func (s *System) Subscribe(q query.Query) (*continuous.Subscription, error) {
	return s.engine.Subscribe(q)
}

// Settle synchronously drains the continuous engine's pending events:
// after it returns, every subscription reflects the current cache state
// and violated constraints have been repaired. The engine's maintainer
// goroutine does the same work in the background; Settle exists for
// deterministic observation points (benchmarks, tests, Monitor.Poll).
func (s *System) Settle() { s.engine.Settle() }

// SubscriptionMetrics returns a snapshot of the continuous engine's
// counters (rounds, notifications, shared refresh traffic).
func (s *System) SubscriptionMetrics() continuous.Metrics { return s.engine.Metrics() }

// Close shuts down the continuous engine, closing all subscription
// channels. The request/response query path remains usable.
func (s *System) Close() { s.engine.Close() }

// Execute synchronizes the backing cache's bounds to the current time and
// runs the three-step bounded query execution.
//
// When the cache watches sources with delayed insert/delete propagation
// (section 8.3), a predicate-free COUNT whose constraint tolerates the
// cardinality slack is answered from the cache with the answer widened by
// ±slack — saving the propagation round — and every other query first
// flushes the queued events, since missing tuples would make the other
// aggregates' bounds unsound.
func (s *System) Execute(q query.Query) (query.Result, error) {
	c := s.MountedCache(q.Table)
	if c == nil {
		return query.Result{}, fmt.Errorf("trapp: table %q not mounted", q.Table)
	}
	if slack := c.CardinalitySlack(); slack > 0 {
		countNoPred := q.Agg == aggregate.Count && predicate.IsTrivial(q.Where) &&
			len(q.GroupBy) == 0 && q.RelativeWithin == 0
		if countNoPred && q.Within >= 2*float64(slack) {
			c.Sync()
			res, err := s.proc.Execute(query.Query{
				Table: q.Table, Agg: q.Agg, Column: q.Column,
				Within: q.Within - 2*float64(slack), Where: q.Where,
			})
			if err != nil {
				return res, err
			}
			res.Answer = res.Answer.Expand(float64(slack))
			if res.Answer.Lo < 0 {
				res.Answer.Lo = 0 // cardinality is nonnegative
			}
			res.Met = res.Answer.Width() <= q.Within+1e-9
			return res, nil
		}
		c.FlushWatched()
	}
	c.Sync()
	return s.proc.Execute(q)
}

// PreciseMode runs the query at R = 0 (the fresh-data extreme of
// Figure 1(a)).
func (s *System) PreciseMode(q query.Query) (query.Result, error) {
	q.Within = 0
	return s.Execute(q)
}

// ImpreciseMode runs the query over cached bounds only (the stale-data
// extreme of Figure 1(a)).
func (s *System) ImpreciseMode(q query.Query) (query.Result, error) {
	c := s.MountedCache(q.Table)
	if c == nil {
		return query.Result{}, fmt.Errorf("trapp: table %q not mounted", q.Table)
	}
	c.Sync()
	return s.proc.ImpreciseMode(q)
}

// Stats returns a snapshot of network traffic counters.
func (s *System) Stats() netsim.Stats { return s.Net.Stats() }
