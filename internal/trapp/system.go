// Package trapp assembles the full TRAPP replication system of the paper's
// Figure 3: data sources with refresh monitors, data caches storing
// time-varying bounds, a shared logical clock, a traffic-accounting
// network, and a query processor executing bounded aggregation queries
// with precision constraints. It is the package examples and experiments
// program against; the root module package re-exports its API.
//
// The System is a concurrent query engine: any number of goroutines may
// Execute queries against it while sources apply updates and other
// goroutines add or mount components. Cached relations are sharded
// stores with per-shard locks: aggregation scans share shard read locks
// (a push blocks only scans of the shard owning the pushed key) and the
// refresh phase fans out to sources as parallel batched requests.
// DESIGN.md documents the shard locking protocol.
package trapp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/cache"
	"trapp/internal/continuous"
	"trapp/internal/netsim"
	"trapp/internal/obs"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/source"
	"trapp/internal/sql"
)

// System is a complete simulated TRAPP deployment. All methods are safe
// for concurrent use.
type System struct {
	// Clock is the shared logical clock; advance it to let bounds grow.
	Clock *netsim.Clock
	// Net records refresh traffic and cost.
	Net *netsim.Network

	closed atomic.Bool

	mu      sync.RWMutex
	sources map[string]*source.Source
	caches  map[string]*cache.Cache
	tables  map[string]*cache.Cache // query table name → backing cache
	proc    *query.Processor
	engine  *continuous.Engine
	// recoveries records what each durable cache reconstructed at open
	// (see AddDurableCache); nil until the first durable cache is added.
	recoveries map[string]cache.Recovery
}

// NewSystem creates an empty system with the given refresh options.
func NewSystem(opts refresh.Options) *System {
	clock := netsim.NewClock()
	proc := query.NewProcessor(opts)
	return &System{
		Clock:   clock,
		Net:     netsim.NewNetwork(),
		sources: make(map[string]*source.Source),
		caches:  make(map[string]*cache.Cache),
		tables:  make(map[string]*cache.Cache),
		proc:    proc,
		// The continuous engine records its repair/maintenance latency
		// into the same histogram set as the request path.
		engine: continuous.NewEngine(clock, continuous.Config{Options: opts, Metrics: proc.Metrics()}),
	}
}

// Metrics returns the engine-wide observability histogram set: per-phase
// request latency, refresh batch sizes, the paper's precision–cost
// telemetry, and continuous-engine repair/maintenance latency. Always
// on; snapshot it with Metrics().Snapshot().
func (s *System) Metrics() *obs.EngineMetrics { return s.proc.Metrics() }

// Processor exposes the underlying query processor for introspection
// (the server reports its plan-cache occupancy) and for tests that
// toggle the plan cache.
func (s *System) Processor() *query.Processor { return s.proc }

// WidthTelemetry reports each source's adaptive-width controller state
// (current W spread, escape/shrink counts), keyed by source id.
func (s *System) WidthTelemetry() map[string]source.WidthTelemetry {
	s.mu.RLock()
	ids := make([]string, 0, len(s.sources))
	srcs := make([]*source.Source, 0, len(s.sources))
	for id, src := range s.sources {
		ids = append(ids, id)
		srcs = append(srcs, src)
	}
	s.mu.RUnlock()
	out := make(map[string]source.WidthTelemetry, len(ids))
	for i, src := range srcs {
		out[ids[i]] = src.WidthTelemetry()
	}
	return out
}

// AddSource creates a data source. shape selects the transmitted bound
// shape (nil means the √T default).
func (s *System) AddSource(id string, shape boundfn.Shape) (*source.Source, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sources[id]; dup {
		return nil, fmt.Errorf("trapp: duplicate source %q", id)
	}
	src := source.New(id, s.Clock, s.Net, shape)
	s.sources[id] = src
	return src, nil
}

// Source returns a source by id, or nil.
func (s *System) Source(id string) *source.Source {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sources[id]
}

// AddCache creates a data cache with the given table schema and the
// default shard count.
func (s *System) AddCache(id string, schema *relation.Schema) (*cache.Cache, error) {
	return s.AddCacheSharded(id, schema, 0)
}

// AddCacheSharded is AddCache with an explicit store shard count
// (rounded up to a power of two; ≤ 0 selects the default). One shard
// yields the flat single-lock layout, used as the reference in
// differential tests.
func (s *System) AddCacheSharded(id string, schema *relation.Schema, nshards int) (*cache.Cache, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.caches[id]; dup {
		return nil, fmt.Errorf("trapp: duplicate cache %q", id)
	}
	c := cache.NewSharded(id, s.Clock, schema, nshards)
	s.caches[id] = c
	return c, nil
}

// Cache returns a cache by id, or nil.
func (s *System) Cache(id string) *cache.Cache {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.caches[id]
}

// MountedCache returns the cache backing a mounted table name, or nil.
func (s *System) MountedCache(tableName string) *cache.Cache {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[tableName]
}

// Tables returns the mounted table names in sorted order — the node's
// half of the cluster Hello exchange, where a partition advertises what
// it serves so the coordinator can assemble its catalog.
func (s *System) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sysCatalog adapts mounted tables to the SQL parser's catalog.
type sysCatalog struct{ sys *System }

// SchemaOf resolves a mounted table's schema.
func (c sysCatalog) SchemaOf(table string) (*relation.Schema, bool) {
	cch := c.sys.MountedCache(table)
	if cch == nil {
		return nil, false
	}
	return cch.Schema(), true
}

// Catalog exposes the system's mounted tables to the SQL parser — the
// single name-resolution authority shared by the root ParseQuery
// helpers, the HTTP service layer and the remote bench's mirror, so
// the wire parser can never diverge from the embedded one.
func (s *System) Catalog() sql.Catalog { return sysCatalog{s} }

// Mount exposes a cache's sharded table to the query processor under the
// given table name, with the cache itself serving query-initiated
// refreshes. The processor shares the cache's per-shard locks, so source
// pushes and query scans coordinate shard by shard: a push blocks only
// scans of the shard owning the pushed key.
func (s *System) Mount(tableName string, c *cache.Cache) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[tableName]; dup {
		return fmt.Errorf("trapp: table %q already mounted", tableName)
	}
	s.tables[tableName] = c
	c.SetMetrics(s.proc.Metrics())
	s.proc.RegisterStore(tableName, c.Store(), c)
	s.engine.AddTable(tableName, c)
	return nil
}

// Subscribe registers a push-based standing query with the continuous
// engine: the bounded answer is maintained incrementally as sources
// push, queries refresh, and the clock advances, and notifications are
// delivered on the subscription's channel whenever the answer moves or
// the constraint's status changes. Violated constraints are repaired by
// the shared refresh scheduler, which dedupes refresh demand across all
// live subscriptions. GROUP BY queries maintain one answer per group.
// After Close it returns ErrClosed.
func (s *System) Subscribe(q query.Query) (*continuous.Subscription, error) {
	if s.closed.Load() {
		return nil, query.ErrClosed
	}
	return s.engine.Subscribe(q)
}

// SubscribeCtx is Subscribe bound to a context: the subscription is
// closed automatically — channel closed, standing constraint no longer
// repaired — when the context is canceled or its deadline expires.
func (s *System) SubscribeCtx(ctx context.Context, q query.Query) (*continuous.Subscription, error) {
	if s.closed.Load() {
		return nil, query.ErrClosed
	}
	return s.engine.SubscribeCtx(ctx, q)
}

// Settle synchronously drains the continuous engine's pending events:
// after it returns, every subscription reflects the current cache state
// and violated constraints have been repaired. The engine's maintainer
// goroutine does the same work in the background; Settle exists for
// deterministic observation points (benchmarks, tests, Monitor.Poll).
func (s *System) Settle() { s.engine.Settle() }

// SubscriptionMetrics returns a snapshot of the continuous engine's
// counters (rounds, notifications, shared refresh traffic).
func (s *System) SubscriptionMetrics() continuous.Metrics { return s.engine.Metrics() }

// Close shuts the system down: the continuous engine stops and closes
// all subscription channels, and every subsequent ExecuteCtx /
// ExecuteBatch / Subscribe call returns the typed ErrClosed instead of
// racing the engine's teardown. Executions already in flight complete
// normally. Idempotent.
func (s *System) Close() {
	s.closed.Store(true)
	s.engine.Close()
}

// ExecuteCtx synchronizes the backing cache's bounds to the current time
// and runs the three-step bounded query execution under the request
// context and options. The context (plus WithDeadline) is honored at
// every phase boundary — scan, plan, refresh fan-out — and a request cut
// off mid-refresh returns the best guaranteed interval achieved from the
// refreshes that beat the cutoff, with a typed ErrPrecisionUnmet when
// the constraint is still unmet. WithCostBudget switches the request to
// the cost-bounded dual (narrowest answer for ≤ B units of refresh
// cost); WithMode positions it on the precision-performance dial;
// WithSolver overrides the knapsack solver. After Close it returns
// ErrClosed.
//
// When the cache watches sources with delayed insert/delete propagation
// (section 8.3), a predicate-free COUNT whose constraint tolerates the
// cardinality slack is answered from the cache with the answer widened by
// ±slack — saving the propagation round — and every other bounded-mode
// query first flushes the queued events, since missing tuples would make
// the other aggregates' bounds unsound.
func (s *System) ExecuteCtx(ctx context.Context, q query.Query, opts ...query.ExecOption) (query.Result, error) {
	return s.executeConfig(ctx, q, query.BuildExecConfig(opts...))
}

// executeConfig is ExecuteCtx over a resolved option set.
func (s *System) executeConfig(ctx context.Context, q query.Query, cfg query.ExecConfig) (query.Result, error) {
	if s.closed.Load() {
		return query.Result{}, query.ErrClosed
	}
	c := s.MountedCache(q.Table)
	if c == nil {
		return query.Result{}, fmt.Errorf("trapp: %w: %q not mounted", query.ErrUnknownTable, q.Table)
	}
	// A traced request gets its trace created here so the cache bound
	// synchronization — work done before the processor runs — appears in
	// the same span tree as the execution phases.
	if cfg.Trace && cfg.TraceRoot == nil {
		cfg.TraceRoot = obs.NewTrace(q.String())
	}
	sync := func() {
		var sp *obs.Span
		if cfg.TraceRoot != nil {
			sp = cfg.TraceRoot.Root.StartSpan("sync")
		}
		c.Sync()
		sp.End()
	}
	if cfg.Mode == query.ModeImprecise {
		// The stale-data extreme never refreshes, so queued membership
		// events cannot make it pay a propagation round either.
		sync()
		return s.proc.ExecuteConfig(ctx, q, cfg)
	}
	if slack := c.CardinalitySlack(); slack > 0 {
		countNoPred := q.Agg == aggregate.Count && predicate.IsTrivial(q.Where) &&
			len(q.GroupBy) == 0 && q.RelativeWithin == 0 && cfg.Mode == query.ModeBounded && !cfg.HasBudget
		if countNoPred && q.Within >= 2*float64(slack) {
			sync()
			res, err := s.proc.ExecuteConfig(ctx, query.Query{
				Table: q.Table, Agg: q.Agg, Column: q.Column,
				Within: q.Within - 2*float64(slack), Where: q.Where,
			}, cfg)
			return widenSlackCount(res, err, float64(slack), q.Within)
		}
		c.FlushWatched()
	}
	sync()
	return s.proc.ExecuteConfig(ctx, q, cfg)
}

// widenSlackCount post-processes a §8.3 slack-COUNT execution: the
// answer computed against the narrowed constraint is widened by ±slack
// (clamped at zero — cardinality is nonnegative) and Met is recomputed
// against the caller's original constraint. A deadline's typed
// ErrPrecisionUnmet is rebuilt so its Achieved/Spent match the widened
// result exactly — a widened interval that now meets the constraint
// clears the error, and a computed-but-unmet one stays sound (the
// widened interval contains the true count). Results without an answer
// (a request expired before the scan) pass through untouched.
func widenSlackCount(res query.Result, err error, slack, within float64) (query.Result, error) {
	var unmet query.ErrPrecisionUnmet
	isUnmet := errors.As(err, &unmet)
	if err != nil && !isUnmet {
		return res, err
	}
	res.Answer = res.Answer.Expand(slack)
	if res.Answer.Lo < 0 {
		res.Answer.Lo = 0
	}
	res.Met = res.Answer.Width() <= within+1e-9
	if !isUnmet {
		return res, nil
	}
	if res.Met {
		return res, nil
	}
	return res, query.ErrPrecisionUnmet{Achieved: res.Answer, Spent: res.RefreshCost, Cause: unmet.Cause}
}

// ExecuteBatch executes a set of scalar bounded queries as one batch:
// every query is planned first, the refresh plans are merged into one
// deduped batched refresh per table (fanned out per source in parallel —
// the same machinery the continuous scheduler's shared rounds use), and
// each query is answered from its own plan, bit-identical to standalone
// execution on an identical system. Tuples needed by several queries are
// paid for once. The returned slice aligns index-for-index with qs;
// per-query execution outcomes (ErrBudgetExhausted, a deadline's
// ErrPrecisionUnmet) are joined into the returned error. After Close it
// returns ErrClosed.
func (s *System) ExecuteBatch(ctx context.Context, qs []query.Query, opts ...query.ExecOption) ([]query.Result, error) {
	results, perQuery, err := s.ExecuteBatchDetailed(ctx, qs, opts...)
	if err != nil {
		return nil, err
	}
	return results, query.JoinBatchErrors(perQuery)
}

// ExecuteBatchDetailed is ExecuteBatch with per-query outcomes kept
// separate instead of joined: the second return aligns index-for-index
// with qs (nil for clean executions, ErrBudgetExhausted /
// ErrPrecisionUnmet otherwise), while the final error reports
// whole-batch failures (unknown tables, ErrClosed, validation). The
// service layer uses it to report each statement's outcome to the
// client it belongs to.
func (s *System) ExecuteBatchDetailed(ctx context.Context, qs []query.Query, opts ...query.ExecOption) ([]query.Result, []error, error) {
	if s.closed.Load() {
		return nil, nil, query.ErrClosed
	}
	cfg := query.BuildExecConfig(opts...)
	// Mirror the single-query special paths for delayed-propagation
	// caches (§8.3) so batch answers match standalone execution:
	// imprecise-mode batches never flush (they never refresh, so queued
	// membership events cannot make them unsound), and a predicate-free
	// COUNT whose constraint tolerates the slack is answered widened by
	// ±slack instead of forcing the propagation round — the flush runs
	// only when some query in the batch actually needs exact membership.
	type slackFix struct {
		idx    int
		slack  float64
		within float64 // the original constraint
	}
	var fixes []slackFix
	caches := make(map[*cache.Cache]bool) // cache → needs flush
	for i, q := range qs {
		c := s.MountedCache(q.Table)
		if c == nil {
			return nil, nil, fmt.Errorf("trapp: %w: %q not mounted", query.ErrUnknownTable, q.Table)
		}
		if _, seen := caches[c]; !seen {
			caches[c] = false
		}
		if cfg.Mode == query.ModeImprecise {
			continue
		}
		slack := c.CardinalitySlack()
		if slack == 0 {
			continue
		}
		countNoPred := q.Agg == aggregate.Count && predicate.IsTrivial(q.Where) &&
			len(q.GroupBy) == 0 && q.RelativeWithin == 0 && cfg.Mode == query.ModeBounded && !cfg.HasBudget
		if countNoPred && q.Within >= 2*float64(slack) {
			fixes = append(fixes, slackFix{idx: i, slack: float64(slack), within: q.Within})
		} else {
			caches[c] = true
		}
	}
	for c, flush := range caches {
		if flush {
			c.FlushWatched()
		}
		c.Sync()
	}
	if len(fixes) > 0 {
		qs = append([]query.Query(nil), qs...)
		for _, f := range fixes {
			qs[f.idx].Within -= 2 * f.slack
		}
	}
	results, perQuery, err := s.proc.ExecuteBatchDetailed(ctx, qs, cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, f := range fixes {
		if f.idx >= len(results) {
			break
		}
		results[f.idx], perQuery[f.idx] = widenSlackCount(results[f.idx], perQuery[f.idx], f.slack, f.within)
	}
	return results, perQuery, nil
}

// Execute runs the query with a background context and default options.
//
// Deprecated: use ExecuteCtx, which adds cancellation, deadlines, cost
// budgets, per-request solvers and typed errors.
func (s *System) Execute(q query.Query) (query.Result, error) {
	return s.ExecuteCtx(context.Background(), q)
}

// PreciseMode runs the query at R = 0 (the fresh-data extreme of
// Figure 1(a)).
//
// Deprecated: use ExecuteCtx with WithMode(ModePrecise).
func (s *System) PreciseMode(q query.Query) (query.Result, error) {
	return s.ExecuteCtx(context.Background(), q, query.WithMode(query.ModePrecise))
}

// ImpreciseMode runs the query over cached bounds only (the stale-data
// extreme of Figure 1(a)).
//
// Deprecated: use ExecuteCtx with WithMode(ModeImprecise).
func (s *System) ImpreciseMode(q query.Query) (query.Result, error) {
	return s.ExecuteCtx(context.Background(), q, query.WithMode(query.ModeImprecise))
}

// Stats returns a snapshot of network traffic counters.
func (s *System) Stats() netsim.Stats { return s.Net.Stats() }
