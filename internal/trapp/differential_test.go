package trapp

// Differential property test for the sharded storage layer: a randomized
// workload of inserts, deletes, source pushes, clock advances, refreshes
// and mixed queries is replayed, operation for operation, against two
// Systems that differ only in their cache's shard count — one shard (the
// flat reference layout: a single tuple slice, key index and lock,
// exactly the seed's store) versus the default sharded layout. Every
// bounded answer must be bit-identical between the two, and every
// CHOOSE_REFRESH plan must select the identical key set — the guarantee
// that sharding changes only the locking granularity, never the
// semantics.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/cache"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/source"
	"trapp/internal/workload"
)

// diffSystem is one side of the differential pair.
type diffSystem struct {
	sys  *System
	c    *cache.Cache
	srcs []*source.Source
}

const (
	diffSources = 4
	diffObjects = 24 // initial objects per source
)

func newDiffSystem(t *testing.T, nshards int) *diffSystem {
	t.Helper()
	sys := NewSystem(refresh.Options{})
	schema := relation.NewSchema(
		relation.Column{Name: "grp", Kind: relation.Exact},
		relation.Column{Name: "value", Kind: relation.Bounded},
	)
	c, err := sys.AddCacheSharded("monitor", schema, nshards)
	if err != nil {
		t.Fatal(err)
	}
	d := &diffSystem{sys: sys, c: c}
	for si := 0; si < diffSources; si++ {
		src, err := sys.AddSource(fmt.Sprintf("s%d", si), nil)
		if err != nil {
			t.Fatal(err)
		}
		d.srcs = append(d.srcs, src)
	}
	for si := 0; si < diffSources; si++ {
		for oi := 0; oi < diffObjects; oi++ {
			key := int64(si*1000 + oi)
			d.addObject(t, key, 100+float64(key%97))
		}
	}
	if err := sys.Mount("vals", c); err != nil {
		t.Fatal(err)
	}
	return d
}

// addObject registers and subscribes one object (deterministic cost and
// group derived from the key).
func (d *diffSystem) addObject(t *testing.T, key int64, value float64) {
	t.Helper()
	src := d.srcs[int(key/1000)%diffSources]
	cost := float64(1 + key%5)
	if err := src.AddObject(key, []float64{value}, cost, boundfn.NewAdaptiveWidth(4)); err != nil {
		t.Fatal(err)
	}
	if err := d.c.Subscribe(src, key, []float64{float64(key % 3)}); err != nil {
		t.Fatal(err)
	}
}

// diffQuery builds the i'th random query; the rng drives both systems
// identically.
func diffQuery(rng *rand.Rand) query.Query {
	aggs := []aggregate.Func{aggregate.Sum, aggregate.Avg, aggregate.Min, aggregate.Max, aggregate.Count}
	q := query.NewQuery("vals", aggs[rng.Intn(len(aggs))], "value")
	switch rng.Intn(4) {
	case 0: // imprecise: keep +Inf
	case 1:
		q.Within = 0 // precise
	default:
		q.Within = []float64{5, 25, 100, 400}[rng.Intn(4)]
	}
	if rng.Intn(3) == 0 {
		q.Where = predicate.NewCmp(predicate.Column(1, "value"), predicate.Gt, predicate.Const(100+rng.Float64()*60))
	}
	if rng.Intn(5) == 0 {
		q.GroupBy = []string{"grp"}
	}
	return q
}

func TestDifferentialShardedVsFlat(t *testing.T) {
	runDifferentialShardedVsFlat(t, 20260730, func(rng *rand.Rand, n int) int {
		return rng.Intn(n)
	})
}

// TestDifferentialShardedVsFlatZipf is the same differential replay with
// keys sampled Zipfian instead of uniformly — the -scale harness's skew,
// so pushes, deletes, and Oracle refreshes hammer a few hot keys (and
// therefore a few hot shards) while queries still cover the whole table.
// Divergence that only shows when one shard's state churns far faster
// than the others (dirty-key bookkeeping, plan ties broken by refresh
// recency) is invisible to the uniform test.
func TestDifferentialShardedVsFlatZipf(t *testing.T) {
	zipfs := map[int]*workload.Zipf{} // per live-set size, built on demand
	runDifferentialShardedVsFlat(t, 20260808, func(rng *rand.Rand, n int) int {
		z, ok := zipfs[n]
		if !ok {
			z = workload.MustZipf(n, 1.3)
			zipfs[n] = z
		}
		return z.Rank(rng)
	})
}

// runDifferentialShardedVsFlat replays the randomized workload against
// the flat and sharded layouts; pick selects the index of the key an
// operation targets from the live set (uniform or skewed).
func runDifferentialShardedVsFlat(t *testing.T, seed int64, pick func(*rand.Rand, int) int) {
	ref := newDiffSystem(t, 1)                     // flat reference
	sh := newDiffSystem(t, relation.DefaultShards) // sharded store
	if got := sh.c.Store().NumShards(); got <= 1 {
		t.Fatalf("sharded side has %d shards", got)
	}
	// The reference side runs every query cold while the sharded side
	// keeps its shape-keyed plan cache: every comparison below is then
	// also a cached-vs-cold bit-identity check across the full mutation
	// mix (pushes, ticks, deletes, inserts, refreshes).
	ref.sys.proc.SetPlanCache(false)
	rng := rand.New(rand.NewSource(seed))
	nextKey := int64(9000)
	live := sh.c.Keys()

	checkQuery := func(step int, q query.Query) {
		t.Helper()
		if len(q.GroupBy) > 0 {
			// GROUP BY: every group row must match key-for-key (the
			// processor is reached directly; System has no group-by
			// entry point beyond subscriptions).
			ref.c.Sync()
			sh.c.Sync()
			refRows, err1 := ref.sys.proc.ExecuteGroupBy(q)
			shRows, err2 := sh.sys.proc.ExecuteGroupBy(q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d %v: errors differ: %v vs %v", step, q, err1, err2)
			}
			if err1 != nil {
				return
			}
			if len(refRows) != len(shRows) {
				t.Fatalf("step %d %v: %d groups vs %d", step, q, len(refRows), len(shRows))
			}
			for i := range refRows {
				if fmt.Sprint(refRows[i].Key) != fmt.Sprint(shRows[i].Key) {
					t.Fatalf("step %d %v: group order differs: %v vs %v", step, q, refRows[i].Key, shRows[i].Key)
				}
				if !sameAnswer(refRows[i].Result, shRows[i].Result) {
					t.Fatalf("step %d %v group %v: answers differ:\nflat    %+v\nsharded %+v",
						step, q, refRows[i].Key, refRows[i].Result, shRows[i].Result)
				}
			}
			return
		}
		// Plan key sets must be identical for constrained scalar queries:
		// compute CHOOSE_REFRESH over both stores' current state.
		if !math.IsInf(q.Within, 1) {
			col := ref.c.Schema().MustLookup(q.Column)
			ref.c.Sync()
			sh.c.Sync()
			refPlan, err1 := refresh.ChooseStore(ref.c.Store(), col, q.Agg, q.Where, q.Within, refresh.Options{})
			shPlan, err2 := refresh.ChooseStore(sh.c.Store(), col, q.Agg, q.Where, q.Within, refresh.Options{})
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d %v: plan errors differ: %v vs %v", step, q, err1, err2)
			}
			if err1 == nil {
				if len(refPlan.Keys) != len(shPlan.Keys) {
					t.Fatalf("step %d %v: plan sizes differ: %v vs %v", step, q, refPlan.Keys, shPlan.Keys)
				}
				for i := range refPlan.Keys {
					if refPlan.Keys[i] != shPlan.Keys[i] {
						t.Fatalf("step %d %v: plan key sets differ:\nflat    %v\nsharded %v",
							step, q, refPlan.Keys, shPlan.Keys)
					}
				}
			}
		}
		refRes, err1 := ref.sys.ExecuteCtx(context.Background(), q)
		shRes, err2 := sh.sys.ExecuteCtx(context.Background(), q)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d %v: errors differ: %v vs %v", step, q, err1, err2)
		}
		if err1 != nil {
			return
		}
		if !sameAnswer(refRes, shRes) {
			t.Fatalf("step %d %v: results differ:\nflat    %+v\nsharded %+v", step, q, refRes, shRes)
		}
	}

	// checkBudget runs the cost-bounded dual on both layouts: the chosen
	// budget plans, the spend, the answers, and the typed-error outcome
	// must all be bit-identical. Both executions mutate their systems
	// identically (the paid refreshes install the same exact values).
	checkBudget := func(step int, q query.Query, budget float64) {
		t.Helper()
		if len(q.GroupBy) > 0 {
			return
		}
		col := ref.c.Schema().MustLookup(q.Column)
		ref.c.Sync()
		sh.c.Sync()
		refIn, refLen := aggregate.CollectStore(ref.c.Store(), col, q.Where, true, 1)
		shIn, shLen := aggregate.CollectStore(sh.c.Store(), col, q.Where, true, 1)
		refPlan, err1 := refresh.ChooseBudget(refIn, q.Agg, predicate.IsTrivial(q.Where), budget, refLen, refresh.Options{})
		shPlan, err2 := refresh.ChooseBudget(shIn, q.Agg, predicate.IsTrivial(q.Where), budget, shLen, refresh.Options{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d %v budget %g: plan errors differ: %v vs %v", step, q, budget, err1, err2)
		}
		if err1 == nil {
			if fmt.Sprint(refPlan.Keys) != fmt.Sprint(shPlan.Keys) {
				t.Fatalf("step %d %v budget %g: budget plans differ:\nflat    %v\nsharded %v",
					step, q, budget, refPlan.Keys, shPlan.Keys)
			}
			if refPlan.Cost > budget {
				t.Fatalf("step %d %v: budget plan cost %g over budget %g", step, q, refPlan.Cost, budget)
			}
		}
		refRes, err1 := ref.sys.ExecuteCtx(context.Background(), q, query.WithCostBudget(budget))
		shRes, err2 := sh.sys.ExecuteCtx(context.Background(), q, query.WithCostBudget(budget))
		if errors.Is(err1, query.ErrBudgetExhausted{}) != errors.Is(err2, query.ErrBudgetExhausted{}) ||
			(err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d %v budget %g: outcomes differ: %v vs %v", step, q, budget, err1, err2)
		}
		if err1 != nil && !errors.Is(err1, query.ErrBudgetExhausted{}) {
			return
		}
		if !sameAnswer(refRes, shRes) {
			t.Fatalf("step %d %v budget %g: budget results differ:\nflat    %+v\nsharded %+v",
				step, q, budget, refRes, shRes)
		}
		if refRes.RefreshCost > budget+1e-9 {
			t.Fatalf("step %d %v: paid %g over budget %g", step, q, refRes.RefreshCost, budget)
		}
	}

	// checkBatch executes a small mixed batch on both layouts and
	// compares every per-query result bit-for-bit.
	checkBatch := func(step int, qs []query.Query) {
		t.Helper()
		refRes, err1 := ref.sys.ExecuteBatch(context.Background(), qs)
		shRes, err2 := sh.sys.ExecuteBatch(context.Background(), qs)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("step %d batch: errors differ: %v vs %v", step, err1, err2)
		}
		if err1 != nil {
			return
		}
		for i := range refRes {
			if !sameAnswer(refRes[i], shRes[i]) {
				t.Fatalf("step %d batch query %d (%v): results differ:\nflat    %+v\nsharded %+v",
					step, i, qs[i], refRes[i], shRes[i])
			}
		}
	}

	const steps = 1500
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 3: // source push (may or may not escape the bound)
			if len(live) == 0 {
				continue
			}
			key := live[pick(rng, len(live))]
			v := 100 + float64(key%97) + (rng.Float64()*2-1)*12
			si := int(key/1000) % diffSources
			if err := ref.srcs[si].SetValue(key, []float64{v}); err != nil {
				t.Fatal(err)
			}
			if err := sh.srcs[si].SetValue(key, []float64{v}); err != nil {
				t.Fatal(err)
			}
		case op == 3: // clock tick (bounds widen on both sides)
			ref.sys.Clock.Advance(1)
			sh.sys.Clock.Advance(1)
		case op == 4 && len(live) > 40: // propagated delete
			i := pick(rng, len(live))
			key := live[i]
			if !ref.c.Drop(key) || !sh.c.Drop(key) {
				t.Fatalf("step %d: drop %d failed", step, key)
			}
			live = append(live[:i], live[i+1:]...)
		case op == 5 && rng.Intn(2) == 0: // insert a fresh object
			nextKey++
			v := 100 + float64(nextKey%97)
			ref.addObject(t, nextKey, v)
			sh.addObject(t, nextKey, v)
			live = append(live, nextKey)
		case op == 6: // direct single-object refresh (Oracle path)
			if len(live) == 0 {
				continue
			}
			key := live[pick(rng, len(live))]
			_, ok1 := ref.c.Master(key)
			_, ok2 := sh.c.Master(key)
			if ok1 != ok2 {
				t.Fatalf("step %d: Master(%d) diverged: %v vs %v", step, key, ok1, ok2)
			}
		case op == 7 && rng.Intn(2) == 0: // cost-bounded dual
			q := diffQuery(rng)
			q.GroupBy = nil
			checkBudget(step, q, []float64{0, 2, 7, 20, 60}[rng.Intn(5)])
		case op == 8 && rng.Intn(4) == 0: // cross-query batch
			n := 2 + rng.Intn(4)
			qs := make([]query.Query, 0, n)
			for len(qs) < n {
				q := diffQuery(rng)
				q.GroupBy = nil
				qs = append(qs, q)
			}
			checkBatch(step, qs)
		default: // mixed query
			checkQuery(step, diffQuery(rng))
		}
		if step%250 == 249 {
			// Cached key sets stay identical (Keys is documented sorted).
			rk, sk := ref.c.Keys(), sh.c.Keys()
			if len(rk) != len(sk) {
				t.Fatalf("step %d: key sets differ in size: %d vs %d", step, len(rk), len(sk))
			}
			for i := range rk {
				if rk[i] != sk[i] {
					t.Fatalf("step %d: sorted key sets differ at %d: %d vs %d", step, i, rk[i], sk[i])
				}
			}
		}
	}
	// The cached-vs-cold property is vacuous if the warm side never
	// actually served from its cache.
	if m := sh.sys.Metrics(); m.PlanHits.Load() == 0 {
		t.Fatal("sharded side recorded no plan-cache hits; cached-vs-cold check exercised nothing")
	}
	if m := ref.sys.Metrics(); m.PlanHits.Load() != 0 {
		t.Fatalf("reference side served %d plan-cache hits despite SetPlanCache(false)", m.PlanHits.Load())
	}
}

// sameAnswer compares the observable parts of two results bit-for-bit:
// the final and initial bounded answers, the refresh accounting, and the
// constraint outcome. ChooseTime is wall-clock and excluded.
func sameAnswer(a, b query.Result) bool {
	eq := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	if a.Answer.IsEmpty() != b.Answer.IsEmpty() {
		return false
	}
	if !a.Answer.IsEmpty() && (!eq(a.Answer.Lo, b.Answer.Lo) || !eq(a.Answer.Hi, b.Answer.Hi)) {
		return false
	}
	if a.Initial.IsEmpty() != b.Initial.IsEmpty() {
		return false
	}
	if !a.Initial.IsEmpty() && (!eq(a.Initial.Lo, b.Initial.Lo) || !eq(a.Initial.Hi, b.Initial.Hi)) {
		return false
	}
	return a.Refreshed == b.Refreshed && a.RefreshCost == b.RefreshCost && a.Met == b.Met
}
