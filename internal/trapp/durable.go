package trapp

import (
	"fmt"

	"trapp/internal/cache"
	"trapp/internal/refresh"
	"trapp/internal/relation"
)

// Durable system assembly: caches backed by the relation layer's WAL +
// snapshot store (DESIGN.md §15). A durable cache recovers its mastered
// state on open — values bit-identical, bounds collapsed to the
// conservative floor — and the system re-attaches recovered objects to
// their sources by the SourceID each tuple carries.

// Open assembles the common durable deployment in one call: a fresh
// System whose single cache is backed by dir's WAL + snapshots, mounted
// under table. On a fresh directory it is an empty durable system; on
// reopen it replays snapshot + log into a bit-identical store — values
// exact, every bounded column at the conservative floor. Re-attach the
// recovered objects by adding the system's sources and calling
// Rehandshake; close with CloseDurable.
func Open(dir, table string, schema *relation.Schema, opts refresh.Options, wopts relation.WALOptions) (*System, *cache.Cache, cache.Recovery, error) {
	sys := NewSystem(opts)
	c, rec, err := sys.AddDurableCache(table, schema, dir, wopts)
	if err != nil {
		return nil, nil, cache.Recovery{}, err
	}
	if err := sys.Mount(table, c); err != nil {
		_ = c.CloseWAL()
		return nil, nil, cache.Recovery{}, err
	}
	return sys, c, rec, nil
}

// AddDurableCache creates a durable cache backed by the data directory,
// with the default shard count. Reopening a directory recovers its
// state; the returned Recovery reports what was reconstructed.
func (s *System) AddDurableCache(id string, schema *relation.Schema, dir string, opts relation.WALOptions) (*cache.Cache, cache.Recovery, error) {
	return s.AddDurableCacheSharded(id, schema, 0, dir, opts)
}

// AddDurableCacheSharded is AddDurableCache with an explicit shard
// count, validated against the directory's META file on reopen.
func (s *System) AddDurableCacheSharded(id string, schema *relation.Schema, nshards int, dir string, opts relation.WALOptions) (*cache.Cache, cache.Recovery, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.caches[id]; dup {
		return nil, cache.Recovery{}, fmt.Errorf("trapp: duplicate cache %q", id)
	}
	c, rec, err := cache.OpenDurableSharded(id, s.Clock, schema, nshards, dir, opts)
	if err != nil {
		return nil, cache.Recovery{}, err
	}
	s.caches[id] = c
	if s.recoveries == nil {
		s.recoveries = make(map[string]cache.Recovery)
	}
	s.recoveries[id] = rec
	return c, rec, nil
}

// Recoveries returns the per-cache recovery summaries of every durable
// cache added to this system, keyed by cache id — the /healthz recovery
// surface.
func (s *System) Recoveries() map[string]cache.Recovery {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]cache.Recovery, len(s.recoveries))
	for id, rec := range s.recoveries {
		out[id] = rec
	}
	return out
}

// Rehandshake re-attaches every recovered-but-unattached object of the
// cache to its owning source, resolved by the SourceID the recovered
// tuple carries. Objects whose source is missing from the system, or no
// longer offers the object, are left at the conservative floor — a
// recovery cannot manufacture a promise nobody is making — and their
// keys are returned. Call after the system's sources have been added.
func (s *System) Rehandshake(c *cache.Cache) (unattached []int64, err error) {
	for _, key := range c.Unattached() {
		tu, ok := c.Store().Get(key)
		if !ok {
			continue // dropped since listed
		}
		s.mu.RLock()
		src := s.sources[tu.SourceID]
		s.mu.RUnlock()
		if src == nil {
			unattached = append(unattached, key)
			continue
		}
		if herr := c.Rehandshake(src, key); herr != nil {
			// Source exists but no longer offers the object (or the
			// handshake failed): the floor stays, queries stay correct.
			unattached = append(unattached, key)
			continue
		}
	}
	return unattached, nil
}

// CloseDurable closes the system and flushes every durable cache's log.
// The first WAL close failure is returned; the system is closed either
// way.
func (s *System) CloseDurable() error {
	s.Close()
	s.mu.RLock()
	caches := make([]*cache.Cache, 0, len(s.caches))
	for _, c := range s.caches {
		caches = append(caches, c)
	}
	s.mu.RUnlock()
	var first error
	for _, c := range caches {
		if err := c.CloseWAL(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
