package trapp

import (
	"context"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/interval"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/workload"
)

// eventSystem builds a system whose cache watches one source with the
// given propagation slack, pre-populated with the Figure 2 objects.
func eventSystem(t *testing.T, slack int) (*System, *sourceHandle) {
	t.Helper()
	sys := NewSystem(refresh.Options{})
	src, err := sys.AddSource("nodes", nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sys.AddCache("monitor", workload.LinkSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range workload.Figure2() {
		if err := src.AddObject(row.Key,
			[]float64{row.LatencyV, row.BandwidthV, row.TrafficV},
			row.Cost, boundfn.StaticWidth(1)); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
			t.Fatal(err)
		}
	}
	c.WatchSource(src)
	src.SetPropagationSlack(slack)
	if err := sys.Mount("links", c); err != nil {
		t.Fatal(err)
	}
	return sys, &sourceHandle{src: src}
}

// sourceHandle avoids importing the source package's type in every test.
type sourceHandle struct {
	src interface {
		InsertObject(key int64, values []float64, cost float64, policy boundfn.WidthPolicy, meta []float64) error
		RemoveObject(key int64) error
		Pending() int
		FlushEvents()
	}
}

func TestDelayedPropagationQueues(t *testing.T) {
	sys, h := eventSystem(t, 3)
	c := sys.Cache("monitor")
	if err := h.src.InsertObject(7, []float64{4, 50, 100}, 2, nil, []float64{6, 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.src.RemoveObject(1); err != nil {
		t.Fatal(err)
	}
	// With slack 3 the two events stay queued; the cache still has the
	// old membership (6 tuples, object 7 absent, object 1 present).
	if h.src.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", h.src.Pending())
	}
	if _, has := c.Store().Get(7); c.Len() != 6 || has {
		t.Errorf("cache changed before flush: len=%d", c.Len())
	}
	// Exceeding the slack flushes everything.
	if err := h.src.RemoveObject(2); err != nil {
		t.Fatal(err)
	}
	if err := h.src.RemoveObject(3); err != nil {
		t.Fatal(err)
	}
	if h.src.Pending() != 0 {
		t.Fatalf("pending after overflow = %d", h.src.Pending())
	}
	// Final membership: started with 6, +7, −1, −2, −3 → 4 tuples.
	if c.Len() != 4 {
		t.Errorf("len after flush = %d, want 4", c.Len())
	}
	if _, has := c.Store().Get(7); !has {
		t.Error("inserted object 7 missing after flush")
	}
}

func TestCountWithSlackWidensAnswer(t *testing.T) {
	sys, h := eventSystem(t, 2)
	if err := h.src.RemoveObject(1); err != nil {
		t.Fatal(err)
	}
	// COUNT with a tolerant constraint is served from the stale cache,
	// widened by ±slack; no flush happens.
	q := query.NewQuery("links", aggregate.Count, workload.ColLatency)
	q.Within = 10
	res, err := sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("tolerant COUNT not met")
	}
	// Cached cardinality is still 6 (deletion queued): answer [4, 8].
	if res.Answer.Lo != 4 || res.Answer.Hi != 8 {
		t.Errorf("COUNT answer = %v, want [4, 8]", res.Answer)
	}
	// True cardinality 5 is inside the widened answer.
	if !res.Answer.Contains(5) {
		t.Errorf("answer %v excludes true count 5", res.Answer)
	}
	if h.src.Pending() != 1 {
		t.Errorf("pending = %d; tolerant COUNT should not flush", h.src.Pending())
	}
}

func TestTightCountForcesFlush(t *testing.T) {
	sys, h := eventSystem(t, 2)
	if err := h.src.RemoveObject(1); err != nil {
		t.Fatal(err)
	}
	q := query.NewQuery("links", aggregate.Count, workload.ColLatency)
	q.Within = 0
	res, err := sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if h.src.Pending() != 0 {
		t.Error("tight COUNT did not flush")
	}
	if !res.Answer.Equal(interval.Point(5)) {
		t.Errorf("COUNT after flush = %v, want [5]", res.Answer)
	}
}

func TestOtherAggregatesFlushFirst(t *testing.T) {
	sys, h := eventSystem(t, 5)
	if err := h.src.RemoveObject(3); err != nil { // the max-latency link
		t.Fatal(err)
	}
	q := query.NewQuery("links", aggregate.Max, workload.ColLatency)
	q.Within = 0
	res, err := sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if h.src.Pending() != 0 {
		t.Error("MAX query did not flush membership events")
	}
	// With link 3 (latency 13) gone, the exact MAX is 11.
	if res.Answer.Lo != 11 || !res.Answer.IsPoint() {
		t.Errorf("MAX = %v, want [11]", res.Answer)
	}
}

func TestSlackZeroPropagatesImmediately(t *testing.T) {
	sys, h := eventSystem(t, 0)
	c := sys.Cache("monitor")
	if err := h.src.InsertObject(9, []float64{1, 2, 3}, 1, nil, []float64{1, 6}); err != nil {
		t.Fatal(err)
	}
	if _, has := c.Store().Get(9); !has {
		t.Error("immediate propagation did not insert")
	}
	if h.src.Pending() != 0 {
		t.Error("events queued with zero slack")
	}
}

// TestBatchSlackParity pins the §8.3 special paths of ExecuteBatch to
// standalone ExecuteCtx behavior: an all-COUNT slack-tolerant batch is
// answered widened without forcing the propagation round, and an
// imprecise-mode batch never flushes queued membership events.
func TestBatchSlackParity(t *testing.T) {
	ctx := context.Background()

	countQ := query.Query{Table: "links", Agg: aggregate.Count, Column: workload.ColLatency, Within: 10}

	// Side A: standalone execution. Side B: the same query via a batch.
	sysA, hA := eventSystem(t, 3)
	sysB, hB := eventSystem(t, 3)
	for _, h := range []*sourceHandle{hA, hB} {
		if err := h.src.InsertObject(7, []float64{4, 50, 100}, 2, nil, []float64{6, 1}); err != nil {
			t.Fatal(err)
		}
	}
	solo, err := sysA.ExecuteCtx(ctx, countQ)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := sysB.ExecuteBatch(ctx, []query.Query{countQ, countQ})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range batch {
		if res.Answer != solo.Answer || res.Met != solo.Met {
			t.Errorf("batch COUNT %d = %+v, standalone %+v", i, res, solo)
		}
	}
	if hB.src.Pending() == 0 {
		t.Error("slack-tolerant COUNT batch flushed the queued insert")
	}

	// Imprecise-mode batches answer from the unflushed cache for free.
	sumQ := query.Query{Table: "links", Agg: aggregate.Sum, Column: workload.ColLatency}
	soloImp, err := sysA.ExecuteCtx(ctx, sumQ, query.WithMode(query.ModeImprecise))
	if err != nil {
		t.Fatal(err)
	}
	batchImp, err := sysB.ExecuteBatch(ctx, []query.Query{sumQ}, query.WithMode(query.ModeImprecise))
	if err != nil {
		t.Fatal(err)
	}
	if batchImp[0].Answer != soloImp.Answer || batchImp[0].RefreshCost != 0 {
		t.Errorf("imprecise batch %+v, standalone %+v", batchImp[0], soloImp)
	}
	if hB.src.Pending() == 0 {
		t.Error("imprecise batch flushed the queued insert")
	}

	// A mixed batch (a SUM needs exact membership) flushes, exactly as a
	// standalone bounded SUM would.
	bSum := sumQ
	bSum.Within = 1000
	if _, err := sysB.ExecuteBatch(ctx, []query.Query{bSum, countQ}); err != nil {
		t.Fatal(err)
	}
	if hB.src.Pending() != 0 {
		t.Error("mixed batch did not flush queued membership events")
	}
}
