package trapp

import (
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/interval"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/workload"
)

// eventSystem builds a system whose cache watches one source with the
// given propagation slack, pre-populated with the Figure 2 objects.
func eventSystem(t *testing.T, slack int) (*System, *sourceHandle) {
	t.Helper()
	sys := NewSystem(refresh.Options{})
	src, err := sys.AddSource("nodes", nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sys.AddCache("monitor", workload.LinkSchema())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range workload.Figure2() {
		if err := src.AddObject(row.Key,
			[]float64{row.LatencyV, row.BandwidthV, row.TrafficV},
			row.Cost, boundfn.StaticWidth(1)); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
			t.Fatal(err)
		}
	}
	c.WatchSource(src)
	src.SetPropagationSlack(slack)
	if err := sys.Mount("links", c); err != nil {
		t.Fatal(err)
	}
	return sys, &sourceHandle{src: src}
}

// sourceHandle avoids importing the source package's type in every test.
type sourceHandle struct {
	src interface {
		InsertObject(key int64, values []float64, cost float64, policy boundfn.WidthPolicy, meta []float64) error
		RemoveObject(key int64) error
		Pending() int
		FlushEvents()
	}
}

func TestDelayedPropagationQueues(t *testing.T) {
	sys, h := eventSystem(t, 3)
	c := sys.Cache("monitor")
	if err := h.src.InsertObject(7, []float64{4, 50, 100}, 2, nil, []float64{6, 1}); err != nil {
		t.Fatal(err)
	}
	if err := h.src.RemoveObject(1); err != nil {
		t.Fatal(err)
	}
	// With slack 3 the two events stay queued; the cache still has the
	// old membership (6 tuples, object 7 absent, object 1 present).
	if h.src.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", h.src.Pending())
	}
	if _, has := c.Store().Get(7); c.Len() != 6 || has {
		t.Errorf("cache changed before flush: len=%d", c.Len())
	}
	// Exceeding the slack flushes everything.
	if err := h.src.RemoveObject(2); err != nil {
		t.Fatal(err)
	}
	if err := h.src.RemoveObject(3); err != nil {
		t.Fatal(err)
	}
	if h.src.Pending() != 0 {
		t.Fatalf("pending after overflow = %d", h.src.Pending())
	}
	// Final membership: started with 6, +7, −1, −2, −3 → 4 tuples.
	if c.Len() != 4 {
		t.Errorf("len after flush = %d, want 4", c.Len())
	}
	if _, has := c.Store().Get(7); !has {
		t.Error("inserted object 7 missing after flush")
	}
}

func TestCountWithSlackWidensAnswer(t *testing.T) {
	sys, h := eventSystem(t, 2)
	if err := h.src.RemoveObject(1); err != nil {
		t.Fatal(err)
	}
	// COUNT with a tolerant constraint is served from the stale cache,
	// widened by ±slack; no flush happens.
	q := query.NewQuery("links", aggregate.Count, workload.ColLatency)
	q.Within = 10
	res, err := sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("tolerant COUNT not met")
	}
	// Cached cardinality is still 6 (deletion queued): answer [4, 8].
	if res.Answer.Lo != 4 || res.Answer.Hi != 8 {
		t.Errorf("COUNT answer = %v, want [4, 8]", res.Answer)
	}
	// True cardinality 5 is inside the widened answer.
	if !res.Answer.Contains(5) {
		t.Errorf("answer %v excludes true count 5", res.Answer)
	}
	if h.src.Pending() != 1 {
		t.Errorf("pending = %d; tolerant COUNT should not flush", h.src.Pending())
	}
}

func TestTightCountForcesFlush(t *testing.T) {
	sys, h := eventSystem(t, 2)
	if err := h.src.RemoveObject(1); err != nil {
		t.Fatal(err)
	}
	q := query.NewQuery("links", aggregate.Count, workload.ColLatency)
	q.Within = 0
	res, err := sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if h.src.Pending() != 0 {
		t.Error("tight COUNT did not flush")
	}
	if !res.Answer.Equal(interval.Point(5)) {
		t.Errorf("COUNT after flush = %v, want [5]", res.Answer)
	}
}

func TestOtherAggregatesFlushFirst(t *testing.T) {
	sys, h := eventSystem(t, 5)
	if err := h.src.RemoveObject(3); err != nil { // the max-latency link
		t.Fatal(err)
	}
	q := query.NewQuery("links", aggregate.Max, workload.ColLatency)
	q.Within = 0
	res, err := sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if h.src.Pending() != 0 {
		t.Error("MAX query did not flush membership events")
	}
	// With link 3 (latency 13) gone, the exact MAX is 11.
	if res.Answer.Lo != 11 || !res.Answer.IsPoint() {
		t.Errorf("MAX = %v, want [11]", res.Answer)
	}
}

func TestSlackZeroPropagatesImmediately(t *testing.T) {
	sys, h := eventSystem(t, 0)
	c := sys.Cache("monitor")
	if err := h.src.InsertObject(9, []float64{1, 2, 3}, 1, nil, []float64{1, 6}); err != nil {
		t.Fatal(err)
	}
	if _, has := c.Store().Get(9); !has {
		t.Error("immediate propagation did not insert")
	}
	if h.src.Pending() != 0 {
		t.Error("events queued with zero slack")
	}
}
