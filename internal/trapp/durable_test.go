package trapp

// Crash-recovery differential suite for the durable cache (DESIGN.md
// §15). One randomized workload — pushes, clock ticks, deletes,
// inserts, Oracle refreshes, mixed bounded queries — replays against an
// in-memory cache and a WAL-backed cache: every answer must be
// bit-identical live (the log is write-only overhead). Then the durable
// side "crashes" (the WAL is simply abandoned, SIGKILL-style: group
// commit already made every acknowledged record durable) and the
// directory is reopened: values must recover bit-identically, every
// bounded column must sit at the conservative floor until its source is
// re-handshaked, and recovery itself must be deterministic across
// repeated reopens.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/interval"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
)

// diffSchema is the differential workload's table schema.
func diffSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "grp", Kind: relation.Exact},
		relation.Column{Name: "value", Kind: relation.Bounded},
	)
}

// newDurableDiffSystem mirrors newDiffSystem over a durable cache.
func newDurableDiffSystem(t *testing.T, dir string, nshards int) *diffSystem {
	t.Helper()
	sys := NewSystem(refresh.Options{})
	c, rec, err := sys.AddDurableCacheSharded("monitor", diffSchema(), nshards, dir, relation.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Recovered() {
		t.Fatalf("fresh directory claims recovery: %+v", rec)
	}
	d := &diffSystem{sys: sys, c: c}
	for si := 0; si < diffSources; si++ {
		src, err := sys.AddSource(fmt.Sprintf("s%d", si), nil)
		if err != nil {
			t.Fatal(err)
		}
		d.srcs = append(d.srcs, src)
	}
	for si := 0; si < diffSources; si++ {
		for oi := 0; oi < diffObjects; oi++ {
			key := int64(si*1000 + oi)
			d.addObject(t, key, 100+float64(key%97))
		}
	}
	if err := sys.Mount("vals", c); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDurableDifferentialAndCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	mem := newDiffSystem(t, relation.DefaultShards)
	dur := newDurableDiffSystem(t, dir, relation.DefaultShards)

	rng := rand.New(rand.NewSource(20260808))
	live := mem.c.Keys()
	nextKey := int64(9000)
	const steps = 500
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(9); {
		case op < 2: // source push
			if len(live) == 0 {
				continue
			}
			key := live[rng.Intn(len(live))]
			v := 100 + float64(key%97) + (rng.Float64()*2-1)*12
			si := int(key/1000) % diffSources
			if err := mem.srcs[si].SetValue(key, []float64{v}); err != nil {
				t.Fatal(err)
			}
			if err := dur.srcs[si].SetValue(key, []float64{v}); err != nil {
				t.Fatal(err)
			}
		case op == 2: // clock tick
			mem.sys.Clock.Advance(1)
			dur.sys.Clock.Advance(1)
		case op == 3 && len(live) > 40: // propagated delete
			i := rng.Intn(len(live))
			key := live[i]
			if !mem.c.Drop(key) || !dur.c.Drop(key) {
				t.Fatalf("step %d: drop %d failed", step, key)
			}
			live = append(live[:i], live[i+1:]...)
		case op == 4 && rng.Intn(2) == 0: // insert a fresh object
			nextKey++
			v := 100 + float64(nextKey%97)
			mem.addObject(t, nextKey, v)
			dur.addObject(t, nextKey, v)
			live = append(live, nextKey)
		case op == 5: // Oracle single-object refresh
			if len(live) == 0 {
				continue
			}
			key := live[rng.Intn(len(live))]
			_, ok1 := mem.c.Master(key)
			_, ok2 := dur.c.Master(key)
			if ok1 != ok2 {
				t.Fatalf("step %d: Master(%d) diverged: %v vs %v", step, key, ok1, ok2)
			}
		default: // bounded query: answers must be bit-identical
			q := diffQuery(rng)
			q.GroupBy = nil
			memRes, err1 := mem.sys.ExecuteCtx(context.Background(), q)
			durRes, err2 := dur.sys.ExecuteCtx(context.Background(), q)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("step %d %v: errors differ: %v vs %v", step, q, err1, err2)
			}
			if err1 == nil && !sameAnswer(memRes, durRes) {
				t.Fatalf("step %d %v: results differ:\nmemory  %+v\ndurable %+v", step, q, memRes, durRes)
			}
		}
	}
	if err := dur.c.WALHealth(); err != nil {
		t.Fatalf("WAL failure during workload: %v", err)
	}

	// Final full-state comparison: every tuple bit-identical.
	mem.c.Sync()
	dur.c.Sync()
	memKeys, durKeys := mem.c.Keys(), dur.c.Keys()
	if fmt.Sprint(memKeys) != fmt.Sprint(durKeys) {
		t.Fatalf("key sets differ: %v vs %v", memKeys, durKeys)
	}
	for _, key := range memKeys {
		a, _ := mem.c.Store().Get(key)
		b, _ := dur.c.Store().Get(key)
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("key %d tuples differ:\nmemory  %+v\ndurable %+v", key, a, b)
		}
	}

	// Pre-crash facts the recovery must reproduce.
	wantDigest := dur.c.Store().ValueDigest()
	wantKeys := durKeys
	type exactState struct {
		grp      float64
		cost     float64
		sourceID string
	}
	wantExact := make(map[int64]exactState, len(wantKeys))
	grpCol := dur.c.Schema().MustLookup("grp")
	valCol := dur.c.Schema().MustLookup("value")
	for _, key := range wantKeys {
		tu, _ := dur.c.Store().Get(key)
		wantExact[key] = exactState{grp: tu.Bounds[grpCol].Lo, cost: tu.Cost, sourceID: tu.SourceID}
	}
	// SIGKILL: the durable system is abandoned, not closed. Everything
	// acknowledged by group commit is already on disk.

	// Reopen #1: values exact, bounds at the floor.
	sys2 := NewSystem(refresh.Options{})
	c2, rec, err := sys2.AddDurableCacheSharded("monitor", diffSchema(), relation.DefaultShards, dir, relation.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Recovered() {
		t.Fatalf("reopen found nothing: %+v", rec)
	}
	if rec.Rewidened != len(wantKeys) {
		t.Fatalf("rewidened %d tuples, want %d", rec.Rewidened, len(wantKeys))
	}
	if fmt.Sprint(c2.Keys()) != fmt.Sprint(wantKeys) {
		t.Fatalf("recovered keys differ:\ngot  %v\nwant %v", c2.Keys(), wantKeys)
	}
	if got := c2.Store().ValueDigest(); got != wantDigest {
		t.Fatalf("value digest diverged across crash: %x != %x", got, wantDigest)
	}
	for _, key := range wantKeys {
		tu, _ := c2.Store().Get(key)
		want := wantExact[key]
		if tu.Bounds[grpCol].Lo != want.grp || tu.Cost != want.cost || tu.SourceID != want.sourceID {
			t.Fatalf("key %d exact state diverged: got (%g,%g,%q) want (%g,%g,%q)",
				key, tu.Bounds[grpCol].Lo, tu.Cost, tu.SourceID, want.grp, want.cost, want.sourceID)
		}
		if tu.Bounds[valCol] != interval.Unbounded {
			t.Fatalf("key %d recovered bound %v narrower than the conservative floor", key, tu.Bounds[valCol])
		}
	}
	if got := len(c2.Unattached()); got != len(wantKeys) {
		t.Fatalf("%d unattached keys after recovery, want all %d", got, len(wantKeys))
	}

	// The floor is load-bearing: a bounded answer served before any
	// re-handshake must be infinitely wide, never a narrower interval
	// fabricated from stale promises.
	if err := sys2.Mount("vals", c2); err != nil {
		t.Fatal(err)
	}
	res, err := sys2.ExecuteCtx(context.Background(), query.NewQuery("vals", aggregate.Min, "value"))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Answer.Width(), 1) {
		t.Fatalf("recovered cache answered %v before re-handshake: precision fabricated from stale bounds", res.Answer)
	}
	if err := c2.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Reopen #2: recovery is deterministic — bit-identical values again.
	sys3 := NewSystem(refresh.Options{})
	c3, _, err := sys3.AddDurableCacheSharded("monitor", diffSchema(), relation.DefaultShards, dir, relation.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c3.Store().ValueDigest(); got != wantDigest {
		t.Fatalf("second recovery diverged from first: %x != %x", got, wantDigest)
	}

	// Re-handshake: precision is re-earned per object from live sources.
	for si := 0; si < diffSources; si++ {
		if _, err := sys3.AddSource(fmt.Sprintf("s%d", si), nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, key := range wantKeys {
		src := sys3.Source(fmt.Sprintf("s%d", int(key/1000)%diffSources))
		v := 100 + float64(key%97)
		if err := src.AddObject(key, []float64{v}, float64(1+key%5), boundfn.NewAdaptiveWidth(4)); err != nil {
			t.Fatal(err)
		}
	}
	unattached, err := sys3.Rehandshake(c3)
	if err != nil {
		t.Fatal(err)
	}
	if len(unattached) != 0 {
		t.Fatalf("%d keys still unattached after rehandshake: %v", len(unattached), unattached)
	}
	c3.Sync()
	for _, key := range wantKeys {
		tu, _ := c3.Store().Get(key)
		if math.IsInf(tu.Bounds[valCol].Width(), 1) {
			t.Fatalf("key %d still at the floor after rehandshake", key)
		}
	}
	// Exact values survived the handshake untouched.
	if got := c3.Store().ValueDigest(); got == 0 {
		t.Fatal("degenerate digest")
	}
	for _, key := range wantKeys {
		tu, _ := c3.Store().Get(key)
		if tu.Bounds[grpCol].Lo != wantExact[key].grp {
			t.Fatalf("key %d exact column rewritten by rehandshake", key)
		}
	}
	// And the system serves precise answers again.
	if err := sys3.Mount("vals", c3); err != nil {
		t.Fatal(err)
	}
	q := query.NewQuery("vals", aggregate.Count, "value")
	res, err = sys3.ExecuteCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Lo != float64(len(wantKeys)) {
		t.Fatalf("COUNT after recovery = %v, want %d", res.Answer, len(wantKeys))
	}
	if err := sys3.CloseDurable(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenRoundTrip exercises the one-call durable assembly: a system
// opened over a directory, closed, and reopened recovers its values
// bit-identically with bounds at the conservative floor.
func TestOpenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys, c, rec, err := Open(dir, "vals", diffSchema(), refresh.Options{}, relation.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Recovered() {
		t.Fatalf("fresh directory claims recovery: %+v", rec)
	}
	src, err := sys.AddSource("s0", nil)
	if err != nil {
		t.Fatal(err)
	}
	for key := int64(1); key <= 20; key++ {
		if err := src.AddObject(key, []float64{float64(40 + key)}, 1, boundfn.NewAdaptiveWidth(2)); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, key, []float64{float64(key % 3)}); err != nil {
			t.Fatal(err)
		}
	}
	digest := c.Store().ValueDigest()
	if err := sys.CloseDurable(); err != nil {
		t.Fatal(err)
	}

	sys2, c2, rec2, err := Open(dir, "vals", diffSchema(), refresh.Options{}, relation.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.CloseDurable()
	if !rec2.Recovered() || rec2.Rewidened != 20 {
		t.Fatalf("recovery %+v, want 20 rewidened tuples", rec2)
	}
	if got := c2.Store().ValueDigest(); got != digest {
		t.Fatalf("values diverged across reopen: %x != %x", got, digest)
	}
	valCol := c2.Schema().MustLookup("value")
	for _, key := range c2.Keys() {
		tu, _ := c2.Store().Get(key)
		if tu.Bounds[valCol] != interval.Unbounded {
			t.Fatalf("key %d reopened with bound %v, want the floor", key, tu.Bounds[valCol])
		}
	}
}
