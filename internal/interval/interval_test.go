package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoint(t *testing.T) {
	p := Point(3.5)
	if !p.IsPoint() {
		t.Fatalf("Point(3.5) not a point: %v", p)
	}
	if p.Width() != 0 {
		t.Errorf("point width = %g, want 0", p.Width())
	}
	if !p.Contains(3.5) || p.Contains(3.4999) {
		t.Errorf("point containment wrong")
	}
}

func TestNewPanicsOnInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2, 1) did not panic")
		}
	}()
	New(2, 1)
}

func TestNewPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(NaN, 1) did not panic")
		}
	}()
	New(math.NaN(), 1)
}

func TestEmpty(t *testing.T) {
	if !Empty.IsEmpty() {
		t.Fatal("Empty is not empty")
	}
	if Empty.Contains(0) {
		t.Error("Empty contains 0")
	}
	if Empty.Width() != 0 {
		t.Errorf("Empty width = %g, want 0", Empty.Width())
	}
	if got := Empty.Union(New(1, 2)); !got.Equal(New(1, 2)) {
		t.Errorf("Empty.Union([1,2]) = %v", got)
	}
	if got := New(1, 2).Intersect(New(3, 4)); !got.IsEmpty() {
		t.Errorf("disjoint intersect = %v, want empty", got)
	}
}

func TestUnbounded(t *testing.T) {
	if Unbounded.IsEmpty() {
		t.Fatal("Unbounded is empty")
	}
	if !Unbounded.Contains(1e300) || !Unbounded.Contains(-1e300) {
		t.Error("Unbounded does not contain extremes")
	}
	if !math.IsInf(Unbounded.Width(), 1) {
		t.Errorf("Unbounded width = %g", Unbounded.Width())
	}
}

func TestWidthMid(t *testing.T) {
	iv := New(2, 6)
	if iv.Width() != 4 {
		t.Errorf("width = %g, want 4", iv.Width())
	}
	if iv.Mid() != 4 {
		t.Errorf("mid = %g, want 4", iv.Mid())
	}
	if !math.IsNaN(Empty.Mid()) {
		t.Error("Empty.Mid() not NaN")
	}
}

func TestContainsInterval(t *testing.T) {
	outer := New(0, 10)
	cases := []struct {
		in   Interval
		want bool
	}{
		{New(2, 5), true},
		{New(0, 10), true},
		{New(-1, 5), false},
		{New(5, 11), false},
		{Empty, true},
	}
	for _, c := range cases {
		if got := outer.ContainsInterval(c.in); got != c.want {
			t.Errorf("ContainsInterval(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if Empty.ContainsInterval(New(1, 2)) {
		t.Error("Empty contains [1,2]")
	}
}

func TestIntersectUnion(t *testing.T) {
	a, b := New(0, 5), New(3, 8)
	if got := a.Intersect(b); !got.Equal(New(3, 5)) {
		t.Errorf("intersect = %v, want [3,5]", got)
	}
	if got := a.Union(b); !got.Equal(New(0, 8)) {
		t.Errorf("union = %v, want [0,8]", got)
	}
	// Union spans gaps.
	if got := New(0, 1).Union(New(4, 5)); !got.Equal(New(0, 5)) {
		t.Errorf("gap union = %v, want [0,5]", got)
	}
}

func TestClamp(t *testing.T) {
	iv := New(2, 6)
	for _, c := range []struct{ in, want float64 }{{1, 2}, {4, 4}, {9, 6}} {
		if got := iv.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%g) = %g, want %g", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Empty.Clamp(1)) {
		t.Error("Empty.Clamp not NaN")
	}
}

func TestArithmeticExamples(t *testing.T) {
	a, b := New(1, 2), New(10, 20)
	if got := a.Add(b); !got.Equal(New(11, 22)) {
		t.Errorf("add = %v", got)
	}
	if got := b.Sub(a); !got.Equal(New(8, 19)) {
		t.Errorf("sub = %v", got)
	}
	if got := a.Neg(); !got.Equal(New(-2, -1)) {
		t.Errorf("neg = %v", got)
	}
	if got := a.Mul(b); !got.Equal(New(10, 40)) {
		t.Errorf("mul = %v", got)
	}
	if got := New(-1, 2).Mul(New(-3, 4)); !got.Equal(New(-6, 8)) {
		t.Errorf("signed mul = %v, want [-6, 8]", got)
	}
	if got := b.Div(a); !got.Equal(New(5, 20)) {
		t.Errorf("div = %v", got)
	}
	if got := a.Scale(-2); !got.Equal(New(-4, -2)) {
		t.Errorf("scale = %v", got)
	}
}

func TestDivByZeroSpanningInterval(t *testing.T) {
	if got := New(1, 2).Div(New(-1, 1)); !got.Equal(Unbounded) {
		t.Errorf("div by zero-spanning = %v, want unbounded", got)
	}
	if got := New(1, 2).Div(Point(0)); !got.IsEmpty() {
		t.Errorf("div by [0,0] = %v, want empty", got)
	}
}

func TestMinMax(t *testing.T) {
	a, b := New(2, 6), New(4, 5)
	if got := a.Min(b); !got.Equal(New(2, 5)) {
		t.Errorf("min = %v, want [2,5]", got)
	}
	if got := a.Max(b); !got.Equal(New(4, 6)) {
		t.Errorf("max = %v, want [4,6]", got)
	}
	// Empty operand behaves like min(∅)=+∞ / max(∅)=−∞ identities.
	if got := Empty.Min(a); !got.Equal(a) {
		t.Errorf("Empty.Min = %v", got)
	}
	if got := a.Max(Empty); !got.Equal(a) {
		t.Errorf("Max(Empty) = %v", got)
	}
}

func TestExpand(t *testing.T) {
	iv := New(2, 6)
	if got := iv.Expand(1); !got.Equal(New(1, 7)) {
		t.Errorf("expand = %v", got)
	}
	if got := iv.Expand(-1); !got.Equal(New(3, 5)) {
		t.Errorf("shrink = %v", got)
	}
	if got := iv.Expand(-10); !got.IsPoint() || got.Lo != 4 {
		t.Errorf("over-shrink = %v, want [4]", got)
	}
}

func TestIncludeZero(t *testing.T) {
	if got := New(3, 8).IncludeZero(); !got.Equal(New(0, 8)) {
		t.Errorf("positive IncludeZero = %v", got)
	}
	if got := New(-8, -3).IncludeZero(); !got.Equal(New(-8, 0)) {
		t.Errorf("negative IncludeZero = %v", got)
	}
	if got := New(-1, 1).IncludeZero(); !got.Equal(New(-1, 1)) {
		t.Errorf("straddling IncludeZero = %v", got)
	}
	if got := Empty.IncludeZero(); !got.Equal(Point(0)) {
		t.Errorf("empty IncludeZero = %v", got)
	}
}

func TestString(t *testing.T) {
	for _, c := range []struct {
		iv   Interval
		want string
	}{
		{New(2, 4), "[2, 4]"},
		{Point(7), "[7]"},
		{Empty, "[empty]"},
	} {
		if got := c.iv.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.iv, got, c.want)
		}
	}
}

// randomInterval produces a random non-empty interval with endpoints in
// [-50, 50] for property tests.
func randomInterval(r *rand.Rand) Interval {
	a := r.Float64()*100 - 50
	b := r.Float64()*100 - 50
	if a > b {
		a, b = b, a
	}
	return Interval{a, b}
}

// pick returns a random value inside the interval.
func pick(r *rand.Rand, iv Interval) float64 {
	return iv.Lo + r.Float64()*(iv.Hi-iv.Lo)
}

// TestQuickArithmeticSoundness verifies the fundamental inclusion property
// of interval arithmetic: for x in X and y in Y, x op y lies in X op Y.
func TestQuickArithmeticSoundness(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randomInterval(r), randomInterval(r)
		a, b := pick(r, x), pick(r, y)
		const eps = 1e-9
		checks := []struct {
			got  Interval
			want float64
		}{
			{x.Add(y), a + b},
			{x.Sub(y), a - b},
			{x.Mul(y), a * b},
			{x.Neg(), -a},
			{x.Min(y), math.Min(a, b)},
			{x.Max(y), math.Max(a, b)},
			{x.Union(y), a},
			{x.Union(y), b},
			{x.Scale(3.25), 3.25 * a},
			{x.Scale(-1.5), -1.5 * a},
		}
		for _, c := range checks {
			if !c.got.Expand(eps).Contains(c.want) {
				return false
			}
		}
		if !y.Contains(0) {
			if !x.Div(y).Expand(eps).Contains(a / b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectSubset checks Intersect produces a subset of both
// operands and Union a superset.
func TestQuickIntersectSubset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randomInterval(r), randomInterval(r)
		in := x.Intersect(y)
		un := x.Union(y)
		if !x.ContainsInterval(in) || !y.ContainsInterval(in) {
			return false
		}
		if !un.ContainsInterval(x) || !un.ContainsInterval(y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickWidthMonotone: width of a sum is the sum of widths; refreshing a
// value to a point (width 0) never widens an aggregate — the algebraic fact
// behind the SUM knapsack formulation.
func TestQuickWidthSum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randomInterval(r), randomInterval(r)
		got := x.Add(y).Width()
		want := x.Width() + y.Width()
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
