package interval

// Tri is a three-valued logic truth value used to evaluate predicates over
// bounded data: a comparison between intervals may be certainly true,
// certainly false, or unknown (true for some contained values and false for
// others). This is the semantic core of the paper's Possible/Certain
// predicate transformations (Appendix D).
type Tri int8

const (
	// False means the predicate is false for every choice of master values
	// inside the bounds.
	False Tri = iota
	// Unknown means some choices satisfy the predicate and others do not.
	Unknown
	// True means the predicate holds for every choice inside the bounds.
	True
)

// String returns "false", "unknown", or "true".
func (t Tri) String() string {
	switch t {
	case False:
		return "false"
	case True:
		return "true"
	default:
		return "unknown"
	}
}

// TriOf converts a Go bool into a definite Tri value.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// Not returns three-valued negation: ¬True = False, ¬False = True,
// ¬Unknown = Unknown.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// And returns three-valued conjunction (Kleene logic): False dominates.
func (t Tri) And(u Tri) Tri {
	if t == False || u == False {
		return False
	}
	if t == True && u == True {
		return True
	}
	return Unknown
}

// Or returns three-valued disjunction (Kleene logic): True dominates.
func (t Tri) Or(u Tri) Tri {
	if t == True || u == True {
		return True
	}
	if t == False && u == False {
		return False
	}
	return Unknown
}

// Possible reports whether the value could be true (True or Unknown). A
// tuple is in T+ ∪ T? exactly when Possible holds for its predicate.
func (t Tri) Possible() bool { return t != False }

// Certain reports whether the value is definitely true. A tuple is in T+
// exactly when Certain holds for its predicate.
func (t Tri) Certain() bool { return t == True }

// CmpLess evaluates x < y over bounded values using the translation rules
// of the paper's Figure 8:
//
//	Certain(x < y)  ⇔  x.Hi < y.Lo
//	Possible(x < y) ⇔  x.Lo < y.Hi
func CmpLess(x, y Interval) Tri {
	if x.IsEmpty() || y.IsEmpty() {
		return False
	}
	if x.Hi < y.Lo {
		return True
	}
	if x.Lo < y.Hi {
		return Unknown
	}
	return False
}

// CmpLessEq evaluates x <= y over bounded values:
//
//	Certain(x ≤ y)  ⇔  x.Hi ≤ y.Lo
//	Possible(x ≤ y) ⇔  x.Lo ≤ y.Hi
func CmpLessEq(x, y Interval) Tri {
	if x.IsEmpty() || y.IsEmpty() {
		return False
	}
	if x.Hi <= y.Lo {
		return True
	}
	if x.Lo <= y.Hi {
		return Unknown
	}
	return False
}

// CmpGreater evaluates x > y over bounded values (symmetric to CmpLess).
func CmpGreater(x, y Interval) Tri { return CmpLess(y, x) }

// CmpGreaterEq evaluates x >= y over bounded values.
func CmpGreaterEq(x, y Interval) Tri { return CmpLessEq(y, x) }

// CmpEq evaluates x = y over bounded values:
//
//	Certain(x = y)  ⇔  x.Lo = x.Hi = y.Lo = y.Hi
//	Possible(x = y) ⇔  the intervals intersect
func CmpEq(x, y Interval) Tri {
	if x.IsEmpty() || y.IsEmpty() {
		return False
	}
	if x.IsPoint() && y.IsPoint() && x.Lo == y.Lo {
		return True
	}
	if x.Intersects(y) {
		return Unknown
	}
	return False
}

// CmpNotEq evaluates x ≠ y over bounded values (negation of CmpEq).
func CmpNotEq(x, y Interval) Tri { return CmpEq(x, y).Not() }
