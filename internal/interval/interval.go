// Package interval implements closed real intervals [Lo, Hi] used as
// guaranteed bounds on replicated data values in TRAPP systems.
//
// An Interval represents the set of all real values v with Lo <= v <= Hi.
// TRAPP caches store one Interval per data object; the data source
// guarantees that the current master value lies inside it. Aggregation over
// bounded data is interval arithmetic, and selection predicates over bounded
// data evaluate to three-valued logic (certainly true, certainly false, or
// unknown), provided by the comparison operations in this package.
//
// The zero value of Interval is the degenerate point interval [0, 0].
package interval

import (
	"fmt"
	"math"
)

// Interval is a closed interval [Lo, Hi]. Invariant: Lo <= Hi, except for
// the special Empty interval where Lo > Hi.
type Interval struct {
	Lo, Hi float64
}

// Point returns the degenerate interval [v, v], used for exact values.
func Point(v float64) Interval { return Interval{v, v} }

// New returns the interval [lo, hi]. It panics if lo > hi or either endpoint
// is NaN, since such bounds cannot arise from a correct TRAPP source.
func New(lo, hi float64) Interval {
	if math.IsNaN(lo) || math.IsNaN(hi) {
		panic("interval: NaN endpoint")
	}
	if lo > hi {
		panic(fmt.Sprintf("interval: inverted endpoints [%g, %g]", lo, hi))
	}
	return Interval{lo, hi}
}

// Empty is the canonical empty interval: it contains no values. It is the
// identity for Union and the result of aggregating zero tuples for MIN/MAX.
var Empty = Interval{Lo: math.Inf(1), Hi: math.Inf(-1)}

// Unbounded is the interval containing every real value, representing
// complete ignorance (precision constraint R = infinity).
var Unbounded = Interval{Lo: math.Inf(-1), Hi: math.Inf(1)}

// IsEmpty reports whether the interval contains no values.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsPoint reports whether the interval is a single exact value.
func (iv Interval) IsPoint() bool { return iv.Lo == iv.Hi }

// Width returns Hi − Lo, the paper's measure of imprecision. The width of
// an empty interval is 0; the width of an unbounded interval is +Inf.
func (iv Interval) Width() float64 {
	if iv.IsEmpty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Mid returns the midpoint of the interval, used by visualization and
// reporting helpers. Mid of an empty interval is NaN.
func (iv Interval) Mid() float64 {
	if iv.IsEmpty() {
		return math.NaN()
	}
	return iv.Lo + (iv.Hi-iv.Lo)/2
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return iv.Lo <= v && v <= iv.Hi }

// ContainsInterval reports whether other is a (non-strict) subset of iv.
// Every interval contains the empty interval.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	if iv.IsEmpty() {
		return false
	}
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Intersects reports whether the two intervals share at least one value.
func (iv Interval) Intersects(other Interval) bool {
	if iv.IsEmpty() || other.IsEmpty() {
		return false
	}
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Intersect returns the interval of values common to both intervals, or an
// empty interval when they are disjoint.
func (iv Interval) Intersect(other Interval) Interval {
	if !iv.Intersects(other) {
		return Empty
	}
	return Interval{math.Max(iv.Lo, other.Lo), math.Min(iv.Hi, other.Hi)}
}

// Union returns the smallest interval containing both intervals (their
// convex hull; any gap between them is included).
func (iv Interval) Union(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	return Interval{math.Min(iv.Lo, other.Lo), math.Max(iv.Hi, other.Hi)}
}

// Clamp returns v clamped into the interval. Clamp on an empty interval
// returns NaN.
func (iv Interval) Clamp(v float64) float64 {
	if iv.IsEmpty() {
		return math.NaN()
	}
	return math.Min(math.Max(v, iv.Lo), iv.Hi)
}

// Add returns the interval sum {x+y : x in iv, y in other}.
func (iv Interval) Add(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty
	}
	return Interval{iv.Lo + other.Lo, iv.Hi + other.Hi}
}

// Sub returns the interval difference {x−y : x in iv, y in other}.
func (iv Interval) Sub(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty
	}
	return Interval{iv.Lo - other.Hi, iv.Hi - other.Lo}
}

// Neg returns {−x : x in iv}.
func (iv Interval) Neg() Interval {
	if iv.IsEmpty() {
		return Empty
	}
	return Interval{-iv.Hi, -iv.Lo}
}

// Mul returns the interval product {x*y : x in iv, y in other}.
func (iv Interval) Mul(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty
	}
	a := iv.Lo * other.Lo
	b := iv.Lo * other.Hi
	c := iv.Hi * other.Lo
	d := iv.Hi * other.Hi
	return Interval{
		math.Min(math.Min(a, b), math.Min(c, d)),
		math.Max(math.Max(a, b), math.Max(c, d)),
	}
}

// Scale returns {k*x : x in iv}.
func (iv Interval) Scale(k float64) Interval {
	if iv.IsEmpty() {
		return Empty
	}
	if k >= 0 {
		return Interval{k * iv.Lo, k * iv.Hi}
	}
	return Interval{k * iv.Hi, k * iv.Lo}
}

// Div returns the interval quotient {x/y : x in iv, y in other}. If other
// contains 0 the quotient is unbounded (the paper's AVG bound computation
// never divides by an interval containing 0 because COUNT lower bounds are
// at least 1 whenever SUM is nonempty, but the general case is handled for
// API completeness).
func (iv Interval) Div(other Interval) Interval {
	if iv.IsEmpty() || other.IsEmpty() {
		return Empty
	}
	if other.Contains(0) {
		if other.IsPoint() { // exactly [0,0]
			return Empty
		}
		return Unbounded
	}
	inv := Interval{1 / other.Hi, 1 / other.Lo}
	return iv.Mul(inv)
}

// Min returns the interval of possible values of min(x, y) for x in iv and
// y in other. min over an empty operand is the other operand (matching the
// paper's convention min(∅) = +∞).
func (iv Interval) Min(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	return Interval{math.Min(iv.Lo, other.Lo), math.Min(iv.Hi, other.Hi)}
}

// Max returns the interval of possible values of max(x, y), with
// max(∅) = −∞ as in the paper.
func (iv Interval) Max(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	return Interval{math.Max(iv.Lo, other.Lo), math.Max(iv.Hi, other.Hi)}
}

// Expand returns the interval widened by delta on both sides. Negative
// delta shrinks the interval; if it would invert, the midpoint is returned.
func (iv Interval) Expand(delta float64) Interval {
	if iv.IsEmpty() {
		return iv
	}
	lo, hi := iv.Lo-delta, iv.Hi+delta
	if lo > hi {
		m := iv.Mid()
		return Interval{m, m}
	}
	return Interval{lo, hi}
}

// IncludeZero extends the interval to include 0, as required when a T?
// tuple might not satisfy the predicate and thus contribute nothing to a
// SUM (paper section 6.2).
func (iv Interval) IncludeZero() Interval {
	if iv.IsEmpty() {
		return Point(0)
	}
	return Interval{math.Min(iv.Lo, 0), math.Max(iv.Hi, 0)}
}

// Equal reports exact endpoint equality. Two empty intervals are equal
// regardless of their endpoint representation.
func (iv Interval) Equal(other Interval) bool {
	if iv.IsEmpty() && other.IsEmpty() {
		return true
	}
	return iv.Lo == other.Lo && iv.Hi == other.Hi
}

// ApproxEqual reports endpoint equality within absolute tolerance eps.
func (iv Interval) ApproxEqual(other Interval, eps float64) bool {
	if iv.IsEmpty() && other.IsEmpty() {
		return true
	}
	return math.Abs(iv.Lo-other.Lo) <= eps && math.Abs(iv.Hi-other.Hi) <= eps
}

// String renders the interval in the paper's "[lo, hi]" notation.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[empty]"
	}
	if iv.IsPoint() {
		return fmt.Sprintf("[%g]", iv.Lo)
	}
	return fmt.Sprintf("[%g, %g]", iv.Lo, iv.Hi)
}
