package interval_test

import (
	"fmt"

	"trapp/internal/interval"
)

// A cache stores bounds instead of exact values; interval arithmetic
// computes with them.
func ExampleInterval_Add() {
	latencyAB := interval.New(2, 4)
	latencyBC := interval.New(5, 7)
	total := latencyAB.Add(latencyBC)
	fmt.Println(total)
	// Output: [7, 11]
}

func ExampleInterval_Width() {
	answer := interval.New(103, 113)
	fmt.Println(answer.Width() <= 10) // satisfies WITHIN 10
	// Output: true
}

func ExampleCmpLess() {
	// Is a link with latency in [9, 11] faster than 10 ms? Unknown: some
	// values inside the bound are, others are not.
	fmt.Println(interval.CmpLess(interval.New(9, 11), interval.Point(10)))
	fmt.Println(interval.CmpLess(interval.New(2, 4), interval.Point(10)))
	fmt.Println(interval.CmpLess(interval.New(12, 16), interval.Point(10)))
	// Output:
	// unknown
	// true
	// false
}

func ExampleInterval_IncludeZero() {
	// A T? tuple may contribute nothing to a SUM, so its bound is
	// extended to include zero when computing the answer bound.
	fmt.Println(interval.New(3, 8).IncludeZero())
	// Output: [0, 8]
}
