package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTriString(t *testing.T) {
	if True.String() != "true" || False.String() != "false" || Unknown.String() != "unknown" {
		t.Error("Tri String wrong")
	}
}

func TestTriOf(t *testing.T) {
	if TriOf(true) != True || TriOf(false) != False {
		t.Error("TriOf wrong")
	}
}

func TestTriLogicTables(t *testing.T) {
	vals := []Tri{False, Unknown, True}
	// Kleene AND truth table.
	andWant := [3][3]Tri{
		{False, False, False},
		{False, Unknown, Unknown},
		{False, Unknown, True},
	}
	orWant := [3][3]Tri{
		{False, Unknown, True},
		{Unknown, Unknown, True},
		{True, True, True},
	}
	for i, a := range vals {
		for j, b := range vals {
			if got := a.And(b); got != andWant[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, andWant[i][j])
			}
			if got := a.Or(b); got != orWant[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, orWant[i][j])
			}
		}
	}
	notWant := map[Tri]Tri{False: True, Unknown: Unknown, True: False}
	for _, a := range vals {
		if got := a.Not(); got != notWant[a] {
			t.Errorf("NOT %v = %v", a, got)
		}
	}
}

func TestPossibleCertain(t *testing.T) {
	if !True.Possible() || !True.Certain() {
		t.Error("True flags wrong")
	}
	if !Unknown.Possible() || Unknown.Certain() {
		t.Error("Unknown flags wrong")
	}
	if False.Possible() || False.Certain() {
		t.Error("False flags wrong")
	}
}

func TestCmpLess(t *testing.T) {
	cases := []struct {
		x, y Interval
		want Tri
	}{
		{New(1, 2), New(3, 4), True},    // disjoint, x entirely below
		{New(1, 5), New(3, 4), Unknown}, // overlap
		{New(5, 6), New(1, 2), False},   // x entirely above
		{New(1, 3), New(3, 4), Unknown}, // touching: x could equal 3 = y
		{Point(3), Point(3), False},     // equal points: 3 < 3 false
		{Point(2), Point(3), True},      // points ordered
		{New(1, 2), Empty, False},       // empty operand
	}
	for _, c := range cases {
		if got := CmpLess(c.x, c.y); got != c.want {
			t.Errorf("CmpLess(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestCmpLessEq(t *testing.T) {
	cases := []struct {
		x, y Interval
		want Tri
	}{
		{New(1, 3), New(3, 4), True}, // x.Hi == y.Lo: certainly <=
		{Point(3), Point(3), True},
		{New(4, 5), New(1, 3), False},
		{New(1, 5), New(2, 3), Unknown},
	}
	for _, c := range cases {
		if got := CmpLessEq(c.x, c.y); got != c.want {
			t.Errorf("CmpLessEq(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestCmpEq(t *testing.T) {
	cases := []struct {
		x, y Interval
		want Tri
	}{
		{Point(3), Point(3), True},
		{Point(3), Point(4), False},
		{New(1, 3), New(2, 5), Unknown},
		{New(1, 2), New(3, 4), False},
		{New(1, 3), New(3, 4), Unknown}, // touch at a point
		{New(1, 3), Point(2), Unknown},
	}
	for _, c := range cases {
		if got := CmpEq(c.x, c.y); got != c.want {
			t.Errorf("CmpEq(%v, %v) = %v, want %v", c.x, c.y, got, c.want)
		}
		if got := CmpNotEq(c.x, c.y); got != c.want.Not() {
			t.Errorf("CmpNotEq(%v, %v) = %v", c.x, c.y, got)
		}
	}
}

func TestCmpSymmetry(t *testing.T) {
	x, y := New(1, 5), New(3, 8)
	if CmpGreater(x, y) != CmpLess(y, x) {
		t.Error("CmpGreater not symmetric to CmpLess")
	}
	if CmpGreaterEq(x, y) != CmpLessEq(y, x) {
		t.Error("CmpGreaterEq not symmetric to CmpLessEq")
	}
}

// TestQuickComparisonSoundness verifies the defining property of the
// Possible/Certain translation (paper Appendix D): for any master values
// inside the bounds, Certain implies the predicate holds and the predicate
// holding implies Possible.
func TestQuickComparisonSoundness(t *testing.T) {
	type cmp struct {
		tri  func(x, y Interval) Tri
		real func(a, b float64) bool
	}
	cmps := []cmp{
		{CmpLess, func(a, b float64) bool { return a < b }},
		{CmpLessEq, func(a, b float64) bool { return a <= b }},
		{CmpGreater, func(a, b float64) bool { return a > b }},
		{CmpGreaterEq, func(a, b float64) bool { return a >= b }},
		{CmpEq, func(a, b float64) bool { return a == b }},
		{CmpNotEq, func(a, b float64) bool { return a != b }},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x, y := randomInterval(r), randomInterval(r)
		a, b := pick(r, x), pick(r, y)
		for _, c := range cmps {
			tri := c.tri(x, y)
			holds := c.real(a, b)
			if tri == True && !holds {
				return false // Certain must imply truth
			}
			if tri == False && holds {
				return false // truth must imply Possible
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
