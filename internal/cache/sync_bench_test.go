package cache

import (
	"fmt"
	"testing"

	"trapp/internal/boundfn"
	"trapp/internal/netsim"
	"trapp/internal/relation"
	"trapp/internal/source"
)

// benchCache builds a cache holding n objects with two bounded columns,
// the shape of one -scale megatenant.
func benchCache(b *testing.B, n int) (*Cache, *netsim.Clock) {
	b.Helper()
	clock := netsim.NewClock()
	net := netsim.NewNetwork()
	schema := relation.NewSchema(
		relation.Column{Name: "region", Kind: relation.Exact},
		relation.Column{Name: "value", Kind: relation.Bounded},
		relation.Column{Name: "load", Kind: relation.Bounded},
	)
	c := New("bench", clock, schema)
	src := source.New("s1", clock, net, nil)
	for k := int64(0); k < int64(n); k++ {
		if err := src.AddObject(k, []float64{float64(k % 97), float64(k % 31)},
			1, boundfn.StaticWidth(0.5)); err != nil {
			b.Fatal(err)
		}
		if err := c.Subscribe(src, k, []float64{float64(k % 8)}); err != nil {
			b.Fatal(err)
		}
	}
	return c, clock
}

// BenchmarkSyncTick measures the full per-tick rewrite: every iteration
// advances the clock so Sync must re-materialize all n tuples — the cost
// every first query of a tick pays at -scale populations.
func BenchmarkSyncTick(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			c, clock := benchCache(b, n)
			c.Sync()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				clock.Advance(1)
				c.Sync()
			}
		})
	}
}

// BenchmarkSyncClean measures the same-tick fast path: all shards clean,
// Sync is a probe of per-shard state mutexes.
func BenchmarkSyncClean(b *testing.B) {
	c, _ := benchCache(b, 10000)
	c.Sync()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sync()
	}
}
