package cache

import (
	"sort"
	"testing"

	"trapp/internal/boundfn"
	"trapp/internal/netsim"
	"trapp/internal/relation"
	"trapp/internal/source"
	"trapp/internal/workload"
)

func newPair(t *testing.T) (*Cache, *source.Source, *netsim.Clock) {
	t.Helper()
	clock := netsim.NewClock()
	net := netsim.NewNetwork()
	src := source.New("s1", clock, net, nil)
	c := New("c1", clock, workload.LinkSchema())
	for _, row := range workload.Figure2() {
		if err := src.AddObject(row.Key,
			[]float64{row.LatencyV, row.BandwidthV, row.TrafficV},
			row.Cost, boundfn.StaticWidth(2)); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
			t.Fatal(err)
		}
	}
	return c, src, clock
}

// tupleOf fetches a copy of the keyed tuple for assertions.
func tupleOf(t *testing.T, c *Cache, key int64) relation.Tuple {
	t.Helper()
	tu, ok := c.Store().Get(key)
	if !ok {
		t.Fatalf("key %d not cached", key)
	}
	return tu
}

func TestSubscribePopulatesTable(t *testing.T) {
	c, _, _ := newPair(t)
	if c.Len() != 6 {
		t.Fatalf("cache len = %d", c.Len())
	}
	if c.ID() != "c1" {
		t.Errorf("ID = %q", c.ID())
	}
	tu := tupleOf(t, c, 1)
	// Exact columns.
	if tu.Bounds[0].Lo != 1 || tu.Bounds[1].Lo != 2 {
		t.Errorf("exact columns = %v, %v", tu.Bounds[0], tu.Bounds[1])
	}
	// Fresh bounds are points at the master values.
	lat := c.Schema().MustLookup(workload.ColLatency)
	if !tu.Bounds[lat].IsPoint() || tu.Bounds[lat].Lo != 3 {
		t.Errorf("latency bound = %v, want [3]", tu.Bounds[lat])
	}
	if tu.Cost != 3 {
		t.Errorf("cost = %g", tu.Cost)
	}
	if tu.SourceID != "s1" {
		t.Errorf("sourceID = %q", tu.SourceID)
	}
}

func TestSyncGrowsBoundsWithTime(t *testing.T) {
	c, _, clock := newPair(t)
	lat := c.Schema().MustLookup(workload.ColLatency)
	clock.Advance(9) // width 2, sqrt(9) = 3 → ±6
	c.Sync()
	b := tupleOf(t, c, 1).Bounds[lat]
	if b.Width() != 12 {
		t.Errorf("bound width after 9 ticks = %g, want 12", b.Width())
	}
	if !b.Contains(3) {
		t.Errorf("bound %v does not contain master 3", b)
	}
}

func TestMasterPullsQueryRefresh(t *testing.T) {
	c, _, clock := newPair(t)
	clock.Advance(100)
	c.Sync()
	vals, ok := c.Master(1)
	if !ok {
		t.Fatal("Master(1) failed")
	}
	if vals[0] != 3 || vals[1] != 61 || vals[2] != 98 {
		t.Errorf("master values = %v", vals)
	}
	// After the refresh the cached bound collapses to a point.
	lat := c.Schema().MustLookup(workload.ColLatency)
	if b := tupleOf(t, c, 1).Bounds[lat]; !b.IsPoint() {
		t.Errorf("bound after refresh = %v", b)
	}
	if _, ok := c.Master(999); ok {
		t.Error("Master(999) succeeded")
	}
}

func TestValuePushUpdatesCache(t *testing.T) {
	c, src, clock := newPair(t)
	clock.Advance(1)
	// Jump latency of object 1 outside its bound: ±2 around 3 → 100 escapes.
	if err := src.SetValue(1, []float64{100, 61, 98}); err != nil {
		t.Fatal(err)
	}
	c.Sync()
	lat := c.Schema().MustLookup(workload.ColLatency)
	b := tupleOf(t, c, 1).Bounds[lat]
	if !b.Contains(100) {
		t.Errorf("cache bound %v does not contain pushed value 100", b)
	}
}

func TestDrop(t *testing.T) {
	c, _, _ := newPair(t)
	if !c.Drop(1) {
		t.Fatal("Drop(1) failed")
	}
	if c.Len() != 5 {
		t.Errorf("len after drop = %d", c.Len())
	}
	if c.Drop(1) {
		t.Error("double drop succeeded")
	}
	if _, ok := c.Master(1); ok {
		t.Error("Master of dropped key succeeded")
	}
	// A stale refresh for the dropped key is ignored gracefully.
	c.ApplyRefresh(source.Refresh{Key: 1, Bounds: []boundfn.Bound{{}, {}, {}}})
}

// TestKeysSorted checks the documented guarantee: Keys returns the cached
// keys in ascending order regardless of insertion order or shard layout.
func TestKeysSorted(t *testing.T) {
	clock := netsim.NewClock()
	net := netsim.NewNetwork()
	for _, nshards := range []int{1, 4, 16} {
		src := source.New("s1", clock, net, nil)
		c := NewSharded("c1", clock, workload.LinkSchema(), nshards)
		// Subscribe in a scrambled, non-ascending key order.
		rows := workload.Figure2()
		for i := len(rows) - 1; i >= 0; i-- {
			row := rows[i]
			if err := src.AddObject(row.Key,
				[]float64{row.LatencyV, row.BandwidthV, row.TrafficV},
				row.Cost, boundfn.StaticWidth(2)); err != nil {
				t.Fatal(err)
			}
			if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
				t.Fatal(err)
			}
		}
		keys := c.Keys()
		if len(keys) != len(rows) {
			t.Fatalf("shards=%d: keys = %v", nshards, keys)
		}
		if !sort.SliceIsSorted(keys, func(a, b int) bool { return keys[a] < keys[b] }) {
			t.Errorf("shards=%d: keys not sorted: %v", nshards, keys)
		}
		net.Reset()
	}
}

// TestInvariantMasterAlwaysInsideBound drives random updates and checks
// the architecture invariant: after every update + sync, each cached
// bound contains the current master value (invariant 6 of DESIGN.md).
func TestInvariantMasterAlwaysInsideBound(t *testing.T) {
	c, src, clock := newPair(t)
	bcols := c.Schema().BoundedColumns()
	vals := map[int64][]float64{}
	for _, row := range workload.Figure2() {
		vals[row.Key] = []float64{row.LatencyV, row.BandwidthV, row.TrafficV}
	}
	step := func(key int64, delta float64) {
		v := vals[key]
		v[0] += delta
		v[1] -= delta / 2
		v[2] += delta * 2
		if err := src.SetValue(key, v); err != nil {
			t.Fatal(err)
		}
	}
	deltas := []float64{0.5, -1, 3, -8, 20, -0.1, 50}
	for i, d := range deltas {
		clock.Advance(int64(1 + i))
		for _, row := range workload.Figure2() {
			step(row.Key, d)
		}
		c.Sync()
		for _, row := range workload.Figure2() {
			tu := tupleOf(t, c, row.Key)
			for j, col := range bcols {
				if !tu.Bounds[col].Contains(vals[row.Key][j]) {
					t.Fatalf("step %d: key %d col %d bound %v missing master %g",
						i, row.Key, col, tu.Bounds[col], vals[row.Key][j])
				}
			}
		}
	}
}

// TestMasterBatchFansOutPerSource subscribes one cache to objects on
// three sources and checks that a batched pull refreshes every requested
// object, charges each source, and collapses the cached bounds.
func TestMasterBatchFansOutPerSource(t *testing.T) {
	clock := netsim.NewClock()
	net := netsim.NewNetwork()
	c := New("c1", clock, workload.LinkSchema())
	var keys []int64
	for si := 0; si < 3; si++ {
		src := source.New(string(rune('a'+si)), clock, net, nil)
		for oi := 0; oi < 4; oi++ {
			key := int64(si*10 + oi)
			v := float64(key)
			if err := src.AddObject(key, []float64{v, v + 1, v + 2}, 2, boundfn.StaticWidth(1)); err != nil {
				t.Fatal(err)
			}
			if err := c.Subscribe(src, key, []float64{0, 0}); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, key)
		}
	}
	clock.Advance(50)
	c.Sync()
	net.Reset()
	vals, err := c.MasterBatch(keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != len(keys) {
		t.Fatalf("batch returned %d values, want %d", len(vals), len(keys))
	}
	for _, key := range keys {
		if vals[key][0] != float64(key) {
			t.Errorf("key %d values = %v", key, vals[key])
		}
	}
	st := net.Stats()
	if st.Messages[netsim.QueryRefresh] != int64(len(keys)) {
		t.Errorf("query-refresh messages = %d, want %d", st.Messages[netsim.QueryRefresh], len(keys))
	}
	if st.QueryRefreshCost != float64(2*len(keys)) {
		t.Errorf("query refresh cost = %g, want %d", st.QueryRefreshCost, 2*len(keys))
	}
	lat := c.Schema().MustLookup(workload.ColLatency)
	for _, key := range keys {
		if b := tupleOf(t, c, key).Bounds[lat]; !b.IsPoint() {
			t.Errorf("key %d bound after batch refresh = %v", key, b)
		}
	}
	// Keys the cache no longer tracks (dropped mid-plan) are skipped,
	// not errors: the batch serves the rest and omits them from the map.
	vals, err = c.MasterBatch([]int64{keys[0], 999})
	if err != nil {
		t.Errorf("batch with dropped key: %v", err)
	}
	if _, has := vals[999]; has || len(vals) != 1 {
		t.Errorf("batch with dropped key = %v", vals)
	}
	if vals, err := c.MasterBatch(nil); err != nil || vals != nil {
		t.Errorf("empty batch = %v, %v", vals, err)
	}
}

// TestApplyRefreshDropsStaleSeq delivers an old refresh after a newer
// one and checks the cache keeps the newer bounds (out-of-order batch
// replies must not resurrect stale values).
func TestApplyRefreshDropsStaleSeq(t *testing.T) {
	c, src, clock := newPair(t)
	lat := c.Schema().MustLookup(workload.ColLatency)
	clock.Advance(1)
	// Pull a refresh without applying it, then let a newer push land.
	r1, err := src.QueryRefresh(1, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SetValue(1, []float64{500, 61, 98}); err != nil { // escapes → push applies newer refresh
		t.Fatal(err)
	}
	newer := tupleOf(t, c, 1).Bounds[lat]
	if !newer.Contains(500) {
		t.Fatalf("push not applied: bound %v", newer)
	}
	c.ApplyRefresh(r1) // stale reply arrives late
	if got := tupleOf(t, c, 1).Bounds[lat]; got != newer {
		t.Errorf("stale refresh overwrote newer bounds: %v → %v", newer, got)
	}
}

// TestSyncFastPath checks that a Sync with an unchanged clock and no
// intervening refresh leaves the table untouched, while a refresh or a
// clock advance forces re-materialization — per shard: a refresh dirties
// only its own shard's fast path.
func TestSyncFastPath(t *testing.T) {
	c, _, clock := newPair(t)
	lat := c.Schema().MustLookup(workload.ColLatency)
	clock.Advance(9)
	c.Sync()
	want := tupleOf(t, c, 1).Bounds[lat]
	c.Sync() // fast path: no changes
	if got := tupleOf(t, c, 1).Bounds[lat]; got != want {
		t.Errorf("fast-path Sync changed bound: %v → %v", want, got)
	}
	// A query refresh collapses the bound; the next Sync must restore the
	// time-varying bound even though the clock did not advance.
	if _, ok := c.Master(1); !ok {
		t.Fatal("Master failed")
	}
	// Master's ApplyRefresh materializes a fresh bound evaluated at the
	// current tick; at Δt = 0 the √T shape gives a point.
	if b := tupleOf(t, c, 1).Bounds[lat]; !b.IsPoint() {
		t.Fatalf("bound after refresh = %v, want point", b)
	}
	clock.Advance(4)
	c.Sync()
	if b := tupleOf(t, c, 1).Bounds[lat]; b.IsPoint() {
		t.Error("Sync after clock advance left refreshed bound a point")
	}
}

// TestEventsCarryShardIDs checks that change events report the store
// shard owning the key, matching Store.ShardOf.
func TestEventsCarryShardIDs(t *testing.T) {
	clock := netsim.NewClock()
	net := netsim.NewNetwork()
	src := source.New("s1", clock, net, nil)
	c := New("c1", clock, workload.LinkSchema())
	var events []Event
	c.SetListener(func(ev Event) { events = append(events, ev) })
	for _, row := range workload.Figure2() {
		if err := src.AddObject(row.Key,
			[]float64{row.LatencyV, row.BandwidthV, row.TrafficV},
			row.Cost, boundfn.StaticWidth(2)); err != nil {
			t.Fatal(err)
		}
		if err := c.Subscribe(src, row.Key, []float64{float64(row.From), float64(row.To)}); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(4)
	if _, ok := c.Master(3); !ok {
		t.Fatal("Master failed")
	}
	c.Drop(5)
	if len(events) == 0 {
		t.Fatal("no events delivered")
	}
	for _, ev := range events {
		if want := c.Store().ShardOf(ev.Key); ev.Shard != want {
			t.Errorf("event %+v: shard = %d, want %d", ev, ev.Shard, want)
		}
	}
}

func TestSubscribeErrors(t *testing.T) {
	clock := netsim.NewClock()
	net := netsim.NewNetwork()
	src := source.New("s1", clock, net, nil)
	c := New("c1", clock, workload.LinkSchema())
	// Missing object.
	if err := c.Subscribe(src, 42, []float64{0, 0}); err == nil {
		t.Error("subscribe to missing object accepted")
	}
	// Wrong bounded-column arity from source.
	if err := src.AddObject(1, []float64{1, 2}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(src, 1, []float64{0, 0}); err == nil {
		t.Error("source with 2 values accepted for 3 bounded columns")
	}
	// Missing exact values.
	if err := src.AddObject(2, []float64{1, 2, 3}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(src, 2, []float64{0}); err == nil {
		t.Error("short exact values accepted")
	}
	// Duplicate subscription → duplicate key in table.
	if err := src.AddObject(3, []float64{1, 2, 3}, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(src, 3, []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(src, 3, []float64{0, 0}); err == nil {
		t.Error("duplicate subscription accepted")
	}
}
