// Package cache implements the data-cache side of the TRAPP architecture
// (paper section 3, Figure 3): a cache stores, for every replicated data
// object, the time-varying bound functions most recently promised by the
// object's source, materializes them into a relational table of interval
// bounds for the query processor, and pulls query-initiated refreshes when
// a precision constraint demands exact values.
//
// # Concurrency
//
// The cached relation is a sharded store (relation.Store): tuples are
// partitioned by a hash of their key, and every shard carries two locks
// with a strict acquisition order (the shard's state mutex before the
// shard's table lock, never the reverse):
//
//   - the state mutex guards the shard's slice of the cache's own state:
//     the per-object source, bound-function and sequence maps, plus the
//     shard's Sync bookkeeping;
//   - the store's shard RWMutex guards the shard's table contents. The
//     query processor shares it (via Store) so that aggregation scans
//     take shard read locks while refresh installation takes the owning
//     shard's write lock; queries scan all shards in parallel, and a
//     source push blocks only scans of the one shard owning the pushed
//     key.
//
// A goroutine holding one shard's locks never acquires another shard's
// (multi-shard walks hold at most one shard's locks at a time: Keys
// visits shards sequentially, and a stale Sync over a large table fans
// out one goroutine per stale shard, each owning a single shard's
// locks), and no shard lock is ever held while calling
// into a source, so sources can push value-initiated refreshes from their
// own goroutines without deadlock: a push simply queues behind in-flight
// scans of its one shard.
package cache

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"trapp/internal/boundfn"
	"trapp/internal/interval"
	"trapp/internal/netsim"
	"trapp/internal/obs"
	"trapp/internal/parallel"
	"trapp/internal/relation"
	"trapp/internal/source"
)

// EventKind classifies cache change events delivered to the listener
// installed with SetListener.
type EventKind int8

const (
	// RefreshApplied reports a refresh (value- or query-initiated) that
	// reached the cached table.
	RefreshApplied EventKind = iota
	// ObjectAdded reports a new object subscribed into the cache.
	ObjectAdded
	// ObjectDropped reports a cached object removed (propagated delete).
	ObjectDropped
)

// Event is one cache change: an applied refresh or a membership change.
// The continuous-query engine consumes these to maintain standing
// answers incrementally instead of rescanning.
type Event struct {
	// Kind classifies the change.
	Kind EventKind
	// Key identifies the affected object.
	Key int64
	// Shard is the index of the store shard owning Key, so consumers
	// (the continuous engine's dirty tracking) can group work per shard
	// without rehashing.
	Shard int
	// Refresh reports why a RefreshApplied event's refresh was sent.
	Refresh source.RefreshKind
}

// cacheShard is one shard's slice of the cache's own state, guarded by
// its mu. The shard's table contents live in the store's matching shard.
type cacheShard struct {
	mu      sync.Mutex
	sources map[int64]*source.Source
	bounds  map[int64][]boundfn.Bound // per bounded column, schema order
	lastSeq map[int64]int64           // newest applied Refresh.Seq per key
	// Sync fast-path bookkeeping: the shard's materialized intervals are
	// exactly bounds[*].At(syncedAt) except for the keys in dirtyKeys
	// (query-initiated point collapses since that Sync). A Sync at the
	// same clock tick skips a shard with no dirty keys entirely, and
	// re-materializes only the dirty keys otherwise — never the whole
	// shard. Tracking dirtiness per key instead of per shard is what
	// keeps Zipfian query-refresh traffic from amplifying: one paid
	// refresh on a hot key costs one re-materialization at the next
	// Sync, not a rewrite of the ~n/nshards tuples sharing its shard.
	syncedAt  int64
	dirtyKeys map[int64]struct{}
}

// Cache is one data cache holding a single cached (sharded) table. It
// implements source.Subscriber (receiving value-initiated refreshes) and
// the query processor's Oracle and BatchOracle (serving query-initiated
// refreshes, fanned out per source). All methods are safe for concurrent
// use.
type Cache struct {
	id    string
	clock *netsim.Clock

	// listener receives change events; set once via SetListener. Stored
	// as an atomic pointer so the hot apply path never takes an extra
	// lock when no listener is installed.
	listener atomic.Pointer[func(Event)]

	store  *relation.Store
	shards []cacheShard // aligned with store shards

	// metrics, when set (by the System façade), receives refresh batch
	// size observations; atomic so the refresh path never locks for it.
	metrics atomic.Pointer[obs.EngineMetrics]

	wmu     sync.Mutex
	watched []*source.Source // sources watched for membership events

	// wal, when non-nil (durable caches built by OpenDurable), receives a
	// record for every mastered mutation — membership changes and refresh
	// installs — under the same shard state mutex as the store write, so
	// the log's per-shard order matches the table's. Derived rewrites
	// (Sync re-materializing bound functions) are NOT logged: bounds are
	// re-widened on recovery anyway (DESIGN.md §15), so logging them would
	// buy nothing and triple the log volume.
	wal *relation.WAL
	// walErr latches the first WAL failure from a path that cannot return
	// it (a source push); surfaced via WALHealth.
	walErr atomic.Pointer[error]
	// rewidened counts tuples whose bounds were reset to the conservative
	// floor at recovery.
	rewidened int
}

// SetMetrics points the cache at the engine-wide histogram set; batch
// sizes of every per-source refresh round are recorded into it.
func (c *Cache) SetMetrics(m *obs.EngineMetrics) {
	if m != nil {
		c.metrics.Store(m)
	}
}

// New creates a cache around an empty sharded table with the given schema
// and the default shard count.
func New(id string, clock *netsim.Clock, schema *relation.Schema) *Cache {
	return NewSharded(id, clock, schema, 0)
}

// NewSharded is New with an explicit shard count (rounded up to a power
// of two; ≤ 0 selects relation.DefaultShards). A single shard degrades
// to the flat store layout — one tuple slice, one key index, one lock —
// which the differential tests use as the reference.
func NewSharded(id string, clock *netsim.Clock, schema *relation.Schema, nshards int) *Cache {
	st := relation.NewStore(schema, nshards)
	c := &Cache{
		id:     id,
		clock:  clock,
		store:  st,
		shards: make([]cacheShard, st.NumShards()),
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			sources:   make(map[int64]*source.Source),
			bounds:    make(map[int64][]boundfn.Bound),
			lastSeq:   make(map[int64]int64),
			syncedAt:  -1,
			dirtyKeys: make(map[int64]struct{}),
		}
	}
	return c
}

// ID returns the cache identifier.
func (c *Cache) ID() string { return c.id }

// Store exposes the sharded cached relation for the query processor and
// the continuous engine. Callers must call Sync first so the interval
// bounds reflect the current time, and must hold the relevant shard
// locks when the cache is shared between goroutines.
func (c *Cache) Store() *relation.Store { return c.store }

// Schema returns the cached table's schema.
func (c *Cache) Schema() *relation.Schema { return c.store.Schema() }

// Len returns the number of cached objects.
func (c *Cache) Len() int { return c.store.Len() }

// shardFor returns the state shard owning the key and its index.
func (c *Cache) shardFor(key int64) (*cacheShard, int) {
	si := c.store.ShardOf(key)
	return &c.shards[si], si
}

// SetListener installs fn as the cache's change listener; it is called
// outside all cache locks after every refresh that reaches the table and
// after every membership change. At most one listener is supported (the
// continuous-query engine); installing another replaces the first.
// Listeners must not call back into methods that mutate this cache.
func (c *Cache) SetListener(fn func(Event)) {
	if fn == nil {
		c.listener.Store(nil)
		return
	}
	c.listener.Store(&fn)
}

// notify delivers an event to the installed listener, if any. Callers
// must not hold any cache lock.
func (c *Cache) notify(ev Event) {
	if fn := c.listener.Load(); fn != nil {
		(*fn)(ev)
	}
}

// ObserveDemand forwards shared-refresh demand for a cached object to
// its source's width policy (see source.ObserveDemand).
func (c *Cache) ObserveDemand(key int64, subscribers int) {
	sh, _ := c.shardFor(key)
	sh.mu.Lock()
	src := sh.sources[key]
	sh.mu.Unlock()
	if src != nil {
		src.ObserveDemand(key, subscribers)
	}
}

// Subscribe replicates object key from the source into this cache. The
// exact columns' values are supplied by the caller (they are propagated
// precisely, like insertions); bounded columns are initialized from the
// source's first refresh. The tuple's refresh cost is the source's cost
// for the object.
func (c *Cache) Subscribe(src *source.Source, key int64, exactVals []float64) error {
	si, tk, err := c.subscribe(src, key, exactVals)
	if err != nil {
		return err
	}
	if err := c.commitWAL(tk); err != nil {
		return err
	}
	c.notify(Event{Kind: ObjectAdded, Key: key, Shard: si})
	return nil
}

// subscribe is Subscribe without the listener notification or log
// commit; it returns with no cache lock held.
func (c *Cache) subscribe(src *source.Source, key int64, exactVals []float64) (int, relation.Ticket, error) {
	var tk relation.Ticket
	r, err := src.Subscribe(key, c)
	if err != nil {
		return 0, tk, err
	}
	cost, _ := src.Cost(key)
	schema := c.store.Schema()
	bcols := schema.BoundedColumns()
	if len(r.Values) != len(bcols) {
		return 0, tk, fmt.Errorf("cache %s: source sent %d values, schema has %d bounded columns",
			c.id, len(r.Values), len(bcols))
	}

	sh, si := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := c.clock.Now()
	tu := relation.Tuple{
		Key:      key,
		Cost:     cost,
		SourceID: src.ID(),
		Bounds:   make([]interval.Interval, schema.NumColumns()),
	}
	ei, bi := 0, 0
	for col := 0; col < schema.NumColumns(); col++ {
		if schema.Column(col).Kind == relation.Exact {
			if ei >= len(exactVals) {
				return 0, tk, fmt.Errorf("cache %s: missing exact value for column %q",
					c.id, schema.Column(col).Name)
			}
			tu.Bounds[col] = interval.Point(exactVals[ei])
			ei++
		} else {
			tu.Bounds[col] = r.Bounds[bi].At(now)
			bi++
		}
	}
	if err := c.store.Insert(tu); err != nil {
		return 0, tk, err
	}
	tk = c.logInsert(&tu)
	sh.sources[key] = src
	sh.bounds[key] = r.Bounds
	sh.lastSeq[key] = r.Seq
	// The tuple was materialized at now, which may postdate the shard's
	// last Sync; mark just this key so the next same-tick Sync settles it
	// without rewriting the shard.
	sh.dirtyKeys[key] = struct{}{}
	return si, tk, nil
}

// ApplyRefresh installs new bounds for an object; it is invoked by sources
// for value-initiated refreshes and internally after query-initiated ones.
func (c *Cache) ApplyRefresh(r source.Refresh) {
	c.apply(r)
}

// apply installs the refresh and reports whether it reached the table
// (false when the object is gone or a newer refresh was already applied).
// Installed refreshes are reported to the change listener outside the
// cache locks. Only the key's owning shard is locked, so a push contends
// only with scans and writers of that one shard.
func (c *Cache) apply(r source.Refresh) bool {
	sh, si := c.shardFor(r.Key)
	sh.mu.Lock()
	installed, tk := c.applyLocked(sh, r)
	sh.mu.Unlock()
	if installed {
		if err := c.commitWAL(tk); err != nil {
			c.latchWALError(err)
		}
		c.notify(Event{Kind: RefreshApplied, Key: r.Key, Shard: si, Refresh: r.Kind})
	}
	return installed
}

// applyLocked records the refreshed bounds and rematerializes the
// object's table intervals. Refreshes delivered out of order (a batch
// reply applied after a newer value-initiated push raced past it) are
// dropped via the per-object sequence number, so the table never moves
// backwards to stale bounds. Query-initiated refreshes install the
// exact values as point bounds — the cache-side half of the refresh
// step, done here so it is atomic with respect to concurrent pushes.
// Caller holds sh.mu; the shard's table write lock is taken here.
// Reports whether the refresh was installed, plus the log ticket to
// commit once the shard mutex is released.
func (c *Cache) applyLocked(sh *cacheShard, r source.Refresh) (bool, relation.Ticket) {
	var tk relation.Ticket
	if r.Seq != 0 && r.Seq <= sh.lastSeq[r.Key] {
		return false, tk // a newer refresh for this object was already applied
	}
	now := c.clock.Now()
	var pushed []interval.Interval
	installed := c.store.Update(r.Key, func(t *relation.Table, i int) {
		bcols := t.Schema().BoundedColumns()
		if r.Kind != source.QueryInitiated && c.wal != nil {
			pushed = make([]interval.Interval, len(bcols))
		}
		for j, col := range bcols {
			// Best effort: bounds from a source are never empty and exact
			// columns are not refreshed, so SetBound cannot fail here.
			if r.Kind == source.QueryInitiated {
				// The query paid for the exact value: collapse the cached
				// bound to a point until the next Sync re-materializes the
				// time-varying bound.
				_ = t.SetBound(i, col, interval.Point(r.Values[j]))
			} else {
				iv := r.Bounds[j].At(now)
				_ = t.SetBound(i, col, iv)
				if pushed != nil {
					pushed[j] = iv
				}
			}
		}
	})
	if !installed {
		return false, tk // object was deleted; stale refresh
	}
	if r.Kind == source.QueryInitiated {
		tk = c.logRefresh(r.Key, r.Values)
	} else {
		tk = c.logPush(r.Key, pushed)
	}
	sh.bounds[r.Key] = r.Bounds
	sh.lastSeq[r.Key] = r.Seq
	// A value-initiated apply wrote exactly bounds.At(now), so a shard
	// synced at the current tick is still fully materialized — it stays
	// clean and the next Sync skips it. This is what keeps scans cheap
	// under heavy push load: a push never forces queries to re-Sync the
	// shard, let alone the table. Only the query-initiated point
	// collapse (table bound ≠ bound function at now) must dirty its
	// key so the next Sync restores the time-varying bound.
	if r.Kind == source.QueryInitiated {
		sh.dirtyKeys[r.Key] = struct{}{}
	} else {
		// The push re-materialized the key at now; a pending point
		// collapse for it is settled.
		delete(sh.dirtyKeys, r.Key)
	}
	return true, tk
}

// parallelSyncMin is the cached-table size at which Sync fans stale-shard
// rewrites out across goroutines. Below it the whole rewrite is cheaper
// than spawning workers (the few-hundred-object experiment tables); above
// it a clock tick means re-materializing every tuple, and the shards are
// independent, so the wall cost drops to the slowest single shard. A
// single-GOMAXPROCS process always stays serial: fan-out cannot help.
const parallelSyncMin = 4096

// Sync re-evaluates every cached bound function at the current clock time
// and writes the resulting intervals into the table. The query processor
// must call this before computing bounded answers so that the √T growth
// since the last refresh is reflected. A cheap serial probe first finds
// the shards that need work; a shard where the clock has not advanced and
// no point collapse has landed since its previous Sync is skipped without
// touching its table — the fast path that lets back-to-back queries share
// the shard read locks, per shard, so a push dirties only its own shard's
// fast path. When the clock has not advanced, only the keys collapsed by
// query-initiated refreshes since the previous Sync are re-materialized:
// under skewed query traffic one hot refresh costs one bound rewrite, not
// a rewrite of every tuple sharing the hot key's shard. When the clock
// HAS advanced the full per-shard rewrite is unavoidable (the bounds grow
// with time), so it walks the shard's tuple slice sequentially — one
// bounds-map lookup per tuple, bounds written in place — and, for large
// tables, runs the stale shards on parallel goroutines, each holding only
// its own shard's locks (the lock-order rule in the package comment).
func (c *Cache) Sync() {
	// Probe: lock, check, unlock — same cost as the previous all-clean
	// walk, so back-to-back queries within one tick pay nothing extra.
	var stale []int
	for si := range c.shards {
		sh := &c.shards[si]
		sh.mu.Lock()
		clean := sh.syncedAt == c.clock.Now() && len(sh.dirtyKeys) == 0
		sh.mu.Unlock()
		if !clean {
			stale = append(stale, si)
		}
	}
	if len(stale) == 0 {
		return
	}
	if len(stale) == 1 || c.store.Len() < parallelSyncMin || runtime.GOMAXPROCS(0) == 1 {
		for _, si := range stale {
			c.syncShard(si)
		}
		return
	}
	g := parallel.NewGroup(0)
	for _, si := range stale {
		si := si
		g.Go(func() error {
			c.syncShard(si)
			return nil
		})
	}
	_ = g.Wait()
}

// syncShard settles one shard: nothing if another Sync already settled it
// at the current tick, a dirty-keys-only rewrite if only point collapses
// landed since, a sequential full rewrite if the clock advanced. Holds
// only this shard's locks, in state-mutex-before-table-lock order.
func (c *Cache) syncShard(si int) {
	sh := &c.shards[si]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	now := c.clock.Now()
	if sh.syncedAt == now {
		if len(sh.dirtyKeys) == 0 {
			return // a concurrent Sync settled the shard after the probe
		}
		// Same tick: the shard is materialized at now except for the
		// point-collapsed keys; restore just those.
		c.store.UpdateShard(si, func(t *relation.Table) {
			bcols := t.Schema().BoundedColumns()
			for key := range sh.dirtyKeys {
				bs, ok := sh.bounds[key]
				if !ok {
					continue // dropped since the collapse
				}
				i := t.ByKey(key)
				if i < 0 {
					continue
				}
				for j, col := range bcols {
					_ = t.SetBound(i, col, bs[j].At(now))
				}
			}
		})
		clear(sh.dirtyKeys)
		return
	}
	c.store.UpdateShard(si, func(t *relation.Table) {
		bcols := t.Schema().BoundedColumns()
		for i, n := 0, t.Len(); i < n; i++ {
			tu := t.At(i)
			bs, ok := sh.bounds[tu.Key]
			if !ok {
				continue // not owned by this cache's bound map
			}
			// In-place write; bound functions evaluate to non-empty
			// intervals and bcols are bounded columns, so SetBound's
			// validation is vacuous here and skipped.
			for j, col := range bcols {
				tu.Bounds[col] = bs[j].At(now)
			}
		}
	})
	sh.syncedAt = now
	clear(sh.dirtyKeys)
}

// Master implements the query-processor Oracle: it pulls a query-initiated
// refresh for the object from its source, installs the new bounds, and
// returns the exact values.
func (c *Cache) Master(key int64) ([]float64, bool) {
	sh, _ := c.shardFor(key)
	sh.mu.Lock()
	src := sh.sources[key]
	sh.mu.Unlock()
	if src == nil {
		return nil, false
	}
	r, err := src.QueryRefresh(key, c)
	if err != nil {
		return nil, false
	}
	c.ApplyRefresh(r)
	return r.Values, true
}

// MasterBatch implements the query-processor BatchOracle: the refresh set
// is grouped first by owning shard (one state-lock acquisition per shard
// to resolve sources) and then by owning source, and fanned out as one
// batched request per source, each on its own goroutine — the parallel
// refresh phase of the concurrent engine. The refreshed bounds (point
// intervals for the paid exact values, plus any piggybacked extras riding
// along on a reply) are installed into the cached table here, atomically
// with respect to concurrent source pushes and write-locking only each
// key's owning shard, so the processor must not install them again. The
// returned map holds exactly the keys whose refresh reached the table:
// keys dropped since the plan was computed (they no longer contribute to
// any aggregate) and replies that lost the race to an even newer
// value-initiated push are absent.
func (c *Cache) MasterBatch(keys []int64) (map[int64][]float64, error) {
	return c.MasterBatchCtx(context.Background(), keys)
}

// MasterBatchCtx is MasterBatch honoring a context at the refresh
// fan-out: each per-source batch checks the context before transmitting
// (and the simulated wire wait itself is interruptible), so a deadline
// expiring mid-fan-out stops further batches. Batches that completed
// before the cutoff are installed and reported normally — the returned
// map then holds the partial refresh set alongside the context error, so
// the query processor can fold the partial progress into a best-effort
// answer instead of discarding paid refreshes. Cache state stays
// consistent at every cutoff point: installation is per-key atomic and a
// batch is either fully charged and applied or not sent at all.
func (c *Cache) MasterBatchCtx(ctx context.Context, keys []int64) (map[int64][]float64, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	byShard := make(map[int][]int64)
	for _, key := range keys {
		si := c.store.ShardOf(key)
		byShard[si] = append(byShard[si], key)
	}
	bySrc := make(map[*source.Source][]int64)
	for si, ks := range byShard {
		sh := &c.shards[si]
		sh.mu.Lock()
		for _, key := range ks {
			src := sh.sources[key]
			if src == nil {
				continue // dropped since the plan was computed
			}
			bySrc[src] = append(bySrc[src], key)
		}
		sh.mu.Unlock()
	}

	vals := make(map[int64][]float64, len(keys))
	metrics := c.metrics.Load()
	parent := obs.SpanFromContext(ctx)
	// runBatch sends one per-source batch and applies every reply; only
	// refreshes that actually reached the table are reported back (a
	// reply can lose to a concurrent newer push or to a mid-flight drop,
	// in which case its value was never installed). When the request is
	// traced, the batch gets its own child span carrying the keys whose
	// refresh was installed — the per-source cost attribution.
	runBatch := func(src *source.Source, ks []int64, record func(key int64, v []float64)) error {
		if metrics != nil {
			metrics.RefreshBatch.Observe(uint64(len(ks)))
		}
		var sp *obs.Span
		bctx := ctx
		if parent != nil {
			sp = parent.StartSpan("source:" + src.ID())
			bctx = obs.ContextWithSpan(ctx, sp)
		}
		rs, err := src.QueryRefreshBatchCtx(bctx, ks, c)
		if err != nil {
			sp.End()
			return err
		}
		var installed []int64
		for _, r := range rs {
			if c.apply(r) && r.Kind == source.QueryInitiated {
				record(r.Key, r.Values)
				if sp != nil {
					installed = append(installed, r.Key)
				}
			}
		}
		if sp != nil {
			sp.RecordKeys(installed)
			sp.SetDetail("requested=%d installed=%d", len(ks), len(installed))
			sp.End()
		}
		return nil
	}
	if len(bySrc) == 1 {
		// Single source: no fan-out needed, stay on this goroutine.
		for src, ks := range bySrc {
			if err := runBatch(src, ks, func(key int64, v []float64) { vals[key] = v }); err != nil {
				if parallel.IsContextError(err) {
					return vals, err
				}
				return nil, err
			}
		}
		return vals, nil
	}
	var vmu sync.Mutex
	g := parallel.NewGroup(0)
	for src, ks := range bySrc {
		src, ks := src, ks
		g.Go(func() error {
			return runBatch(src, ks, func(key int64, v []float64) {
				vmu.Lock()
				vals[key] = v
				vmu.Unlock()
			})
		})
	}
	if err := g.Wait(); err != nil {
		if parallel.IsContextError(err) {
			// Batches that beat the cutoff are installed; report them so
			// the caller can finish with a best-effort answer.
			return vals, err
		}
		return nil, err
	}
	return vals, nil
}

// Drop removes a cached object, modelling a propagated deletion. Only the
// owning shard is locked.
func (c *Cache) Drop(key int64) bool {
	sh, si := c.shardFor(key)
	sh.mu.Lock()
	delete(sh.sources, key)
	delete(sh.bounds, key)
	delete(sh.lastSeq, key)
	delete(sh.dirtyKeys, key)
	deleted := c.store.Delete(key)
	var tk relation.Ticket
	if deleted {
		tk = c.logDelete(key)
	}
	sh.mu.Unlock()
	if deleted {
		if err := c.commitWAL(tk); err != nil {
			c.latchWALError(err)
		}
		c.notify(Event{Kind: ObjectDropped, Key: key, Shard: si})
	}
	return deleted
}

// WatchSource registers this cache for membership (insert/delete) events
// of the source, enabling the section 8.3 delayed-propagation mode: the
// source may defer up to its configured slack of events, and the cache's
// cardinality answers widen accordingly (see CardinalitySlack).
func (c *Cache) WatchSource(src *source.Source) {
	src.Watch(c)
	c.wmu.Lock()
	c.watched = append(c.watched, src)
	c.wmu.Unlock()
}

// OnTableEvent implements source.Watcher: insertions subscribe to the new
// object using the event's metadata as exact column values; deletions
// drop the cached tuple.
func (c *Cache) OnTableEvent(src *source.Source, ev source.TableEvent) {
	if ev.Insert {
		// A failed subscribe (e.g. concurrent removal) leaves the cache
		// without the tuple, which the next flush reconciles.
		_ = c.Subscribe(src, ev.Key, ev.Meta)
		return
	}
	c.Drop(ev.Key)
}

// CardinalitySlack returns the total propagation slack promised by the
// cache's watched sources: the cached cardinality may differ from the
// true master cardinality by at most this many tuples in either
// direction. Zero when no watched source delays propagation.
func (c *Cache) CardinalitySlack() int {
	c.wmu.Lock()
	watched := append([]*source.Source(nil), c.watched...)
	c.wmu.Unlock()
	total := 0
	for _, src := range watched {
		total += src.Slack()
	}
	return total
}

// FlushWatched forces every watched source to propagate its queued
// membership events, restoring an exact cached cardinality.
func (c *Cache) FlushWatched() {
	c.wmu.Lock()
	watched := append([]*source.Source(nil), c.watched...)
	c.wmu.Unlock()
	for _, src := range watched {
		src.FlushEvents()
	}
}

// Keys returns the cached object keys in ascending order — a documented
// guarantee, so callers that iterate keys to build plans or views stay
// deterministic regardless of the shard layout.
func (c *Cache) Keys() []int64 {
	return c.store.SortedKeys()
}
