// Package cache implements the data-cache side of the TRAPP architecture
// (paper section 3, Figure 3): a cache stores, for every replicated data
// object, the time-varying bound functions most recently promised by the
// object's source, materializes them into a relational table of interval
// bounds for the query processor, and pulls query-initiated refreshes when
// a precision constraint demands exact values.
//
// # Concurrency
//
// A cache carries two locks with a strict acquisition order (mu before
// tabMu, never the reverse):
//
//   - mu guards the cache's own state: the per-object source and bound
//     maps, the watched-source list, and the Sync bookkeeping.
//   - tabMu guards the contents of the cached table. The query processor
//     shares this lock (via TableLock) so that aggregation scans take it
//     for reading while refresh installation takes it for writing; many
//     queries may scan concurrently.
//
// Neither lock is ever held while calling into a source, so sources can
// push value-initiated refreshes from their own goroutines without
// deadlock: a push simply queues behind in-flight scans on tabMu.
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"trapp/internal/boundfn"
	"trapp/internal/interval"
	"trapp/internal/netsim"
	"trapp/internal/parallel"
	"trapp/internal/relation"
	"trapp/internal/source"
)

// EventKind classifies cache change events delivered to the listener
// installed with SetListener.
type EventKind int8

const (
	// RefreshApplied reports a refresh (value- or query-initiated) that
	// reached the cached table.
	RefreshApplied EventKind = iota
	// ObjectAdded reports a new object subscribed into the cache.
	ObjectAdded
	// ObjectDropped reports a cached object removed (propagated delete).
	ObjectDropped
)

// Event is one cache change: an applied refresh or a membership change.
// The continuous-query engine consumes these to maintain standing
// answers incrementally instead of rescanning.
type Event struct {
	// Kind classifies the change.
	Kind EventKind
	// Key identifies the affected object.
	Key int64
	// Refresh reports why a RefreshApplied event's refresh was sent.
	Refresh source.RefreshKind
}

// Cache is one data cache holding a single cached table. It implements
// source.Subscriber (receiving value-initiated refreshes) and the query
// processor's Oracle and BatchOracle (serving query-initiated refreshes,
// fanned out per source). All methods are safe for concurrent use.
type Cache struct {
	id    string
	clock *netsim.Clock

	// listener receives change events; set once via SetListener. Stored
	// as an atomic pointer so the hot apply path never takes an extra
	// lock when no listener is installed.
	listener atomic.Pointer[func(Event)]

	mu      sync.Mutex
	sources map[int64]*source.Source
	bounds  map[int64][]boundfn.Bound // per bounded column, schema order
	lastSeq map[int64]int64           // newest applied Refresh.Seq per key
	watched []*source.Source          // sources watched for membership events
	// Sync fast-path bookkeeping: the table's materialized intervals are
	// exactly bounds[*].At(syncedAt) unless dirty; a Sync at the same
	// clock tick with a clean cache is a no-op.
	syncedAt int64
	dirty    bool

	tabMu sync.RWMutex // guards table contents; shared with the processor
	table *relation.Table
}

// New creates a cache around an empty table with the given schema.
func New(id string, clock *netsim.Clock, schema *relation.Schema) *Cache {
	return &Cache{
		id:       id,
		clock:    clock,
		table:    relation.NewTable(schema),
		sources:  make(map[int64]*source.Source),
		bounds:   make(map[int64][]boundfn.Bound),
		lastSeq:  make(map[int64]int64),
		syncedAt: -1,
	}
}

// ID returns the cache identifier.
func (c *Cache) ID() string { return c.id }

// Table exposes the cached table for the query processor. Callers must
// call Sync first so the interval bounds reflect the current time, and
// must hold TableLock when the cache is shared between goroutines.
func (c *Cache) Table() *relation.Table { return c.table }

// TableLock returns the lock guarding the cached table's contents. The
// query processor takes it for reading during aggregation scans and for
// writing when installing refreshed values; the cache itself takes it
// for writing when sources push refreshes or membership events.
func (c *Cache) TableLock() *sync.RWMutex { return &c.tabMu }

// SetListener installs fn as the cache's change listener; it is called
// outside all cache locks after every refresh that reaches the table and
// after every membership change. At most one listener is supported (the
// continuous-query engine); installing another replaces the first.
// Listeners must not call back into methods that mutate this cache.
func (c *Cache) SetListener(fn func(Event)) {
	if fn == nil {
		c.listener.Store(nil)
		return
	}
	c.listener.Store(&fn)
}

// notify delivers an event to the installed listener, if any. Callers
// must not hold any cache lock.
func (c *Cache) notify(ev Event) {
	if fn := c.listener.Load(); fn != nil {
		(*fn)(ev)
	}
}

// ObserveDemand forwards shared-refresh demand for a cached object to
// its source's width policy (see source.ObserveDemand).
func (c *Cache) ObserveDemand(key int64, subscribers int) {
	c.mu.Lock()
	src := c.sources[key]
	c.mu.Unlock()
	if src != nil {
		src.ObserveDemand(key, subscribers)
	}
}

// Subscribe replicates object key from the source into this cache. The
// exact columns' values are supplied by the caller (they are propagated
// precisely, like insertions); bounded columns are initialized from the
// source's first refresh. The tuple's refresh cost is the source's cost
// for the object.
func (c *Cache) Subscribe(src *source.Source, key int64, exactVals []float64) error {
	if err := c.subscribe(src, key, exactVals); err != nil {
		return err
	}
	c.notify(Event{Kind: ObjectAdded, Key: key})
	return nil
}

// subscribe is Subscribe without the listener notification; it returns
// with no cache lock held.
func (c *Cache) subscribe(src *source.Source, key int64, exactVals []float64) error {
	r, err := src.Subscribe(key, c)
	if err != nil {
		return err
	}
	cost, _ := src.Cost(key)
	schema := c.table.Schema()
	bcols := schema.BoundedColumns()
	if len(r.Values) != len(bcols) {
		return fmt.Errorf("cache %s: source sent %d values, schema has %d bounded columns",
			c.id, len(r.Values), len(bcols))
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	tu := relation.Tuple{
		Key:      key,
		Cost:     cost,
		SourceID: src.ID(),
		Bounds:   make([]interval.Interval, schema.NumColumns()),
	}
	ei, bi := 0, 0
	for col := 0; col < schema.NumColumns(); col++ {
		if schema.Column(col).Kind == relation.Exact {
			if ei >= len(exactVals) {
				return fmt.Errorf("cache %s: missing exact value for column %q",
					c.id, schema.Column(col).Name)
			}
			tu.Bounds[col] = interval.Point(exactVals[ei])
			ei++
		} else {
			tu.Bounds[col] = r.Bounds[bi].At(now)
			bi++
		}
	}
	c.tabMu.Lock()
	err = c.table.Insert(tu)
	c.tabMu.Unlock()
	if err != nil {
		return err
	}
	c.sources[key] = src
	c.bounds[key] = r.Bounds
	c.lastSeq[key] = r.Seq
	c.dirty = true
	return nil
}

// ApplyRefresh installs new bounds for an object; it is invoked by sources
// for value-initiated refreshes and internally after query-initiated ones.
func (c *Cache) ApplyRefresh(r source.Refresh) {
	c.apply(r)
}

// apply installs the refresh and reports whether it reached the table
// (false when the object is gone or a newer refresh was already applied).
// Installed refreshes are reported to the change listener outside the
// cache locks.
func (c *Cache) apply(r source.Refresh) bool {
	c.mu.Lock()
	installed := c.applyLocked(r)
	c.mu.Unlock()
	if installed {
		c.notify(Event{Kind: RefreshApplied, Key: r.Key, Refresh: r.Kind})
	}
	return installed
}

// applyLocked records the refreshed bounds and rematerializes the
// object's table intervals. Refreshes delivered out of order (a batch
// reply applied after a newer value-initiated push raced past it) are
// dropped via the per-object sequence number, so the table never moves
// backwards to stale bounds. Query-initiated refreshes install the
// exact values as point bounds — the cache-side half of the refresh
// step, done here so it is atomic with respect to concurrent pushes.
// Caller holds c.mu; tabMu is taken here. Reports whether the refresh
// was installed.
func (c *Cache) applyLocked(r source.Refresh) bool {
	if r.Seq != 0 && r.Seq <= c.lastSeq[r.Key] {
		return false // a newer refresh for this object was already applied
	}
	c.tabMu.Lock()
	defer c.tabMu.Unlock()
	i := c.table.ByKey(r.Key)
	if i < 0 {
		return false // object was deleted; stale refresh
	}
	c.bounds[r.Key] = r.Bounds
	c.lastSeq[r.Key] = r.Seq
	c.dirty = true
	now := c.clock.Now()
	bcols := c.table.Schema().BoundedColumns()
	for j, col := range bcols {
		// Best effort: bounds from a source are never empty and exact
		// columns are not refreshed, so SetBound cannot fail here.
		if r.Kind == source.QueryInitiated {
			// The query paid for the exact value: collapse the cached
			// bound to a point until the next Sync re-materializes the
			// time-varying bound.
			_ = c.table.SetBound(i, col, interval.Point(r.Values[j]))
		} else {
			_ = c.table.SetBound(i, col, r.Bounds[j].At(now))
		}
	}
	return true
}

// Sync re-evaluates every cached bound function at the current clock time
// and writes the resulting intervals into the table. The query processor
// must call this before computing bounded answers so that the √T growth
// since the last refresh is reflected. When the clock has not advanced
// and no refresh has landed since the previous Sync, the table is already
// current and Sync returns without touching it — the fast path that lets
// back-to-back queries share the table read lock.
func (c *Cache) Sync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	if !c.dirty && c.syncedAt == now {
		return
	}
	c.tabMu.Lock()
	bcols := c.table.Schema().BoundedColumns()
	for key, bs := range c.bounds {
		i := c.table.ByKey(key)
		if i < 0 {
			continue
		}
		for j, col := range bcols {
			_ = c.table.SetBound(i, col, bs[j].At(now))
		}
	}
	c.tabMu.Unlock()
	c.syncedAt = now
	c.dirty = false
}

// Master implements the query-processor Oracle: it pulls a query-initiated
// refresh for the object from its source, installs the new bounds, and
// returns the exact values.
func (c *Cache) Master(key int64) ([]float64, bool) {
	c.mu.Lock()
	src := c.sources[key]
	c.mu.Unlock()
	if src == nil {
		return nil, false
	}
	r, err := src.QueryRefresh(key, c)
	if err != nil {
		return nil, false
	}
	c.ApplyRefresh(r)
	return r.Values, true
}

// MasterBatch implements the query-processor BatchOracle: the refresh set
// is grouped per owning source and fanned out as one batched request per
// source, each on its own goroutine — the parallel refresh phase of the
// concurrent engine. The refreshed bounds (point intervals for the paid
// exact values, plus any piggybacked extras riding along on a reply) are
// installed into the cached table here, atomically with respect to
// concurrent source pushes, so the processor must not install them
// again. The returned map holds exactly the keys whose refresh reached
// the table: keys dropped since the plan was computed (they no longer
// contribute to any aggregate) and replies that lost the race to an
// even newer value-initiated push are absent.
func (c *Cache) MasterBatch(keys []int64) (map[int64][]float64, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	c.mu.Lock()
	bySrc := make(map[*source.Source][]int64)
	for _, key := range keys {
		src := c.sources[key]
		if src == nil {
			continue // dropped since the plan was computed
		}
		bySrc[src] = append(bySrc[src], key)
	}
	c.mu.Unlock()

	vals := make(map[int64][]float64, len(keys))
	// Apply every reply; only refreshes that actually reached the table
	// are reported back (a reply can lose to a concurrent newer push or
	// to a mid-flight drop, in which case its value was never installed).
	applyAndRecord := func(rs []source.Refresh, record func(key int64, v []float64)) {
		for _, r := range rs {
			installed := c.apply(r)
			if installed && r.Kind == source.QueryInitiated {
				record(r.Key, r.Values)
			}
		}
	}
	if len(bySrc) == 1 {
		// Single source: no fan-out needed, stay on this goroutine.
		for src, ks := range bySrc {
			rs, err := src.QueryRefreshBatch(ks, c)
			if err != nil {
				return nil, err
			}
			applyAndRecord(rs, func(key int64, v []float64) { vals[key] = v })
		}
		return vals, nil
	}
	var vmu sync.Mutex
	g := parallel.NewGroup(0)
	for src, ks := range bySrc {
		src, ks := src, ks
		g.Go(func() error {
			rs, err := src.QueryRefreshBatch(ks, c)
			if err != nil {
				return err
			}
			applyAndRecord(rs, func(key int64, v []float64) {
				vmu.Lock()
				vals[key] = v
				vmu.Unlock()
			})
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return vals, nil
}

// Drop removes a cached object, modelling a propagated deletion.
func (c *Cache) Drop(key int64) bool {
	c.mu.Lock()
	delete(c.sources, key)
	delete(c.bounds, key)
	delete(c.lastSeq, key)
	c.dirty = true
	c.tabMu.Lock()
	deleted := c.table.Delete(key)
	c.tabMu.Unlock()
	c.mu.Unlock()
	if deleted {
		c.notify(Event{Kind: ObjectDropped, Key: key})
	}
	return deleted
}

// WatchSource registers this cache for membership (insert/delete) events
// of the source, enabling the section 8.3 delayed-propagation mode: the
// source may defer up to its configured slack of events, and the cache's
// cardinality answers widen accordingly (see CardinalitySlack).
func (c *Cache) WatchSource(src *source.Source) {
	src.Watch(c)
	c.mu.Lock()
	c.watched = append(c.watched, src)
	c.mu.Unlock()
}

// OnTableEvent implements source.Watcher: insertions subscribe to the new
// object using the event's metadata as exact column values; deletions
// drop the cached tuple.
func (c *Cache) OnTableEvent(src *source.Source, ev source.TableEvent) {
	if ev.Insert {
		// A failed subscribe (e.g. concurrent removal) leaves the cache
		// without the tuple, which the next flush reconciles.
		_ = c.Subscribe(src, ev.Key, ev.Meta)
		return
	}
	c.Drop(ev.Key)
}

// CardinalitySlack returns the total propagation slack promised by the
// cache's watched sources: the cached cardinality may differ from the
// true master cardinality by at most this many tuples in either
// direction. Zero when no watched source delays propagation.
func (c *Cache) CardinalitySlack() int {
	c.mu.Lock()
	watched := append([]*source.Source(nil), c.watched...)
	c.mu.Unlock()
	total := 0
	for _, src := range watched {
		total += src.Slack()
	}
	return total
}

// FlushWatched forces every watched source to propagate its queued
// membership events, restoring an exact cached cardinality.
func (c *Cache) FlushWatched() {
	c.mu.Lock()
	watched := append([]*source.Source(nil), c.watched...)
	c.mu.Unlock()
	for _, src := range watched {
		src.FlushEvents()
	}
}

// Keys returns the cached object keys in table order.
func (c *Cache) Keys() []int64 {
	c.tabMu.RLock()
	defer c.tabMu.RUnlock()
	out := make([]int64, 0, c.table.Len())
	for i := 0; i < c.table.Len(); i++ {
		out = append(out, c.table.At(i).Key)
	}
	return out
}
