// Package cache implements the data-cache side of the TRAPP architecture
// (paper section 3, Figure 3): a cache stores, for every replicated data
// object, the time-varying bound functions most recently promised by the
// object's source, materializes them into a relational table of interval
// bounds for the query processor, and pulls query-initiated refreshes when
// a precision constraint demands exact values.
package cache

import (
	"fmt"
	"sync"

	"trapp/internal/boundfn"
	"trapp/internal/interval"
	"trapp/internal/netsim"
	"trapp/internal/relation"
	"trapp/internal/source"
)

// Cache is one data cache holding a single cached table. It implements
// source.Subscriber (receiving value-initiated refreshes) and the query
// processor's Oracle (serving query-initiated refreshes). All methods are
// safe for concurrent use.
type Cache struct {
	id    string
	clock *netsim.Clock

	mu      sync.Mutex
	table   *relation.Table
	sources map[int64]*source.Source
	bounds  map[int64][]boundfn.Bound // per bounded column, schema order
	watched []*source.Source          // sources watched for membership events
}

// New creates a cache around an empty table with the given schema.
func New(id string, clock *netsim.Clock, schema *relation.Schema) *Cache {
	return &Cache{
		id:      id,
		clock:   clock,
		table:   relation.NewTable(schema),
		sources: make(map[int64]*source.Source),
		bounds:  make(map[int64][]boundfn.Bound),
	}
}

// ID returns the cache identifier.
func (c *Cache) ID() string { return c.id }

// Table exposes the cached table for the query processor. Callers must
// call Sync first so the interval bounds reflect the current time.
func (c *Cache) Table() *relation.Table { return c.table }

// Subscribe replicates object key from the source into this cache. The
// exact columns' values are supplied by the caller (they are propagated
// precisely, like insertions); bounded columns are initialized from the
// source's first refresh. The tuple's refresh cost is the source's cost
// for the object.
func (c *Cache) Subscribe(src *source.Source, key int64, exactVals []float64) error {
	r, err := src.Subscribe(key, c)
	if err != nil {
		return err
	}
	cost, _ := src.Cost(key)
	schema := c.table.Schema()
	bcols := schema.BoundedColumns()
	if len(r.Values) != len(bcols) {
		return fmt.Errorf("cache %s: source sent %d values, schema has %d bounded columns",
			c.id, len(r.Values), len(bcols))
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	tu := relation.Tuple{
		Key:      key,
		Cost:     cost,
		SourceID: src.ID(),
		Bounds:   make([]interval.Interval, schema.NumColumns()),
	}
	ei, bi := 0, 0
	for col := 0; col < schema.NumColumns(); col++ {
		if schema.Column(col).Kind == relation.Exact {
			if ei >= len(exactVals) {
				return fmt.Errorf("cache %s: missing exact value for column %q",
					c.id, schema.Column(col).Name)
			}
			tu.Bounds[col] = interval.Point(exactVals[ei])
			ei++
		} else {
			tu.Bounds[col] = r.Bounds[bi].At(now)
			bi++
		}
	}
	if err := c.table.Insert(tu); err != nil {
		return err
	}
	c.sources[key] = src
	c.bounds[key] = r.Bounds
	return nil
}

// ApplyRefresh installs new bounds for an object; it is invoked by sources
// for value-initiated refreshes and internally after query-initiated ones.
func (c *Cache) ApplyRefresh(r source.Refresh) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.applyLocked(r)
}

func (c *Cache) applyLocked(r source.Refresh) {
	i := c.table.ByKey(r.Key)
	if i < 0 {
		return // object was deleted; stale refresh
	}
	c.bounds[r.Key] = r.Bounds
	now := c.clock.Now()
	bcols := c.table.Schema().BoundedColumns()
	for j, col := range bcols {
		// Best effort: bounds from a source are never empty and exact
		// columns are not refreshed, so SetBound cannot fail here.
		_ = c.table.SetBound(i, col, r.Bounds[j].At(now))
	}
}

// Sync re-evaluates every cached bound function at the current clock time
// and writes the resulting intervals into the table. The query processor
// must call this before computing bounded answers so that the √T growth
// since the last refresh is reflected.
func (c *Cache) Sync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	bcols := c.table.Schema().BoundedColumns()
	for key, bs := range c.bounds {
		i := c.table.ByKey(key)
		if i < 0 {
			continue
		}
		for j, col := range bcols {
			_ = c.table.SetBound(i, col, bs[j].At(now))
		}
	}
}

// Master implements the query-processor Oracle: it pulls a query-initiated
// refresh for the object from its source, installs the new bounds, and
// returns the exact values.
func (c *Cache) Master(key int64) ([]float64, bool) {
	c.mu.Lock()
	src := c.sources[key]
	c.mu.Unlock()
	if src == nil {
		return nil, false
	}
	r, err := src.QueryRefresh(key, c)
	if err != nil {
		return nil, false
	}
	c.ApplyRefresh(r)
	return r.Values, true
}

// Drop removes a cached object, modelling a propagated deletion.
func (c *Cache) Drop(key int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.sources, key)
	delete(c.bounds, key)
	return c.table.Delete(key)
}

// WatchSource registers this cache for membership (insert/delete) events
// of the source, enabling the section 8.3 delayed-propagation mode: the
// source may defer up to its configured slack of events, and the cache's
// cardinality answers widen accordingly (see CardinalitySlack).
func (c *Cache) WatchSource(src *source.Source) {
	src.Watch(c)
	c.mu.Lock()
	c.watched = append(c.watched, src)
	c.mu.Unlock()
}

// OnTableEvent implements source.Watcher: insertions subscribe to the new
// object using the event's metadata as exact column values; deletions
// drop the cached tuple.
func (c *Cache) OnTableEvent(src *source.Source, ev source.TableEvent) {
	if ev.Insert {
		// A failed subscribe (e.g. concurrent removal) leaves the cache
		// without the tuple, which the next flush reconciles.
		_ = c.Subscribe(src, ev.Key, ev.Meta)
		return
	}
	c.Drop(ev.Key)
}

// CardinalitySlack returns the total propagation slack promised by the
// cache's watched sources: the cached cardinality may differ from the
// true master cardinality by at most this many tuples in either
// direction. Zero when no watched source delays propagation.
func (c *Cache) CardinalitySlack() int {
	c.mu.Lock()
	watched := append([]*source.Source(nil), c.watched...)
	c.mu.Unlock()
	total := 0
	for _, src := range watched {
		total += src.Slack()
	}
	return total
}

// FlushWatched forces every watched source to propagate its queued
// membership events, restoring an exact cached cardinality.
func (c *Cache) FlushWatched() {
	c.mu.Lock()
	watched := append([]*source.Source(nil), c.watched...)
	c.mu.Unlock()
	for _, src := range watched {
		src.FlushEvents()
	}
}

// Keys returns the cached object keys in table order.
func (c *Cache) Keys() []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, 0, c.table.Len())
	for i := 0; i < c.table.Len(); i++ {
		out = append(out, c.table.At(i).Key)
	}
	return out
}
