package cache

import (
	"fmt"

	"trapp/internal/boundfn"
	"trapp/internal/interval"
	"trapp/internal/netsim"
	"trapp/internal/relation"
	"trapp/internal/source"
)

// Durable caches: a cache whose mastered state — membership, exact
// values, refresh installs — survives process death through the
// relation layer's write-ahead log and snapshots (DESIGN.md §15).
//
// The recovery invariant is asymmetric on purpose. Values are replayed
// bit-identically: they are replicas of master data and the log records
// carry them exactly. Bounds are NOT trusted across a crash: a bound is
// a live promise from a source ("the master value stays within this
// interval, refreshed at this cadence"), and a process that was dead for
// an unknown interval holds promises of unknown staleness. Serving a
// bounded answer from them could fabricate precision the system no
// longer has — the one sin a TRAPP cache must never commit. So every
// recovered tuple's bounded columns are reset to interval.Unbounded (the
// conservative floor) before the cache serves anything, and precision is
// re-earned per object: Rehandshake re-subscribes an object with its
// source and installs a fresh promise; objects left unattached stay at
// the floor, where every answer that touches them is still correct,
// merely maximally imprecise.

// Recovery describes what a durable open reconstructed, for health
// surfaces and the recovery e2e.
type Recovery struct {
	relation.RecoverInfo
	// Rewidened counts tuples whose bounded columns were reset to the
	// conservative floor (every recovered tuple with at least one bounded
	// column).
	Rewidened int
}

// OpenDurable opens (or creates) a durable cache backed by the data
// directory, with the default shard count.
func OpenDurable(id string, clock *netsim.Clock, schema *relation.Schema, dir string, opts relation.WALOptions) (*Cache, Recovery, error) {
	return OpenDurableSharded(id, clock, schema, 0, dir, opts)
}

// OpenDurableSharded is OpenDurable with an explicit shard count. The
// shard count and schema are validated against the directory's META
// file; recovery replays the newest snapshot plus every newer log
// generation, then re-widens all recovered bounds.
func OpenDurableSharded(id string, clock *netsim.Clock, schema *relation.Schema, nshards int, dir string, opts relation.WALOptions) (*Cache, Recovery, error) {
	st, w, ri, err := relation.OpenStore(dir, schema, nshards, opts)
	if err != nil {
		return nil, Recovery{}, err
	}
	c := &Cache{
		id:     id,
		clock:  clock,
		store:  st,
		shards: make([]cacheShard, st.NumShards()),
		wal:    w,
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			sources:   make(map[int64]*source.Source),
			bounds:    make(map[int64][]boundfn.Bound),
			lastSeq:   make(map[int64]int64),
			syncedAt:  -1,
			dirtyKeys: make(map[int64]struct{}),
		}
	}
	rec := Recovery{RecoverInfo: ri, Rewidened: c.rewidenRecovered()}
	c.rewidened = rec.Rewidened
	return c, rec, nil
}

// rewidenRecovered resets every bounded column of every tuple to the
// unbounded interval — the conservative floor recovered promises are
// collapsed to — and returns the number of tuples touched.
func (c *Cache) rewidenRecovered() int {
	bcols := c.store.Schema().BoundedColumns()
	if len(bcols) == 0 {
		return 0
	}
	n := 0
	for si := 0; si < c.store.NumShards(); si++ {
		c.store.UpdateShard(si, func(t *relation.Table) {
			for i := 0; i < t.Len(); i++ {
				tu := t.At(i)
				for _, col := range bcols {
					tu.Bounds[col] = interval.Unbounded
				}
				n++
			}
		})
	}
	return n
}

// Rehandshake re-attaches a recovered object to its source: it
// re-subscribes (the source replaces any stale registration for this
// cache), installs the fresh promise's bounds over the floor, refreshes
// the tuple's cost and owner, and logs the whole tuple so the next
// recovery needs no handshake history. The exact columns keep their
// recovered values — they are the durable replica being re-covered, not
// re-fetched. Returns an error if the key is not cached.
func (c *Cache) Rehandshake(src *source.Source, key int64) error {
	r, err := src.Subscribe(key, c)
	if err != nil {
		return err
	}
	cost, _ := src.Cost(key)
	bcols := c.store.Schema().BoundedColumns()
	if len(r.Values) != len(bcols) {
		return fmt.Errorf("cache %s: rehandshake source sent %d values, schema has %d bounded columns",
			c.id, len(r.Values), len(bcols))
	}
	sh, si := c.shardFor(key)
	sh.mu.Lock()
	now := c.clock.Now()
	var logged relation.Tuple
	ok := c.store.Update(key, func(t *relation.Table, i int) {
		tu := t.At(i)
		tu.Cost = cost
		tu.SourceID = src.ID()
		for j, col := range bcols {
			tu.Bounds[col] = r.Bounds[j].At(now)
		}
		logged = tu.Clone()
	})
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("cache %s: rehandshake for uncached key %d", c.id, key)
	}
	tk := c.logInsert(&logged)
	sh.sources[key] = src
	sh.bounds[key] = r.Bounds
	sh.lastSeq[key] = r.Seq
	sh.dirtyKeys[key] = struct{}{}
	sh.mu.Unlock()
	if err := c.commitWAL(tk); err != nil {
		return err
	}
	c.notify(Event{Kind: RefreshApplied, Key: key, Shard: si, Refresh: source.ValueInitiated})
	return nil
}

// Unattached returns, in ascending order, the cached keys with no live
// source attachment — after recovery, exactly the objects still at the
// conservative floor awaiting Rehandshake.
func (c *Cache) Unattached() []int64 {
	var out []int64
	for _, key := range c.store.SortedKeys() {
		sh, _ := c.shardFor(key)
		sh.mu.Lock()
		_, attached := sh.sources[key]
		sh.mu.Unlock()
		if !attached {
			out = append(out, key)
		}
	}
	return out
}

// Rewidened returns the number of tuples re-widened at recovery.
func (c *Cache) Rewidened() int { return c.rewidened }

// Durable reports whether the cache writes a WAL.
func (c *Cache) Durable() bool { return c.wal != nil }

// WAL exposes the cache's log for health surfaces; nil for in-memory
// caches.
func (c *Cache) WAL() *relation.WAL { return c.wal }

// Checkpoint forces a log compaction (rotate + snapshot). No-op for
// in-memory caches.
func (c *Cache) Checkpoint() error {
	if c.wal == nil {
		return nil
	}
	return c.wal.Checkpoint(c.store)
}

// CloseWAL flushes and closes the log. The cache remains readable;
// further mutations will latch a WAL error.
func (c *Cache) CloseWAL() error {
	if c.wal == nil {
		return nil
	}
	return c.wal.Close()
}

// WALHealth returns the first latched WAL failure, if any.
func (c *Cache) WALHealth() error {
	if p := c.walErr.Load(); p != nil {
		return *p
	}
	return nil
}

func (c *Cache) latchWALError(err error) {
	if err == nil {
		return
	}
	c.walErr.CompareAndSwap(nil, &err)
}

// --- append/commit helpers used by cache.go's mutation paths ---------
// All log* helpers are called with the key's shard state mutex held,
// immediately after the matching store write, so the per-shard log
// order equals the table's mutation order. commitWAL is called after
// the mutex is released; it blocks for group commit and opportunistically
// triggers a checkpoint when the log has grown past the threshold.

func (c *Cache) logInsert(tu *relation.Tuple) relation.Ticket {
	if c.wal == nil {
		return relation.Ticket{}
	}
	tk, err := c.wal.AppendInsert(tu)
	c.latchWALError(err)
	return tk
}

func (c *Cache) logDelete(key int64) relation.Ticket {
	if c.wal == nil {
		return relation.Ticket{}
	}
	tk, err := c.wal.AppendDelete(key)
	c.latchWALError(err)
	return tk
}

func (c *Cache) logRefresh(key int64, exact []float64) relation.Ticket {
	if c.wal == nil {
		return relation.Ticket{}
	}
	tk, err := c.wal.AppendRefresh(key, exact)
	c.latchWALError(err)
	return tk
}

func (c *Cache) logPush(key int64, ivs []interval.Interval) relation.Ticket {
	if c.wal == nil {
		return relation.Ticket{}
	}
	tk, err := c.wal.AppendPush(key, ivs)
	c.latchWALError(err)
	return tk
}

func (c *Cache) commitWAL(tk relation.Ticket) error {
	if c.wal == nil {
		return nil
	}
	if err := c.wal.Commit(tk); err != nil {
		return err
	}
	if err := c.wal.MaybeCheckpoint(c.store); err != nil {
		c.latchWALError(err)
	}
	return nil
}
