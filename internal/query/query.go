// Package query implements the TRAPP/AG query model and the three-step
// bounded query execution of paper section 4:
//
//  1. Compute an initial bounded answer from the cached bounds and check
//     the precision constraint. If it is not met,
//  2. run CHOOSE_REFRESH to select a minimum-cost set of tuples and
//     refresh them from their sources, then
//  3. recompute the bounded answer from the partially refreshed cache.
//
// The Processor works against any refresh Oracle; the trapp package wires
// it to simulated remote sources with per-object costs, while tests use
// in-memory master-value maps.
package query

import (
	"errors"
	"fmt"
	"math"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/refresh"
	"trapp/internal/relation"
)

// Query is a single-table TRAPP/AG aggregation query:
//
//	SELECT AGGREGATE(table.column) WITHIN R FROM table WHERE predicate
type Query struct {
	// Table names the cached table.
	Table string
	// Agg is the aggregation function.
	Agg aggregate.Func
	// Column names the aggregation column.
	Column string
	// Within is the precision constraint R ≥ 0; +Inf (the zero query's
	// default via NewQuery) means unconstrained (pure imprecise mode).
	Within float64
	// RelativeWithin, when positive, expresses the §8.1 relative
	// constraint: the answer width must be at most 2·|A|·RelativeWithin
	// for the true answer A. It takes precedence over Within.
	RelativeWithin float64
	// Where is the selection predicate; nil means none.
	Where predicate.Expr
	// GroupBy lists exact grouping columns (§8.1 extension); non-empty
	// queries must be run with ExecuteGroupBy.
	GroupBy []string
}

// NewQuery returns a query with an unconstrained precision (R = +Inf).
func NewQuery(table string, agg aggregate.Func, column string) Query {
	return Query{Table: table, Agg: agg, Column: column, Within: math.Inf(1)}
}

// String renders the query in the paper's SQL-ish syntax.
func (q Query) String() string {
	s := fmt.Sprintf("SELECT %s(%s.%s)", q.Agg, q.Table, q.Column)
	if q.RelativeWithin > 0 {
		s += fmt.Sprintf(" WITHIN %g%%", q.RelativeWithin*100)
	} else if !math.IsInf(q.Within, 1) {
		s += fmt.Sprintf(" WITHIN %g", q.Within)
	}
	s += " FROM " + q.Table
	if !predicate.IsTrivial(q.Where) {
		s += " WHERE " + q.Where.String()
	}
	for i, g := range q.GroupBy {
		if i == 0 {
			s += " GROUP BY " + g
		} else {
			s += ", " + g
		}
	}
	return s
}

// Oracle supplies exact master values during query-initiated refreshes.
// Master returns the precise values of the bounded columns (in schema
// order) for the object with the given key.
type Oracle interface {
	Master(key int64) (vals []float64, ok bool)
}

// Result reports a bounded query execution.
type Result struct {
	// Answer is the final bounded answer [LA, HA].
	Answer interval.Interval
	// Initial is the bounded answer computed from cached bounds alone
	// (step 1), before any refresh.
	Initial interval.Interval
	// Refreshed is the number of tuples refreshed.
	Refreshed int
	// RefreshCost is the total cost Σ C_i paid for refreshes.
	RefreshCost float64
	// ChooseTime is the time spent inside CHOOSE_REFRESH, the quantity
	// plotted in the paper's Figure 5.
	ChooseTime time.Duration
	// Met reports whether the final answer satisfies the precision
	// constraint (always true for supported queries unless the answer is
	// exactly undefined, which counts as met).
	Met bool
}

// Processor executes bounded queries over a set of cached tables, pulling
// refreshes from per-table oracles.
type Processor struct {
	tables  map[string]*relation.Table
	oracles map[string]Oracle
	opts    refresh.Options
}

// NewProcessor returns an empty processor with the given refresh options.
func NewProcessor(opts refresh.Options) *Processor {
	return &Processor{
		tables:  make(map[string]*relation.Table),
		oracles: make(map[string]Oracle),
		opts:    opts,
	}
}

// Register adds a cached table and its refresh oracle. A nil oracle is
// allowed for tables queried only in imprecise mode.
func (p *Processor) Register(name string, t *relation.Table, o Oracle) {
	p.tables[name] = t
	p.oracles[name] = o
}

// Table returns a registered table, or nil.
func (p *Processor) Table(name string) *relation.Table { return p.tables[name] }

// ErrUnknownTable is returned for queries against unregistered tables.
var ErrUnknownTable = errors.New("query: unknown table")

// ErrUnknownColumn is returned when the aggregation column does not exist.
var ErrUnknownColumn = errors.New("query: unknown column")

// ErrNoOracle is returned when a query needs refreshes but the table has
// no oracle.
var ErrNoOracle = errors.New("query: table has no refresh oracle")

// Execute runs the three-step bounded execution for the query. Queries
// with a relative precision constraint are delegated to ExecuteRelative;
// queries with GROUP BY must be run with ExecuteGroupBy.
func (p *Processor) Execute(q Query) (Result, error) {
	if len(q.GroupBy) > 0 {
		return Result{}, fmt.Errorf("query: GROUP BY query requires ExecuteGroupBy")
	}
	if q.RelativeWithin > 0 {
		rel := q.RelativeWithin
		q.RelativeWithin = 0
		return p.ExecuteRelative(q, rel)
	}
	t, ok := p.tables[q.Table]
	if !ok {
		return Result{}, fmt.Errorf("%w: %q", ErrUnknownTable, q.Table)
	}
	col, ok := t.Schema().Lookup(q.Column)
	if !ok {
		return Result{}, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, q.Table, q.Column)
	}
	if q.Within < 0 || math.IsNaN(q.Within) {
		return Result{}, fmt.Errorf("query: invalid precision constraint %g", q.Within)
	}

	// Step 1: initial bounded answer from cached bounds.
	var res Result
	res.Initial = aggregate.Eval(t, col, q.Agg, q.Where)
	res.Answer = res.Initial
	if satisfies(res.Answer, q.Within) {
		res.Met = true
		return res, nil
	}

	// Step 2: choose and perform refreshes.
	start := time.Now()
	plan, err := refresh.Choose(t, col, q.Agg, q.Where, q.Within, p.opts)
	res.ChooseTime = time.Since(start)
	if err != nil {
		return res, err
	}
	if plan.Len() > 0 {
		oracle := p.oracles[q.Table]
		if oracle == nil {
			return res, fmt.Errorf("%w: %q", ErrNoOracle, q.Table)
		}
		for _, key := range plan.Keys {
			vals, ok := oracle.Master(key)
			if !ok {
				return res, fmt.Errorf("query: oracle has no master values for key %d", key)
			}
			i := t.ByKey(key)
			if i < 0 {
				return res, fmt.Errorf("query: planned key %d vanished from table", key)
			}
			if err := t.Refresh(i, vals); err != nil {
				return res, err
			}
		}
		res.Refreshed = plan.Len()
		res.RefreshCost = plan.Cost
	}

	// Step 3: recompute from the partially refreshed cache.
	res.Answer = aggregate.Eval(t, col, q.Agg, q.Where)
	res.Met = satisfies(res.Answer, q.Within)
	return res, nil
}

// satisfies reports whether a bounded answer meets the constraint. An
// empty answer (exactly undefined aggregate) is trivially precise.
func satisfies(a interval.Interval, r float64) bool {
	if a.IsEmpty() {
		return true
	}
	return a.Width() <= r+1e-9
}

// PreciseMode executes the query by refreshing every tuple that might
// contribute, the "query the sources" extreme of Figure 1(a). It is the
// baseline for the precision-performance experiments.
func (p *Processor) PreciseMode(q Query) (Result, error) {
	q.Within = 0
	return p.Execute(q)
}

// ImpreciseMode executes the query over cached bounds only, the "query the
// cache" extreme of Figure 1(a): no refreshes, no guarantees about width.
func (p *Processor) ImpreciseMode(q Query) (Result, error) {
	q.Within = math.Inf(1)
	return p.Execute(q)
}
