// Package query implements the TRAPP/AG query model and the three-step
// bounded query execution of paper section 4:
//
//  1. Compute an initial bounded answer from the cached bounds and check
//     the precision constraint. If it is not met,
//  2. run CHOOSE_REFRESH to select a minimum-cost set of tuples and
//     refresh them from their sources, then
//  3. recompute the bounded answer from the partially refreshed cache.
//
// The Processor works against any refresh Oracle; the trapp package wires
// it to simulated remote sources with per-object costs, while tests use
// in-memory master-value maps.
//
// # Concurrency
//
// The Processor is safe for concurrent use: any number of goroutines may
// Execute queries (against the same or different relations) while
// registrations happen. A registration is either a sharded store
// (RegisterStore — the cache path) whose per-shard RWMutexes are shared
// with the owning cache, or a flat table (Register/RegisterShared) with
// a single lock. The three-step execution brackets its phases with
// those locks: the aggregation scans of steps 1 and 3 and the
// CHOOSE_REFRESH scan of step 2 hold shard read locks one shard at a
// time (so concurrent queries scan in parallel and a source push blocks
// only scans of the shard owning the pushed key), while installing
// refreshed values write-locks only the shards owning keys in the plan.
// Refresh fetches themselves run outside all locks so that slow sources
// never block scans; when the oracle implements BatchOracle the whole
// refresh set is fetched as parallel per-source batches.
package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/obs"
	"trapp/internal/parallel"
	"trapp/internal/predicate"
	"trapp/internal/refresh"
	"trapp/internal/relation"
)

// Query is a single-table TRAPP/AG aggregation query:
//
//	SELECT AGGREGATE(table.column) WITHIN R FROM table WHERE predicate
type Query struct {
	// Table names the cached table.
	Table string
	// Agg is the aggregation function.
	Agg aggregate.Func
	// Column names the aggregation column.
	Column string
	// Within is the precision constraint R ≥ 0; +Inf (the zero query's
	// default via NewQuery) means unconstrained (pure imprecise mode).
	Within float64
	// RelativeWithin, when positive, expresses the §8.1 relative
	// constraint: the answer width must be at most 2·|A|·RelativeWithin
	// for the true answer A. It takes precedence over Within.
	RelativeWithin float64
	// Where is the selection predicate; nil means none.
	Where predicate.Expr
	// GroupBy lists exact grouping columns (§8.1 extension); non-empty
	// queries must be run with ExecuteGroupBy.
	GroupBy []string
}

// NewQuery returns a query with an unconstrained precision (R = +Inf).
func NewQuery(table string, agg aggregate.Func, column string) Query {
	return Query{Table: table, Agg: agg, Column: column, Within: math.Inf(1)}
}

// String renders the query in the paper's SQL-ish syntax.
func (q Query) String() string {
	s := fmt.Sprintf("SELECT %s(%s.%s)", q.Agg, q.Table, q.Column)
	if q.RelativeWithin > 0 {
		s += fmt.Sprintf(" WITHIN %g%%", q.RelativeWithin*100)
	} else if !math.IsInf(q.Within, 1) {
		s += fmt.Sprintf(" WITHIN %g", q.Within)
	}
	s += " FROM " + q.Table
	if !predicate.IsTrivial(q.Where) {
		s += " WHERE " + q.Where.String()
	}
	for i, g := range q.GroupBy {
		if i == 0 {
			s += " GROUP BY " + g
		} else {
			s += ", " + g
		}
	}
	return s
}

// Oracle supplies exact master values during query-initiated refreshes.
// Master returns the precise values of the bounded columns (in schema
// order) for the object with the given key.
type Oracle interface {
	Master(key int64) (vals []float64, ok bool)
}

// BatchOracle is an Oracle that can serve a whole refresh set at once.
// Implementations are expected to group the keys by owning source and
// fetch the groups in parallel (one batched request per source), which
// is how the cache-backed oracle turns a refresh plan into concurrent
// network rounds instead of a sequential per-object loop.
//
// A BatchOracle additionally owns installation: it writes the refreshed
// bounds into the registered table itself, atomically with respect to
// any concurrent mutators it coordinates with (the cache applies them
// under its table lock, dropping replies that an even newer push has
// overtaken). The processor therefore never installs values fetched
// from a BatchOracle — doing so could resurrect a stale value.
type BatchOracle interface {
	Oracle
	// MasterBatch refreshes every requested key and returns the precise
	// bounded-column values it fetched. Keys that have disappeared since
	// the plan was computed are skipped, not errors.
	MasterBatch(keys []int64) (map[int64][]float64, error)
}

// BatchOracleCtx is a BatchOracle whose batched fetch honors a context:
// a cancellation or deadline expiry mid-fan-out stops further per-source
// batches. On a context error the returned map holds the partial refresh
// set that beat the cutoff (installed and charged normally) alongside
// the context error, so the processor can fold partial progress into a
// best-effort answer. The cache implements it.
type BatchOracleCtx interface {
	BatchOracle
	// MasterBatchCtx is MasterBatch under a context; see above.
	MasterBatchCtx(ctx context.Context, keys []int64) (map[int64][]float64, error)
}

// Result reports a bounded query execution.
type Result struct {
	// Answer is the final bounded answer [LA, HA].
	Answer interval.Interval
	// Initial is the bounded answer computed from cached bounds alone
	// (step 1), before any refresh.
	Initial interval.Interval
	// Refreshed is the number of tuples refreshed.
	Refreshed int
	// RefreshCost is the total cost Σ C_i paid for refreshes.
	RefreshCost float64
	// ChooseTime is the time spent inside CHOOSE_REFRESH, the quantity
	// plotted in the paper's Figure 5.
	ChooseTime time.Duration
	// Met reports whether the final answer satisfies the precision
	// constraint (always true for supported queries unless the answer is
	// exactly undefined, which counts as met).
	Met bool
	// Trace is the span tree recorded when the request ran with
	// WithTrace; nil otherwise. Trace.TotalCost() equals RefreshCost
	// bit-exactly.
	Trace *obs.Trace
}

// tableEntry is one registered table with its oracle. A registration is
// either flat — a relation.Table plus the RWMutex guarding it — or
// sharded — a relation.Store carrying its own per-shard locks. The
// execution methods below hide the difference: scans take the read
// lock(s), installs take only the write lock(s) covering the mutated
// keys.
type tableEntry struct {
	table  *relation.Table // flat registration; nil when store is set
	store  *relation.Store // sharded registration
	oracle Oracle
	lock   *sync.RWMutex // guards table; unused for sharded registrations
	plans  *planCache    // shape-keyed scan/classify memo, see plancache.go
}

// version returns the relation's mutation counter — the plan cache's
// invalidation token (see plancache.go).
func (e *tableEntry) version() uint64 {
	if e.store != nil {
		return e.store.Version()
	}
	return e.table.Version()
}

// schema returns the registered relation's schema.
func (e *tableEntry) schema() *relation.Schema {
	if e.store != nil {
		return e.store.Schema()
	}
	return e.table.Schema()
}

// snapshot classifies the relation's tuples over column col under the
// predicate, returning the canonical key-ordered inputs and the
// cardinality at scan time. Flat tables are scanned serially under the
// table read lock; sharded stores scan shard-parallel, each worker
// holding only its shard's read lock.
func (e *tableEntry) snapshot(col int, where predicate.Expr, workers int) ([]aggregate.Input, int) {
	if e.store != nil {
		return aggregate.CollectStore(e.store, col, where, true, workers)
	}
	e.lock.RLock()
	defer e.lock.RUnlock()
	return aggregate.Collect(e.table, col, where, true), e.table.Len()
}

// install writes refreshed exact values for one key, write-locking only
// the owning shard (sharded) or the whole table (flat). It reports
// whether the key was still present — a dropped key no longer
// contributes and installs nothing.
func (e *tableEntry) install(key int64, vals []float64) (bool, error) {
	if e.store != nil {
		return e.store.Refresh(key, vals)
	}
	e.lock.Lock()
	defer e.lock.Unlock()
	i := e.table.ByKey(key)
	if i < 0 {
		return false, nil
	}
	return true, e.table.Refresh(i, vals)
}

// forEachTuple visits every tuple under the appropriate read lock(s):
// the whole table for flat registrations, shard by shard in ascending
// index order for sharded ones. The tuple pointer is only valid during
// the callback.
func (e *tableEntry) forEachTuple(fn func(tu *relation.Tuple)) {
	if e.store != nil {
		for si := 0; si < e.store.NumShards(); si++ {
			e.store.ViewShard(si, func(t *relation.Table) {
				for i := 0; i < t.Len(); i++ {
					fn(t.At(i))
				}
			})
		}
		return
	}
	e.lock.RLock()
	defer e.lock.RUnlock()
	for i := 0; i < e.table.Len(); i++ {
		fn(e.table.At(i))
	}
}

// Processor executes bounded queries over a set of cached tables, pulling
// refreshes from per-table oracles. It is safe for concurrent use; see
// the package comment for the locking protocol.
type Processor struct {
	mu      sync.RWMutex
	entries map[string]*tableEntry
	opts    refresh.Options
	metrics *obs.EngineMetrics
	// plansOff disables the shape-keyed plan cache when set; the cold
	// path is the differential reference the cached path must match
	// bit-for-bit (see plancache.go and the trapp differential suite).
	plansOff atomic.Bool
}

// NewProcessor returns an empty processor with the given refresh options.
func NewProcessor(opts refresh.Options) *Processor {
	return &Processor{
		entries: make(map[string]*tableEntry),
		opts:    opts,
		metrics: &obs.EngineMetrics{},
	}
}

// Metrics returns the processor's always-on histogram set. The System
// façade shares this instance with the caches and the continuous engine
// so the whole request path records into one place.
func (p *Processor) Metrics() *obs.EngineMetrics { return p.metrics }

// Register adds a cached table and its refresh oracle. A nil oracle is
// allowed for tables queried only in imprecise mode. The table gets a
// private lock; when another component also mutates the table (a cache
// applying source pushes), use RegisterShared with that component's lock.
func (p *Processor) Register(name string, t *relation.Table, o Oracle) {
	p.RegisterShared(name, t, o, nil)
}

// RegisterShared adds a cached table whose contents are guarded by the
// given lock, shared with whatever other component mutates the table; a
// nil lock allocates a private one.
func (p *Processor) RegisterShared(name string, t *relation.Table, o Oracle, lock *sync.RWMutex) {
	if lock == nil {
		lock = &sync.RWMutex{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries[name] = &tableEntry{table: t, oracle: o, lock: lock, plans: newPlanCache()}
}

// RegisterStore adds a sharded cached relation. The store's per-shard
// locks are shared with whatever other component mutates it (the cache
// applying source pushes): scans take shard read locks, installs
// write-lock only the shards owning refreshed keys.
func (p *Processor) RegisterStore(name string, st *relation.Store, o Oracle) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries[name] = &tableEntry{store: st, oracle: o, plans: newPlanCache()}
}

// SetPlanCache enables or disables the shape-keyed plan cache (enabled
// by default). Disabling forces every request down the cold
// scan-and-classify path; the differential suites run cached-vs-cold in
// lockstep to prove bit-identical answers.
func (p *Processor) SetPlanCache(enabled bool) { p.plansOff.Store(!enabled) }

// PlanCacheEnabled reports whether the shape-keyed plan cache is active.
func (p *Processor) PlanCacheEnabled() bool { return !p.plansOff.Load() }

// PlanCacheSizes returns the total memoized fold and scan entry counts
// across all registered tables.
func (p *Processor) PlanCacheSizes() (folds, scans int) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, e := range p.entries {
		f, s := e.plans.sizes()
		folds += f
		scans += s
	}
	return folds, scans
}

// entry returns the registration for a table, or nil.
func (p *Processor) entry(name string) *tableEntry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.entries[name]
}

// Table returns a registered flat table, or nil (also nil for sharded
// registrations; see Store).
func (p *Processor) Table(name string) *relation.Table {
	if e := p.entry(name); e != nil {
		return e.table
	}
	return nil
}

// Store returns a registered sharded store, or nil for flat
// registrations and unknown names.
func (p *Processor) Store(name string) *relation.Store {
	if e := p.entry(name); e != nil {
		return e.store
	}
	return nil
}

// ErrUnknownTable is returned for queries against unregistered tables.
var ErrUnknownTable = errors.New("query: unknown table")

// ErrUnknownColumn is returned when the aggregation column does not exist.
var ErrUnknownColumn = errors.New("query: unknown column")

// ErrNoOracle is returned when a query needs refreshes but the table has
// no oracle.
var ErrNoOracle = errors.New("query: table has no refresh oracle")

// Execute runs the three-step bounded execution for the query with a
// background context and default per-request options. Queries with a
// relative precision constraint are delegated to ExecuteRelative;
// queries with GROUP BY must be run with ExecuteGroupBy.
func (p *Processor) Execute(q Query) (Result, error) {
	return p.ExecuteCtx(context.Background(), q)
}

// ExecuteCtx runs the three-step bounded execution under a context with
// per-request options. The context (and WithDeadline) is honored at the
// phase boundaries — before the scan, before CHOOSE_REFRESH, before the
// refresh fan-out, and between refresh batches inside it. An execution
// cut short mid-refresh keeps the refreshes that beat the cutoff and
// returns the best guaranteed interval achieved from them; if that
// answer still misses the precision constraint, the error is a typed
// ErrPrecisionUnmet wrapping the context error. Cost-budgeted requests
// (WithCostBudget) that end wider than a finite constraint return the
// narrowest achieved answer with a typed ErrBudgetExhausted.
func (p *Processor) ExecuteCtx(ctx context.Context, q Query, opts ...ExecOption) (Result, error) {
	return p.ExecuteConfig(ctx, q, BuildExecConfig(opts...))
}

// ExecuteConfig is ExecuteCtx over an already-resolved option set; the
// System façade builds the config once and reuses it across phases.
func (p *Processor) ExecuteConfig(ctx context.Context, q Query, cfg ExecConfig) (Result, error) {
	if len(q.GroupBy) > 0 {
		return Result{}, fmt.Errorf("query: GROUP BY query requires ExecuteGroupBy")
	}
	q, ropts := cfg.apply(q, p.opts)
	if cfg.HasBudget && (cfg.Budget < 0 || math.IsNaN(cfg.Budget)) {
		return Result{}, fmt.Errorf("query: invalid cost budget %g", cfg.Budget)
	}
	// The deadline is attached before any dispatch so every path —
	// including the relative-constraint pre-scan — sees it; the config
	// passed onward is cleared to avoid re-deriving the context.
	if !cfg.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, cfg.Deadline)
		defer cancel()
		cfg.Deadline = time.Time{}
	}
	if q.RelativeWithin > 0 {
		rel := q.RelativeWithin
		q.RelativeWithin = 0
		return p.executeRelative(ctx, q, rel, cfg, ropts)
	}
	e := p.entry(q.Table)
	if e == nil {
		return Result{}, fmt.Errorf("%w: %q", ErrUnknownTable, q.Table)
	}
	col, ok := e.schema().Lookup(q.Column)
	if !ok {
		return Result{}, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, q.Table, q.Column)
	}
	if q.Within < 0 || math.IsNaN(q.Within) {
		return Result{}, fmt.Errorf("query: invalid precision constraint %g", q.Within)
	}

	// Scan boundary: a request that arrives already expired does no work.
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}

	// Observability: on the cache-answered fast path a clock read costs
	// more than the scan it would measure, so request/scan latency and
	// width-ratio telemetry are recorded for a uniform 1-in-SampleRate
	// sample of requests (an unbiased estimate of the same
	// distributions, at the price of one atomic add per request).
	// Requests that go on to pay refreshes, and traced requests, are
	// always timed in full.
	m := p.metrics
	tr := cfg.TraceRoot
	if tr == nil && cfg.Trace {
		tr = obs.NewTrace(q.String())
	}
	var root *obs.Span
	if tr != nil {
		root = tr.Root
	}
	sampled := tr != nil || m.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}

	// Step 1: initial bounded answer from cached bounds. The scan holds
	// read locks, so concurrent queries evaluate in parallel. Over a
	// sharded store the answer is folded in one streaming pass (pooled
	// buffers, no Input materialization) — the hot path for queries
	// answered from cache; the Input snapshot is materialized only when
	// refresh selection actually needs it. Flat tables snapshot once and
	// reuse the inputs. The (possibly slow) knapsack solve runs with no
	// lock held.
	var res Result
	res.Trace = tr
	noPred := predicate.IsTrivial(q.Where)

	// Plan-cache lookup: the step-1 answer depends only on the query
	// shape and the relation state, so a memoized fold certified by the
	// relation's mutation counter replaces the scan outright (see
	// plancache.go for the bit-identical argument). The version is read
	// before the scan so a racing mutation can only leave a
	// conservatively stale stamp.
	usePlans := !p.plansOff.Load()
	var pcKey foldKey
	var pcVer uint64
	pcHit := false
	if usePlans {
		pcVer = e.version()
		pcKey = foldKey{col: col, agg: q.Agg, mode: cfg.Mode, pred: predKey(q.Where)}
	}
	pcSp := root.StartSpan("plancache")
	var inputs []aggregate.Input
	var tableLen int
	if usePlans {
		if ent, ok := e.plans.fold(m, pcKey, pcVer); ok {
			pcHit = true
			res.Initial = ent.initial
			tableLen = ent.n
		}
	}
	if pcSp != nil {
		pcSp.SetDetail("hit=%t", pcHit)
		pcSp.End()
	}
	var scanSp *obs.Span
	if !pcHit {
		scanSp = root.StartSpan("scan")
		if e.store != nil {
			res.Initial, tableLen = aggregate.EvalStoreStream(e.store, col, q.Agg, q.Where)
		} else {
			inputs, tableLen = e.snapshot(col, q.Where, ropts.Parallelism)
			res.Initial = aggregate.EvalInputs(inputs, q.Agg, noPred, tableLen)
		}
		if usePlans {
			e.plans.storeFold(pcKey, pcVer, res.Initial, tableLen)
			if inputs != nil {
				e.plans.storeScan(scanKey{col: col, pred: pcKey.pred}, pcVer, inputs, tableLen)
			}
		}
	}
	var tScan time.Time
	if sampled {
		tScan = time.Now()
		m.Scan.ObserveDuration(tScan.Sub(t0))
	}
	if scanSp != nil {
		scanSp.SetDetail("rows=%d width=%g", tableLen, res.Initial.Width())
		scanSp.End()
	}
	res.Answer = res.Initial
	res.Met = Satisfies(res.Answer, q.Within)
	// A budgeted request with no finite constraint always proceeds to
	// spend its budget (Satisfies against R = +Inf is vacuous); every
	// other request is done once the constraint holds from cache alone.
	budgetDual := cfg.HasBudget && cfg.Mode != ModeImprecise
	if res.Met && !(budgetDual && math.IsInf(q.Within, 1)) {
		if sampled {
			m.Request.ObserveDuration(tScan.Sub(t0))
			recordTelemetry(m, &res, q)
		}
		tr.Finish()
		return res, nil
	}
	// Slow path from here: every refresh-paying request is timed and
	// counted in the telemetry, whatever its outcome. A request that
	// skipped the sampled fast-path clocks starts its clock here, at the
	// plan boundary — undercounting only the ~µs scan against work that
	// runs for orders of magnitude longer.
	if !sampled {
		t0 = time.Now()
	}
	defer func() {
		m.Request.ObserveDuration(time.Since(t0))
		recordTelemetry(m, &res, q)
		tr.Finish()
	}()

	// Plan boundary.
	if err := ctx.Err(); err != nil {
		return cutoff(res, q, err)
	}

	// Step 2: choose refreshes from a snapshot, fetch the exact values
	// outside any table lock — slow sources must not block other
	// queries' scans — and install them write-locking only the shards
	// owning keys in the plan. A memoized classified snapshot (stamped
	// with an unchanged mutation counter) replaces the collection pass:
	// the planners treat inputs as read-only, so sharing is safe.
	if inputs == nil {
		scKey := scanKey{col: col, pred: predKey(q.Where)}
		if usePlans {
			if sc, ok := e.plans.scan(scKey, e.version()); ok {
				inputs, tableLen = sc.inputs, sc.n
			}
		}
		if inputs == nil {
			v := e.version()
			inputs, tableLen = e.snapshot(col, q.Where, ropts.Parallelism)
			if usePlans && inputs != nil {
				e.plans.storeScan(scKey, v, inputs, tableLen)
			}
		}
	}
	chooseSp := root.StartSpan("choose")
	start := time.Now()
	plan, err := choosePlan(inputs, q, noPred, tableLen, cfg, ropts)
	res.ChooseTime = time.Since(start)
	m.Choose.ObserveDuration(res.ChooseTime)
	if chooseSp != nil {
		chooseSp.SetDetail("%s", plan.Describe())
		chooseSp.End()
	}
	if err != nil {
		return res, err
	}
	var ctxErr error
	if plan.Len() > 0 {
		if e.oracle == nil {
			return res, fmt.Errorf("%w: %q", ErrNoOracle, q.Table)
		}
		// Fan-out boundary.
		if err := ctx.Err(); err != nil {
			return cutoff(res, q, err)
		}
		refreshSp := root.StartSpan("refresh")
		tRef := time.Now()
		var hardErr error
		ctxErr, hardErr = runPlan(obs.ContextWithSpan(ctx, refreshSp), e, plan, &res, tr)
		m.Refresh.ObserveDuration(time.Since(tRef))
		refreshSp.End()
		if hardErr != nil {
			return res, hardErr
		}

		// Step 3: recompute from the (possibly partially) refreshed
		// cache. A cutoff mid-fan-out still recomputes: the refreshes
		// that beat it are paid and installed, and the best-effort answer
		// must reflect them.
		foldSp := root.StartSpan("fold")
		tFold := time.Now()
		// The post-refresh state is what the next same-shape request will
		// scan, so memoize the refold under the version read before it —
		// repeat constrained shapes then hit on their initial scan.
		var vFold uint64
		if usePlans {
			vFold = e.version()
		}
		if e.store != nil {
			res.Answer, tableLen = aggregate.EvalStoreStream(e.store, col, q.Agg, q.Where)
		} else {
			inputs, tableLen = e.snapshot(col, q.Where, ropts.Parallelism)
			res.Answer = aggregate.EvalInputs(inputs, q.Agg, noPred, tableLen)
		}
		if usePlans {
			e.plans.storeFold(pcKey, vFold, res.Answer, tableLen)
		}
		m.Fold.ObserveDuration(time.Since(tFold))
		if foldSp != nil {
			foldSp.SetDetail("width=%g", res.Answer.Width())
			foldSp.End()
		}
		res.Met = Satisfies(res.Answer, q.Within)
	}
	if ctxErr != nil && !res.Met {
		return res, ErrPrecisionUnmet{Achieved: res.Answer, Spent: res.RefreshCost, Cause: ctxErr}
	}
	if ctxErr != nil {
		return res, nil // cut short, but the constraint held anyway
	}
	if budgetDual && !res.Met && !math.IsInf(q.Within, 1) {
		return res, ErrBudgetExhausted{Achieved: res.Answer, Spent: res.RefreshCost, Budget: cfg.Budget}
	}
	return res, nil
}

// ChoosePlan selects the refresh plan for one request — the exact plan
// selection ExecuteConfig runs between its scan and refresh phases.
// Exported for the partition coordinator: planning over the merged
// canonical inputs of all partitions with this function yields the same
// plan a single node holding the whole relation would compute.
func ChoosePlan(inputs []aggregate.Input, q Query, noPred bool, tableLen int, cfg ExecConfig, opts refresh.Options) (refresh.Plan, error) {
	return choosePlan(inputs, q, noPred, tableLen, cfg, opts)
}

// choosePlan selects the refresh plan for one request. Cost-budgeted
// requests with a finite constraint R first try the classic minimum-cost
// plan for R and keep it when it fits the budget (meeting R as cheaply
// as possible); otherwise — and always for budgeted requests with
// R = +Inf — the cost-bounded dual maximizes width reduction within the
// budget.
func choosePlan(inputs []aggregate.Input, q Query, noPred bool, tableLen int, cfg ExecConfig, opts refresh.Options) (refresh.Plan, error) {
	if cfg.HasBudget && cfg.Mode != ModeImprecise {
		if !math.IsInf(q.Within, 1) {
			classic, err := refresh.ChooseFromInputs(inputs, q.Agg, noPred, q.Within, tableLen, opts)
			if err != nil {
				return classic, err
			}
			if classic.Cost <= cfg.Budget {
				return classic, nil
			}
		}
		return refresh.ChooseBudget(inputs, q.Agg, noPred, cfg.Budget, tableLen, opts)
	}
	return refresh.ChooseFromInputs(inputs, q.Agg, noPred, q.Within, tableLen, opts)
}

// cutoff shapes the result of a request stopped by context cancellation
// or deadline expiry before its constraint was reached: the best
// guaranteed interval achieved so far is returned, with a typed
// ErrPrecisionUnmet when the constraint is still unmet and the bare
// context error when it already held (so callers never mistake a
// satisfied answer for a failed one).
func cutoff(res Result, q Query, cause error) (Result, error) {
	if Satisfies(res.Answer, q.Within) {
		return res, cause
	}
	return res, ErrPrecisionUnmet{Achieved: res.Answer, Spent: res.RefreshCost, Cause: cause}
}

// runPlan executes the refresh phase of a chosen plan against the
// entry's oracle, accumulating the per-key accounting of what actually
// reached the table into res. It returns a context error separately from
// hard errors: on a cutoff the refreshes that beat it are already
// installed and counted, and the caller folds them into a best-effort
// answer.
func runPlan(ctx context.Context, e *tableEntry, plan refresh.Plan, res *Result, tr *obs.Trace) (ctxErr, hardErr error) {
	tr.SetPlanCosts(plan.Keys, plan.Costs)
	// Report what was actually refreshed: keys dropped mid-flight are
	// neither served nor charged, so they must not be counted.
	vals, ctxErr, hardErr := fetchKeys(ctx, e, plan.Keys)
	// The paid costs fold in plan order — a deterministic float addition
	// sequence the trace replays, so Trace.TotalCost() matches
	// res.RefreshCost bit-exactly.
	sp := obs.SpanFromContext(ctx)
	var installed []int64
	if sp != nil {
		installed = make([]int64, 0, len(vals))
	}
	for j, key := range plan.Keys {
		if _, ok := vals[key]; !ok {
			continue
		}
		res.Refreshed++
		res.RefreshCost += plan.Costs[j]
		if sp != nil {
			installed = append(installed, key)
		}
	}
	sp.RecordKeys(installed)
	return ctxErr, hardErr
}

// recordTelemetry records the paper's precision–cost telemetry for one
// completed request: the achieved interval width relative to the
// requested bound (permille; 1000 = exactly at the bound) and the
// refresh cost paid per unit of width reduction (milli units).
func recordTelemetry(m *obs.EngineMetrics, res *Result, q Query) {
	if q.Within > 0 && !math.IsInf(q.Within, 1) && !res.Answer.IsEmpty() {
		if w := res.Answer.Width(); w >= 0 && !math.IsInf(w, 1) && !math.IsNaN(w) {
			m.WidthRatio.Observe(clampCounter(1000 * w / q.Within))
		}
	}
	if res.RefreshCost > 0 {
		red := res.Initial.Width() - res.Answer.Width()
		if red > 0 && !math.IsInf(red, 1) && !math.IsNaN(red) {
			m.CostPerWidth.Observe(clampCounter(1000 * res.RefreshCost / red))
		}
	}
}

// clampCounter converts a nonnegative telemetry ratio to a histogram
// value, clamping pathological magnitudes so the conversion stays
// defined.
func clampCounter(v float64) uint64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1e15 {
		return 1e15
	}
	return uint64(v)
}

// fetchKeys runs one refresh round for the given keys through the
// entry's oracle — the shared oracle protocol of both the single-query
// refresh phase (runPlan) and the batch executor's per-table union
// rounds. The returned map holds exactly the keys whose refresh reached
// the table (dropped keys and replies that lost to newer pushes are
// absent). A context cutoff is returned separately from hard errors: on
// a cutoff the refreshes that beat it are already installed, charged,
// and present in the map.
func fetchKeys(ctx context.Context, e *tableEntry, keys []int64) (vals map[int64][]float64, ctxErr, hardErr error) {
	switch b := e.oracle.(type) {
	case BatchOracleCtx:
		// The batch oracle fetches per source in parallel and installs
		// the refreshed bounds itself (see BatchOracle); on a context
		// error the reply holds the partial set that beat the cutoff.
		vals, err := b.MasterBatchCtx(ctx, keys)
		if err != nil {
			if parallel.IsContextError(err) {
				return vals, err, nil
			}
			return vals, nil, err
		}
		return vals, nil, nil
	case BatchOracle:
		vals, err := b.MasterBatch(keys)
		if err != nil {
			return nil, nil, err
		}
		return vals, nil, nil
	default:
		// Plain per-key oracle: the context is honored between keys, so
		// a cutoff keeps the keys already fetched and installed.
		vals := make(map[int64][]float64, len(keys))
		for _, key := range keys {
			if err := ctx.Err(); err != nil {
				return vals, err, nil
			}
			v, ok := e.oracle.Master(key)
			if !ok {
				return vals, nil, fmt.Errorf("query: oracle has no master values for key %d", key)
			}
			// A dropped key no longer contributes; nothing to install.
			installed, err := e.install(key, v)
			if err != nil {
				return vals, nil, err
			}
			if installed {
				vals[key] = v
			}
		}
		return vals, nil, nil
	}
}

// Satisfies reports whether a bounded answer meets an absolute precision
// constraint R (with a float tolerance). An empty answer (exactly
// undefined aggregate) is trivially precise. The continuous-query engine
// uses it to decide, per subscription, whether a maintained answer still
// honors its standing constraint.
func Satisfies(a interval.Interval, r float64) bool {
	if a.IsEmpty() {
		return true
	}
	return a.Width() <= r+1e-9
}

// PreciseMode executes the query by refreshing every tuple that might
// contribute, the "query the sources" extreme of Figure 1(a). It is the
// baseline for the precision-performance experiments.
//
// Deprecated: use ExecuteCtx with WithMode(ModePrecise).
func (p *Processor) PreciseMode(q Query) (Result, error) {
	return p.ExecuteCtx(context.Background(), q, WithMode(ModePrecise))
}

// ImpreciseMode executes the query over cached bounds only, the "query the
// cache" extreme of Figure 1(a): no refreshes, no guarantees about width.
//
// Deprecated: use ExecuteCtx with WithMode(ModeImprecise).
func (p *Processor) ImpreciseMode(q Query) (Result, error) {
	return p.ExecuteCtx(context.Background(), q, WithMode(ModeImprecise))
}
