package query

// Cross-query batch execution. ExecuteBatch plans every query first,
// merges the refresh plans into one deduped batched refresh per table
// (which the cache fans out as one batched request per source — the same
// machinery the continuous scheduler's shared refresh rounds use), then
// answers each query. A tuple needed by several queries is fetched and
// paid for once; each query's Result still attributes the full per-key
// cost of its own plan, exactly as a standalone execution would, so the
// network-level saving is the difference between the union's cost and
// the sum of the attributions.
//
// # Answer semantics
//
// Each query is answered from its own plan only: the step-1 snapshot is
// patched with the refreshed tuples of that query's plan and re-folded
// in canonical order. Tuples another query's plan refreshed do not leak
// into the answer. This makes every batch answer bit-identical to
// executing the same query alone on an identical system — the batch
// changes what the fleet pays, never what any caller observes.
//
// Queries sharing a (table, column, predicate) shape share one
// classification scan, so a multi-aggregate SQL statement
// (SELECT MIN(v), MAX(v) WITHIN 5 FROM t) compiles to a batch that scans
// once, plans per aggregate, and refreshes the union.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/predicate"
	"trapp/internal/refresh"
	"trapp/internal/relation"
)

// batchItem is one query's in-flight state during ExecuteBatch.
type batchItem struct {
	q      Query
	e      *tableEntry
	col    int
	noPred bool
	snap   *batchSnapshot
	plan   refresh.Plan
	res    Result
	err    error
}

// batchSnapshot is one shared classification scan.
type batchSnapshot struct {
	inputs   []aggregate.Input
	tableLen int
}

// snapshotKey identifies a shareable scan: same table, aggregation
// column and predicate shape.
func snapshotKey(q Query, col int) string {
	w := "TRUE"
	if !predicate.IsTrivial(q.Where) {
		w = q.Where.String()
	}
	return fmt.Sprintf("%s\x00%d\x00%s", q.Table, col, w)
}

// ExecuteBatch executes a set of scalar bounded queries as one batch:
// shared classification scans, per-query CHOOSE_REFRESH (honoring the
// request options, including WithCostBudget's dual), one deduped
// refresh round per table, and per-query answers bit-identical to
// standalone execution. The returned slice always aligns index-for-index
// with qs. Validation problems (unknown table or column, GROUP BY
// queries, invalid constraints) fail the whole batch before any refresh
// is paid; per-query execution outcomes (ErrBudgetExhausted, a
// deadline's ErrPrecisionUnmet) are joined into the returned error while
// every Result still carries its best achieved answer — use errors.Is /
// errors.As on the joined error.
func (p *Processor) ExecuteBatch(ctx context.Context, qs []Query, opts ...ExecOption) ([]Result, error) {
	return p.ExecuteBatchConfig(ctx, qs, BuildExecConfig(opts...))
}

// ExecuteBatchConfig is ExecuteBatch over an already-resolved option
// set.
func (p *Processor) ExecuteBatchConfig(ctx context.Context, qs []Query, cfg ExecConfig) ([]Result, error) {
	results, perQuery, err := p.ExecuteBatchDetailed(ctx, qs, cfg)
	if err != nil {
		return nil, err
	}
	return results, JoinBatchErrors(perQuery)
}

// JoinBatchErrors joins per-query batch outcomes into one error,
// annotating each with its query index (nil when none failed).
func JoinBatchErrors(perQuery []error) error {
	var errs []error
	for i, e := range perQuery {
		if e != nil {
			errs = append(errs, fmt.Errorf("batch %d: %w", i, e))
		}
	}
	return errors.Join(errs...)
}

// ExecuteBatchDetailed is the batch executor with per-query outcomes
// kept separate: results and perQuery align index-for-index with qs
// (perQuery entries are nil, ErrBudgetExhausted, or ErrPrecisionUnmet),
// and err reports whole-batch failures (validation, hard oracle
// errors). The System façade uses it to post-process individual
// results — e.g. the §8.3 slack-COUNT widening — without losing the
// typed per-query errors' field consistency.
func (p *Processor) ExecuteBatchDetailed(ctx context.Context, qs []Query, cfg ExecConfig) ([]Result, []error, error) {
	if len(qs) == 0 {
		return nil, nil, nil
	}
	if cfg.HasBudget && (cfg.Budget < 0 || math.IsNaN(cfg.Budget)) {
		return nil, nil, fmt.Errorf("query: invalid cost budget %g", cfg.Budget)
	}
	if !cfg.Deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, cfg.Deadline)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Validate every query and share classification scans per
	// (table, column, predicate) shape. The refresh options are purely
	// request-level (solver override), so they are resolved once for the
	// whole batch.
	items := make([]batchItem, len(qs))
	snaps := make(map[string]*batchSnapshot)
	_, ropts := cfg.apply(Query{}, p.opts)
	for i, q := range qs {
		if len(q.GroupBy) > 0 {
			return nil, nil, fmt.Errorf("query: batch %d: GROUP BY queries are not batchable; use ExecuteGroupBy", i)
		}
		q, _ = cfg.apply(q, p.opts)
		e := p.entry(q.Table)
		if e == nil {
			return nil, nil, fmt.Errorf("batch %d: %w: %q", i, ErrUnknownTable, q.Table)
		}
		col, ok := e.schema().Lookup(q.Column)
		if !ok {
			return nil, nil, fmt.Errorf("batch %d: %w: %q.%q", i, ErrUnknownColumn, q.Table, q.Column)
		}
		if q.RelativeWithin < 0 || math.IsNaN(q.RelativeWithin) {
			return nil, nil, fmt.Errorf("query: batch %d: invalid relative precision %g", i, q.RelativeWithin)
		}
		if q.RelativeWithin == 0 && (q.Within < 0 || math.IsNaN(q.Within)) {
			return nil, nil, fmt.Errorf("query: batch %d: invalid precision constraint %g", i, q.Within)
		}
		key := snapshotKey(q, col)
		snap := snaps[key]
		if snap == nil {
			// Share classified snapshots with the plan cache: a memoized
			// snapshot certified by the relation's mutation counter
			// replaces the collection pass, and fresh collections are
			// memoized for later requests (see plancache.go).
			usePlans := !p.plansOff.Load()
			scKey := scanKey{col: col, pred: predKey(q.Where)}
			if usePlans {
				if sc, ok := e.plans.scan(scKey, e.version()); ok {
					snap = &batchSnapshot{inputs: sc.inputs, tableLen: sc.n}
				}
			}
			if snap == nil {
				v := e.version()
				inputs, tableLen := e.snapshot(col, q.Where, ropts.Parallelism)
				snap = &batchSnapshot{inputs: inputs, tableLen: tableLen}
				if usePlans && inputs != nil {
					e.plans.storeScan(scKey, v, inputs, tableLen)
				}
			}
			snaps[key] = snap
		}
		items[i] = batchItem{q: q, e: e, col: col, noPred: predicate.IsTrivial(q.Where), snap: snap}
	}

	// Step 1 + step 2 planning for every query, before any refresh.
	budgetDual := cfg.HasBudget && cfg.Mode != ModeImprecise
	for i := range items {
		it := &items[i]
		it.res.Initial = aggregate.EvalInputs(it.snap.inputs, it.q.Agg, it.noPred, it.snap.tableLen)
		it.res.Answer = it.res.Initial
		if it.q.RelativeWithin > 0 {
			rel := it.q.RelativeWithin
			it.q.RelativeWithin = 0
			it.q.Within = RelativeR(it.res.Initial, rel)
		}
		it.res.Met = Satisfies(it.res.Answer, it.q.Within)
		if it.res.Met && !(budgetDual && math.IsInf(it.q.Within, 1)) {
			continue
		}
		start := time.Now()
		plan, err := choosePlan(it.snap.inputs, it.q, it.noPred, it.snap.tableLen, cfg, ropts)
		it.res.ChooseTime = time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("batch %d: %w", i, err)
		}
		it.plan = plan
		if plan.Len() > 0 && it.e.oracle == nil {
			return nil, nil, fmt.Errorf("batch %d: %w: %q", i, ErrNoOracle, it.q.Table)
		}
	}

	// Merge the plans into one deduped refresh round per table and run
	// them. The fan-out boundary honors the context; a cutoff leaves
	// later tables unfetched and their queries fall back to cached-bound
	// answers plus whatever partial refreshes beat the deadline.
	type tableUnion struct {
		e    *tableEntry
		keys []int64
		seen map[int64]bool
	}
	unions := make(map[*tableEntry]*tableUnion)
	var order []*tableUnion
	for i := range items {
		it := &items[i]
		if it.plan.Len() == 0 {
			continue
		}
		u := unions[it.e]
		if u == nil {
			u = &tableUnion{e: it.e, seen: make(map[int64]bool)}
			unions[it.e] = u
			order = append(order, u)
		}
		for _, key := range it.plan.Keys {
			if !u.seen[key] {
				u.seen[key] = true
				u.keys = append(u.keys, key)
			}
		}
	}
	refreshedVals := make(map[*tableEntry]map[int64][]float64, len(order))
	var ctxErr error
	for _, u := range order {
		if err := ctx.Err(); err != nil {
			ctxErr = err
			break
		}
		vals, cErr, hardErr := fetchKeys(ctx, u.e, u.keys)
		if vals != nil {
			refreshedVals[u.e] = vals
		}
		if hardErr != nil {
			return nil, nil, hardErr
		}
		if cErr != nil {
			ctxErr = cErr
			break
		}
	}

	// Step 3: answer each query from its own plan's refreshed tuples.
	perQuery := make([]error, len(qs))
	results := make([]Result, len(qs))
	for i := range items {
		it := &items[i]
		finalizeBatchItem(it, refreshedVals[it.e], ctxErr, budgetDual, cfg.Budget)
		perQuery[i] = it.err
		results[i] = it.res
	}
	return results, perQuery, nil
}

// finalizeBatchItem computes one query's final answer from its snapshot
// patched with the refreshed tuples of its own plan, and shapes its
// per-query error (budget exhaustion, deadline cutoff) exactly as the
// standalone execution path would.
func finalizeBatchItem(it *batchItem, vals map[int64][]float64, ctxErr error, budgetDual bool, budget float64) {
	if it.plan.Len() == 0 {
		// Answered from cache alone (or the budget bought nothing).
		if budgetDual && !it.res.Met && !math.IsInf(it.q.Within, 1) && ctxErr == nil {
			it.err = ErrBudgetExhausted{Achieved: it.res.Answer, Spent: 0, Budget: budget}
		} else if ctxErr != nil && !it.res.Met {
			it.err = ErrPrecisionUnmet{Achieved: it.res.Answer, Spent: 0, Cause: ctxErr}
		}
		return
	}
	costOf := make(map[int64]float64, it.plan.Len())
	for j, k := range it.plan.Keys {
		costOf[k] = it.plan.Costs[j]
	}
	mine := make(map[int64]bool, it.plan.Len())
	for _, key := range it.plan.Keys {
		if _, ok := vals[key]; ok {
			mine[key] = true
			it.res.Refreshed++
			it.res.RefreshCost += costOf[key]
		}
	}
	patched := it.snap.inputs
	if len(mine) > 0 {
		patched = make([]aggregate.Input, 0, len(it.snap.inputs))
		for _, in := range it.snap.inputs {
			if !mine[in.Key] {
				patched = append(patched, in)
				continue
			}
			var ni aggregate.Input
			contributes := false
			present := it.e.viewTuple(in.Key, func(tu *relation.Tuple) {
				ni, contributes = aggregate.CollectOne(tu, it.col, it.q.Where, true)
			})
			// A tuple dropped mid-flight, or reclassified to T− by its
			// refreshed point values, no longer contributes.
			if !present || !contributes {
				continue
			}
			ni.Index = in.Index
			patched = append(patched, ni)
		}
	}
	it.res.Answer = aggregate.EvalInputs(patched, it.q.Agg, it.noPred, it.snap.tableLen)
	it.res.Met = Satisfies(it.res.Answer, it.q.Within)
	switch {
	case ctxErr != nil && !it.res.Met:
		it.err = ErrPrecisionUnmet{Achieved: it.res.Answer, Spent: it.res.RefreshCost, Cause: ctxErr}
	case ctxErr == nil && budgetDual && !it.res.Met && !math.IsInf(it.q.Within, 1):
		it.err = ErrBudgetExhausted{Achieved: it.res.Answer, Spent: it.res.RefreshCost, Budget: budget}
	}
}

// viewTuple runs fn on the current tuple for key under the appropriate
// read lock, reporting whether the key is present.
func (e *tableEntry) viewTuple(key int64, fn func(tu *relation.Tuple)) bool {
	if e.store != nil {
		return e.store.View(key, func(t *relation.Table, i int) { fn(t.At(i)) })
	}
	e.lock.RLock()
	defer e.lock.RUnlock()
	i := e.table.ByKey(key)
	if i < 0 {
		return false
	}
	fn(e.table.At(i))
	return true
}
