package query

// Property-based metamorphic tests over randomized tables and queries,
// run against every physical store layout (flat table, one-shard store,
// and sharded stores). Two properties anchor the paper's contract:
//
//   - Soundness: every returned interval contains the exact answer
//     computed from the master values — at every precision constraint,
//     after any mix of refreshes.
//   - Monotonicity (the precision-performance tradeoff, Figure 1(b)):
//     loosening the precision constraint never increases the plan's
//     refresh cost. Each constraint runs against a freshly built system
//     so costs are comparable (refreshes mutate cached state).
//
// Layouts are also cross-checked: identical workloads must produce
// bit-identical answers and refresh accounting on every layout.

import (
	"math"
	"math/rand"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

// metaSchema: one exact dimension g, two bounded measurements v, w.
func metaSchema() *relation.Schema {
	return relation.NewSchema(
		relation.Column{Name: "g", Kind: relation.Exact},
		relation.Column{Name: "v", Kind: relation.Bounded},
		relation.Column{Name: "w", Kind: relation.Bounded},
	)
}

// metaRow is one generated tuple with its hidden master values.
type metaRow struct {
	key    int64
	g      float64
	mv, mw float64 // master values of v and w
	bv, bw interval.Interval
	cost   float64
}

// genRows generates a random table whose cached bounds are sound
// (every bound contains its master value) with a mix of tight, loose
// and point bounds and non-uniform refresh costs.
func genRows(rng *rand.Rand) []metaRow {
	n := rng.Intn(40)
	rows := make([]metaRow, 0, n)
	for i := 0; i < n; i++ {
		r := metaRow{
			key:  int64(i + 1),
			g:    float64(rng.Intn(3)),
			mv:   rng.Float64()*100 - 50,
			mw:   rng.Float64()*100 - 50,
			cost: float64(1 + rng.Intn(10)),
		}
		width := func() float64 {
			switch rng.Intn(4) {
			case 0:
				return 0 // already-exact cache entry
			case 1:
				return rng.Float64() * 2
			default:
				return rng.Float64() * 15
			}
		}
		span := func(m float64) interval.Interval {
			w := width()
			// The master sits anywhere inside the bound, not centered.
			lo := m - rng.Float64()*w
			return interval.New(lo, lo+w)
		}
		r.bv, r.bw = span(r.mv), span(r.mw)
		rows = append(rows, r)
	}
	return rows
}

// layouts are the physical store arrangements under test; build
// registers the generated rows under the given name with a master-value
// oracle.
var layouts = []struct {
	name  string
	build func(rows []metaRow, opts refresh.Options) *Processor
}{
	{"flat", func(rows []metaRow, opts refresh.Options) *Processor {
		p := NewProcessor(opts)
		t := relation.NewTable(metaSchema())
		for _, r := range rows {
			t.MustInsert(relation.Tuple{
				Key:    r.key,
				Bounds: []interval.Interval{interval.Point(r.g), r.bv, r.bw},
				Cost:   r.cost,
			})
		}
		p.Register("m", t, oracleOf(rows))
		return p
	}},
	{"store-1", storeLayout(1)},
	{"store-4", storeLayout(4)},
	{"store-default", storeLayout(0)},
}

// storeLayout builds a sharded-store registration with nshards shards.
func storeLayout(nshards int) func([]metaRow, refresh.Options) *Processor {
	return func(rows []metaRow, opts refresh.Options) *Processor {
		p := NewProcessor(opts)
		st := relation.NewStore(metaSchema(), nshards)
		for _, r := range rows {
			st.MustInsert(relation.Tuple{
				Key:    r.key,
				Bounds: []interval.Interval{interval.Point(r.g), r.bv, r.bw},
				Cost:   r.cost,
			})
		}
		p.RegisterStore("m", st, oracleOf(rows))
		return p
	}
}

// oracleOf exposes the master values of the bounded columns.
func oracleOf(rows []metaRow) workload.MapOracle {
	m := make(workload.MapOracle, len(rows))
	for _, r := range rows {
		m[r.key] = []float64{r.mv, r.mw}
	}
	return m
}

// genQuery builds a random query over the generated schema: any
// aggregate, with predicates over exact and bounded columns (bounded
// predicates exercise the T? membership machinery).
func genQuery(rng *rand.Rand) Query {
	aggs := []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum, aggregate.Count, aggregate.Avg}
	q := NewQuery("m", aggs[rng.Intn(len(aggs))], "v")
	col := func(i int, name string) predicate.Operand { return predicate.Column(i, name) }
	c := func() predicate.Operand { return predicate.Const(rng.Float64()*80 - 40) }
	switch rng.Intn(6) {
	case 0: // no predicate
	case 1:
		q.Where = predicate.NewCmp(col(0, "g"), predicate.Eq, predicate.Const(float64(rng.Intn(3))))
	case 2:
		q.Where = predicate.NewCmp(col(1, "v"), predicate.Lt, c())
	case 3:
		q.Where = predicate.NewCmp(col(2, "w"), predicate.Ge, c())
	case 4:
		q.Where = predicate.NewAnd(
			predicate.NewCmp(col(1, "v"), predicate.Gt, c()),
			predicate.NewCmp(col(2, "w"), predicate.Lt, c()))
	default:
		q.Where = predicate.NewNot(predicate.NewCmp(col(1, "v"), predicate.Le, c()))
	}
	return q
}

// exactAnswer computes the ground truth from master values; defined is
// false when the selection is empty and the aggregate undefined over it.
func exactAnswer(rows []metaRow, q Query) (float64, bool) {
	var sel []float64
	for _, r := range rows {
		vals := []float64{r.g, r.mv, r.mw}
		if q.Where == nil || q.Where.EvalExact(vals) {
			sel = append(sel, r.mv)
		}
	}
	switch q.Agg {
	case aggregate.Count:
		return float64(len(sel)), true
	case aggregate.Sum:
		var s float64
		for _, v := range sel {
			s += v
		}
		return s, true
	}
	if len(sel) == 0 {
		return 0, false
	}
	switch q.Agg {
	case aggregate.Min:
		m := math.Inf(1)
		for _, v := range sel {
			m = math.Min(m, v)
		}
		return m, true
	case aggregate.Max:
		m := math.Inf(-1)
		for _, v := range sel {
			m = math.Max(m, v)
		}
		return m, true
	default: // Avg
		var s float64
		for _, v := range sel {
			s += v
		}
		return s / float64(len(sel)), true
	}
}

const metaEps = 1e-7

func TestMetamorphicLoosenNeverCostsMore(t *testing.T) {
	const trials = 60
	opts := refresh.Options{Solver: refresh.SolverGreedyDensity}
	for _, layout := range layouts {
		t.Run(layout.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(20000615 + int64(len(layout.name))))
			for trial := 0; trial < trials; trial++ {
				rows := genRows(rng)
				q := genQuery(rng)
				exact, defined := exactAnswer(rows, q)

				// The unconstrained width anchors the constraint ladder.
				base := layout.build(rows, opts)
				res0, err := base.Execute(q)
				if err != nil {
					t.Fatalf("trial %d: unconstrained: %v", trial, err)
				}
				w0 := res0.Answer.Width()
				if math.IsInf(w0, 1) || math.IsNaN(w0) {
					continue // undefined-aggregate corner (empty possible set)
				}

				// Tightening ladder: R from +Inf down to 0. Loosening R
				// never increases cost ⇒ walking the ladder downward the
				// cost must be non-decreasing.
				ladder := []float64{math.Inf(1), w0 * 0.75, w0 * 0.5, w0 * 0.25, 0}
				prevCost := -1.0
				for li, r := range ladder {
					qq := q
					qq.Within = r
					p := layout.build(rows, opts)
					res, err := p.Execute(qq)
					if err != nil {
						t.Fatalf("trial %d R=%g: %v", trial, r, err)
					}
					if !res.Met {
						t.Fatalf("trial %d R=%g: constraint unmet (answer %v)", trial, r, res.Answer)
					}
					if !math.IsInf(r, 1) && res.Answer.Width() > r+metaEps {
						t.Fatalf("trial %d R=%g: width %g exceeds constraint", trial, r, res.Answer.Width())
					}
					if defined && !res.Answer.Expand(metaEps).Contains(exact) {
						t.Fatalf("trial %d R=%g (%s): answer %v does not contain exact %g",
							trial, r, qq, res.Answer, exact)
					}
					if res.RefreshCost < prevCost-metaEps {
						t.Fatalf("trial %d: tightening R to %g DECREASED cost %g → %g (ladder step %d) — loosening would increase it",
							trial, r, prevCost, res.RefreshCost, li)
					}
					prevCost = math.Max(prevCost, res.RefreshCost)
				}
			}
		})
	}
}

func TestMetamorphicLayoutsAgreeBitForBit(t *testing.T) {
	const trials = 40
	opts := refresh.Options{Solver: refresh.SolverGreedyDensity}
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < trials; trial++ {
		rows := genRows(rng)
		q := genQuery(rng)
		// Tight enough to force refresh planning on most trials.
		base := layouts[0].build(rows, opts)
		res0, err := base.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if w := res0.Answer.Width(); !math.IsInf(w, 1) && !math.IsNaN(w) {
			q.Within = w * 0.3
		}

		type outcome struct {
			res Result
			err error
		}
		var ref outcome
		for i, layout := range layouts {
			p := layout.build(rows, opts)
			res, err := p.Execute(q)
			res.ChooseTime = 0
			got := outcome{res, err}
			if i == 0 {
				ref = got
				continue
			}
			if (got.err == nil) != (ref.err == nil) {
				t.Fatalf("trial %d (%s): layout %s error %v, flat error %v", trial, q, layout.name, got.err, ref.err)
			}
			if got.res != ref.res {
				t.Fatalf("trial %d (%s): layout %s result %+v != flat %+v", trial, q, layout.name, got.res, ref.res)
			}
		}
	}
}

// TestMetamorphicCachedVsColdLockstep replays identical query sequences
// against two identically-built processors — one with the shape-keyed
// plan cache enabled, one with it disabled — and demands bit-identical
// results at every step. Repeats of the same query hit the cache on the
// warm side (and only there), while refreshes mutate both systems in
// lockstep, so the comparison covers hit-after-prime, invalidation
// after refresh installs, and the cold baseline all at once.
func TestMetamorphicCachedVsColdLockstep(t *testing.T) {
	const trials = 40
	opts := refresh.Options{Solver: refresh.SolverGreedyDensity}
	for _, layout := range layouts {
		t.Run(layout.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(80808 + int64(len(layout.name))))
			var warmHits int64
			for trial := 0; trial < trials; trial++ {
				rows := genRows(rng)
				warm := layout.build(rows, opts)
				cold := layout.build(rows, opts)
				cold.SetPlanCache(false)

				q := genQuery(rng)
				base, err := warm.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				if w := base.Answer.Width(); !math.IsInf(w, 1) && !math.IsNaN(w) {
					q.Within = w * 0.4 // forces refresh planning on most trials
				}
				// Each repeat re-primes or hits the warm cache; refreshes
				// installed by constrained runs invalidate it in between.
				for rep := 0; rep < 3; rep++ {
					wres, werr := warm.Execute(q)
					cres, cerr := cold.Execute(q)
					if (werr == nil) != (cerr == nil) {
						t.Fatalf("trial %d rep %d (%s): errors differ: warm %v, cold %v", trial, rep, q, werr, cerr)
					}
					if werr != nil {
						break
					}
					wres.ChooseTime, cres.ChooseTime = 0, 0
					if wres != cres {
						t.Fatalf("trial %d rep %d (%s):\nwarm %+v\ncold %+v", trial, rep, q, wres, cres)
					}
				}
				warmHits += warm.Metrics().PlanHits.Load()
				if cold.Metrics().PlanHits.Load() != 0 {
					t.Fatal("cold processor served from its plan cache")
				}
			}
			if warmHits == 0 {
				t.Fatal("warm side never hit the plan cache; lockstep exercised nothing")
			}
		})
	}
}
