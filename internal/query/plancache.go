package query

// Shape-keyed plan/classification cache (ROADMAP item 4; cf. the CSE
// pass referenced in ISSUE 8): the scan-and-classify phase of bounded
// execution depends only on the query's *shape* — the table, the
// aggregation column, the aggregate, the predicate, and the execution
// mode — never on the precision constraint R, which enters only at
// CHOOSE_REFRESH. Repeat requests with the same shape (the dominant
// pattern on a serving tier: few statements, many callers) can therefore
// skip step 1 entirely and, when they still need refresh planning, skip
// the Input materialization too.
//
// Correctness contract: a memoized result may be served only if the
// relation provably did not mutate since it was computed. The validation
// token is the storage layer's mutation counter (relation.Table.Version /
// relation.Store.Version), which every write path bumps *after* its
// write: the cache stamps entries with a version read *before* the scan,
// so a mutation racing the scan leaves a stale stamp and the entry dies
// on its next lookup — staleness errors are only ever in the
// conservative (re-scan) direction, and a hit is bit-identical to the
// cold path by construction (same deterministic fold over certified
// identical state). The cache deliberately does not consume the
// cache-layer's SetListener change events: that single listener slot is
// owned by the continuous engine, and listener events only cover
// cache-originated writes, while the storage counter also covers
// processor-side refresh installs and direct table writes.
//
// Shared []aggregate.Input snapshots are handed out read-only; the
// refresh planners copy candidates before sorting (see refresh package),
// so sharing is safe.

import (
	"sync"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/obs"
	"trapp/internal/predicate"
)

// foldKey identifies a memoized step-1 answer: the canonical query shape
// (table is implicit — the cache lives on the table's registration).
type foldKey struct {
	col  int
	agg  aggregate.Func
	mode Mode
	pred string // canonical predicate rendering; "" when trivial
}

// scanKey identifies a memoized classified snapshot; the aggregate and
// mode do not affect classification, so shapes differing only in those
// share one snapshot.
type scanKey struct {
	col  int
	pred string
}

// foldEntry is a memoized initial bounded answer.
type foldEntry struct {
	version uint64
	initial interval.Interval
	n       int // table cardinality at scan time
}

// scanEntry is a memoized classified snapshot: the canonical key-ordered
// inputs CHOOSE_REFRESH consumes. The slice is shared read-only.
type scanEntry struct {
	version uint64
	inputs  []aggregate.Input
	n       int
}

// Bounded sizes: serving workloads have few shapes; adversarial ones
// (unique predicate constants per request) must not grow memory without
// bound. On overflow the maps are cleared — rare, cheap, and self-healing.
const (
	maxFoldEntries = 4096
	maxScanEntries = 512
)

// planCache is one table's shape-keyed memo. All methods are safe for
// concurrent use.
type planCache struct {
	mu    sync.RWMutex
	folds map[foldKey]foldEntry
	scans map[scanKey]scanEntry
}

func newPlanCache() *planCache {
	return &planCache{
		folds: make(map[foldKey]foldEntry),
		scans: make(map[scanKey]scanEntry),
	}
}

// predKey renders the canonical cache key for a predicate. Equal
// renderings imply semantically identical predicates: operand constants
// print with %g (shortest round-trip representation, so distinct floats
// never collide) and columns print by resolved name within one table.
func predKey(where predicate.Expr) string {
	if predicate.IsTrivial(where) {
		return ""
	}
	return where.String()
}

// fold looks up a memoized initial answer, recording the outcome in the
// engine counters: hit (valid entry), miss (shape never seen), or
// invalidation (entry found but the relation mutated since).
func (pc *planCache) fold(m *obs.EngineMetrics, k foldKey, version uint64) (foldEntry, bool) {
	pc.mu.RLock()
	e, ok := pc.folds[k]
	pc.mu.RUnlock()
	switch {
	case !ok:
		m.PlanMisses.Add(1)
		return foldEntry{}, false
	case e.version != version:
		m.PlanInvalidations.Add(1)
		return foldEntry{}, false
	default:
		m.PlanHits.Add(1)
		return e, true
	}
}

// storeFold memoizes an initial answer stamped with the version read
// before its scan.
func (pc *planCache) storeFold(k foldKey, version uint64, initial interval.Interval, n int) {
	pc.mu.Lock()
	if len(pc.folds) >= maxFoldEntries {
		clear(pc.folds)
	}
	pc.folds[k] = foldEntry{version: version, initial: initial, n: n}
	pc.mu.Unlock()
}

// scan looks up a memoized classified snapshot. Snapshot reuse is an
// internal optimization of the refresh slow path and does not count into
// the request-level hit/miss telemetry.
func (pc *planCache) scan(k scanKey, version uint64) (scanEntry, bool) {
	pc.mu.RLock()
	e, ok := pc.scans[k]
	pc.mu.RUnlock()
	if !ok || e.version != version {
		return scanEntry{}, false
	}
	return e, true
}

// storeScan memoizes a classified snapshot stamped with the version read
// before it was collected. The inputs slice must never be mutated after
// this call.
func (pc *planCache) storeScan(k scanKey, version uint64, inputs []aggregate.Input, n int) {
	pc.mu.Lock()
	if len(pc.scans) >= maxScanEntries {
		clear(pc.scans)
	}
	pc.scans[k] = scanEntry{version: version, inputs: inputs, n: n}
	pc.mu.Unlock()
}

// sizes reports the current entry counts (for the server's /metrics).
func (pc *planCache) sizes() (folds, scans int) {
	pc.mu.RLock()
	defer pc.mu.RUnlock()
	return len(pc.folds), len(pc.scans)
}
