package query_test

import (
	"fmt"

	"trapp/internal/aggregate"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/workload"
)

// The paper's Q6: AVG latency over high-traffic links WITHIN 2. The
// processor combines the cached Figure 2 bounds with the Appendix F
// minimum-cost refresh set {1, 3, 5, 6} and returns [8, 9].
func ExampleProcessor_Execute() {
	proc := query.NewProcessor(refresh.Options{Solver: refresh.SolverExactDP})
	table := workload.Figure2Table()
	proc.Register("links", table, workload.MapOracle(workload.Figure2Master()))

	s := table.Schema()
	q := query.NewQuery("links", aggregate.Avg, workload.ColLatency)
	q.Within = 2
	q.Where = predicate.NewCmp(
		predicate.Column(s.MustLookup(workload.ColTraffic), "traffic"),
		predicate.Gt, predicate.Const(100))

	res, _ := proc.Execute(q)
	fmt.Println("query:   ", q)
	fmt.Println("answer:  ", res.Answer)
	fmt.Println("refreshed", res.Refreshed, "tuples at cost", res.RefreshCost)
	// Output:
	// query:    SELECT AVG(links.latency) WITHIN 2 FROM links WHERE traffic > 100
	// answer:   [8, 9]
	// refreshed 4 tuples at cost 15
}

// GROUP BY runs the query once per distinct exact-column group, each
// group independently meeting the precision constraint.
func ExampleProcessor_ExecuteGroupBy() {
	proc := query.NewProcessor(refresh.Options{})
	proc.Register("links", workload.Figure2Table(), workload.MapOracle(workload.Figure2Master()))

	q := query.NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 0
	q.GroupBy = []string{"from"}
	rows, _ := proc.ExecuteGroupBy(q)
	for _, row := range rows {
		fmt.Printf("from node %v: %v\n", row.Key[0], row.Result.Answer)
	}
	// Output:
	// from node 1: [3]
	// from node 2: [16]
	// from node 3: [13]
	// from node 4: [11]
	// from node 5: [5]
}
