package query

// This file defines the typed error taxonomy of the request path. Every
// failure mode a caller may want to react to programmatically is either
// a sentinel (ErrUnknownTable, ErrClosed, ...) or a struct error
// carrying the machine-readable detail (ErrPrecisionUnmet,
// ErrBudgetExhausted), all usable with errors.Is / errors.As:
//
//	res, err := sys.ExecuteCtx(ctx, q, trapp.WithDeadline(dl))
//	var unmet trapp.ErrPrecisionUnmet
//	switch {
//	case errors.As(err, &unmet):
//	        // deadline hit mid-refresh: unmet.Achieved is the best
//	        // guaranteed interval, unmet.Spent the cost already paid.
//	case errors.Is(err, trapp.ErrClosed):
//	        // system shut down
//	}
//
// Struct errors implement Is so that errors.Is(err, ErrPrecisionUnmet{})
// matches any value of the type regardless of its fields, and Unwrap so
// that a deadline-induced ErrPrecisionUnmet still satisfies
// errors.Is(err, context.DeadlineExceeded).

import (
	"errors"
	"fmt"

	"trapp/internal/interval"
)

// ErrClosed is returned by every execution and subscription entry point
// of a System after Close.
var ErrClosed = errors.New("trapp: system closed")

// ErrPrecisionUnmet reports an execution cut short by context
// cancellation or deadline expiry before the precision constraint was
// reached. The Result returned alongside it carries the same best
// achieved answer; the error exists so the failure is inspectable
// without convention ("Met == false means...").
type ErrPrecisionUnmet struct {
	// Achieved is the narrowest guaranteed interval reached before the
	// cutoff. It is always sound: the true answer lies inside it.
	Achieved interval.Interval
	// Spent is the refresh cost paid before the cutoff.
	Spent float64
	// Cause is the context error (context.Canceled or
	// context.DeadlineExceeded) that cut the execution short.
	Cause error
}

// Error formats the achieved interval and spend.
func (e ErrPrecisionUnmet) Error() string {
	return fmt.Sprintf("query: precision constraint unmet at cutoff (achieved %v after spending %g): %v",
		e.Achieved, e.Spent, e.Cause)
}

// Unwrap exposes the context error, so errors.Is(err,
// context.DeadlineExceeded) works.
func (e ErrPrecisionUnmet) Unwrap() error { return e.Cause }

// Is matches any ErrPrecisionUnmet regardless of field values, so
// errors.Is(err, ErrPrecisionUnmet{}) tests for the kind.
func (e ErrPrecisionUnmet) Is(target error) bool {
	_, ok := target.(ErrPrecisionUnmet)
	return ok
}

// ErrBudgetExhausted reports a cost-budgeted execution (WithCostBudget)
// that spent its budget without reaching the query's finite precision
// constraint. The Result returned alongside it carries the narrowest
// answer the budget could buy; budgeted queries with no constraint
// (R = +Inf) never produce this error.
type ErrBudgetExhausted struct {
	// Achieved is the narrowest guaranteed interval the budget bought.
	Achieved interval.Interval
	// Spent is the refresh cost actually paid (≤ Budget).
	Spent float64
	// Budget is the cost ceiling the request carried.
	Budget float64
}

// Error formats the budget and the achieved interval.
func (e ErrBudgetExhausted) Error() string {
	return fmt.Sprintf("query: cost budget %g exhausted before precision constraint (achieved %v after spending %g)",
		e.Budget, e.Achieved, e.Spent)
}

// Is matches any ErrBudgetExhausted regardless of field values.
func (e ErrBudgetExhausted) Is(target error) bool {
	_, ok := target.(ErrBudgetExhausted)
	return ok
}
