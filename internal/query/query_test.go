package query

import (
	"math"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

// newFig2Processor registers the Figure 2 table under "links" with the
// paper's master values as the oracle.
func newFig2Processor() *Processor {
	p := NewProcessor(refresh.Options{Solver: refresh.SolverExactDP})
	p.Register("links", workload.Figure2Table(), workload.MapOracle(workload.Figure2Master()))
	return p
}

func highTraffic(p *Processor) predicate.Expr {
	s := p.Table("links").Schema()
	return predicate.NewCmp(
		predicate.Column(s.MustLookup(workload.ColTraffic), "traffic"),
		predicate.Gt, predicate.Const(100))
}

func TestExecuteImpreciseMode(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	res, err := p.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refreshed != 0 || res.RefreshCost != 0 {
		t.Errorf("imprecise mode refreshed %d at cost %g", res.Refreshed, res.RefreshCost)
	}
	// Full-table latency SUM: [40, 55].
	if !res.Answer.Equal(interval.New(40, 55)) {
		t.Errorf("answer = %v, want [40, 55]", res.Answer)
	}
	if !res.Met {
		t.Error("unconstrained query not met")
	}
}

func TestExecuteWithConstraintRefreshes(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Avg, workload.ColTraffic)
	q.Within = 10
	res, err := p.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("constraint not met")
	}
	if res.Refreshed != 2 {
		t.Errorf("refreshed %d tuples, want 2 (keys 5 and 6)", res.Refreshed)
	}
	if res.RefreshCost != 6 {
		t.Errorf("refresh cost %g, want 6", res.RefreshCost)
	}
	if !res.Answer.Equal(interval.New(103, 113)) {
		t.Errorf("answer = %v, want [103, 113]", res.Answer)
	}
	// Initial answer was wider than R.
	if res.Initial.Width() <= 10 {
		t.Errorf("initial %v unexpectedly precise", res.Initial)
	}
}

func TestExecuteConstraintAlreadyMet(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 100 // initial width is 15
	res, err := p.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refreshed != 0 {
		t.Errorf("refreshed %d despite satisfied constraint", res.Refreshed)
	}
	if !res.Answer.Equal(res.Initial) {
		t.Error("answer differs from initial without refreshes")
	}
}

func TestExecuteQ6EndToEnd(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Avg, workload.ColLatency)
	q.Within = 2
	q.Where = highTraffic(p)
	res, err := p.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("Q6 constraint not met")
	}
	if !res.Answer.Equal(interval.New(8, 9)) {
		t.Errorf("Q6 answer = %v, want [8, 9]", res.Answer)
	}
	if res.Refreshed != 4 {
		t.Errorf("Q6 refreshed %d, want 4", res.Refreshed)
	}
}

func TestPreciseModeGivesExactAnswer(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Min, workload.ColBandwidth)
	res, err := p.PreciseMode(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer.Width() > 1e-9 {
		t.Errorf("precise mode width = %g", res.Answer.Width())
	}
	if res.Answer.Lo != 45 {
		t.Errorf("precise MIN bandwidth = %v, want 45", res.Answer)
	}
}

func TestImpreciseModeNeverRefreshes(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Min, workload.ColBandwidth)
	q.Within = 0.001 // would normally force refreshes
	res, err := p.ImpreciseMode(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refreshed != 0 {
		t.Error("imprecise mode refreshed")
	}
}

func TestExecuteErrors(t *testing.T) {
	p := newFig2Processor()
	if _, err := p.Execute(NewQuery("nope", aggregate.Sum, "latency")); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := p.Execute(NewQuery("links", aggregate.Sum, "nope")); err == nil {
		t.Error("unknown column accepted")
	}
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = -1
	if _, err := p.Execute(q); err == nil {
		t.Error("negative R accepted")
	}
	q.Within = math.NaN()
	if _, err := p.Execute(q); err == nil {
		t.Error("NaN R accepted")
	}
}

func TestExecuteNoOracle(t *testing.T) {
	p := NewProcessor(refresh.Options{})
	p.Register("links", workload.Figure2Table(), nil)
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 1
	if _, err := p.Execute(q); err == nil {
		t.Error("refresh without oracle accepted")
	}
	// Imprecise queries still work.
	if _, err := p.Execute(NewQuery("links", aggregate.Sum, workload.ColLatency)); err != nil {
		t.Errorf("imprecise query failed: %v", err)
	}
}

func TestQueryString(t *testing.T) {
	q := NewQuery("links", aggregate.Min, "bandwidth")
	if got := q.String(); got != "SELECT MIN(links.bandwidth) FROM links" {
		t.Errorf("String = %q", got)
	}
	q.Within = 5
	p := newFig2Processor()
	q.Where = highTraffic(p)
	want := "SELECT MIN(links.bandwidth) WITHIN 5 FROM links WHERE traffic > 100"
	if got := q.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestTighteningRMonotonicallyIncreasesCost(t *testing.T) {
	// The precision-performance tradeoff (Figure 1(b)/Figure 6): smaller R
	// must never cost less on identical caches.
	prevCost := -1.0
	for _, r := range []float64{40, 20, 10, 5, 0} {
		p := newFig2Processor()
		q := NewQuery("links", aggregate.Sum, workload.ColTraffic)
		q.Within = r
		res, err := p.Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Met {
			t.Fatalf("R=%g not met", r)
		}
		if prevCost >= 0 && res.RefreshCost < prevCost-1e-9 {
			t.Errorf("R=%g cost %g < previous %g", r, res.RefreshCost, prevCost)
		}
		prevCost = res.RefreshCost
	}
}

// batchOracle wraps a MapOracle and records whether the batch path ran.
// Per the BatchOracle contract it installs the refreshed values into the
// registered table itself.
type batchOracle struct {
	m       workload.MapOracle
	tab     *relation.Table
	batches int
	keys    int
}

func (b *batchOracle) Master(key int64) ([]float64, bool) { return b.m.Master(key) }

func (b *batchOracle) MasterBatch(keys []int64) (map[int64][]float64, error) {
	b.batches++
	b.keys += len(keys)
	out := make(map[int64][]float64, len(keys))
	for _, key := range keys {
		v, ok := b.m.Master(key)
		if !ok {
			return nil, ErrNoOracle
		}
		if i := b.tab.ByKey(key); i >= 0 {
			if err := b.tab.Refresh(i, v); err != nil {
				return nil, err
			}
		}
		out[key] = v
	}
	return out, nil
}

// TestExecuteUsesBatchOracle checks that a refreshing execution fetches
// the whole plan through MasterBatch when the oracle supports it, and
// that the answer matches the sequential per-key path.
func TestExecuteUsesBatchOracle(t *testing.T) {
	tab := workload.Figure2Table()
	bo := &batchOracle{m: workload.MapOracle(workload.Figure2Master()), tab: tab}
	p := NewProcessor(refresh.Options{Solver: refresh.SolverExactDP})
	p.Register("links", tab, bo)
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 0
	res, err := p.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met || res.Answer.Width() != 0 {
		t.Fatalf("precise batch execution: met=%v answer=%v", res.Met, res.Answer)
	}
	if bo.batches != 1 {
		t.Errorf("MasterBatch called %d times, want 1", bo.batches)
	}
	if bo.keys != res.Refreshed {
		t.Errorf("batched %d keys, refreshed %d", bo.keys, res.Refreshed)
	}
	serial := newFig2Processor()
	want, err := serial.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Answer.Equal(want.Answer) {
		t.Errorf("batch answer %v != serial answer %v", res.Answer, want.Answer)
	}
}
