package query

// This file implements three extensions the paper lists as future work
// (sections 8.1 and 8.2), built on the unchanged core algorithms:
//
//   - GROUP BY over exact columns: each group's aggregate independently
//     satisfies the precision constraint. Grouping on exact columns keeps
//     group membership certain, sidestepping the open problem of grouping
//     on bounded values (§8.1).
//   - Relative precision constraints (§8.1): WITHIN p% asks for
//     HA − LA ≤ 2·|A|·p. Since the actual answer A is unknown, a
//     conservative absolute constraint R = 2·p·min|a| over the initial
//     bounded answer a ∈ [L, H] is derived from the first pass and fed to
//     the standard algorithms, exactly the strategy §8.1 sketches.
//   - Iterative refresh (§8.2): instead of committing to a batch refresh
//     set chosen against worst-case master values, refresh one tuple at a
//     time, recompute with the actual refreshed values, and stop as soon
//     as the constraint is met — an online/anytime execution mode that
//     often pays less total cost at the price of sequential rounds.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/refresh"
	"trapp/internal/relation"
)

// GroupRow is one group's bounded result in a GROUP BY query.
type GroupRow struct {
	// Key holds the group's values of the grouping columns, in the order
	// given to ExecuteGroupBy.
	Key []float64
	// Result is the group's bounded execution result.
	Result Result
}

// ExecuteGroupBy runs the query once per distinct combination of its
// GroupBy columns, as if the query's WHERE clause were augmented with
// "AND groupCol = v" for each group. Every group's answer independently
// satisfies the precision constraint. Rows are ordered by group key.
// Grouping columns must be exact (bounded grouping columns would make
// group membership uncertain, which the paper leaves open).
func (p *Processor) ExecuteGroupBy(q Query) ([]GroupRow, error) {
	e := p.entry(q.Table)
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, q.Table)
	}
	groupCols := q.GroupBy
	if len(groupCols) == 0 {
		return nil, fmt.Errorf("query: ExecuteGroupBy needs at least one grouping column")
	}
	q.GroupBy = nil // subqueries are scalar
	schema := e.schema()
	colIdx := make([]int, len(groupCols))
	for i, name := range groupCols {
		ci, ok := schema.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, q.Table, name)
		}
		if schema.Column(ci).Kind != relation.Exact {
			return nil, fmt.Errorf("query: grouping column %q must be exact", name)
		}
		colIdx[i] = ci
	}

	// Enumerate distinct group keys from the cached table; exact columns
	// are points, so this is precise. The scan shares the read lock(s).
	type groupKey string
	seen := make(map[groupKey][]float64)
	var order []groupKey
	e.forEachTuple(func(tu *relation.Tuple) {
		vals := make([]float64, len(colIdx))
		for j, ci := range colIdx {
			vals[j] = tu.Bounds[ci].Lo
		}
		k := groupKey(fmt.Sprint(vals))
		if _, dup := seen[k]; !dup {
			seen[k] = vals
			order = append(order, k)
		}
	})
	sort.Slice(order, func(a, b int) bool {
		va, vb := seen[order[a]], seen[order[b]]
		for i := range va {
			if va[i] != vb[i] {
				return va[i] < vb[i]
			}
		}
		return false
	})

	rows := make([]GroupRow, 0, len(order))
	for _, k := range order {
		vals := seen[k]
		gq := q
		gq.Where = conjoinGroupPredicate(q.Where, colIdx, groupCols, vals)
		res, err := p.Execute(gq)
		if err != nil {
			return rows, fmt.Errorf("query: group %v: %w", vals, err)
		}
		rows = append(rows, GroupRow{Key: vals, Result: res})
	}
	return rows, nil
}

// conjoinGroupPredicate appends "col = v" conjuncts for the group key.
func conjoinGroupPredicate(where predicate.Expr, colIdx []int, names []string, vals []float64) predicate.Expr {
	var out predicate.Expr
	for i, ci := range colIdx {
		cmp := predicate.NewCmp(predicate.Column(ci, names[i]), predicate.Eq, predicate.Const(vals[i]))
		if out == nil {
			out = cmp
		} else {
			out = predicate.NewAnd(out, cmp)
		}
	}
	if !predicate.IsTrivial(where) {
		out = predicate.NewAnd(out, where)
	}
	return out
}

// RelativeR converts a relative precision constraint p (e.g. 0.05 for
// "within 5%") into a conservative absolute constraint given the initial
// bounded answer: the requirement HA − LA ≤ 2·|A|·p must hold for the
// unknown actual answer A, and A is guaranteed to lie in the initial
// bound, so the smallest possible |A| over that interval is used. If the
// interval straddles zero the conservative constraint is 0 (exact answer
// required), since A might be arbitrarily close to zero.
func RelativeR(initial interval.Interval, p float64) float64 {
	if initial.IsEmpty() || math.IsInf(initial.Width(), 1) {
		return 0
	}
	var minAbs float64
	switch {
	case initial.Contains(0):
		minAbs = 0
	case initial.Lo > 0:
		minAbs = initial.Lo
	default:
		minAbs = -initial.Hi
	}
	return 2 * p * minAbs
}

// ExecuteRelative runs the query under a relative precision constraint p:
// the final answer [LA, HA] satisfies HA − LA ≤ 2·|A|·p for the true
// answer A. The query's own Within field is ignored.
func (proc *Processor) ExecuteRelative(q Query, p float64) (Result, error) {
	return proc.executeRelative(context.Background(), q, p, ExecConfig{}, proc.opts)
}

// executeRelative is the relative-constraint path of the configured
// execution: a first scan derives the conservative absolute constraint
// from the initial bounded answer (§8.1), then the standard configured
// execution runs against it — inheriting the request's context,
// deadline, budget and solver.
func (proc *Processor) executeRelative(ctx context.Context, q Query, p float64, cfg ExecConfig, ropts refresh.Options) (Result, error) {
	if p < 0 || math.IsNaN(p) {
		return Result{}, fmt.Errorf("query: invalid relative precision %g", p)
	}
	e := proc.entry(q.Table)
	if e == nil {
		return Result{}, fmt.Errorf("%w: %q", ErrUnknownTable, q.Table)
	}
	col, ok := e.schema().Lookup(q.Column)
	if !ok {
		return Result{}, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, q.Table, q.Column)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	inputs, tableLen := e.snapshot(col, q.Where, ropts.Parallelism)
	initial := aggregate.EvalInputs(inputs, q.Agg, predicate.IsTrivial(q.Where), tableLen)
	q.Within = RelativeR(initial, p)
	res, err := proc.ExecuteConfig(ctx, q, cfg)
	res.Initial = initial
	return res, err
}

// ExecuteIterative runs the §8.2 online variant: repeatedly compute the
// batch refresh plan but perform only its single cheapest refresh, then
// recompute with the actual refreshed value. Because real values usually
// tighten the answer faster than the worst case assumed by the batch
// plan, the total cost paid is at most the batch plan's cost and often
// less. The Result additionally reports the number of refresh rounds via
// Refreshed (one tuple per round).
func (proc *Processor) ExecuteIterative(q Query) (Result, error) {
	e := proc.entry(q.Table)
	if e == nil {
		return Result{}, fmt.Errorf("%w: %q", ErrUnknownTable, q.Table)
	}
	col, ok := e.schema().Lookup(q.Column)
	if !ok {
		return Result{}, fmt.Errorf("%w: %q.%q", ErrUnknownColumn, q.Table, q.Column)
	}
	if q.Within < 0 || math.IsNaN(q.Within) {
		return Result{}, fmt.Errorf("query: invalid precision constraint %g", q.Within)
	}
	var res Result
	noPred := predicate.IsTrivial(q.Where)
	first := true
	for {
		// Snapshot the classification under the read lock(s); evaluation
		// and refresh selection then run with no lock held.
		inputs, tableLen := e.snapshot(col, q.Where, proc.opts.Parallelism)
		res.Answer = aggregate.EvalInputs(inputs, q.Agg, noPred, tableLen)
		if first {
			res.Initial = res.Answer
			first = false
		}
		if Satisfies(res.Answer, q.Within) {
			res.Met = true
			return res, nil
		}
		start := time.Now()
		plan, err := refresh.ChooseFromInputs(inputs, q.Agg, noPred, q.Within, tableLen, proc.opts)
		res.ChooseTime += time.Since(start)
		if err != nil {
			return res, err
		}
		if plan.Len() == 0 {
			// The batch plan guarantees the constraint, so an empty plan
			// with an unmet constraint cannot occur; guard regardless.
			return res, fmt.Errorf("query: iterative execution stalled at width %g", res.Answer.Width())
		}
		// Refresh only the cheapest tuple of the plan this round.
		best := 0
		for i := range plan.Costs {
			if plan.Costs[i] < plan.Costs[best] {
				best = i
			}
		}
		key, bestCost := plan.Keys[best], plan.Costs[best]
		if e.oracle == nil {
			return res, fmt.Errorf("%w: %q", ErrNoOracle, q.Table)
		}
		if b, ok := e.oracle.(BatchOracle); ok {
			// The batch oracle installs the refreshed bound itself; an
			// empty reply means the key vanished mid-round — replan.
			vals, err := b.MasterBatch([]int64{key})
			if err != nil {
				return res, err
			}
			if len(vals) == 0 {
				continue
			}
		} else {
			vals, ok := e.oracle.Master(key)
			if !ok {
				return res, fmt.Errorf("query: oracle has no master values for key %d", key)
			}
			installed, err := e.install(key, vals)
			if err != nil {
				return res, err
			}
			if !installed {
				continue // key vanished mid-round; nothing was refreshed
			}
		}
		res.Refreshed++
		res.RefreshCost += bestCost
	}
}
