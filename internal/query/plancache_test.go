package query

// Unit tests for the shape-keyed plan cache: disjoint hit/miss/
// invalidation accounting, version-token staleness, bounded growth with
// clear-on-overflow, canonical predicate keying, and concurrent access.

import (
	"fmt"
	"sync"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/obs"
	"trapp/internal/predicate"
)

func TestPlanCacheFoldCounters(t *testing.T) {
	pc := newPlanCache()
	var m obs.EngineMetrics
	k := foldKey{col: 1, agg: aggregate.Sum, mode: ModeBounded}

	// Absent shape: miss.
	if _, ok := pc.fold(&m, k, 7); ok {
		t.Fatal("hit on empty cache")
	}
	pc.storeFold(k, 7, interval.New(1, 3), 42)

	// Same version: hit with the stored payload.
	e, ok := pc.fold(&m, k, 7)
	if !ok || e.initial != interval.New(1, 3) || e.n != 42 {
		t.Fatalf("hit = %+v ok=%v", e, ok)
	}
	// Bumped version: invalidation, not a miss.
	if _, ok := pc.fold(&m, k, 8); ok {
		t.Fatal("stale entry served")
	}
	// A different shape with the same version: miss again.
	if _, ok := pc.fold(&m, foldKey{col: 1, agg: aggregate.Min, mode: ModeBounded}, 7); ok {
		t.Fatal("hit on unseen shape")
	}

	h, mi, inv := m.PlanHits.Load(), m.PlanMisses.Load(), m.PlanInvalidations.Load()
	if h != 1 || mi != 2 || inv != 1 {
		t.Fatalf("counters hits=%d misses=%d invalidations=%d, want 1/2/1", h, mi, inv)
	}
}

func TestPlanCacheScanVersioning(t *testing.T) {
	pc := newPlanCache()
	k := scanKey{col: 2, pred: "v > 10"}
	inputs := []aggregate.Input{{Bound: interval.New(0, 5), Cost: 1}}

	if _, ok := pc.scan(k, 3); ok {
		t.Fatal("hit on empty scan cache")
	}
	pc.storeScan(k, 3, inputs, len(inputs))
	e, ok := pc.scan(k, 3)
	if !ok || len(e.inputs) != 1 || e.n != 1 {
		t.Fatalf("scan hit = %+v ok=%v", e, ok)
	}
	if _, ok := pc.scan(k, 4); ok {
		t.Fatal("stale snapshot served")
	}
}

func TestPlanCacheOverflowClears(t *testing.T) {
	pc := newPlanCache()
	var m obs.EngineMetrics
	for i := 0; i <= maxFoldEntries; i++ {
		pc.storeFold(foldKey{col: i, agg: aggregate.Sum, mode: ModeBounded}, 1, interval.Point(0), 0)
	}
	for i := 0; i <= maxScanEntries; i++ {
		pc.storeScan(scanKey{col: i}, 1, nil, 0)
	}
	folds, scans := pc.sizes()
	if folds > maxFoldEntries || scans > maxScanEntries {
		t.Fatalf("cache grew past bounds: folds=%d scans=%d", folds, scans)
	}
	// The most recent store survives the clear and still serves.
	if _, ok := pc.fold(&m, foldKey{col: maxFoldEntries, agg: aggregate.Sum, mode: ModeBounded}, 1); !ok {
		t.Fatal("entry stored after clear not served")
	}
}

func TestPredKeyCanonical(t *testing.T) {
	if got := predKey(nil); got != "" {
		t.Fatalf("trivial predicate key = %q, want empty", got)
	}
	p1 := predicate.NewCmp(predicate.Column(1, "v"), predicate.Gt, predicate.Const(10))
	p2 := predicate.NewCmp(predicate.Column(1, "v"), predicate.Gt, predicate.Const(10.0))
	if predKey(p1) == "" || predKey(p1) != predKey(p2) {
		t.Fatalf("equivalent predicates key differently: %q vs %q", predKey(p1), predKey(p2))
	}
	p3 := predicate.NewCmp(predicate.Column(1, "v"), predicate.Gt, predicate.Const(10.5))
	if predKey(p1) == predKey(p3) {
		t.Fatalf("distinct constants collide on key %q", predKey(p1))
	}
	// %g is shortest-round-trip: nearby floats never collide.
	p4 := predicate.NewCmp(predicate.Column(1, "v"), predicate.Gt,
		predicate.Const(10.000000000000002))
	if predKey(p1) == predKey(p4) {
		t.Fatalf("adjacent floats collide on key %q", predKey(p1))
	}
}

func TestPlanCacheConcurrent(t *testing.T) {
	pc := newPlanCache()
	var m obs.EngineMetrics
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := foldKey{col: i % 7, agg: aggregate.Sum, mode: ModeBounded, pred: fmt.Sprint(i % 3)}
				if e, ok := pc.fold(&m, k, uint64(i%5)); ok && e.n != int(e.version) {
					t.Errorf("goroutine %d: torn entry %+v", g, e)
					return
				}
				pc.storeFold(k, uint64(i%5), interval.Point(float64(i%5)), i%5)
				pc.storeScan(scanKey{col: i % 7}, uint64(i%5), nil, i%5)
				pc.scan(scanKey{col: i % 7}, uint64(i%5))
			}
		}(g)
	}
	wg.Wait()
}
