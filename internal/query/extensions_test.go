package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

func TestExecuteGroupByPerSourceNode(t *testing.T) {
	// Group the Figure 2 links by their "from" node: nodes 1..5 own
	// {1}, {2, 4}, {3}, {5}, {6} respectively.
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 1
	q.GroupBy = []string{"from"}
	rows, err := p.ExecuteGroupBy(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("groups = %d, want 5", len(rows))
	}
	// Every group's answer satisfies the constraint and contains the true
	// per-group SUM.
	trueSums := map[float64]float64{1: 3, 2: 7 + 9, 3: 13, 4: 11, 5: 5}
	for _, row := range rows {
		if !row.Result.Met {
			t.Errorf("group %v not met", row.Key)
		}
		if row.Result.Answer.Width() > 1+1e-9 {
			t.Errorf("group %v width %g", row.Key, row.Result.Answer.Width())
		}
		want := trueSums[row.Key[0]]
		if !row.Result.Answer.Expand(1e-9).Contains(want) {
			t.Errorf("group %v answer %v, want to contain %g", row.Key, row.Result.Answer, want)
		}
	}
	// Ordered by key.
	for i := 1; i < len(rows); i++ {
		if rows[i].Key[0] <= rows[i-1].Key[0] {
			t.Error("groups not ordered")
		}
	}
}

func TestExecuteGroupByWithWhere(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Count, workload.ColLatency)
	q.Within = 0
	q.Where = highTraffic(p)
	q.GroupBy = []string{"from"}
	rows, err := p.ExecuteGroupBy(q)
	if err != nil {
		t.Fatal(err)
	}
	// True high-traffic links: {2, 3, 4, 6} owned by from-nodes 2,3,2,5.
	counts := map[float64]float64{}
	for _, row := range rows {
		counts[row.Key[0]] = row.Result.Answer.Lo
		if row.Result.Answer.Width() != 0 {
			t.Errorf("group %v COUNT not exact: %v", row.Key, row.Result.Answer)
		}
	}
	want := map[float64]float64{1: 0, 2: 2, 3: 1, 4: 0, 5: 1}
	for k, w := range want {
		if counts[k] != w {
			t.Errorf("group %g count = %g, want %g", k, counts[k], w)
		}
	}
}

func TestExecuteGroupByMultiColumn(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 0
	q.GroupBy = []string{"from", "to"}
	rows, err := p.ExecuteGroupBy(q)
	if err != nil {
		t.Fatal(err)
	}
	// All six links have distinct (from, to) pairs.
	if len(rows) != 6 {
		t.Fatalf("groups = %d, want 6", len(rows))
	}
}

func TestExecuteGroupByErrors(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	if _, err := p.ExecuteGroupBy(q); err == nil {
		t.Error("empty group columns accepted")
	}
	q.GroupBy = []string{"nope"}
	if _, err := p.ExecuteGroupBy(q); err == nil {
		t.Error("unknown group column accepted")
	}
	q.GroupBy = []string{workload.ColLatency}
	if _, err := p.ExecuteGroupBy(q); err == nil {
		t.Error("bounded group column accepted")
	}
	q.Table = "missing"
	q.GroupBy = []string{"from"}
	if _, err := p.ExecuteGroupBy(q); err == nil {
		t.Error("missing table accepted")
	}
}

func TestRelativeR(t *testing.T) {
	cases := []struct {
		initial interval.Interval
		p       float64
		want    float64
	}{
		{interval.New(100, 120), 0.05, 10},   // min|a|=100, R = 2·0.05·100
		{interval.New(-120, -100), 0.05, 10}, // symmetric negative
		{interval.New(-5, 10), 0.1, 0},       // straddles zero → exact
		{interval.Empty, 0.1, 0},
	}
	for _, c := range cases {
		if got := RelativeR(c.initial, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelativeR(%v, %g) = %g, want %g", c.initial, c.p, got, c.want)
		}
	}
}

func TestExecuteRelative(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColTraffic)
	res, err := p.ExecuteRelative(q, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatal("relative constraint not met")
	}
	// The guarantee: width ≤ 2·|A|·p for the true answer A = 644.
	trueSum := 98.0 + 116 + 105 + 127 + 95 + 103
	if res.Answer.Width() > 2*trueSum*0.02+1e-9 {
		t.Errorf("width %g > 2·|A|·p = %g", res.Answer.Width(), 2*trueSum*0.02)
	}
	if !res.Answer.Expand(1e-9).Contains(trueSum) {
		t.Errorf("answer %v excludes true sum %g", res.Answer, trueSum)
	}
	if _, err := p.ExecuteRelative(q, -1); err == nil {
		t.Error("negative relative precision accepted")
	}
}

func TestExecuteIterativeMeetsConstraintCheaper(t *testing.T) {
	// Iterative refresh must meet the constraint and cost no more than
	// the batch plan on the same starting cache.
	batchProc := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 4
	batchRes, err := batchProc.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	iterProc := newFig2Processor()
	iterRes, err := iterProc.ExecuteIterative(q)
	if err != nil {
		t.Fatal(err)
	}
	if !iterRes.Met {
		t.Fatalf("iterative not met: %v", iterRes.Answer)
	}
	if iterRes.RefreshCost > batchRes.RefreshCost+1e-9 {
		t.Errorf("iterative cost %g > batch cost %g", iterRes.RefreshCost, batchRes.RefreshCost)
	}
}

func TestExecuteIterativeNoRefreshWhenMet(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 100
	res, err := p.ExecuteIterative(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Refreshed != 0 {
		t.Errorf("refreshed %d with satisfied constraint", res.Refreshed)
	}
}

func TestExecuteIterativeErrors(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("missing", aggregate.Sum, "latency")
	if _, err := p.ExecuteIterative(q); err == nil {
		t.Error("missing table accepted")
	}
	q = NewQuery("links", aggregate.Sum, "nope")
	if _, err := p.ExecuteIterative(q); err == nil {
		t.Error("missing column accepted")
	}
	q = NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = -2
	if _, err := p.ExecuteIterative(q); err == nil {
		t.Error("negative R accepted")
	}
}

// TestQuickIterativeNeverCostsMoreThanBatch compares the two execution
// modes on random tables: iterative always meets the constraint and never
// pays more than batch.
func TestQuickIterativeNeverCostsMoreThanBatch(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		schema := relation.NewSchema(
			relation.Column{Name: "g", Kind: relation.Exact},
			relation.Column{Name: "v", Kind: relation.Bounded},
		)
		n := 2 + r.Intn(12)
		master := workload.MapOracle{}
		build := func() *relation.Table {
			tab := relation.NewTable(schema)
			rr := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				lo := rr.Float64() * 50
				w := rr.Float64() * 10
				tab.MustInsert(relation.Tuple{
					Key:    int64(i + 1),
					Bounds: []interval.Interval{interval.Point(float64(i % 3)), interval.New(lo, lo+w)},
					Cost:   float64(1 + rr.Intn(9)),
				})
				master[int64(i+1)] = []float64{lo + rr.Float64()*w}
			}
			return tab
		}
		fn := []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum, aggregate.Avg}[r.Intn(4)]
		R := r.Float64() * 20

		bp := NewProcessor(refresh.Options{})
		bp.Register("t", build(), master)
		q := NewQuery("t", fn, "v")
		q.Within = R
		batch, err := bp.Execute(q)
		if err != nil || !batch.Met {
			return false
		}
		ip := NewProcessor(refresh.Options{})
		ip.Register("t", build(), master)
		iter, err := ip.ExecuteIterative(q)
		if err != nil || !iter.Met {
			return false
		}
		return iter.RefreshCost <= batch.RefreshCost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
