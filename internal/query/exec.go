package query

// Per-request execution options. ExecuteCtx(ctx, q, opts...) is the
// context-first entry point of the request path; the variadic functional
// options carry everything that is per-request rather than per-query
// (the Query value describes *what* is asked; ExecOptions describe *how
// hard the system may work answering it*):
//
//   - WithDeadline: a per-request deadline, honored at the phase
//     boundaries of the three-step execution (scan → plan → refresh
//     fan-out → recompute).
//   - WithCostBudget: the cost-bounded dual of CHOOSE_REFRESH — instead
//     of "meet R at minimum cost", "get as narrow as possible spending
//     at most B".
//   - WithSolver: a per-request knapsack solver override.
//   - WithMode: collapses the old PreciseMode/ImpreciseMode entry
//     points into options over the one execution path.

import (
	"math"
	"time"

	"trapp/internal/obs"
	"trapp/internal/refresh"
)

// Mode selects where on the precision-performance dial of Figure 1(a) a
// request executes.
type Mode int8

const (
	// ModeBounded is the default: honor the query's own precision
	// constraint, refreshing just enough to guarantee it.
	ModeBounded Mode = iota
	// ModePrecise forces R = 0 — the fresh-data extreme: refresh until
	// the answer is exact.
	ModePrecise
	// ModeImprecise forces R = +Inf — the stale-data extreme: answer
	// from cached bounds only, never refresh. It overrides a cost
	// budget (an imprecise request spends nothing by definition).
	ModeImprecise
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModePrecise:
		return "precise"
	case ModeImprecise:
		return "imprecise"
	default:
		return "bounded"
	}
}

// ExecConfig is the resolved per-request configuration built from
// ExecOptions. The zero value is the default request: bounded mode, no
// deadline, no budget, the processor's configured solver.
type ExecConfig struct {
	// Deadline is the request deadline; zero means none. It composes
	// with the caller's context (the effective deadline is whichever is
	// earlier).
	Deadline time.Time
	// Budget is the refresh-cost ceiling; meaningful only when
	// HasBudget is set.
	Budget    float64
	HasBudget bool
	// Solver overrides the processor's knapsack solver for this request
	// when HasSolver is set.
	Solver    refresh.Solver
	HasSolver bool
	// Mode positions the request on the precision-performance dial.
	Mode Mode
	// Trace enables per-request span tracing; the span tree is returned
	// on Result.Trace.
	Trace bool
	// TraceRoot, when set (by the System façade), is the pre-created
	// trace the execution should record into — it lets callers wrap
	// phases that happen before the processor runs (the cache sync) in
	// the same tree. Implies Trace.
	TraceRoot *obs.Trace
}

// ExecOption customizes one request.
type ExecOption func(*ExecConfig)

// BuildExecConfig resolves a set of options. Later options win.
func BuildExecConfig(opts ...ExecOption) ExecConfig {
	var cfg ExecConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// WithDeadline bounds the request's wall-clock time. At each phase
// boundary (and between refresh batches) an expired deadline stops the
// execution; the request returns the best interval achieved so far and,
// if the constraint is still unmet, a typed ErrPrecisionUnmet.
func WithDeadline(t time.Time) ExecOption {
	return func(c *ExecConfig) { c.Deadline = t }
}

// WithCostBudget switches the request to the cost-bounded dual of
// CHOOSE_REFRESH: spend at most b units of refresh cost, maximizing the
// guaranteed width reduction. With a finite precision constraint R the
// request first tries the classic minimum-cost plan for R and uses it
// when it fits the budget; otherwise (and always when R = +Inf) it
// solves the inverted knapsack. The returned Result never reports
// RefreshCost > b; if a finite R could not be met within b the request
// returns the narrowest achieved answer with a typed
// ErrBudgetExhausted.
func WithCostBudget(b float64) ExecOption {
	return func(c *ExecConfig) { c.Budget = b; c.HasBudget = true }
}

// WithSolver overrides the knapsack solver for this request only.
func WithSolver(s refresh.Solver) ExecOption {
	return func(c *ExecConfig) { c.Solver = s; c.HasSolver = true }
}

// WithMode positions the request on the precision-performance dial,
// subsuming the deprecated PreciseMode/ImpreciseMode entry points.
func WithMode(m Mode) ExecOption {
	return func(c *ExecConfig) { c.Mode = m }
}

// WithTrace records a span tree through the request's phases — scan,
// CHOOSE_REFRESH, the per-source refresh fan-out (wire wait vs commit),
// and the final fold — each span carrying wall time and the refresh
// cost it charged. The trace is returned on Result.Trace; its
// TotalCost() equals the result's RefreshCost bit-exactly. Tracing a
// request costs a handful of small allocations and clock reads; leave
// it off on hot paths.
func WithTrace() ExecOption {
	return func(c *ExecConfig) { c.Trace = true }
}

// Resolve rewrites a query for the configured mode and returns the
// refresh options the request should solve with — the same resolution
// ExecuteConfig performs before its three-step execution. Exported for
// the partition coordinator, which mirrors the single-node execution
// skeleton over scattered per-partition folds and must apply the exact
// same mode/solver rewrites.
func (c ExecConfig) Resolve(q Query, base refresh.Options) (Query, refresh.Options) {
	return c.apply(q, base)
}

// apply rewrites a query for the configured mode and returns the
// refresh options this request should solve with.
func (c ExecConfig) apply(q Query, base refresh.Options) (Query, refresh.Options) {
	switch c.Mode {
	case ModePrecise:
		q.Within = 0
		q.RelativeWithin = 0
	case ModeImprecise:
		q.Within = math.Inf(1)
		q.RelativeWithin = 0
	}
	if c.HasSolver {
		base.Solver = c.Solver
	}
	return q, base
}
