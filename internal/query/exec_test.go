package query

// Tests for the context-first execution API: per-request options, the
// typed error taxonomy, cancellation at phase boundaries, the
// cost-budgeted dual, and cross-query batch execution.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/refresh"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

func TestTypedErrorsIsAs(t *testing.T) {
	cause := context.DeadlineExceeded
	var err error = fmt.Errorf("wrapped: %w",
		ErrPrecisionUnmet{Achieved: interval.New(1, 5), Spent: 3, Cause: cause})
	if !errors.Is(err, ErrPrecisionUnmet{}) {
		t.Error("errors.Is(ErrPrecisionUnmet{}) = false")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Error("ErrPrecisionUnmet does not unwrap to its context cause")
	}
	var unmet ErrPrecisionUnmet
	if !errors.As(err, &unmet) || unmet.Spent != 3 {
		t.Errorf("errors.As recovered %+v", unmet)
	}

	err = fmt.Errorf("wrapped: %w", ErrBudgetExhausted{Achieved: interval.New(0, 2), Spent: 4, Budget: 5})
	if !errors.Is(err, ErrBudgetExhausted{}) {
		t.Error("errors.Is(ErrBudgetExhausted{}) = false")
	}
	var exhausted ErrBudgetExhausted
	if !errors.As(err, &exhausted) || exhausted.Budget != 5 {
		t.Errorf("errors.As recovered %+v", exhausted)
	}
	if errors.Is(err, ErrPrecisionUnmet{}) {
		t.Error("budget error matched precision error")
	}
}

func TestExecuteCtxPreCanceled(t *testing.T) {
	p := newFig2Processor()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 0
	_, err := p.ExecuteCtx(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWithDeadlineAlreadyExpired(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 0
	_, err := p.ExecuteCtx(context.Background(), q, WithDeadline(time.Now().Add(-time.Second)))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// cancelingOracle cancels a context after serving n keys, simulating a
// deadline that expires mid-refresh on the plain per-key oracle path.
type cancelingOracle struct {
	inner  Oracle
	cancel context.CancelFunc
	after  int
	served int
}

func (o *cancelingOracle) Master(key int64) ([]float64, bool) {
	v, ok := o.inner.Master(key)
	o.served++
	if o.served == o.after {
		o.cancel()
	}
	return v, ok
}

func TestCancellationMidRefreshReturnsBestAchieved(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := NewProcessor(refresh.Options{Solver: refresh.SolverExactDP})
	oracle := &cancelingOracle{inner: workload.MapOracle(workload.Figure2Master()), cancel: cancel, after: 2}
	p.Register("links", workload.Figure2Table(), oracle)

	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 0 // precise: plan refreshes all six tuples
	res, err := p.ExecuteCtx(ctx, q)
	var unmet ErrPrecisionUnmet
	if !errors.As(err, &unmet) {
		t.Fatalf("err = %v, want ErrPrecisionUnmet", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("cutoff error does not unwrap to context.Canceled")
	}
	if res.Refreshed != 2 {
		t.Errorf("refreshed %d tuples before the cutoff, want 2", res.Refreshed)
	}
	if unmet.Spent != res.RefreshCost || unmet.Spent <= 0 {
		t.Errorf("Spent = %g, result cost %g", unmet.Spent, res.RefreshCost)
	}
	// The best-achieved answer reflects the partial refreshes: strictly
	// narrower than the initial bound, still containing the true SUM.
	if res.Answer.Width() >= res.Initial.Width() {
		t.Errorf("answer %v no narrower than initial %v", res.Answer, res.Initial)
	}
	truth := 0.0
	for _, vals := range workload.Figure2Master() {
		truth += vals[0] // latency is the first bounded column
	}
	if !res.Answer.Contains(truth) {
		t.Errorf("best-achieved answer %v does not contain true SUM %g", res.Answer, truth)
	}
	if unmet.Achieved != res.Answer {
		t.Errorf("Achieved %v != Answer %v", unmet.Achieved, res.Answer)
	}
}

func TestWithModeMatchesDeprecatedWrappers(t *testing.T) {
	q := NewQuery("links", aggregate.Avg, workload.ColTraffic)
	q.Within = 10

	a := newFig2Processor()
	b := newFig2Processor()
	viaOpt, err1 := a.ExecuteCtx(context.Background(), q, WithMode(ModePrecise))
	viaWrapper, err2 := b.PreciseMode(q)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if viaOpt.Answer != viaWrapper.Answer || viaOpt.RefreshCost != viaWrapper.RefreshCost {
		t.Errorf("ModePrecise %+v != PreciseMode %+v", viaOpt, viaWrapper)
	}

	c := newFig2Processor()
	d := newFig2Processor()
	viaOpt, err1 = c.ExecuteCtx(context.Background(), q, WithMode(ModeImprecise))
	viaWrapper, err2 = d.ImpreciseMode(q)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if viaOpt.Answer != viaWrapper.Answer || viaOpt.Refreshed != 0 {
		t.Errorf("ModeImprecise %+v != ImpreciseMode %+v", viaOpt, viaWrapper)
	}
}

func TestWithSolverOverride(t *testing.T) {
	// The override must reach CHOOSE_REFRESH: force the uniform-cost
	// greedy on a non-uniform instance and observe a (possibly) different
	// but still sound plan; mainly this asserts the plumbing compiles the
	// request against the per-request solver without mutating the
	// processor's own options.
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency)
	q.Within = 5
	res, err := p.ExecuteCtx(context.Background(), q, WithSolver(refresh.SolverGreedyDensity))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Error("constraint unmet with per-request solver")
	}
	if p.opts.Solver != refresh.SolverExactDP {
		t.Error("per-request solver mutated processor options")
	}
}

func TestWithCostBudgetNeverExceedsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	aggs := []aggregate.Func{aggregate.Sum, aggregate.Avg, aggregate.Min, aggregate.Max, aggregate.Count}
	for trial := 0; trial < 200; trial++ {
		p := newFig2Processor()
		q := NewQuery("links", aggs[rng.Intn(len(aggs))], workload.ColLatency)
		switch rng.Intn(3) {
		case 0: // unconstrained: the pure dual
		case 1:
			q.Within = 0
		default:
			q.Within = rng.Float64() * 10
		}
		if rng.Intn(2) == 0 {
			q.Where = highTraffic(p)
		}
		budget := rng.Float64() * 20
		res, err := p.ExecuteCtx(context.Background(), q, WithCostBudget(budget))
		if err != nil && !errors.Is(err, ErrBudgetExhausted{}) {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.RefreshCost > budget+1e-9 {
			t.Fatalf("trial %d (%v, budget %g): paid %g", trial, q, budget, res.RefreshCost)
		}
		if err != nil {
			var exhausted ErrBudgetExhausted
			if !errors.As(err, &exhausted) {
				t.Fatalf("trial %d: unexpected error type %v", trial, err)
			}
			if exhausted.Budget != budget || exhausted.Spent != res.RefreshCost {
				t.Fatalf("trial %d: exhausted detail %+v vs result %+v", trial, exhausted, res)
			}
			if res.Met {
				t.Fatalf("trial %d: budget-exhausted error on a met constraint", trial)
			}
		}
	}
}

func TestWithCostBudgetNarrowsUnconstrainedQuery(t *testing.T) {
	p := newFig2Processor()
	q := NewQuery("links", aggregate.Sum, workload.ColLatency) // R = +Inf
	free, err := p.ImpreciseMode(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := newFig2Processor().ExecuteCtx(context.Background(), q, WithCostBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	if res.RefreshCost > 10 || res.Refreshed == 0 {
		t.Fatalf("budget spend: %d refreshes for %g", res.Refreshed, res.RefreshCost)
	}
	if res.Answer.Width() >= free.Answer.Width() {
		t.Errorf("budgeted answer %v no narrower than cache-only %v", res.Answer, free.Answer)
	}
	// An infinite budget reproduces precise mode.
	precise, err := newFig2Processor().ExecuteCtx(context.Background(), q, WithCostBudget(math.Inf(1)))
	if err != nil {
		t.Fatal(err)
	}
	if precise.Answer.Width() != 0 {
		t.Errorf("infinite budget left width %g", precise.Answer.Width())
	}
}

func TestWithCostBudgetPrefersClassicPlanWhenAffordable(t *testing.T) {
	// With a loose constraint and a generous budget, the request must
	// meet R at the classic plan's minimal cost, not burn the budget.
	ref := newFig2Processor()
	q := NewQuery("links", aggregate.Avg, workload.ColTraffic)
	q.Within = 10
	classic, err := ref.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := newFig2Processor().ExecuteCtx(context.Background(), q, WithCostBudget(1000))
	if err != nil {
		t.Fatal(err)
	}
	if res.RefreshCost != classic.RefreshCost || res.Answer != classic.Answer {
		t.Errorf("budgeted %+v != classic %+v", res, classic)
	}
}

func TestExecuteBatchMatchesStandaloneExecution(t *testing.T) {
	// Every batch answer must be bit-identical to executing the same
	// query alone on a fresh identical processor.
	qs := []Query{
		{Table: "links", Agg: aggregate.Sum, Column: workload.ColLatency, Within: 5},
		{Table: "links", Agg: aggregate.Min, Column: workload.ColBandwidth, Within: 10},
		{Table: "links", Agg: aggregate.Avg, Column: workload.ColTraffic, Within: 10},
		{Table: "links", Agg: aggregate.Sum, Column: workload.ColLatency, Within: 2},
		{Table: "links", Agg: aggregate.Max, Column: workload.ColLatency, Within: math.Inf(1)},
	}
	batchP := newFig2Processor()
	results, err := batchP.ExecuteBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(results), len(qs))
	}
	for i, q := range qs {
		solo, err := newFig2Processor().Execute(q)
		if err != nil {
			t.Fatal(err)
		}
		got := results[i]
		if got.Answer != solo.Answer || got.Initial != solo.Initial ||
			got.Refreshed != solo.Refreshed || got.RefreshCost != solo.RefreshCost || got.Met != solo.Met {
			t.Errorf("query %d (%v):\nbatch %+v\nsolo  %+v", i, q, got, solo)
		}
	}
}

func TestExecuteBatchDedupesSharedRefreshes(t *testing.T) {
	// Two identical precise queries: the union plan fetches each tuple
	// once, while each query still attributes its full plan cost.
	qs := []Query{
		{Table: "links", Agg: aggregate.Sum, Column: workload.ColLatency, Within: 0},
		{Table: "links", Agg: aggregate.Sum, Column: workload.ColLatency, Within: 0},
	}
	fetches := 0
	p := NewProcessor(refresh.Options{Solver: refresh.SolverExactDP})
	oracle := countingOracle{inner: workload.MapOracle(workload.Figure2Master()), n: &fetches}
	p.Register("links", workload.Figure2Table(), oracle)
	results, err := p.ExecuteBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if fetches != 6 {
		t.Errorf("union fetched %d times, want 6 (once per tuple)", fetches)
	}
	for i, r := range results {
		if r.Refreshed != 6 || !r.Met {
			t.Errorf("query %d attribution: %+v", i, r)
		}
	}
}

type countingOracle struct {
	inner Oracle
	n     *int
}

func (o countingOracle) Master(key int64) ([]float64, bool) {
	*o.n++
	return o.inner.Master(key)
}

func TestExecuteBatchRejectsGroupBy(t *testing.T) {
	p := newFig2Processor()
	qs := []Query{{Table: "links", Agg: aggregate.Sum, Column: workload.ColLatency,
		Within: 5, GroupBy: []string{"from"}}}
	if _, err := p.ExecuteBatch(context.Background(), qs); err == nil {
		t.Fatal("GROUP BY batch accepted")
	}
}

func TestExecuteBatchBudgetErrorsJoined(t *testing.T) {
	qs := []Query{
		{Table: "links", Agg: aggregate.Sum, Column: workload.ColLatency, Within: 0},
		{Table: "links", Agg: aggregate.Sum, Column: workload.ColLatency, Within: 1000},
	}
	p := newFig2Processor()
	results, err := p.ExecuteBatch(context.Background(), qs, WithCostBudget(0))
	if !errors.Is(err, ErrBudgetExhausted{}) {
		t.Fatalf("err = %v, want joined ErrBudgetExhausted", err)
	}
	if results[0].RefreshCost != 0 || results[1].RefreshCost != 0 {
		t.Errorf("zero budget paid: %+v", results)
	}
	if !results[1].Met {
		t.Error("loose query unmet")
	}
}

func TestChooseBudgetRespectedOnStores(t *testing.T) {
	// The plan's cost bound must hold over sharded stores too, and the
	// plan must be identical across layouts (canonical input order).
	schema := relation.NewSchema(
		relation.Column{Name: "grp", Kind: relation.Exact},
		relation.Column{Name: "v", Kind: relation.Bounded},
	)
	build := func(nshards int) *relation.Store {
		st := relation.NewStore(schema, nshards)
		rng := rand.New(rand.NewSource(9))
		for k := int64(1); k <= 64; k++ {
			w := rng.Float64() * 8
			mid := 50 + rng.Float64()*20
			st.MustInsert(relation.Tuple{
				Key:  k,
				Cost: float64(1 + rng.Intn(9)),
				Bounds: []interval.Interval{
					interval.Point(float64(k % 4)),
					interval.New(mid-w/2, mid+w/2),
				},
			})
		}
		return st
	}
	for _, fn := range []aggregate.Func{aggregate.Sum, aggregate.Min, aggregate.Max, aggregate.Avg} {
		for _, budget := range []float64{0, 3, 11.5, 40, math.Inf(1)} {
			flatIn, flatLen := aggregate.CollectStore(build(1), 1, nil, true, 1)
			shIn, shLen := aggregate.CollectStore(build(relation.DefaultShards), 1, nil, true, 1)
			p1, err1 := refresh.ChooseBudget(flatIn, fn, true, budget, flatLen, refresh.Options{})
			p2, err2 := refresh.ChooseBudget(shIn, fn, true, budget, shLen, refresh.Options{})
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if p1.Cost > budget {
				t.Fatalf("%v budget %g: plan cost %g", fn, budget, p1.Cost)
			}
			if len(p1.Keys) != len(p2.Keys) {
				t.Fatalf("%v budget %g: plan sizes differ: %v vs %v", fn, budget, p1.Keys, p2.Keys)
			}
			for i := range p1.Keys {
				if p1.Keys[i] != p2.Keys[i] {
					t.Fatalf("%v budget %g: plans differ across layouts:\n%v\n%v", fn, budget, p1.Keys, p2.Keys)
				}
			}
		}
	}
}
