// Package continuous implements TRAPP's push-based continuous-query
// subsystem: clients register bounded standing queries (Subscribe) and
// the engine maintains each bounded answer incrementally as the data
// evolves, firing a notification only when the answer interval actually
// moves or the precision constraint is violated. It is the §8.1 "live
// visualization" execution model — precision constraints upheld by the
// system as data changes — built as a streaming server core instead of
// the poll-and-re-execute Monitor loop.
//
// # Event-driven incremental maintenance
//
// The engine never rescans on a schedule. It reacts to three event
// streams:
//
//   - source push events (value-initiated refreshes and propagated
//     inserts/deletes reaching a cache, via the cache's change
//     listener), which dirty exactly the changed object keys;
//   - query-initiated refreshes installed by ordinary queries sharing
//     the cache, observed through the same listener;
//   - clock ticks (netsim.Clock.OnAdvance), which widen every
//     time-varying bound and therefore dirty whole tables.
//
// A single maintainer goroutine coalesces pending events and runs
// maintenance rounds: changed keys have their per-view aggregate
// contributions recomputed (classification + Appendix D shrink on the
// changed tuples only), and only groups containing changed contributions
// are re-folded. Subscriptions sharing a query shape (same table,
// aggregate, column, predicate and grouping — precision constraints may
// differ) share one view, so a thousand dashboards over the same
// aggregate cost one maintenance, not a thousand.
//
// # Shared refresh scheduling
//
// When maintained answers violate their subscriptions' constraints, the
// engine runs CHOOSE_REFRESH per violated view/group — against the
// strictest effective constraint among that view's subscribers, scaled
// by Config.RefreshMargin so the repaired answer has headroom to grow
// before violating again — and then dedupes the union of all plans into
// one batched refresh per table (Cache.MasterBatch, which fans out per
// source in parallel). One paid refresh of a hot object satisfies every
// subscription that needed it; the demand count is fed back to the
// object's Appendix-A width policy (boundfn.DemandObserver) so bound
// widths converge to each object's aggregate demand.
package continuous

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trapp/internal/cache"
	"trapp/internal/netsim"
	"trapp/internal/obs"
	"trapp/internal/query"
	"trapp/internal/refresh"
	"trapp/internal/relation"
)

// DefaultRefreshMargin is the fraction of the strictest violated
// constraint targeted when paying for refreshes. Repairing to exactly R
// leaves zero headroom — the answer violates again on the very next
// tick — so the scheduler over-refreshes to margin·R and amortizes one
// payment across many ticks.
const DefaultRefreshMargin = 0.5

// maxSettlePasses bounds the dirty→process loop of one Settle call; the
// refreshes a round pays re-dirty their keys (the listener cannot tell
// them apart from foreign traffic), so a quiescing settle takes two
// passes and the bound only guards against a pathological feedback loop.
const maxSettlePasses = 8

// Config tunes the engine.
type Config struct {
	// RefreshMargin ∈ (0, 1]: refresh plans target RefreshMargin·R for
	// the strictest violated constraint R. 1 repairs to exactly R (pay
	// every violation), smaller values buy headroom. 0 means
	// DefaultRefreshMargin.
	RefreshMargin float64
	// Options are the CHOOSE_REFRESH options (solver, ε, parallelism).
	Options refresh.Options
	// Metrics, when set, receives per-round maintenance and repair
	// latency observations — the System façade passes the histogram set
	// shared with the query processor.
	Metrics *obs.EngineMetrics
}

// margin returns the configured refresh margin with its default.
func (c Config) margin() float64 {
	if c.RefreshMargin <= 0 || c.RefreshMargin > 1 {
		return DefaultRefreshMargin
	}
	return c.RefreshMargin
}

// Metrics is a snapshot of engine-level counters.
type Metrics struct {
	// Rounds counts maintenance rounds (per dirty table).
	Rounds int64
	// Notifications counts updates pushed to subscription channels.
	Notifications int64
	// RefreshBatches counts shared refresh rounds that paid for at
	// least one object; RefreshedObjects and RefreshCost total the paid
	// query-initiated traffic.
	RefreshBatches   int64
	RefreshedObjects int64
	RefreshCost      float64
	// SharedRefreshes counts paid refreshes that served more than one
	// subscription — the dedup win over per-subscription execution.
	SharedRefreshes int64
	// Views and Subscriptions are current registration counts.
	Views         int
	Subscriptions int
}

// tableState is the engine's registration for one mounted table.
type tableState struct {
	name  string
	c     *cache.Cache
	views map[string]*view
}

// dirtySet accumulates pending events for one table between rounds,
// keyed by owning store shard so a maintenance round touches only the
// shards that actually changed — view recomputation after a push
// contends only with writers of the same shard. An entry with no time
// flag and no keys is a bare poke: it triggers a round (which builds any
// not-yet-built views) without dirtying state.
type dirtySet struct {
	time   bool // a clock tick widened every bound
	shards map[int]map[int64]struct{}
}

// Engine maintains all subscriptions of one System. All methods are safe
// for concurrent use.
type Engine struct {
	clock *netsim.Clock
	cfg   Config

	mu      sync.Mutex // guards tables/views/subscriptions/metrics
	tables  map[string]*tableState
	closed  bool
	m       Metrics
	lastErr error

	subCount atomic.Int64

	dirtyMu sync.Mutex
	dirty   map[string]*dirtySet
	names   []string
	// cacheTables maps a cache to every table name it is mounted under,
	// so the cache's single change listener can dirty all of them.
	cacheTables map[*cache.Cache][]string

	wake     chan struct{}
	done     chan struct{}
	loopOnce sync.Once
	runMu    sync.Mutex // serializes maintenance rounds
}

// NewEngine creates an engine bound to the system clock. The engine
// hooks clock advances; its maintainer goroutine starts lazily with the
// first subscription.
func NewEngine(clock *netsim.Clock, cfg Config) *Engine {
	e := &Engine{
		clock:       clock,
		cfg:         cfg,
		tables:      make(map[string]*tableState),
		dirty:       make(map[string]*dirtySet),
		cacheTables: make(map[*cache.Cache][]string),
		wake:        make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	clock.OnAdvance(func(int64) { e.markTime() })
	return e
}

// AddTable registers a mounted table's backing cache and installs the
// engine as the cache's change listener. A cache mounted under several
// table names gets one listener dirtying all of them (SetListener
// replaces, so the closure must cover every mount).
func (e *Engine) AddTable(name string, c *cache.Cache) {
	e.mu.Lock()
	e.tables[name] = &tableState{name: name, c: c, views: make(map[string]*view)}
	e.mu.Unlock()
	e.dirtyMu.Lock()
	e.names = append(e.names, name)
	e.cacheTables[c] = append(e.cacheTables[c], name)
	mounts := append([]string(nil), e.cacheTables[c]...)
	e.dirtyMu.Unlock()
	c.SetListener(func(ev cache.Event) {
		for _, n := range mounts {
			e.markKey(n, ev.Shard, ev.Key)
		}
	})
}

// signature is the view-sharing key: the query shape without its
// precision constraint.
func signature(q query.Query) string {
	w := "TRUE"
	if q.Where != nil {
		w = q.Where.String()
	}
	return fmt.Sprintf("%s|%s|%s|%s|%s", q.Table, q.Agg, q.Column, w, strings.Join(q.GroupBy, ","))
}

// Subscribe registers a standing query and returns its subscription,
// already primed with an initial update. Queries may carry an absolute
// (Within), relative (RelativeWithin) or no constraint — unconstrained
// subscriptions are pure change feeds that never trigger refreshes.
// GROUP BY queries maintain one incremental answer per group.
func (e *Engine) Subscribe(q query.Query) (*Subscription, error) {
	if q.Within < 0 || math.IsNaN(q.Within) {
		return nil, fmt.Errorf("continuous: invalid precision constraint %g", q.Within)
	}
	if q.RelativeWithin < 0 || math.IsNaN(q.RelativeWithin) {
		return nil, fmt.Errorf("continuous: invalid relative precision %g", q.RelativeWithin)
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, query.ErrClosed
	}
	ts := e.tables[q.Table]
	if ts == nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("continuous: table %q not registered", q.Table)
	}
	schema := ts.c.Schema()
	col, ok := schema.Lookup(q.Column)
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("continuous: unknown column %q.%q", q.Table, q.Column)
	}
	groupIdx := make([]int, len(q.GroupBy))
	for i, name := range q.GroupBy {
		ci, ok := schema.Lookup(name)
		if !ok {
			e.mu.Unlock()
			return nil, fmt.Errorf("continuous: unknown column %q.%q", q.Table, name)
		}
		if schema.Column(ci).Kind != relation.Exact {
			e.mu.Unlock()
			return nil, fmt.Errorf("continuous: grouping column %q must be exact", name)
		}
		groupIdx[i] = ci
	}
	sig := signature(q)
	v := ts.views[sig]
	if v == nil {
		v = newView(sig, q, col, groupIdx)
		ts.views[sig] = v
	}
	s := &Subscription{e: e, v: v, q: q, ch: make(chan Update, 1), done: make(chan struct{})}
	v.subs = append(v.subs, s)
	e.subCount.Add(1)
	e.mu.Unlock()

	e.markPoke(q.Table)
	e.ensureLoop()
	e.Settle()
	return s, nil
}

// SubscribeCtx is Subscribe bound to a context: when the context is
// canceled or its deadline expires, the subscription is closed (its
// channel closes and its standing constraint stops being repaired), so
// callers can tie a standing query's lifetime to a request or session
// context instead of arranging their own Close call.
func (e *Engine) SubscribeCtx(ctx context.Context, q query.Query) (*Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s, err := e.Subscribe(q)
	if err != nil {
		return nil, err
	}
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				s.Close()
			case <-s.done:
				// Closed manually (or by engine shutdown); nothing to do,
				// and the watcher must not outlive the subscription.
			case <-e.done:
				// Engine shutdown already closed every subscription.
			}
		}()
	}
	return s, nil
}

// Metrics returns a snapshot of engine counters.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.m
	for _, ts := range e.tables {
		m.Views += len(ts.views)
		for _, v := range ts.views {
			m.Subscriptions += len(v.subs)
		}
	}
	return m
}

// Err returns the error of the most recent maintenance round's refresh
// scheduling, or nil if it succeeded (e.g. a source losing an object
// mid-flight sets it; the engine keeps running, the next round retries,
// and a clean round clears it).
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lastErr
}

// Close shuts the engine down: all subscription channels are closed and
// further Subscribe calls fail. Idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	for _, ts := range e.tables {
		for _, v := range ts.views {
			for _, s := range v.subs {
				if !s.closed {
					s.closed = true
					close(s.ch)
					close(s.done)
				}
			}
			v.subs = nil
		}
		ts.views = make(map[string]*view)
	}
	e.mu.Unlock()
	e.subCount.Store(0)
	close(e.done)
}

// ensureLoop starts the maintainer goroutine once.
func (e *Engine) ensureLoop() {
	e.loopOnce.Do(func() { go e.loop() })
}

// loop is the maintainer: it drains wake signals and settles.
func (e *Engine) loop() {
	for {
		select {
		case <-e.done:
			return
		case <-e.wake:
			e.Settle()
		}
	}
}

// Settle synchronously processes all pending events until the engine is
// quiescent: every subscription's answer reflects the current cache
// state and violated constraints have been repaired. Tests, benchmarks
// and Monitor.Poll use it for deterministic observation; the maintainer
// goroutine calls it on every wake.
func (e *Engine) Settle() {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	for pass := 0; pass < maxSettlePasses; pass++ {
		d := e.takeDirty()
		if len(d) == 0 {
			return
		}
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return
		}
		for name, ds := range d {
			e.processTableLocked(e.tables[name], ds)
		}
		e.mu.Unlock()
	}
}

// markKey records a changed object (push, refresh, insert or delete)
// under its owning shard.
func (e *Engine) markKey(table string, shard int, key int64) {
	if e.subCount.Load() == 0 {
		return
	}
	e.dirtyMu.Lock()
	ds := e.dirtyFor(table)
	if !ds.time {
		if ds.shards == nil {
			ds.shards = make(map[int]map[int64]struct{})
		}
		keys := ds.shards[shard]
		if keys == nil {
			keys = make(map[int64]struct{})
			ds.shards[shard] = keys
		}
		keys[key] = struct{}{}
	}
	e.dirtyMu.Unlock()
	e.kick()
}

// markTime records a clock tick: every table's bounds have widened.
func (e *Engine) markTime() {
	if e.subCount.Load() == 0 {
		return
	}
	e.dirtyMu.Lock()
	for _, name := range e.names {
		ds := e.dirtyFor(name)
		ds.time = true
		ds.shards = nil
	}
	e.dirtyMu.Unlock()
	e.kick()
}

// markPoke asks for a round on the table without dirtying existing
// state (a new subscription's view needs its first build, which the
// round performs for any view with built == false).
func (e *Engine) markPoke(table string) {
	e.dirtyMu.Lock()
	e.dirtyFor(table)
	e.dirtyMu.Unlock()
	e.kick()
}

// dirtyFor returns (creating if needed) the table's dirty set. Caller
// holds dirtyMu.
func (e *Engine) dirtyFor(table string) *dirtySet {
	ds := e.dirty[table]
	if ds == nil {
		ds = &dirtySet{}
		e.dirty[table] = ds
	}
	return ds
}

// takeDirty atomically swaps out the pending dirty state.
func (e *Engine) takeDirty() map[string]*dirtySet {
	e.dirtyMu.Lock()
	defer e.dirtyMu.Unlock()
	if len(e.dirty) == 0 {
		return nil
	}
	d := e.dirty
	e.dirty = make(map[string]*dirtySet)
	return d
}

// kick wakes the maintainer without blocking.
func (e *Engine) kick() {
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// processTableLocked runs one maintenance round for a table: update
// contributions, re-fold dirty groups, repair violated constraints with
// one shared refresh batch, and fan out notifications. Caller holds
// e.mu.
func (e *Engine) processTableLocked(ts *tableState, ds *dirtySet) {
	if ts == nil || len(ts.views) == 0 {
		return
	}
	if m := e.cfg.Metrics; m != nil {
		defer func(t0 time.Time) { m.Maintain.ObserveDuration(time.Since(t0)) }(time.Now())
	}
	// Delayed insert/delete propagation (§8.3) would leave maintained
	// non-COUNT answers unsound; flush queued membership events first.
	if ts.c.CardinalitySlack() > 0 {
		ts.c.FlushWatched()
	}
	ts.c.Sync()
	st := ts.c.Store()

	// 1. Update per-view contributions from the store, shard by shard
	// under each shard's read lock — so this round contends only with
	// writers of the shards it actually reads. A tick widened every
	// bound, so time-dirty rounds rebuild every view from all shards;
	// push rounds touch only the shards holding changed keys.
	var rebuilding []*view
	for _, v := range ts.views {
		if ds.time || !v.built {
			v.reset(st.Len())
			rebuilding = append(rebuilding, v)
		}
	}
	for si := 0; si < st.NumShards(); si++ {
		keys := ds.shards[si]
		if len(rebuilding) == 0 && len(keys) == 0 {
			continue
		}
		st.ViewShard(si, func(t *relation.Table) {
			for _, v := range rebuilding {
				for i := 0; i < t.Len(); i++ {
					v.applyTuple(t.At(i))
				}
			}
			if len(keys) == 0 {
				return
			}
			for _, v := range ts.views {
				if ds.time || !v.built {
					continue // rebuilt above from the full shard scan
				}
				for key := range keys {
					v.updateKey(t, key)
				}
			}
		})
	}
	for _, v := range rebuilding {
		v.finishRebuild()
	}

	// 2. Re-fold answers of dirty groups.
	for _, v := range ts.views {
		v.recompute()
	}

	// 3. Shared refresh scheduling across all violated views/groups.
	e.repairLocked(ts, st)

	// 4. Notifications: push to each subscription whose visible state
	// changed.
	now := e.clock.Now()
	for _, v := range ts.views {
		for _, s := range v.subs {
			if s.closed {
				continue
			}
			u := v.updateFor(s, now)
			if s.last != nil && sameUpdate(s.last, &u) {
				continue
			}
			s.seq++
			u.Seq = s.seq
			cp := u
			s.last = &cp
			s.notifications++
			e.m.Notifications++
			s.push(u)
		}
	}
	e.m.Rounds++
}

// repairLocked implements the shared refresh scheduler: one
// CHOOSE_REFRESH per violated view/group against the strictest
// subscriber constraint (scaled by the refresh margin), plans deduped
// into a single batched refresh, demand fed back to width policies, and
// contributions re-read for the refreshed keys (shard by shard, under
// shard read locks). No shard lock is held across the oracle fetch.
// Caller holds e.mu.
func (e *Engine) repairLocked(ts *tableState, st *relation.Store) {
	if m := e.cfg.Metrics; m != nil {
		defer func(t0 time.Time) { m.Repair.ObserveDuration(time.Since(t0)) }(time.Now())
	}
	type viewPlan struct {
		v    *view
		plan refresh.Plan
	}
	var (
		plans    []viewPlan
		union    = make(map[int64]float64) // key → cost
		demand   = make(map[int64]int)     // key → subscriptions served
		roundErr error
	)
	defer func() { e.lastErr = roundErr }()
	margin := e.cfg.margin()
	for _, v := range ts.views {
		if len(v.subs) == 0 {
			continue
		}
		for _, g := range v.groups {
			target := math.Inf(1)
			violated := false
			for _, s := range v.subs {
				r := s.effR(g.answer)
				if r < target {
					target = r
				}
				if !query.Satisfies(g.answer, r) {
					violated = true
				}
			}
			if !violated || math.IsInf(target, 1) {
				continue
			}
			if DebugViolations != nil {
				DebugViolations(v.sig, g.gkey, target, g.answer.Width())
			}
			plan, err := refresh.ChooseFromInputs(
				v.groupInputs(g), v.agg, v.trivial, margin*target, g.rows, e.cfg.Options)
			if err != nil {
				roundErr = err
				continue
			}
			if plan.Len() == 0 {
				continue
			}
			plans = append(plans, viewPlan{v, plan})
			for i, key := range plan.Keys {
				union[key] = plan.Costs[i]
				demand[key] += len(v.subs)
			}
		}
	}
	if len(union) == 0 {
		return
	}
	keys := make([]int64, 0, len(union))
	for key := range union {
		keys = append(keys, key)
		// Feed aggregate demand to the width policies BEFORE paying, so
		// the refresh about to be pulled already carries the converged
		// (demand-narrowed, growth-held) width — otherwise the repaired
		// bounds would still be sized for a single query stream and blow
		// past the constraint again on the very next tick, forcing a
		// duplicate batch.
		if n := demand[key]; n > 1 {
			ts.c.ObserveDemand(key, n)
		}
	}
	// One deduped batch per table; the cache fans it out per source and
	// installs the results (dropping races with newer pushes).
	vals, err := ts.c.MasterBatch(keys)
	if err != nil {
		roundErr = err
		return
	}
	var paid float64
	for key := range vals {
		paid += union[key]
		if demand[key] > 1 {
			e.m.SharedRefreshes++
		}
	}
	e.m.RefreshBatches++
	e.m.RefreshedObjects += int64(len(vals))
	e.m.RefreshCost += paid
	for _, vp := range plans {
		for i, key := range vp.plan.Keys {
			if _, ok := vals[key]; ok {
				vp.v.attributedCost += vp.plan.Costs[i]
				vp.v.attributedRefreshes++
			}
		}
	}

	// Re-read the refreshed keys and re-fold, so this round's
	// notifications already reflect the repaired answers. Keys are
	// grouped by owning shard, one read lock per touched shard.
	byShard := make(map[int][]int64)
	for key := range vals {
		byShard[st.ShardOf(key)] = append(byShard[st.ShardOf(key)], key)
	}
	for si, ks := range byShard {
		st.ViewShard(si, func(t *relation.Table) {
			for _, v := range ts.views {
				for _, key := range ks {
					v.updateKey(t, key)
				}
			}
		})
	}
	for _, v := range ts.views {
		v.recompute()
	}
}

// DebugViolations, when set, receives (view signature, group key,
// effective target R, current width) for every violated view/group the
// scheduler plans for — a diagnostics hook used by benchmark tooling to
// attribute refresh demand. Nil (the default) disables it.
var DebugViolations func(sig string, gkey string, target, width float64)
