package continuous_test

import (
	"math"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/boundfn"
	"trapp/internal/cache"
	"trapp/internal/continuous"
	"trapp/internal/netsim"
	"trapp/internal/query"
	"trapp/internal/relation"
	"trapp/internal/source"
)

// rig is a minimal source→cache→engine assembly: one source, one cache
// with schema (g Exact, value Bounded), objects keyed 1..n with value
// 10·key, group key%2, cost 1+key%3, static width 1.
type rig struct {
	clock *netsim.Clock
	net   *netsim.Network
	src   *source.Source
	c     *cache.Cache
	e     *continuous.Engine
}

func newRig(t *testing.T, n int, cfg continuous.Config) *rig {
	t.Helper()
	r := &rig{clock: netsim.NewClock(), net: netsim.NewNetwork()}
	r.src = source.New("s", r.clock, r.net, nil)
	schema := relation.NewSchema(
		relation.Column{Name: "g", Kind: relation.Exact},
		relation.Column{Name: "value", Kind: relation.Bounded},
	)
	r.c = cache.New("c", r.clock, schema)
	for key := int64(1); key <= int64(n); key++ {
		if err := r.src.AddObject(key, []float64{float64(10 * key)},
			float64(1+key%3), boundfn.StaticWidth(1)); err != nil {
			t.Fatal(err)
		}
		if err := r.c.Subscribe(r.src, key, []float64{float64(key % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	r.e = continuous.NewEngine(r.clock, cfg)
	r.e.AddTable("vals", r.c)
	t.Cleanup(r.e.Close)
	return r
}

// drain returns the pending update, if any, without blocking.
func drain(s *continuous.Subscription) (continuous.Update, bool) {
	select {
	case u, ok := <-s.Updates():
		return u, ok
	default:
		return continuous.Update{}, false
	}
}

func TestScalarSubscriptionPushAndRepair(t *testing.T) {
	r := newRig(t, 4, continuous.Config{})
	q := query.NewQuery("vals", aggregate.Sum, "value")
	q.Within = 3
	sub, err := r.e.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	// Initial update: all bounds are points at subscription time.
	u, ok := drain(sub)
	if !ok {
		t.Fatal("no initial update")
	}
	wantSum := 10.0 + 20 + 30 + 40
	if !u.Met || !u.Answer.Contains(wantSum) || u.Answer.Width() > 1e-9 {
		t.Fatalf("initial update %+v, want point at %g", u, wantSum)
	}

	// A push that escapes the promised bound moves the answer without
	// any query-initiated refresh.
	if err := r.src.SetValue(1, []float64{100}); err != nil {
		t.Fatal(err)
	}
	r.e.Settle()
	u, ok = drain(sub)
	if !ok {
		t.Fatal("no update after escaping push")
	}
	wantSum = 100.0 + 20 + 30 + 40
	if !u.Answer.Contains(wantSum) {
		t.Fatalf("after push answer %v, want to contain %g", u.Answer, wantSum)
	}
	if got := r.net.Stats().Messages[netsim.QueryRefresh]; got != 0 {
		t.Fatalf("push maintenance paid %d query refreshes", got)
	}

	// Clock growth violates the constraint (4 objects × width 1 × √25 =
	// width 40 > 3); the engine repairs it with a shared refresh batch.
	// A quiet in-bound master change rides along: the repair's exact
	// values move the answer, so the subscriber is notified.
	r.clock.Advance(25)
	if err := r.src.SetValue(2, []float64{25}); err != nil {
		t.Fatal(err) // 25 ∈ [20−√25, 20+√25]: no push, the repair finds it
	}
	r.e.Settle()
	u, ok = drain(sub)
	if !ok {
		t.Fatal("no update after violation repair")
	}
	wantSum = 100.0 + 25 + 30 + 40
	if !u.Met || u.Answer.Width() > 3+1e-9 {
		t.Fatalf("repaired update %+v, want met within 3", u)
	}
	if !u.Answer.Contains(wantSum) {
		t.Fatalf("repaired answer %v excludes true sum %g", u.Answer, wantSum)
	}
	st := r.net.Stats()
	if st.Messages[netsim.QueryRefresh] == 0 || st.QueryRefreshCost == 0 {
		t.Fatal("repair paid no query refreshes")
	}
	if m := r.e.Metrics(); m.RefreshBatches == 0 || m.RefreshedObjects == 0 {
		t.Fatalf("metrics missed the repair: %+v", m)
	}
}

func TestViewSharingDedupesRefreshDemand(t *testing.T) {
	r := newRig(t, 6, continuous.Config{})
	mk := func(within float64) *continuous.Subscription {
		q := query.NewQuery("vals", aggregate.Sum, "value")
		q.Within = within
		sub, err := r.e.Subscribe(q)
		if err != nil {
			t.Fatal(err)
		}
		return sub
	}
	loose, strict := mk(50), mk(5)
	if m := r.e.Metrics(); m.Views != 1 || m.Subscriptions != 2 {
		t.Fatalf("same-shape subscriptions not shared: %+v", m)
	}

	r.clock.Advance(100)
	r.e.Settle()
	// One repair round must satisfy both; its refreshes served two
	// subscriptions each.
	for _, sub := range []*continuous.Subscription{loose, strict} {
		cur, ok := sub.Current()
		if !ok || !cur.Met {
			t.Fatalf("subscription not repaired: %+v", cur)
		}
	}
	if cur, _ := strict.Current(); cur.Answer.Width() > 5+1e-9 {
		t.Fatalf("strict subscription width %g > 5", cur.Answer.Width())
	}
	m := r.e.Metrics()
	if m.SharedRefreshes == 0 {
		t.Fatalf("no refreshes recorded as shared: %+v", m)
	}
	if m.RefreshBatches != 1 {
		t.Fatalf("expected one deduped batch, got %d", m.RefreshBatches)
	}
}

func TestGroupBySubscriptionTracksMembership(t *testing.T) {
	r := newRig(t, 4, continuous.Config{})
	r.c.WatchSource(r.src) // propagate inserts/deletes
	q := query.NewQuery("vals", aggregate.Sum, "value")
	q.Within = 4
	q.GroupBy = []string{"g"}
	sub, err := r.e.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := drain(sub)
	if !ok || len(u.Groups) != 2 {
		t.Fatalf("initial grouped update %+v, want 2 groups", u)
	}
	// g=0 holds keys 2,4 (sum 60); g=1 holds keys 1,3 (sum 40).
	if u.Groups[0].Key[0] != 0 || !u.Groups[0].Answer.Contains(60) {
		t.Fatalf("group 0 = %+v, want sum 60", u.Groups[0])
	}
	if u.Groups[1].Key[0] != 1 || !u.Groups[1].Answer.Contains(40) {
		t.Fatalf("group 1 = %+v, want sum 40", u.Groups[1])
	}

	// An inserted object in a brand-new group appears incrementally.
	if err := r.src.InsertObject(10, []float64{70}, 1, nil, []float64{5}); err != nil {
		t.Fatal(err)
	}
	r.e.Settle()
	u, ok = drain(sub)
	if !ok || len(u.Groups) != 3 {
		t.Fatalf("after insert %+v, want 3 groups", u)
	}
	if u.Groups[2].Key[0] != 5 || !u.Groups[2].Answer.Contains(70) {
		t.Fatalf("new group = %+v, want sum 70", u.Groups[2])
	}

	// Deleting its only member removes the group.
	if err := r.src.RemoveObject(10); err != nil {
		t.Fatal(err)
	}
	r.e.Settle()
	u, ok = drain(sub)
	if !ok || len(u.Groups) != 2 {
		t.Fatalf("after delete %+v, want 2 groups", u)
	}

	// Growth violates per-group constraints; the repair meets each
	// group. Master values have not moved, so the repair restores the
	// previous answers exactly — silently; assert via Current.
	r.clock.Advance(49)
	r.e.Settle()
	cur, ok := sub.Current()
	if !ok || !cur.Met {
		t.Fatalf("grouped repair failed: %+v", cur)
	}
	for _, g := range cur.Groups {
		if g.Answer.Width() > 4+1e-9 {
			t.Fatalf("group %v width %g > 4", g.Key, g.Answer.Width())
		}
	}
	if r.net.Stats().Messages[netsim.QueryRefresh] == 0 {
		t.Fatal("grouped repair paid no refreshes")
	}
}

func TestUnconstrainedSubscriptionNeverPays(t *testing.T) {
	r := newRig(t, 3, continuous.Config{})
	q := query.NewQuery("vals", aggregate.Max, "value") // R = +Inf
	sub, err := r.e.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	r.clock.Advance(10000)
	r.e.Settle()
	cur, ok := sub.Current()
	if !ok || !cur.Met {
		t.Fatalf("unconstrained subscription unhappy: %+v", cur)
	}
	if got := r.net.Stats().Messages[netsim.QueryRefresh]; got != 0 {
		t.Fatalf("unconstrained subscription paid %d refreshes", got)
	}
	if cur.Answer.Width() == 0 {
		t.Fatal("bounds did not grow; test is vacuous")
	}
}

func TestQuiescentViewIsSilent(t *testing.T) {
	r := newRig(t, 3, continuous.Config{})
	q := query.NewQuery("vals", aggregate.Sum, "value")
	q.Within = 1000 // never violated in this test
	sub, err := r.e.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := drain(sub); !ok {
		t.Fatal("no initial update")
	}
	// An in-bound update (no push) and a settle produce no notification.
	if err := r.src.SetValue(1, []float64{10}); err != nil {
		t.Fatal(err)
	}
	r.e.Settle()
	if u, ok := drain(sub); ok {
		t.Fatalf("unchanged answer notified: %+v", u)
	}
	st := sub.Stats()
	if st.Notifications != 1 {
		t.Fatalf("notifications = %d, want 1", st.Notifications)
	}
}

func TestSubscriptionClose(t *testing.T) {
	r := newRig(t, 2, continuous.Config{})
	q := query.NewQuery("vals", aggregate.Sum, "value")
	q.Within = math.Inf(1)
	sub, err := r.e.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close() // idempotent
	if _, ok := <-sub.Updates(); ok {
		// drains the buffered initial update first; channel must then be
		// closed
		if _, ok := <-sub.Updates(); ok {
			t.Fatal("channel still open after Close")
		}
	}
	if m := r.e.Metrics(); m.Subscriptions != 0 || m.Views != 0 {
		t.Fatalf("registration leaked: %+v", m)
	}
}

func TestSubscribeValidation(t *testing.T) {
	r := newRig(t, 2, continuous.Config{})
	cases := []query.Query{
		{Table: "missing", Agg: aggregate.Sum, Column: "value", Within: 1},
		{Table: "vals", Agg: aggregate.Sum, Column: "nope", Within: 1},
		{Table: "vals", Agg: aggregate.Sum, Column: "value", Within: -1},
		{Table: "vals", Agg: aggregate.Sum, Column: "value", Within: 1, GroupBy: []string{"value"}}, // bounded group col
		{Table: "vals", Agg: aggregate.Sum, Column: "value", Within: 1, GroupBy: []string{"nope"}},
	}
	for _, q := range cases {
		if _, err := r.e.Subscribe(q); err == nil {
			t.Errorf("Subscribe(%+v) accepted", q)
		}
	}
}

func TestDualMountKeepsBothTablesLive(t *testing.T) {
	r := newRig(t, 2, continuous.Config{})
	// The same cache mounted under a second table name must not detach
	// the first mount's event stream (the cache has a single listener).
	r.e.AddTable("vals2", r.c)
	q := query.NewQuery("vals", aggregate.Sum, "value")
	sub, err := r.e.Subscribe(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := drain(sub); !ok {
		t.Fatal("no initial update")
	}
	if err := r.src.SetValue(1, []float64{75}); err != nil {
		t.Fatal(err) // escapes the point bound → push event
	}
	r.e.Settle()
	u, ok := drain(sub)
	if !ok {
		t.Fatal("first mount's subscription missed a push event after a second mount")
	}
	if want := 75.0 + 20; !u.Answer.Contains(want) {
		t.Fatalf("answer %v does not contain %g", u.Answer, want)
	}
}
