package continuous

import (
	"fmt"
	"sort"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/query"
	"trapp/internal/relation"
)

// view is the shared incremental state for one standing-query shape: all
// subscriptions whose queries differ only in their precision constraint
// attach to the same view, so a table with a thousand dashboards showing
// the same aggregate is maintained once. A view keeps, per object key,
// the object's current contribution to the aggregate (its classified,
// possibly shrunk bound on the aggregation column) and, per group, the
// folded bounded answer. Events update contributions only for the
// changed keys; answers are re-folded only for groups containing a
// changed contribution.
type view struct {
	sig     string
	table   string
	agg     aggregate.Func
	col     int
	where   predicate.Expr
	trivial bool              // no WHERE predicate
	restr   interval.Interval // Appendix D restriction of where on col

	groupBy  []string
	groupIdx []int // exact grouping columns, schema order

	subs []*Subscription

	built   bool
	contrib map[int64]*contrib
	groups  map[string]*group

	// attributedCost / attributedRefreshes accumulate, across scheduler
	// rounds, the cost and count of the refreshes this view's plans
	// demanded (whether or not another view shared them). Monitor polls
	// report deltas of these.
	attributedCost      float64
	attributedRefreshes int64
}

// contrib is one object's tracked contribution to a view.
type contrib struct {
	gkey        string
	class       predicate.Class
	in          aggregate.Input
	contributes bool // false for T− objects (tracked only for group row counts)
}

// group is one group's maintained answer; scalar views use the single
// group with key "".
type group struct {
	gkey   string
	vals   []float64
	rows   int // rows mapped to this group, including T−
	inputs map[int64]aggregate.Input
	dirty  bool
	answer interval.Interval
}

// newView builds an empty view for the query shape (constraint fields of
// q are ignored; each subscription carries its own).
func newView(sig string, q query.Query, col int, groupIdx []int) *view {
	v := &view{
		sig:      sig,
		table:    q.Table,
		agg:      q.Agg,
		col:      col,
		where:    q.Where,
		trivial:  predicate.IsTrivial(q.Where),
		restr:    interval.Unbounded,
		groupBy:  append([]string(nil), q.GroupBy...),
		groupIdx: groupIdx,
	}
	if !v.trivial {
		v.restr = predicate.Restriction(q.Where, col)
	}
	return v
}

// scalar reports whether the view has no GROUP BY.
func (v *view) scalar() bool { return len(v.groupIdx) == 0 }

// groupOf maps a tuple to its group key. Grouping columns are exact, so
// membership is certain (their bounds are points).
func (v *view) groupOf(tu *relation.Tuple) (string, []float64) {
	if v.scalar() {
		return "", nil
	}
	vals := make([]float64, len(v.groupIdx))
	for i, ci := range v.groupIdx {
		vals[i] = tu.Bounds[ci].Lo
	}
	return fmt.Sprint(vals), vals
}

// classify mirrors aggregate.Collect: predicate classification plus the
// Appendix D shrink of T? bounds, reclassifying to T− when the shrunk
// bound is empty.
func (v *view) classify(tu *relation.Tuple) (predicate.Class, interval.Interval) {
	cls := predicate.Plus
	if !v.trivial {
		cls = predicate.ClassifyTuple(v.where, tu)
	}
	if cls == predicate.Minus {
		return predicate.Minus, interval.Interval{}
	}
	b := tu.Bounds[v.col]
	if cls == predicate.Maybe {
		s := b.Intersect(v.restr)
		if s.IsEmpty() {
			return predicate.Minus, interval.Interval{}
		}
		b = s
	}
	return cls, b
}

// reset clears the contribution state ahead of a rebuild. The engine
// then feeds every tuple through applyTuple, shard by shard, and calls
// finishRebuild. Used on first build and on clock ticks, when every
// bound has widened.
func (v *view) reset(capacity int) {
	v.contrib = make(map[int64]*contrib, capacity)
	v.groups = make(map[string]*group)
	if v.scalar() {
		v.groups[""] = &group{gkey: "", inputs: make(map[int64]aggregate.Input)}
	}
	v.built = false
}

// finishRebuild marks every group dirty (a rebuild recomputes all
// answers) and the view built.
func (v *view) finishRebuild() {
	for _, g := range v.groups {
		g.dirty = true
	}
	v.built = true
}

// updateKey refreshes one object's contribution from its shard table
// (removing it if the object is gone). The caller holds the shard's read
// lock; the table must be the shard owning the key.
func (v *view) updateKey(t *relation.Table, key int64) {
	i := t.ByKey(key)
	if i < 0 {
		v.removeKey(key)
		return
	}
	v.applyTuple(t.At(i))
}

// applyTuple installs or updates the tuple's contribution, marking its
// group dirty only when the contribution actually changed.
func (v *view) applyTuple(tu *relation.Tuple) {
	gkey, vals := v.groupOf(tu)
	g := v.groups[gkey]
	if g == nil {
		g = &group{gkey: gkey, vals: vals, inputs: make(map[int64]aggregate.Input)}
		v.groups[gkey] = g
	}
	c := v.contrib[tu.Key]
	if c == nil {
		c = &contrib{gkey: gkey}
		v.contrib[tu.Key] = c
		g.rows++
		g.dirty = true
	}
	cls, b := v.classify(tu)
	if cls == predicate.Minus {
		if c.contributes {
			delete(g.inputs, tu.Key)
			g.dirty = true
		}
		c.class, c.contributes = cls, false
		return
	}
	if c.contributes && c.class == cls && c.in.Bound == b && c.in.Cost == tu.Cost {
		return // unchanged contribution: nothing to recompute
	}
	in := aggregate.Input{Key: tu.Key, Bound: b, Cost: tu.Cost, Class: cls}
	g.inputs[tu.Key] = in
	c.class, c.in, c.contributes = cls, in, true
	g.dirty = true
}

// removeKey drops an object's contribution (a propagated deletion).
func (v *view) removeKey(key int64) {
	c := v.contrib[key]
	if c == nil {
		return
	}
	delete(v.contrib, key)
	g := v.groups[c.gkey]
	if g == nil {
		return
	}
	g.rows--
	delete(g.inputs, key)
	g.dirty = true
	if g.rows <= 0 && !v.scalar() {
		delete(v.groups, c.gkey)
	}
}

// groupInputs materializes a group's contributions as a deterministic
// (key-ordered) input slice for EvalInputs and ChooseFromInputs, so the
// maintained answers are bit-identical to what the query processor would
// compute over the same cache state.
func (v *view) groupInputs(g *group) []aggregate.Input {
	out := make([]aggregate.Input, 0, len(g.inputs))
	for _, in := range g.inputs {
		out = append(out, in)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	for i := range out {
		out[i].Index = i
	}
	return out
}

// recompute re-folds the answers of dirty groups. Notification
// suppression compares whole per-subscription updates (sameUpdate), so
// no change flag is tracked here.
func (v *view) recompute() {
	for _, g := range v.groups {
		if !g.dirty {
			continue
		}
		g.dirty = false
		g.answer = aggregate.EvalInputs(v.groupInputs(g), v.agg, v.trivial, g.rows)
	}
}

// sortedGroups returns the view's groups ordered by group key values,
// matching the row order of ExecuteGroupBy.
func (v *view) sortedGroups() []*group {
	out := make([]*group, 0, len(v.groups))
	for _, g := range v.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool {
		va, vb := out[a].vals, out[b].vals
		for i := range va {
			if va[i] != vb[i] {
				return va[i] < vb[i]
			}
		}
		return false
	})
	return out
}

// sameInterval reports interval equality with all empty intervals
// considered equal.
func sameInterval(a, b interval.Interval) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return a.IsEmpty() && b.IsEmpty()
	}
	return a == b
}
