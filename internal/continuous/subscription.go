package continuous

import (
	"trapp/internal/interval"
	"trapp/internal/query"
)

// Update is one pushed notification: the subscription's maintained
// bounded answer after a change. Updates fire only when the answer
// interval actually moves or the constraint's met-status flips — a
// quiescent standing query is silent.
type Update struct {
	// Seq numbers this subscription's updates from 1; coalescing can
	// skip intermediate values but Seq never decreases.
	Seq int64
	// At is the logical clock tick at which the answer was computed.
	At int64
	// Answer is the bounded answer for scalar queries; for GROUP BY
	// queries it is empty and Groups carries the per-group answers.
	Answer interval.Interval
	// Groups holds per-group answers for GROUP BY subscriptions, ordered
	// by group key (as in ExecuteGroupBy). Treat as read-only.
	Groups []GroupAnswer
	// Met reports whether the precision constraint holds — for GROUP BY,
	// whether it holds for every group. The engine restores violated
	// constraints with shared refreshes, so a false Met is transient
	// (visible only when a notification races the repair round).
	Met bool
}

// GroupAnswer is one group's bounded answer in a GROUP BY subscription.
type GroupAnswer struct {
	// Key holds the group's values of the grouping columns.
	Key []float64
	// Answer is the group's maintained bounded answer.
	Answer interval.Interval
	// Met reports the group's constraint status.
	Met bool
}

// Stats is a snapshot of a subscription's accounting.
type Stats struct {
	// Answer and Met mirror the latest computed update.
	Answer interval.Interval
	Met    bool
	// Notifications counts updates pushed to the channel.
	Notifications int64
	// AttributedCost and AttributedRefreshes total the query-initiated
	// refresh demand the subscription's view has placed on the shared
	// scheduler (a shared refresh is attributed to every view that asked
	// for it, so sums across views can exceed the network totals).
	AttributedCost      float64
	AttributedRefreshes int64
}

// Subscription is one registered standing query. Receive maintained
// answers from Updates; the channel holds the latest pending update
// (slow consumers observe coalesced state, never stale backlog).
type Subscription struct {
	e *Engine
	v *view
	q query.Query

	ch     chan Update
	done   chan struct{} // closed exactly when the subscription closes
	closed bool
	seq    int64
	last   *Update

	notifications int64
}

// Query returns the subscribed query.
func (s *Subscription) Query() query.Query { return s.q }

// Updates returns the notification channel. It is closed by Close (and
// by Engine.Close).
func (s *Subscription) Updates() <-chan Update { return s.ch }

// Current returns the latest computed update (whether or not it was
// consumed from the channel) and whether one exists yet.
func (s *Subscription) Current() (Update, bool) {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	if s.last == nil {
		return Update{}, false
	}
	return *s.last, true
}

// Stats returns a snapshot of the subscription's accounting.
func (s *Subscription) Stats() Stats {
	s.e.mu.Lock()
	defer s.e.mu.Unlock()
	st := Stats{
		Notifications:       s.notifications,
		AttributedCost:      s.v.attributedCost,
		AttributedRefreshes: s.v.attributedRefreshes,
	}
	if s.last != nil {
		st.Answer = s.last.Answer
		st.Met = s.last.Met
	}
	return st
}

// Close unregisters the subscription and closes its channel. Closing an
// already-closed subscription is a no-op.
func (s *Subscription) Close() {
	e := s.e
	e.mu.Lock()
	defer e.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.ch)
	close(s.done)
	subs := s.v.subs[:0]
	for _, other := range s.v.subs {
		if other != s {
			subs = append(subs, other)
		}
	}
	s.v.subs = subs
	if len(subs) == 0 {
		if ts := e.tables[s.v.table]; ts != nil {
			delete(ts.views, s.v.sig)
		}
	}
	e.subCount.Add(-1)
}

// effR returns the subscription's effective absolute precision
// constraint given the current answer: Within for absolute constraints,
// the conservative §8.1 conversion for relative ones.
func (s *Subscription) effR(ans interval.Interval) float64 {
	if s.q.RelativeWithin > 0 {
		return query.RelativeR(ans, s.q.RelativeWithin)
	}
	return s.q.Within
}

// met reports whether an answer honors the subscription's constraint.
func (s *Subscription) met(ans interval.Interval) bool {
	return query.Satisfies(ans, s.effR(ans))
}

// push delivers an update with coalescing: when the subscriber has not
// drained the previous update, it is replaced by the newer one.
func (s *Subscription) push(u Update) {
	select {
	case s.ch <- u:
		return
	default:
	}
	select {
	case <-s.ch:
	default:
	}
	select {
	case s.ch <- u:
	default:
	}
}

// updateFor assembles the subscription's current update from its view.
// Caller holds the engine lock.
func (v *view) updateFor(s *Subscription, now int64) Update {
	u := Update{At: now, Met: true}
	if v.scalar() {
		if g := v.groups[""]; g != nil {
			u.Answer = g.answer
			u.Met = s.met(g.answer)
		}
		return u
	}
	for _, g := range v.sortedGroups() {
		met := s.met(g.answer)
		if !met {
			u.Met = false
		}
		u.Groups = append(u.Groups, GroupAnswer{
			Key:    append([]float64(nil), g.vals...),
			Answer: g.answer,
			Met:    met,
		})
	}
	return u
}

// sameUpdate reports whether two updates carry the same answer state
// (ignoring Seq and At), used to suppress no-op notifications.
func sameUpdate(a, b *Update) bool {
	if a.Met != b.Met || !sameInterval(a.Answer, b.Answer) {
		return false
	}
	if len(a.Groups) != len(b.Groups) {
		return false
	}
	for i := range a.Groups {
		ga, gb := a.Groups[i], b.Groups[i]
		if ga.Met != gb.Met || !sameInterval(ga.Answer, gb.Answer) {
			return false
		}
		if len(ga.Key) != len(gb.Key) {
			return false
		}
		for j := range ga.Key {
			if ga.Key[j] != gb.Key[j] {
				return false
			}
		}
	}
	return true
}
