package refresh

// The cost-bounded dual of CHOOSE_REFRESH. The paper's algorithm takes
// a precision constraint R and minimizes refresh cost; the dual takes a
// cost budget B and minimizes the guaranteed answer width:
//
//	maximize   width reduction of the refresh set
//	subject to Σ C_i over the refresh set ≤ B
//
// Per aggregate the structure inverts cleanly:
//
//   - SUM: the primal keeps tuples (knapsack of the complement); the
//     dual *selects* the refresh set directly — profit = the tuple's
//     residual width contribution (T? widths extended to include 0,
//     exactly the primal's weights), weight = its refresh cost C_i,
//     capacity = B. The same solvers apply with the roles swapped.
//   - AVG: SUM's knapsack; without a predicate the 1/COUNT scaling is a
//     constant and does not change the argmax. With a predicate, T?
//     profits carry the Appendix F reclassification slope at its
//     precise-target value (r = 0), the conservative inflation.
//   - MIN: the guaranteed lower endpoint is the smallest unrefreshed
//     L_i, so partial refreshes below a threshold buy nothing — useful
//     refresh sets are exactly the prefixes of the ascending-L_i order
//     (the Appendix B threshold structure inverted). Take the longest
//     affordable prefix, whole L-tie groups at a time. MAX is
//     symmetric over descending H_i.
//   - COUNT: each refreshed T? tuple shrinks the width by exactly 1, so
//     cheapest-first is optimal: refresh T? tuples in ascending cost
//     order while the budget lasts.
//
// Determinism: inputs arrive in the canonical order and every tie is
// broken by object key, so the chosen plan — like the primal's — is
// bit-identical across physical store layouts.

import (
	"fmt"
	"math"
	"sort"

	"trapp/internal/aggregate"
	"trapp/internal/knapsack"
	"trapp/internal/predicate"
)

// ChooseBudget selects the refresh set that maximizes the guaranteed
// width reduction of the aggregate subject to a total refresh cost of at
// most budget — the cost-bounded dual of ChooseFromInputs. A zero budget
// (or one smaller than every useful refresh) yields an empty plan; an
// infinite budget refreshes everything useful, reproducing precise mode.
// The returned plan always satisfies Plan.Cost ≤ budget.
func ChooseBudget(inputs []aggregate.Input, fn aggregate.Func, noPred bool, budget float64, tableLen int, opts Options) (Plan, error) {
	if budget < 0 || math.IsNaN(budget) {
		return Plan{}, fmt.Errorf("refresh: invalid cost budget %g", budget)
	}
	if budget == 0 || len(inputs) == 0 {
		return Plan{}, nil
	}
	switch fn {
	case aggregate.Min:
		return planFromInputs(budgetMin(inputs, budget)), nil
	case aggregate.Max:
		return planFromInputs(budgetMax(inputs, budget)), nil
	case aggregate.Sum:
		return planFromInputs(budgetKnapsack(inputs, noPred, budget, 0, opts)), nil
	case aggregate.Count:
		return planFromInputs(budgetCount(inputs, noPred, budget)), nil
	case aggregate.Avg:
		return planFromInputs(budgetAvg(inputs, noPred, budget, tableLen, opts)), nil
	default:
		return Plan{}, fmt.Errorf("refresh: unknown aggregate %v", fn)
	}
}

// budgetMin takes the longest affordable prefix of the ascending-L_i
// order over the tuples that can matter (L_i below the certain upper
// endpoint min over T+ of H_k — precisely the full-refresh set of the
// primal at R = 0). Tuples tied on L_i enter together or not at all:
// the guaranteed lower endpoint is the smallest unrefreshed L_i, so a
// partial tie group costs budget without narrowing the guarantee.
func budgetMin(inputs []aggregate.Input, budget float64) []aggregate.Input {
	minPlusH := math.Inf(1)
	for _, in := range inputs {
		if in.Class == predicate.Plus && in.Bound.Hi < minPlusH {
			minPlusH = in.Bound.Hi
		}
	}
	var cand []aggregate.Input
	for _, in := range inputs {
		if in.Bound.Lo < minPlusH {
			cand = append(cand, in)
		}
	}
	sort.SliceStable(cand, func(a, b int) bool {
		if cand[a].Bound.Lo != cand[b].Bound.Lo {
			return cand[a].Bound.Lo < cand[b].Bound.Lo
		}
		return cand[a].Key < cand[b].Key
	})
	return affordablePrefix(cand, budget, func(in aggregate.Input) float64 { return in.Bound.Lo })
}

// budgetMax is the symmetric prefix over descending H_i.
func budgetMax(inputs []aggregate.Input, budget float64) []aggregate.Input {
	maxPlusL := math.Inf(-1)
	for _, in := range inputs {
		if in.Class == predicate.Plus && in.Bound.Lo > maxPlusL {
			maxPlusL = in.Bound.Lo
		}
	}
	var cand []aggregate.Input
	for _, in := range inputs {
		if in.Bound.Hi > maxPlusL {
			cand = append(cand, in)
		}
	}
	sort.SliceStable(cand, func(a, b int) bool {
		if cand[a].Bound.Hi != cand[b].Bound.Hi {
			return cand[a].Bound.Hi > cand[b].Bound.Hi
		}
		return cand[a].Key < cand[b].Key
	})
	return affordablePrefix(cand, budget, func(in aggregate.Input) float64 { return in.Bound.Hi })
}

// affordablePrefix walks the ordered candidates, admitting whole groups
// of tuples tied on endpoint(·), and stops at the first group that does
// not fit the remaining budget.
func affordablePrefix(cand []aggregate.Input, budget float64, endpoint func(aggregate.Input) float64) []aggregate.Input {
	var chosen []aggregate.Input
	spent := 0.0
	for i := 0; i < len(cand); {
		j := i + 1
		groupCost := cand[i].Cost
		for j < len(cand) && endpoint(cand[j]) == endpoint(cand[i]) {
			groupCost += cand[j].Cost
			j++
		}
		if spent+groupCost > budget {
			break
		}
		chosen = append(chosen, cand[i:j]...)
		spent += groupCost
		i = j
	}
	return chosen
}

// budgetCount refreshes T? tuples cheapest-first while the budget lasts;
// each one shrinks the COUNT width by exactly 1, so cheapest-first
// maximizes the reduction.
func budgetCount(inputs []aggregate.Input, noPred bool, budget float64) []aggregate.Input {
	if noPred {
		return nil // COUNT without a predicate is already exact
	}
	var maybes []aggregate.Input
	for _, in := range inputs {
		if in.Class == predicate.Maybe {
			maybes = append(maybes, in)
		}
	}
	return cheapestAffordable(maybes, budget)
}

// cheapestAffordable sorts the candidates by (cost, key) and takes them
// greedily while the budget lasts — the shared spend rule of the COUNT
// dual and the degenerate no-certain-tuple AVG fallback.
func cheapestAffordable(cand []aggregate.Input, budget float64) []aggregate.Input {
	cand = append([]aggregate.Input(nil), cand...)
	sort.SliceStable(cand, func(a, b int) bool {
		if cand[a].Cost != cand[b].Cost {
			return cand[a].Cost < cand[b].Cost
		}
		return cand[a].Key < cand[b].Key
	})
	var chosen []aggregate.Input
	spent := 0.0
	for _, in := range cand {
		if spent+in.Cost > budget {
			break
		}
		chosen = append(chosen, in)
		spent += in.Cost
	}
	return chosen
}

// budgetKnapsack solves the inverted SUM/AVG knapsack: select the
// refresh set directly, profit = residual width contribution (plus the
// optional T? slope inflation), weight = refresh cost, capacity =
// budget. Zero-profit tuples are excluded up front — refreshing a point
// bound buys nothing and must not consume budget.
func budgetKnapsack(inputs []aggregate.Input, noPred bool, budget, maybeSlope float64, opts Options) []aggregate.Input {
	useful := make([]aggregate.Input, 0, len(inputs))
	items := make([]knapsack.Item, 0, len(inputs))
	for _, in := range inputs {
		w := sumWeight(in, noPred)
		if !noPred && in.Class == predicate.Maybe {
			w += maybeSlope
		}
		if w <= 0 {
			continue
		}
		useful = append(useful, in)
		items = append(items, knapsack.Item{Profit: w, Weight: in.Cost})
	}
	if len(useful) == 0 {
		return nil
	}
	// Fast path: everything useful fits, refresh it all (precise mode).
	total := 0.0
	for _, it := range items {
		total += it.Weight
	}
	if total <= budget {
		return useful
	}
	sol := solve(items, budget, opts)
	chosen := make([]aggregate.Input, len(sol.Selected))
	for i, j := range sol.Selected {
		chosen[i] = useful[j]
	}
	return chosen
}

// budgetAvg is the AVG dual. Without a predicate the 1/n scaling is
// constant, so it is SUM's knapsack. With one, T? profits are inflated
// by the Appendix F reclassification slope at its precise-target value;
// with no certain tuple the loose AVG bound has no usable denominator
// (the primal falls back to full refresh), so the dual degrades to
// spending the budget cheapest-first.
func budgetAvg(inputs []aggregate.Input, noPred bool, budget float64, tableLen int, opts Options) []aggregate.Input {
	if noPred {
		if tableLen == 0 {
			return nil
		}
		return budgetKnapsack(inputs, true, budget, 0, opts)
	}
	sum := aggregate.EvalInputs(inputs, aggregate.Sum, false, tableLen)
	lCount := 0
	for _, in := range inputs {
		if in.Class == predicate.Plus {
			lCount++
		}
	}
	if lCount == 0 {
		return cheapestAffordable(inputs, budget)
	}
	slope := math.Max(sum.Hi, math.Max(-sum.Lo, sum.Hi-sum.Lo)) / float64(lCount)
	if slope < 0 {
		slope = 0
	}
	return budgetKnapsack(inputs, false, budget, slope, opts)
}
