package refresh_test

import (
	"fmt"

	"trapp/internal/aggregate"
	"trapp/internal/refresh"
	"trapp/internal/workload"
)

// The paper's Q1 worked example (section 5.1): MIN bandwidth along the
// path {1, 2, 5, 6} with R = 10 must refresh exactly tuple 5 — the only
// one whose lower bound is below min(H_k) − R = 55 − 10 = 45.
func ExampleChoose() {
	table := workload.Figure2Table()
	table.Delete(3)
	table.Delete(4)
	bw := table.Schema().MustLookup(workload.ColBandwidth)

	plan, err := refresh.Choose(table, bw, aggregate.Min, nil, 10, refresh.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("refresh tuples:", plan.Keys, "cost:", plan.Cost)
	// Output: refresh tuples: [5] cost: 4
}
