package refresh

import (
	"math"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

// pathTable is Figure 2 restricted to the path tuples {1, 2, 5, 6}.
func pathTable(t *testing.T) *relation.Table {
	t.Helper()
	tab := workload.Figure2Table()
	tab.Delete(3)
	tab.Delete(4)
	return tab
}

func col(t *relation.Table, name string) int { return t.Schema().MustLookup(name) }

// applyPlan refreshes the planned tuples from the Figure 2 master values.
func applyPlan(t *testing.T, tab *relation.Table, plan Plan) {
	t.Helper()
	master := workload.Figure2Master()
	for _, key := range plan.Keys {
		i := tab.ByKey(key)
		if err := tab.Refresh(i, master[key]); err != nil {
			t.Fatal(err)
		}
	}
}

func keysOf(plan Plan) map[int64]bool {
	m := make(map[int64]bool, len(plan.Keys))
	for _, k := range plan.Keys {
		m[k] = true
	}
	return m
}

func TestQ1MinRefreshSet(t *testing.T) {
	// Section 5.1: Q1 (MIN bandwidth over path) with R=10 refreshes only
	// tuple 5; after refresh the answer is [45, 50].
	tab := pathTable(t)
	bw := col(tab, workload.ColBandwidth)
	plan, err := Choose(tab, bw, aggregate.Min, nil, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 1 || plan.Keys[0] != 5 {
		t.Fatalf("plan keys = %v, want [5]", plan.Keys)
	}
	if plan.Cost != 4 {
		t.Errorf("plan cost = %g, want 4", plan.Cost)
	}
	applyPlan(t, tab, plan)
	got := aggregate.Eval(tab, bw, aggregate.Min, nil)
	if !got.Equal(interval.New(45, 50)) {
		t.Errorf("post-refresh MIN = %v, want [45, 50]", got)
	}
}

func TestQ2SumRefreshSet(t *testing.T) {
	// Section 5.2: Q2 (SUM latency over path) with R=5 and the optimal
	// knapsack keeps tuples {2, 5}, refreshing TR = {1, 6}; post-refresh
	// answer is [21, 26].
	tab := pathTable(t)
	lat := col(tab, workload.ColLatency)
	plan, err := Choose(tab, lat, aggregate.Sum, nil, 5, Options{Solver: SolverExactDP})
	if err != nil {
		t.Fatal(err)
	}
	ks := keysOf(plan)
	if plan.Len() != 2 || !ks[1] || !ks[6] {
		t.Fatalf("plan keys = %v, want {1, 6}", plan.Keys)
	}
	applyPlan(t, tab, plan)
	got := aggregate.Eval(tab, lat, aggregate.Sum, nil)
	if !got.Equal(interval.New(21, 26)) {
		t.Errorf("post-refresh SUM = %v, want [21, 26]", got)
	}
}

func TestQ3AvgNoPredicate(t *testing.T) {
	// Section 5.4: Q3 (AVG traffic, all six links) with R=10 computes SUM
	// with capacity R·COUNT=60, refreshing tuples {5, 6}; the bounded SUM
	// becomes [618, 678] and AVG [103, 113].
	tab := workload.Figure2Table()
	tr := col(tab, workload.ColTraffic)
	plan, err := Choose(tab, tr, aggregate.Avg, nil, 10, Options{Solver: SolverExactDP})
	if err != nil {
		t.Fatal(err)
	}
	ks := keysOf(plan)
	if plan.Len() != 2 || !ks[5] || !ks[6] {
		t.Fatalf("plan keys = %v, want {5, 6}", plan.Keys)
	}
	applyPlan(t, tab, plan)
	if got := aggregate.Eval(tab, tr, aggregate.Sum, nil); !got.Equal(interval.New(618, 678)) {
		t.Errorf("post-refresh SUM = %v, want [618, 678]", got)
	}
	if got := aggregate.Eval(tab, tr, aggregate.Avg, nil); !got.Equal(interval.New(103, 113)) {
		t.Errorf("post-refresh AVG = %v, want [103, 113]", got)
	}
}

func fastLinks(t *relation.Table) predicate.Expr {
	s := t.Schema()
	return predicate.NewAnd(
		predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColBandwidth), "bandwidth"), predicate.Gt, predicate.Const(50)),
		predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColLatency), "latency"), predicate.Lt, predicate.Const(10)),
	)
}

func highLatency(t *relation.Table) predicate.Expr {
	s := t.Schema()
	return predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColLatency), "latency"), predicate.Gt, predicate.Const(10))
}

func highTraffic(t *relation.Table) predicate.Expr {
	s := t.Schema()
	return predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColTraffic), "traffic"), predicate.Gt, predicate.Const(100))
}

func TestQ4MinWithPredicate(t *testing.T) {
	// Section 6.1: Q4 (MIN traffic over fast links) with R=10 refreshes
	// TR = {5, 6}; both turn out to fail the predicate and the bounded MIN
	// becomes [95, 105].
	tab := workload.Figure2Table()
	tr := col(tab, workload.ColTraffic)
	plan, err := Choose(tab, tr, aggregate.Min, fastLinks(tab), 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ks := keysOf(plan)
	if plan.Len() != 2 || !ks[5] || !ks[6] {
		t.Fatalf("plan keys = %v, want {5, 6}", plan.Keys)
	}
	applyPlan(t, tab, plan)
	got := aggregate.Eval(tab, tr, aggregate.Min, fastLinks(tab))
	if !got.Equal(interval.New(95, 105)) {
		t.Errorf("post-refresh MIN = %v, want [95, 105]", got)
	}
}

func TestQ5CountWithPredicate(t *testing.T) {
	// Section 6.3: Q5 (COUNT latency > 10) with R=1 refreshes the single
	// cheapest T? tuple {5}; it lands in T+ and the COUNT becomes [2, 3].
	tab := workload.Figure2Table()
	lat := col(tab, workload.ColLatency)
	plan, err := Choose(tab, lat, aggregate.Count, highLatency(tab), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 1 || plan.Keys[0] != 5 {
		t.Fatalf("plan keys = %v, want [5]", plan.Keys)
	}
	applyPlan(t, tab, plan)
	got := aggregate.Eval(tab, lat, aggregate.Count, highLatency(tab))
	if !got.Equal(interval.New(2, 3)) {
		t.Errorf("post-refresh COUNT = %v, want [2, 3]", got)
	}
}

func TestQ6AvgWithPredicate(t *testing.T) {
	// Appendix F: Q6 (AVG latency where traffic > 100) with R=2 uses
	// knapsack capacity M=4; the knapsack keeps {2, 4} so TR = {1, 3, 5, 6},
	// and the post-refresh AVG is [8, 9].
	tab := workload.Figure2Table()
	lat := col(tab, workload.ColLatency)
	plan, err := Choose(tab, lat, aggregate.Avg, highTraffic(tab), 2, Options{Solver: SolverExactDP})
	if err != nil {
		t.Fatal(err)
	}
	ks := keysOf(plan)
	if plan.Len() != 4 || !ks[1] || !ks[3] || !ks[5] || !ks[6] {
		t.Fatalf("plan keys = %v, want {1, 3, 5, 6}", plan.Keys)
	}
	applyPlan(t, tab, plan)
	got := aggregate.Eval(tab, lat, aggregate.Avg, highTraffic(tab))
	if !got.Equal(interval.New(8, 9)) {
		t.Errorf("post-refresh AVG = %v, want [8, 9]", got)
	}
}

func TestMaxSymmetric(t *testing.T) {
	// MAX latency over the full table with R=3: threshold is
	// max over T+ of L (=12) + 3 = 15; only tuple 3 (H=16) exceeds it.
	tab := workload.Figure2Table()
	lat := col(tab, workload.ColLatency)
	plan, err := Choose(tab, lat, aggregate.Max, nil, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 1 || plan.Keys[0] != 3 {
		t.Fatalf("plan keys = %v, want [3]", plan.Keys)
	}
	applyPlan(t, tab, plan)
	got := aggregate.Eval(tab, lat, aggregate.Max, nil)
	if got.Width() > 3 {
		t.Errorf("post-refresh MAX width %g > 3 (%v)", got.Width(), got)
	}
}

func TestCountNoPredicateNeedsNoRefresh(t *testing.T) {
	tab := workload.Figure2Table()
	plan, err := Choose(tab, col(tab, workload.ColLatency), aggregate.Count, nil, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 0 {
		t.Errorf("COUNT plan = %v, want empty", plan.Keys)
	}
}

func TestInfiniteRMeansNoRefresh(t *testing.T) {
	tab := workload.Figure2Table()
	lat := col(tab, workload.ColLatency)
	for _, fn := range []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum, aggregate.Count, aggregate.Avg} {
		plan, err := Choose(tab, lat, fn, highTraffic(tab), math.Inf(1), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Len() != 0 {
			t.Errorf("%v: plan = %v, want empty", fn, plan.Keys)
		}
	}
}

func TestZeroRForcesExactAnswer(t *testing.T) {
	// R=0 demands an exact answer for every aggregate.
	tab0 := workload.Figure2Table()
	lat := col(tab0, workload.ColLatency)
	for _, fn := range []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum, aggregate.Avg} {
		tab := workload.Figure2Table()
		plan, err := Choose(tab, lat, fn, nil, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		applyPlan(t, tab, plan)
		got := aggregate.Eval(tab, lat, fn, nil)
		if got.Width() > 1e-9 {
			t.Errorf("%v with R=0: width %g (%v)", fn, got.Width(), got)
		}
	}
}

func TestNegativeRRejected(t *testing.T) {
	tab := workload.Figure2Table()
	if _, err := Choose(tab, 2, aggregate.Sum, nil, -1, Options{}); err == nil {
		t.Error("negative R accepted")
	}
	if _, err := Choose(tab, 2, aggregate.Sum, nil, math.NaN(), Options{}); err == nil {
		t.Error("NaN R accepted")
	}
}

func TestSolverOptions(t *testing.T) {
	tab := pathTable(t)
	lat := col(tab, workload.ColLatency)
	for _, s := range []Solver{Auto, SolverExactDP, SolverApprox, SolverGreedyUniform, SolverGreedyDensity} {
		tab2 := pathTable(t)
		plan, err := Choose(tab2, lat, aggregate.Sum, nil, 5, Options{Solver: s})
		if err != nil {
			t.Fatalf("solver %v: %v", s, err)
		}
		applyPlan(t, tab2, plan)
		got := aggregate.Eval(tab2, lat, aggregate.Sum, nil)
		if got.Width() > 5+1e-9 {
			t.Errorf("solver %v: width %g > 5", s, got.Width())
		}
	}
	_ = lat
	_ = tab
}

func TestSolverString(t *testing.T) {
	want := map[Solver]string{
		Auto: "auto", SolverExactDP: "exact-dp", SolverApprox: "approx",
		SolverGreedyUniform: "greedy-uniform", SolverGreedyDensity: "greedy-density",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("Solver %d string %q", s, s.String())
		}
	}
}

func TestAvgPredicateEmptyPlusFallsBack(t *testing.T) {
	// With no T+ tuples, AVG refresh falls back to refreshing everything
	// that might contribute, yielding an exact (or exactly undefined)
	// answer.
	tab := workload.Figure2Table()
	s := tab.Schema()
	// traffic > 130: only tuple 4 is T?.
	p := predicate.NewCmp(predicate.Column(s.MustLookup(workload.ColTraffic), "traffic"), predicate.Gt, predicate.Const(130))
	lat := col(tab, workload.ColLatency)
	plan, err := Choose(tab, lat, aggregate.Avg, p, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 1 || plan.Keys[0] != 4 {
		t.Fatalf("plan = %v, want [4]", plan.Keys)
	}
	applyPlan(t, tab, plan)
	got := aggregate.Eval(tab, lat, aggregate.Avg, p)
	// Tuple 4's true traffic is 127, not > 130, so the selection is empty
	// and the AVG is exactly undefined.
	if !got.IsEmpty() {
		t.Errorf("post-refresh AVG = %v, want empty", got)
	}
}
