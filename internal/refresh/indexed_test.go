package refresh

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"trapp/internal/aggregate"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

func stockWithIndexes(n int, seed int64) (*relation.Table, *relation.Index, *relation.Index, *relation.Index, int) {
	quotes := workload.StockDay(n, seed)
	tab := workload.StockTable(quotes)
	price := tab.Schema().MustLookup("price")
	lower := relation.NewIndex(tab, price, relation.LowerEndpoint)
	upper := relation.NewIndex(tab, price, relation.UpperEndpoint)
	width := relation.NewIndex(tab, price, relation.BoundWidth)
	return tab, lower, upper, width, price
}

func sortedKeys(keys []int64) []int64 {
	out := append([]int64(nil), keys...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func TestChooseMinIndexedMatchesScan(t *testing.T) {
	tab, lower, upper, _, price := stockWithIndexes(90, 7)
	for _, r := range []float64{0, 5, 20, 100} {
		scan, err := Choose(tab, price, aggregate.Min, nil, r, Options{})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := ChooseMinIndexed(tab, lower, upper, r)
		if err != nil {
			t.Fatal(err)
		}
		a, b := sortedKeys(scan.Keys), sortedKeys(idx.Keys)
		if len(a) != len(b) {
			t.Fatalf("R=%g: scan %d keys, indexed %d keys", r, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("R=%g: key sets differ: %v vs %v", r, a, b)
			}
		}
		if math.Abs(scan.Cost-idx.Cost) > 1e-9 {
			t.Errorf("R=%g: costs differ %g vs %g", r, scan.Cost, idx.Cost)
		}
	}
}

func TestChooseMaxIndexedMatchesScan(t *testing.T) {
	tab, lower, upper, _, price := stockWithIndexes(90, 9)
	for _, r := range []float64{0, 5, 20, 100} {
		scan, err := Choose(tab, price, aggregate.Max, nil, r, Options{})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := ChooseMaxIndexed(tab, lower, upper, r)
		if err != nil {
			t.Fatal(err)
		}
		a, b := sortedKeys(scan.Keys), sortedKeys(idx.Keys)
		if len(a) != len(b) {
			t.Fatalf("R=%g: scan %d keys, indexed %d", r, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("R=%g: key sets differ", r)
			}
		}
	}
}

func TestChooseUniformSumIndexedGuarantee(t *testing.T) {
	// Uniform costs: the indexed greedy is optimal; verify residual width
	// fits the budget and matches the scan-based GreedyUniform solver.
	quotes := workload.StockDay(60, 3)
	for i := range quotes {
		quotes[i].Cost = 5
	}
	tab := workload.StockTable(quotes)
	price := tab.Schema().MustLookup("price")
	width := relation.NewIndex(tab, price, relation.BoundWidth)
	for _, r := range []float64{0, 10, 50, 500} {
		plan, err := ChooseUniformSumIndexed(tab, price, width, r)
		if err != nil {
			t.Fatal(err)
		}
		refreshed := map[int64]bool{}
		for _, k := range plan.Keys {
			refreshed[k] = true
		}
		var residual float64
		for i := 0; i < tab.Len(); i++ {
			tu := tab.At(i)
			if !refreshed[tu.Key] {
				residual += tu.Bounds[price].Width()
			}
		}
		if residual > r+1e-9 {
			t.Errorf("R=%g: residual %g", r, residual)
		}
		scan, err := Choose(tab, price, aggregate.Sum, nil, r, Options{Solver: SolverGreedyUniform})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(scan.Cost-plan.Cost) > 1e-9 {
			t.Errorf("R=%g: cost %g vs scan %g", r, plan.Cost, scan.Cost)
		}
	}
}

func TestIndexedInfiniteAndEmpty(t *testing.T) {
	tab, lower, upper, width, _ := stockWithIndexes(10, 1)
	if p, err := ChooseMinIndexed(tab, lower, upper, math.Inf(1)); err != nil || p.Len() != 0 {
		t.Error("infinite R not empty plan")
	}
	if _, err := ChooseMinIndexed(tab, lower, upper, -1); err == nil {
		t.Error("negative R accepted")
	}
	if _, err := ChooseMaxIndexed(tab, lower, upper, math.NaN()); err == nil {
		t.Error("NaN R accepted")
	}
	if _, err := ChooseUniformSumIndexed(tab, 1, width, -1); err == nil {
		t.Error("negative R accepted for uniform sum")
	}

	empty := relation.NewTable(workload.StockSchema())
	price := empty.Schema().MustLookup("price")
	el := relation.NewIndex(empty, price, relation.LowerEndpoint)
	eu := relation.NewIndex(empty, price, relation.UpperEndpoint)
	if p, err := ChooseMinIndexed(empty, el, eu, 5); err != nil || p.Len() != 0 {
		t.Error("empty table plan not empty")
	}
	if p, err := ChooseMaxIndexed(empty, el, eu, 5); err != nil || p.Len() != 0 {
		t.Error("empty table max plan not empty")
	}
}

// TestQuickIndexedEqualsScan compares indexed and scan plans on random
// tables after random refresh churn (indexes updated incrementally).
func TestQuickIndexedEqualsScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		quotes := workload.StockDay(n, seed)
		tab := workload.StockTable(quotes)
		price := tab.Schema().MustLookup("price")
		lower := relation.NewIndex(tab, price, relation.LowerEndpoint)
		upper := relation.NewIndex(tab, price, relation.UpperEndpoint)
		// Random churn: refresh a few tuples and update indexes.
		for j := 0; j < r.Intn(5); j++ {
			i := r.Intn(tab.Len())
			tu := tab.At(i)
			v := tu.Bounds[price].Lo + r.Float64()*tu.Bounds[price].Width()
			if err := tab.Refresh(i, []float64{v}); err != nil {
				return false
			}
			if lower.Update(tu.Key) != nil || upper.Update(tu.Key) != nil {
				return false
			}
		}
		R := r.Float64() * 30
		scan, err := Choose(tab, price, aggregate.Min, nil, R, Options{})
		if err != nil {
			return false
		}
		idx, err := ChooseMinIndexed(tab, lower, upper, R)
		if err != nil {
			return false
		}
		a, b := sortedKeys(scan.Keys), sortedKeys(idx.Keys)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
