package refresh

import (
	"math"
	"math/rand"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
)

// budgetInput builds one no-predicate input.
func budgetInput(key int64, lo, hi, cost float64) aggregate.Input {
	return aggregate.Input{
		Key:   key,
		Bound: interval.New(lo, hi),
		Cost:  cost,
		Class: predicate.Plus,
	}
}

// bruteBudgetSum enumerates every refresh subset with cost ≤ budget and
// returns the maximum total width removed — the SUM dual's objective.
func bruteBudgetSum(inputs []aggregate.Input, budget float64) float64 {
	n := len(inputs)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var cost, width float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				cost += inputs[i].Cost
				width += inputs[i].Bound.Width()
			}
		}
		if cost <= budget && width > best {
			best = width
		}
	}
	return best
}

func TestChooseBudgetSumMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		inputs := make([]aggregate.Input, n)
		for i := range inputs {
			lo := rng.Float64() * 50
			w := float64(rng.Intn(8))
			inputs[i] = budgetInput(int64(i+1), lo, lo+w, float64(1+rng.Intn(9)))
			inputs[i].Index = i
		}
		budget := float64(rng.Intn(30))
		plan, err := ChooseBudget(inputs, aggregate.Sum, true, budget, n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Cost > budget {
			t.Fatalf("trial %d: plan cost %g over budget %g", trial, plan.Cost, budget)
		}
		byKey := make(map[int64]aggregate.Input, n)
		for _, in := range inputs {
			byKey[in.Key] = in
		}
		removed := 0.0
		for _, key := range plan.Keys {
			removed += byKey[key].Bound.Width()
		}
		if opt := bruteBudgetSum(inputs, budget); removed < opt-1e-9 {
			t.Fatalf("trial %d (budget %g): removed width %g, optimum %g\ninputs %+v",
				trial, budget, removed, opt, inputs)
		}
	}
}

func TestChooseBudgetMinIsAffordableAscendingPrefix(t *testing.T) {
	// MIN's guaranteed lower endpoint is the smallest unrefreshed L, so
	// the useful refresh sets are ascending-L prefixes. Four tuples with
	// L = 1, 2, 3, 40 and costs 5, 1, 1, 1; minPlusH is 20 (so the L=40
	// tuple is never useful).
	inputs := []aggregate.Input{
		budgetInput(1, 1, 20, 5),
		budgetInput(2, 2, 25, 1),
		budgetInput(3, 3, 30, 1),
		budgetInput(4, 40, 60, 1),
	}
	// Budget 4 cannot afford the L=1 head of the prefix: nothing is
	// refreshed (skipping ahead to the cheap L=2 tuple would not raise
	// the guaranteed bound).
	plan, err := ChooseBudget(inputs, aggregate.Min, true, 4, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 0 {
		t.Fatalf("budget 4 chose %v, want empty (prefix head unaffordable)", plan.Keys)
	}
	// Budget 6 buys the first two; budget 7 the full useful prefix.
	plan, err = ChooseBudget(inputs, aggregate.Min, true, 6, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Keys) != 2 || plan.Keys[0] != 1 || plan.Keys[1] != 2 {
		t.Fatalf("budget 6 chose %v, want [1 2]", plan.Keys)
	}
	plan, err = ChooseBudget(inputs, aggregate.Min, true, 7, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Keys) != 3 {
		t.Fatalf("budget 7 chose %v, want [1 2 3]", plan.Keys)
	}
}

func TestChooseBudgetMinTieGroupsAtomic(t *testing.T) {
	// Two tuples tied at L = 1: refreshing only one leaves the guaranteed
	// endpoint at 1, so the pair is all-or-nothing.
	inputs := []aggregate.Input{
		budgetInput(1, 1, 20, 3),
		budgetInput(2, 1, 25, 3),
		budgetInput(3, 5, 30, 1),
	}
	plan, err := ChooseBudget(inputs, aggregate.Min, true, 5, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 0 {
		t.Fatalf("budget 5 split a tie group: %v", plan.Keys)
	}
	plan, err = ChooseBudget(inputs, aggregate.Min, true, 6, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Keys) != 2 {
		t.Fatalf("budget 6 chose %v, want the L=1 pair", plan.Keys)
	}
}

func TestChooseBudgetCountCheapestFirst(t *testing.T) {
	// COUNT's width is |T?|; every refreshed T? tuple removes 1, so the
	// dual refreshes the cheapest T? tuples while the budget lasts.
	mk := func(key int64, cls predicate.Class, cost float64) aggregate.Input {
		return aggregate.Input{Key: key, Bound: interval.New(0, 10), Cost: cost, Class: cls}
	}
	inputs := []aggregate.Input{
		mk(1, predicate.Plus, 1),
		mk(2, predicate.Maybe, 5),
		mk(3, predicate.Maybe, 2),
		mk(4, predicate.Maybe, 3),
	}
	plan, err := ChooseBudget(inputs, aggregate.Count, false, 5, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Keys) != 2 || plan.Keys[0] != 3 || plan.Keys[1] != 4 {
		t.Fatalf("chose %v, want cheapest T? pair [3 4]", plan.Keys)
	}
	// Without a predicate COUNT is exact: nothing to buy.
	plan, err = ChooseBudget(inputs, aggregate.Count, true, 100, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 0 {
		t.Fatalf("no-predicate COUNT refreshed %v", plan.Keys)
	}
}

func TestChooseBudgetEdgeCases(t *testing.T) {
	inputs := []aggregate.Input{budgetInput(1, 0, 10, 2)}
	if _, err := ChooseBudget(inputs, aggregate.Sum, true, -1, 1, Options{}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := ChooseBudget(inputs, aggregate.Sum, true, math.NaN(), 1, Options{}); err == nil {
		t.Error("NaN budget accepted")
	}
	plan, err := ChooseBudget(inputs, aggregate.Sum, true, 0, 1, Options{})
	if err != nil || plan.Len() != 0 {
		t.Errorf("zero budget: plan %v, err %v", plan.Keys, err)
	}
	// Infinite budget refreshes everything useful — the precise plan.
	plan, err = ChooseBudget(inputs, aggregate.Sum, true, math.Inf(1), 1, Options{})
	if err != nil || plan.Len() != 1 {
		t.Errorf("infinite budget: plan %v, err %v", plan.Keys, err)
	}
	// Point bounds buy nothing and must not consume budget.
	points := []aggregate.Input{budgetInput(1, 5, 5, 1), budgetInput(2, 0, 4, 1)}
	plan, err = ChooseBudget(points, aggregate.Sum, true, 1, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Keys) != 1 || plan.Keys[0] != 2 {
		t.Errorf("chose %v, want only the wide tuple [2]", plan.Keys)
	}
}
