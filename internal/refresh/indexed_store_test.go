package refresh

import (
	"math"
	"testing"

	"trapp/internal/aggregate"
	"trapp/internal/relation"
	"trapp/internal/workload"
)

// stockStoreWithIndexes mirrors stockWithIndexes over a sharded store.
func stockStoreWithIndexes(n int, nshards int, seed int64) (*relation.Store, *relation.ShardedIndex, *relation.ShardedIndex, int) {
	quotes := workload.StockDay(n, seed)
	st := relation.NewStore(workload.StockSchema(), nshards)
	price := st.Schema().MustLookup("price")
	flat := workload.StockTable(quotes)
	for i := 0; i < flat.Len(); i++ {
		st.MustInsert(flat.At(i).Clone())
	}
	lower := relation.NewShardedIndex(st, price, relation.LowerEndpoint)
	upper := relation.NewShardedIndex(st, price, relation.UpperEndpoint)
	return st, lower, upper, price
}

// TestChooseIndexedStoreMatchesFlat checks the sharded indexed MIN/MAX
// planners select exactly the flat planners' key sets at equal cost.
func TestChooseIndexedStoreMatchesFlat(t *testing.T) {
	tab, flatLower, flatUpper, _, price := stockWithIndexes(90, 7)
	for _, nshards := range []int{1, 8} {
		st, lower, upper, sprice := stockStoreWithIndexes(90, nshards, 7)
		if sprice != price {
			t.Fatal("column mismatch")
		}
		for _, r := range []float64{0, 5, 20, 100, math.Inf(1)} {
			flatMin, err := ChooseMinIndexed(tab, flatLower, flatUpper, r)
			if err != nil {
				t.Fatal(err)
			}
			shMin, err := ChooseMinIndexedStore(st, lower, upper, r)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := sortedKeys(flatMin.Keys), sortedKeys(shMin.Keys); len(a) != len(b) {
				t.Fatalf("shards=%d R=%g MIN: %d keys vs %d", nshards, r, len(a), len(b))
			} else {
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("shards=%d R=%g MIN key sets differ: %v vs %v", nshards, r, a, b)
					}
				}
			}
			if math.Abs(flatMin.Cost-shMin.Cost) > 1e-9 {
				t.Errorf("shards=%d R=%g MIN cost %g vs %g", nshards, r, flatMin.Cost, shMin.Cost)
			}
			flatMax, err := ChooseMaxIndexed(tab, flatLower, flatUpper, r)
			if err != nil {
				t.Fatal(err)
			}
			shMax, err := ChooseMaxIndexedStore(st, lower, upper, r)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := sortedKeys(flatMax.Keys), sortedKeys(shMax.Keys); len(a) != len(b) {
				t.Fatalf("shards=%d R=%g MAX: %d keys vs %d", nshards, r, len(a), len(b))
			} else {
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("shards=%d R=%g MAX key sets differ: %v vs %v", nshards, r, a, b)
					}
				}
			}
		}
		// Invalid constraints are rejected like the flat planners.
		if _, err := ChooseMinIndexedStore(st, lower, upper, -1); err == nil {
			t.Error("negative R accepted")
		}
		if _, err := ChooseMaxIndexedStore(st, lower, upper, math.NaN()); err == nil {
			t.Error("NaN R accepted")
		}
	}
	// The sharded planners also agree with the plain scans.
	st, lower, upper, sprice := stockStoreWithIndexes(90, 8, 7)
	for _, r := range []float64{0, 5, 20} {
		scan, err := ChooseStore(st, sprice, aggregate.Min, nil, r, Options{})
		if err != nil {
			t.Fatal(err)
		}
		idx, err := ChooseMinIndexedStore(st, lower, upper, r)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := sortedKeys(scan.Keys), sortedKeys(idx.Keys); len(a) != len(b) {
			t.Fatalf("R=%g: scan %d keys, indexed %d", r, len(a), len(b))
		} else {
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("R=%g: scan vs indexed key sets differ", r)
				}
			}
		}
	}
}
