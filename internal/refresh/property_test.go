package refresh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"trapp/internal/aggregate"
	"trapp/internal/interval"
	"trapp/internal/predicate"
	"trapp/internal/relation"
)

// randTable builds a random table with two bounded columns: column 0 is
// aggregated, column 1 is the predicate column.
func randTable(r *rand.Rand, n int, allowNegative bool) *relation.Table {
	s := relation.NewSchema(
		relation.Column{Name: "v", Kind: relation.Bounded},
		relation.Column{Name: "w", Kind: relation.Bounded},
	)
	tab := relation.NewTable(s)
	for i := 0; i < n; i++ {
		mk := func() interval.Interval {
			lo := r.Float64() * 50
			if allowNegative {
				lo -= 25
			}
			w := r.Float64() * 10
			if r.Intn(5) == 0 {
				w = 0
			}
			return interval.New(lo, lo+w)
		}
		tab.MustInsert(relation.Tuple{
			Key:    int64(i + 1),
			Bounds: []interval.Interval{mk(), mk()},
			Cost:   float64(1 + r.Intn(10)),
		})
	}
	return tab
}

// adversarialMasters yields several master-value assignments within the
// current bounds: all-low, all-high, and random mixtures — the extremes
// that the CHOOSE_REFRESH guarantee must survive.
func adversarialMasters(r *rand.Rand, tab *relation.Table, trials int) []map[int64][]float64 {
	n := tab.Len()
	out := make([]map[int64][]float64, 0, trials+2)
	mk := func(pickVal func(b interval.Interval) float64) map[int64][]float64 {
		m := make(map[int64][]float64, n)
		for i := 0; i < n; i++ {
			tu := tab.At(i)
			m[tu.Key] = []float64{pickVal(tu.Bounds[0]), pickVal(tu.Bounds[1])}
		}
		return m
	}
	out = append(out, mk(func(b interval.Interval) float64 { return b.Lo }))
	out = append(out, mk(func(b interval.Interval) float64 { return b.Hi }))
	for t := 0; t < trials; t++ {
		out = append(out, mk(func(b interval.Interval) float64 {
			switch r.Intn(3) {
			case 0:
				return b.Lo
			case 1:
				return b.Hi
			default:
				return b.Lo + r.Float64()*b.Width()
			}
		}))
	}
	return out
}

// randSimplePred returns nil or a comparison/conjunction over column 1
// (and occasionally column 0, exercising bound shrinking).
func randSimplePred(r *rand.Rand) predicate.Expr {
	switch r.Intn(5) {
	case 0:
		return nil
	case 1:
		return predicate.NewCmp(predicate.Column(1, "w"), predicate.Gt, predicate.Const(r.Float64()*50))
	case 2:
		return predicate.NewCmp(predicate.Column(1, "w"), predicate.Lt, predicate.Const(r.Float64()*50))
	case 3:
		return predicate.NewAnd(
			predicate.NewCmp(predicate.Column(1, "w"), predicate.Gt, predicate.Const(r.Float64()*30)),
			predicate.NewCmp(predicate.Column(0, "v"), predicate.Lt, predicate.Const(r.Float64()*50)),
		)
	default:
		return predicate.NewCmp(predicate.Column(0, "v"), predicate.Ge, predicate.Const(r.Float64()*50))
	}
}

// checkGuarantee verifies that refreshing the plan's tuples with the given
// master values yields a bounded answer of width ≤ R. For AVG with a
// predicate the paper's algorithm guarantees the constraint for the loose
// (section 6.4.1) bound, which also caps the tight bound.
func checkGuarantee(t *testing.T, tab *relation.Table, plan Plan,
	fn aggregate.Func, p predicate.Expr, r float64, master map[int64][]float64) bool {
	t.Helper()
	work := tab.Clone()
	for _, key := range plan.Keys {
		i := work.ByKey(key)
		if err := work.Refresh(i, master[key]); err != nil {
			t.Fatal(err)
		}
	}
	var got interval.Interval
	if fn == aggregate.Avg && !predicate.IsTrivial(p) {
		got = aggregate.EvalLooseAvg(work, 0, p)
	} else {
		got = aggregate.Eval(work, 0, fn, p)
	}
	if got.IsEmpty() {
		return true // exactly-empty selection: nothing to bound
	}
	return got.Width() <= r+1e-6
}

// TestQuickChooseRefreshGuarantee is the paper's correctness theorem as a
// property: for every aggregate, random tables, random predicates, random
// R, and adversarial master values inside the bounds, the post-refresh
// answer satisfies the precision constraint.
func TestQuickChooseRefreshGuarantee(t *testing.T) {
	fns := []aggregate.Func{aggregate.Min, aggregate.Max, aggregate.Sum, aggregate.Count, aggregate.Avg}
	solvers := []Solver{Auto, SolverExactDP, SolverApprox, SolverGreedyDensity}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randTable(r, 1+r.Intn(14), r.Intn(2) == 0)
		p := randSimplePred(r)
		fn := fns[r.Intn(len(fns))]
		solver := solvers[r.Intn(len(solvers))]
		R := r.Float64() * 30
		plan, err := Choose(tab, 0, fn, p, R, Options{Solver: solver})
		if err != nil {
			t.Logf("seed %d: Choose error %v", seed, err)
			return false
		}
		for _, master := range adversarialMasters(r, tab, 6) {
			if !checkGuarantee(t, tab, plan, fn, p, R, master) {
				t.Logf("seed %d: fn=%v solver=%v R=%g pred=%v plan=%v",
					seed, fn, solver, R, p, plan.Keys)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinRefreshSetIsOptimal re-proves Appendix B empirically: for
// MIN without a predicate, the chosen set is exactly the set of tuples
// that must appear in every correct solution, so any correct refresh set
// is a superset.
func TestQuickMinRefreshSetNecessary(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randTable(r, 2+r.Intn(10), false)
		R := r.Float64() * 20
		plan, err := Choose(tab, 0, aggregate.Min, nil, R, Options{})
		if err != nil {
			return false
		}
		// For each chosen tuple, dropping it from the refresh set must
		// break the guarantee for SOME master assignment: set all other
		// tuples' values to their upper bounds and the dropped tuple
		// remains at its cached bound.
		for _, drop := range plan.Keys {
			work := tab.Clone()
			for _, key := range plan.Keys {
				if key == drop {
					continue
				}
				i := work.ByKey(key)
				tu := work.At(i)
				if err := work.Refresh(i, []float64{tu.Bounds[0].Hi, tu.Bounds[1].Hi}); err != nil {
					return false
				}
			}
			got := aggregate.Eval(work, 0, aggregate.Min, nil)
			if got.Width() <= R-1e-9 {
				// Guarantee held without refreshing `drop` even in the
				// adversarial case — only possible if another refreshed
				// tuple's master value dipped low, but we pinned them high,
				// so the chosen set was not necessary. (Ties at exactly R
				// are fine.)
				if got.Width() < R-1e-6 {
					t.Logf("seed %d: dropping %d still gave width %g < R %g",
						seed, drop, got.Width(), R)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickCountPlanSize: the COUNT plan refreshes exactly
// max(0, ceil(|T?| − R)) tuples and they are the cheapest ones.
func TestQuickCountPlanSize(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randTable(r, 1+r.Intn(20), false)
		p := predicate.NewCmp(predicate.Column(1, "w"), predicate.Gt, predicate.Const(r.Float64()*50))
		R := float64(r.Intn(10))
		cls := predicate.Classify(tab, p)
		plan, err := Choose(tab, 0, aggregate.Count, p, R, Options{})
		if err != nil {
			return false
		}
		want := int(math.Ceil(float64(len(cls.Maybe)) - R))
		if want < 0 {
			want = 0
		}
		if plan.Len() != want {
			t.Logf("seed %d: plan size %d, want %d (|T?|=%d R=%g)",
				seed, plan.Len(), want, len(cls.Maybe), R)
			return false
		}
		// No unchosen T? tuple may be strictly cheaper than a chosen one.
		chosen := make(map[int64]bool)
		maxChosen := 0.0
		for _, k := range plan.Keys {
			chosen[k] = true
			if c := tab.At(tab.ByKey(k)).Cost; c > maxChosen {
				maxChosen = c
			}
		}
		for _, i := range cls.Maybe {
			tu := tab.At(i)
			if !chosen[tu.Key] && tu.Cost < maxChosen-1e-9 && plan.Len() > 0 {
				// A cheaper tuple was skipped only if ties made the choice
				// ambiguous; strict inequality is a bug.
				t.Logf("seed %d: skipped cheaper tuple %d (%g < %g)",
					seed, tu.Key, tu.Cost, maxChosen)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickSumPlanRespectsBudget: the width left behind by the SUM plan
// (sum of unrefreshed weights) never exceeds R.
func TestQuickSumResidualWidth(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tab := randTable(r, 1+r.Intn(20), true)
		R := r.Float64() * 40
		plan, err := Choose(tab, 0, aggregate.Sum, nil, R, Options{})
		if err != nil {
			return false
		}
		refreshed := make(map[int64]bool)
		for _, k := range plan.Keys {
			refreshed[k] = true
		}
		var residual float64
		for i := 0; i < tab.Len(); i++ {
			tu := tab.At(i)
			if !refreshed[tu.Key] {
				residual += tu.Bounds[0].Width()
			}
		}
		return residual <= R+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
