// Package refresh implements the CHOOSE_REFRESH algorithms of TRAPP/AG:
// given an aggregation query with a precision constraint R, select a
// minimum-cost set of cached tuples to refresh from their sources so that
// the recomputed bounded answer is guaranteed to have width at most R for
// any master values inside the current bounds (paper sections 5 and 6,
// Appendices B, C, and F).
//
// Algorithm summary:
//
//   - MIN: refresh every tuple in T+ ∪ T? with L_i < min over T+ of H_k − R.
//     The set is independent of refresh costs and provably optimal
//     (Appendix B). MAX is symmetric (Appendix C).
//   - SUM: equivalent to a 0/1 knapsack over the tuples NOT refreshed with
//     profit C_i, weight = residual bound width, capacity R; solved exactly
//     by dynamic programming for integer costs, by an ε-approximation
//     otherwise, or greedily for uniform costs (section 5.2). With a
//     predicate, T? weights extend the bound to include 0 (section 6.2).
//   - COUNT: refresh the ceil(|T?| − R) cheapest T? tuples (section 6.3).
//   - AVG without predicate: SUM with capacity R·COUNT (section 5.4).
//   - AVG with predicate: SUM knapsack with capacity L'COUNT·R and T?
//     weights inflated by max(H'SUM, −L'SUM, H'SUM−L'SUM)/L'COUNT − R,
//     faking a knapsack capacity that shrinks as T? tuples are kept
//     (Appendix F).
package refresh

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"trapp/internal/aggregate"
	"trapp/internal/knapsack"
	"trapp/internal/predicate"
	"trapp/internal/relation"
)

// Solver selects the knapsack algorithm for SUM/AVG refresh selection.
type Solver int8

const (
	// Auto picks GreedyUniform for uniform costs, ExactDP for small
	// integer costs, and Approx otherwise.
	Auto Solver = iota
	// SolverExactDP forces the pseudo-polynomial exact DP.
	SolverExactDP
	// SolverApprox forces the ε-approximation (FPTAS).
	SolverApprox
	// SolverGreedyUniform forces the uniform-cost greedy (optimal only
	// when all refresh costs are equal).
	SolverGreedyUniform
	// SolverGreedyDensity forces the density-greedy 1/2-approximation.
	SolverGreedyDensity
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case SolverExactDP:
		return "exact-dp"
	case SolverApprox:
		return "approx"
	case SolverGreedyUniform:
		return "greedy-uniform"
	case SolverGreedyDensity:
		return "greedy-density"
	default:
		return "auto"
	}
}

// Options tunes refresh selection and query execution.
type Options struct {
	// Epsilon is the knapsack approximation parameter ε ∈ (0, 1); zero
	// means the paper's recommended 0.1 (section 5.2.1).
	Epsilon float64
	// Solver selects the knapsack algorithm; zero value is Auto.
	Solver Solver
	// Parallelism is the worker count for shard-parallel aggregation and
	// CHOOSE_REFRESH scans over sharded stores; 0 means GOMAXPROCS and 1
	// forces serial scans. Flat (unsharded) tables are always scanned
	// serially.
	Parallelism int
}

// DefaultEpsilon is the ε the paper recommends: smaller values increase
// CHOOSE_REFRESH time quadratically for marginal cost reduction.
const DefaultEpsilon = 0.1

func (o Options) epsilon() float64 {
	if o.Epsilon <= 0 || o.Epsilon >= 1 {
		return DefaultEpsilon
	}
	return o.Epsilon
}

// Plan is a chosen refresh set.
type Plan struct {
	// Indexes are table positions of the tuples to refresh, ascending.
	Indexes []int
	// Keys are the corresponding object keys.
	Keys []int64
	// Costs are the per-tuple refresh costs, aligned with Keys.
	Costs []float64
	// Cost is the total refresh cost Σ C_i over the plan.
	Cost float64
}

// Len returns the number of tuples to refresh.
func (p Plan) Len() int { return len(p.Indexes) }

// Describe renders a one-line plan summary for trace and EXPLAIN ANALYZE
// output.
func (p Plan) Describe() string {
	if p.Len() == 0 {
		return "empty plan"
	}
	lo, hi := p.Costs[0], p.Costs[0]
	for _, c := range p.Costs[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return fmt.Sprintf("%d keys, planned cost %g (per-key %g..%g)", p.Len(), p.Cost, lo, hi)
}

// ErrInfeasible is returned when no refresh set can guarantee the
// constraint (cannot occur for the supported aggregates, but guards future
// extensions such as joins).
var ErrInfeasible = errors.New("refresh: precision constraint infeasible")

// Choose selects a refresh set for the aggregate over column col of table
// t under predicate p (nil or TruePred for none) and precision constraint
// R ≥ 0. R = +Inf always yields an empty plan (pure imprecise mode); R = 0
// requests an exact answer.
func Choose(t *relation.Table, col int, fn aggregate.Func, p predicate.Expr, r float64, opts Options) (Plan, error) {
	if r < 0 || math.IsNaN(r) {
		return Plan{}, fmt.Errorf("refresh: invalid precision constraint %g", r)
	}
	if math.IsInf(r, 1) {
		return Plan{}, nil
	}
	inputs := aggregate.Collect(t, col, p, true)
	return ChooseFromInputs(inputs, fn, predicate.IsTrivial(p), r, t.Len(), opts)
}

// ChooseStore is Choose over a sharded store: the classification scan is
// shard-parallel (one worker per shard up to Options.Parallelism, each
// holding only its shard's read lock) and the collected inputs are in the
// canonical ascending-key order, so the selected plan is identical to
// Choose's over a flat table holding the same tuples.
func ChooseStore(st *relation.Store, col int, fn aggregate.Func, p predicate.Expr, r float64, opts Options) (Plan, error) {
	if r < 0 || math.IsNaN(r) {
		return Plan{}, fmt.Errorf("refresh: invalid precision constraint %g", r)
	}
	if math.IsInf(r, 1) {
		return Plan{}, nil
	}
	inputs, tableLen := aggregate.CollectStore(st, col, p, true, opts.Parallelism)
	return ChooseFromInputs(inputs, fn, predicate.IsTrivial(p), r, tableLen, opts)
}

// ChooseFromInputs runs refresh selection over pre-collected inputs (see
// aggregate.Collect). Callers that have already classified the table —
// e.g. the query processor, which snapshots inputs under the table read
// lock and then solves without holding any lock — use this to avoid a
// second scan. tableLen is the full table cardinality at collection time.
func ChooseFromInputs(inputs []aggregate.Input, fn aggregate.Func, noPred bool, r float64, tableLen int, opts Options) (Plan, error) {
	if r < 0 || math.IsNaN(r) {
		return Plan{}, fmt.Errorf("refresh: invalid precision constraint %g", r)
	}
	if math.IsInf(r, 1) {
		return Plan{}, nil
	}
	switch fn {
	case aggregate.Min:
		return planFromInputs(chooseMin(inputs, r)), nil
	case aggregate.Max:
		return planFromInputs(chooseMax(inputs, r)), nil
	case aggregate.Sum:
		return planFromInputs(chooseSum(inputs, noPred, r, opts)), nil
	case aggregate.Count:
		return planFromInputs(chooseCount(inputs, noPred, r)), nil
	case aggregate.Avg:
		return planFromInputs(chooseAvg(inputs, noPred, r, tableLen, opts)), nil
	default:
		return Plan{}, fmt.Errorf("refresh: unknown aggregate %v", fn)
	}
}

// planFromInputs materializes a Plan from chosen inputs.
func planFromInputs(chosen []aggregate.Input) Plan {
	sort.Slice(chosen, func(a, b int) bool { return chosen[a].Index < chosen[b].Index })
	p := Plan{
		Indexes: make([]int, len(chosen)),
		Keys:    make([]int64, len(chosen)),
		Costs:   make([]float64, len(chosen)),
	}
	for i, in := range chosen {
		p.Indexes[i] = in.Index
		p.Keys[i] = in.Key
		p.Costs[i] = in.Cost
		p.Cost += in.Cost
	}
	return p
}

// chooseMin implements CHOOSE_REFRESH for MIN (sections 5.1 and 6.1):
// refresh every tuple in T+ ∪ T? whose lower bound is below
// min over T+ of H_k minus R. With an empty T+ the threshold is +∞ and
// every tuple that might contribute must be refreshed.
func chooseMin(inputs []aggregate.Input, r float64) []aggregate.Input {
	minPlusH := math.Inf(1)
	for _, in := range inputs {
		if in.Class == predicate.Plus && in.Bound.Hi < minPlusH {
			minPlusH = in.Bound.Hi
		}
	}
	threshold := minPlusH - r
	var chosen []aggregate.Input
	for _, in := range inputs {
		if in.Bound.Lo < threshold {
			chosen = append(chosen, in)
		}
	}
	return chosen
}

// chooseMax is the Appendix C symmetric algorithm: refresh every tuple in
// T+ ∪ T? whose upper bound exceeds max over T+ of L_k plus R.
func chooseMax(inputs []aggregate.Input, r float64) []aggregate.Input {
	maxPlusL := math.Inf(-1)
	for _, in := range inputs {
		if in.Class == predicate.Plus && in.Bound.Lo > maxPlusL {
			maxPlusL = in.Bound.Lo
		}
	}
	threshold := maxPlusL + r
	var chosen []aggregate.Input
	for _, in := range inputs {
		if in.Bound.Hi > threshold {
			chosen = append(chosen, in)
		}
	}
	return chosen
}

// sumWeight returns the knapsack weight of a tuple for SUM refresh
// selection: the residual answer-bound width if the tuple is NOT
// refreshed. T+ (or no-predicate) tuples contribute their bound width; T?
// tuples contribute the width of their bound extended to include 0,
// because they may turn out not to satisfy the predicate (section 6.2).
func sumWeight(in aggregate.Input, noPred bool) float64 {
	if noPred || in.Class == predicate.Plus {
		return in.Bound.Width()
	}
	return in.Bound.IncludeZero().Width()
}

// chooseSum implements CHOOSE_REFRESH for SUM via the knapsack mapping:
// maximize the cost of tuples NOT refreshed subject to their total
// residual width ≤ R.
func chooseSum(inputs []aggregate.Input, noPred bool, r float64, opts Options) []aggregate.Input {
	items := make([]knapsack.Item, len(inputs))
	for i, in := range inputs {
		items[i] = knapsack.Item{Profit: in.Cost, Weight: sumWeight(in, noPred)}
	}
	return solveComplement(inputs, items, r, opts)
}

// solveComplement solves the knapsack and returns the complement (the
// refresh set) as inputs.
func solveComplement(inputs []aggregate.Input, items []knapsack.Item, capacity float64, opts Options) []aggregate.Input {
	// Fast path: everything fits, nothing to refresh.
	var total float64
	for _, it := range items {
		total += it.Weight
	}
	if total <= capacity {
		return nil
	}
	sol := solve(items, capacity, opts)
	refreshIdx := sol.Complement(len(items))
	chosen := make([]aggregate.Input, len(refreshIdx))
	for i, j := range refreshIdx {
		chosen[i] = inputs[j]
	}
	return chosen
}

// solve runs the selected knapsack solver.
func solve(items []knapsack.Item, capacity float64, opts Options) knapsack.Solution {
	switch opts.Solver {
	case SolverExactDP:
		sol, err := knapsack.ExactDP(items, capacity)
		if err != nil {
			// Integer-profit or size requirement not met: fall back to the
			// approximation rather than failing the query.
			return knapsack.Approx(items, capacity, opts.epsilon())
		}
		return sol
	case SolverApprox:
		return knapsack.Approx(items, capacity, opts.epsilon())
	case SolverGreedyUniform:
		return knapsack.GreedyUniform(items, capacity)
	case SolverGreedyDensity:
		return knapsack.GreedyDensity(items, capacity)
	default:
		return autoSolve(items, capacity, opts)
	}
}

// autoSolve picks a solver from the instance's cost structure.
func autoSolve(items []knapsack.Item, capacity float64, opts Options) knapsack.Solution {
	uniform := true
	integer := true
	sum := 0.0
	for _, it := range items {
		if it.Profit != items[0].Profit {
			uniform = false
		}
		if it.Profit != math.Trunc(it.Profit) {
			integer = false
		}
		sum += it.Profit
	}
	if uniform {
		return knapsack.GreedyUniform(items, capacity)
	}
	if integer {
		if sol, err := knapsack.ExactDP(items, capacity); err == nil {
			return sol
		}
	}
	return knapsack.Approx(items, capacity, opts.epsilon())
}

// chooseCount implements CHOOSE_REFRESH for COUNT (section 6.3): the
// answer width is |T?|, and refreshing any T? tuple removes it from T?, so
// refresh the ceil(|T?| − R) cheapest T? tuples. Without a predicate the
// count is exact and no refresh is needed.
func chooseCount(inputs []aggregate.Input, noPred bool, r float64) []aggregate.Input {
	if noPred {
		return nil
	}
	var maybes []aggregate.Input
	for _, in := range inputs {
		if in.Class == predicate.Maybe {
			maybes = append(maybes, in)
		}
	}
	need := int(math.Ceil(float64(len(maybes)) - r))
	if need <= 0 {
		return nil
	}
	sort.Slice(maybes, func(a, b int) bool { return maybes[a].Cost < maybes[b].Cost })
	return maybes[:need]
}

// chooseAvg implements CHOOSE_REFRESH for AVG. Without a predicate
// (section 5.4) it reduces to SUM with capacity R·COUNT. With a predicate
// it applies the Appendix F reduction: knapsack capacity M = L'COUNT·R,
// and each T? tuple's weight is inflated by the (nonnegative) slope
// max(H'SUM, −L'SUM, H'SUM−L'SUM)/L'COUNT − R, simulating a knapsack whose
// capacity shrinks every time a T? tuple is kept unrefreshed.
func chooseAvg(inputs []aggregate.Input, noPred bool, r float64, tableLen int, opts Options) []aggregate.Input {
	if noPred {
		if tableLen == 0 {
			return nil
		}
		return chooseSum(inputs, true, r*float64(tableLen), opts)
	}
	// Conservative estimates from the current cached bounds.
	sum := aggregate.EvalInputs(inputs, aggregate.Sum, false, tableLen)
	lCount := 0
	for _, in := range inputs {
		if in.Class == predicate.Plus {
			lCount++
		}
	}
	if lCount == 0 {
		// Appendix F assumes at least one certain tuple; with none, the
		// loose AVG bound has no usable denominator, so fall back to full
		// refresh of every tuple that might contribute — the answer is
		// then exact (or exactly undefined).
		return inputs
	}
	slope := math.Max(sum.Hi, math.Max(-sum.Lo, sum.Hi-sum.Lo))/float64(lCount) - r
	if slope < 0 {
		// A negative slope would mean keeping T? tuples relaxes the SUM
		// budget; clamping to zero is conservative and keeps weights
		// nonnegative for the knapsack solvers.
		slope = 0
	}
	items := make([]knapsack.Item, len(inputs))
	for i, in := range inputs {
		w := sumWeight(in, false)
		if in.Class == predicate.Maybe {
			w += slope
		}
		items[i] = knapsack.Item{Profit: in.Cost, Weight: w}
	}
	return solveComplement(inputs, items, float64(lCount)*r, opts)
}
