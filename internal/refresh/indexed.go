package refresh

import (
	"fmt"
	"math"

	"trapp/internal/relation"
)

// Indexed refresh selection. The paper notes (sections 5.1 and 8.3) that
// with B-tree indexes on the lower and upper bound endpoints, the MIN
// refresh set — all tuples with L_i < min_k(H_k) − R — can be found in
// time sublinear in the table size: one index-minimum probe plus a range
// scan that touches only the selected tuples. These helpers implement
// that plan for predicate-free MIN and MAX queries; with a selection
// predicate the candidate set depends on classification and the O(n)
// scan in Choose applies.

// ChooseMinIndexed computes the CHOOSE_REFRESH set for a predicate-free
// MIN query using endpoint indexes: lower must index the aggregation
// column's lower endpoints and upper its upper endpoints. The returned
// plan equals Choose's for the same query, at O(log n + |plan|) index
// cost.
func ChooseMinIndexed(t *relation.Table, lower, upper *relation.Index, r float64) (Plan, error) {
	if r < 0 || math.IsNaN(r) {
		return Plan{}, fmt.Errorf("refresh: invalid precision constraint %g", r)
	}
	if math.IsInf(r, 1) {
		return Plan{}, nil
	}
	minH, _, ok := upper.Min()
	if !ok {
		return Plan{}, nil // empty table
	}
	return planFromKeys(t, lower.KeysLess(minH-r)), nil
}

// ChooseMaxIndexed is the symmetric MAX plan: all tuples with
// H_i > max_k(L_k) + R, via the same two index probes.
func ChooseMaxIndexed(t *relation.Table, lower, upper *relation.Index, r float64) (Plan, error) {
	if r < 0 || math.IsNaN(r) {
		return Plan{}, fmt.Errorf("refresh: invalid precision constraint %g", r)
	}
	if math.IsInf(r, 1) {
		return Plan{}, nil
	}
	maxL, _, ok := lower.Max()
	if !ok {
		return Plan{}, nil
	}
	return planFromKeys(t, upper.KeysGreater(maxL+r)), nil
}

// ChooseUniformSumIndexed computes the uniform-cost SUM refresh set for
// aggregation column col using a width index over that column (section
// 5.2's special case): keep tuples in the knapsack by ascending width
// until capacity R is exhausted; everything else is refreshed. The greedy
// is optimal only when every tuple has the same refresh cost.
func ChooseUniformSumIndexed(t *relation.Table, col int, width *relation.Index, r float64) (Plan, error) {
	if r < 0 || math.IsNaN(r) {
		return Plan{}, fmt.Errorf("refresh: invalid precision constraint %g", r)
	}
	if math.IsInf(r, 1) {
		return Plan{}, nil
	}
	kept := make(map[int64]bool)
	budget := r
	// Ascend the width index; stop at the first tuple that overflows the
	// budget (all remaining tuples are at least as wide).
	for _, key := range width.FirstN(t.Len()) {
		i := t.ByKey(key)
		w := t.At(i).Bounds[col].Width()
		if w > budget {
			break
		}
		budget -= w
		kept[key] = true
	}
	var keys []int64
	for i := 0; i < t.Len(); i++ {
		tu := t.At(i)
		if !kept[tu.Key] {
			keys = append(keys, tu.Key)
		}
	}
	return planFromKeys(t, keys), nil
}

// ChooseMinIndexedStore is ChooseMinIndexed over a sharded store with a
// ShardedIndex pair: one minimum probe per shard tree plus per-shard
// range scans, touching only the selected tuples. The caller must not
// hold any shard lock (plan materialization takes each key's shard read
// lock internally) and must coordinate index maintenance with store
// mutations, as with the flat Index. The returned plan's key set equals
// ChooseMinIndexed's over a flat table with the same tuples; keys are
// in ascending key order.
func ChooseMinIndexedStore(st *relation.Store, lower, upper *relation.ShardedIndex, r float64) (Plan, error) {
	if r < 0 || math.IsNaN(r) {
		return Plan{}, fmt.Errorf("refresh: invalid precision constraint %g", r)
	}
	if math.IsInf(r, 1) {
		return Plan{}, nil
	}
	minH, _, ok := upper.Min()
	if !ok {
		return Plan{}, nil // empty store
	}
	return planFromStoreKeys(st, lower.KeysLess(minH-r)), nil
}

// ChooseMaxIndexedStore is the symmetric MAX plan over a sharded store.
func ChooseMaxIndexedStore(st *relation.Store, lower, upper *relation.ShardedIndex, r float64) (Plan, error) {
	if r < 0 || math.IsNaN(r) {
		return Plan{}, fmt.Errorf("refresh: invalid precision constraint %g", r)
	}
	if math.IsInf(r, 1) {
		return Plan{}, nil
	}
	maxL, _, ok := lower.Max()
	if !ok {
		return Plan{}, nil
	}
	return planFromStoreKeys(st, upper.KeysGreater(maxL+r)), nil
}

// planFromKeys materializes a plan from tuple keys.
func planFromKeys(t *relation.Table, keys []int64) Plan {
	p := Plan{Keys: make([]int64, 0, len(keys)), Indexes: make([]int, 0, len(keys))}
	for _, key := range keys {
		i := t.ByKey(key)
		if i < 0 {
			continue
		}
		p.Keys = append(p.Keys, key)
		p.Indexes = append(p.Indexes, i)
		p.Cost += t.At(i).Cost
	}
	return p
}

// planFromStoreKeys materializes a plan from tuple keys of a sharded
// store. Indexes hold positions in the plan's own key order (a sharded
// store has no global physical positions).
func planFromStoreKeys(st *relation.Store, keys []int64) Plan {
	p := Plan{Keys: make([]int64, 0, len(keys)), Indexes: make([]int, 0, len(keys))}
	for _, key := range keys {
		tu, ok := st.Get(key)
		if !ok {
			continue
		}
		p.Indexes = append(p.Indexes, len(p.Keys))
		p.Keys = append(p.Keys, key)
		p.Costs = append(p.Costs, tu.Cost)
		p.Cost += tu.Cost
	}
	return p
}
